package sim

// Core is the incumbent issue-interval core timing model — registry
// name "interval" (see coremodel.go for the pluggable-model axis). It
// consumes a dynamic instruction stream (driven by the interpreter)
// and advances a cycle clock.
//
// The model issues instructions in order at IssueWidth per cycle.
// Completion is tracked per instruction:
//
//   - out-of-order cores only stall issue when the reorder buffer is
//     full (the instruction ROBSize ago has not completed), so
//     independent cache misses overlap up to the MSHR limit — this is
//     the memory-level parallelism that makes software prefetching
//     less profitable on Haswell/A57 than on in-order cores (§6.1);
//   - in-order cores additionally stall issue until the operands of
//     the issuing instruction are ready (stall-on-use), so a dependent
//     use after a missing load serialises the loop — the reason the
//     A53 and Xeon Phi gain 2-8x from software prefetch.
//
// Software prefetches never produce a value, so they never stall the
// core; they occupy an issue slot and memory-system resources only.
type Core struct {
	cfg  *Config
	hier *Hierarchy

	clock    float64
	issueInt float64   // 1/IssueWidth, precomputed off the issue path
	rob      []float64 // completion times of the last ROBSize instructions
	robPos   int
	retired  uint64

	// Branch predictor state: simple deterministic "mispredict every
	// 1/rate branches" counter, keeping runs reproducible.
	branchCount uint64

	// Stats.
	Instructions uint64
	Prefetches   uint64
	Branches     uint64
	Mispredicts  uint64
}

// NewCore builds an interval core over a fresh memory hierarchy.
func NewCore(cfg *Config) *Core {
	return &Core{
		cfg:      cfg,
		hier:     NewHierarchy(cfg),
		issueInt: 1 / float64(cfg.IssueWidth),
		rob:      make([]float64, cfg.ROBSize),
	}
}

// Model returns the registry name.
func (c *Core) Model() string { return CoreInterval }

// CoreStats snapshots the instruction-stream statistics.
func (c *Core) CoreStats() CoreStats {
	return CoreStats{
		Instructions: c.Instructions,
		Prefetches:   c.Prefetches,
		Branches:     c.Branches,
		Mispredicts:  c.Mispredicts,
	}
}

// Hierarchy returns the core's memory system.
func (c *Core) Hierarchy() *Hierarchy { return c.hier }

// Config returns the machine configuration.
func (c *Core) Config() *Config { return c.cfg }

// Cycles returns the current clock value.
func (c *Core) Cycles() float64 { return c.clock }

// issueAt reserves an issue slot: the clock advances by the issue
// interval, waiting first for a free ROB entry and (on in-order cores)
// for the operands.
func (c *Core) issueAt(opsReady float64) float64 {
	if oldest := c.rob[c.robPos]; oldest > c.clock {
		c.clock = oldest // ROB full: wait for the oldest to complete
	}
	if !c.cfg.OutOfOrder && opsReady > c.clock {
		c.clock = opsReady // stall-on-use
	}
	c.clock += c.issueInt
	c.Instructions++
	return c.clock
}

func (c *Core) retire(complete float64) {
	c.rob[c.robPos] = complete
	c.robPos++
	if c.robPos == len(c.rob) {
		c.robPos = 0
	}
	c.retired++
}

// Op executes a simple ALU instruction with the given latency and
// returns the time its result is ready.
func (c *Core) Op(opsReady float64, latency int64) float64 {
	issue := c.issueAt(opsReady)
	start := issue
	if opsReady > start {
		start = opsReady
	}
	complete := start + float64(latency)
	c.retire(complete)
	return complete
}

// Load issues a demand load of addr; the address operands become ready
// at opsReady. Returns the time the loaded value is available.
func (c *Core) Load(pc int, addr int64, opsReady float64) float64 {
	issue := c.issueAt(opsReady)
	start := issue
	if opsReady > start {
		start = opsReady
	}
	complete := c.hier.Access(AccessLoad, pc, addr, start)
	c.retire(complete)
	return complete
}

// Store issues a store; the core does not stall on its completion
// (store buffer), but the access consumes memory-system resources.
func (c *Core) Store(pc int, addr int64, opsReady float64) float64 {
	issue := c.issueAt(opsReady)
	start := issue
	if opsReady > start {
		start = opsReady
	}
	c.hier.Access(AccessStore, pc, addr, start)
	c.retire(issue)
	return issue
}

// Prefetch issues a software prefetch: one issue slot, a memory access,
// no stall. valid=false models a prefetch whose address fell outside
// any mapping — it is dropped (prefetches never fault).
func (c *Core) Prefetch(pc int, addr int64, opsReady float64, valid bool) float64 {
	issue := c.issueAt(opsReady)
	c.Prefetches++
	if valid {
		start := issue
		if opsReady > start {
			start = opsReady
		}
		c.hier.Access(AccessPrefetch, pc, addr, start)
	}
	c.retire(issue)
	return issue
}

// Branch issues a (conditional) branch, charging the mispredict penalty
// at the configured rate.
func (c *Core) Branch(opsReady float64, conditional bool) float64 {
	issue := c.issueAt(opsReady)
	if conditional {
		c.Branches++
		if c.cfg.MispredictRate > 0 {
			c.branchCount++
			interval := uint64(1 / c.cfg.MispredictRate)
			if interval > 0 && c.branchCount%interval == 0 {
				c.Mispredicts++
				// The pipeline restarts after the branch resolves.
				resolve := issue
				if opsReady > resolve {
					resolve = opsReady
				}
				c.clock = resolve + float64(c.cfg.MispredictPenalty)
			}
		}
	}
	c.retire(issue)
	return issue
}

// Finish waits for outstanding work and returns the final cycle count.
func (c *Core) Finish() float64 {
	if d := c.hier.Drain(); d > c.clock {
		c.clock = d
	}
	return c.clock
}

// Reset returns the core and hierarchy to a cold state.
func (c *Core) Reset() {
	c.clock = 0
	for i := range c.rob {
		c.rob[i] = 0
	}
	c.robPos = 0
	c.retired = 0
	c.branchCount = 0
	c.Instructions, c.Prefetches, c.Branches, c.Mispredicts = 0, 0, 0, 0
	c.hier.Reset()
}
