package sim

// InOrderCore is the cheap stall-on-use model at the simple end of the
// core axis: instructions issue strictly in order at IssueWidth per
// cycle, and issue stalls until the issuing instruction's operands are
// ready — a dependent use after a missing load serialises the loop,
// which is exactly why the paper's in-order machines (A53, Xeon Phi)
// gain 2-8x from software prefetching (§6.1). No reorder window is
// modelled at all; what little overlap exists comes from accesses that
// produce no value (stores, prefetches) draining through the
// hierarchy's MSHRs while issue continues.
//
// The model ignores Config.OutOfOrder: selecting it makes any machine
// in order. It is the interval model's in-order half with the
// completion-time window check removed — one comparison cheaper per
// instruction, and honest about what a scoreboarded in-order pipeline
// actually does.
type InOrderCore struct {
	cfg  *Config
	hier *Hierarchy

	clock    float64
	issueInt float64

	branchCount uint64
	stats       CoreStats
}

// NewInOrderCore builds an in-order core over a fresh memory hierarchy.
func NewInOrderCore(cfg *Config) *InOrderCore {
	return &InOrderCore{
		cfg:      cfg,
		hier:     NewHierarchy(cfg),
		issueInt: 1 / float64(cfg.IssueWidth),
	}
}

// Model returns the registry name.
func (c *InOrderCore) Model() string { return CoreInOrder }

// Config returns the machine configuration.
func (c *InOrderCore) Config() *Config { return c.cfg }

// Hierarchy returns the core's memory system.
func (c *InOrderCore) Hierarchy() *Hierarchy { return c.hier }

// Cycles returns the current clock value.
func (c *InOrderCore) Cycles() float64 { return c.clock }

// CoreStats snapshots the instruction-stream statistics.
func (c *InOrderCore) CoreStats() CoreStats { return c.stats }

// issueAt reserves an issue slot, stalling on the operands first — the
// stall-on-use rule that defines the model.
func (c *InOrderCore) issueAt(opsReady float64) float64 {
	if opsReady > c.clock {
		c.clock = opsReady
	}
	c.clock += c.issueInt
	c.stats.Instructions++
	return c.clock
}

// Op executes a simple ALU instruction and returns the time its result
// is ready.
func (c *InOrderCore) Op(opsReady float64, latency int64) float64 {
	return c.issueAt(opsReady) + float64(latency)
}

// Load issues a demand load; issue already waited for the operands, so
// the access starts at the issue slot.
func (c *InOrderCore) Load(pc int, addr int64, opsReady float64) float64 {
	issue := c.issueAt(opsReady)
	return c.hier.Access(AccessLoad, pc, addr, issue)
}

// Store issues a store; the core does not stall on its completion
// (store buffer), but the access consumes memory-system resources.
func (c *InOrderCore) Store(pc int, addr int64, opsReady float64) float64 {
	issue := c.issueAt(opsReady)
	c.hier.Access(AccessStore, pc, addr, issue)
	return issue
}

// Prefetch issues a software prefetch: one issue slot, a memory access,
// no stall. valid=false drops the access (prefetches never fault).
func (c *InOrderCore) Prefetch(pc int, addr int64, opsReady float64, valid bool) float64 {
	issue := c.issueAt(opsReady)
	c.stats.Prefetches++
	if valid {
		c.hier.Access(AccessPrefetch, pc, addr, issue)
	}
	return issue
}

// Branch issues a (conditional) branch, restarting the pipeline at the
// configured deterministic mispredict rate.
func (c *InOrderCore) Branch(opsReady float64, conditional bool) float64 {
	issue := c.issueAt(opsReady)
	if conditional {
		c.stats.Branches++
		if c.cfg.MispredictRate > 0 {
			c.branchCount++
			interval := uint64(1 / c.cfg.MispredictRate)
			if interval > 0 && c.branchCount%interval == 0 {
				c.stats.Mispredicts++
				c.clock = issue + float64(c.cfg.MispredictPenalty)
			}
		}
	}
	return issue
}

// Finish waits for outstanding memory-system work and returns the final
// cycle count.
func (c *InOrderCore) Finish() float64 {
	if d := c.hier.Drain(); d > c.clock {
		c.clock = d
	}
	return c.clock
}

// Reset returns the core and hierarchy to a cold state in place.
func (c *InOrderCore) Reset() {
	c.clock = 0
	c.branchCount = 0
	c.stats = CoreStats{}
	c.hier.Reset()
}
