package sim

import "testing"

// The hierarchy micro-benchmarks drive the Access hot path directly,
// without the interpreter on top, so regressions in the MSHR/TLB/stride
// bookkeeping show up in isolation. Numbers are tracked in
// BENCH_sim.json at the repository root.

// lcg is a tiny deterministic PRNG so the random-access benchmarks are
// reproducible and benchmark overhead stays negligible.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func BenchmarkHierarchySequential(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(AccessLoad, 1, int64(i)*8, now)
		now += 1
	}
}

// window paces a benchmark like a core with a bounded in-flight
// window: the clock never runs more than windowSize accesses behind the
// oldest outstanding completion. Issuing unboundedly far in the past
// would flood the in-flight bookkeeping in a way no real driver does.
type window struct {
	done [16]float64
	i    int
}

func (w *window) pace(now, complete float64) float64 {
	w.done[w.i] = complete
	w.i = (w.i + 1) % len(w.done)
	if oldest := w.done[w.i]; oldest > now {
		return oldest
	}
	return now
}

func BenchmarkHierarchyRandom(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	r := lcg(1)
	var w window
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := int64(r.next() & (1<<26 - 1))
		done := h.Access(AccessLoad, 2, addr, now)
		now = w.pace(now, done) + 1
	}
}

// BenchmarkHierarchyMixed interleaves a sequential stream, random
// demand loads, and software prefetches — the access mix the prefetch
// pass produces on the paper's indirect workloads.
func BenchmarkHierarchyMixed(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	r := lcg(7)
	var w window
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(AccessLoad, 1, int64(i)*8, now)
		addr := int64(r.next() & (1<<26 - 1))
		h.Access(AccessPrefetch, 3, addr, now)
		done := h.Access(AccessLoad, 2, addr, now+10)
		now = w.pace(now, done) + 1
	}
}

func BenchmarkTLBTranslate(b *testing.B) {
	t := NewTLB(DefaultConfig())
	r := lcg(3)
	var w window
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		done := t.Translate(int64(r.next()&(1<<28-1)), now)
		now = w.pace(now, done) + 1
	}
}

func BenchmarkHierarchyReset(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	r := lcg(5)
	for i := 0; i < 4096; i++ {
		h.Access(AccessLoad, 1, int64(r.next()&(1<<26-1)), float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
	}
}
