package sim

import "repro/internal/hwpf"

// AccessKind distinguishes the flavours of memory access presented to
// the hierarchy.
type AccessKind int

// Access kinds.
const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessPrefetch // software prefetch: fills caches, never stalls
	AccessHW       // hardware-prefetcher fill
)

// Hierarchy ties together the caches, TLB, DRAM bus, MSHRs and the
// hardware prefetcher of one machine.
type Hierarchy struct {
	cfg    *Config
	caches []*Cache
	tlb    *TLB

	lineShift uint
	lineSize  int64

	// DRAM bus: busFree is when the bus next becomes idle. Contention
	// from other cores (fig. 9) inflates each access's occupancy.
	busFree   float64
	occupancy float64 // cycles of bus occupancy per line transfer

	// MSHRs: completion times of outstanding misses.
	mshr []float64

	// Miss status: in-flight line fills, so that accesses to a line
	// already being fetched merge instead of issuing twice.
	inflight *timeMap

	// Hardware prefetcher: a pluggable model (internal/hwpf) trained
	// on the demand-load stream; nil when disabled. The hierarchy owns
	// acting on its candidates — the fill-level presence filter, TLB
	// translation, MSHRs and the bus — so models stay pure pattern
	// machines. pfBuf is the reusable candidate buffer.
	pf    hwpf.Prefetcher
	pfBuf []int64

	// tracer, when non-nil, records every access (see trace.go).
	tracer *Tracer

	// Stats.
	Loads, Stores      uint64
	SWPrefetches       uint64
	HWPrefetches       uint64
	HWPrefetchDropped  uint64 // hardware prefetches dropped on a TLB miss
	DRAMAccesses       uint64
	DRAMBytes          uint64
	MSHRStallCycles    float64
	LoadStallCycles    float64 // demand-load cycles beyond L1 latency
	PrefetchLateCycles float64 // demand-hit cycles spent waiting on in-flight fills
}

// NewHierarchy builds the memory system for a machine configuration.
func NewHierarchy(cfg *Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:      cfg,
		tlb:      NewTLB(cfg),
		inflight: newTimeMap(4 * cfg.MSHRs),
		mshr:     make([]float64, cfg.MSHRs),
	}
	for _, cc := range cfg.Caches {
		h.caches = append(h.caches, NewCache(cc))
	}
	h.lineSize = cfg.Caches[0].LineSize
	for 1<<h.lineShift != h.lineSize {
		h.lineShift++
	}
	pf, err := hwpf.New(cfg.HWPrefetcherName(), hwpf.Config{
		LineShift: h.lineShift,
		Degree:    cfg.StrideDegree,
		Conf:      cfg.StrideConf,
		Streams:   cfg.StrideStreams,
	})
	if err != nil {
		panic(err) // Validate vets the name; unreachable
	}
	h.pf = pf
	h.occupancy = float64(h.lineSize) / cfg.BytesPerCycle
	if cfg.SharedCores > 1 {
		load := cfg.ContentionLoad
		if load == 0 {
			load = 1
		}
		// Each contending core injects `load` times this core's traffic;
		// bus occupancy per transfer grows accordingly.
		h.occupancy *= 1 + load*float64(cfg.SharedCores-1)
	}
	return h
}

// Caches exposes the cache levels (L1 first) for statistics.
func (h *Hierarchy) Caches() []*Cache { return h.caches }

// TLB exposes the TLB for statistics.
func (h *Hierarchy) TLBStats() *TLB { return h.tlb }

// Access presents one memory access to the hierarchy at time `start`
// and returns the time its data is available. pc identifies the access
// site for the stride prefetcher. Stores and prefetches return their
// completion time too, but callers do not stall on them.
func (h *Hierarchy) Access(kind AccessKind, pc int, addr int64, start float64) float64 {
	switch kind {
	case AccessLoad:
		h.Loads++
	case AccessStore:
		h.Stores++
	case AccessPrefetch:
		h.SWPrefetches++
	case AccessHW:
		h.HWPrefetches++
	}

	// Address translation. Software prefetches translate (and walk)
	// too — warming the TLB is part of the benefit the paper measures
	// (§6.2, fig. 10). Hardware prefetches are speculative addresses a
	// real engine would never hand to a page-table walker: they
	// translate only on a TLB hit and are dropped otherwise. A model
	// whose candidates stay on the triggering page (the stride
	// streamer) always hits the entry the demand access just touched,
	// so this rule only bites page-crossing designs (GHB, IMP).
	var t float64
	if kind == AccessHW {
		var ok bool
		if t, ok = h.tlb.TranslateNoWalk(addr, start); !ok {
			h.HWPrefetchDropped++
			if h.tracer != nil {
				h.tracer.record(TraceEvent{Kind: kind, PC: pc, Addr: addr, Start: start, Complete: start, Level: LevelDropped})
			}
			return start
		}
	} else {
		t = h.tlb.Translate(addr, start)
	}

	demand := kind == AccessLoad
	// Hardware prefetches skip levels above their fill level.
	firstLevel := 0
	if kind == AccessHW {
		firstLevel = h.cfg.StrideFillLevel
		if firstLevel >= len(h.caches) {
			firstLevel = len(h.caches) - 1
		}
	}
	// Probe the hierarchy top-down.
	for lvl := firstLevel; lvl < len(h.caches); lvl++ {
		c := h.caches[lvl]
		ready, ok := c.Lookup(addr, t, demand)
		if !ok {
			t += float64(c.cfg.Latency)
			continue
		}
		// A hit returns at the fill's completion or the level's latency,
		// whichever is later. When the fill is still in flight past the
		// normal hit latency, the demand access waited on it — the "late
		// prefetch" penalty of figure 7, charged as the cycles beyond an
		// ordinary hit at this level.
		done := ready
		lat := t + float64(c.cfg.Latency)
		if lat > done {
			done = lat
		} else if demand && ready > lat {
			h.PrefetchLateCycles += ready - lat
		}
		// Fill upper levels.
		for u := firstLevel; u < lvl; u++ {
			h.caches[u].Fill(addr, done, kind == AccessPrefetch || kind == AccessHW)
		}
		if demand {
			h.LoadStallCycles += done - start - float64(h.caches[0].cfg.Latency)
			h.trainHW(pc, addr, lvl > 0, start)
		}
		if h.tracer != nil {
			h.tracer.record(TraceEvent{Kind: kind, PC: pc, Addr: addr, Start: start, Complete: done, Level: lvl})
		}
		return done
	}

	// Miss in all levels: go to DRAM.
	done := h.dramFetch(addr, t, kind, firstLevel)
	if demand {
		h.LoadStallCycles += done - start - float64(h.caches[0].cfg.Latency)
		h.trainHW(pc, addr, true, start)
	}
	if h.tracer != nil {
		h.tracer.record(TraceEvent{Kind: kind, PC: pc, Addr: addr, Start: start, Complete: done, Level: -1})
	}
	return done
}

// dramFetch fetches a line from memory, merging with in-flight fills,
// acquiring an MSHR, and arbitrating for the bus.
func (h *Hierarchy) dramFetch(addr int64, t float64, kind AccessKind, firstLevel int) float64 {
	line := addr >> h.lineShift
	if done, ok := h.inflight.get(line); ok && done > t {
		return done
	}

	// Acquire an MSHR: wait for the earliest outstanding miss if full.
	slot := 0
	for i := range h.mshr {
		if h.mshr[i] < h.mshr[slot] {
			slot = i
		}
	}
	if h.mshr[slot] > t {
		h.MSHRStallCycles += h.mshr[slot] - t
		t = h.mshr[slot]
	}

	// Bus occupancy.
	busStart := t
	if h.busFree > busStart {
		busStart = h.busFree
	}
	h.busFree = busStart + h.occupancy
	done := busStart + float64(h.cfg.DRAMLatency)

	h.mshr[slot] = done
	h.inflight.put(line, done)
	if h.inflight.n > 4*len(h.mshr) {
		h.inflight.sweep(t)
	}
	h.DRAMAccesses++
	h.DRAMBytes += uint64(h.lineSize)

	// Fill all levels from firstLevel down (inclusive hierarchy).
	isPf := kind == AccessPrefetch || kind == AccessHW
	for _, c := range h.caches[firstLevel:] {
		c.Fill(addr, done, isPf)
	}
	return done
}

// trainHW presents a demand load to the hardware-prefetcher model and
// acts on its candidates: each candidate whose line is absent from the
// fill-level cache is fetched via the AccessHW path, which skips the
// levels above the fill level, translates (warming the TLB) and
// consumes MSHR/bus resources like any other fill. The presence probe
// touches LRU state exactly like the old hard-wired streamer did, so
// the hwpf=stride port stays bit-identical.
func (h *Hierarchy) trainHW(pc int, addr int64, miss bool, now float64) {
	if h.pf == nil {
		return
	}
	h.pfBuf = h.pf.Observe(pc, addr, miss, h.pfBuf[:0])
	if len(h.pfBuf) == 0 {
		return
	}
	fillLvl := h.cfg.StrideFillLevel
	if fillLvl >= len(h.caches) {
		fillLvl = len(h.caches) - 1
	}
	// AccessHW never re-enters trainHW (it is not a demand load), so
	// iterating the shared buffer during issue is safe.
	for _, next := range h.pfBuf {
		if _, ok := h.caches[fillLvl].Lookup(next, now, false); ok {
			continue
		}
		h.Access(AccessHW, -pc-1, next, now)
	}
}

// Prefetcher exposes the hardware-prefetcher model (nil when off).
func (h *Hierarchy) Prefetcher() hwpf.Prefetcher { return h.pf }

// SetPeek installs a simulated-memory reader for value-speculating
// prefetcher models (hwpf.IMP); models that do not peek ignore it.
// The interpreter calls this when it attaches to a core.
func (h *Hierarchy) SetPeek(f hwpf.PeekFunc) {
	if ps, ok := h.pf.(hwpf.PeekSetter); ok {
		ps.SetPeek(f)
	}
}

// Drain returns the time at which all outstanding misses complete.
func (h *Hierarchy) Drain() float64 {
	var max float64
	for _, d := range h.mshr {
		if d > max {
			max = d
		}
	}
	return max
}

// Reset restores the hierarchy to a cold state, keeping configuration.
func (h *Hierarchy) Reset() {
	for _, c := range h.caches {
		c.Reset()
	}
	h.tlb.Reset()
	h.busFree = 0
	for i := range h.mshr {
		h.mshr[i] = 0
	}
	h.inflight.reset()
	if h.pf != nil {
		h.pf.Reset()
	}
	h.Loads, h.Stores, h.SWPrefetches, h.HWPrefetches = 0, 0, 0, 0
	h.HWPrefetchDropped = 0
	h.DRAMAccesses, h.DRAMBytes = 0, 0
	h.MSHRStallCycles, h.LoadStallCycles, h.PrefetchLateCycles = 0, 0, 0
}
