package sim

// AccessKind distinguishes the flavours of memory access presented to
// the hierarchy.
type AccessKind int

// Access kinds.
const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessPrefetch // software prefetch: fills caches, never stalls
	AccessHW       // hardware-prefetcher fill
)

// Hierarchy ties together the caches, TLB, DRAM bus, MSHRs and the
// hardware stride prefetcher of one machine.
type Hierarchy struct {
	cfg    *Config
	caches []*Cache
	tlb    *TLB

	lineShift uint
	lineSize  int64

	// DRAM bus: busFree is when the bus next becomes idle. Contention
	// from other cores (fig. 9) inflates each access's occupancy.
	busFree   float64
	occupancy float64 // cycles of bus occupancy per line transfer

	// MSHRs: completion times of outstanding misses.
	mshr []float64

	// Miss status: in-flight line fills, so that accesses to a line
	// already being fetched merge instead of issuing twice.
	inflight *timeMap

	// Stride prefetcher state: a limited set of per-4KiB-region stream
	// trackers, LRU-replaced. Random access patterns allocate and evict
	// trackers constantly, starving concurrent sequential streams of
	// coverage — the behaviour of real region-based streamers that
	// makes software stride prefetches profitable next to indirect
	// accesses (paper §3, figures 2 and 5).
	stride      []strideEntry
	strideLive  int
	strideStamp uint64

	// tracer, when non-nil, records every access (see trace.go).
	tracer *Tracer

	// Stats.
	Loads, Stores      uint64
	SWPrefetches       uint64
	HWPrefetches       uint64
	DRAMAccesses       uint64
	DRAMBytes          uint64
	MSHRStallCycles    float64
	LoadStallCycles    float64 // demand-load cycles beyond L1 latency
	PrefetchLateCycles float64 // demand hits that waited on an in-flight prefetch
}

type strideEntry struct {
	region   int64
	lastLine int64
	stride   int64
	conf     int
	used     uint64 // LRU stamp
	live     bool
}

// NewHierarchy builds the memory system for a machine configuration.
func NewHierarchy(cfg *Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	streams := cfg.StrideStreams
	if streams <= 0 {
		streams = 16
	}
	h := &Hierarchy{
		cfg:      cfg,
		tlb:      NewTLB(cfg),
		inflight: newTimeMap(4 * cfg.MSHRs),
		stride:   make([]strideEntry, streams),
		mshr:     make([]float64, cfg.MSHRs),
	}
	for _, cc := range cfg.Caches {
		h.caches = append(h.caches, NewCache(cc))
	}
	h.lineSize = cfg.Caches[0].LineSize
	for 1<<h.lineShift != h.lineSize {
		h.lineShift++
	}
	h.occupancy = float64(h.lineSize) / cfg.BytesPerCycle
	if cfg.SharedCores > 1 {
		load := cfg.ContentionLoad
		if load == 0 {
			load = 1
		}
		// Each contending core injects `load` times this core's traffic;
		// bus occupancy per transfer grows accordingly.
		h.occupancy *= 1 + load*float64(cfg.SharedCores-1)
	}
	return h
}

// Caches exposes the cache levels (L1 first) for statistics.
func (h *Hierarchy) Caches() []*Cache { return h.caches }

// TLB exposes the TLB for statistics.
func (h *Hierarchy) TLBStats() *TLB { return h.tlb }

// Access presents one memory access to the hierarchy at time `start`
// and returns the time its data is available. pc identifies the access
// site for the stride prefetcher. Stores and prefetches return their
// completion time too, but callers do not stall on them.
func (h *Hierarchy) Access(kind AccessKind, pc int, addr int64, start float64) float64 {
	switch kind {
	case AccessLoad:
		h.Loads++
	case AccessStore:
		h.Stores++
	case AccessPrefetch:
		h.SWPrefetches++
	case AccessHW:
		h.HWPrefetches++
	}

	// Address translation. Prefetches translate too — warming the TLB
	// is part of the benefit the paper measures (§6.2, fig. 10).
	t := h.tlb.Translate(addr, start)

	demand := kind == AccessLoad
	// Hardware prefetches skip levels above their fill level.
	firstLevel := 0
	if kind == AccessHW {
		firstLevel = h.cfg.StrideFillLevel
		if firstLevel >= len(h.caches) {
			firstLevel = len(h.caches) - 1
		}
	}
	// Probe the hierarchy top-down.
	for lvl := firstLevel; lvl < len(h.caches); lvl++ {
		c := h.caches[lvl]
		ready, ok := c.Lookup(addr, t, demand)
		if !ok {
			t += float64(c.cfg.Latency)
			continue
		}
		done := ready
		if lat := t + float64(c.cfg.Latency); lat > done {
			done = lat
		}
		if demand && done > ready && ready > t {
			h.PrefetchLateCycles += done - (t + float64(c.cfg.Latency))
		}
		// Fill upper levels.
		for u := firstLevel; u < lvl; u++ {
			h.caches[u].Fill(addr, done, kind == AccessPrefetch || kind == AccessHW)
		}
		if demand {
			h.LoadStallCycles += done - start - float64(h.caches[0].cfg.Latency)
			h.trainStride(pc, addr, start)
		}
		if h.tracer != nil {
			h.tracer.record(TraceEvent{Kind: kind, PC: pc, Addr: addr, Start: start, Complete: done, Level: lvl})
		}
		return done
	}

	// Miss in all levels: go to DRAM.
	done := h.dramFetch(addr, t, kind, firstLevel)
	if demand {
		h.LoadStallCycles += done - start - float64(h.caches[0].cfg.Latency)
		h.trainStride(pc, addr, start)
	}
	if h.tracer != nil {
		h.tracer.record(TraceEvent{Kind: kind, PC: pc, Addr: addr, Start: start, Complete: done, Level: -1})
	}
	return done
}

// dramFetch fetches a line from memory, merging with in-flight fills,
// acquiring an MSHR, and arbitrating for the bus.
func (h *Hierarchy) dramFetch(addr int64, t float64, kind AccessKind, firstLevel int) float64 {
	line := addr >> h.lineShift
	if done, ok := h.inflight.get(line); ok && done > t {
		return done
	}

	// Acquire an MSHR: wait for the earliest outstanding miss if full.
	slot := 0
	for i := range h.mshr {
		if h.mshr[i] < h.mshr[slot] {
			slot = i
		}
	}
	if h.mshr[slot] > t {
		h.MSHRStallCycles += h.mshr[slot] - t
		t = h.mshr[slot]
	}

	// Bus occupancy.
	busStart := t
	if h.busFree > busStart {
		busStart = h.busFree
	}
	h.busFree = busStart + h.occupancy
	done := busStart + float64(h.cfg.DRAMLatency)

	h.mshr[slot] = done
	h.inflight.put(line, done)
	if h.inflight.n > 4*len(h.mshr) {
		h.inflight.sweep(t)
	}
	h.DRAMAccesses++
	h.DRAMBytes += uint64(h.lineSize)

	// Fill all levels from firstLevel down (inclusive hierarchy).
	isPf := kind == AccessPrefetch || kind == AccessHW
	for _, c := range h.caches[firstLevel:] {
		c.Fill(addr, done, isPf)
	}
	return done
}

// trainStride updates the hardware stride prefetcher on a demand access
// and issues degree fills once the stride is confident. Trackers are
// allocated per 4KiB region with limited capacity: interleaved random
// accesses evict stream trackers before they regain confidence.
func (h *Hierarchy) trainStride(pc int, addr int64, now float64) {
	if !h.cfg.StridePrefetch {
		return
	}
	_ = pc
	line := addr >> h.lineShift
	region := addr >> 12
	h.strideStamp++
	var e *strideEntry
	for i := range h.stride {
		if h.stride[i].live && h.stride[i].region == region {
			e = &h.stride[i]
			break
		}
	}
	if e == nil {
		slot := -1
		if h.strideLive >= len(h.stride) {
			// Evict the LRU tracker (stamps are unique, so the victim is
			// the same one the map version chose).
			slot = 0
			for i := 1; i < len(h.stride); i++ {
				if h.stride[i].used < h.stride[slot].used {
					slot = i
				}
			}
		} else {
			for i := range h.stride {
				if !h.stride[i].live {
					slot = i
					break
				}
			}
			h.strideLive++
		}
		h.stride[slot] = strideEntry{region: region, lastLine: line, used: h.strideStamp, live: true}
		return
	}
	e.used = h.strideStamp
	d := line - e.lastLine
	if d == 0 {
		return // same line; no information
	}
	if d == e.stride {
		if e.conf < 16 {
			e.conf++
		}
	} else {
		e.stride = d
		e.conf = 1
	}
	e.lastLine = line
	if e.conf >= h.cfg.StrideConf && e.stride != 0 {
		fillLvl := h.cfg.StrideFillLevel
		if fillLvl >= len(h.caches) {
			fillLvl = len(h.caches) - 1
		}
		for k := 1; k <= h.cfg.StrideDegree; k++ {
			next := (line + int64(k)*e.stride) << h.lineShift
			if next < 0 {
				break
			}
			// Real stream prefetchers do not cross 4KiB boundaries.
			if next>>12 != addr>>12 {
				break
			}
			if _, ok := h.caches[fillLvl].Lookup(next, now, false); ok {
				continue
			}
			h.Access(AccessHW, -pc-1, next, now)
		}
	}
}

// Drain returns the time at which all outstanding misses complete.
func (h *Hierarchy) Drain() float64 {
	var max float64
	for _, d := range h.mshr {
		if d > max {
			max = d
		}
	}
	return max
}

// Reset restores the hierarchy to a cold state, keeping configuration.
func (h *Hierarchy) Reset() {
	for _, c := range h.caches {
		c.Reset()
	}
	h.tlb.Reset()
	h.busFree = 0
	for i := range h.mshr {
		h.mshr[i] = 0
	}
	h.inflight.reset()
	clear(h.stride)
	h.strideLive = 0
	h.strideStamp = 0
	h.Loads, h.Stores, h.SWPrefetches, h.HWPrefetches = 0, 0, 0, 0
	h.DRAMAccesses, h.DRAMBytes = 0, 0
	h.MSHRStallCycles, h.LoadStallCycles, h.PrefetchLateCycles = 0, 0, 0
}
