package sim

// This file holds the fixed-storage replacements for what used to be
// map[int64]-based bookkeeping on the simulator hot path: in-flight
// line fills, in-flight page walks, and the TLB arrays. All of them
// preserve the exact replacement/merge semantics of the map versions
// (the map code evicted the minimum of unique monotonic LRU stamps,
// which is precisely recency order, so the intrusive LRU list below
// picks the identical victims), while avoiding per-access hashing
// through Go map internals and per-Reset reallocation.

// mix64 is a Fibonacci-style hash for open addressing.
func mix64(x int64) uint64 {
	h := uint64(x) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

// timeMap is an open-addressed hash map from an int64 key (cache line
// or page number) to a completion time. It backs the "merge with an
// in-flight fill/walk" checks. Storage is reused across sweeps and
// Reset.
type timeMap struct {
	keys []int64
	vals []float64
	live []bool
	mask uint64
	n    int

	// sweep scratch, reused to avoid allocation.
	sk []int64
	sv []float64
}

func newTimeMap(hint int) *timeMap {
	size := 16
	for size < 4*hint {
		size <<= 1
	}
	t := &timeMap{}
	t.alloc(size)
	return t
}

func (t *timeMap) alloc(size int) {
	t.keys = make([]int64, size)
	t.vals = make([]float64, size)
	t.live = make([]bool, size)
	t.mask = uint64(size - 1)
}

func (t *timeMap) get(key int64) (float64, bool) {
	slot := mix64(key) & t.mask
	for t.live[slot] {
		if t.keys[slot] == key {
			return t.vals[slot], true
		}
		slot = (slot + 1) & t.mask
	}
	return 0, false
}

func (t *timeMap) put(key int64, val float64) {
	slot := mix64(key) & t.mask
	for t.live[slot] {
		if t.keys[slot] == key {
			t.vals[slot] = val
			return
		}
		slot = (slot + 1) & t.mask
	}
	t.keys[slot] = key
	t.vals[slot] = val
	t.live[slot] = true
	t.n++
	if 2*t.n > len(t.keys) {
		t.grow()
	}
}

func (t *timeMap) grow() {
	ok, ov, ol := t.keys, t.vals, t.live
	t.alloc(2 * len(ok))
	t.n = 0
	for i, l := range ol {
		if l {
			t.put(ok[i], ov[i])
		}
	}
}

// sweep removes every entry whose completion time is <= cutoff.
func (t *timeMap) sweep(cutoff float64) {
	t.sk, t.sv = t.sk[:0], t.sv[:0]
	for i, l := range t.live {
		if l && t.vals[i] > cutoff {
			t.sk = append(t.sk, t.keys[i])
			t.sv = append(t.sv, t.vals[i])
		}
	}
	clear(t.live)
	t.n = 0
	for i, k := range t.sk {
		t.put(k, t.sv[i])
	}
}

func (t *timeMap) reset() {
	clear(t.live)
	t.n = 0
}

// lruMap is a fixed-capacity fully-associative LRU set keyed by int64,
// used for the TLB levels. Entries live in a dense array threaded onto
// an intrusive recency list (head = LRU, tail = MRU), and an
// open-addressed index gives O(1) lookup; eviction is O(1) where the
// map version re-scanned every entry for the minimum stamp.
type lruMap struct {
	capacity   int
	keys       []int64 // dense, [0, n) live
	prev, next []int32 // intrusive recency list over entry positions
	head, tail int32   // LRU at head, MRU at tail; -1 when empty
	n          int

	idx   []int32 // slot -> entry position; idxEmpty / idxTomb sentinels
	mask  uint64
	tombs int
}

const (
	idxEmpty int32 = -1
	idxTomb  int32 = -2
)

func newLRUMap(capacity int) *lruMap {
	size := 8
	for size < 2*capacity {
		size <<= 1
	}
	m := &lruMap{
		capacity: capacity,
		keys:     make([]int64, capacity),
		prev:     make([]int32, capacity),
		next:     make([]int32, capacity),
		head:     -1,
		tail:     -1,
		idx:      make([]int32, size),
		mask:     uint64(size - 1),
	}
	for i := range m.idx {
		m.idx[i] = idxEmpty
	}
	return m
}

func (m *lruMap) pushBack(pos int32) {
	m.prev[pos] = m.tail
	m.next[pos] = -1
	if m.tail >= 0 {
		m.next[m.tail] = pos
	} else {
		m.head = pos
	}
	m.tail = pos
}

func (m *lruMap) unlink(pos int32) {
	if m.prev[pos] >= 0 {
		m.next[m.prev[pos]] = m.next[pos]
	} else {
		m.head = m.next[pos]
	}
	if m.next[pos] >= 0 {
		m.prev[m.next[pos]] = m.prev[pos]
	} else {
		m.tail = m.prev[pos]
	}
}

func (m *lruMap) touch(pos int32) {
	if m.tail == pos {
		return
	}
	m.unlink(pos)
	m.pushBack(pos)
}

// lookup reports whether key is present, refreshing its recency.
func (m *lruMap) lookup(key int64) bool {
	slot := mix64(key) & m.mask
	for {
		v := m.idx[slot]
		if v == idxEmpty {
			return false
		}
		if v >= 0 && m.keys[v] == key {
			m.touch(v)
			return true
		}
		slot = (slot + 1) & m.mask
	}
}

// insert adds key, evicting the least-recently-used entry when full.
// Inserting a present key just refreshes its recency.
func (m *lruMap) insert(key int64) {
	slot := mix64(key) & m.mask
	reuse := int32(-1)
	for {
		v := m.idx[slot]
		if v == idxEmpty {
			break
		}
		if v == idxTomb {
			if reuse < 0 {
				reuse = int32(slot)
			}
		} else if m.keys[v] == key {
			m.touch(v)
			return
		}
		slot = (slot + 1) & m.mask
	}

	var pos int32
	if m.n < m.capacity {
		pos = int32(m.n)
		m.n++
	} else {
		pos = m.head // the LRU entry
		m.idxDelete(m.keys[pos])
		m.unlink(pos)
	}
	m.keys[pos] = key
	m.pushBack(pos)
	if reuse >= 0 {
		slot = uint64(reuse)
		m.tombs--
	}
	m.idx[slot] = pos
	if 4*m.tombs > len(m.idx) {
		m.rebuild()
	}
}

func (m *lruMap) idxDelete(key int64) {
	slot := mix64(key) & m.mask
	for {
		v := m.idx[slot]
		if v == idxEmpty {
			return
		}
		if v >= 0 && m.keys[v] == key {
			m.idx[slot] = idxTomb
			m.tombs++
			return
		}
		slot = (slot + 1) & m.mask
	}
}

func (m *lruMap) rebuild() {
	for i := range m.idx {
		m.idx[i] = idxEmpty
	}
	m.tombs = 0
	for p := 0; p < m.n; p++ {
		slot := mix64(m.keys[p]) & m.mask
		for m.idx[slot] != idxEmpty {
			slot = (slot + 1) & m.mask
		}
		m.idx[slot] = int32(p)
	}
}

// reset empties the map in place, preserving capacity and storage.
func (m *lruMap) reset() {
	m.n = 0
	m.head, m.tail = -1, -1
	m.tombs = 0
	for i := range m.idx {
		m.idx[i] = idxEmpty
	}
}
