package sim

import "testing"

// TestCoreModelRegistry: every registered name builds, reports itself,
// and validates; unknown names are rejected by Validate.
func TestCoreModelRegistry(t *testing.T) {
	for _, name := range CoreModels() {
		cfg := testConfig()
		cfg.Core = name
		if err := cfg.Validate(); err != nil {
			t.Fatalf("core=%s: %v", name, err)
		}
		c := NewCoreModel(cfg)
		if c.Model() != name {
			t.Errorf("core=%s reports Model()=%q", name, c.Model())
		}
		if DescribeCoreModel(name) == "" {
			t.Errorf("core=%s has no description", name)
		}
	}
	bad := testConfig()
	bad.Core = "tomasulo"
	if bad.Validate() == nil {
		t.Error("unknown core model accepted")
	}
}

// TestCoreNameLegacyResolution: an empty Core selects the interval
// model — the behaviour of every configuration written before the
// axis existed.
func TestCoreNameLegacyResolution(t *testing.T) {
	cfg := testConfig()
	if got := cfg.CoreName(); got != CoreInterval {
		t.Fatalf("empty Core resolves to %q, want %q", got, CoreInterval)
	}
	if m := NewCoreModel(cfg).Model(); m != CoreInterval {
		t.Fatalf("empty Core builds %q, want %q", m, CoreInterval)
	}
}

// chase runs a dependent pointer-chase of n loads (each load's address
// register depends on the previous load) and returns the cycle count.
func chase(c CoreModel, n int, stride int64) float64 {
	ready := 0.0
	for i := 0; i < n; i++ {
		ready = c.Load(1, int64(i)*stride, ready)
	}
	c.Finish()
	return c.Cycles()
}

// scan runs n independent loads (no inter-load dependencies) and
// returns the cycle count.
func scan(c CoreModel, n int, stride int64) float64 {
	for i := 0; i < n; i++ {
		c.Load(1, int64(i)*stride, 0)
	}
	c.Finish()
	return c.Cycles()
}

// scanUse runs n independent loads, each immediately consumed by an
// ALU op — the pattern that separates stall-on-use (each use waits out
// the miss) from an out-of-order window (uses wait, dispatch does not).
func scanUse(c CoreModel, n int, stride int64) float64 {
	for i := 0; i < n; i++ {
		v := c.Load(1, int64(i)*stride, 0)
		c.Op(v, 1)
	}
	c.Finish()
	return c.Cycles()
}

// TestOoOCoreOverlapsIndependentMisses: the ooo model must overlap
// independent cache misses (far faster than serial), while a dependent
// chain of the same misses cannot overlap at all.
func TestOoOCoreOverlapsIndependentMisses(t *testing.T) {
	cfg := testConfig()
	cfg.Core = CoreOoO
	const n, stride = 64, 1 << 16 // every load a fresh L3-missing line
	indep := scan(NewOoOCore(cfg), n, stride)
	dep := chase(NewOoOCore(cfg), n, stride)
	if indep*2 > dep {
		t.Errorf("independent misses %f cycles vs dependent %f: expected >2x overlap", indep, dep)
	}
}

// TestOoOCoreROBBoundsOverlap: shrinking the reorder buffer must slow
// an independent-miss stream — the window is what bounds how far ahead
// execution runs.
func TestOoOCoreROBBoundsOverlap(t *testing.T) {
	wide := testConfig()
	wide.Core = CoreOoO
	narrow := testConfig()
	narrow.Core = CoreOoO
	narrow.ROBSize = 2
	const n, stride = 64, 1 << 16
	fast := scan(NewOoOCore(wide), n, stride)
	slow := scan(NewOoOCore(narrow), n, stride)
	if slow <= fast {
		t.Errorf("ROB=2 run (%f cycles) not slower than ROB=%d (%f)", slow, wide.ROBSize, fast)
	}
}

// TestOoOCoreIgnoresOutOfOrderFlag: core=ooo pins the pipeline style;
// the legacy OutOfOrder switch must not change its timing.
func TestOoOCoreIgnoresOutOfOrderFlag(t *testing.T) {
	a := testConfig()
	a.Core = CoreOoO
	a.OutOfOrder = true
	b := testConfig()
	b.Core = CoreOoO
	b.OutOfOrder = false
	const n, stride = 64, 1 << 16
	if ca, cb := scan(NewCoreModel(a), n, stride), scan(NewCoreModel(b), n, stride); ca != cb {
		t.Errorf("OutOfOrder flag changed ooo timing: %f vs %f", ca, cb)
	}
}

// TestInOrderCoreStallsOnEveryMiss: on the inorder model, a stream of
// independent-but-consumed misses costs about as much as a fully
// dependent chain — stall-on-use with no window extracts no MLP —
// while the ooo model runs the same stream far faster.
func TestInOrderCoreStallsOnEveryMiss(t *testing.T) {
	cfg := testConfig()
	cfg.Core = CoreInOrder
	const n, stride = 64, 1 << 16
	indep := scanUse(NewInOrderCore(cfg), n, stride)
	dep := chase(NewInOrderCore(cfg), n, stride)
	if indep < dep*0.8 {
		t.Errorf("inorder overlapped misses: independent-used %f vs dependent %f", indep, dep)
	}
	ooo := testConfig()
	ooo.Core = CoreOoO
	if fast := scanUse(NewOoOCore(ooo), n, stride); indep <= fast*2 {
		t.Errorf("inorder scan (%f) not much slower than ooo scan (%f)", indep, fast)
	}
}

// TestInOrderPrefetchStillHelps: software prefetches must hide latency
// on the inorder model — they access the hierarchy without stalling
// issue, which is the paper's entire premise for in-order machines.
func TestInOrderPrefetchStillHelps(t *testing.T) {
	cfg := testConfig()
	cfg.Core = CoreInOrder
	const n, stride = 64, 1 << 16
	plain := scanUse(NewInOrderCore(cfg), n, stride)

	pf := NewInOrderCore(cfg)
	// The 64KiB stride maps every line into one L1 set, so the
	// look-ahead must stay below the associativity or the prefetches
	// evict each other before use (the pollution effect of figure 2).
	const ahead = 4
	for i := 0; i < n; i++ {
		pf.Prefetch(2, int64(i+ahead)*stride, 0, true)
		v := pf.Load(1, int64(i)*stride, 0)
		pf.Op(v, 1)
	}
	pf.Finish()
	if pf.Cycles() >= plain {
		t.Errorf("prefetched scan %f cycles, plain %f: prefetch did not help", pf.Cycles(), plain)
	}
}

// TestCoreModelResetReproduces: for every model, Reset must restore a
// cold core — a second identical run reproduces cycles and stats
// exactly (the sweep engine's reuse contract).
func TestCoreModelResetReproduces(t *testing.T) {
	for _, name := range CoreModels() {
		cfg := testConfig()
		cfg.Core = name
		c := NewCoreModel(cfg)
		run := func() (float64, CoreStats) {
			ready := 0.0
			for i := 0; i < 256; i++ {
				ready = c.Load(1, int64(i%7)*4096, ready)
				ready = c.Op(ready, 1)
				c.Branch(ready, true)
			}
			c.Finish()
			return c.Cycles(), c.CoreStats()
		}
		cy1, st1 := run()
		c.Reset()
		cy2, st2 := run()
		if cy1 != cy2 || st1 != st2 {
			t.Errorf("core=%s: reset run differs: %f/%+v vs %f/%+v", name, cy1, st1, cy2, st2)
		}
	}
}

// TestPrefetchLateCyclesAccumulates pins the repaired statistic: a
// demand load that hits a line whose prefetch-issued fill is still in
// flight waits for the fill, and those waited cycles — beyond a normal
// hit at that level — are charged to PrefetchLateCycles.
func TestPrefetchLateCyclesAccumulates(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	const addr = 1 << 20

	// Warm the TLB for the page with a demand to a different line, and
	// let its walk and fill drain, so the timings below see no
	// translation latency.
	warm := h.Access(AccessLoad, 9, addr+64, 0)
	t0 := warm + 10

	// Issue the prefetch: the line is filled into every level with its
	// DRAM completion time.
	pfDone := h.Access(AccessPrefetch, 1, addr, t0)
	if pfDone <= t0+float64(cfg.Caches[0].Latency) {
		t.Fatalf("prefetch completed at %f, expected a DRAM-latency fill", pfDone)
	}

	// Demand the line immediately: it hits L1, but the data is not
	// there yet — the load completes with the fill, and the cycles
	// beyond an ordinary L1 hit are the late-prefetch penalty.
	start := t0 + 1
	done := h.Access(AccessLoad, 2, addr, start)
	if done != pfDone {
		t.Fatalf("demand hit on in-flight line completed at %f, want fill time %f", done, pfDone)
	}
	want := pfDone - (start + float64(cfg.Caches[0].Latency))
	if h.PrefetchLateCycles != want {
		t.Errorf("PrefetchLateCycles = %f, want %f", h.PrefetchLateCycles, want)
	}
	if h.PrefetchLateCycles <= 0 {
		t.Errorf("PrefetchLateCycles = %f, want > 0", h.PrefetchLateCycles)
	}

	// A timely demand (after the fill) adds nothing.
	before := h.PrefetchLateCycles
	h.Access(AccessLoad, 2, addr, pfDone+1)
	if h.PrefetchLateCycles != before {
		t.Errorf("timely hit accumulated late cycles: %f -> %f", before, h.PrefetchLateCycles)
	}
}

// TestTLBMidWalkAccessWaits pins the repaired walk semantics: the page
// is inserted into the TLB when its walk starts, but an access hitting
// that entry mid-walk cannot resolve before the walker returns.
func TestTLBMidWalkAccessWaits(t *testing.T) {
	cfg := testConfig()
	tlb := NewTLB(cfg)
	const addr = 42 << 12

	walkDone := tlb.Translate(addr, 0)
	if walkDone < float64(cfg.WalkLatency) {
		t.Fatalf("first access resolved at %f, want a full walk (>= %d)", walkDone, cfg.WalkLatency)
	}

	// Second access to the same page while the walk is in flight: it
	// hits the pre-inserted entry but must wait for the walk.
	if got := tlb.Translate(addr, 1); got != walkDone {
		t.Errorf("mid-walk access resolved at %f, want walk completion %f", got, walkDone)
	}
	if tlb.Walks != 1 {
		t.Errorf("mid-walk access started a second walk (Walks=%d)", tlb.Walks)
	}

	// After the walk completes, hits are instant again.
	if got := tlb.Translate(addr, walkDone+1); got != walkDone+1 {
		t.Errorf("post-walk hit resolved at %f, want %f", got, walkDone+1)
	}
}

// TestTLBMidWalkNoWalkMirrors: TranslateNoWalk's hit paths must mirror
// the fixed Translate semantics — a hit on a mid-walk page waits for
// the walk's completion.
func TestTLBMidWalkNoWalkMirrors(t *testing.T) {
	cfg := testConfig()
	tlb := NewTLB(cfg)
	const addr = 7 << 12

	walkDone := tlb.Translate(addr, 0)
	got, ok := tlb.TranslateNoWalk(addr, 1)
	if !ok {
		t.Fatal("TranslateNoWalk missed a page Translate just inserted")
	}
	if got != walkDone {
		t.Errorf("TranslateNoWalk mid-walk resolved at %f, want walk completion %f", got, walkDone)
	}
	if got2, _ := tlb.TranslateNoWalk(addr, walkDone+1); got2 != walkDone+1 {
		t.Errorf("TranslateNoWalk post-walk hit resolved at %f, want %f", got2, walkDone+1)
	}
}

// TestTLBMidWalkL2HitWaits: the L2 hit path waits for an in-flight
// walk too (the walk inserts into both levels at its start).
func TestTLBMidWalkL2HitWaits(t *testing.T) {
	cfg := testConfig()
	tlb := NewTLB(cfg)
	const addr = 9 << 12

	walkDone := tlb.Translate(addr, 0)
	// Evict the page from the one-level-fits-all L1 by touching enough
	// other pages, leaving the L2 entry (and the pending walk).
	for i := 0; i < cfg.TLBEntries; i++ {
		tlb.Translate(int64(1000+i)<<12, 0)
	}
	got := tlb.Translate(addr, 1)
	if got < walkDone {
		t.Errorf("mid-walk L2 hit resolved at %f, before walk completion %f", got, walkDone)
	}
}

// The per-model core benchmarks drive a mixed instruction stream (the
// CI bench smoke entry for the core-model subsystem).
func benchCore(b *testing.B, name string) {
	cfg := testConfig()
	cfg.Core = name
	c := NewCoreModel(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	ready := 0.0
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0:
			ready = c.Load(1, int64(i)*64, ready)
		case 1:
			ready = c.Op(ready, 1)
		case 2:
			c.Prefetch(2, int64(i+32)*64, ready, true)
		default:
			c.Branch(ready, true)
		}
	}
}

func BenchmarkCoreInterval(b *testing.B) { benchCore(b, CoreInterval) }
func BenchmarkCoreOoO(b *testing.B)      { benchCore(b, CoreOoO) }
func BenchmarkCoreInOrder(b *testing.B)  { benchCore(b, CoreInOrder) }
