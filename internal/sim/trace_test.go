package sim

import (
	"strings"
	"testing"
)

func TestTracerRecordsAccesses(t *testing.T) {
	h := NewHierarchy(testConfig())
	tr := NewTracer(16)
	h.SetTracer(tr)
	h.Access(AccessLoad, 1, 0, 0)
	h.Access(AccessLoad, 1, 8, 300) // same line: L1 hit
	h.Access(AccessPrefetch, 2, 1<<20, 300)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Level != -1 {
		t.Errorf("cold miss served by level %d, want DRAM", evs[0].Level)
	}
	if evs[1].Level != 0 {
		t.Errorf("hit served by level %d, want L1", evs[1].Level)
	}
	if evs[2].Kind != AccessPrefetch {
		t.Error("prefetch kind lost")
	}
	if evs[0].Latency() <= evs[1].Latency() {
		t.Error("miss should take longer than hit")
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "DRAM") || !strings.Contains(dump, "L1") || !strings.Contains(dump, "swpf") {
		t.Errorf("dump missing fields:\n%s", dump)
	}
}

func TestTracerRingWraps(t *testing.T) {
	h := NewHierarchy(testConfig())
	tr := NewTracer(4)
	h.SetTracer(tr)
	for i := int64(0); i < 10; i++ {
		h.Access(AccessLoad, int(i), i*4096, float64(i))
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Chronological order, most recent 4 (PCs 6..9).
	for i, e := range evs {
		if e.PC != 6+i {
			t.Errorf("event %d has pc %d, want %d", i, e.PC, 6+i)
		}
	}
}

func TestTracerFilter(t *testing.T) {
	h := NewHierarchy(testConfig())
	tr := NewTracer(16)
	tr.Filter = func(e TraceEvent) bool { return e.Level == -1 } // DRAM only
	h.SetTracer(tr)
	h.Access(AccessLoad, 1, 0, 0)
	h.Access(AccessLoad, 1, 8, 300) // L1 hit: filtered
	if len(tr.Events()) != 1 {
		t.Errorf("filter kept %d events, want 1", len(tr.Events()))
	}
}

func TestTracerNilByDefault(t *testing.T) {
	h := NewHierarchy(testConfig())
	// Must not panic without a tracer.
	h.Access(AccessLoad, 1, 0, 0)
	h.Access(AccessStore, 1, 64, 1)
}
