package sim

// TLB models a two-level data TLB backed by a page-table walker with a
// limited number of concurrent walks. The walker limit matters: §6.1 of
// the paper attributes the Cortex-A57's limited prefetch gains on IS
// and HJ-2 to supporting only a single page-table walk at a time.
type TLB struct {
	pageShift uint
	l1        *lruMap
	l2        *lruMap // nil when disabled
	l2Latency int64
	walkLat   int64
	walkers   []float64 // per-walker busy-until time

	// In-flight walks by page, so concurrent accesses to one page share
	// a single walk.
	pending *timeMap

	// Stats.
	Hits, L2Hits, Walks uint64
	WalkStallCycles     float64
}

// NewTLB builds the TLB from a machine configuration.
func NewTLB(cfg *Config) *TLB {
	shift := uint(0)
	for 1<<shift != cfg.PageSize {
		shift++
	}
	t := &TLB{
		pageShift: shift,
		l1:        newLRUMap(cfg.TLBEntries),
		l2Latency: cfg.TLB2Latency,
		walkLat:   cfg.WalkLatency,
		walkers:   make([]float64, cfg.PageWalkers),
		pending:   newTimeMap(64),
	}
	if cfg.TLB2Entries > 0 {
		t.l2 = newLRUMap(cfg.TLB2Entries)
	}
	return t
}

// Translate returns the time at which the physical address is known.
// On an L1 hit this is `now`. A miss takes the L2 latency or a full
// page-table walk, serialised on walker availability.
//
// Walk-start inserts the page into both levels so later accesses hit
// instead of re-walking, but a hit on a page whose walk is still in
// flight cannot resolve before the walker returns: hit paths consult
// the pending-walk table and wait for the walk's completion.
func (t *TLB) Translate(addr int64, now float64) float64 {
	page := addr >> t.pageShift
	if t.l1.lookup(page) {
		t.Hits++
		return t.waitWalk(page, now)
	}
	if t.l2 != nil && t.l2.lookup(page) {
		t.L2Hits++
		t.l1.insert(page)
		return t.waitWalk(page, now+float64(t.l2Latency))
	}
	// Join an in-flight walk for the same page if one exists.
	if done, ok := t.pending.get(page); ok && done > now {
		return done
	}
	// Acquire the least-busy walker.
	t.Walks++
	best := 0
	for i := range t.walkers {
		if t.walkers[i] < t.walkers[best] {
			best = i
		}
	}
	start := now
	if t.walkers[best] > start {
		t.WalkStallCycles += t.walkers[best] - start
		start = t.walkers[best]
	}
	done := start + float64(t.walkLat)
	t.walkers[best] = done
	t.pending.put(page, done)
	if t.pending.n > 64 {
		t.pending.sweep(now)
	}
	t.l1.insert(page)
	if t.l2 != nil {
		t.l2.insert(page)
	}
	return done
}

// waitWalk defers a TLB hit that lands while the page's walk is still
// in flight: the translation is not available before the walk
// completes, whatever level the (pre-inserted) entry hit in.
func (t *TLB) waitWalk(page int64, ready float64) float64 {
	if done, ok := t.pending.get(page); ok && done > ready {
		return done
	}
	return ready
}

// TranslateNoWalk resolves a translation only if it hits one of the
// TLB levels: ok=false means a full walk would be needed, and no walk
// is started. This is the hardware-prefetch path — real prefetch
// engines drop speculative addresses that miss the TLB rather than
// occupy a page-table walker — and its hit paths mirror Translate
// exactly (stats and LRU movement included), so a prefetcher whose
// candidates stay on the triggering access's page behaves identically
// to the walking path.
func (t *TLB) TranslateNoWalk(addr int64, now float64) (float64, bool) {
	page := addr >> t.pageShift
	if t.l1.lookup(page) {
		t.Hits++
		return t.waitWalk(page, now), true
	}
	if t.l2 != nil && t.l2.lookup(page) {
		t.L2Hits++
		t.l1.insert(page)
		return t.waitWalk(page, now+float64(t.l2Latency)), true
	}
	return 0, false
}

// Reset clears all entries and statistics in place, preserving the
// configured capacities and their storage.
func (t *TLB) Reset() {
	t.l1.reset()
	if t.l2 != nil {
		t.l2.reset()
	}
	for i := range t.walkers {
		t.walkers[i] = 0
	}
	t.pending.reset()
	t.Hits, t.L2Hits, t.Walks = 0, 0, 0
	t.WalkStallCycles = 0
}
