package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() *Config {
	cfg := DefaultConfig()
	cfg.StridePrefetch = false // most tests want deterministic cache content
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.IssueWidth = 0
	if bad.Validate() == nil {
		t.Error("zero issue width accepted")
	}
	bad2 := DefaultConfig()
	bad2.PageSize = 3000
	if bad2.Validate() == nil {
		t.Error("non-power-of-two page size accepted")
	}
	bad3 := DefaultConfig()
	bad3.Caches = nil
	if bad3.Validate() == nil {
		t.Error("no caches accepted")
	}
	bad4 := DefaultConfig()
	bad4.Caches[1].LineSize = 128
	if bad4.Validate() == nil {
		t.Error("mismatched line sizes accepted")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L1", Size: 1024, LineSize: 64, Assoc: 2, Latency: 4})
	if _, ok := c.Lookup(0, 0, true); ok {
		t.Fatal("cold cache hit")
	}
	c.Fill(0, 10, false)
	ready, ok := c.Lookup(0, 20, true)
	if !ok || ready != 20 {
		t.Fatalf("hit after fill: ready=%v ok=%v, want 20 true", ready, ok)
	}
	// A demand arriving before the fill completes waits for it.
	ready, ok = c.Lookup(0, 5, true)
	if !ok || ready != 10 {
		t.Fatalf("in-flight hit: ready=%v ok=%v, want 10 true", ready, ok)
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("stats: hits=%d misses=%d, want 2,1", c.Hits, c.Misses)
	}
	// Same line, different offset: still a hit.
	if _, ok := c.Lookup(63, 30, true); !ok {
		t.Error("same-line offset missed")
	}
	// Different set index: miss.
	if _, ok := c.Lookup(64, 30, true); ok {
		t.Error("adjacent line hit unexpectedly")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B lines: addresses 0, 1024, 2048 map to set 0.
	c := NewCache(CacheConfig{Name: "L1", Size: 1024, LineSize: 64, Assoc: 2, Latency: 4})
	c.Fill(0, 0, false)
	c.Fill(1024, 0, false)
	c.Lookup(0, 1, true) // touch 0: 1024 becomes LRU
	c.Fill(2048, 2, false)
	if !c.Contains(0) {
		t.Error("recently used line evicted")
	}
	if c.Contains(1024) {
		t.Error("LRU line survived")
	}
	if !c.Contains(2048) {
		t.Error("new line missing")
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L1", Size: 1024, LineSize: 64, Assoc: 2, Latency: 4})
	c.Fill(0, 0, true)
	if c.PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d", c.PrefetchFills)
	}
	c.Lookup(0, 1, true)
	if c.PrefetchedUsed != 1 {
		t.Errorf("prefetched-used = %d, want 1", c.PrefetchedUsed)
	}
	// An unused prefetched line evicted counts as pollution.
	c.Fill(1024, 0, true)
	c.Fill(2048, 0, false)
	c.Fill(3072, 0, false) // evicts 1024 (LRU, unused prefetch)
	if c.PrefetchedUnused != 1 {
		t.Errorf("prefetched-unused = %d, want 1", c.PrefetchedUnused)
	}
}

// TestCacheVsReferenceModel cross-checks the set-associative cache
// against a brute-force fully-associative-per-set reference.
func TestCacheVsReferenceModel(t *testing.T) {
	cfg := CacheConfig{Name: "L1", Size: 4096, LineSize: 64, Assoc: 4, Latency: 1}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCache(cfg)
		type key struct{ set, tag int64 }
		ref := map[int64][]int64{} // set -> lines in LRU order (front = LRU)
		sets := cfg.Sets()
		for step := 0; step < 500; step++ {
			addr := int64(r.Intn(1 << 14))
			line := addr >> 6
			set := line & (sets - 1)
			_, hit := c.Lookup(addr, float64(step), true)
			// Reference.
			lst := ref[set]
			refHit := false
			for i, l := range lst {
				if l == line {
					refHit = true
					lst = append(append(append([]int64{}, lst[:i]...), lst[i+1:]...), line)
					break
				}
			}
			if hit != refHit {
				t.Logf("seed %d step %d addr %d: sim=%v ref=%v", seed, step, addr, hit, refHit)
				return false
			}
			if !hit {
				c.Fill(addr, float64(step), false)
				if len(lst) >= cfg.Assoc {
					lst = lst[1:]
				}
				lst = append(lst, line)
			}
			ref[set] = lst
			_ = key{}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestTLBHitAndWalk(t *testing.T) {
	cfg := testConfig()
	cfg.TLB2Entries = 0
	tlb := NewTLB(cfg)
	done := tlb.Translate(0, 100)
	if done != 100+float64(cfg.WalkLatency) {
		t.Fatalf("first access should walk: done=%v", done)
	}
	if tlb.Walks != 1 {
		t.Fatalf("walks = %d", tlb.Walks)
	}
	if d := tlb.Translate(64, 200); d != 200 {
		t.Errorf("same-page access should hit: %v", d)
	}
	if d := tlb.Translate(2*cfg.PageSize, 300); d != 300+float64(cfg.WalkLatency) {
		t.Errorf("new page should walk: %v", d)
	}
}

func TestTLBWalkerSerialisation(t *testing.T) {
	// One walker: two back-to-back misses at the same time serialise.
	// Two walkers: they proceed in parallel.
	mk := func(walkers int) float64 {
		cfg := testConfig()
		cfg.PageWalkers = walkers
		cfg.TLB2Entries = 0
		tlb := NewTLB(cfg)
		tlb.Translate(0, 0)
		return tlb.Translate(cfg.PageSize, 0) // different page, same time
	}
	one := mk(1)
	two := mk(2)
	cfg := testConfig()
	if one != 2*float64(cfg.WalkLatency) {
		t.Errorf("single walker: second walk done at %v, want %v", one, 2*float64(cfg.WalkLatency))
	}
	if two != float64(cfg.WalkLatency) {
		t.Errorf("two walkers: second walk done at %v, want %v", two, float64(cfg.WalkLatency))
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	cfg := testConfig()
	cfg.TLBEntries = 4
	cfg.TLB2Entries = 0
	tlb := NewTLB(cfg)
	for p := int64(0); p < 5; p++ {
		tlb.Translate(p*cfg.PageSize, float64(p)*1000)
	}
	walks := tlb.Walks
	// Page 0 was LRU and must have been evicted.
	tlb.Translate(0, 10000)
	if tlb.Walks != walks+1 {
		t.Error("evicted page did not re-walk")
	}
}

func TestHugePagesReduceWalks(t *testing.T) {
	walk := func(pageSize int64) uint64 {
		cfg := testConfig()
		cfg.PageSize = pageSize
		cfg.TLBEntries = 8
		cfg.TLB2Entries = 0
		h := NewHierarchy(cfg)
		// Touch 1 MiB of memory sparsely.
		for a := int64(0); a < 1<<20; a += 8192 {
			h.Access(AccessLoad, 1, a, float64(a))
		}
		return h.TLBStats().Walks
	}
	small := walk(4096)
	huge := walk(2 << 20)
	if huge >= small/8 {
		t.Errorf("huge pages should slash walks: small=%d huge=%d", small, huge)
	}
}

func TestHierarchyMissGoesToDRAM(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	done := h.Access(AccessLoad, 1, 0, 0)
	// Walk + L1+L2+L3 probes + DRAM latency.
	min := float64(cfg.WalkLatency + cfg.DRAMLatency)
	if done < min {
		t.Errorf("cold miss done at %v, want >= %v", done, min)
	}
	if h.DRAMAccesses != 1 {
		t.Errorf("DRAM accesses = %d", h.DRAMAccesses)
	}
	// Second access to the same line: L1 hit.
	done2 := h.Access(AccessLoad, 1, 8, done)
	if done2 != done+float64(cfg.Caches[0].Latency) {
		t.Errorf("hit at %v, want %v", done2, done+float64(cfg.Caches[0].Latency))
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	h.Access(AccessPrefetch, 7, 4096, 0)
	// Much later, the demand load hits in L1.
	done := h.Access(AccessLoad, 1, 4096, 1000)
	if done != 1000+float64(cfg.Caches[0].Latency) {
		t.Errorf("prefetched line not an L1 hit: %v", done)
	}
	// A too-late prefetch: demand arrives while fill is in flight and
	// waits for completion, not a full re-fetch.
	h2 := NewHierarchy(cfg)
	pfDone := h2.Access(AccessPrefetch, 7, 8192, 0)
	demand := h2.Access(AccessLoad, 1, 8192, 10)
	if demand < 10 || demand > pfDone+float64(cfg.Caches[0].Latency)+1 {
		t.Errorf("late prefetch: demand=%v, prefetch done=%v", demand, pfDone)
	}
	if h2.DRAMAccesses != 1 {
		t.Errorf("demand re-fetched an in-flight line: %d DRAM accesses", h2.DRAMAccesses)
	}
}

func TestMSHRLimitSerialisesMisses(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	cfg.TLBEntries = 1024 // keep TLB out of the picture
	cfg.WalkLatency = 0
	h := NewHierarchy(cfg)
	var last float64
	for i := int64(0); i < 6; i++ {
		last = h.Access(AccessLoad, int(i), i*4096, 0)
	}
	if h.MSHRStallCycles == 0 {
		t.Error("no MSHR stalls with 6 concurrent misses on 2 MSHRs")
	}
	// With ample MSHRs the same pattern overlaps more.
	cfg2 := testConfig()
	cfg2.MSHRs = 16
	cfg2.TLBEntries = 1024
	cfg2.WalkLatency = 0
	h2 := NewHierarchy(cfg2)
	var last2 float64
	for i := int64(0); i < 6; i++ {
		last2 = h2.Access(AccessLoad, int(i), i*4096, 0)
	}
	if last2 >= last {
		t.Errorf("more MSHRs should finish sooner: %v vs %v", last2, last)
	}
}

func TestBusBandwidthContention(t *testing.T) {
	solo := testConfig()
	shared := testConfig()
	shared.SharedCores = 4
	h1 := NewHierarchy(solo)
	h4 := NewHierarchy(shared)
	var d1, d4 float64
	for i := int64(0); i < 32; i++ {
		d1 = h1.Access(AccessLoad, 1, i*4096, 0)
		d4 = h4.Access(AccessLoad, 1, i*4096, 0)
	}
	if d4 <= d1 {
		t.Errorf("bus contention should slow streams: shared=%v solo=%v", d4, d1)
	}
}

func TestStridePrefetcherCoversSequentialStream(t *testing.T) {
	cfg := DefaultConfig() // stride prefetcher on
	h := NewHierarchy(cfg)
	misses := uint64(0)
	t0 := 0.0
	for i := int64(0); i < 512; i++ {
		addr := i * 8 // sequential 8-byte elements
		done := h.Access(AccessLoad, 42, addr, t0)
		t0 = done + 1
	}
	misses = h.Caches()[0].Misses
	// 512 loads cover 64 lines; without prefetching all 64 lines miss.
	// The stride prefetcher should cover most after training.
	if misses > 20 {
		t.Errorf("stride prefetcher left %d L1 misses on a sequential stream", misses)
	}
	if h.HWPrefetches == 0 {
		t.Error("no hardware prefetches issued")
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		h.Access(AccessLoad, 42, int64(r.Intn(1<<26))&^7, float64(i*10))
	}
	if h.HWPrefetches > 40 {
		t.Errorf("stride prefetcher fired %d times on random stream", h.HWPrefetches)
	}
}

func TestInOrderCoreStallsOnUse(t *testing.T) {
	cfg := testConfig()
	cfg.OutOfOrder = false
	cfg.IssueWidth = 1
	core := NewCore(cfg)
	// A load missing to DRAM...
	v := core.Load(1, 0, 0)
	// ...followed by a dependent op: in-order issue stalls until v.
	before := core.Cycles()
	core.Op(v, 1)
	if core.Cycles() < v {
		t.Errorf("in-order core did not stall: clock=%v, value ready=%v", core.Cycles(), v)
	}
	_ = before
}

func TestOutOfOrderCoreOverlapsMisses(t *testing.T) {
	run := func(ooo bool) float64 {
		cfg := testConfig()
		cfg.OutOfOrder = ooo
		cfg.IssueWidth = 2
		core := NewCore(cfg)
		// 8 independent miss + use pairs.
		for i := int64(0); i < 8; i++ {
			v := core.Load(int(i), i*8192, core.Cycles())
			core.Op(v, 1)
		}
		return core.Finish()
	}
	inOrder := run(false)
	ooo := run(true)
	if ooo*2 > inOrder {
		t.Errorf("OoO should be >2x faster on independent misses: ooo=%v in-order=%v", ooo, inOrder)
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	run := func(rob int) float64 {
		cfg := testConfig()
		cfg.ROBSize = rob
		cfg.TLBEntries = 1024
		cfg.WalkLatency = 0
		core := NewCore(cfg)
		for i := int64(0); i < 64; i++ {
			v := core.Load(int(i), i*8192, core.Cycles())
			core.Op(v, 1)
		}
		return core.Finish()
	}
	small := run(4)
	big := run(256)
	if big >= small {
		t.Errorf("larger ROB should be faster: rob4=%v rob256=%v", small, big)
	}
}

func TestPrefetchDoesNotStallCore(t *testing.T) {
	cfg := testConfig()
	cfg.OutOfOrder = false
	cfg.IssueWidth = 1
	core := NewCore(cfg)
	// Prefetch to a cold line: core advances by ~1 cycle only.
	core.Prefetch(9, 1<<20, 0, true)
	if core.Cycles() > 2 {
		t.Errorf("prefetch stalled the core: clock=%v", core.Cycles())
	}
	// Later demand load hits.
	done := core.Load(1, 1<<20, 500)
	if done > 500+float64(cfg.Caches[0].Latency)+1 {
		t.Errorf("prefetched demand load not a hit: %v", done)
	}
}

func TestInvalidPrefetchDropped(t *testing.T) {
	cfg := testConfig()
	core := NewCore(cfg)
	core.Prefetch(9, 123456, 0, false)
	if core.Hierarchy().SWPrefetches != 0 {
		t.Error("invalid prefetch reached the memory system")
	}
	if core.Prefetches != 1 {
		t.Error("invalid prefetch not counted as an instruction")
	}
}

func TestCoreReset(t *testing.T) {
	core := NewCore(testConfig())
	core.Load(1, 0, 0)
	core.Op(0, 1)
	core.Reset()
	if core.Cycles() != 0 || core.Instructions != 0 {
		t.Error("reset did not clear core state")
	}
	if core.Hierarchy().Loads != 0 {
		t.Error("reset did not clear hierarchy stats")
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	cfg := testConfig()
	cfg.MispredictRate = 0.5
	cfg.MispredictPenalty = 20
	core := NewCore(cfg)
	for i := 0; i < 10; i++ {
		core.Branch(0, true)
	}
	if core.Mispredicts != 5 {
		t.Errorf("mispredicts = %d, want 5", core.Mispredicts)
	}
	if core.Cycles() < 100 {
		t.Errorf("penalty not applied: clock=%v", core.Cycles())
	}
}

// Property: the hierarchy never returns a completion earlier than the
// request time, and demand hits never beat L1 latency.
func TestQuickAccessMonotonic(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHierarchy(DefaultConfig())
		now := 0.0
		for i := 0; i < 300; i++ {
			addr := int64(r.Intn(1 << 22))
			kind := AccessKind(r.Intn(3))
			done := h.Access(kind, r.Intn(8), addr, now)
			if done < now {
				return false
			}
			if kind == AccessLoad && done < now+float64(h.cfg.Caches[0].Latency) {
				return false
			}
			now += float64(r.Intn(3))
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// TestInclusiveHierarchy: after any demand load, the line must be
// present in every level at and below the serving level, so upper-level
// evictions never lose the only copy.
func TestInclusiveHierarchy(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		addr := int64(r.Intn(1 << 18))
		h.Access(AccessLoad, r.Intn(4), addr, float64(i*5))
		last := h.Caches()[len(h.Caches())-1]
		if !last.Contains(addr) {
			t.Fatalf("LLC lost line for %#x after access %d", addr, i)
		}
	}
}

// TestPrefetchPollutionVisible: blasting prefetches at a tiny cache
// must register unused-prefetch evictions — the pollution signal the
// too-early look-ahead case of figure 2 rests on.
func TestPrefetchPollutionVisible(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	for i := int64(0); i < 4096; i++ {
		h.Access(AccessPrefetch, 1, i*64, float64(i))
	}
	l1 := h.Caches()[0]
	if l1.PrefetchedUnused == 0 {
		t.Error("no pollution recorded despite 4096 untouched prefetches")
	}
}

// TestSharedBusMonotoneInCores: more contending cores must never make
// an access stream faster.
func TestSharedBusMonotoneInCores(t *testing.T) {
	finish := func(cores int) float64 {
		cfg := testConfig()
		cfg.SharedCores = cores
		h := NewHierarchy(cfg)
		var last float64
		for i := int64(0); i < 64; i++ {
			last = h.Access(AccessLoad, 1, i*4096, float64(i))
		}
		return last
	}
	t1, t2, t4 := finish(1), finish(2), finish(4)
	if !(t1 <= t2 && t2 <= t4) {
		t.Errorf("contention not monotone: %v %v %v", t1, t2, t4)
	}
}

// TestStrideTrackerInterference: two interleaved access streams inside
// one 4KiB region share a tracker, destroying the stride signal — the
// mechanism that leaves an intuitive-only prefetch scheme exposed when
// its look-ahead load walks the same array as the demand stream
// (figs. 2 and 5).
func TestStrideTrackerInterference(t *testing.T) {
	run := func(interfere bool) uint64 {
		cfg := DefaultConfig()
		h := NewHierarchy(cfg)
		now := 0.0
		for i := int64(0); i < 512; i++ {
			h.Access(AccessLoad, 1, i*8, now) // demand stream
			if interfere {
				// A second stream 32 elements ahead in the same region,
				// like the look-ahead load of an indirect-only prefetch.
				h.Access(AccessLoad, 2, (i+32)*8, now)
			}
			now += 4
		}
		return h.HWPrefetches
	}
	clean := run(false)
	interfered := run(true)
	if interfered*2 > clean {
		t.Errorf("same-region interleaving should break stride detection: clean=%d interfered=%d",
			clean, interfered)
	}
}

// TestStrideTrackerCapacity: a stream touched rarely relative to a
// barrage of random accesses loses its tracker to LRU replacement and
// never regains confidence.
func TestStrideTrackerCapacity(t *testing.T) {
	run := func(streams int) uint64 {
		cfg := DefaultConfig()
		cfg.StrideStreams = streams
		h := NewHierarchy(cfg)
		r := rand.New(rand.NewSource(3))
		now := 0.0
		for i := int64(0); i < 512; i++ {
			h.Access(AccessLoad, 1, i*64, now) // one line per touch
			for k := 0; k < 24; k++ {          // random traffic in between
				h.Access(AccessLoad, 2, int64(r.Intn(1<<26))&^7, now)
			}
			now += 50
		}
		return h.HWPrefetches
	}
	starved := run(8)
	roomy := run(4096)
	if starved*2 > roomy {
		t.Errorf("tracker eviction should starve the slow stream: 8 trackers=%d, 4096 trackers=%d",
			starved, roomy)
	}
}
