package sim

import (
	"fmt"
	"strings"
)

// TraceEvent records one memory access as observed by the hierarchy.
type TraceEvent struct {
	Kind     AccessKind
	PC       int
	Addr     int64
	Start    float64
	Complete float64
	// Level is the cache level that served the access (0 = L1), -1
	// for DRAM, or LevelDropped for a hardware prefetch discarded at
	// translation (TLB miss; the access touched no cache or DRAM).
	Level int
}

// LevelDropped marks a hardware-prefetch event that was dropped on a
// TLB miss instead of being served by any level.
const LevelDropped = -2

// Latency returns the access's total latency in cycles.
func (e TraceEvent) Latency() float64 { return e.Complete - e.Start }

func (e TraceEvent) String() string {
	kind := [...]string{"load", "store", "swpf", "hwpf"}[e.Kind]
	lvl := "DRAM"
	if e.Level >= 0 {
		lvl = fmt.Sprintf("L%d", e.Level+1)
	} else if e.Level == LevelDropped {
		lvl = "drop"
	}
	return fmt.Sprintf("%10.0f %-5s pc=%-5d addr=%#010x %-4s %6.0f cyc",
		e.Start, kind, e.PC, e.Addr, lvl, e.Latency())
}

// Tracer collects the most recent memory accesses in a bounded ring.
// Attach one with Hierarchy.SetTracer; a nil tracer (the default) costs
// nothing on the access path.
type Tracer struct {
	ring  []TraceEvent
	next  int
	total uint64
	// Filter, when non-nil, selects which events are kept.
	Filter func(TraceEvent) bool
}

// NewTracer creates a tracer holding the last n events.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 1024
	}
	return &Tracer{ring: make([]TraceEvent, 0, n)}
}

func (t *Tracer) record(e TraceEvent) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % cap(t.ring)
}

// Total returns how many events were recorded (including overwritten).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []TraceEvent {
	if len(t.ring) < cap(t.ring) {
		out := make([]TraceEvent, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]TraceEvent, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (t *Tracer) Dump() string {
	var sb strings.Builder
	for _, e := range t.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SetTracer attaches (or with nil, detaches) a tracer to the hierarchy.
func (h *Hierarchy) SetTracer(t *Tracer) { h.tracer = t }
