package sim

// OoOCore models an out-of-order core at the retirement level, one
// step more honest than the interval model's completion-time window:
//
//   - dispatch is in order at IssueWidth per cycle and stalls only when
//     the ROB is full — the entry allocated ROBSize instructions ago
//     has not yet retired;
//   - execution is decoupled from dispatch: an instruction starts when
//     its operands are ready, however far the dispatch clock has run
//     ahead, so independent cache misses overlap up to the hierarchy's
//     MSHR limit;
//   - retirement is in order: an instruction retires no earlier than
//     its predecessor, so one long-latency miss at the head of the ROB
//     holds every younger instruction's entry until it completes.
//
// The last rule is what the interval model lacks and the paper's §6.1
// analysis turns on: the reorder window bounds how many iterations
// ahead the core can run, so demand memory-level parallelism is
// min(window / iteration length, MSHRs) — modelled, not approximated
// by an issue constant. Software prefetches still help (they fetch
// beyond the window and never occupy it waiting on data), but the gain
// is the gap between window-limited MLP and full coverage, which is
// why Haswell's column is smaller than the in-order machines'.
//
// The model ignores Config.OutOfOrder: selecting it makes any machine
// out of order.
type OoOCore struct {
	cfg  *Config
	hier *Hierarchy

	clock    float64
	issueInt float64
	// retire holds the in-order retirement times of the last ROBSize
	// instructions; lastRetire enforces the in-order rule.
	retire     []float64
	robPos     int
	lastRetire float64

	branchCount uint64
	stats       CoreStats
}

// NewOoOCore builds an out-of-order core over a fresh memory hierarchy.
func NewOoOCore(cfg *Config) *OoOCore {
	return &OoOCore{
		cfg:      cfg,
		hier:     NewHierarchy(cfg),
		issueInt: 1 / float64(cfg.IssueWidth),
		retire:   make([]float64, cfg.ROBSize),
	}
}

// Model returns the registry name.
func (c *OoOCore) Model() string { return CoreOoO }

// Config returns the machine configuration.
func (c *OoOCore) Config() *Config { return c.cfg }

// Hierarchy returns the core's memory system.
func (c *OoOCore) Hierarchy() *Hierarchy { return c.hier }

// Cycles returns the current dispatch-clock value.
func (c *OoOCore) Cycles() float64 {
	if c.lastRetire > c.clock {
		return c.lastRetire
	}
	return c.clock
}

// CoreStats snapshots the instruction-stream statistics.
func (c *OoOCore) CoreStats() CoreStats { return c.stats }

// issueAt reserves a dispatch slot: the clock advances by the issue
// interval, waiting first for a free ROB entry. Operands never stall
// dispatch — that is the out-of-order-ness.
func (c *OoOCore) issueAt() float64 {
	if oldest := c.retire[c.robPos]; oldest > c.clock {
		c.clock = oldest
	}
	c.clock += c.issueInt
	c.stats.Instructions++
	return c.clock
}

// retireAt records the instruction's in-order retirement: no earlier
// than completion, no earlier than the previous instruction.
func (c *OoOCore) retireAt(complete float64) {
	if complete < c.lastRetire {
		complete = c.lastRetire
	}
	c.lastRetire = complete
	c.retire[c.robPos] = complete
	c.robPos++
	if c.robPos == len(c.retire) {
		c.robPos = 0
	}
}

// Op executes a simple ALU instruction and returns the time its result
// is ready.
func (c *OoOCore) Op(opsReady float64, latency int64) float64 {
	issue := c.issueAt()
	start := issue
	if opsReady > start {
		start = opsReady
	}
	complete := start + float64(latency)
	c.retireAt(complete)
	return complete
}

// Load issues a demand load; it executes once dispatched and operands
// are ready, and occupies its ROB entry until the data returns.
func (c *OoOCore) Load(pc int, addr int64, opsReady float64) float64 {
	issue := c.issueAt()
	start := issue
	if opsReady > start {
		start = opsReady
	}
	complete := c.hier.Access(AccessLoad, pc, addr, start)
	c.retireAt(complete)
	return complete
}

// Store issues a store; it retires at dispatch (store buffer) while the
// access drains through the memory system.
func (c *OoOCore) Store(pc int, addr int64, opsReady float64) float64 {
	issue := c.issueAt()
	start := issue
	if opsReady > start {
		start = opsReady
	}
	c.hier.Access(AccessStore, pc, addr, start)
	c.retireAt(issue)
	return issue
}

// Prefetch issues a software prefetch: one dispatch slot, a memory
// access, no stall and no window occupancy beyond dispatch — the
// reason prefetches reach beyond the ROB's own memory-level
// parallelism. valid=false drops the access (prefetches never fault).
func (c *OoOCore) Prefetch(pc int, addr int64, opsReady float64, valid bool) float64 {
	issue := c.issueAt()
	c.stats.Prefetches++
	if valid {
		start := issue
		if opsReady > start {
			start = opsReady
		}
		c.hier.Access(AccessPrefetch, pc, addr, start)
	}
	c.retireAt(issue)
	return issue
}

// Branch issues a (conditional) branch, restarting the pipeline at the
// configured deterministic mispredict rate.
func (c *OoOCore) Branch(opsReady float64, conditional bool) float64 {
	issue := c.issueAt()
	if conditional {
		c.stats.Branches++
		if c.cfg.MispredictRate > 0 {
			c.branchCount++
			interval := uint64(1 / c.cfg.MispredictRate)
			if interval > 0 && c.branchCount%interval == 0 {
				c.stats.Mispredicts++
				resolve := issue
				if opsReady > resolve {
					resolve = opsReady
				}
				c.clock = resolve + float64(c.cfg.MispredictPenalty)
			}
		}
	}
	c.retireAt(issue)
	return issue
}

// Finish waits for the last retirement and all outstanding memory-system
// work, returning the final cycle count.
func (c *OoOCore) Finish() float64 {
	if c.lastRetire > c.clock {
		c.clock = c.lastRetire
	}
	if d := c.hier.Drain(); d > c.clock {
		c.clock = d
	}
	return c.clock
}

// Reset returns the core and hierarchy to a cold state in place.
func (c *OoOCore) Reset() {
	c.clock = 0
	for i := range c.retire {
		c.retire[i] = 0
	}
	c.robPos = 0
	c.lastRetire = 0
	c.branchCount = 0
	c.stats = CoreStats{}
	c.hier.Reset()
}
