package sim

// cacheLine is one way of one set.
type cacheLine struct {
	tag   int64 // line address (addr >> lineShift); -1 = invalid
	ready float64
	used  uint64 // LRU stamp
	pf    bool   // brought in by a prefetch and not yet demanded
}

// Cache is a set-associative cache with LRU replacement. Lines carry a
// readiness timestamp so that a demand access arriving while a fill is
// still in flight waits for the fill rather than re-fetching.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   int64
	lines     []cacheLine
	stamp     uint64

	// Stats.
	Hits, Misses     uint64
	PrefetchFills    uint64
	PrefetchedUnused uint64 // prefetched lines evicted without a demand hit
	PrefetchedUsed   uint64
}

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheConfig) *Cache {
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
		if shift > 30 {
			panic("sim: line size must be a power of two")
		}
	}
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("sim: number of sets must be a power of two")
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   sets - 1,
		lines:     make([]cacheLine, sets*int64(cfg.Assoc)),
	}
	for i := range c.lines {
		c.lines[i].tag = -1
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) set(lineAddr int64) []cacheLine {
	s := (lineAddr & c.setMask) * int64(c.cfg.Assoc)
	return c.lines[s : s+int64(c.cfg.Assoc)]
}

// Lookup probes the cache. On hit it returns the time at which the data
// is available (fill completion for in-flight lines, else now) and
// updates LRU. On miss it returns ok=false.
func (c *Cache) Lookup(addr int64, now float64, demand bool) (ready float64, ok bool) {
	lineAddr := addr >> c.lineShift
	set := c.set(lineAddr)
	for i := range set {
		if set[i].tag == lineAddr {
			c.stamp++
			set[i].used = c.stamp
			if demand {
				c.Hits++
				if set[i].pf {
					set[i].pf = false
					c.PrefetchedUsed++
				}
			}
			r := set[i].ready
			if r < now {
				r = now
			}
			return r, true
		}
	}
	if demand {
		c.Misses++
	}
	return 0, false
}

// Fill inserts a line that becomes ready at the given time, evicting
// the LRU way.
func (c *Cache) Fill(addr int64, ready float64, isPrefetch bool) {
	lineAddr := addr >> c.lineShift
	set := c.set(lineAddr)
	victim := 0
	for i := range set {
		if set[i].tag == lineAddr {
			// Already present (racing fills); keep the earlier ready time.
			if ready < set[i].ready {
				set[i].ready = ready
			}
			return
		}
		if set[i].tag == -1 {
			victim = i
			goto place
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].pf {
		c.PrefetchedUnused++
	}
place:
	c.stamp++
	set[victim] = cacheLine{tag: lineAddr, ready: ready, used: c.stamp, pf: isPrefetch}
	if isPrefetch {
		c.PrefetchFills++
	}
}

// Contains reports whether the line holding addr is present (test hook).
func (c *Cache) Contains(addr int64) bool {
	lineAddr := addr >> c.lineShift
	for i := range c.set(lineAddr) {
		if c.set(lineAddr)[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{tag: -1}
	}
	c.stamp = 0
	c.Hits, c.Misses = 0, 0
	c.PrefetchFills, c.PrefetchedUnused, c.PrefetchedUsed = 0, 0, 0
}
