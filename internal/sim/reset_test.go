package sim

import "testing"

// hierSnapshot captures every statistic the hierarchy exposes, plus the
// drain time, so Reset regressions cannot hide in any counter.
type hierSnapshot struct {
	loads, stores, swpf, hwpf   uint64
	dram, dramBytes             uint64
	mshrStall, loadStall, late  float64
	cacheHits, cacheMisses      []uint64
	pfFills, pfUnused, pfUsed   []uint64
	tlbHits, tlbL2, tlbWalks    uint64
	walkStall, drain, lastReady float64
}

func driveHierarchy(h *Hierarchy) hierSnapshot {
	r := lcg(42)
	now := 0.0
	var w window
	var last float64
	for i := 0; i < 20000; i++ {
		// A mix of streams, random demand traffic, stores and software
		// prefetches, so every bookkeeping structure gets exercised:
		// stride trackers, MSHRs, in-flight merges, both TLB levels and
		// the page-walker queue.
		h.Access(AccessLoad, 1, int64(i)*8, now)
		addr := int64(r.next() & (1<<27 - 1))
		h.Access(AccessPrefetch, 2, addr, now)
		last = h.Access(AccessLoad, 3, addr, now+6)
		if i%3 == 0 {
			h.Access(AccessStore, 4, int64(r.next()&(1<<22-1)), now)
		}
		now = w.pace(now, last) + 1
	}
	s := hierSnapshot{
		loads: h.Loads, stores: h.Stores, swpf: h.SWPrefetches, hwpf: h.HWPrefetches,
		dram: h.DRAMAccesses, dramBytes: h.DRAMBytes,
		mshrStall: h.MSHRStallCycles, loadStall: h.LoadStallCycles, late: h.PrefetchLateCycles,
		tlbHits: h.tlb.Hits, tlbL2: h.tlb.L2Hits, tlbWalks: h.tlb.Walks,
		walkStall: h.tlb.WalkStallCycles, drain: h.Drain(), lastReady: last,
	}
	for _, c := range h.Caches() {
		s.cacheHits = append(s.cacheHits, c.Hits)
		s.cacheMisses = append(s.cacheMisses, c.Misses)
		s.pfFills = append(s.pfFills, c.PrefetchFills)
		s.pfUnused = append(s.pfUnused, c.PrefetchedUnused)
		s.pfUsed = append(s.pfUsed, c.PrefetchedUsed)
	}
	return s
}

// TestHierarchyResetReproducesStats is the regression test for the
// array-refactored reset paths: a Reset hierarchy must be
// indistinguishable from a fresh one, reproducing bit-identical
// statistics for an identical access sequence.
func TestHierarchyResetReproducesStats(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	first := driveHierarchy(h)
	h.Reset()
	second := driveHierarchy(h)

	fresh := driveHierarchy(NewHierarchy(cfg))

	for name, pair := range map[string][2]hierSnapshot{
		"reset-vs-first": {first, second},
		"reset-vs-fresh": {fresh, second},
	} {
		a, b := pair[0], pair[1]
		if a.loads != b.loads || a.stores != b.stores || a.swpf != b.swpf || a.hwpf != b.hwpf {
			t.Errorf("%s: access counters differ: %+v vs %+v", name, a, b)
		}
		if a.dram != b.dram || a.dramBytes != b.dramBytes {
			t.Errorf("%s: DRAM stats differ: %d/%d vs %d/%d", name, a.dram, a.dramBytes, b.dram, b.dramBytes)
		}
		if a.mshrStall != b.mshrStall || a.loadStall != b.loadStall || a.late != b.late {
			t.Errorf("%s: stall cycles differ: %v/%v/%v vs %v/%v/%v",
				name, a.mshrStall, a.loadStall, a.late, b.mshrStall, b.loadStall, b.late)
		}
		if a.tlbHits != b.tlbHits || a.tlbL2 != b.tlbL2 || a.tlbWalks != b.tlbWalks || a.walkStall != b.walkStall {
			t.Errorf("%s: TLB stats differ: %d/%d/%d/%v vs %d/%d/%d/%v",
				name, a.tlbHits, a.tlbL2, a.tlbWalks, a.walkStall, b.tlbHits, b.tlbL2, b.tlbWalks, b.walkStall)
		}
		if a.drain != b.drain || a.lastReady != b.lastReady {
			t.Errorf("%s: timing differs: drain %v vs %v, last %v vs %v", name, a.drain, b.drain, a.lastReady, b.lastReady)
		}
		for i := range a.cacheHits {
			if a.cacheHits[i] != b.cacheHits[i] || a.cacheMisses[i] != b.cacheMisses[i] ||
				a.pfFills[i] != b.pfFills[i] || a.pfUnused[i] != b.pfUnused[i] || a.pfUsed[i] != b.pfUsed[i] {
				t.Errorf("%s: cache L%d stats differ", name, i+1)
			}
		}
	}
}

// TestResetPreservesStorage asserts that Reset reuses the bookkeeping
// storage instead of reallocating it — the point of the refactor.
func TestResetPreservesStorage(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	driveHierarchy(h)

	pfBefore := h.pf
	inflightBefore := h.inflight
	inflightKeys := &h.inflight.keys[0]
	l1Before := h.tlb.l1
	l1Keys := &h.tlb.l1.keys[0]
	pendingBefore := h.tlb.pending

	h.Reset()

	if h.pf != pfBefore {
		t.Error("Reset replaced the hardware-prefetcher model")
	}
	if h.inflight != inflightBefore || &h.inflight.keys[0] != inflightKeys {
		t.Error("Reset reallocated the in-flight fill table")
	}
	if h.tlb.l1 != l1Before || &h.tlb.l1.keys[0] != l1Keys {
		t.Error("TLB Reset reallocated the L1 array")
	}
	if h.tlb.pending != pendingBefore {
		t.Error("TLB Reset reallocated the pending-walk table")
	}
	if h.inflight.n != 0 || h.tlb.l1.n != 0 {
		t.Error("Reset left live entries behind")
	}
	// The model's own storage-preservation contract is pinned by
	// internal/hwpf's reset tests; here we only require the hierarchy
	// to reset it in place rather than rebuild it.
}

// TestLRUMapMatchesReference cross-checks the open-addressed LRU array
// against a straightforward map+stamp model over a random workload —
// the exact semantics the TLB previously implemented with maps.
func TestLRUMapMatchesReference(t *testing.T) {
	const capacity = 8
	m := newLRUMap(capacity)
	ref := map[int64]uint64{}
	var stamp uint64
	refLookup := func(k int64) bool {
		if _, ok := ref[k]; !ok {
			return false
		}
		stamp++
		ref[k] = stamp
		return true
	}
	refInsert := func(k int64) {
		if _, ok := ref[k]; !ok && len(ref) >= capacity {
			var victim int64
			oldest := ^uint64(0)
			for p, s := range ref {
				if s < oldest {
					oldest = s
					victim = p
				}
			}
			delete(ref, victim)
		}
		stamp++
		ref[k] = stamp
	}

	r := lcg(99)
	for i := 0; i < 100000; i++ {
		k := int64(r.next() % 24)
		switch r.next() % 3 {
		case 0:
			if got, want := m.lookup(k), refLookup(k); got != want {
				t.Fatalf("step %d: lookup(%d) = %v, want %v", i, k, got, want)
			}
		default:
			if m.lookup(k) != refLookup(k) {
				t.Fatalf("step %d: pre-insert lookup(%d) mismatch", i, k)
			}
			m.insert(k)
			refInsert(k)
		}
		if i%5000 == 0 {
			m.reset()
			ref = map[int64]uint64{}
			stamp = 0
		}
	}
}
