package sim

import (
	"testing"
	"testing/quick"
)

// TestIssueWidthBoundsIPC: over a long stream of independent ops, the
// core must sustain close to its issue width and never exceed it.
func TestIssueWidthBoundsIPC(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		cfg := testConfig()
		cfg.IssueWidth = width
		core := NewCore(cfg)
		const n = 10000
		for i := 0; i < n; i++ {
			core.Op(0, 1)
		}
		ipc := float64(n) / core.Cycles()
		if ipc > float64(width)+0.01 {
			t.Errorf("width %d: IPC %.2f exceeds issue width", width, ipc)
		}
		if ipc < float64(width)*0.9 {
			t.Errorf("width %d: IPC %.2f too low for independent ops", width, ipc)
		}
	}
}

// TestDependentChainThroughput: a chain of dependent single-cycle ops
// completes at one per cycle regardless of width, on both core types.
func TestDependentChainThroughput(t *testing.T) {
	for _, ooo := range []bool{false, true} {
		cfg := testConfig()
		cfg.OutOfOrder = ooo
		cfg.IssueWidth = 4
		core := NewCore(cfg)
		ready := 0.0
		const n = 1000
		for i := 0; i < n; i++ {
			ready = core.Op(ready, 1)
		}
		if ready < float64(n) {
			t.Errorf("ooo=%v: dependent chain finished in %.0f cycles, want >= %d", ooo, ready, n)
		}
		// In-order issue pays the issue slot after each stall, so up to
		// (1 + 1/width) cycles per op.
		if ready > float64(n)*1.3+100 {
			t.Errorf("ooo=%v: dependent chain took %.0f cycles, want ~%d", ooo, ready, n)
		}
	}
}

// TestMulDivLatencies: arithmetic latencies show up in value readiness.
func TestMulDivLatencies(t *testing.T) {
	cfg := testConfig()
	core := NewCore(cfg)
	start := core.Cycles()
	done := core.Op(start, cfg.MulLatency)
	if done-start < float64(cfg.MulLatency) {
		t.Errorf("mul latency not applied: %.1f", done-start)
	}
}

// TestQuickClockMonotone: the core clock never moves backwards under
// any interleaving of operation kinds.
func TestQuickClockMonotone(t *testing.T) {
	err := quick.Check(func(seed int64, ops []uint8) bool {
		cfg := testConfig()
		cfg.OutOfOrder = seed%2 == 0
		core := NewCore(cfg)
		prev := 0.0
		ready := 0.0
		for i, op := range ops {
			if i > 200 {
				break
			}
			addr := int64(op) * 512
			switch op % 5 {
			case 0:
				ready = core.Op(ready, 1)
			case 1:
				ready = core.Load(i, addr, ready)
			case 2:
				core.Store(i, addr, ready)
			case 3:
				core.Prefetch(i, addr, ready, true)
			case 4:
				core.Branch(ready, true)
			}
			if core.Cycles() < prev {
				return false
			}
			prev = core.Cycles()
		}
		return core.Finish() >= prev
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
