// Package sim provides a cycle-approximate timing model of a single-core
// memory hierarchy: set-associative caches, a TLB with a page-table
// walker, a bandwidth-limited DRAM bus, a hardware stride prefetcher,
// and an in-order or out-of-order core.
//
// It is the substitute for the four real machines of Table 1 in
// Ainsworth & Jones (CGO 2017). The model is deliberately simple — it
// tracks timestamps rather than simulating pipelines — but it captures
// every phenomenon the paper's evaluation turns on: memory-level
// parallelism extracted by out-of-order windows and by software
// prefetches, instruction-issue overhead of prefetch code, cache
// pollution from over-eager look-ahead, TLB walk serialisation, and
// DRAM bus saturation.
package sim

import (
	"fmt"

	"repro/internal/hwpf"
)

// StatsVersion identifies the statistical behaviour of the timing
// model. Any change that can alter the statistics a simulation reports
// for some (workload, config, variant, options) cell — a latency
// formula, a replacement policy, an issue rule — MUST bump this
// constant. It is the version salt in internal/store cache keys, so
// bumping it cleanly invalidates every persisted result; changes that
// are proven bit-identical (cmd/golden diffs) keep it unchanged so
// caches survive pure refactors.
//
// Version history:
//
//	1  the PR-1 array-refactored engine (bit-identical to the seed)
//	2  the pluggable hardware-prefetcher subsystem (internal/hwpf):
//	   hwpf=stride is a pure port pinned bit-identical by cmd/golden,
//	   but the Config gained the HWPrefetcher axis and the nextline/
//	   ghb/imp models shape statistics, so v1 entries must miss.
//	3  the pluggable core-model subsystem (coremodel.go) plus two
//	   timing bugfixes. core=interval is a pure port pinned
//	   bit-identical by cmd/golden, but (a) PrefetchLateCycles now
//	   actually accumulates — the old guard made the added term
//	   provably zero, so demand hits that waited on an in-flight fill
//	   were never charged to the stat — and (b) TLB hits on a page
//	   whose table walk is still in flight now wait for the walk to
//	   complete instead of resolving instantly off the entry the walk
//	   inserted at its start. Both change reported statistics, and the
//	   Config gained the Core axis, so v2 entries must miss.
const StatsVersion = 3

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	Size     int64 // bytes
	LineSize int64 // bytes
	Assoc    int   // ways
	Latency  int64 // access latency in cycles
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int64 { return c.Size / (c.LineSize * int64(c.Assoc)) }

// Config describes a machine. The zero value is not usable; start from
// a preset in package uarch or from DefaultConfig.
type Config struct {
	Name string

	// Core selects the CPU core timing model the interpreter drives
	// (see coremodel.go): "interval", "ooo" or "inorder". Empty
	// preserves the pre-axis behaviour — the interval model, which
	// itself derives in-order vs out-of-order behaviour from the
	// OutOfOrder flag (the legacy resolution). The explicit ooo/inorder
	// models ignore OutOfOrder: selecting one pins the pipeline style
	// regardless of the machine's default.
	Core       string
	OutOfOrder bool
	IssueWidth int // instructions issued per cycle
	ROBSize    int // reorder-buffer entries bounding in-flight instructions
	MSHRs      int // simultaneous outstanding cache misses

	// Arithmetic latencies (cycles). Loads take cache latencies.
	MulLatency int64
	DivLatency int64

	// Branch handling: every conditional branch pays this many cycles
	// with probability MispredictRate (crude front-end model).
	MispredictPenalty int64
	MispredictRate    float64

	// Caches, L1 first. All levels share LineSize of the first entry.
	Caches []CacheConfig

	// DRAM.
	DRAMLatency    int64   // cycles from bus grant to data
	BytesPerCycle  float64 // DRAM bus bandwidth
	SharedCores    int     // cores contending for the bus (fig. 9); 0/1 = alone
	ContentionLoad float64 // fraction of bus consumed per contending core

	// Virtual memory.
	PageSize    int64
	TLBEntries  int   // L1 DTLB entries (fully associative)
	TLB2Entries int   // L2 TLB entries; 0 disables
	TLB2Latency int64 // extra cycles for an L2 TLB hit
	WalkLatency int64 // page-table walk latency in cycles
	PageWalkers int   // concurrent page-table walks supported

	// Hardware prefetcher. HWPrefetcher selects the model the memory
	// hierarchy drives (see internal/hwpf): "none", "stride",
	// "nextline", "ghb" or "imp". Empty preserves the pre-hwpf
	// behaviour: "stride" when StridePrefetch is set, else "none".
	//
	// The Stride* knobs predate the pluggable subsystem and now
	// parameterise every model: Degree is candidates emitted per
	// trained observation, Conf the observations required before
	// issuing, Streams the concurrent pattern trackers (default 16),
	// and FillLevel the first cache level hardware prefetches fill
	// into (0 = L1, 1 = L2 like Intel's streamer) — so a covered
	// sequential stream still pays inner-level latencies and
	// page-crossing misses, the headroom software stride prefetches
	// exploit (figure 5).
	HWPrefetcher    string
	StridePrefetch  bool
	StrideDegree    int // candidates issued ahead once a pattern is confident
	StrideConf      int // observations required before issuing
	StrideFillLevel int // first cache level HW prefetches fill into
	StrideStreams   int // concurrent pattern trackers (default 16)
}

// CoreName resolves the effective core timing model: an explicit Core
// wins; empty falls back to the interval model, whose in-order vs
// out-of-order behaviour follows the legacy OutOfOrder flag.
func (c *Config) CoreName() string {
	if c.Core != "" {
		return c.Core
	}
	return CoreInterval
}

// HWPrefetcherName resolves the effective hardware-prefetcher model:
// an explicit HWPrefetcher wins; empty falls back to "stride" or
// "none" according to the legacy StridePrefetch switch.
func (c *Config) HWPrefetcherName() string {
	if c.HWPrefetcher != "" {
		return c.HWPrefetcher
	}
	if c.StridePrefetch {
		return hwpf.NameStride
	}
	return hwpf.NameNone
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("sim: %s: IssueWidth must be positive", c.Name)
	}
	if c.ROBSize <= 0 {
		return fmt.Errorf("sim: %s: ROBSize must be positive", c.Name)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("sim: %s: MSHRs must be positive", c.Name)
	}
	if len(c.Caches) == 0 {
		return fmt.Errorf("sim: %s: at least one cache level required", c.Name)
	}
	line := c.Caches[0].LineSize
	for _, l := range c.Caches {
		if l.LineSize != line {
			return fmt.Errorf("sim: %s: all cache levels must share a line size", c.Name)
		}
		if l.Assoc <= 0 || l.Size <= 0 || l.Size%(l.LineSize*int64(l.Assoc)) != 0 {
			return fmt.Errorf("sim: %s: cache %s geometry invalid", c.Name, l.Name)
		}
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("sim: %s: BytesPerCycle must be positive", c.Name)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("sim: %s: PageSize must be a power of two", c.Name)
	}
	if c.TLBEntries <= 0 {
		return fmt.Errorf("sim: %s: TLBEntries must be positive", c.Name)
	}
	if c.PageWalkers <= 0 {
		return fmt.Errorf("sim: %s: PageWalkers must be positive", c.Name)
	}
	if c.Core != "" && !KnownCoreModel(c.Core) {
		return fmt.Errorf("sim: %s: unknown core model %q (have %v)",
			c.Name, c.Core, CoreModels())
	}
	if c.HWPrefetcher != "" && !hwpf.Known(c.HWPrefetcher) {
		return fmt.Errorf("sim: %s: unknown hardware prefetcher %q (have %v)",
			c.Name, c.HWPrefetcher, hwpf.Names())
	}
	return nil
}

// DefaultConfig returns a generic out-of-order machine, useful for
// tests that do not care about a specific microarchitecture.
func DefaultConfig() *Config {
	return &Config{
		Name:       "generic-ooo",
		OutOfOrder: true,
		IssueWidth: 4,
		ROBSize:    128,
		MSHRs:      10,
		MulLatency: 3,
		DivLatency: 20,
		Caches: []CacheConfig{
			{Name: "L1", Size: 8 << 10, LineSize: 64, Assoc: 8, Latency: 4},
			{Name: "L2", Size: 64 << 10, LineSize: 64, Assoc: 8, Latency: 12},
			{Name: "L3", Size: 512 << 10, LineSize: 64, Assoc: 16, Latency: 36},
		},
		DRAMLatency:    200,
		BytesPerCycle:  16,
		PageSize:       4096,
		TLBEntries:     64,
		TLB2Entries:    512,
		TLB2Latency:    8,
		WalkLatency:    90,
		PageWalkers:    2,
		StridePrefetch: true,
		StrideDegree:   4,
		StrideConf:     2,
	}
}
