package sim

import "fmt"

// Core-model names. Like the hardware-prefetcher axis (internal/hwpf),
// the CPU core is a pluggable timing model selected by name through
// Config.Core; these constants are the registry.
const (
	// CoreInterval is the incumbent issue-interval model: a single
	// approximation covering both pipeline styles, switched by
	// Config.OutOfOrder (stall-on-use when clear, a completion-time
	// reorder window when set). It is the legacy model every result
	// before the core axis existed was produced by.
	CoreInterval = "interval"
	// CoreOoO models an out-of-order core at the retirement level:
	// in-order dispatch and retirement around a ROB, with execution
	// decoupled from both — independent misses overlap up to the MSHR
	// limit, bounded by ROB occupancy. Ignores Config.OutOfOrder.
	CoreOoO = "ooo"
	// CoreInOrder is the cheap stall-on-use model at the other end:
	// issue blocks until the issuing instruction's operands are ready,
	// and no reorder window is modelled at all. Ignores
	// Config.OutOfOrder.
	CoreInOrder = "inorder"
)

// CoreModels lists the registered core models in presentation order.
func CoreModels() []string { return []string{CoreInterval, CoreOoO, CoreInOrder} }

// KnownCoreModel reports whether name is a registered core model.
func KnownCoreModel(name string) bool {
	for _, m := range CoreModels() {
		if m == name {
			return true
		}
	}
	return false
}

// DescribeCoreModel returns a one-line description of a core model for
// -list output and GET /meta.
func DescribeCoreModel(name string) string {
	switch name {
	case CoreInterval:
		return "issue-interval approximation; in-order vs out-of-order behaviour follows the machine's OutOfOrder flag (legacy model)"
	case CoreOoO:
		return "out-of-order: in-order dispatch/retirement around the ROB, execution decoupled — misses overlap up to the MSHR limit within the window"
	case CoreInOrder:
		return "in-order stall-on-use: issue blocks until the issuing instruction's operands are ready; no reorder window"
	}
	return ""
}

// CoreStats is the instruction-stream statistics every core model
// accumulates, snapshotted through CoreModel.CoreStats.
type CoreStats struct {
	Instructions uint64
	Prefetches   uint64
	Branches     uint64
	Mispredicts  uint64
}

// CoreModel is the timing model of one CPU core: it consumes the
// dynamic instruction stream (driven by the interpreter or a trace
// replay) and advances a cycle clock. Implementations own their memory
// hierarchy and are reset in place between runs (storage-preserving,
// like every sim Reset path).
//
// The contract the callers rely on:
//
//   - every method with an opsReady argument receives the latest
//     readiness time of the instruction's operands and returns the time
//     the instruction's result is available (issue time for
//     stores/prefetches/branches, which produce no value);
//   - Loads go through Hierarchy().Access and return its completion;
//     stores and software prefetches access the hierarchy without
//     stalling the core;
//   - Finish drains outstanding memory-system work into the clock;
//   - the model is deterministic: equal call sequences produce equal
//     clocks and statistics.
type CoreModel interface {
	// Model returns the registry name of the model.
	Model() string
	// Config returns the machine configuration.
	Config() *Config
	// Hierarchy returns the core's memory system.
	Hierarchy() *Hierarchy
	// Cycles returns the current clock value.
	Cycles() float64
	// CoreStats snapshots the instruction-stream statistics.
	CoreStats() CoreStats

	Op(opsReady float64, latency int64) float64
	Load(pc int, addr int64, opsReady float64) float64
	Store(pc int, addr int64, opsReady float64) float64
	Prefetch(pc int, addr int64, opsReady float64, valid bool) float64
	Branch(opsReady float64, conditional bool) float64
	Finish() float64
	Reset()
}

// NewCoreModel builds the core model Config.Core selects (empty =
// interval, the legacy resolution) over a fresh memory hierarchy.
func NewCoreModel(cfg *Config) CoreModel {
	switch name := cfg.CoreName(); name {
	case CoreInterval:
		return NewCore(cfg)
	case CoreOoO:
		return NewOoOCore(cfg)
	case CoreInOrder:
		return NewInOrderCore(cfg)
	default:
		// Validate vets the name; unreachable from vetted configs.
		panic(fmt.Sprintf("sim: unknown core model %q (have %v)", name, CoreModels()))
	}
}
