package sim

import "testing"

// TestHWPrefetchTLBDrop pins the hardware-prefetch translation rule:
// a candidate whose page misses every TLB level is dropped — counted
// in HWPrefetchDropped, no page walk, no DRAM traffic — while
// same-page candidates (the stride streamer's entire output) always
// hit the entry the triggering demand access just touched and are
// never dropped.
func TestHWPrefetchTLBDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HWPrefetcher = "ghb" // page-crossing correlator
	cfg.TLBEntries = 1       // only the most recent page translates
	cfg.TLB2Entries = 0
	// A 2-set direct-mapped cache so the second page's line evicts the
	// first and the revisit below is a genuine miss.
	cfg.Caches = []CacheConfig{{Name: "L1", Size: 128, LineSize: 64, Assoc: 1, Latency: 4}}
	cfg.StrideFillLevel = 0
	h := NewHierarchy(cfg)

	a, b := int64(0), int64(1<<20)   // distinct pages, same cache set
	h.Access(AccessLoad, 1, a, 0)    // GHB history: a
	h.Access(AccessLoad, 1, b, 1000) // GHB history: a,b; TLB now holds only page(b)

	walks := h.tlb.Walks
	dram := h.DRAMAccesses
	tr := NewTracer(16)
	h.SetTracer(tr)
	// Far enough out that the earlier fills completed: the revisit is
	// a fresh miss whose fill evicts b, so the GHB candidate (b) passes
	// the presence filter and reaches translation.
	h.Access(AccessLoad, 1, a, 2000) // miss on a: GHB proposes b, whose page just left the TLB

	if h.HWPrefetchDropped != 1 {
		t.Fatalf("HWPrefetchDropped = %d, want 1", h.HWPrefetchDropped)
	}
	// The tracer still records every access: the dropped prefetch
	// appears as a zero-latency AccessHW event at LevelDropped.
	var dropped *TraceEvent
	for i, e := range tr.Events() {
		if e.Kind == AccessHW && e.Level == LevelDropped {
			dropped = &tr.Events()[i]
		}
	}
	if dropped == nil {
		t.Fatalf("dropped prefetch missing from the trace:\n%s", tr.Dump())
	}
	if dropped.Addr != b || dropped.Latency() != 0 {
		t.Errorf("drop event wrong: %+v", *dropped)
	}
	if h.HWPrefetches != 1 {
		t.Errorf("HWPrefetches = %d, want 1 (issued, then dropped)", h.HWPrefetches)
	}
	if h.tlb.Walks != walks+1 {
		t.Errorf("walks went %d -> %d; the dropped prefetch must not walk (only the demand)", walks, h.tlb.Walks)
	}
	if h.DRAMAccesses != dram+1 {
		t.Errorf("DRAM accesses went %d -> %d; the dropped prefetch must not fetch", dram, h.DRAMAccesses)
	}

	// Same-page candidates never drop: a trained stride stream on a
	// TLB this small still issues every prefetch.
	cfg2 := DefaultConfig()
	cfg2.TLBEntries = 1
	cfg2.TLB2Entries = 0
	h2 := NewHierarchy(cfg2)
	for i := int64(0); i < 8; i++ {
		h2.Access(AccessLoad, 1, i*64, float64(i)*100)
	}
	if h2.HWPrefetches == 0 {
		t.Fatal("stride stream issued no hardware prefetches")
	}
	if h2.HWPrefetchDropped != 0 {
		t.Errorf("stride (same-page) prefetches dropped %d times, want 0", h2.HWPrefetchDropped)
	}

	// Reset clears the counter.
	h.Reset()
	if h.HWPrefetchDropped != 0 {
		t.Error("Reset left HWPrefetchDropped set")
	}
}
