package tune

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/store"
	"repro/internal/sweep"
)

func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("tuning search: skipped in -short")
	}
}

// TestSpecSpace pins spec resolution: the defaults every surface
// inherits, and the one-place validation contract.
func TestSpecSpace(t *testing.T) {
	sp := Spec{}
	sp.Quality = "tiny"
	space, err := sp.Space()
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if len(space.Workloads) == 0 || len(space.Systems) != 4 {
		t.Errorf("defaults: %d workloads, %d systems", len(space.Workloads), len(space.Systems))
	}
	if string(space.Variant) != "auto" || space.Strategy != StrategyExhaustive {
		t.Errorf("defaults: variant %q strategy %q", space.Variant, space.Strategy)
	}
	if len(space.Cs) != len(DefaultCs) || space.Cs[0] != 1 || space.Cs[len(space.Cs)-1] != 1024 {
		t.Errorf("default cs = %v", space.Cs)
	}
	if space.Size() != len(DefaultCs) {
		t.Errorf("default size = %d", space.Size())
	}

	// Ladders sort and dedupe; selections dedupe.
	sp = Spec{Cs: "64, 1,64,8", Depths: "2,0", Hoists: "true,true"}
	sp.Quality = "tiny"
	sp.HWPF = "none,none"
	space, err = sp.Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Cs) != 3 || space.Cs[0] != 1 || space.Cs[2] != 64 {
		t.Errorf("cs = %v", space.Cs)
	}
	if len(space.Depths) != 2 || space.Depths[0] != 0 {
		t.Errorf("depths = %v", space.Depths)
	}
	if len(space.Hoists) != 1 || !space.Hoists[0] {
		t.Errorf("hoists = %v", space.Hoists)
	}
	if len(space.HWPFs) != 1 {
		t.Errorf("hwpfs = %v", space.HWPFs)
	}

	for name, tc := range map[string]struct {
		spec Spec
		want string
	}{
		"fixed c":      {Spec{Spec: sweep.Spec{Quality: "tiny", C: 16}}, `"c", "depth" and "hoist" are searched`},
		"fixed exec":   {Spec{Spec: sweep.Spec{Quality: "tiny", Exec: "replay"}}, `"exec" is not a tuned axis`},
		"two variants": {Spec{Spec: sweep.Spec{Quality: "tiny", Variants: "auto,manual"}}, "exactly one variant"},
		"plain":        {Spec{Spec: sweep.Spec{Quality: "tiny", Variants: "plain"}}, "baseline"},
		"bad variant":  {Spec{Spec: sweep.Spec{Quality: "tiny", Variants: "jit"}}, `sweep: unknown variant "jit"`},
		"bad strategy": {Spec{Spec: sweep.Spec{Quality: "tiny"}, Strategy: "anneal"}, `tune: unknown strategy "anneal" (have exhaustive, hillclimb)`},
		"bad hoist":    {Spec{Spec: sweep.Spec{Quality: "tiny"}, Hoists: "maybe"}, `tune: unknown hoist "maybe" (have false, true)`},
		"bad ladder":   {Spec{Spec: sweep.Spec{Quality: "tiny"}, Cs: "64,x"}, `tune: bad look-ahead "x"`},
		"zero c":       {Spec{Spec: sweep.Spec{Quality: "tiny"}, Cs: "0,64"}, `tune: bad look-ahead "0"`},
		"bad quality":  {Spec{Spec: sweep.Spec{Quality: "huge"}}, `unknown quality "huge"`},
		"bad hwpf":     {Spec{Spec: sweep.Spec{Quality: "tiny", HWPF: "warp"}}, "unknown hardware prefetcher"},
	} {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want %q", name, err, tc.want)
		}
	}
}

func tinySpec(workloads, systems string) Spec {
	sp := Spec{}
	sp.Quality = "tiny"
	sp.Workloads = workloads
	sp.Systems = systems
	return sp
}

func runTune(t *testing.T, sp Spec, jobs int, cache sweep.Cache) *Report {
	t.Helper()
	rep, err := Tuner{Runner: sweep.Runner{Jobs: jobs, Cache: cache}}.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func renderJSON(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTuneExhaustive pins the search result on one pair: a full
// report, an interior optimum (the paper's look-ahead shape), and
// byte-identical output for any worker count.
func TestTuneExhaustive(t *testing.T) {
	skipInShort(t)
	sp := tinySpec("IS", "A53")
	rep := runTune(t, sp, 1, nil)
	if len(rep.Results) != 1 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	res := rep.Results[0]
	if res.Workload != "IS" || res.System != "A53" || rep.Variant != "auto" || rep.Strategy != "exhaustive" {
		t.Errorf("header: %+v / %+v", rep, res)
	}
	if res.Evals != len(DefaultCs) || len(res.Curve) != len(DefaultCs) {
		t.Errorf("evals = %d, curve = %d", res.Evals, len(res.Curve))
	}
	if res.Baseline <= 0 {
		t.Errorf("baseline = %v", res.Baseline)
	}
	first, last := res.Curve[0], res.Curve[len(res.Curve)-1]
	if !(res.Speedup > first.Speedup && res.Speedup > last.Speedup) {
		t.Errorf("optimum not interior: best %v@c=%d, ends %v/%v",
			res.Speedup, res.Best.C, first.Speedup, last.Speedup)
	}
	if res.Best.C <= first.C || res.Best.C >= last.C {
		t.Errorf("best c = %d not interior to [%d,%d]", res.Best.C, first.C, last.C)
	}

	for _, jobs := range []int{2, 8} {
		again := runTune(t, sp, jobs, nil)
		if renderJSON(t, again) != renderJSON(t, rep) {
			t.Errorf("jobs=%d report differs from serial", jobs)
		}
	}

	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	if !strings.HasPrefix(out, "workload,system,variant,strategy,hwpf,depth,hoist,c,speedup,best\n") {
		t.Errorf("csv header: %q", out)
	}
	if n := strings.Count(out, ",true\n"); n != 1 {
		t.Errorf("csv best flags = %d\n%s", n, out)
	}
}

// TestTuneHillclimb pins the refiner: deterministic across worker
// counts, and on a single-axis space it lands exactly where
// exhaustive does (the first coordinate round explores the whole
// look-ahead ladder).
func TestTuneHillclimb(t *testing.T) {
	skipInShort(t)
	sp := tinySpec("RA", "Haswell")
	sp.Strategy = "hillclimb"
	rep := runTune(t, sp, 1, nil)
	if rep.Strategy != "hillclimb" {
		t.Errorf("strategy = %q", rep.Strategy)
	}
	again := runTune(t, sp, 8, nil)
	if renderJSON(t, again) != renderJSON(t, rep) {
		t.Error("jobs=8 report differs from serial")
	}

	ex := sp
	ex.Strategy = "exhaustive"
	full := runTune(t, ex, 8, nil)
	hres, xres := rep.Results[0], full.Results[0]
	if hres.Best != xres.Best || hres.Speedup != xres.Speedup {
		t.Errorf("hillclimb best %+v (%v) != exhaustive best %+v (%v)",
			hres.Best, hres.Speedup, xres.Best, xres.Speedup)
	}
	if len(hres.Curve) != len(xres.Curve) {
		t.Fatalf("curve lengths: %d vs %d", len(hres.Curve), len(xres.Curve))
	}
	for i := range hres.Curve {
		if hres.Curve[i] != xres.Curve[i] {
			t.Errorf("curve[%d]: %+v vs %+v", i, hres.Curve[i], xres.Curve[i])
		}
	}
}

// TestTuneWarmStore pins the memoization contract: re-tuning a
// >=500-configuration search against a warm store performs zero store
// writes and zero fresh simulations, and reproduces the cold report
// byte for byte.
func TestTuneWarmStore(t *testing.T) {
	skipInShort(t)
	dir := t.TempDir()
	sp := tinySpec("IS,RA", "A53,Haswell")
	sp.HWPF = "default,none,stride,nextline"
	sp.Depths = "0,1"
	sp.Hoists = "false,true"

	space, err := sp.Space()
	if err != nil {
		t.Fatal(err)
	}
	if total := space.Size() * len(space.Workloads) * len(space.Systems); total < 500 {
		t.Fatalf("search too small to prove the contract: %d configs", total)
	}

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := runTune(t, sp, 8, cold)
	if cold.Stats().Puts == 0 {
		t.Fatal("cold tune stored nothing")
	}

	warm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := interp.Runs()
	again := runTune(t, sp, 8, warm)
	if d := interp.Runs() - before; d != 0 {
		t.Errorf("warm re-tune simulated %d cells", d)
	}
	if st := warm.Stats(); st.Puts != 0 || st.Misses != 0 {
		t.Errorf("warm re-tune store traffic: %+v", st)
	}
	if renderJSON(t, again) != renderJSON(t, rep) {
		t.Error("warm report differs from cold")
	}
}

func benchSpec() Spec {
	sp := Spec{}
	sp.Quality = "tiny"
	sp.Workloads = "IS"
	sp.Systems = "A53"
	return sp
}

// BenchmarkTuneCold measures an uncached default-ladder search on one
// pair (11 candidates + 1 baseline, simulated every iteration).
func BenchmarkTuneCold(b *testing.B) {
	sp := benchSpec()
	for b.Loop() {
		if _, err := (Tuner{Runner: sweep.Runner{Jobs: 1}}).Run(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuneWarm measures the same search served entirely from a
// warm store — the memoized re-tune path.
func BenchmarkTuneWarm(b *testing.B) {
	sp := benchSpec()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := (Tuner{Runner: sweep.Runner{Jobs: 1, Cache: st}}).Run(sp); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := (Tuner{Runner: sweep.Runner{Jobs: 1, Cache: st}}).Run(sp); err != nil {
			b.Fatal(err)
		}
	}
}
