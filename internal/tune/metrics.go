package tune

import "repro/internal/obs"

// Metrics holds the tuner's instruments: search rounds (evaluation
// batches actually submitted), cells evaluated through the Runner, and
// memo hits (cells a search asked for again and the evaluator answered
// from its speedup table without submitting). The memo-hit ratio is
// the tuner-side view of the fleet's dedupe discipline — a warm search
// converges with rounds ≫ evaluations.
type Metrics struct {
	Rounds      *obs.Counter
	Evaluations *obs.Counter
	MemoHits    *obs.Counter
}

// NewMetrics registers the tuner's instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Rounds:      reg.Counter("swpf_tune_rounds_total", "Evaluation batches submitted by searches."),
		Evaluations: reg.Counter("swpf_tune_evaluations_total", "Cells submitted to the Runner by searches."),
		MemoHits:    reg.Counter("swpf_tune_memo_hits_total", "Cells answered from the evaluator's memo table."),
	}
}

// nopMetrics backs Tuners with no Metrics set, keeping the evaluator
// branch-free.
var nopMetrics = NewMetrics(obs.NewRegistry())

func (t Tuner) metrics() *Metrics {
	if t.Metrics != nil {
		return t.Metrics
	}
	return nopMetrics
}
