package tune

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// TestTunerMetrics: an exhaustive search submits one round covering
// the whole grid plus its baselines, repeating the search memo-hits
// every candidate, and the counters surface under swpf_tune_* names.
func TestTunerMetrics(t *testing.T) {
	sp := tinySpec("IS", "A53")
	sp.Cs = "8,16"

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tn := Tuner{Runner: sweep.Runner{Jobs: 2}, Metrics: m}
	if _, err := tn.Run(sp); err != nil {
		t.Fatal(err)
	}
	// 2 candidates + 1 shared plain baseline, all in one batch.
	if got := m.Rounds.Value(); got != 1 {
		t.Errorf("rounds = %d, want 1", got)
	}
	if got := m.Evaluations.Value(); got != 3 {
		t.Errorf("evaluations = %d, want 3", got)
	}
	if got := m.MemoHits.Value(); got != 0 {
		t.Errorf("memo hits = %d, want 0 on the first search", got)
	}

	// The same Tuner value runs a fresh evaluator per Run, so the
	// second search re-evaluates — but within a search, hillclimb-style
	// re-requests memo-hit. Simulate that by running the search again
	// and checking the counters moved coherently.
	if _, err := tn.Run(sp); err != nil {
		t.Fatal(err)
	}
	if got := m.Rounds.Value(); got != 2 {
		t.Errorf("rounds after second run = %d, want 2", got)
	}
	if got := m.Evaluations.Value(); got != 6 {
		t.Errorf("evaluations after second run = %d, want 6", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := obs.Find(samples, "swpf_tune_rounds_total"); s == nil || s.Value != 2 {
		t.Fatalf("swpf_tune_rounds_total: %+v", s)
	}
	if s := obs.Find(samples, "swpf_tune_evaluations_total"); s == nil || s.Value != 6 {
		t.Fatalf("swpf_tune_evaluations_total: %+v", s)
	}
}

// TestTunerMetricsMemoHits: hillclimb revisits coordinates it has
// already scored; those must count as memo hits, not evaluations.
func TestTunerMetricsMemoHits(t *testing.T) {
	sp := tinySpec("IS", "A53")
	sp.Cs = "8,16,32"
	sp.Strategy = string(StrategyHillclimb)

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	if _, err := (Tuner{Runner: sweep.Runner{Jobs: 2}, Metrics: m}).Run(sp); err != nil {
		t.Fatal(err)
	}
	if m.MemoHits.Value() == 0 {
		t.Error("hillclimb produced no memo hits; the final curve pass alone revisits scored cells")
	}
	if m.Rounds.Value() < 2 {
		t.Errorf("rounds = %d, want >= 2 for hillclimb", m.Rounds.Value())
	}
}
