package tune

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// CurvePoint is one sample of a look-ahead sensitivity curve.
type CurvePoint struct {
	C       int64   `json:"c"`
	Speedup float64 `json:"speedup"`
}

// Result is one pair's tuning outcome: the best configuration found,
// its speedup over the no-prefetch baseline, and the look-ahead
// sensitivity curve sampled at the best configuration's depth, hoist
// and hardware-prefetcher coordinates.
type Result struct {
	Workload string `json:"workload"`
	System   string `json:"system"`
	Best     Config `json:"best"`
	// Speedup is plain-baseline cycles over best-candidate cycles on
	// the same machine and hardware-prefetcher model (>1 means
	// software prefetching won).
	Speedup float64 `json:"speedup"`
	// Baseline is the no-prefetch baseline's cycle count at the best
	// configuration's hardware-prefetcher model.
	Baseline float64 `json:"baseline_cycles"`
	// Evals counts candidate evaluations the search performed for
	// this pair (baselines excluded) — exhaustive's equals the grid
	// size, hillclimb's is usually far smaller.
	Evals int          `json:"evals"`
	Curve []CurvePoint `json:"curve"`
}

// Report is a completed search: one Result per workload × system pair
// in selection order. Its serialized forms are deterministic — the
// daemon's /tune result and swpfbench -tune emit byte-identical
// reports for the same spec.
type Report struct {
	Quality  string   `json:"quality"`
	Variant  string   `json:"variant"`
	Strategy string   `json:"strategy"`
	Results  []Result `json:"results"`
}

// WriteJSON emits the report as indented JSON, matching the sweep
// result emitter's style.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteCSV emits one row per sensitivity-curve point, with the best
// row flagged — the flat form figures and nightly artifacts consume.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "system", "variant", "strategy",
		"hwpf", "depth", "hoist", "c", "speedup", "best",
	}); err != nil {
		return err
	}
	for _, res := range r.Results {
		for _, pt := range res.Curve {
			if err := cw.Write([]string{
				res.Workload, res.System, r.Variant, r.Strategy,
				res.Best.HWPF,
				strconv.Itoa(res.Best.Depth),
				strconv.FormatBool(res.Best.Hoist),
				strconv.FormatInt(pt.C, 10),
				fmt.Sprintf("%.4f", pt.Speedup),
				strconv.FormatBool(pt.C == res.Best.C),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
