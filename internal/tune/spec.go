package tune

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// Spec describes one tuning request: the embedded sweep.Spec selects
// what to tune (workloads, systems, one prefetch variant, a quality
// pool), and the tune-specific fields bound the search. It is the one
// type all three surfaces share — swpfbench -tune, swpfd's POST /tune
// body and swpfctl tune all build (or decode) this struct, and Space
// is the single place it is validated.
//
// The embedded spec's fixed-option fields (c, depth, hoist) and exec
// axis must stay unset: those are the axes being searched. The variant
// selector must resolve to exactly one non-plain variant ("" selects
// auto); plain is the baseline every candidate is scored against. The
// hwpf selector bounds the hardware-prefetcher search axis ("" pins
// each system's own model).
type Spec struct {
	sweep.Spec
	// Strategy selects the search strategy ("" = exhaustive; see
	// Strategies).
	Strategy string `json:"strategy,omitempty"`
	// Cs, Depths and Hoists bound the search ladders, comma-separated
	// ("" = DefaultCs / DefaultDepths / DefaultHoists). Ladders are
	// sorted ascending and deduplicated, so the sensitivity curve is
	// always emitted in look-ahead order.
	Cs     string `json:"cs,omitempty"`
	Depths string `json:"depths,omitempty"`
	Hoists string `json:"hoists,omitempty"`
}

// Strategy names a search strategy.
type Strategy string

const (
	// StrategyExhaustive scores every configuration in the bounded
	// grid — one batched evaluation, so the sweep engine parallelizes
	// it and the store memoizes every cell.
	StrategyExhaustive Strategy = "exhaustive"
	// StrategyHillclimb coordinate-descends from c nearest 64: each
	// round proposes every alternative value along one axis at a time
	// (batched across all workload × system pairs), moves on strict
	// improvement, and stops at a local optimum. It evaluates far
	// fewer cells than exhaustive on wide ladders; the final
	// sensitivity curve is completed along the full c ladder.
	StrategyHillclimb Strategy = "hillclimb"
)

// Strategies lists every search strategy, in presentation order.
func Strategies() []Strategy { return []Strategy{StrategyExhaustive, StrategyHillclimb} }

// StrategyAxis is the strategy selector ("" selects exhaustive). It is
// a sweep.Axis so the tuner shares the sweep package's one selector
// grammar and error contract.
func StrategyAxis() sweep.Axis[Strategy] {
	return sweep.Axis[Strategy]{
		Noun:    "strategy",
		Prefix:  "tune",
		Values:  Strategies(),
		Name:    func(s Strategy) string { return string(s) },
		Default: []Strategy{StrategyExhaustive},
	}
}

// HoistAxis is the hoist search-ladder selector ("" selects false).
func HoistAxis() sweep.Axis[bool] {
	return sweep.Axis[bool]{
		Noun:    "hoist",
		Prefix:  "tune",
		Values:  []bool{false, true},
		Name:    strconv.FormatBool,
		Default: slices.Clone(DefaultHoists),
	}
}

// Default search ladders. The look-ahead ladder spans both failure
// modes the paper identifies — too small (prefetches arrive late) and
// too large (lines evicted before use) — so the optimum is interior
// for prefetch-friendly workloads.
var (
	DefaultCs     = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	DefaultDepths = []int{0}
	DefaultHoists = []bool{false}
)

// Config is one point of the search space: the knobs the tuner may
// turn. Everything else (workload, system, variant, quality) is fixed
// by the spec.
type Config struct {
	C     int64  `json:"c"`
	Depth int    `json:"depth"`
	Hoist bool   `json:"hoist,omitempty"`
	HWPF  string `json:"hwpf"`
}

// Options returns the core options the config denotes.
func (c Config) Options() core.Options {
	return core.Options{C: c.C, Depth: c.Depth, Hoist: c.Hoist}
}

// Space is a resolved, validated Spec: concrete workloads, systems and
// ladders. Configs enumerates the full candidate grid hwpf-major with
// c innermost — the tie-break order (earliest wins), so "best" is
// deterministic even between configs with identical speedups.
type Space struct {
	Workloads []*workloads.Workload
	Systems   []*sim.Config
	Variant   core.Variant
	HWPFs     []string
	Cs        []int64
	Depths    []int
	Hoists    []bool
	Strategy  Strategy
}

// Size returns the number of candidate configurations per
// workload × system pair.
func (s *Space) Size() int {
	return len(s.HWPFs) * len(s.Depths) * len(s.Hoists) * len(s.Cs)
}

// Configs enumerates the candidate grid in tie-break order.
func (s *Space) Configs() []Config {
	out := make([]Config, 0, s.Size())
	for _, hw := range s.HWPFs {
		for _, d := range s.Depths {
			for _, h := range s.Hoists {
				for _, c := range s.Cs {
					out = append(out, Config{C: c, Depth: d, Hoist: h, HWPF: hw})
				}
			}
		}
	}
	return out
}

// Space resolves and validates the spec against the workload and axis
// registries — submission-time validation, shared by every surface, so
// a bad spec is a client error, never a failed search.
func (sp Spec) Space() (*Space, error) {
	if sp.C != 0 || sp.Depth != 0 || sp.Hoist {
		return nil, fmt.Errorf(`tune: "c", "depth" and "hoist" are searched, not fixed; bound the search with "cs"/"depths"/"hoists"`)
	}
	if sp.Exec != "" {
		return nil, fmt.Errorf(`tune: "exec" is not a tuned axis (evaluations run direct)`)
	}
	pool, err := sp.Pool()
	if err != nil {
		return nil, err
	}
	ws, err := sweep.SelectWorkloads(pool, sp.Workloads)
	if err != nil {
		return nil, err
	}
	cfgs, err := sweep.ParseSystems(sp.Systems)
	if err != nil {
		return nil, err
	}
	variant := core.VariantAuto
	if strings.TrimSpace(sp.Variants) != "" {
		vs, err := sweep.ParseVariants(sp.Variants)
		if err != nil {
			return nil, err
		}
		if len(vs) != 1 {
			return nil, fmt.Errorf("tune: exactly one variant is tuned at a time (got %q)", sp.Variants)
		}
		if vs[0] == core.VariantPlain {
			return nil, fmt.Errorf("tune: variant %q is the baseline; tune one of auto, manual, icc, indirect-only", core.VariantPlain)
		}
		variant = vs[0]
	}
	hws, err := sweep.ParseHWPrefetchers(sp.HWPF)
	if err != nil {
		return nil, err
	}
	hws = dedupe(hws)
	cs, err := parseLadder(sp.Cs, "look-ahead", 1, DefaultCs)
	if err != nil {
		return nil, err
	}
	depths64, err := parseLadder(sp.Depths, "depth", 0, int64s(DefaultDepths))
	if err != nil {
		return nil, err
	}
	hoists, err := HoistAxis().Parse(sp.Hoists)
	if err != nil {
		return nil, err
	}
	hoists = dedupe(hoists)
	strategies, err := StrategyAxis().Parse(sp.Strategy)
	if err != nil {
		return nil, err
	}
	strategies = dedupe(strategies)
	if len(strategies) != 1 {
		return nil, fmt.Errorf("tune: exactly one strategy (got %q)", sp.Strategy)
	}
	return &Space{
		Workloads: ws,
		Systems:   cfgs,
		Variant:   variant,
		HWPFs:     hws,
		Cs:        cs,
		Depths:    ints(depths64),
		Hoists:    hoists,
		Strategy:  strategies[0],
	}, nil
}

// Validate checks the spec; it reports exactly the error Space would.
func (sp Spec) Validate() error {
	_, err := sp.Space()
	return err
}

// parseLadder parses a comma-separated integer search ladder with the
// axis parser's contract: "" denotes the default, any bad token fails
// the whole parse quoting the offender, no partial result. Ladders are
// sorted ascending and deduplicated.
func parseLadder(s, noun string, min int64, dflt []int64) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return slices.Clone(dflt), nil
	}
	var out []int64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil || v < min {
			return nil, fmt.Errorf("tune: bad %s %q (want integers >= %d, comma-separated)", noun, tok, min)
		}
		out = append(out, v)
	}
	slices.Sort(out)
	return slices.Compact(out), nil
}

// dedupe drops repeated selections, keeping first-occurrence order:
// a search axis is a set, unlike a sweep axis.
func dedupe[T comparable](xs []T) []T {
	seen := make(map[T]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func int64s(xs []int) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}

func ints(xs []int64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
