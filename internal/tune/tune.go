// Package tune searches the software-prefetch configuration space.
// Given a workload × machine selection, it finds the (look-ahead,
// depth, hoist, hardware-prefetcher) configuration with the best
// speedup over the no-prefetch baseline — the paper's look-ahead
// sensitivity study (figure 6) turned into an automated optimizer.
//
// Every candidate is scored against the plain variant on the same
// machine with the same hardware-prefetcher model, so "speedup"
// always means "what did software prefetching buy on this hardware".
// All evaluations flow through a sweep-compatible Runner in large
// batches: attach sweep.Runner with a store cache and every cell is
// memoized fleet-wide; re-tuning a warm store performs zero fresh
// simulations. Searches are fully deterministic — the same spec
// produces byte-identical reports for any worker count.
package tune

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// Runner evaluates request batches. sweep.Runner satisfies it — that
// is how evaluations reach the worker pool, the result store and (via
// the daemon's queue-backed runner) the fleet.
type Runner interface {
	Execute([]sweep.Request) (*sweep.ResultSet, error)
}

// Tuner runs searches. The zero value is not useful: Runner must be
// set (sweep.Runner{} is the minimal choice).
type Tuner struct {
	Runner Runner
	// OnProgress, when non-nil, is invoked before and after every
	// evaluation batch with cumulative (done, total) evaluation
	// counts. Total grows as hillclimb discovers more work, so treat
	// it as a moving target. Called from Run's goroutine only.
	OnProgress func(done, total int)
	// Metrics, when non-nil, counts rounds, evaluations and memo hits
	// (see NewMetrics). Counting never influences the search.
	Metrics *Metrics
}

// maxRounds bounds hillclimb's coordinate-descent rounds. Each round
// sweeps every axis; the search converges long before this on real
// spaces — the bound only guards against speedup-tie pathologies.
const maxRounds = 16

// Run executes the search the spec describes.
func (t Tuner) Run(spec Spec) (*Report, error) {
	space, err := spec.Space()
	if err != nil {
		return nil, err
	}
	if t.Runner == nil {
		return nil, fmt.Errorf("tune: Tuner.Runner is nil")
	}
	e := newEvaluator(t, space)
	var best []Config
	switch space.Strategy {
	case StrategyExhaustive:
		best, err = e.exhaustive()
	case StrategyHillclimb:
		best, err = e.hillclimb()
	default:
		err = fmt.Errorf("tune: unimplemented strategy %q", space.Strategy)
	}
	if err != nil {
		return nil, err
	}
	return e.report(spec, best), nil
}

// pair is one (workload, system) tuning problem; a search optimizes
// every pair of the selection simultaneously, batching evaluations
// across pairs.
type pair struct {
	w   *workloads.Workload
	sys *sim.Config
}

// cell is one requested evaluation: a candidate configuration for one
// pair.
type cell struct {
	p   int
	cfg Config
}

// evaluator scores candidate configurations through the Runner,
// memoizing speedups and baselines so no cell is ever submitted
// twice.
type evaluator struct {
	t     Tuner
	space *Space
	pairs []pair
	// derived memoizes hwpf-derived machine configurations per
	// (system, model), exactly like sweep.Grid.Expand, so every
	// evaluation of a pair at one hwpf shares one *sim.Config (and
	// one recycled simulator per sweep worker).
	derived map[*sim.Config]map[string]*sim.Config
	base    []map[string]float64 // per pair: hwpf -> baseline (plain) cycles
	speed   []map[Config]float64 // per pair: candidate -> speedup over baseline
	evals   []int                // per pair: candidate evaluations performed

	done, total int
}

func newEvaluator(t Tuner, space *Space) *evaluator {
	e := &evaluator{
		t:       t,
		space:   space,
		derived: make(map[*sim.Config]map[string]*sim.Config),
	}
	for _, w := range space.Workloads {
		for _, sys := range space.Systems {
			e.pairs = append(e.pairs, pair{w, sys})
			e.base = append(e.base, make(map[string]float64))
			e.speed = append(e.speed, make(map[Config]float64))
			e.evals = append(e.evals, 0)
		}
	}
	return e
}

func (e *evaluator) system(cfg *sim.Config, hw string) *sim.Config {
	if hw == sweep.HWPrefetcherDefault {
		return cfg
	}
	byHW := e.derived[cfg]
	if byHW == nil {
		byHW = make(map[string]*sim.Config)
		e.derived[cfg] = byHW
	}
	if c, ok := byHW[hw]; ok {
		return c
	}
	c := uarch.WithHWPrefetcher(cfg, hw)
	byHW[hw] = c
	return c
}

func (e *evaluator) progress() {
	if e.t.OnProgress != nil {
		e.t.OnProgress(e.done, e.total)
	}
}

// run evaluates every not-yet-memoized cell in one Runner batch,
// including any plain baselines the cells' speedups need. One batch
// means the sweep engine parallelizes freely and a queue-backed
// runner submits one deduplicated fleet job per round.
func (e *evaluator) run(cells []cell) error {
	type slot struct {
		p    int
		cfg  Config
		base bool
	}
	var reqs []sweep.Request
	var slots []slot
	queuedBase := make(map[int]map[string]bool)
	queuedCand := make(map[cell]bool)
	m := e.t.metrics()
	for _, c := range cells {
		if _, ok := e.speed[c.p][c.cfg]; ok {
			m.MemoHits.Inc()
			continue
		}
		if queuedCand[c] {
			continue
		}
		queuedCand[c] = true
		pr := e.pairs[c.p]
		sys := e.system(pr.sys, c.cfg.HWPF)
		if _, ok := e.base[c.p][c.cfg.HWPF]; !ok {
			q := queuedBase[c.p]
			if q == nil {
				q = make(map[string]bool)
				queuedBase[c.p] = q
			}
			if !q[c.cfg.HWPF] {
				q[c.cfg.HWPF] = true
				reqs = append(reqs, sweep.Request{Workload: pr.w, System: sys, Variant: core.VariantPlain})
				slots = append(slots, slot{p: c.p, cfg: c.cfg, base: true})
			}
		}
		reqs = append(reqs, sweep.Request{Workload: pr.w, System: sys, Variant: e.space.Variant, Options: c.cfg.Options()})
		slots = append(slots, slot{p: c.p, cfg: c.cfg})
	}
	if len(reqs) == 0 {
		return nil
	}
	m.Rounds.Inc()
	m.Evaluations.Add(int64(len(reqs)))
	e.total += len(reqs)
	e.progress()
	set, err := e.t.Runner.Execute(reqs)
	if err != nil {
		return err
	}
	for i, s := range slots {
		if s.base {
			e.base[s.p][s.cfg.HWPF] = set.Outcomes[i].Result.Cycles
		}
	}
	for i, s := range slots {
		if s.base {
			continue
		}
		e.speed[s.p][s.cfg] = e.base[s.p][s.cfg.HWPF] / set.Outcomes[i].Result.Cycles
		e.evals[s.p]++
	}
	e.done += len(reqs)
	e.progress()
	return nil
}

// exhaustive scores the whole candidate grid in one batch and picks
// each pair's best configuration in tie-break order.
func (e *evaluator) exhaustive() ([]Config, error) {
	configs := e.space.Configs()
	cells := make([]cell, 0, len(e.pairs)*len(configs))
	for p := range e.pairs {
		for _, cfg := range configs {
			cells = append(cells, cell{p, cfg})
		}
	}
	if err := e.run(cells); err != nil {
		return nil, err
	}
	best := make([]Config, len(e.pairs))
	for p := range e.pairs {
		best[p] = configs[0]
		for _, cfg := range configs[1:] {
			if e.speed[p][cfg] > e.speed[p][best[p]] {
				best[p] = cfg
			}
		}
	}
	return best, nil
}

// hillclimb coordinate-descends every pair simultaneously: start at
// the look-ahead nearest 64 (the paper's sweet spot on most systems)
// and the first value of each other ladder, then repeatedly sweep the
// axes, batching all pairs' proposals for one axis into a single
// evaluation round and moving each pair on strict improvement. After
// convergence the full look-ahead curve at each pair's final
// coordinates is completed, so the report's sensitivity curve is as
// informative as exhaustive's.
func (e *evaluator) hillclimb() ([]Config, error) {
	s := e.space
	start := Config{C: nearest(s.Cs, 64), Depth: s.Depths[0], Hoist: s.Hoists[0], HWPF: s.HWPFs[0]}
	cur := make([]Config, len(e.pairs))
	cells := make([]cell, 0, len(e.pairs))
	for p := range e.pairs {
		cur[p] = start
		cells = append(cells, cell{p, start})
	}
	if err := e.run(cells); err != nil {
		return nil, err
	}

	// axes proposes each pair's alternatives along one coordinate.
	axes := []func(cfg Config) []Config{
		func(cfg Config) []Config {
			out := make([]Config, 0, len(s.Cs))
			for _, c := range s.Cs {
				out = append(out, Config{C: c, Depth: cfg.Depth, Hoist: cfg.Hoist, HWPF: cfg.HWPF})
			}
			return out
		},
		func(cfg Config) []Config {
			out := make([]Config, 0, len(s.Depths))
			for _, d := range s.Depths {
				out = append(out, Config{C: cfg.C, Depth: d, Hoist: cfg.Hoist, HWPF: cfg.HWPF})
			}
			return out
		},
		func(cfg Config) []Config {
			out := make([]Config, 0, len(s.Hoists))
			for _, h := range s.Hoists {
				out = append(out, Config{C: cfg.C, Depth: cfg.Depth, Hoist: h, HWPF: cfg.HWPF})
			}
			return out
		},
		func(cfg Config) []Config {
			out := make([]Config, 0, len(s.HWPFs))
			for _, hw := range s.HWPFs {
				out = append(out, Config{C: cfg.C, Depth: cfg.Depth, Hoist: cfg.Hoist, HWPF: hw})
			}
			return out
		},
	}
	for range maxRounds {
		moved := false
		for _, axis := range axes {
			cells = cells[:0]
			for p := range e.pairs {
				for _, cfg := range axis(cur[p]) {
					if cfg != cur[p] {
						cells = append(cells, cell{p, cfg})
					}
				}
			}
			if err := e.run(cells); err != nil {
				return nil, err
			}
			for p := range e.pairs {
				best := cur[p]
				for _, cfg := range axis(cur[p]) {
					// Strict improvement only: ties keep the earlier
					// position, so the walk is deterministic and
					// terminates.
					if e.speed[p][cfg] > e.speed[p][best] {
						best = cfg
					}
				}
				if best != cur[p] {
					cur[p] = best
					moved = true
				}
			}
		}
		if !moved {
			break
		}
	}

	// Complete each pair's look-ahead curve at its final coordinates.
	cells = cells[:0]
	for p := range e.pairs {
		for _, c := range s.Cs {
			cells = append(cells, cell{p, Config{C: c, Depth: cur[p].Depth, Hoist: cur[p].Hoist, HWPF: cur[p].HWPF}})
		}
	}
	if err := e.run(cells); err != nil {
		return nil, err
	}
	// Report the curve's argmax (ties to the smallest look-ahead): it
	// dominates the walk's endpoint, and it keeps "best" consistent
	// with the emitted curve.
	best := make([]Config, len(e.pairs))
	for p := range e.pairs {
		best[p] = Config{C: s.Cs[0], Depth: cur[p].Depth, Hoist: cur[p].Hoist, HWPF: cur[p].HWPF}
		for _, c := range s.Cs[1:] {
			cfg := Config{C: c, Depth: cur[p].Depth, Hoist: cur[p].Hoist, HWPF: cur[p].HWPF}
			if e.speed[p][cfg] > e.speed[p][best[p]] {
				best[p] = cfg
			}
		}
	}
	return best, nil
}

// nearest returns the ladder value closest to target (ties to the
// smaller value; the ladder is sorted ascending).
func nearest(ladder []int64, target int64) int64 {
	best := ladder[0]
	for _, v := range ladder[1:] {
		if abs(v-target) < abs(best-target) {
			best = v
		}
	}
	return best
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// report assembles the final report: one result per pair in selection
// order, each with its best configuration and its look-ahead
// sensitivity curve at the best configuration's other coordinates.
func (e *evaluator) report(spec Spec, best []Config) *Report {
	r := &Report{
		Quality:  spec.QualityName(),
		Variant:  string(e.space.Variant),
		Strategy: string(e.space.Strategy),
	}
	for p, pr := range e.pairs {
		res := Result{
			Workload: pr.w.Name,
			System:   pr.sys.Name,
			Best:     best[p],
			Speedup:  e.speed[p][best[p]],
			Baseline: e.base[p][best[p].HWPF],
			Evals:    e.evals[p],
		}
		for _, c := range e.space.Cs {
			cfg := Config{C: c, Depth: best[p].Depth, Hoist: best[p].Hoist, HWPF: best[p].HWPF}
			if sp, ok := e.speed[p][cfg]; ok {
				res.Curve = append(res.Curve, CurvePoint{C: c, Speedup: sp})
			}
		}
		r.Results = append(r.Results, res)
	}
	return r
}
