// Package opt provides the standard cleanup passes a compiler would run
// after prefetch generation: constant folding, common-subexpression
// elimination, dead-code elimination and control-flow simplification.
//
// The prefetch pass duplicates address-generation code per chain
// position (O(n²) in the chain length, §6.2 of the paper), and much of
// that duplication — bound computations, clamped indices shared between
// positions — is recoverable by ordinary CSE. cmd/swpfc runs these
// under -O, and BenchmarkAblationCleanup measures how much of figure
// 8's instruction overhead they claw back.
package opt

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Result summarises what the cleanup did to one function.
type Result struct {
	Folded     int // instructions replaced by constants
	CSEHits    int // instructions replaced by earlier identical ones
	DeadArcs   int // unreachable blocks removed
	DeadInstrs int // unused pure instructions removed
	Hoisted    int // loop-invariant instructions moved to preheaders
}

// Run applies all cleanup passes to every function of the module until
// a fixed point, returning per-function summaries.
func Run(m *ir.Module) map[string]*Result {
	out := make(map[string]*Result, len(m.Funcs))
	for _, f := range m.Funcs {
		out[f.Name] = RunFunc(f)
	}
	return out
}

// RunFunc applies the cleanup passes to one function.
func RunFunc(f *ir.Function) *Result {
	res := &Result{}
	for {
		n := res.Folded + res.CSEHits + res.DeadArcs + res.DeadInstrs + res.Hoisted
		foldConstants(f, res)
		cse(f, res)
		removeUnreachable(f, res)
		deadCode(f, res)
		res.Hoisted += LICM(f)
		if res.Folded+res.CSEHits+res.DeadArcs+res.DeadInstrs+res.Hoisted == n {
			break
		}
	}
	f.Renumber()
	return res
}

// pureOp reports whether the opcode has no side effects and can be
// folded, shared or removed freely.
func pureOp(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpMin, ir.OpMax, ir.OpCmp, ir.OpSelect, ir.OpGEP:
		return true
	}
	return false
}

// foldConstants rewrites pure instructions with all-constant operands
// into constants, and simplifies identities (x+0, x*1, min(x,x), ...).
func foldConstants(f *ir.Function, res *Result) {
	replaceAll := func(old *ir.Instr, v ir.Value) {
		f.Instrs(func(in *ir.Instr) { in.ReplaceArg(old, v) })
		old.Block().Remove(old)
		res.Folded++
	}
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr{}, b.Instrs...) {
			if !pureOp(in.Op) || in.Block() == nil {
				continue
			}
			if v, ok := evalConst(in); ok {
				replaceAll(in, v)
				continue
			}
			if v, ok := simplify(in); ok {
				replaceAll(in, v)
			}
		}
	}
}

// evalConst evaluates an instruction whose operands are all constants.
func evalConst(in *ir.Instr) (ir.Value, bool) {
	args := make([]int64, len(in.Args))
	for i, a := range in.Args {
		c, isC := a.(*ir.Const)
		if !isC {
			return nil, false
		}
		args[i] = c.Val
	}
	switch in.Op {
	case ir.OpAdd:
		return ir.ConstInt(args[0] + args[1]), true
	case ir.OpSub:
		return ir.ConstInt(args[0] - args[1]), true
	case ir.OpMul:
		return ir.ConstInt(args[0] * args[1]), true
	case ir.OpDiv:
		if args[1] == 0 {
			return nil, false // preserve the runtime fault
		}
		return ir.ConstInt(args[0] / args[1]), true
	case ir.OpRem:
		if args[1] == 0 {
			return nil, false
		}
		return ir.ConstInt(args[0] % args[1]), true
	case ir.OpAnd:
		return ir.ConstInt(args[0] & args[1]), true
	case ir.OpOr:
		return ir.ConstInt(args[0] | args[1]), true
	case ir.OpXor:
		return ir.ConstInt(args[0] ^ args[1]), true
	case ir.OpShl:
		return ir.ConstInt(args[0] << (uint64(args[1]) & 63)), true
	case ir.OpShr:
		return ir.ConstInt(int64(uint64(args[0]) >> (uint64(args[1]) & 63))), true
	case ir.OpMin:
		if args[0] < args[1] {
			return ir.ConstInt(args[0]), true
		}
		return ir.ConstInt(args[1]), true
	case ir.OpMax:
		if args[0] > args[1] {
			return ir.ConstInt(args[0]), true
		}
		return ir.ConstInt(args[1]), true
	case ir.OpCmp:
		if in.Pred.Eval(args[0], args[1]) {
			return ir.ConstInt(1), true
		}
		return ir.ConstInt(0), true
	case ir.OpSelect:
		if args[0] != 0 {
			return ir.ConstInt(args[1]), true
		}
		return ir.ConstInt(args[2]), true
	}
	return nil, false
}

// simplify applies algebraic identities with non-constant operands.
func simplify(in *ir.Instr) (ir.Value, bool) {
	isZero := func(v ir.Value) bool {
		c, ok := v.(*ir.Const)
		return ok && c.Val == 0
	}
	isOne := func(v ir.Value) bool {
		c, ok := v.(*ir.Const)
		return ok && c.Val == 1
	}
	switch in.Op {
	case ir.OpAdd:
		if isZero(in.Args[0]) {
			return in.Args[1], true
		}
		if isZero(in.Args[1]) {
			return in.Args[0], true
		}
	case ir.OpSub, ir.OpShl, ir.OpShr, ir.OpOr, ir.OpXor:
		if isZero(in.Args[1]) && in.Op != ir.OpOr && in.Op != ir.OpXor {
			return in.Args[0], true
		}
		if (in.Op == ir.OpOr || in.Op == ir.OpXor) && isZero(in.Args[1]) {
			return in.Args[0], true
		}
		if (in.Op == ir.OpOr || in.Op == ir.OpXor) && isZero(in.Args[0]) {
			return in.Args[1], true
		}
	case ir.OpMul:
		if isOne(in.Args[0]) {
			return in.Args[1], true
		}
		if isOne(in.Args[1]) {
			return in.Args[0], true
		}
	case ir.OpDiv:
		if isOne(in.Args[1]) {
			return in.Args[0], true
		}
	case ir.OpMin, ir.OpMax:
		if in.Args[0] == in.Args[1] {
			return in.Args[0], true
		}
	case ir.OpSelect:
		if in.Args[1] == in.Args[2] {
			return in.Args[1], true
		}
	case ir.OpGEP:
		// gep base, 0, s == base
		if isZero(in.Args[1]) {
			return in.Args[0], true
		}
	}
	return nil, false
}

// cse performs dominance-based common-subexpression elimination over
// pure instructions: an instruction identical to one that dominates it
// is replaced by the earlier value.
func cse(f *ir.Function, res *Result) {
	f.Renumber()
	idom := ir.Dominators(f)
	table := map[string][]*ir.Instr{}
	key := func(in *ir.Instr) string {
		s := fmt.Sprintf("%d/%d", in.Op, in.Pred)
		for _, a := range in.Args {
			switch v := a.(type) {
			case *ir.Const:
				s += fmt.Sprintf("/c%d", v.Val)
			case *ir.Param:
				s += fmt.Sprintf("/p%d", v.Idx)
			case *ir.Instr:
				s += fmt.Sprintf("/i%d", v.ID)
			}
		}
		return s
	}
	// Visit blocks in dominance-compatible order (block order works for
	// the builder/parser layouts where dominators precede dominatees;
	// correctness is preserved regardless because we check dominance).
	var victims []*ir.Instr
	repl := map[*ir.Instr]*ir.Instr{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !pureOp(in.Op) {
				continue
			}
			k := key(in)
			replaced := false
			for _, prev := range table[k] {
				if prev.Block() == in.Block() {
					if prev.Block().Index(prev) < in.Block().Index(in) {
						repl[in] = prev
						victims = append(victims, in)
						replaced = true
					}
				} else if ir.Dominates(idom, prev.Block(), in.Block()) {
					repl[in] = prev
					victims = append(victims, in)
					replaced = true
				}
				if replaced {
					break
				}
			}
			if !replaced {
				table[k] = append(table[k], in)
			}
		}
	}
	if len(victims) == 0 {
		return
	}
	f.Instrs(func(in *ir.Instr) {
		for i, a := range in.Args {
			if v, isInstr := a.(*ir.Instr); isInstr {
				if r, ok := repl[v]; ok {
					in.Args[i] = r
				}
			}
		}
	})
	for _, v := range victims {
		v.Block().Remove(v)
		res.CSEHits++
	}
}

// removeUnreachable deletes blocks not reachable from the entry.
func removeUnreachable(f *ir.Function, res *Result) {
	reach := map[*ir.Block]bool{}
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(f.Entry())
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
			continue
		}
		res.DeadArcs++
		// Remove phi edges flowing in from the dead block.
		for _, s := range b.Succs() {
			if !reach[s] {
				continue
			}
			for _, phi := range s.Phis() {
				for i := len(phi.Incoming) - 1; i >= 0; i-- {
					if phi.Incoming[i] == b {
						phi.Incoming = append(phi.Incoming[:i], phi.Incoming[i+1:]...)
						phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
					}
				}
			}
		}
	}
	f.Blocks = kept
}

// deadCode removes pure instructions (and loads) whose results are
// never used. Loads are removable because the IR has no volatile
// accesses; prefetches, stores and terminators are always live.
func deadCode(f *ir.Function, res *Result) {
	for {
		used := map[*ir.Instr]bool{}
		f.Instrs(func(in *ir.Instr) {
			for _, a := range in.Args {
				if v, ok := a.(*ir.Instr); ok {
					used[v] = true
				}
			}
		})
		var dead []*ir.Instr
		f.Instrs(func(in *ir.Instr) {
			if used[in] || in.IsTerminator() {
				return
			}
			switch in.Op {
			case ir.OpStore, ir.OpPrefetch, ir.OpCall, ir.OpRet, ir.OpAlloc:
				return // side effects (allocs define memory identity)
			case ir.OpLoad:
				// Unused loads are dead: no volatile semantics.
			case ir.OpPhi:
				// Unused phis are dead too.
			default:
				if !pureOp(in.Op) {
					return
				}
			}
			dead = append(dead, in)
		})
		if len(dead) == 0 {
			return
		}
		// Remove in deterministic order.
		sort.Slice(dead, func(i, j int) bool { return dead[i].ID > dead[j].ID })
		for _, in := range dead {
			in.Block().Remove(in)
			res.DeadInstrs++
		}
	}
}
