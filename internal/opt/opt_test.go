package opt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func countOps(f *ir.Function, op ir.Op) int {
	n := 0
	f.Instrs(func(in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestConstantFolding(t *testing.T) {
	src := `module m
func f(%x: i64) -> i64 {
entry:
  %a = add 2, 3
  %b = mul %a, 4
  %c = min %b, 100
  %d = add %x, %c
  ret %d
}
`
	m := ir.MustParse(src)
	res := RunFunc(m.Func("f"))
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if res.Folded < 3 {
		t.Errorf("folded %d, want >= 3", res.Folded)
	}
	// Only the %x + 20 add should survive.
	f := m.Func("f")
	if n := countOps(f, ir.OpAdd); n != 1 {
		t.Errorf("%d adds remain, want 1:\n%s", n, m.String())
	}
	if countOps(f, ir.OpMul)+countOps(f, ir.OpMin) != 0 {
		t.Errorf("constant ops survived:\n%s", m.String())
	}
}

func TestIdentitySimplification(t *testing.T) {
	src := `module m
func f(%x: i64, %p: ptr) -> i64 {
entry:
  %a = add %x, 0
  %b = mul %a, 1
  %c = min %b, %b
  %g = gep %p, 0, 8
  %v = load i64, %g
  %d = add %c, %v
  ret %d
}
`
	m := ir.MustParse(src)
	RunFunc(m.Func("f"))
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := m.Func("f")
	if countOps(f, ir.OpMul)+countOps(f, ir.OpMin)+countOps(f, ir.OpGEP) != 0 {
		t.Errorf("identities survived:\n%s", m.String())
	}
	// Load must now use %p directly.
	var load *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			load = in
		}
	})
	if _, isParam := load.Args[0].(*ir.Param); !isParam {
		t.Errorf("load address not simplified to the parameter: %s", load.Format())
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	src := `module m
func f() -> i64 {
entry:
  %a = div 1, 0
  ret %a
}
`
	m := ir.MustParse(src)
	RunFunc(m.Func("f"))
	if countOps(m.Func("f"), ir.OpDiv) != 1 {
		t.Error("division by zero must not be folded away")
	}
}

func TestCSE(t *testing.T) {
	src := `module m
func f(%x: i64, %n: i64) -> i64 {
entry:
  %a = add %x, %n
  %b = add %x, %n
  %c = mul %a, %b
  %d = add %x, %n
  %e = add %c, %d
  ret %e
}
`
	m := ir.MustParse(src)
	res := RunFunc(m.Func("f"))
	if res.CSEHits != 2 {
		t.Errorf("CSE hits = %d, want 2:\n%s", res.CSEHits, m.String())
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestCSEAcrossDominatingBlocks(t *testing.T) {
	src := `module m
func f(%x: i64, %c: i64) -> i64 {
entry:
  %a = mul %x, 7
  cbr %c, then, else
then:
  %b = mul %x, 7
  ret %b
else:
  %d = mul %x, 7
  ret %d
}
`
	m := ir.MustParse(src)
	res := RunFunc(m.Func("f"))
	if res.CSEHits != 2 {
		t.Errorf("CSE hits = %d, want 2", res.CSEHits)
	}
}

func TestCSEDoesNotMergeAcrossSiblings(t *testing.T) {
	src := `module m
func f(%x: i64, %c: i64) -> i64 {
entry:
  cbr %c, then, else
then:
  %a = mul %x, 7
  br join
else:
  %b = mul %x, 7
  br join
join:
  %p = phi i64 [then: %a, else: %b]
  ret %p
}
`
	m := ir.MustParse(src)
	RunFunc(m.Func("f"))
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after sibling CSE attempt: %v\n%s", err, m.String())
	}
}

func TestCSEDoesNotMergeLoads(t *testing.T) {
	// Loads are not pure (a store may intervene): they must survive.
	src := `module m
func f(%p: ptr) -> i64 {
entry:
  %a = load i64, %p
  store i64, %p, 42
  %b = load i64, %p
  %c = add %a, %b
  ret %c
}
`
	m := ir.MustParse(src)
	RunFunc(m.Func("f"))
	if countOps(m.Func("f"), ir.OpLoad) != 2 {
		t.Error("CSE merged loads across a store")
	}
}

func TestDeadCodeElimination(t *testing.T) {
	src := `module m
func f(%p: ptr, %x: i64) -> i64 {
entry:
  %unused1 = add %x, 1
  %unused2 = mul %unused1, 3
  %deadload = load i64, %p
  store i64, %p, %x
  prefetch %p
  ret %x
}
`
	m := ir.MustParse(src)
	res := RunFunc(m.Func("f"))
	if res.DeadInstrs != 3 {
		t.Errorf("dead instrs = %d, want 3:\n%s", res.DeadInstrs, m.String())
	}
	f := m.Func("f")
	if countOps(f, ir.OpStore) != 1 || countOps(f, ir.OpPrefetch) != 1 {
		t.Error("side-effecting instructions removed")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	src := `module m
func f(%x: i64) -> i64 {
entry:
  br live
dead:
  %d = add %x, 1
  br live
live:
  %p = phi i64 [entry: %x, dead: %d]
  ret %p
}
`
	m := ir.MustParse(src)
	res := RunFunc(m.Func("f"))
	if res.DeadArcs != 1 {
		t.Errorf("dead blocks = %d, want 1", res.DeadArcs)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v (phi edge from dead block must be pruned)\n%s", err, m.String())
	}
	if m.Func("f").Block("dead") != nil {
		t.Error("dead block survived")
	}
}

// TestCleanupAfterPrefetchPass is the integration the package exists
// for: pass output shrinks under cleanup but keeps all prefetches and
// the same semantics.
func TestCleanupAfterPrefetchPass(t *testing.T) {
	for _, w := range workloads.Tiny() {
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Plain()
			prefetch.Run(inst.Mod, prefetch.DefaultOptions())
			before := 0
			pfBefore := 0
			for _, f := range inst.Mod.Funcs {
				before += f.NumInstrs()
				pfBefore += countOps(f, ir.OpPrefetch)
			}
			Run(inst.Mod)
			if err := inst.Mod.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			after := 0
			pfAfter := 0
			for _, f := range inst.Mod.Funcs {
				after += f.NumInstrs()
				pfAfter += countOps(f, ir.OpPrefetch)
			}
			if pfAfter != pfBefore {
				t.Errorf("cleanup changed prefetch count: %d -> %d", pfBefore, pfAfter)
			}
			if after > before {
				t.Errorf("cleanup grew the function: %d -> %d", before, after)
			}
			// Semantics preserved: run the cleaned kernel.
			mach := interp.New(inst.Mod, sim.DefaultConfig())
			if err := inst.Run(mach); err != nil {
				t.Fatalf("cleaned kernel wrong: %v", err)
			}
		})
	}
}

// TestQuickCleanupPreservesSemantics folds/CSEs random straight-line
// programs and compares interpreter results before and after.
func TestQuickCleanupPreservesSemantics(t *testing.T) {
	build := func(r *rand.Rand) *ir.Module {
		m := ir.NewModule("rand")
		f := m.NewFunc("f", ir.I64, &ir.Param{Name: "x", Typ: ir.I64})
		b := ir.NewBuilder(f)
		vals := []ir.Value{f.Param("x"), ir.ConstInt(int64(r.Intn(7))), ir.ConstInt(int64(r.Intn(100) - 50))}
		n := 3 + r.Intn(25)
		for i := 0; i < n; i++ {
			x := vals[r.Intn(len(vals))]
			y := vals[r.Intn(len(vals))]
			var v *ir.Instr
			switch r.Intn(8) {
			case 0:
				v = b.Add(x, y)
			case 1:
				v = b.Sub(x, y)
			case 2:
				v = b.Mul(x, y)
			case 3:
				v = b.And(x, y)
			case 4:
				v = b.Or(x, y)
			case 5:
				v = b.Min(x, y)
			case 6:
				v = b.Max(x, y)
			default:
				c := b.Cmp(ir.Pred(r.Intn(10)), x, y)
				v = b.Select(c, x, y)
			}
			vals = append(vals, v)
		}
		b.Ret(vals[len(vals)-1])
		f.Renumber()
		return m
	}
	err := quick.Check(func(seed int64, arg int64) bool {
		r := rand.New(rand.NewSource(seed))
		m1 := build(r)
		text := m1.String()
		m2 := ir.MustParse(text)
		RunFunc(m2.Func("f"))
		if err := m2.Verify(); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		arg &= 0xffff
		v1, err1 := interp.New(m1, sim.DefaultConfig()).Run("f", arg)
		v2, err2 := interp.New(m2, sim.DefaultConfig()).Run("f", arg)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("fault behaviour diverged: %v vs %v", err1, err2)
			return false
		}
		return err1 != nil || v1 == v2
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestRunWholeModule(t *testing.T) {
	src := `module m
func a(%x: i64) -> i64 {
entry:
  %v = add 1, 2
  %w = add %x, %v
  ret %w
}

func b(%x: i64) -> i64 {
entry:
  %v = call i64 @a(%x)
  ret %v
}
`
	m := ir.MustParse(src)
	res := Run(m)
	if len(res) != 2 {
		t.Fatalf("results for %d functions, want 2", len(res))
	}
	if res["a"].Folded == 0 {
		t.Error("nothing folded in a")
	}
	if !strings.Contains(m.String(), "call i64 @a") {
		t.Error("call removed")
	}
}

func TestLICMHoistsInvariantBound(t *testing.T) {
	// The n-1 bound computation inside the loop must move to the
	// preheader; the induction-variable add must stay.
	src := `module m
func f(%a: ptr, %n: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %s = phi i64 [entry: 0, body: %s2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %bound = sub %n, 1
  %adv = add %i, 64
  %cl = min %adv, %bound
  %ad = gep %a, %cl, 8
  prefetch %ad
  %a2 = gep %a, %i, 8
  %v = load i64, %a2
  %s2 = add %s, %v
  %i2 = add %i, 1
  br header
exit:
  ret %s
}
`
	m := ir.MustParse(src)
	n := LICM(m.Func("f"))
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	if n != 1 {
		t.Errorf("hoisted %d instructions, want 1 (the bound)\n%s", n, m.String())
	}
	entry := m.Func("f").Block("entry")
	foundSub := false
	for _, in := range entry.Instrs {
		if in.Op == ir.OpSub {
			foundSub = true
		}
	}
	if !foundSub {
		t.Errorf("bound not in preheader:\n%s", m.String())
	}
}

func TestLICMDoesNotHoistDivision(t *testing.T) {
	src := `module m
func f(%n: i64, %d: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %q = div 100, %d
  %i2 = add %i, %q
  br header
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	LICM(m.Func("f"))
	body := m.Func("f").Block("body")
	found := false
	for _, in := range body.Instrs {
		if in.Op == ir.OpDiv {
			found = true
		}
	}
	if !found {
		t.Error("division hoisted out of a possibly-zero-trip loop")
	}
}

func TestLICMDoesNotHoistConditional(t *testing.T) {
	// An instruction in a conditionally executed block must stay.
	src := `module m
func f(%n: i64, %x: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, latch: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %p = rem %i, 2
  %pc = cmp eq %p, 0
  cbr %pc, then, latch
then:
  %inv = mul %x, 17
  br latch
latch:
  %i2 = add %i, 1
  br header
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	LICM(m.Func("f"))
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	then := m.Func("f").Block("then")
	found := false
	for _, in := range then.Instrs {
		if in.Op == ir.OpMul {
			found = true
		}
	}
	if !found {
		t.Error("conditionally executed instruction was hoisted")
	}
}

func TestLICMCascadesThroughNest(t *testing.T) {
	// An invariant in the inner loop that depends on an outer-loop value
	// moves to the inner preheader; a fully invariant one cascades all
	// the way out.
	src := `module m
func f(%a: ptr, %rows: i64, %cols: i64) -> i64 {
entry:
  br oh
oh:
  %r = phi i64 [entry: 0, olatch: %r2]
  %oc = cmp lt %r, %rows
  cbr %oc, pre, oexit
pre:
  br ih
ih:
  %cidx = phi i64 [pre: 0, ibody: %c2]
  %ic = cmp lt %cidx, %cols
  cbr %ic, ibody, olatch
ibody:
  %full = mul %cols, 8
  %rowoff = mul %r, %cols
  %idx = add %rowoff, %cidx
  %ad = gep %a, %idx, 8
  %v = load i64, %ad
  %c2 = add %cidx, 1
  br ih
olatch:
  %r2 = add %r, 1
  br oh
oexit:
  ret %rows
}
`
	m := ir.MustParse(src)
	LICM(m.Func("f"))
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	f := m.Func("f")
	// %rowoff (depends on outer IV) belongs in "pre"; %full (fully
	// invariant) belongs in "entry".
	inBlock := func(name string, op ir.Op) bool {
		for _, in := range f.Block(name).Instrs {
			if in.Op == op && len(in.Args) == 2 {
				if c, ok := in.Args[1].(*ir.Const); ok && c.Val == 8 && op == ir.OpMul {
					return true
				}
				if op != ir.OpMul {
					return true
				}
			}
		}
		return false
	}
	if !inBlock("entry", ir.OpMul) {
		t.Errorf("fully invariant mul not in entry:\n%s", m.String())
	}
	ibody := f.Block("ibody")
	for _, in := range ibody.Instrs {
		if in.Op == ir.OpMul {
			t.Errorf("mul left in inner body:\n%s", m.String())
		}
	}
}
