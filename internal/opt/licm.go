package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// LICM hoists loop-invariant pure instructions to the loop preheader.
// The prefetch pass emits its clamp bounds (e.g. n-1) inside the loop
// body; hoisting them recovers part of the instruction overhead that
// figure 8 charges to prefetching — the effect the paper credits for
// ICC beating the prototype on IS ("reducing overhead by moving the
// checks on the prefetch to outer loops", §6.1).
//
// Only instructions in blocks that execute on every iteration (blocks
// dominating all latches) are hoisted, so no new computation is
// introduced on any path that did not already run it.
func LICM(f *ir.Function) int {
	moved := 0
	for {
		n := licmOnce(f)
		moved += n
		if n == 0 {
			return moved
		}
	}
}

func licmOnce(f *ir.Function) int {
	f.Renumber()
	li := analysis.FindLoops(f)
	idom := ir.Dominators(f)
	moved := 0

	// Innermost loops first so hoisted code can cascade outwards on the
	// next iteration of LICM.
	for _, l := range li.Loops {
		pre := preheader(l)
		if pre == nil {
			continue
		}
		term := pre.Term()
		for blk := range l.Blocks {
			// Safety: the block must run on every iteration.
			safe := true
			for _, latch := range l.Latches {
				if !ir.Dominates(idom, blk, latch) {
					safe = false
					break
				}
			}
			if !safe {
				continue
			}
			for _, in := range append([]*ir.Instr{}, blk.Instrs...) {
				if !pureOp(in.Op) || in.Block() == nil {
					continue
				}
				// Division faults on zero divisors: hoisting one out of a
				// loop that may run zero iterations would introduce a
				// fault the original program never raised.
				if in.Op == ir.OpDiv || in.Op == ir.OpRem {
					continue
				}
				invariant := true
				for _, a := range in.Args {
					if def, ok := a.(*ir.Instr); ok && l.Contains(def.Block()) {
						invariant = false
						break
					}
				}
				if !invariant {
					continue
				}
				in.Block().Remove(in)
				pre.InsertBefore(term, in)
				moved++
			}
		}
	}
	return moved
}

// preheader returns the unique out-of-loop predecessor of the header.
func preheader(l *analysis.Loop) *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds() {
		if l.Contains(p) {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}
