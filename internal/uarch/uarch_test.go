package uarch

import (
	"testing"

	"repro/internal/sim"
)

func TestAllValidate(t *testing.T) {
	for _, cfg := range All() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

// TestTable1Relations asserts the structural facts of Table 1 that the
// paper's analysis relies on.
func TestTable1Relations(t *testing.T) {
	hw, phi, a57, a53 := Haswell(), XeonPhi(), A57(), A53()

	// Core types (§5.2): Haswell and A57 are out-of-order; A53 and
	// Xeon Phi are in-order.
	if !hw.OutOfOrder || !a57.OutOfOrder {
		t.Error("Haswell and A57 must be out-of-order")
	}
	if phi.OutOfOrder || a53.OutOfOrder {
		t.Error("Xeon Phi and A53 must be in-order")
	}

	// Cache hierarchy: only Haswell has an L3.
	if len(hw.Caches) != 3 {
		t.Error("Haswell must have three cache levels")
	}
	for _, c := range []*sim.Config{phi, a57, a53} {
		if len(c.Caches) != 2 {
			t.Errorf("%s must have two cache levels", c.Name)
		}
	}

	// Capacity order of the last-level caches mirrors Table 1:
	// Haswell 8M > A57 2M > A53 1M > Phi 512K (scaled equally).
	llc := func(c *sim.Config) int64 { return c.Caches[len(c.Caches)-1].Size }
	if !(llc(hw) > llc(a57) && llc(a57) > llc(a53) && llc(a53) > llc(phi)) {
		t.Errorf("LLC capacity order wrong: hw=%d a57=%d a53=%d phi=%d",
			llc(hw), llc(a57), llc(a53), llc(phi))
	}

	// A57's single page-table walk at a time (§6.1).
	if a57.PageWalkers != 1 {
		t.Error("A57 must have exactly one page walker")
	}
	if hw.PageWalkers < 2 {
		t.Error("Haswell supports multiple concurrent walks")
	}

	// The Phi's memory latency (in cycles) is the highest; its GDDR5
	// bandwidth is the highest too.
	for _, c := range []*sim.Config{hw, a57, a53} {
		if phi.DRAMLatency <= c.DRAMLatency {
			t.Errorf("Phi DRAM latency must exceed %s", c.Name)
		}
		if phi.BytesPerCycle < c.BytesPerCycle {
			t.Errorf("Phi bandwidth must be at least %s's", c.Name)
		}
	}

	// Haswell runs with transparent huge pages by default (§6.2).
	if hw.PageSize != 2<<20 {
		t.Error("Haswell default page size must be 2MiB")
	}
	for _, c := range []*sim.Config{phi, a57, a53} {
		if c.PageSize != 4<<10 {
			t.Errorf("%s must default to 4KiB pages", c.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Haswell", "XeonPhi", "A57", "A53"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("M1") != nil {
		t.Error("unknown name should return nil")
	}
}

func TestPageVariants(t *testing.T) {
	hw := Haswell()
	small := SmallPages(hw)
	if small.PageSize != 4<<10 {
		t.Error("SmallPages did not set 4KiB")
	}
	if hw.PageSize != 2<<20 {
		t.Error("SmallPages mutated the original")
	}
	huge := HugePages(small)
	if huge.PageSize != 2<<20 {
		t.Error("HugePages did not set 2MiB")
	}
	if err := small.Validate(); err != nil {
		t.Errorf("small-page variant invalid: %v", err)
	}
}

func TestWithCores(t *testing.T) {
	hw := Haswell()
	quad := WithCores(hw, 4)
	if quad.SharedCores != 4 {
		t.Error("WithCores did not set SharedCores")
	}
	if hw.SharedCores != 0 {
		t.Error("WithCores mutated the original")
	}
}

func TestPresetsAreFresh(t *testing.T) {
	a := Haswell()
	a.MSHRs = 1
	b := Haswell()
	if b.MSHRs == 1 {
		t.Error("presets share state")
	}
}
