// Package uarch provides the simulated counterparts of the four
// machines in Table 1 of Ainsworth & Jones (CGO 2017):
//
//	Haswell   Intel Core i5-4570: out-of-order, 32KB L1D / 256KiB L2 /
//	          8MiB L3, DDR3, transparent huge pages enabled.
//	Xeon Phi  Intel Xeon Phi 3120P: in-order, 32KiB L1D / 512KiB L2,
//	          GDDR5 (high bandwidth, high latency).
//	A57       Nvidia TX1, ARM Cortex-A57: out-of-order, 32KiB L1D /
//	          2MiB L2, LPDDR4, a single page-table walker.
//	A53       Odroid C2, ARM Cortex-A53: in-order, 32KiB L1D / 1MiB L2,
//	          DDR3.
//
// Because the simulated workloads are scaled down (see DESIGN.md),
// capacity parameters are reduced relative to the real parts,
// preserving the capacity relations the paper's analysis relies on
// (which irregular datasets fit in which level, TLB reach vs. array
// footprint). Outer levels scale by CacheScale; the L1 scales by only
// L1Scale, because the paper's "c = 64 is near-optimal" result depends
// on look-ahead-distance x lines-per-iteration staying well below L1
// capacity, and the look-ahead constant is not scaled. Latencies,
// widths, window sizes and walker counts are kept at realistic values.
package uarch

import "repro/internal/sim"

// CacheScale is the factor by which cache and TLB capacities are
// reduced relative to the real machines, matching the workload scaling
// in package workloads.
const CacheScale = 8

// L1Scale is the gentler reduction applied to first-level caches (see
// the package comment).
const L1Scale = 2

// Haswell returns the simulated Intel Core i5-4570.
func Haswell() *sim.Config {
	return &sim.Config{
		Name:       "Haswell",
		OutOfOrder: true,
		IssueWidth: 4,
		// The overlap window is the effective scheduler capacity, not
		// the 192-entry architectural ROB: dependent uses of missing
		// loads pile up in the 60-entry RS long before the ROB fills,
		// bounding demand MLP well below the MSHR count — the headroom
		// software prefetching exploits on out-of-order cores (§6.1).
		ROBSize:    96,
		MSHRs:      10,
		MulLatency: 3,
		DivLatency: 20,

		MispredictPenalty: 15,
		MispredictRate:    0.02,

		Caches: []sim.CacheConfig{
			{Name: "L1", Size: 32 << 10 / L1Scale, LineSize: 64, Assoc: 8, Latency: 4},
			{Name: "L2", Size: 256 << 10 / CacheScale, LineSize: 64, Assoc: 8, Latency: 12},
			// The L3 is scaled slightly harder than the inner levels so
			// that the scaled irregular datasets keep the same "misses
			// the LLC" relation they have on the real part (DESIGN.md).
			{Name: "L3", Size: 8 << 20 / (2 * CacheScale), LineSize: 64, Assoc: 16, Latency: 34},
		},
		DRAMLatency:   220,
		BytesPerCycle: 8,

		// Transparent huge pages are the Haswell kernel's default in the
		// paper (§6.2, fig. 10); SmallPages() flips this.
		PageSize:    2 << 20,
		TLBEntries:  64 / 4,
		TLB2Entries: 1024 / 4,
		TLB2Latency: 8,
		WalkLatency: 40,
		PageWalkers: 2,

		StridePrefetch:  true,
		StrideDegree:    4,
		StrideConf:      2,
		StrideFillLevel: 1, // Intel's streamer fills L2, not L1D
	}
}

// XeonPhi returns the simulated Intel Xeon Phi 3120P (one core of 57).
// The in-order pipeline cannot overlap misses across dependent uses,
// and GDDR5 has high latency in core cycles; bandwidth is plentiful.
func XeonPhi() *sim.Config {
	return &sim.Config{
		Name:       "XeonPhi",
		OutOfOrder: false,
		IssueWidth: 2,
		ROBSize:    16, // in-flight limit for an in-order pipeline
		MSHRs:      8,
		MulLatency: 4,
		DivLatency: 30,

		MispredictPenalty: 6,
		MispredictRate:    0.02,

		Caches: []sim.CacheConfig{
			{Name: "L1", Size: 32 << 10 / L1Scale, LineSize: 64, Assoc: 8, Latency: 3},
			{Name: "L2", Size: 512 << 10 / CacheScale, LineSize: 64, Assoc: 8, Latency: 22},
		},
		DRAMLatency:   340,
		BytesPerCycle: 16,

		PageSize:    4 << 10,
		TLBEntries:  64 / 4,
		TLB2Entries: 512 / 4,
		TLB2Latency: 10,
		WalkLatency: 80,
		PageWalkers: 2,

		// The Phi's L2 stride prefetcher is weak; software prefetch is
		// the recommended vehicle on this part (§2).
		StridePrefetch:  true,
		StrideDegree:    2,
		StrideConf:      3,
		StrideFillLevel: 1,
	}
}

// A57 returns the simulated ARM Cortex-A57 (Nvidia TX1). Out-of-order,
// but with a single page-table walk supported at a time — §6.1 singles
// this out as the limiter for IS and HJ-2.
func A57() *sim.Config {
	return &sim.Config{
		Name:       "A57",
		OutOfOrder: true,
		IssueWidth: 3,
		// Effective scheduler window (see the Haswell comment); the
		// A57's issue queues are much smaller than its 128-entry ROB.
		ROBSize:    40,
		MSHRs:      6,
		MulLatency: 3,
		DivLatency: 20,

		MispredictPenalty: 15,
		MispredictRate:    0.02,

		Caches: []sim.CacheConfig{
			{Name: "L1", Size: 32 << 10 / L1Scale, LineSize: 64, Assoc: 2, Latency: 4},
			{Name: "L2", Size: 2 << 20 / CacheScale, LineSize: 64, Assoc: 16, Latency: 21},
		},
		DRAMLatency:   260,
		BytesPerCycle: 8,

		PageSize:    4 << 10,
		TLBEntries:  32 / 4,
		TLB2Entries: 512 / 4,
		TLB2Latency: 7,
		WalkLatency: 90,
		PageWalkers: 1, // the A57's single outstanding page-table walk

		StridePrefetch:  true,
		StrideDegree:    4,
		StrideConf:      2,
		StrideFillLevel: 1,
	}
}

// A53 returns the simulated ARM Cortex-A53 (Odroid C2): a dual-issue
// in-order core that stalls on every use of a missing load.
func A53() *sim.Config {
	return &sim.Config{
		Name:       "A53",
		OutOfOrder: false,
		IssueWidth: 2,
		ROBSize:    8,
		MSHRs:      4,
		MulLatency: 3,
		DivLatency: 25,

		MispredictPenalty: 8,
		MispredictRate:    0.02,

		Caches: []sim.CacheConfig{
			{Name: "L1", Size: 32 << 10 / L1Scale, LineSize: 64, Assoc: 4, Latency: 3},
			{Name: "L2", Size: 1 << 20 / CacheScale, LineSize: 64, Assoc: 16, Latency: 15},
		},
		DRAMLatency:   230,
		BytesPerCycle: 6,

		PageSize:    4 << 10,
		TLBEntries:  32 / 4,
		TLB2Entries: 512 / 4,
		TLB2Latency: 7,
		WalkLatency: 70,
		PageWalkers: 1,

		StridePrefetch:  true,
		StrideDegree:    3,
		StrideConf:      2,
		StrideFillLevel: 1,
	}
}

// All returns the four systems in the paper's presentation order.
func All() []*sim.Config {
	return []*sim.Config{Haswell(), XeonPhi(), A57(), A53()}
}

// ByName returns the preset with the given name, or nil.
func ByName(name string) *sim.Config {
	for _, c := range All() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// SmallPages returns a copy of the configuration with 4KiB pages
// (figure 10's "Small Pages" variant).
func SmallPages(cfg *sim.Config) *sim.Config {
	out := *cfg
	out.Name = cfg.Name + "-4k"
	out.PageSize = 4 << 10
	return &out
}

// HugePages returns a copy with 2MiB pages (figure 10's "Huge Pages").
func HugePages(cfg *sim.Config) *sim.Config {
	out := *cfg
	out.Name = cfg.Name + "-2m"
	out.PageSize = 2 << 20
	return &out
}

// WithHWPrefetcher returns a copy of the configuration running the
// named hardware-prefetcher model (see internal/hwpf): "none",
// "stride", "nextline", "ghb" or "imp". The machine name is kept, so
// result labels stay comparable across the hardware axis; sweep
// records carry the model in their own column. The Stride* tuning
// knobs (degree, confidence, fill level, trackers) carry over to the
// new model, preserving each machine's hardware-aggressiveness
// defaults.
func WithHWPrefetcher(cfg *sim.Config, name string) *sim.Config {
	out := *cfg
	out.HWPrefetcher = name
	return &out
}

// WithCoreModel returns a copy of the configuration driven by the
// named CPU core timing model (see internal/sim): "interval", "ooo"
// or "inorder". The machine name is kept, so result labels stay
// comparable across the core axis; sweep records carry the model in
// their own column. All pipeline parameters (issue width, ROB size,
// MSHRs, the legacy OutOfOrder flag the interval model consults)
// carry over — only the timing model interpreting them changes.
func WithCoreModel(cfg *sim.Config, name string) *sim.Config {
	out := *cfg
	out.Core = name
	return &out
}

// WithCores returns a copy contending with n-1 identical cores for the
// DRAM bus (figure 9). The contending copies are partially
// latency-bound themselves, so each injects less than a full core's
// worth of bus traffic.
func WithCores(cfg *sim.Config, n int) *sim.Config {
	out := *cfg
	out.SharedCores = n
	out.ContentionLoad = 0.7
	return &out
}
