package prefetch

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// candidate is the result of the depth-first search from a target load:
// the induction variable reached, and every instruction on the paths
// from it to the load (Algorithm 1, lines 1-24).
type candidate struct {
	iv   *ir.Instr
	loop *analysis.Loop
	set  map[*ir.Instr]bool
	// subs maps non-induction phis to the outer-loop values substituted
	// for them by the loop-hoisting extension (§4.6).
	subs map[*ir.Instr]ir.Value
	// hoisted is set when subs is non-empty.
	hoisted bool
	// poisonCall / poisonPhi record that a path to the induction
	// variable runs through a function call or a non-induction phi,
	// which the filters of Algorithm 1 (lines 35, 40) reject.
	poisonCall bool
	poisonPhi  bool
}

// dfs walks the data-dependence graph backwards from the load,
// collecting candidate induction variables. It returns nil when no
// induction variable is reachable.
func (st *passState) dfs(ld *ir.Instr) *candidate {
	visited := map[*ir.Instr]*candidate{}
	c := st.dfsInstr(ld, visited, 0)
	if c == nil || c.iv == nil {
		if c != nil && (c.poisonCall || c.poisonPhi) {
			return c // report the poison as a rejection
		}
		return nil
	}
	return c
}

const maxDFSDepth = 128

// dfsInstr returns the merged candidate for paths starting at in, with
// in itself included in the instruction set.
func (st *passState) dfsInstr(in *ir.Instr, visited map[*ir.Instr]*candidate, depth int) *candidate {
	if depth > maxDFSDepth {
		return nil
	}
	if c, ok := visited[in]; ok {
		return cloneCandidate(c)
	}

	// Collect one candidate per operand path (Algorithm 1, lines 3-10).
	var cands []*candidate
	poisonCall, poisonPhi := false, false
	hoistedAny := false
	var mergedSubs map[*ir.Instr]ir.Value

	for _, o := range in.Args {
		def, isInstr := o.(*ir.Instr)
		if !isInstr {
			continue // constants and parameters terminate the path
		}
		// Found an induction variable: this path is complete (line 5).
		if l, isIV := st.ivLoop[def]; isIV {
			cands = append(cands, &candidate{iv: def, loop: l, set: map[*ir.Instr]bool{in: true}})
			continue
		}
		// Stop at instructions not inside any loop (§4.1).
		defLoop := st.li.LoopOf(def.Block())
		if defLoop == nil {
			continue
		}
		switch def.Op {
		case ir.OpPhi:
			// A non-induction phi. With hoisting enabled and a unique
			// incoming value flowing in from outside the phi's loop, the
			// pass substitutes that value and keeps searching (§4.6).
			if st.opts.Hoist {
				if sub := outerIncoming(def, defLoop); sub != nil {
					sc := st.dfsValue(sub, in, visited, depth+1)
					if sc != nil && sc.iv != nil {
						sc.hoisted = true
						if sc.subs == nil {
							sc.subs = map[*ir.Instr]ir.Value{}
						}
						sc.subs[def] = sub
						cands = append(cands, sc)
						continue
					}
				}
			}
			poisonPhi = true
		case ir.OpCall:
			if st.opts.AllowPureCalls && st.pure.IsPure(def.Callee) {
				if sc := st.dfsInstr(def, visited, depth+1); sc != nil && sc.iv != nil {
					sc.set[in] = true
					cands = append(cands, sc)
					poisonCall = poisonCall || sc.poisonCall
					poisonPhi = poisonPhi || sc.poisonPhi
				}
				continue
			}
			// A call on the path: search through it so that reaching an
			// induction variable triggers an explicit rejection rather
			// than silence (line 35).
			if sc := st.dfsInstr(def, visited, depth+1); sc != nil && sc.iv != nil {
				poisonCall = true
			}
		default:
			sc := st.dfsInstr(def, visited, depth+1)
			if sc == nil {
				continue
			}
			poisonCall = poisonCall || sc.poisonCall
			poisonPhi = poisonPhi || sc.poisonPhi
			if sc.iv != nil {
				sc.set[in] = true
				cands = append(cands, sc)
				if sc.hoisted {
					hoistedAny = true
					mergedSubs = mergeSubs(mergedSubs, sc.subs)
				}
			}
		}
	}

	merged := mergeCandidates(cands)
	if merged == nil {
		if poisonCall || poisonPhi {
			merged = &candidate{poisonCall: poisonCall, poisonPhi: poisonPhi}
		}
		visited[in] = merged
		return cloneCandidate(merged)
	}
	merged.poisonCall = merged.poisonCall || poisonCall
	merged.poisonPhi = merged.poisonPhi || poisonPhi
	merged.hoisted = merged.hoisted || hoistedAny
	merged.subs = mergeSubs(merged.subs, mergedSubs)
	visited[in] = merged
	return cloneCandidate(merged)
}

// dfsValue continues the search through a substituted value: user is
// the instruction whose operand was substituted.
func (st *passState) dfsValue(v ir.Value, user *ir.Instr, visited map[*ir.Instr]*candidate, depth int) *candidate {
	def, isInstr := v.(*ir.Instr)
	if !isInstr {
		return nil
	}
	if l, isIV := st.ivLoop[def]; isIV {
		return &candidate{iv: def, loop: l, set: map[*ir.Instr]bool{user: true}}
	}
	if st.li.LoopOf(def.Block()) == nil {
		return nil
	}
	sc := st.dfsInstr(def, visited, depth)
	if sc == nil || sc.iv == nil {
		return nil
	}
	sc.set[user] = true
	return sc
}

// outerIncoming returns the unique incoming value of the phi that flows
// in from outside the given loop, or nil.
func outerIncoming(phi *ir.Instr, l *analysis.Loop) ir.Value {
	var out ir.Value
	for i, pred := range phi.Incoming {
		if !l.Contains(pred) {
			if out != nil {
				return nil // multiple outer entries
			}
			out = phi.Args[i]
		}
	}
	return out
}

// mergeCandidates implements lines 12-24 of Algorithm 1: zero paths
// yield nil, one path yields itself, and multiple paths select the
// induction variable of the innermost (deepest) loop, merging the sets
// of every path that reaches that variable.
func mergeCandidates(cands []*candidate) *candidate {
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.loop.Depth > best.loop.Depth {
			best = c
		}
	}
	out := &candidate{iv: best.iv, loop: best.loop, set: map[*ir.Instr]bool{}}
	for _, c := range cands {
		if c.iv != best.iv {
			continue
		}
		for in := range c.set {
			out.set[in] = true
		}
		out.poisonCall = out.poisonCall || c.poisonCall
		out.poisonPhi = out.poisonPhi || c.poisonPhi
		out.hoisted = out.hoisted || c.hoisted
		out.subs = mergeSubs(out.subs, c.subs)
	}
	return out
}

func mergeSubs(dst, src map[*ir.Instr]ir.Value) map[*ir.Instr]ir.Value {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = map[*ir.Instr]ir.Value{}
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func cloneCandidate(c *candidate) *candidate {
	if c == nil {
		return nil
	}
	out := &candidate{
		iv: c.iv, loop: c.loop,
		poisonCall: c.poisonCall, poisonPhi: c.poisonPhi,
		hoisted: c.hoisted,
	}
	if c.set != nil {
		out.set = make(map[*ir.Instr]bool, len(c.set))
		for k := range c.set {
			out.set[k] = true
		}
	}
	out.subs = mergeSubs(nil, c.subs)
	return out
}
