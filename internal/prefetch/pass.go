// Package prefetch implements the automatic software-prefetch
// generation pass of Ainsworth & Jones, "Software Prefetching for
// Indirect Memory Accesses" (CGO 2017), Algorithm 1.
//
// The pass finds loads inside loops whose addresses are computed
// (directly or through intermediate loads) from a loop induction
// variable, duplicates the address-generation code at a configurable
// look-ahead offset, clamps the induction variable so the duplicated
// loads cannot fault (§4.2), and replaces the final duplicated load
// with a prefetch instruction (§4.3). Look-ahead distances follow the
// scheduling formula of §4.4:
//
//	offset(l) = c * (t - l) / t
//
// where t is the number of loads in the chain, l the position of the
// load within it, and c a per-microarchitecture constant (64 in the
// paper, for every system evaluated).
package prefetch

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// Mode selects the pass variant.
type Mode int

const (
	// ModeFull is the paper's pass (§4).
	ModeFull Mode = iota
	// ModeSimpleStrideIndirect mimics the Intel compiler's restricted
	// stride-indirect prefetcher used as the "ICC-generated" baseline in
	// figure 4(d): only direct a[b[i]] patterns with statically known
	// array bounds are transformed; chains involving extra address
	// computation (hashing) or unknown sizes are skipped.
	ModeSimpleStrideIndirect
)

// Options configures the pass.
type Options struct {
	// C is the look-ahead constant c of eq. (1). The paper sets 64.
	C int64
	// Mode selects the full pass or the restricted ICC-like variant.
	Mode Mode
	// NoStrideCompanion disables the staggered prefetch of the
	// sequentially accessed look-ahead array (the "Indirect Only"
	// configuration of figure 5). The default (false) staggers
	// prefetches to every load in the chain, which the paper shows is
	// required for optimal performance (§3).
	NoStrideCompanion bool
	// MaxStaggerDepth, when positive, limits how many loads of each
	// chain receive prefetches, counting from the shallowest indirect
	// access (figure 7). Zero means no limit.
	MaxStaggerDepth int
	// Hoist enables the prefetch loop-hoisting extension of §4.6:
	// loads in inner loops whose address computation references an
	// outer-loop value through a phi are prefetched by substituting the
	// outer-loop incoming value.
	Hoist bool
	// AllowPureCalls permits side-effect-free function calls inside
	// duplicated address-generation code, an extension the paper notes
	// is possible (§4.1). Off by default, like the paper's prototype.
	AllowPureCalls bool
	// FlatOffset disables the per-position scheduling of eq. (1) and
	// uses the full look-ahead constant c for every load in a chain.
	// This is an ablation knob: the paper's staggering exists precisely
	// so each dependent load's input was prefetched c/t iterations
	// before it is needed.
	FlatOffset bool
	// TestClampSlack widens every emitted §4.2 clamp by this many
	// iterations (upward loops clamp to bound+slack, downward loops to
	// bound-slack). A nonzero value deliberately violates the
	// fault-avoidance guarantee: duplicated intermediate loads read
	// past their array. It exists as a fault-injection hook so the
	// differential-fuzzing harness (internal/gen, cmd/swpffuzz) can
	// prove it detects an unsafe transform; production entry points
	// never set it.
	TestClampSlack int64
	// SplitLoops peels the final look-ahead iterations of simple
	// prefetched loops into a clamp-free main loop plus an epilogue
	// without prefetches — the bounds-check-hoisting trick §6.1 credits
	// for the Intel compiler beating the prototype on IS. Off by
	// default, like the paper's prototype.
	SplitLoops bool
}

// DefaultOptions returns the paper's configuration: c = 64, full mode,
// stride companions on, unlimited stagger depth.
func DefaultOptions() Options { return Options{C: 64} }

// RejectReason classifies why a candidate load was not prefetched.
type RejectReason int

// Rejection reasons, mirroring the filters of Algorithm 1 and §4.2.
const (
	// RejectNone is the zero value and never appears in results.
	RejectNone RejectReason = iota
	// RejectCall: the address-generation code contains a (potentially
	// side-effecting) function call (Algorithm 1 line 35).
	RejectCall
	// RejectNonIVPhi: the code depends on a non-induction-variable phi,
	// indicating control flow the pass cannot reproduce (line 40).
	RejectNonIVPhi
	// RejectClobbered: a data structure used for address generation is
	// stored to within the loop (§4.2, line 37).
	RejectClobbered
	// RejectConditional: an address-generating instruction does not
	// execute on every loop iteration, so its future value cannot be
	// guaranteed (§4.2).
	RejectConditional
	// RejectNoSizeInfo: neither allocation-size information nor a
	// usable loop bound is available to clamp intermediate loads (§4.2).
	RejectNoSizeInfo
	// RejectNotCanonical: the induction variable is not in canonical
	// form, or its loop's bound cannot be used (non-unit step,
	// multiple exits) where the fault-avoidance rules require it.
	RejectNotCanonical
	// RejectStrideOnly: the chain contains a single load, i.e. a plain
	// stride access, which is left to the hardware prefetcher (§4.3).
	RejectStrideOnly
	// RejectOperandEscapes: an address-generation instruction uses a
	// loop-variant value that is neither the induction variable nor
	// part of the duplicated code.
	RejectOperandEscapes
	// RejectModeRestricted: the restricted ICC-like mode skipped a
	// pattern the full pass would transform.
	RejectModeRestricted
)

var rejectNames = map[RejectReason]string{
	RejectCall:           "contains function call",
	RejectNonIVPhi:       "contains non-induction phi",
	RejectClobbered:      "address array stored to in loop",
	RejectConditional:    "address code conditionally executed",
	RejectNoSizeInfo:     "no size information for clamping",
	RejectNotCanonical:   "induction variable not usable for clamping",
	RejectStrideOnly:     "stride-only access left to hardware prefetcher",
	RejectOperandEscapes: "uses loop-variant value outside chain",
	RejectModeRestricted: "pattern outside restricted mode",
}

func (r RejectReason) String() string {
	if s, ok := rejectNames[r]; ok {
		return s
	}
	return fmt.Sprintf("reject(%d)", int(r))
}

// Rejection records a load the pass considered but did not prefetch.
type Rejection struct {
	Load   *ir.Instr
	Reason RejectReason
}

// Emitted describes one generated prefetch.
type Emitted struct {
	// Target is the original load the prefetch covers.
	Target *ir.Instr
	// Prefetch is the emitted prefetch instruction.
	Prefetch *ir.Instr
	// Position is l in eq. (1): 0 for the shallowest (stride) load.
	Position int
	// ChainLen is t in eq. (1).
	ChainLen int
	// Offset is the applied look-ahead in loop iterations.
	Offset int64
	// Hoisted reports whether §4.6 loop hoisting produced this prefetch.
	Hoisted bool
}

// Result reports what the pass did to one function.
type Result struct {
	Func       *ir.Function
	Emitted    []Emitted
	Rejections []Rejection
	// NewInstrs is the total number of instructions added.
	NewInstrs int
}

// Prefetches returns the emitted prefetch instructions.
func (r *Result) Prefetches() []*ir.Instr {
	out := make([]*ir.Instr, len(r.Emitted))
	for i := range r.Emitted {
		out[i] = r.Emitted[i].Prefetch
	}
	return out
}

// RejectionsFor returns the reasons recorded for a given load.
func (r *Result) RejectionsFor(load *ir.Instr) []RejectReason {
	var out []RejectReason
	for _, rej := range r.Rejections {
		if rej.Load == load {
			out = append(out, rej.Reason)
		}
	}
	return out
}

// Run applies the pass to every function of the module and returns
// per-function results keyed by function name.
func Run(m *ir.Module, opts Options) map[string]*Result {
	if opts.C == 0 {
		opts.C = 64
	}
	pure := analysis.PureFunctions(m)
	results := make(map[string]*Result, len(m.Funcs))
	for _, f := range m.Funcs {
		results[f.Name] = runFunc(f, opts, pure)
	}
	return results
}

// RunFunc applies the pass to a single function.
func RunFunc(f *ir.Function, opts Options) *Result {
	if opts.C == 0 {
		opts.C = 64
	}
	var pure *analysis.SideEffectInfo
	if f.Mod != nil {
		pure = analysis.PureFunctions(f.Mod)
	} else {
		pure = analysis.PureFunctions(&ir.Module{})
	}
	return runFunc(f, opts, pure)
}

type passState struct {
	f    *ir.Function
	opts Options
	li   *analysis.LoopInfo
	idom map[*ir.Block]*ir.Block
	pure *analysis.SideEffectInfo

	// ivLoop maps each canonical induction-variable phi to its loop.
	ivLoop map[*ir.Instr]*analysis.Loop
	// seCache caches per-loop side-effect summaries.
	seCache map[*analysis.Loop]*analysis.SideEffects

	res *Result
	// emittedKeys dedups prefetches for shared chain prefixes: two
	// indirect loads sharing a stride load must not both emit the
	// stride companion.
	emittedKeys map[string]bool
	// split accumulates per-loop emission facts for Options.SplitLoops.
	split map[*analysis.Loop]*splitInfo
}

func runFunc(f *ir.Function, opts Options, pure *analysis.SideEffectInfo) *Result {
	f.Renumber()
	st := &passState{
		f:           f,
		opts:        opts,
		li:          analysis.FindLoops(f),
		idom:        ir.Dominators(f),
		pure:        pure,
		ivLoop:      map[*ir.Instr]*analysis.Loop{},
		seCache:     map[*analysis.Loop]*analysis.SideEffects{},
		res:         &Result{Func: f},
		emittedKeys: map[string]bool{},
	}
	for _, l := range st.li.Loops {
		if l.IndVar != nil {
			st.ivLoop[l.IndVar] = l
		}
	}

	// Snapshot the loads inside loops before mutation (Algorithm 1,
	// line 30): the pass must not reprocess its own output.
	var loads []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && st.li.LoopOf(in.Block()) != nil {
			loads = append(loads, in)
		}
	})

	before := f.NumInstrs()
	for _, ld := range loads {
		st.processLoad(ld)
	}
	if opts.SplitLoops {
		st.applySplits()
	}
	f.Renumber()
	st.res.NewInstrs = f.NumInstrs() - before
	return st.res
}

func (st *passState) sideEffects(l *analysis.Loop) *analysis.SideEffects {
	if se, ok := st.seCache[l]; ok {
		return se
	}
	se := analysis.LoopSideEffects(l)
	st.seCache[l] = &se
	return &se
}

func (st *passState) reject(ld *ir.Instr, r RejectReason) {
	st.res.Rejections = append(st.res.Rejections, Rejection{Load: ld, Reason: r})
}

// processLoad runs the DFS and, if a viable candidate emerges, emits
// prefetch code for the whole chain.
func (st *passState) processLoad(ld *ir.Instr) {
	cand := st.dfs(ld)
	if cand == nil {
		return // no induction variable found; not a rejection, just not a target
	}
	if cand.poisonCall {
		st.reject(ld, RejectCall)
		return
	}
	if cand.poisonPhi {
		st.reject(ld, RejectNonIVPhi)
		return
	}

	chain := st.orderChain(cand)
	if chain == nil {
		st.reject(ld, RejectOperandEscapes)
		return
	}
	if len(chain.loads) < 2 {
		// A pure stride access: leave it to the hardware stride
		// prefetcher (§4.3).
		st.reject(ld, RejectStrideOnly)
		return
	}
	if st.opts.Mode == ModeSimpleStrideIndirect && !st.simplePatternOK(chain) {
		st.reject(ld, RejectModeRestricted)
		return
	}
	if reason := st.checkSafety(chain); reason != RejectNone {
		st.reject(ld, reason)
		return
	}
	st.emitChain(chain)
}

// simplePatternOK implements the ICC-like restriction: exactly two
// loads, no arithmetic between them other than address computation
// (gep), and statically known allocation sizes for both arrays.
func (st *passState) simplePatternOK(c *chain) bool {
	if len(c.loads) != 2 {
		return false
	}
	for _, in := range c.order {
		switch in.Op {
		case ir.OpLoad, ir.OpGEP:
		default:
			return false
		}
	}
	for _, ld := range c.loads {
		info := analysis.PointerBase(ld.Args[0])
		alloc, isAlloc := info.Base.(*ir.Instr)
		if !isAlloc || alloc.Op != ir.OpAlloc || info.Elems == nil {
			return false
		}
	}
	return true
}

// Offset computes eq. (1): the look-ahead in iterations for the load at
// position l of a chain of t loads, with constant c. The result is at
// least 1 so that a prefetch is never issued for the current iteration.
func Offset(c int64, t, l int) int64 {
	if t <= 0 {
		return c
	}
	off := c * int64(t-l) / int64(t)
	if off < 1 {
		off = 1
	}
	return off
}

// sortInstrsByID sorts instructions into program order.
func sortInstrsByID(ins []*ir.Instr) {
	sort.Slice(ins, func(i, j int) bool { return ins[i].ID < ins[j].ID })
}
