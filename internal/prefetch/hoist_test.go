package prefetch

import (
	"testing"

	"repro/internal/ir"
)

// listWalkSrc is a hash-join-like kernel: an outer loop loads a bucket
// head pointer unconditionally, then an inner loop walks the chain. The
// chain loads depend on a non-induction phi, which the base pass
// rejects; the §4.6 hoisting extension substitutes the head pointer
// (the phi's outer-loop incoming value) and prefetches the first node.
const listWalkSrc = `module m

func walk(%keys: ptr, %heads: ptr, %n: i64) -> i64 {
entry:
  br oh
oh:
  %i = phi i64 [entry: 0, olatch: %i2]
  %acc = phi i64 [entry: 0, olatch: %acc2]
  %oc = cmp lt %i, %n
  cbr %oc, obody, oexit
obody:
  %ka = gep %keys, %i, 8
  %k = load i64, %ka
  %ha = gep %heads, %k, 8
  %p0 = load i64, %ha
  br wh
wh:
  %p = phi ptr [obody: %p0, wbody: %pn]
  %acc2 = phi i64 [obody: %acc, wbody: %acc3]
  %wc = cmp ne %p, 0
  cbr %wc, wbody, olatch
wbody:
  %va = gep %p, 1, 8
  %v = load i64, %va
  %acc3 = add %acc2, %v
  %na = gep %p, 0, 8
  %pn = load i64, %na
  br wh
olatch:
  %i2 = add %i, 1
  br oh
oexit:
  ret %acc
}
`

func TestHoistDisabledRejectsListWalk(t *testing.T) {
	m := ir.MustParse(listWalkSrc)
	res := Run(m, Options{C: 64, Hoist: false})["walk"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Only the keys->heads chain is prefetched (2 loads; line-dedup may
	// merge head and value prefetches, so expect exactly the stride +
	// one indirect).
	for _, e := range res.Emitted {
		if e.Hoisted {
			t.Errorf("hoisted prefetch emitted with hoisting disabled: %+v", e)
		}
		if e.ChainLen > 2 {
			t.Errorf("chain of length %d without hoisting", e.ChainLen)
		}
	}
	sawPhi := false
	for _, r := range res.Rejections {
		if r.Reason == RejectNonIVPhi {
			sawPhi = true
		}
	}
	if !sawPhi {
		t.Error("expected non-IV-phi rejections for the list walk")
	}
}

func TestHoistEnabledPrefetchesFirstNode(t *testing.T) {
	m := ir.MustParse(listWalkSrc)
	res := Run(m, Options{C: 64, Hoist: true})["walk"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	var hoisted []Emitted
	for _, e := range res.Emitted {
		if e.Hoisted {
			hoisted = append(hoisted, e)
		}
	}
	if len(hoisted) == 0 {
		t.Fatalf("no hoisted prefetches emitted; rejections: %+v\n%s", res.Rejections, m.String())
	}
	// The hoisted chain is keys -> head pointer -> node: three loads.
	foundDeep := false
	for _, e := range hoisted {
		if e.ChainLen == 3 {
			foundDeep = true
		}
	}
	if !foundDeep {
		t.Errorf("expected a 3-deep hoisted chain, got %+v", hoisted)
	}

	// The hoisted prefetch code must live in the outer loop body, not
	// the inner walk body: §4.6 moves it to the inner loop's preheader.
	f := m.Func("walk")
	obody := f.Block("obody")
	wbody := f.Block("wbody")
	pfInOuter, pfInInner := 0, 0
	for _, in := range obody.Instrs {
		if in.Op == ir.OpPrefetch {
			pfInOuter++
		}
	}
	for _, in := range wbody.Instrs {
		if in.Op == ir.OpPrefetch {
			pfInInner++
		}
	}
	if pfInOuter == 0 {
		t.Errorf("hoisted prefetch not moved to the outer body (outer %d, inner %d)\n%s",
			pfInOuter, pfInInner, m.String())
	}
}

// TestHoistSemanticsPreserved runs the list-walk kernel functionally
// with and without hoisting and compares results in the pass tests'
// structural sense: both must verify and keep the original loads.
func TestHoistSemanticsPreserved(t *testing.T) {
	plain := ir.MustParse(listWalkSrc)
	hoisted := ir.MustParse(listWalkSrc)
	Run(hoisted, Options{C: 16, Hoist: true})
	if err := hoisted.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Every original instruction must still be present (the pass only
	// adds).
	var plainLoads, hoistedLoads int
	plain.Func("walk").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			plainLoads++
		}
	})
	hoisted.Func("walk").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			hoistedLoads++
		}
	})
	if hoistedLoads < plainLoads {
		t.Errorf("pass removed loads: %d -> %d", plainLoads, hoistedLoads)
	}
}
