package prefetch

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// Loop splitting (the extension §6.1 credits for the Intel compiler
// beating the prototype on IS: "reducing overhead by moving the checks
// on the prefetch to outer loops"; Mowry's dissertation develops the
// same idea). Instead of clamping every look-ahead index with a min,
// the loop is split at limit-maxOffset:
//
//	for (i = 0; i < n; i++)            for (i = 0; i < n-MAX; i++)
//	  SWPF(a[min(i+off, n-1)]);          SWPF(a[i+off]);   // no clamp
//	  body(i);                   ==>     body(i);
//	                                   for (; i < n; i++)
//	                                     body(i);          // no prefetch
//
// Enabled by Options.SplitLoops. The transformation applies to the
// common kernel shape — a two-block loop (header with the bound check,
// one body block that is also the latch), canonical unit-step induction
// variable, single exit, loop-invariant limit compared with PredLT —
// and silently leaves other loops clamped.

// splitInfo accumulates what emission did to one loop, so the split
// can run after all chains are emitted.
type splitInfo struct {
	maxOff int64       // largest look-ahead advance applied (iterations)
	clamps []*ir.Instr // min/max clamp instructions emitted
	added  []*ir.Instr // every instruction the pass added to this loop
}

// noteEmission records emitted code for a loop (called by emitChain).
func (st *passState) noteEmission(l *analysis.Loop, off int64, code []*ir.Instr) {
	if st.split == nil {
		st.split = map[*analysis.Loop]*splitInfo{}
	}
	si := st.split[l]
	if si == nil {
		si = &splitInfo{}
		st.split[l] = si
	}
	if off > si.maxOff {
		si.maxOff = off
	}
	for _, in := range code {
		if in.Op == ir.OpMin || in.Op == ir.OpMax {
			si.clamps = append(si.clamps, in)
		}
		si.added = append(si.added, in)
	}
}

// applySplits runs after all emission; it transforms every splittable
// loop that received prefetches.
func (st *passState) applySplits() {
	for l, si := range st.split {
		st.splitLoop(l, si)
	}
	st.f.Renumber()
}

// splitLoop performs the transformation on one loop if its shape
// qualifies; otherwise the clamped form is left untouched.
func (st *passState) splitLoop(l *analysis.Loop, si *splitInfo) {
	f := st.f

	// Shape checks: a canonical unit-step loop whose body is a linear
	// chain of blocks (header -cbr-> b1 -br-> b2 ... -br-> header).
	if l.IndVar == nil || l.Step != 1 || l.Limit == nil ||
		l.LimitPred != ir.PredLT || !l.SingleExit() || len(l.Latches) != 1 {
		return
	}
	header := l.Header
	hterm := header.Term()
	if hterm == nil || hterm.Op != ir.OpCBr {
		return
	}
	var chainBlocks []*ir.Block
	for blk := hterm.Targets[0]; blk != header; {
		if !l.Blocks[blk] || len(chainBlocks) > len(l.Blocks) {
			return
		}
		chainBlocks = append(chainBlocks, blk)
		t := blk.Term()
		if t == nil || t.Op != ir.OpBr {
			return // internal control flow: leave the loop clamped
		}
		blk = t.Targets[0]
	}
	if len(chainBlocks) == 0 || len(chainBlocks) != len(l.Blocks)-1 {
		return
	}
	body := chainBlocks[len(chainBlocks)-1] // the latch
	exit := hterm.Targets[1]
	cmp, ok := hterm.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpCmp || cmp.Args[0] != ir.Value(l.IndVar) || cmp.Args[1] != l.Limit {
		return
	}
	pre := preheader(l)
	if pre == nil {
		return
	}
	if !st.valueAvailable(l.Limit, pre.Term()) {
		return
	}
	// The exit block must not contain phis (its only predecessor is the
	// header before the split and the tail header after it, so plain
	// uses rewrite cleanly but phi edges would need remapping).
	if len(exit.Phis()) != 0 {
		return
	}

	added := map[*ir.Instr]bool{}
	for _, in := range si.added {
		added[in] = true
	}

	// 1. Main-loop bound: limit - maxOff, computed in the preheader.
	var mainBound ir.Value
	if c, isConst := l.Limit.(*ir.Const); isConst {
		mainBound = ir.ConstInt(c.Val - si.maxOff)
	} else {
		b := &ir.Instr{Op: ir.OpAdd, Typ: ir.I64, Name: f.FreshName("split"),
			Args: []ir.Value{l.Limit, ir.ConstInt(-si.maxOff)}}
		b.Hint = "loop-split bound"
		pre.InsertBefore(pre.Term(), b)
		mainBound = b
	}
	cmp.ReplaceArg(l.Limit, mainBound)

	// 2. Build the tail loop: clones of the header and the body chain,
	// without the pass-added instructions.
	theader := f.NewBlock(header.Name + ".tail")
	tchain := make([]*ir.Block, len(chainBlocks))
	for i, cb := range chainBlocks {
		tchain[i] = f.NewBlock(cb.Name + ".tail")
	}
	tbody := tchain[len(tchain)-1]

	vmap := map[ir.Value]ir.Value{}
	clone := func(in *ir.Instr) *ir.Instr {
		cp := &ir.Instr{Op: in.Op, Typ: in.Typ, Pred: in.Pred, Callee: in.Callee}
		if in.Op.HasResult() && in.Typ != ir.Void {
			cp.Name = f.FreshName("t")
		}
		cp.Args = make([]ir.Value, len(in.Args))
		for i, a := range in.Args {
			if m, okm := vmap[a]; okm {
				cp.Args[i] = m
			} else {
				cp.Args[i] = a
			}
		}
		vmap[ir.Value(in)] = cp
		return cp
	}

	// Tail header phis: value enters from the main header (the main
	// loop's exit state) and circulates via the tail body.
	phis := header.Phis()
	tphis := make([]*ir.Instr, len(phis))
	for i, p := range phis {
		tp := &ir.Instr{Op: ir.OpPhi, Typ: p.Typ, Name: f.FreshName(p.Name + ".t")}
		theader.Append(tp)
		vmap[ir.Value(p)] = tp
		tphis[i] = tp
	}
	// Tail condition: iv' < limit (the original bound).
	tcmp := clone(cmp)
	tcmp.Args[1] = l.Limit
	theader.Append(tcmp)
	tcbr := &ir.Instr{Op: ir.OpCBr, Typ: ir.Void, Args: []ir.Value{tcmp}, Targets: []*ir.Block{tchain[0], exit}}
	theader.Append(tcbr)

	// Tail chain: original instructions only (no prefetch code), each
	// block branching to the next clone, the last back to the tail
	// header.
	for i, cb := range chainBlocks {
		for _, in := range cb.Instrs {
			if added[in] || in.IsTerminator() {
				continue
			}
			tchain[i].Append(clone(in))
		}
		next := theader
		if i+1 < len(tchain) {
			next = tchain[i+1]
		}
		tchain[i].Append(&ir.Instr{Op: ir.OpBr, Typ: ir.Void, Targets: []*ir.Block{next}})
	}

	// Wire tail phi edges: [header: mainPhi, tbody: clone of backedge].
	for i, p := range phis {
		back := p.PhiIncoming(body)
		if back == nil {
			return // shouldn't happen; bail before mutating edges
		}
		tback := back
		if m, okm := vmap[back]; okm {
			tback = m
		}
		ir.AddIncoming(tphis[i], header, p)
		ir.AddIncoming(tphis[i], tbody, tback)
	}

	// 3. The main loop now exits into the tail loop.
	hterm.Targets[1] = theader

	// 4. Uses of the main phis outside the loop now see the tail phis.
	inNew := map[*ir.Block]bool{header: true, theader: true}
	for _, cb := range chainBlocks {
		inNew[cb] = true
	}
	for _, tb := range tchain {
		inNew[tb] = true
	}
	f.Instrs(func(in *ir.Instr) {
		if inNew[in.Block()] {
			return
		}
		for i, p := range phis {
			in.ReplaceArg(p, tphis[i])
		}
	})

	// 5. Remove the clamps in the main loop: within it, iv+off < limit
	// by construction. Each min/max collapses to its advanced operand.
	for _, cl := range si.clamps {
		if cl.Block() == nil || !l.Blocks[cl.Block()] {
			continue
		}
		adv := cl.Args[0]
		f.Instrs(func(in *ir.Instr) { in.ReplaceArg(cl, adv) })
		cl.Block().Remove(cl)
	}
}
