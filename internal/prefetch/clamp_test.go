package prefetch

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
)

// kernel builds b[a[i]] variants with configurable loop shape for
// exercising the clamp-planning rules of §4.2.
func clampKernel(limitPred string, step int64, allocSizes bool) string {
	alloc := ""
	arrays := "%a: ptr, %b: ptr, "
	if allocSizes {
		arrays = ""
		alloc = "  %a = alloc %n, 4\n  %b = alloc 65536, 4\n"
	}
	return fmt.Sprintf(`module m
func f(%s%%n: i64) -> void {
entry:
%s  br header
header:
  %%i = phi i64 [entry: 0, body: %%i2]
  %%c = cmp %s %%i, %%n
  cbr %%c, body, exit
body:
  %%t1 = gep %%a, %%i, 4
  %%t2 = load i32, %%t1
  %%t3 = gep %%b, %%t2, 4
  %%t4 = load i32, %%t3
  %%i2 = add %%i, %d
  br header
exit:
  ret
}
`, arrays, alloc, limitPred, step)
}

func passOn(t *testing.T, src string, opts Options) (*ir.Module, *Result) {
	t.Helper()
	m := ir.MustParse(src)
	res := Run(m, opts)["f"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	return m, res
}

func TestClampStrategyAllocSize(t *testing.T) {
	// With visible allocations, strategy A clamps against the element
	// count, not the loop bound: look for "min" against n-1 via an add.
	m, res := passOn(t, clampKernel("lt", 1, true), Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d", len(res.Emitted))
	}
	// The bound for array a (size %n) must be computed as %n + -1.
	text := m.String()
	if !strings.Contains(text, "add %n, -1") {
		t.Errorf("alloc-size bound missing:\n%s", text)
	}
}

func TestClampStrategyLoopLimit(t *testing.T) {
	// Parameter arrays: strategy B uses the loop bound (n-1 for <).
	m, res := passOn(t, clampKernel("lt", 1, false), Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d", len(res.Emitted))
	}
	if !strings.Contains(m.String(), "add %n, -1") {
		t.Errorf("loop-limit bound missing:\n%s", m.String())
	}
}

func TestClampLoopLimitLE(t *testing.T) {
	// i <= n iterates to n inclusive: the bound is n itself (no -1 add;
	// min directly against %n).
	m, res := passOn(t, clampKernel("le", 1, false), Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d; rejections %+v", len(res.Emitted), res.Rejections)
	}
	if strings.Contains(m.String(), "add %n, -1") {
		t.Errorf("LE bound must not subtract 1:\n%s", m.String())
	}
	if !strings.Contains(m.String(), "min") {
		t.Error("clamp missing")
	}
}

func TestClampRejectsNonUnitStepWithoutAllocs(t *testing.T) {
	// Step 2 with only the loop bound available: the clamped index may
	// not correspond to an executed iteration, so the pass must reject.
	_, res := passOn(t, clampKernel("lt", 2, false), Options{C: 64})
	if len(res.Emitted) != 0 {
		t.Fatalf("emitted %d prefetches for non-unit step without size info", len(res.Emitted))
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectNotCanonical {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectNotCanonical, got %+v", res.Rejections)
	}
}

func TestClampAcceptsNonUnitStepWithAllocs(t *testing.T) {
	// Step 2 with visible allocations: strategy A's bound covers any
	// in-allocation index for the two-load chain.
	_, res := passOn(t, clampKernel("lt", 2, true), Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d, want 2; rejections %+v", len(res.Emitted), res.Rejections)
	}
}

func TestClampRejectsMultiExitLoopWithoutAllocs(t *testing.T) {
	src := `module m
func f(%a: ptr, %b: ptr, %n: i64, %stop: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, latch: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %e = cmp eq %t4, %stop
  cbr %e, exit, latch
latch:
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	_, res := passOn(t, src, Options{C: 64})
	if len(res.Emitted) != 0 {
		t.Fatal("multi-exit loop must be rejected without size info")
	}
}

func TestClampIndirectIndexRejected(t *testing.T) {
	// a[i*2] is not a direct index: strategy B requires base[i] (§4.2's
	// prototype restriction).
	src := `module m
func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %ix = mul %i, 2
  %t1 = gep %a, %ix, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	_, res := passOn(t, src, Options{C: 64})
	if len(res.Emitted) != 0 {
		t.Fatal("scaled index must be rejected")
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectNoSizeInfo {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectNoSizeInfo, got %+v", res.Rejections)
	}
}

func TestOffsetScalesWithStep(t *testing.T) {
	// Step 4: the emitted advance must be offset*step = 64*4 = 256.
	m, res := passOn(t, clampKernel("lt", 4, true), Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d; rejections: %+v", len(res.Emitted), res.Rejections)
	}
	if !strings.Contains(m.String(), "add %i, 256") {
		t.Errorf("advance not scaled by step:\n%s", m.String())
	}
}

func TestConstantLimitFoldsBound(t *testing.T) {
	src := `module m
func f(%a: ptr, %b: ptr) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, 1000
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	m, res := passOn(t, src, Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d", len(res.Emitted))
	}
	// Constant bound folds to 999 directly, with no add instruction.
	if !strings.Contains(m.String(), "999") {
		t.Errorf("folded bound missing:\n%s", m.String())
	}
}
