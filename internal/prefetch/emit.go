package prefetch

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// chain is a validated candidate in program order, ready for emission.
type chain struct {
	target *ir.Instr
	iv     *ir.Instr
	loop   *analysis.Loop
	set    map[*ir.Instr]bool
	order  []*ir.Instr // set in program order; target is last
	loads  []*ir.Instr // loads within order; positions 0..t-1
	subs   map[*ir.Instr]ir.Value
	hoist  bool

	clamp clampPlan
}

// clampPlan records how the look-ahead induction variable is bounded so
// that duplicated intermediate loads cannot fault (§4.2).
type clampPlan struct {
	// bound is the inclusive extreme value of the induction variable
	// (maximum for upward loops, minimum for downward); nil when the
	// bound must be computed at runtime from boundBase.
	bound ir.Value
	// boundBase, boundAdj: bound = boundBase + boundAdj, emitted as an
	// add when boundBase is not a constant.
	boundBase ir.Value
	boundAdj  int64
	// upward selects min-clamping (true) or max-clamping (false).
	upward bool
}

// orderChain validates operand availability and sorts the candidate set
// into program order. It returns nil when a set instruction uses a
// loop-variant value that is neither the induction variable, part of
// the set, nor covered by a hoisting substitution.
func (st *passState) orderChain(c *candidate) *chain {
	var order []*ir.Instr
	for in := range c.set {
		order = append(order, in)
	}
	sortInstrsByID(order)

	ch := &chain{
		iv:    c.iv,
		loop:  c.loop,
		set:   c.set,
		subs:  c.subs,
		hoist: c.hoisted,
	}
	ch.order = order
	ch.target = order[len(order)-1]
	if ch.target.Op != ir.OpLoad {
		return nil
	}
	for _, in := range order {
		if in.Op == ir.OpLoad {
			ch.loads = append(ch.loads, in)
		}
		for _, o := range in.Args {
			if o == ir.Value(c.iv) || c.set[instrOf(o)] {
				continue
			}
			if def, isPhi := o.(*ir.Instr); isPhi && c.subs != nil {
				if _, subbed := c.subs[def]; subbed {
					continue
				}
			}
			if !st.semanticallyInvariant(o, c.loop, map[*ir.Instr]bool{}) {
				return nil
			}
		}
	}
	return ch
}

func instrOf(v ir.Value) *ir.Instr {
	in, _ := v.(*ir.Instr)
	return in
}

// semanticallyInvariant reports whether v holds the same value on every
// iteration of loop l: it is defined outside l, or is pure arithmetic
// over invariant operands. Loads, calls and phis inside the loop are
// variant.
func (st *passState) semanticallyInvariant(v ir.Value, l *analysis.Loop, seen map[*ir.Instr]bool) bool {
	in, isInstr := v.(*ir.Instr)
	if !isInstr {
		return true
	}
	if !l.Contains(in.Block()) {
		return true
	}
	if seen[in] {
		return false
	}
	seen[in] = true
	switch in.Op {
	case ir.OpPhi, ir.OpLoad, ir.OpCall, ir.OpAlloc:
		return false
	}
	for _, o := range in.Args {
		if !st.semanticallyInvariant(o, l, seen) {
			return false
		}
	}
	return true
}

// checkSafety applies the fault-avoidance rules of §4.2 and computes
// the clamping plan.
func (st *passState) checkSafety(ch *chain) RejectReason {
	// Rule: every duplicated instruction must execute on every loop
	// iteration, so that the values observed at look-ahead time equal
	// those the program will itself compute (§4.2: loads must not be
	// conditional on loop-variant values). Hoisted chains (§4.6) relax
	// this for the target only: the target load lives in an inner loop
	// and is replaced by a non-faulting prefetch, so only the
	// intermediate loads must be guaranteed to execute (§4.6: "provided
	// we can guarantee execution of any of the original loads we
	// duplicate").
	for _, in := range ch.order {
		if ch.hoist && (in == ch.target || in.Op != ir.OpLoad) {
			continue
		}
		for _, latch := range ch.loop.Latches {
			if !ir.Dominates(st.idom, in.Block(), latch) {
				return RejectConditional
			}
		}
	}

	// Rule: no stores in the loop to any array an intermediate load
	// reads (Algorithm 1 line 37).
	se := st.sideEffects(ch.loop)
	for _, ld := range ch.loads[:len(ch.loads)-1] {
		base := analysis.PointerBase(ld.Args[0]).Base
		if se.MayBeClobbered(base) {
			return RejectClobbered
		}
	}

	return st.planClamp(ch)
}

// planClamp decides how to bound the look-ahead induction variable.
// Two strategies, per §4.2: allocation-size information when the
// look-ahead array's allocation is visible, otherwise the loop bound
// (which requires a single-exit loop, unit step, and the induction
// variable used as a direct index).
func (st *passState) planClamp(ch *chain) RejectReason {
	first := ch.loads[0]
	gep := instrOf(first.Args[0])
	if gep == nil || gep.Op != ir.OpGEP || !ch.set[gep] {
		return RejectNoSizeInfo
	}
	idx := gep.Args[1]
	direct := idx == ir.Value(ch.iv)
	up := ch.loop.Step > 0

	// Strategy A: allocation size. Requires a direct index so that
	// clamping the index itself stays within the allocation.
	if direct {
		info := analysis.PointerBase(gep.Args[0])
		if alloc, isAlloc := info.Base.(*ir.Instr); isAlloc && info.Elems != nil {
			if ir.Dominates(st.idom, alloc.Block(), ch.target.Block()) &&
				st.valueAvailable(info.Elems, ch.target) {
				// Deep chains (three or more loads) additionally need
				// value equivalence with a future iteration: the clamped
				// index must be one the loop itself executes, which the
				// allocation bound alone cannot guarantee for non-unit
				// steps.
				if len(ch.loads) > 2 && absStep(ch.loop.Step) != 1 {
					return RejectNotCanonical
				}
				if up {
					ch.clamp = clampPlan{boundBase: info.Elems, boundAdj: -1, upward: true}
				} else {
					ch.clamp = clampPlan{bound: ir.ConstInt(0), upward: false}
				}
				ch.clamp.fold()
				return RejectNone
			}
		}
	}

	// Strategy B: loop bound. Conditions from §4.2: single termination
	// condition, monotonic unit-step canonical induction variable, and
	// direct indexing of the look-ahead array.
	if !direct {
		return RejectNoSizeInfo
	}
	if ch.loop.Limit == nil || absStep(ch.loop.Step) != 1 || !ch.loop.SingleExit() {
		return RejectNotCanonical
	}
	if !st.valueAvailable(ch.loop.Limit, ch.target) {
		return RejectNotCanonical
	}
	adj := int64(0)
	switch ch.loop.LimitPred {
	case ir.PredLT, ir.PredULT, ir.PredNE:
		adj = -1
	case ir.PredLE, ir.PredULE:
		adj = 0
	case ir.PredGT, ir.PredUGT:
		adj = 1
	case ir.PredGE, ir.PredUGE:
		adj = 0
	default:
		return RejectNotCanonical
	}
	if up && adj > 0 || !up && adj < 0 {
		return RejectNotCanonical // bound direction disagrees with step
	}
	ch.clamp = clampPlan{boundBase: ch.loop.Limit, boundAdj: adj, upward: up}
	ch.clamp.fold()
	return RejectNone
}

func absStep(s int64) int64 {
	if s < 0 {
		return -s
	}
	return s
}

// fold turns a constant boundBase into a ready-made bound value.
func (cp *clampPlan) fold() {
	if cp.bound != nil {
		return
	}
	if c, isConst := cp.boundBase.(*ir.Const); isConst {
		cp.bound = ir.ConstInt(c.Val + cp.boundAdj)
		cp.boundBase = nil
	} else if cp.boundAdj == 0 {
		cp.bound = cp.boundBase
		cp.boundBase = nil
	}
}

// valueAvailable reports whether v is usable as an operand of code
// inserted immediately before user: constants and parameters always
// are; instructions must dominate the insertion point.
func (st *passState) valueAvailable(v ir.Value, user *ir.Instr) bool {
	def, isInstr := v.(*ir.Instr)
	if !isInstr {
		return true
	}
	if def.Block() == user.Block() {
		return def.Block().Index(def) < def.Block().Index(user)
	}
	return ir.Dominates(st.idom, def.Block(), user.Block())
}

// emitChain generates prefetch code for every selected position of the
// chain and inserts it immediately before the target load (Algorithm 1
// lines 43-54).
func (st *passState) emitChain(ch *chain) {
	t := len(ch.loads)
	positions := st.selectPositions(t)

	var newCode []*ir.Instr
	for _, l := range positions {
		offIters := Offset(st.opts.C, t, l)
		if st.opts.FlatOffset {
			offIters = st.opts.C
		}
		key := fmt.Sprintf("%s@%d", st.lineKey(ch.loads[l]), offIters)
		if st.emittedKeys[key] {
			continue
		}
		st.emittedKeys[key] = true
		code, pf := st.emitPosition(ch, l, offIters)
		newCode = append(newCode, code...)
		st.res.Emitted = append(st.res.Emitted, Emitted{
			Target:   ch.loads[l],
			Prefetch: pf,
			Position: l,
			ChainLen: t,
			Offset:   offIters,
			Hoisted:  ch.hoist,
		})
	}
	if len(newCode) == 0 {
		return
	}
	ch.target.Block().InsertBefore(ch.target, newCode...)
	st.f.Renumber()
	if ch.hoist {
		st.hoistCode(ch, newCode)
	}
	if st.opts.SplitLoops && !ch.hoist {
		maxOff := int64(0)
		for _, e := range st.res.Emitted {
			if e.Offset > maxOff {
				maxOff = e.Offset
			}
		}
		st.noteEmission(ch.loop, maxOff, newCode)
	}
}

// cacheLineSize is the line granularity assumed for prefetch
// deduplication. Two loads off the same base at constant offsets within
// one line (e.g. adjacent fields of a 64-byte hash bucket) need only
// one prefetch; emitting both would double code size for no coverage.
const cacheLineSize = 64

// lineKey returns a deduplication key for the load: loads from the same
// base value at constant indices within one cache line share a key, so
// only the first emits a prefetch. Other loads key on their identity.
func (st *passState) lineKey(ld *ir.Instr) string {
	gep := instrOf(ld.Args[0])
	if gep != nil && gep.Op == ir.OpGEP {
		if cidx, isConst := gep.Args[1].(*ir.Const); isConst {
			scale := gep.Args[2].(*ir.Const).Val
			line := cidx.Val * scale / cacheLineSize
			return fmt.Sprintf("line:%p:%d", gep.Args[0], line)
		}
	}
	return fmt.Sprintf("load:%p", ld)
}

// selectPositions returns the chain positions (l values) to prefetch,
// honouring the stride-companion and stagger-depth options.
func (st *passState) selectPositions(t int) []int {
	var out []int
	if !st.opts.NoStrideCompanion {
		out = append(out, 0)
	}
	last := t - 1
	if st.opts.MaxStaggerDepth > 0 && st.opts.MaxStaggerDepth < last {
		last = st.opts.MaxStaggerDepth
	}
	for l := 1; l <= last; l++ {
		out = append(out, l)
	}
	if len(out) == 0 {
		out = []int{t - 1}
	}
	return out
}

// emitPosition generates the code for one staggered prefetch: the
// clamped induction variable, copies of the address-generation prefix,
// and the final prefetch instruction. Returns the new instructions in
// execution order and the prefetch itself.
func (st *passState) emitPosition(ch *chain, l int, offIters int64) ([]*ir.Instr, *ir.Instr) {
	var code []*ir.Instr
	fresh := func(op ir.Op, typ ir.Type, args ...ir.Value) *ir.Instr {
		in := &ir.Instr{Op: op, Typ: typ, Args: args}
		if op.HasResult() && typ != ir.Void {
			in.Name = st.f.FreshName("pf")
		}
		code = append(code, in)
		return in
	}

	// Clamped look-ahead induction variable:
	//   adv   = iv + offIters*step
	//   bound = <per clamp plan>
	//   iv'   = min(adv, bound)   (max for downward loops)
	adv := fresh(ir.OpAdd, ir.I64, ch.iv, ir.ConstInt(offIters*ch.loop.Step))
	// Fault injection for the differential harness: widen the clamp in
	// the unsafe direction (see Options.TestClampSlack).
	slack := st.opts.TestClampSlack
	if !ch.clamp.upward {
		slack = -slack
	}
	bound := ch.clamp.bound
	switch {
	case bound == nil:
		bound = fresh(ir.OpAdd, ir.I64, ch.clamp.boundBase, ir.ConstInt(ch.clamp.boundAdj+slack))
	case slack != 0:
		if c, isConst := bound.(*ir.Const); isConst {
			bound = ir.ConstInt(c.Val + slack)
		} else {
			bound = fresh(ir.OpAdd, ir.I64, bound, ir.ConstInt(slack))
		}
	}
	var clamped *ir.Instr
	if ch.clamp.upward {
		clamped = fresh(ir.OpMin, ir.I64, adv, bound)
	} else {
		clamped = fresh(ir.OpMax, ir.I64, adv, bound)
	}
	clamped.Hint = fmt.Sprintf("prefetch lookahead +%d", offIters)

	// Copy the chain prefix up to and including the position's load;
	// the load itself becomes the prefetch (line 52).
	vmap := map[ir.Value]ir.Value{ir.Value(ch.iv): clamped}
	for p, sub := range ch.subs {
		vmap[ir.Value(p)] = sub
	}
	posLoad := ch.loads[l]
	var pf *ir.Instr
	for _, in := range ch.order {
		if in.ID > posLoad.ID {
			break
		}
		mapped := make([]ir.Value, len(in.Args))
		for i, a := range in.Args {
			if m, ok := vmap[a]; ok {
				mapped[i] = m
			} else {
				mapped[i] = a
			}
		}
		if in == posLoad {
			pf = fresh(ir.OpPrefetch, ir.Void, mapped[0])
			pf.Hint = fmt.Sprintf("auto l=%d t=%d off=%d", l, len(ch.loads), offIters)
			break
		}
		cp := fresh(in.Op, in.Typ, mapped...)
		cp.Pred = in.Pred
		cp.Callee = in.Callee
		vmap[ir.Value(in)] = cp
	}
	return code, pf
}

// hoistCode implements the second half of §4.6: after emission, move
// the generated instructions out of the innermost loop containing the
// target when they are invariant there, so a hoisted prefetch executes
// once per outer iteration instead of once per inner iteration.
func (st *passState) hoistCode(ch *chain, code []*ir.Instr) {
	inner := st.li.LoopOf(ch.target.Block())
	if inner == nil || inner == ch.loop || !ch.loop.ContainsLoop(inner) {
		return
	}
	pre := preheader(inner)
	if pre == nil {
		return
	}
	hoisted := map[*ir.Instr]bool{}
	invariant := func(v ir.Value) bool {
		def := instrOf(v)
		if def == nil {
			return true
		}
		if hoisted[def] {
			return true
		}
		return !inner.Contains(def.Block())
	}
	term := pre.Term()
	for _, in := range code {
		ok := true
		for _, a := range in.Args {
			if !invariant(a) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		in.Block().Remove(in)
		pre.InsertBefore(term, in)
		hoisted[in] = true
	}
	st.f.Renumber()
}

// preheader returns the unique out-of-loop predecessor of the loop
// header, or nil.
func preheader(l *analysis.Loop) *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds() {
		if l.Contains(p) {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}
