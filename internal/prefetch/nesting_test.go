package prefetch

import (
	"testing"

	"repro/internal/ir"
)

// outerIVSrc loads b[a[r]] inside an inner loop, where r is the OUTER
// induction variable. The chain's instructions live in the inner body,
// which does not dominate the outer latch (the inner loop may run zero
// iterations), so the base pass must reject it as conditional; the
// hoisting extension may substitute and emit.
const outerIVSrc = `module m

func f(%a: ptr, %b: ptr, %rows: i64, %reps: i64) -> i64 {
entry:
  br oh
oh:
  %r = phi i64 [entry: 0, olatch: %r2]
  %acc = phi i64 [entry: 0, olatch: %acc3]
  %oc = cmp lt %r, %rows
  cbr %oc, obody, oexit
obody:
  br ih
ih:
  %k = phi i64 [obody: 0, ibody: %k2]
  %acc2 = phi i64 [obody: %acc, ibody: %accn]
  %ic = cmp lt %k, %reps
  cbr %ic, ibody, olatch
ibody:
  %t1 = gep %a, %r, 8
  %t2 = load i64, %t1
  %t3 = gep %b, %t2, 8
  %t4 = load i64, %t3
  %accn = add %acc2, %t4
  %k2 = add %k, 1
  br ih
olatch:
  %acc3 = phi i64 [ih: %acc2]
  %r2 = add %r, 1
  br oh
oexit:
  ret %acc
}
`

func TestOuterIVChainInInnerLoopRejected(t *testing.T) {
	m := ir.MustParse(outerIVSrc)
	res := Run(m, Options{C: 64, Hoist: false})["f"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res.Emitted) != 0 {
		t.Fatalf("emitted %d prefetches; inner-body chains on the outer IV cannot be proven unconditional", len(res.Emitted))
	}
	saw := false
	for _, r := range res.Rejections {
		if r.Reason == RejectConditional {
			saw = true
		}
	}
	if !saw {
		t.Errorf("expected RejectConditional, got %+v", res.Rejections)
	}
}

// TestInnerChainUsesOuterInvariantBase: the reverse nesting — an inner
// IV chain whose gep base expression involves the outer IV through
// loop-invariant arithmetic — must be accepted (the r*cols+j pattern).
func TestInnerChainUsesOuterInvariantBase(t *testing.T) {
	src := `module m
func f(%a: ptr, %b: ptr, %rows: i64, %cols: i64) -> i64 {
entry:
  br oh
oh:
  %r = phi i64 [entry: 0, olatch: %r2]
  %oc = cmp lt %r, %rows
  cbr %oc, obody, oexit
obody:
  br ih
ih:
  %j = phi i64 [obody: 0, ibody: %j2]
  %ic = cmp lt %j, %cols
  cbr %ic, ibody, olatch
ibody:
  %rowoff = mul %r, %cols
  %idx = add %rowoff, %j
  %t1 = gep %a, %j, 8
  %t2 = load i64, %t1
  %t3 = add %t2, %idx
  %t4 = gep %b, %t3, 8
  %t5 = load i64, %t4
  %j2 = add %j, 1
  br ih
olatch:
  %r2 = add %r, 1
  br oh
oexit:
  ret %rows
}
`
	m := ir.MustParse(src)
	res := Run(m, Options{C: 64})["f"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	if len(res.Emitted) != 2 {
		for _, r := range res.Rejections {
			t.Logf("rejection: %%%s: %s", r.Load.Name, r.Reason)
		}
		t.Fatalf("emitted %d, want 2 (stride + indirect with invariant addend)", len(res.Emitted))
	}
}

// TestTripleNesting: the innermost of three induction variables drives
// the look-ahead when a chain references all three.
func TestTripleNesting(t *testing.T) {
	src := `module m
func f(%a: ptr, %b: ptr, %n: i64) -> i64 {
entry:
  br h1
h1:
  %i = phi i64 [entry: 0, l1: %i2]
  %c1 = cmp lt %i, %n
  cbr %c1, b1, exit
b1:
  br h2
h2:
  %j = phi i64 [b1: 0, l2: %j2]
  %c2 = cmp lt %j, %n
  cbr %c2, b2, l1
b2:
  br h3
h3:
  %k = phi i64 [b2: 0, b3: %k2]
  %c3 = cmp lt %k, %n
  cbr %c3, b3, l2
b3:
  %t1 = gep %a, %k, 8
  %t2 = load i64, %t1
  %t3 = gep %b, %t2, 8
  %t4 = load i64, %t3
  %k2 = add %k, 1
  br h3
l2:
  %j2 = add %j, 1
  br h2
l1:
  %i2 = add %i, 1
  br h1
exit:
  ret %n
}
`
	m := ir.MustParse(src)
	res := Run(m, Options{C: 64})["f"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d, want 2", len(res.Emitted))
	}
	// The advance must be on %k (the innermost IV).
	f := m.Func("f")
	k := f.Block("h3").Phis()[0]
	for _, e := range res.Emitted {
		addr := e.Prefetch.Args[0]
		usesK := false
		seen := map[*ir.Instr]bool{}
		var walk func(v ir.Value)
		walk = func(v ir.Value) {
			in, ok := v.(*ir.Instr)
			if !ok || seen[in] {
				return
			}
			seen[in] = true
			if in == k {
				usesK = true
				return
			}
			if in.Op == ir.OpPhi {
				return
			}
			for _, a := range in.Args {
				walk(a)
			}
		}
		walk(addr)
		if !usesK {
			t.Errorf("prefetch at position %d does not advance the innermost IV", e.Position)
		}
	}
}
