package prefetch

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// isSrc is the integer-sort kernel of figure 3(a): b[a[i]]++ with the
// array sizes visible as allocs.
const isSrc = `module is

func is(%n: i64) -> void {
entry:
  %a = alloc %n, 4
  %b = alloc 65536, 4
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %t5 = add %t4, 1
  store i32, %t3, %t5
  %i2 = add %i, 1
  br header
exit:
  ret
}
`

func runOn(t *testing.T, src string, opts Options) (*ir.Module, *Result) {
	t.Helper()
	m := ir.MustParse(src)
	if err := m.Verify(); err != nil {
		t.Fatalf("input does not verify: %v", err)
	}
	results := Run(m, opts)
	if err := m.Verify(); err != nil {
		t.Fatalf("output does not verify: %v\n%s", err, m.String())
	}
	for _, f := range m.Funcs {
		if r, ok := results[f.Name]; ok && len(r.Emitted) > 0 {
			return m, r
		}
	}
	// Fall back to the first function's result.
	return m, results[m.Funcs[0].Name]
}

// TestAlgorithmExample reproduces the worked example of figure 3: the
// pass must emit two prefetches, an indirect one at offset c/2 through
// a clamped real load, and a stride companion at offset c.
func TestAlgorithmExample(t *testing.T) {
	m, res := runOn(t, isSrc, Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d prefetches, want 2:\n%s", len(res.Emitted), m.String())
	}
	byPos := map[int]Emitted{}
	for _, e := range res.Emitted {
		byPos[e.Position] = e
	}
	stride, ok0 := byPos[0]
	indirect, ok1 := byPos[1]
	if !ok0 || !ok1 {
		t.Fatalf("positions wrong: %+v", res.Emitted)
	}
	// Figure 3(c): offsets 64 and 32 for c=64, t=2.
	if stride.Offset != 64 {
		t.Errorf("stride offset = %d, want 64", stride.Offset)
	}
	if indirect.Offset != 32 {
		t.Errorf("indirect offset = %d, want 32", indirect.Offset)
	}
	if stride.ChainLen != 2 || indirect.ChainLen != 2 {
		t.Errorf("chain length = %d/%d, want 2", stride.ChainLen, indirect.ChainLen)
	}

	// The indirect prefetch address must come through a real load copy.
	addr, _ := indirect.Prefetch.Args[0].(*ir.Instr)
	if addr == nil || addr.Op != ir.OpGEP {
		t.Fatalf("indirect prefetch address is %v, want gep", indirect.Prefetch.Args[0])
	}
	loadCopy, _ := addr.Args[1].(*ir.Instr)
	if loadCopy == nil || loadCopy.Op != ir.OpLoad {
		t.Fatalf("indirect prefetch index is %v, want load copy", addr.Args[1])
	}

	// The clamp must appear: a min against the a array's element count
	// derived bound (n-1) feeding the intermediate load's gep.
	gepA, _ := loadCopy.Args[0].(*ir.Instr)
	if gepA == nil || gepA.Op != ir.OpGEP {
		t.Fatalf("load copy address is %v, want gep", loadCopy.Args[0])
	}
	clamp, _ := gepA.Args[1].(*ir.Instr)
	if clamp == nil || clamp.Op != ir.OpMin {
		t.Fatalf("intermediate index is %v, want min clamp", gepA.Args[1])
	}

	// All generated code must sit immediately before the original load.
	f := m.Func("is")
	body := f.Block("body")
	var origLoad *ir.Instr
	for _, in := range body.Instrs {
		if in.Op == ir.OpLoad && in.Name == "t4" {
			origLoad = in
		}
	}
	if origLoad == nil {
		t.Fatal("original load lost")
	}
	pfSeen := 0
	for _, in := range body.Instrs {
		if in.Op == ir.OpPrefetch {
			if body.Index(in) > body.Index(origLoad) {
				t.Error("prefetch after original load")
			}
			pfSeen++
		}
	}
	if pfSeen != 2 {
		t.Errorf("prefetches in body = %d, want 2", pfSeen)
	}
}

func TestOffsetFormula(t *testing.T) {
	cases := []struct {
		c    int64
		t, l int
		want int64
	}{
		{64, 2, 0, 64}, // listing 1: stride prefetch at c
		{64, 2, 1, 32}, // listing 1: indirect prefetch at c/2
		{16, 4, 0, 16}, // HJ-8 staggering: 16, 12, 8, 4 (§5.1)
		{16, 4, 1, 12},
		{16, 4, 2, 8},
		{16, 4, 3, 4},
		{64, 1, 0, 64},
		{4, 8, 7, 1}, // floors to 0, clamped to 1
		{0, 2, 0, 0}, // c=0 handled by caller defaulting; Offset(0,...)=max(0*...,1)
	}
	for _, c := range cases {
		got := Offset(c.c, c.t, c.l)
		if c.c == 0 {
			if got != 1 {
				t.Errorf("Offset(0,%d,%d) = %d, want 1", c.t, c.l, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("Offset(%d,%d,%d) = %d, want %d", c.c, c.t, c.l, got, c.want)
		}
	}
}

func TestStrideOnlyLeftToHardware(t *testing.T) {
	src := `module m
func f(%a: ptr, %n: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %s = phi i64 [entry: 0, body: %s2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %addr = gep %a, %i, 8
  %v = load i64, %addr
  %s2 = add %s, %v
  %i2 = add %i, 1
  br header
exit:
  ret %s
}
`
	m, res := runOn(t, src, Options{C: 64})
	if len(res.Emitted) != 0 {
		t.Fatalf("emitted %d prefetches for pure stride, want 0:\n%s", len(res.Emitted), m.String())
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectStrideOnly {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectStrideOnly, got %+v", res.Rejections)
	}
}

func TestNoStrideCompanion(t *testing.T) {
	m, res := runOn(t, isSrc, Options{C: 64, NoStrideCompanion: true})
	if len(res.Emitted) != 1 {
		t.Fatalf("emitted %d, want 1 (indirect only):\n%s", len(res.Emitted), m.String())
	}
	if res.Emitted[0].Position != 1 {
		t.Errorf("position = %d, want 1", res.Emitted[0].Position)
	}
}

// hashSrc indexes a table through arithmetic on the loaded key, like RA
// and HJ-2 (§5.1): table[hash(keys[i])]++ with hash = multiplicative.
const hashSrc = `module ra

func ra(%keys: ptr, %table: ptr, %n: i64, %mask: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %ka = gep %keys, %i, 8
  %k = load i64, %ka
  %h1 = mul %k, 2654435761
  %h2 = shr %h1, 7
  %h3 = xor %h2, %h1
  %h = and %h3, %mask
  %ta = gep %table, %h, 8
  %v = load i64, %ta
  %v2 = add %v, 1
  store i64, %ta, %v2
  %i2 = add %i, 1
  br header
exit:
  ret
}
`

func TestHashChainPrefetched(t *testing.T) {
	m, res := runOn(t, hashSrc, Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d, want 2 (stride + hash indirect):\n%s", len(res.Emitted), m.String())
	}
	// The indirect prefetch must replay the hash computation: its
	// address chain must contain mul/shr/xor/and copies.
	var indirect Emitted
	for _, e := range res.Emitted {
		if e.Position == 1 {
			indirect = e
		}
	}
	ops := map[ir.Op]bool{}
	var walk func(v ir.Value)
	seen := map[*ir.Instr]bool{}
	walk = func(v ir.Value) {
		in, ok := v.(*ir.Instr)
		if !ok || seen[in] {
			return
		}
		seen[in] = true
		ops[in.Op] = true
		for _, a := range in.Args {
			walk(a)
		}
	}
	walk(indirect.Prefetch.Args[0])
	for _, op := range []ir.Op{ir.OpMul, ir.OpShr, ir.OpXor, ir.OpAnd, ir.OpLoad, ir.OpMin} {
		if !ops[op] {
			t.Errorf("hash replay missing %s in prefetch address chain", op)
		}
	}
}

// TestICCModeSkipsHash verifies the restricted mode only picks up pure
// stride-indirect patterns with known bounds (figure 4d behaviour).
func TestICCModeSkipsHash(t *testing.T) {
	_, res := runOn(t, hashSrc, Options{C: 64, Mode: ModeSimpleStrideIndirect})
	if len(res.Emitted) != 0 {
		t.Fatalf("restricted mode emitted %d prefetches for hash pattern, want 0", len(res.Emitted))
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectModeRestricted {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectModeRestricted, got %+v", res.Rejections)
	}
}

func TestICCModeAcceptsSimpleStrideIndirect(t *testing.T) {
	_, res := runOn(t, isSrc, Options{C: 64, Mode: ModeSimpleStrideIndirect})
	if len(res.Emitted) != 2 {
		t.Fatalf("restricted mode emitted %d for IS pattern, want 2", len(res.Emitted))
	}
}

// TestICCModeRejectsUnknownSize: same pattern as IS but with arrays as
// parameters, so no allocation sizes are visible. The paper reports the
// Intel pass misses G500's stride-indirects for exactly this reason.
func TestICCModeRejectsUnknownSize(t *testing.T) {
	src := `module m
func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %t5 = add %t4, 1
  store i32, %t3, %t5
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	_, res := runOn(t, src, Options{C: 64, Mode: ModeSimpleStrideIndirect})
	if len(res.Emitted) != 0 {
		t.Fatal("restricted mode must reject parameter arrays")
	}
	// The full pass picks it up via the loop bound (strategy B).
	_, res2 := runOn(t, src, Options{C: 64})
	if len(res2.Emitted) != 2 {
		t.Fatalf("full pass emitted %d, want 2", len(res2.Emitted))
	}
}

func TestRejectStoreToAddressArray(t *testing.T) {
	// z is both read for address generation and stored to: x[z[i]]
	// cannot be prefetched (§4.2's x[y[z[i]]] discussion).
	src := `module m
func f(%x: ptr, %z: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %za = gep %z, %i, 8
  %zv = load i64, %za
  %xa = gep %x, %zv, 8
  %xv = load i64, %xa
  store i64, %za, %xv
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	_, res := runOn(t, src, Options{C: 64})
	if len(res.Emitted) != 0 {
		t.Fatal("must not prefetch through a stored-to address array")
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectClobbered {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectClobbered, got %+v", res.Rejections)
	}
}

func TestRejectConditionalIntermediateLoad(t *testing.T) {
	// The intermediate load only executes when a loop-variant condition
	// holds; its future value cannot be guaranteed (§4.2).
	src := `module m
func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, latch: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %p = rem %i, 3
  %pc = cmp eq %p, 0
  cbr %pc, inner, latch
inner:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  br latch
latch:
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	_, res := runOn(t, src, Options{C: 64})
	if len(res.Emitted) != 0 {
		t.Fatal("must not prefetch conditionally executed chains")
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectConditional {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectConditional, got %+v", res.Rejections)
	}
}

func TestRejectCallInChain(t *testing.T) {
	src := `module m
func hash(%x: i64) -> i64 {
entry:
  %h = mul %x, 40503
  ret %h
}

func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 8
  %t2 = load i64, %t1
  %h = call i64 @hash(%t2)
  %t3 = gep %b, %h, 8
  %t4 = load i64, %t3
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	m := ir.MustParse(src)
	res := Run(m, Options{C: 64})["f"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res.Emitted) != 0 {
		t.Fatal("calls in the chain must be rejected by default")
	}
	found := false
	for _, r := range res.Rejections {
		if r.Reason == RejectCall {
			found = true
		}
	}
	if !found {
		t.Errorf("expected RejectCall, got %+v", res.Rejections)
	}

	// With the pure-call extension enabled the chain is allowed, and the
	// emitted code must contain a call copy.
	m2 := ir.MustParse(src)
	res2 := Run(m2, Options{C: 64, AllowPureCalls: true})["f"]
	if err := m2.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res2.Emitted) != 2 {
		t.Fatalf("pure-call mode emitted %d, want 2:\n%s", len(res2.Emitted), m2.String())
	}
}

func TestMultipleIVsChoosesInnermost(t *testing.T) {
	// b[a[j]] inside a j-loop nested in an i-loop, where the address
	// also adds i: the innermost IV (j) must drive the look-ahead.
	src := `module m
func f(%a: ptr, %b: ptr, %rows: i64, %cols: i64) -> void {
entry:
  br oh
oh:
  %i = phi i64 [entry: 0, olatch: %i2]
  %oc = cmp lt %i, %rows
  cbr %oc, ih, oexit
ih:
  %j = phi i64 [oh: 0, jbody: %j2]
  %jc = cmp lt %j, %cols
  cbr %jc, jbody, olatch
jbody:
  %t1 = gep %a, %j, 4
  %t2 = load i32, %t1
  %t3 = add %t2, %i
  %t4 = gep %b, %t3, 4
  %t5 = load i32, %t4
  %j2 = add %j, 1
  br ih
olatch:
  %i2 = add %i, 1
  br oh
oexit:
  ret
}
`
	m, res := runOn(t, src, Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d, want 2:\n%s", len(res.Emitted), m.String())
	}
	// Verify the look-ahead advances j, not i: the clamp chain must
	// reference the j phi.
	f := m.Func("f")
	j := f.Block("ih").Phis()[0]
	i := f.Block("oh").Phis()[0]
	for _, e := range res.Emitted {
		usesJ, usesI := false, false
		seen := map[*ir.Instr]bool{}
		var walk func(v ir.Value)
		walk = func(v ir.Value) {
			in, ok := v.(*ir.Instr)
			if !ok || seen[in] {
				return
			}
			seen[in] = true
			if in == j {
				usesJ = true
			}
			if in == i {
				usesI = true
			}
			if in.Op == ir.OpPhi {
				return
			}
			for _, a := range in.Args {
				walk(a)
			}
		}
		walk(e.Prefetch.Args[0])
		if !usesJ {
			t.Errorf("prefetch at position %d does not advance the inner IV", e.Position)
		}
		_ = usesI // i may legitimately appear as a loop-invariant addend
	}
}

func TestStaggerDepthLimit(t *testing.T) {
	// A three-deep chain c[b[a[i]]]: depth limit 1 must prefetch only
	// the stride companion and the first indirect level.
	src := `module m
func f(%n: i64) -> void {
entry:
  %a = alloc %n, 8
  %b = alloc 4096, 8
  %c = alloc 4096, 8
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %cc = cmp lt %i, %n
  cbr %cc, body, exit
body:
  %t1 = gep %a, %i, 8
  %t2 = load i64, %t1
  %t3 = gep %b, %t2, 8
  %t4 = load i64, %t3
  %t5 = gep %c, %t4, 8
  %t6 = load i64, %t5
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	m, res := runOn(t, src, Options{C: 64})
	// Full: the deepest chain has t=3; its positions 0,1,2 are emitted.
	// The middle load's own chain (t=2) would re-emit positions with
	// different offsets: dedup by (load, offset) may allow extras, but
	// position-2 prefetch must exist exactly once.
	pos2 := 0
	for _, e := range res.Emitted {
		if e.Position == 2 {
			pos2++
		}
	}
	if pos2 != 1 {
		t.Errorf("deepest prefetch count = %d, want 1:\n%s", pos2, m.String())
	}

	_, res2 := runOn(t, src, Options{C: 64, MaxStaggerDepth: 1})
	for _, e := range res2.Emitted {
		if e.ChainLen == 3 && e.Position > 1 {
			t.Errorf("stagger depth 1 emitted position %d", e.Position)
		}
	}
}

func TestDownwardLoop(t *testing.T) {
	src := `module m
func f(%n: i64) -> void {
entry:
  %a = alloc %n, 8
  %b = alloc 4096, 8
  %start = sub %n, 1
  br header
header:
  %i = phi i64 [entry: %start, body: %i2]
  %c = cmp ge %i, 0
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 8
  %t2 = load i64, %t1
  %t3 = gep %b, %t2, 8
  %t4 = load i64, %t3
  %i2 = sub %i, 1
  br header
exit:
  ret
}
`
	m, res := runOn(t, src, Options{C: 64})
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d for downward loop, want 2:\n%s", len(res.Emitted), m.String())
	}
	// Downward loops clamp with max against 0.
	sawMax := false
	m.Func("f").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMax {
			sawMax = true
		}
	})
	if !sawMax {
		t.Error("downward loop must clamp with max")
	}
}

func TestInstructionOverheadCounted(t *testing.T) {
	m := ir.MustParse(isSrc)
	before := m.Func("is").NumInstrs()
	res := Run(m, Options{C: 64})["is"]
	after := m.Func("is").NumInstrs()
	if res.NewInstrs != after-before {
		t.Errorf("NewInstrs = %d, want %d", res.NewInstrs, after-before)
	}
	if res.NewInstrs <= 0 {
		t.Error("pass added no instructions")
	}
}

func TestIdempotentOnSecondRun(t *testing.T) {
	// Running the pass twice must not stack prefetches for the same
	// loads at the same offsets (dedup is per-run; the second run sees
	// copies of intermediate loads as new candidates, but their chains
	// collapse to already-prefetched patterns). We only require output
	// validity and bounded growth here.
	m := ir.MustParse(isSrc)
	Run(m, Options{C: 64})
	n1 := m.Func("is").NumInstrs()
	Run(m, Options{C: 64})
	if err := m.Verify(); err != nil {
		t.Fatalf("second run broke the IR: %v", err)
	}
	n2 := m.Func("is").NumInstrs()
	if n2 > n1*3 {
		t.Errorf("second run tripled code size: %d -> %d", n1, n2)
	}
}

func TestRejectionStrings(t *testing.T) {
	for r := RejectCall; r <= RejectModeRestricted; r++ {
		if strings.HasPrefix(r.String(), "reject(") {
			t.Errorf("reason %d lacks a name", int(r))
		}
	}
}
