package prefetch_test

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

const splitKernel = `module m

func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %t5 = add %t4, 1
  store i32, %t3, %t5
  %i2 = add %i, 1
  br header
exit:
  ret
}
`

func TestSplitLoopStructure(t *testing.T) {
	m := ir.MustParse(splitKernel)
	res := prefetch.Run(m, prefetch.Options{C: 64, SplitLoops: true})["f"]
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d", len(res.Emitted))
	}
	f := m.Func("f")
	tail := f.Block("header.tail")
	if tail == nil {
		t.Fatalf("no tail loop:\n%s", m.String())
	}
	// The main loop must contain no min clamps any more.
	mainBody := f.Block("body")
	for _, in := range mainBody.Instrs {
		if in.Op == ir.OpMin || in.Op == ir.OpMax {
			t.Errorf("clamp survived in the split main loop: %s", in.Format())
		}
	}
	// The tail must contain the original work but no prefetches.
	tailBody := f.Block("body.tail")
	if tailBody == nil {
		t.Fatal("no tail body")
	}
	for _, in := range tailBody.Instrs {
		if in.Op == ir.OpPrefetch {
			t.Error("prefetch leaked into the epilogue")
		}
	}
	sawStore := false
	for _, in := range tailBody.Instrs {
		if in.Op == ir.OpStore {
			sawStore = true
		}
	}
	if !sawStore {
		t.Errorf("epilogue lost the loop body:\n%s", m.String())
	}
	// The split bound (n - maxOffset) must exist.
	if !strings.Contains(m.String(), "loop-split bound") {
		t.Errorf("split bound missing:\n%s", m.String())
	}
}

// TestSplitSemantics runs the split kernel against the unsplit one over
// boundary-heavy sizes (n smaller, equal and larger than the split
// point) and compares memory effects via the interpreter.
func TestSplitSemantics(t *testing.T) {
	for _, n := range []int64{0, 1, 5, 63, 64, 65, 100, 1000} {
		run := func(opts prefetch.Options) []int64 {
			m := ir.MustParse(splitKernel)
			prefetch.Run(m, opts)
			if err := m.Verify(); err != nil {
				t.Fatalf("n=%d: verify: %v", n, err)
			}
			mach := interp.New(m, sim.DefaultConfig())
			aBase, _ := mach.Mem.Alloc(maxi(n, 1) * 4)
			bBase, _ := mach.Mem.Alloc(256 * 4)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64((i * 7) % 256)
			}
			if err := mach.Mem.WriteSlice(aBase, ir.I32, vals); err != nil {
				t.Fatal(err)
			}
			if _, err := mach.Run("f", aBase, bBase, n); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			out, err := mach.Mem.ReadSlice(bBase, ir.I32, 256)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		plain := run(prefetch.Options{C: 64})
		split := run(prefetch.Options{C: 64, SplitLoops: true})
		for i := range plain {
			if plain[i] != split[i] {
				t.Fatalf("n=%d: bucket %d differs: %d vs %d", n, i, plain[i], split[i])
			}
		}
	}
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestSplitReducesInstructions: on a memory-bound in-order run the
// split variant must execute fewer instructions than the clamped one
// and be at least as fast.
func TestSplitReducesInstructions(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-bound size")
	}
	w := workloads.IS(1<<14, 1<<17)
	cfg := uarch.A53()
	measure := func(opts prefetch.Options) (float64, uint64) {
		inst := w.Plain()
		prefetch.Run(inst.Mod, opts)
		mach := interp.New(inst.Mod, cfg)
		if err := inst.Run(mach); err != nil {
			t.Fatal(err)
		}
		st := mach.Stats()
		return st.Cycles, st.Instructions
	}
	clampedCyc, clampedInstr := measure(prefetch.Options{C: 64})
	splitCyc, splitInstr := measure(prefetch.Options{C: 64, SplitLoops: true})
	if splitInstr >= clampedInstr {
		t.Errorf("split did not reduce instructions: %d vs %d", splitInstr, clampedInstr)
	}
	if splitCyc > clampedCyc*1.02 {
		t.Errorf("split slowed the kernel: %.0f vs %.0f cycles", splitCyc, clampedCyc)
	}
	t.Logf("clamped: %.0f cyc / %d instr; split: %.0f cyc / %d instr",
		clampedCyc, clampedInstr, splitCyc, splitInstr)
}

// TestSplitSkipsComplexLoops: loops outside the supported shape (extra
// blocks, non-LT bounds) are left clamped and still correct.
func TestSplitSkipsComplexLoops(t *testing.T) {
	src := `module m
func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, latch: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %p = rem %t4, 2
  %pc = cmp eq %p, 0
  cbr %pc, even, latch
even:
  br latch
latch:
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	m := ir.MustParse(src)
	prefetch.Run(m, prefetch.Options{C: 64, SplitLoops: true})
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	if m.Func("f").Block("header.tail") != nil {
		t.Error("complex loop was split")
	}
	// Clamps must remain.
	found := false
	m.Func("f").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMin {
			found = true
		}
	})
	if !found {
		t.Error("clamps removed without a split")
	}
}

// TestSplitAllWorkloadsStayCorrect: the full suite with splitting on.
func TestSplitAllWorkloadsStayCorrect(t *testing.T) {
	for _, w := range workloads.Tiny() {
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Plain()
			prefetch.Run(inst.Mod, prefetch.Options{C: 64, SplitLoops: true})
			if err := inst.Mod.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			mach := interp.New(inst.Mod, sim.DefaultConfig())
			if err := inst.Run(mach); err != nil {
				t.Fatal(err)
			}
		})
	}
}
