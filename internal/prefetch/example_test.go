package prefetch_test

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/prefetch"
)

// Example runs the pass over the paper's running example (figure 3):
// buckets[keys[i]]++ becomes two staggered prefetches, the indirect one
// through a clamped real load of the look-ahead index.
func Example() {
	mod := ir.MustParse(`module example

func histogram(%keys: ptr, %buckets: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %ka = gep %keys, %i, 4
  %k = load i32, %ka
  %ba = gep %buckets, %k, 4
  %v = load i32, %ba
  %v2 = add %v, 1
  store i32, %ba, %v2
  %i2 = add %i, 1
  br header
exit:
  ret
}
`)
	res := prefetch.Run(mod, prefetch.Options{C: 64})["histogram"]
	for _, e := range res.Emitted {
		fmt.Printf("prefetch for %%%s: position %d of %d, offset %d\n",
			e.Target.Name, e.Position, e.ChainLen, e.Offset)
	}
	// Output:
	// prefetch for %k: position 0 of 2, offset 64
	// prefetch for %v: position 1 of 2, offset 32
}

// ExampleOffset shows eq. (1)'s staggering for a four-deep chain like
// HJ-8's (§5.1 uses c=16: offsets 16, 12, 8, 4).
func ExampleOffset() {
	for l := 0; l < 4; l++ {
		fmt.Println(prefetch.Offset(16, 4, l))
	}
	// Output:
	// 16
	// 12
	// 8
	// 4
}
