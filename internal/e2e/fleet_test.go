package e2e

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/workloads"
)

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	cleanupBinaries()
	os.Exit(code)
}

// tinyPool mirrors the daemon's memoized tiny workload pool — the
// direct reference runs must hand the engine the same workloads the
// worker processes reconstruct.
var tinyPool = sync.OnceValue(workloads.Tiny)

// tinySpec is one grid over the tiny pool, expressed both as swpfctl
// flags and as a direct in-process run.
type tinySpec struct {
	workloads string // "" = all
	systems   string
	variants  string
}

func (sp tinySpec) flags() []string {
	args := []string{"-quality", "tiny", "-systems", sp.systems, "-variants", sp.variants}
	if sp.workloads != "" {
		args = append(args, "-workloads", sp.workloads)
	}
	return args
}

// grid resolves the spec exactly the way swpfd's submission validation
// does.
func (sp tinySpec) grid(t *testing.T) sweep.Grid {
	t.Helper()
	ws, err := sweep.SelectWorkloads(tinyPool(), sp.workloads)
	if err != nil {
		t.Fatal(err)
	}
	systems, err := sweep.ParseSystems(sp.systems)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sweep.ParseVariants(sp.variants)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.Grid{Workloads: ws, Systems: systems, Variants: vs}
}

// direct runs the spec on a single-node sweep.Runner — the ground
// truth every fleet answer must match byte for byte.
func (sp tinySpec) direct(t *testing.T) (csv, js string) {
	t.Helper()
	set, err := sweep.Runner{Jobs: 2}.Execute(sp.grid(t).Expand())
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var c, j bytes.Buffer
	if err := set.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	if err := set.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	return c.String(), j.String()
}

// submitWait submits a spec through swpfctl with -wait and returns the
// job id.
func submitWait(f *Fleet, sp tinySpec) (string, error) {
	out, err := f.TrySwpfctl(append([]string{"submit", "-wait"}, sp.flags()...)...)
	if err != nil {
		return "", err
	}
	fields := strings.Fields(out)
	if len(fields) == 0 {
		return "", fmt.Errorf("submit printed nothing")
	}
	return fields[0], nil
}

// TestFleetByteIdentical is the tentpole acceptance test: a 3-worker
// fleet serving 6 concurrent overlapping grid submissions returns
// results byte-identical to a direct single-node run — cold (every
// distinct cell simulated exactly once fleet-wide, each persisted
// exactly once) and warm (second round entirely from the store, zero
// new simulations).
func TestFleetByteIdentical(t *testing.T) {
	f := StartFleet(t, FleetConfig{Workers: 3, StoreDir: t.TempDir()})

	// Six overlapping grids over three workloads: every pair plus every
	// single. Distinct cells: 3 workloads x 1 system x 2 variants = 6;
	// requested outcome slots: (2+2+2+1+1+1) x 2 = 18.
	specs := []tinySpec{
		{workloads: "IS,CG", systems: "A53", variants: "plain,auto"},
		{workloads: "CG,RA", systems: "A53", variants: "plain,auto"},
		{workloads: "IS,RA", systems: "A53", variants: "plain,auto"},
		{workloads: "IS", systems: "A53", variants: "plain,auto"},
		{workloads: "CG", systems: "A53", variants: "plain,auto"},
		{workloads: "RA", systems: "A53", variants: "plain,auto"},
	}
	const distinct = 6
	slots := 0
	for _, sp := range specs {
		slots += len(sp.grid(t).Expand())
	}

	runRound := func(round string) []string {
		ids := make([]string, len(specs))
		errs := make([]error, len(specs))
		var wg sync.WaitGroup
		for i, sp := range specs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ids[i], errs[i] = submitWait(f, sp)
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s submission %d: %v\ncoordinator stderr:\n%s", round, i, err, f.CoordinatorStderr())
			}
		}
		for i, sp := range specs {
			wantCSV, wantJSON := sp.direct(t)
			if got := f.Swpfctl("results", "-id", ids[i], "-format", "csv"); got != wantCSV {
				t.Errorf("%s job %s CSV differs from direct run:\n got: %q\nwant: %q", round, ids[i], got, wantCSV)
			}
			if got := f.Swpfctl("results", "-id", ids[i], "-format", "json"); got != wantJSON {
				t.Errorf("%s job %s JSON differs from direct run", round, ids[i])
			}
		}
		return ids
	}

	// Cold round: empty store, all six submitted concurrently.
	runRound("cold")
	fs := f.Stats()
	if fs.Store == nil {
		t.Fatal("no store stats on /fleet")
	}
	if fs.Store.Puts != distinct {
		t.Errorf("cold store puts = %d, want %d (exactly one simulation per distinct cell)", fs.Store.Puts, distinct)
	}
	if fs.Queue.Completed != distinct {
		t.Errorf("cold completed = %d, want %d", fs.Queue.Completed, distinct)
	}
	// Every requested slot beyond the distinct six was answered without
	// a simulation: either attached to the live cell or served from the
	// store.
	if got := fs.Queue.DedupHits + fs.Queue.CacheHits; got != int64(slots-distinct) {
		t.Errorf("cold dedup+cache hits = %d, want %d", got, slots-distinct)
	}
	if len(fs.Queue.Workers) != 3 {
		t.Errorf("fleet knows %d workers, want 3", len(fs.Queue.Workers))
	}

	// Warm round: same six grids again — the store answers everything,
	// no cell is ever re-simulated.
	runRound("warm")
	ws := f.Stats()
	if ws.Store.Puts != distinct {
		t.Errorf("warm store puts = %d, want still %d", ws.Store.Puts, distinct)
	}
	if ws.Queue.Completed != distinct {
		t.Errorf("warm completed = %d, want still %d", ws.Queue.Completed, distinct)
	}
	if got := ws.Queue.CacheHits - fs.Queue.CacheHits; got != int64(slots) {
		t.Errorf("warm round cache hits = %d, want %d (every slot from the store)", got, slots)
	}
}

// TestWorkerKillMidGrid is the fault-injection acceptance test: SIGKILL
// a worker while a grid is in flight. The fleet must drain the job —
// expired leases requeue, the survivors finish — with no cell lost
// (the job completes) and no cell simulated twice (store puts still
// equal distinct cells), and the results byte-identical to a direct
// run.
func TestWorkerKillMidGrid(t *testing.T) {
	f := StartFleet(t, FleetConfig{
		Workers:    1, // the victim; replacements join after the kill
		StoreDir:   t.TempDir(),
		LeaseTTL:   500 * time.Millisecond,
		LeaseBatch: 2,
	})

	// The whole tiny pool on two systems: 6 x 2 x 2 = 24 cells.
	sp := tinySpec{systems: "A53,Haswell", variants: "plain,auto"}
	cells := len(sp.grid(t).Expand())

	out := f.Swpfctl(append([]string{"submit"}, sp.flags()...)...)
	id := strings.Fields(out)[0]

	// Catch the worker provably mid-grid: freeze it with SIGSTOP, check
	// the coordinator still counts cells leased to it, and only then
	// SIGKILL. If the freeze landed between batches (nothing leased),
	// thaw and try again — this makes the fault deterministic instead
	// of a timing lottery.
	deadline := time.Now().Add(10 * time.Second)
	for {
		f.SignalWorker(0, syscall.SIGSTOP)
		if f.Stats().Queue.Leased > 0 {
			break
		}
		f.SignalWorker(0, syscall.SIGCONT)
		if time.Now().After(deadline) {
			t.Fatalf("never caught the worker holding a lease\ncoordinator stderr:\n%s", f.CoordinatorStderr())
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.KillWorker(0)

	// The killed worker took its leased cells down with it. Refill the
	// fleet: the replacements drain the queue, and the dead worker's
	// cells come back via lease expiry.
	f.AddWorker()
	f.AddWorker()

	// The job must still drain; -follow returns when it reaches a
	// terminal state.
	f.Swpfctl("status", "-follow", id)
	status := f.Swpfctl("status", id)
	want := fmt.Sprintf("%s\tdone\t%d/%d\n", id, cells, cells)
	if status != want {
		t.Fatalf("after worker kill, status = %q, want %q\ncoordinator stderr:\n%s", status, want, f.CoordinatorStderr())
	}

	wantCSV, _ := sp.direct(t)
	if got := f.Swpfctl("results", "-id", id, "-format", "csv"); got != wantCSV {
		t.Errorf("results after worker kill differ from direct run:\n got: %q\nwant: %q", got, wantCSV)
	}

	fs := f.Stats()
	if fs.Store.Puts != int64(cells) {
		t.Errorf("store puts = %d, want %d (no cell simulated twice, none lost)", fs.Store.Puts, cells)
	}
	if fs.Queue.Completed != int64(cells) {
		t.Errorf("completed = %d, want %d", fs.Queue.Completed, cells)
	}
	if fs.Queue.Pending != 0 || fs.Queue.Leased != 0 {
		t.Errorf("queue not drained: %d pending, %d leased", fs.Queue.Pending, fs.Queue.Leased)
	}
	// The freeze-then-kill sequence guarantees the victim died holding
	// cells, so lease expiry must have requeued them.
	if fs.Queue.Requeued == 0 {
		t.Error("worker died holding a lease but nothing was requeued")
	}
}

// TestDeadStorePeer is the degradation companion: a coordinator whose
// store peer is unreachable keeps serving — reads fall back to local,
// writes are dropped after bounded retries, results stay correct.
func TestDeadStorePeer(t *testing.T) {
	// Grab a port nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	f := StartFleet(t, FleetConfig{Workers: 1, StoreDir: t.TempDir(), Peer: dead})

	sp := tinySpec{workloads: "IS", systems: "A53", variants: "plain,auto"}
	id, err := submitWait(f, sp)
	if err != nil {
		t.Fatalf("submit against dead peer: %v", err)
	}
	wantCSV, _ := sp.direct(t)
	if got := f.Swpfctl("results", "-id", id, "-format", "csv"); got != wantCSV {
		t.Errorf("results with dead peer differ from direct run:\n got: %q\nwant: %q", got, wantCSV)
	}

	// The breaker observes the failures and the write-behind queue
	// drops its replications; give the async writer a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := f.Stats()
		if fs.Peer == nil {
			t.Fatal("no peer stats on /fleet")
		}
		if !fs.Peer.Up && fs.Peer.Dropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never marked down: up=%v dropped=%d", fs.Peer.Up, fs.Peer.Dropped)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Local results survived the peer outage.
	if fs := f.Stats(); fs.Store.Puts != 2 {
		t.Errorf("store puts = %d, want 2", fs.Store.Puts)
	}
}
