// Package e2e is the real-binary test harness for the sweep fabric:
// it builds the actual swpfd and swpfctl binaries once per test run,
// starts an N-worker fleet on ephemeral ports, and drives it through
// swpfctl — the same processes and protocol a user runs, not httptest
// stand-ins. The helpers are exported so future packages can reuse
// them.
//
// Everything here is gated behind -short: `go test -short` skips the
// builds and the fleets entirely.
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Binaries are built once per test run, into a directory TestMain
// removes.
var (
	binOnce sync.Once
	binDir  string
	binErr  error
)

// BuildBinaries compiles swpfd and swpfctl (once per run, shared by
// every test) and returns their paths. Skips the calling test under
// -short.
func BuildBinaries(t *testing.T) (swpfd, swpfctl string) {
	t.Helper()
	if testing.Short() {
		t.Skip("real-binary e2e skipped in -short mode")
	}
	binOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "swpf-e2e-bin-")
		if binErr != nil {
			return
		}
		for _, name := range []string{"swpfd", "swpfctl"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "repro/cmd/"+name)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				binErr = fmt.Errorf("building %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return filepath.Join(binDir, "swpfd"), filepath.Join(binDir, "swpfctl")
}

// cleanupBinaries removes the shared build directory; the package's
// TestMain calls it after the run.
func cleanupBinaries() {
	if binDir != "" {
		os.RemoveAll(binDir)
	}
}

// FleetConfig shapes a StartFleet fleet.
type FleetConfig struct {
	// Workers is the number of `swpfd -worker` processes (the
	// coordinator itself runs zero local workers).
	Workers int
	// StoreDir, when non-empty, is the coordinator's -store directory.
	StoreDir string
	// Peer, when non-empty, is the coordinator's -peer URL (requires
	// StoreDir).
	Peer string
	// LeaseTTL, when non-zero, is passed as -lease-ttl.
	LeaseTTL time.Duration
	// LeaseBatch, when non-zero, is passed as -lease-batch (coordinator
	// and workers).
	LeaseBatch int
	// Jobs is the per-worker sweep pool size; 0 means 2 (fleets in
	// tests share one machine, so keep the pools small).
	Jobs int
}

// Fleet is one running coordinator + N worker processes.
type Fleet struct {
	t       *testing.T
	swpfd   string
	swpfctl string
	cfg     FleetConfig

	// URL is the coordinator's base URL (ephemeral port).
	URL string

	coordinator *process
	workers     []*process
}

// process is one child with captured stderr.
type process struct {
	cmd  *exec.Cmd
	name string

	mu     sync.Mutex
	stderr bytes.Buffer
	lines  chan string
}

// start launches a child, scanning its stderr into both a buffer (for
// failure dumps) and a line channel (for readiness probes).
func start(t *testing.T, name string, bin string, args ...string) *process {
	t.Helper()
	p := &process{name: name, lines: make(chan string, 64)}
	p.cmd = exec.Command(bin, args...)
	// Neutralize ambient store/peer/client configuration: fleets must
	// be shaped only by the flags the test passes.
	p.cmd.Env = append(os.Environ(), "SWPF_STORE=", "SWPF_PEER=", "SWPFCTL_ADDR=", "SWPFCTL_CONFIG=")
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stdout = io.Discard
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(&p.stderr, line)
			p.mu.Unlock()
			select {
			case p.lines <- line:
			default:
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() { p.kill() })
	return p
}

// waitLine blocks until stderr produces a line containing substr and
// returns it.
func (p *process) waitLine(t *testing.T, substr string, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("%s exited before printing %q; stderr:\n%s", p.name, substr, p.dump())
			}
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("%s did not print %q within %s; stderr:\n%s", p.name, substr, timeout, p.dump())
		}
	}
}

// logAttr extracts the value of a `key=value` attribute from one slog
// text line; values the handler quoted are unquoted.
func logAttr(t *testing.T, line, key string) string {
	t.Helper()
	v, ok := attrValue(line, key)
	if !ok {
		t.Fatalf("log line %q has no %s attribute", line, key)
	}
	return v
}

// attrValue is logAttr's non-fatal form, for probing lines that may
// not carry the attribute.
func attrValue(line, key string) (string, bool) {
	i := strings.Index(line, " "+key+"=")
	if i < 0 {
		return "", false
	}
	v := line[i+len(key)+2:]
	if strings.HasPrefix(v, `"`) {
		if uq, err := strconv.Unquote(v[:strings.Index(v[1:], `"`)+2]); err == nil {
			return uq, true
		}
	}
	if j := strings.IndexByte(v, ' '); j >= 0 {
		v = v[:j]
	}
	return strings.TrimSpace(v), true
}

func (p *process) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// kill SIGKILLs the child and reaps it; idempotent.
func (p *process) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// StartFleet boots a coordinator on an ephemeral port plus cfg.Workers
// worker processes, waits for every process to report ready, and
// registers cleanup kills. The coordinator runs with -local-workers 0,
// so all simulation happens in the worker processes.
func StartFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	swpfd, swpfctl := BuildBinaries(t)
	if cfg.Jobs == 0 {
		cfg.Jobs = 2
	}

	args := []string{"-addr", "127.0.0.1:0", "-local-workers", "0", "-jobs", fmt.Sprint(cfg.Jobs)}
	if cfg.StoreDir != "" {
		args = append(args, "-store", cfg.StoreDir)
	}
	if cfg.Peer != "" {
		args = append(args, "-peer", cfg.Peer)
	}
	if cfg.LeaseTTL != 0 {
		args = append(args, "-lease-ttl", cfg.LeaseTTL.String())
	}
	if cfg.LeaseBatch != 0 {
		args = append(args, "-lease-batch", fmt.Sprint(cfg.LeaseBatch))
	}
	f := &Fleet{t: t, swpfd: swpfd, swpfctl: swpfctl, cfg: cfg}
	f.coordinator = start(t, "coordinator", swpfd, args...)

	// The daemon logs the resolved listen address once the socket is
	// bound — with -addr :0 this is the only way to learn the port. The
	// line is slog text: `... msg=listening addr=127.0.0.1:NNNN`.
	line := f.coordinator.waitLine(t, "msg=listening", 30*time.Second)
	addr := logAttr(t, line, "addr")
	f.URL = "http://" + addr

	for i := 0; i < cfg.Workers; i++ {
		f.AddWorker()
	}
	return f
}

// AddWorker starts one more worker process against the coordinator and
// waits for it to come up — fault-injection flows kill a worker and
// then refill the fleet.
func (f *Fleet) AddWorker() {
	f.t.Helper()
	i := len(f.workers)
	wargs := []string{"-worker", f.URL, "-name", fmt.Sprintf("w%d", i), "-jobs", fmt.Sprint(f.cfg.Jobs)}
	if f.cfg.LeaseBatch != 0 {
		wargs = append(wargs, "-lease-batch", fmt.Sprint(f.cfg.LeaseBatch))
	}
	w := start(f.t, fmt.Sprintf("worker-%d", i), f.swpfd, wargs...)
	w.waitLine(f.t, "msg=pulling", 30*time.Second)
	f.workers = append(f.workers, w)
}

// SignalWorker sends a signal to worker i — SIGSTOP freezes a worker
// mid-batch so a test can take a stable look at (or then kill) a
// process that provably holds a lease.
func (f *Fleet) SignalWorker(i int, sig os.Signal) {
	f.t.Helper()
	if err := f.workers[i].cmd.Process.Signal(sig); err != nil {
		f.t.Fatalf("signaling worker %d with %v: %v", i, sig, err)
	}
}

// KillWorker SIGKILLs worker i — the fault-injection hook. The fleet's
// lease expiry must recover its in-flight cells.
func (f *Fleet) KillWorker(i int) {
	f.t.Helper()
	w := f.workers[i]
	if err := w.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		f.t.Fatalf("killing worker %d: %v", i, err)
	}
	w.cmd.Wait()
}

// Swpfctl runs the real swpfctl binary against the fleet's coordinator
// and returns its stdout; the test fails on a non-zero exit.
func (f *Fleet) Swpfctl(args ...string) string {
	f.t.Helper()
	out, err := f.TrySwpfctl(args...)
	if err != nil {
		f.t.Fatalf("swpfctl %v: %v", args, err)
	}
	return out
}

// TrySwpfctl is Swpfctl without the failure fatal — for error-path
// assertions.
func (f *Fleet) TrySwpfctl(args ...string) (string, error) {
	argv := append([]string{args[0], "-addr", f.URL}, args[1:]...)
	cmd := exec.Command(f.swpfctl, argv...)
	cmd.Env = append(os.Environ(), "SWPFCTL_ADDR=", "SWPFCTL_CONFIG=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return stdout.String(), fmt.Errorf("%w\nstderr:\n%s", err, stderr.String())
	}
	return stdout.String(), nil
}

// FleetStats is the slice of GET /fleet the e2e assertions read.
type FleetStats struct {
	Queue struct {
		Pending    int   `json:"pending"`
		Leased     int   `json:"leased"`
		Completed  int64 `json:"completed"`
		CacheHits  int64 `json:"cache_hits"`
		DedupHits  int64 `json:"dedup_hits"`
		Requeued   int64 `json:"requeued"`
		DupDropped int64 `json:"dup_dropped"`
		Workers    []struct {
			Name string `json:"name"`
		} `json:"workers"`
	} `json:"queue"`
	Store *struct {
		Hits, Misses, Puts int64
	} `json:"store"`
	Peer *struct {
		Base    string `json:"base"`
		Up      bool   `json:"up"`
		Dropped int64  `json:"dropped"`
	} `json:"peer"`
}

// Stats fetches the coordinator's /fleet snapshot.
func (f *Fleet) Stats() FleetStats {
	f.t.Helper()
	resp, err := http.Get(f.URL + "/fleet")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		f.t.Fatal(err)
	}
	return fs
}

// CoordinatorStderr returns everything the coordinator has written to
// stderr so far — for failure diagnostics.
func (f *Fleet) CoordinatorStderr() string { return f.coordinator.dump() }
