package e2e

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics fetches and parses the coordinator's /metrics.
func scrapeMetrics(t *testing.T, f *Fleet) []obs.Sample {
	t.Helper()
	resp, err := http.Get(f.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestFleetMetricsConsistency runs a real 3-worker fleet through a
// submission and checks that the /metrics exposition, the /fleet JSON,
// and the swpfctl top/doctor renderings all tell the same story — the
// observability acceptance test on live processes.
func TestFleetMetricsConsistency(t *testing.T) {
	f := StartFleet(t, FleetConfig{Workers: 3, StoreDir: t.TempDir()})

	sp := tinySpec{workloads: "IS,CG", systems: "A53", variants: "plain,auto"}
	cells := len(sp.grid(t).Expand())
	if _, err := submitWait(f, sp); err != nil {
		t.Fatalf("submit: %v\ncoordinator stderr:\n%s", err, f.CoordinatorStderr())
	}

	samples := scrapeMetrics(t, f)
	fs := f.Stats()
	want := map[string]float64{
		"swpf_queue_completed_total":    float64(fs.Queue.Completed),
		"swpf_queue_pending":            float64(fs.Queue.Pending),
		"swpf_queue_leased":             float64(fs.Queue.Leased),
		"swpf_queue_requeued_total":     float64(fs.Queue.Requeued),
		"swpf_queue_workers":            float64(len(fs.Queue.Workers)),
		"swpf_store_puts_total":         float64(fs.Store.Puts),
		"swpf_fleet_cell_seconds_count": float64(fs.Queue.Completed),
	}
	for name, w := range want {
		s := obs.Find(samples, name)
		if s == nil {
			t.Errorf("metric %s missing from /metrics", name)
			continue
		}
		if s.Value != w {
			t.Errorf("%s = %v, /fleet says %v", name, s.Value, w)
		}
	}
	if fs.Queue.Completed != int64(cells) {
		t.Errorf("completed = %d, want %d", fs.Queue.Completed, cells)
	}
	// The fleet protocol itself is instrumented: three workers polled
	// /fleet/lease at least once each.
	leases := 0.0
	for _, s := range samples {
		if s.Name != "swpf_http_requests_total" {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "route" && l.Value == "POST /fleet/lease" {
				leases += s.Value
			}
		}
	}
	if leases < 3 {
		t.Errorf("POST /fleet/lease requests = %v, want >= 3", leases)
	}

	// swpfctl top renders the same counters from the same exposition.
	top := f.Swpfctl("top")
	if !strings.Contains(top, fmt.Sprintf("completed %d", cells)) {
		t.Errorf("top does not show %d completed cells:\n%s", cells, top)
	}
	if !strings.Contains(top, "workers 3") {
		t.Errorf("top does not show 3 workers:\n%s", top)
	}
	if !strings.Contains(top, "POST /fleet/complete") {
		t.Errorf("top shows no http route table:\n%s", top)
	}

	// A healthy fleet: doctor reports no anomalies.
	doc := f.Swpfctl("doctor")
	if strings.Contains(doc, "warning:") {
		t.Errorf("doctor warns on a healthy fleet:\n%s", doc)
	}
}

// TestRequestIDPropagation checks the correlation contract across real
// processes: the coordinator stamps a request ID on the lease response,
// the worker logs the batch's execution under it and sends it back on
// complete, and the coordinator's access log carries the same ID on the
// completion request — one grep joins both sides of a cell's lifecycle.
func TestRequestIDPropagation(t *testing.T) {
	f := StartFleet(t, FleetConfig{Workers: 1, StoreDir: t.TempDir()})

	sp := tinySpec{workloads: "IS", systems: "A53", variants: "plain,auto"}
	if _, err := submitWait(f, sp); err != nil {
		t.Fatal(err)
	}

	// The worker logs `msg=complete ... rid=<id>` once its report is
	// accepted; the log line may land shortly after -wait returns.
	deadline := time.Now().Add(10 * time.Second)
	var rid string
	for rid == "" {
		for _, line := range strings.Split(f.workers[0].dump(), "\n") {
			if !strings.Contains(line, "msg=complete") {
				continue
			}
			if v, ok := attrValue(line, "rid"); ok && v != "" {
				rid = v
				break
			}
		}
		if rid != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never logged a completion rid; worker stderr:\n%s", f.workers[0].dump())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The coordinator's access log must show the completion request
	// under the same rid.
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(f.CoordinatorStderr(), "\n") {
			if strings.Contains(line, "/fleet/complete") && strings.Contains(line, "rid="+rid) {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator access log has no /fleet/complete line with rid=%s; stderr:\n%s",
		rid, f.CoordinatorStderr())
}
