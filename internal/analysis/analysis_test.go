package analysis

import (
	"testing"

	"repro/internal/ir"
)

// isKernel is the paper's running example (code listing 1 / figure 3):
//
//	for (i = 0; i < n; i++) b[a[i]]++
const isKernel = `module is

func is(%n: i64) -> void {
entry:
  %a = alloc %n, 4
  %b = alloc 65536, 4
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %t5 = add %t4, 1
  store i32, %t3, %t5
  %i2 = add %i, 1
  br header
exit:
  ret
}
`

const nestedSrc = `module nested

func f(%a: ptr, %rows: i64, %cols: i64) -> i64 {
entry:
  br oh
oh:
  %r = phi i64 [entry: 0, olatch: %r2]
  %s0 = phi i64 [entry: 0, olatch: %s3]
  %oc = cmp lt %r, %rows
  cbr %oc, ih, oexit
ih:
  %c = phi i64 [oh: 0, ibody: %c2]
  %s1 = phi i64 [oh: %s0, ibody: %s2]
  %ic = cmp lt %c, %cols
  cbr %ic, ibody, olatch
ibody:
  %t0 = mul %r, %cols
  %t1 = add %t0, %c
  %addr = gep %a, %t1, 8
  %v = load i64, %addr
  %s2 = add %s1, %v
  %c2 = add %c, 1
  br ih
olatch:
  %s3 = phi i64 [ih: %s1]
  %r2 = add %r, 1
  br oh
oexit:
  ret %s0
}
`

func TestFindLoopsSimple(t *testing.T) {
	m := ir.MustParse(isKernel)
	f := m.Func("is")
	li := FindLoops(f)
	if len(li.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != f.Block("header") {
		t.Errorf("header = %s", l.Header.Name)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
	if !l.Contains(f.Block("body")) || l.Contains(f.Block("exit")) || l.Contains(f.Block("entry")) {
		t.Error("loop membership wrong")
	}
	if len(l.Latches) != 1 || l.Latches[0] != f.Block("body") {
		t.Errorf("latches = %v", l.Latches)
	}
}

func TestInductionVariable(t *testing.T) {
	m := ir.MustParse(isKernel)
	f := m.Func("is")
	li := FindLoops(f)
	l := li.Loops[0]
	if l.IndVar == nil {
		t.Fatal("induction variable not found")
	}
	if l.IndVar.Name != "i" {
		t.Errorf("indvar = %%%s, want %%i", l.IndVar.Name)
	}
	if l.Step != 1 {
		t.Errorf("step = %d, want 1", l.Step)
	}
	if c, ok := l.Start.(*ir.Const); !ok || c.Val != 0 {
		t.Errorf("start = %v, want 0", l.Start)
	}
	if l.Limit == nil || l.Limit.String() != "%n" {
		t.Errorf("limit = %v, want %%n", l.Limit)
	}
	if l.LimitPred != ir.PredLT {
		t.Errorf("limit pred = %s, want lt", l.LimitPred)
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.MustParse(nestedSrc)
	f := m.Func("f")
	li := FindLoops(f)
	if len(li.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(li.Loops))
	}
	outer := li.Loops[0]
	inner := li.Loops[1]
	if outer.Header != f.Block("oh") || inner.Header != f.Block("ih") {
		t.Fatalf("loop headers: %s, %s", outer.Header.Name, inner.Header.Name)
	}
	if inner.Parent != outer {
		t.Error("inner loop not nested in outer")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", outer.Depth, inner.Depth)
	}
	if !outer.ContainsLoop(inner) || inner.ContainsLoop(outer) {
		t.Error("ContainsLoop wrong")
	}
	// Innermost loop of the inner body is the inner loop.
	if li.LoopOf(f.Block("ibody")) != inner {
		t.Error("LoopOf(ibody) != inner")
	}
	if li.LoopOf(f.Block("olatch")) != outer {
		t.Error("LoopOf(olatch) != outer")
	}
	if li.LoopOf(f.Block("entry")) != nil {
		t.Error("entry should be in no loop")
	}
	// Both loops should have canonical induction variables.
	if outer.IndVar == nil || outer.IndVar.Name != "r" {
		t.Errorf("outer indvar = %v", outer.IndVar)
	}
	if inner.IndVar == nil || inner.IndVar.Name != "c" {
		t.Errorf("inner indvar = %v", inner.IndVar)
	}
	if common := li.InnermostCommon(f.Block("ibody"), f.Block("olatch")); common != outer {
		t.Errorf("InnermostCommon = %v, want outer", common)
	}
}

func TestSingleExit(t *testing.T) {
	m := ir.MustParse(isKernel)
	li := FindLoops(m.Func("is"))
	if !li.Loops[0].SingleExit() {
		t.Error("loop should have a single exit")
	}

	multi := `module m
func f(%n: i64, %flag: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, latch: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %e = cmp eq %flag, %i
  cbr %e, exit, latch
latch:
  %i2 = add %i, 1
  br header
exit:
  ret
}
`
	li2 := FindLoops(ir.MustParse(multi).Func("f"))
	if len(li2.Loops) != 1 {
		t.Fatalf("got %d loops", len(li2.Loops))
	}
	if li2.Loops[0].SingleExit() {
		t.Error("loop with break should not be single-exit")
	}
}

func TestStepDownwardLoop(t *testing.T) {
	src := `module m
func f(%n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: %n, body: %i2]
  %c = cmp gt %i, 0
  cbr %c, body, exit
body:
  %i2 = sub %i, 1
  br header
exit:
  ret
}
`
	li := FindLoops(ir.MustParse(src).Func("f"))
	l := li.Loops[0]
	if l.IndVar == nil {
		t.Fatal("downward induction variable not found")
	}
	if l.Step != -1 {
		t.Errorf("step = %d, want -1", l.Step)
	}
	if l.LimitPred != ir.PredGT {
		t.Errorf("pred = %s, want gt", l.LimitPred)
	}
}

func TestNonCanonicalIVNotRecognised(t *testing.T) {
	// i *= 2 is not canonical.
	src := `module m
func f(%n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 1, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %i2 = mul %i, 2
  br header
exit:
  ret
}
`
	li := FindLoops(ir.MustParse(src).Func("f"))
	if li.Loops[0].IndVar != nil {
		t.Error("geometric IV should not be canonical")
	}
}

func TestPointerBaseThroughGEP(t *testing.T) {
	m := ir.MustParse(isKernel)
	f := m.Func("is")
	body := f.Block("body")
	// %t3 = gep %b, %t2, 4 -> base should be the alloc of b.
	t3 := body.Instrs[2]
	if t3.Name != "t3" {
		t.Fatalf("unexpected instruction %s", t3.Format())
	}
	info := PointerBase(t3)
	alloc, ok := info.Base.(*ir.Instr)
	if !ok || alloc.Op != ir.OpAlloc {
		t.Fatalf("base = %v, want alloc", info.Base)
	}
	if alloc.Name != "b" {
		t.Errorf("base alloc = %%%s, want %%b", alloc.Name)
	}
	if info.Elems == nil || info.Elems.String() != "65536" {
		t.Errorf("elems = %v, want 65536", info.Elems)
	}
	if info.ElemSize != 4 {
		t.Errorf("elem size = %d, want 4", info.ElemSize)
	}
}

func TestPointerBaseParam(t *testing.T) {
	m := ir.MustParse(nestedSrc)
	f := m.Func("f")
	addr := f.Block("ibody").Instrs[2]
	info := PointerBase(addr)
	p, ok := info.Base.(*ir.Param)
	if !ok || p.Name != "a" {
		t.Fatalf("base = %v, want param a", info.Base)
	}
	if info.Elems != nil {
		t.Error("parameter arrays have unknown size")
	}
}

func TestLoopSideEffects(t *testing.T) {
	m := ir.MustParse(isKernel)
	f := m.Func("is")
	li := FindLoops(f)
	se := LoopSideEffects(li.Loops[0])
	if len(se.Stores) != 1 {
		t.Fatalf("stores = %d, want 1", len(se.Stores))
	}
	if len(se.Calls) != 0 {
		t.Errorf("calls = %d, want 0", len(se.Calls))
	}
	if se.UnknownStore {
		t.Error("store base should be identified")
	}
	allocB := f.Block("entry").Instrs[1]
	allocA := f.Block("entry").Instrs[0]
	if !se.MayBeClobbered(allocB) {
		t.Error("b is stored to; should be clobbered")
	}
	if se.MayBeClobbered(allocA) {
		t.Error("a is never stored; should not be clobbered")
	}
}

func TestIsLoopInvariant(t *testing.T) {
	m := ir.MustParse(isKernel)
	f := m.Func("is")
	li := FindLoops(f)
	l := li.Loops[0]
	if !IsLoopInvariant(f.Param("n"), l) {
		t.Error("parameter should be invariant")
	}
	if !IsLoopInvariant(ir.ConstInt(3), l) {
		t.Error("constant should be invariant")
	}
	allocA := f.Block("entry").Instrs[0]
	if !IsLoopInvariant(allocA, l) {
		t.Error("alloc outside loop should be invariant")
	}
	load := f.Block("body").Instrs[1]
	if IsLoopInvariant(load, l) {
		t.Error("load in loop body should not be invariant")
	}
}

func TestPureFunctions(t *testing.T) {
	src := `module m
func hash(%x: i64) -> i64 {
entry:
  %h = mul %x, 2654435761
  %h2 = xor %h, %x
  ret %h2
}

func hash2(%x: i64) -> i64 {
entry:
  %h = call i64 @hash(%x)
  ret %h
}

func writer(%p: ptr, %x: i64) -> void {
entry:
  store i64, %p, %x
  ret
}

func caller(%p: ptr, %x: i64) -> void {
entry:
  call void @writer(%p, %x)
  ret
}
`
	m := ir.MustParse(src)
	info := PureFunctions(m)
	if !info.IsPure("hash") {
		t.Error("hash should be pure")
	}
	if !info.IsPure("hash2") {
		t.Error("hash2 (calls pure) should be pure")
	}
	if info.IsPure("writer") {
		t.Error("writer stores; not pure")
	}
	if info.IsPure("caller") {
		t.Error("caller calls impure; not pure")
	}
	if info.IsPure("missing") {
		t.Error("unknown functions are not pure")
	}
}

func TestMultipleLatches(t *testing.T) {
	src := `module m
func f(%n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, l1: %a, l2: %b]
  %c = cmp lt %i, %n
  cbr %c, mid, exit
mid:
  %e = rem %i, 2
  cbr %e, l1, l2
l1:
  %a = add %i, 1
  br header
l2:
  %b = add %i, 2
  br header
exit:
  ret
}
`
	li := FindLoops(ir.MustParse(src).Func("f"))
	if len(li.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if len(l.Latches) != 2 {
		t.Errorf("latches = %d, want 2", len(l.Latches))
	}
	// Two different back-edge values: not a canonical IV.
	if l.IndVar != nil {
		t.Error("multi-latch phi should not be canonical IV")
	}
}
