package analysis

import "repro/internal/ir"

// AllocInfo describes what is known about the allocation underlying a
// pointer value.
type AllocInfo struct {
	// Base is the alloc instruction or pointer parameter the address is
	// derived from, or nil when the base cannot be identified.
	Base ir.Value
	// Elems is the element count of the allocation when Base is an
	// alloc with a constant or traceable element count, else nil.
	Elems ir.Value
	// ElemSize is the element size in bytes (valid when Elems != nil).
	ElemSize int64
}

// PointerBase walks back through GEPs and phi-free pointer arithmetic to
// find the base allocation of an address value, mirroring §4.2's "walking
// back through the data dependence graph can identify the memory
// allocation instruction which generated the array".
func PointerBase(addr ir.Value) AllocInfo {
	v := addr
	for {
		in, isInstr := v.(*ir.Instr)
		if !isInstr {
			if p, isParam := v.(*ir.Param); isParam && p.Typ == ir.Ptr {
				return AllocInfo{Base: p}
			}
			return AllocInfo{}
		}
		switch in.Op {
		case ir.OpAlloc:
			return AllocInfo{
				Base:     in,
				Elems:    in.Args[0],
				ElemSize: constVal(in.Args[1]),
			}
		case ir.OpGEP:
			v = in.Args[0]
		case ir.OpAdd, ir.OpSub:
			// Pointer arithmetic: follow the pointer-typed operand.
			if in.Args[0].Type() == ir.Ptr {
				v = in.Args[0]
			} else if in.Args[1].Type() == ir.Ptr {
				v = in.Args[1]
			} else {
				return AllocInfo{}
			}
		case ir.OpSelect, ir.OpMin, ir.OpMax:
			// Conservative: bases may differ between arms.
			a := PointerBase(in.Args[len(in.Args)-2])
			b := PointerBase(in.Args[len(in.Args)-1])
			if a.Base != nil && a.Base == b.Base {
				return a
			}
			return AllocInfo{}
		default:
			return AllocInfo{}
		}
	}
}

func constVal(v ir.Value) int64 {
	if c, ok := v.(*ir.Const); ok {
		return c.Val
	}
	return 0
}

// SideEffects summarises the memory behaviour of a loop body.
type SideEffects struct {
	// Stores lists the store instructions in the loop.
	Stores []*ir.Instr
	// Calls lists the call instructions in the loop.
	Calls []*ir.Instr
	// StoredBases is the set of allocation bases written by the loop
	// (nil entries are dropped; UnknownStore covers them).
	StoredBases map[ir.Value]bool
	// UnknownStore is set when some store's base allocation could not
	// be identified; any load must then be assumed clobbered.
	UnknownStore bool
}

// LoopSideEffects scans every block of the loop (including nested loops)
// and summarises its stores and calls.
func LoopSideEffects(l *Loop) SideEffects {
	se := SideEffects{StoredBases: map[ir.Value]bool{}}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				se.Stores = append(se.Stores, in)
				base := PointerBase(in.Args[0]).Base
				if base == nil {
					se.UnknownStore = true
				} else {
					se.StoredBases[base] = true
				}
			case ir.OpCall:
				se.Calls = append(se.Calls, in)
			}
		}
	}
	return se
}

// MayBeClobbered reports whether a load from the given base allocation
// may observe a value written by the loop. Used by §4.2's rule: "only
// proceed with prefetching if we do not find stores to data structures
// that are used to generate load addresses".
func (se *SideEffects) MayBeClobbered(base ir.Value) bool {
	if se.UnknownStore {
		return true
	}
	if base == nil {
		return len(se.StoredBases) > 0
	}
	return se.StoredBases[base]
}

// SideEffectInfo classifies functions of a module by side-effect
// freedom: a function is pure if it contains no stores, no prefetches
// and only calls to pure functions. The prefetch pass uses this to
// decide whether a call may appear in duplicated address-generation
// code (§4.1 permits side-effect-free calls in principle; our
// implementation, like the paper's prototype, rejects calls but the
// classification is exposed for the extension and for diagnostics).
type SideEffectInfo struct {
	pure map[string]bool
}

// PureFunctions computes side-effect freedom for every function in m.
func PureFunctions(m *ir.Module) *SideEffectInfo {
	info := &SideEffectInfo{pure: map[string]bool{}}
	// Iterate to a fixed point: purity requires callees to be pure.
	for _, f := range m.Funcs {
		info.pure[f.Name] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if !info.pure[f.Name] {
				continue
			}
			bad := false
			f.Instrs(func(in *ir.Instr) {
				switch in.Op {
				case ir.OpStore, ir.OpAlloc:
					bad = true
				case ir.OpCall:
					if !info.pure[in.Callee] {
						bad = true
					}
				}
			})
			if bad {
				info.pure[f.Name] = false
				changed = true
			}
		}
	}
	return info
}

// IsPure reports whether the named function is side-effect free.
func (s *SideEffectInfo) IsPure(name string) bool { return s.pure[name] }
