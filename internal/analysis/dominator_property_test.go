package analysis

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// randomCFG builds a random but well-formed function: n blocks, each
// terminated by a branch to one or two random successors (or a return),
// with the entry first. No values — pure control flow.
func randomCFG(r *rand.Rand) *ir.Function {
	m := ir.NewModule("cfg")
	f := m.NewFunc("f", ir.Void, &ir.Param{Name: "c", Typ: ir.I64})
	n := 2 + r.Intn(10)
	blocks := make([]*ir.Block, n)
	b := ir.NewBuilder(f)
	blocks[0] = b.Block()
	for i := 1; i < n; i++ {
		blocks[i] = b.NewBlock(fmt.Sprintf("b%d", i))
	}
	for i, blk := range blocks {
		b.SetBlock(blk)
		switch r.Intn(3) {
		case 0:
			b.Ret(nil)
		case 1:
			b.Br(blocks[r.Intn(n)])
		default:
			b.CBr(f.Param("c"), blocks[r.Intn(n)], blocks[r.Intn(n)])
		}
		_ = i
	}
	f.Renumber()
	return f
}

// bruteDominates computes dominance by definition: a dominates b iff
// removing a makes b unreachable from the entry.
func bruteDominates(f *ir.Function, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // block a removed: mark visited
	var walk func(x *ir.Block) bool
	walk = func(x *ir.Block) bool {
		if x == b {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs() {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return !walk(f.Entry())
}

func reachable(f *ir.Function) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{}
	var walk func(*ir.Block)
	walk = func(x *ir.Block) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Succs() {
			walk(s)
		}
	}
	walk(f.Entry())
	return seen
}

// TestQuickDominatorsMatchBruteForce cross-checks the iterative
// dominator algorithm against the removal-based definition on random
// control-flow graphs.
func TestQuickDominatorsMatchBruteForce(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCFG(r)
		idom := ir.Dominators(f)
		reach := reachable(f)
		for _, a := range f.Blocks {
			if !reach[a] {
				continue
			}
			for _, b := range f.Blocks {
				if !reach[b] {
					continue
				}
				fast := ir.Dominates(idom, a, b)
				slow := bruteDominates(f, a, b)
				if fast != slow {
					t.Logf("seed %d: Dominates(%s, %s) = %v, brute force = %v\n%s",
						seed, a.Name, b.Name, fast, slow, f.String())
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickLoopMembership: every block of a detected loop must reach
// the loop header without leaving the function, and the header must
// dominate every block of its loop.
func TestQuickLoopMembership(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCFG(r)
		idom := ir.Dominators(f)
		li := FindLoops(f)
		for _, l := range li.Loops {
			for blk := range l.Blocks {
				if !ir.Dominates(idom, l.Header, blk) {
					t.Logf("seed %d: header %s does not dominate member %s", seed, l.Header.Name, blk.Name)
					return false
				}
			}
			for _, latch := range l.Latches {
				if !l.Blocks[latch] {
					t.Logf("seed %d: latch outside loop", seed)
					return false
				}
			}
			if l.Parent != nil && !l.Parent.ContainsLoop(l) {
				t.Logf("seed %d: nesting inconsistent", seed)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}
