// Package analysis provides the control-flow and data-flow analyses the
// prefetch-generation pass depends on: dominator-based natural-loop
// detection, canonical induction-variable recognition, allocation-size
// tracking, and loop-body side-effect summaries.
//
// The analyses mirror what the paper's LLVM prototype obtains from
// LoopInfo, ScalarEvolution (restricted to canonical induction
// variables, per §4.2) and simple alias reasoning.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Loop is a natural loop discovered from a back edge. Loops form a
// forest via Parent; Depth is 1 for outermost loops.
type Loop struct {
	Header   *ir.Block
	Latches  []*ir.Block        // blocks with a back edge to Header
	Blocks   map[*ir.Block]bool // all blocks in the loop, including Header
	Parent   *Loop
	Children []*Loop
	Depth    int

	// IndVar is the canonical induction variable phi in Header, if the
	// loop has one: phi [preheader: start, latch: iv+step] with constant
	// step. Nil otherwise.
	IndVar *ir.Instr
	// Step is the induction-variable increment (valid when IndVar != nil).
	Step int64
	// Start is the initial value of the induction variable.
	Start ir.Value
	// Limit is the loop bound when the header's terminator compares the
	// induction variable against a loop-invariant value (nil otherwise).
	Limit ir.Value
	// LimitPred is the comparison predicate used against Limit.
	LimitPred ir.Pred
}

// Contains reports whether the block is inside the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// ContainsLoop reports whether inner is l or nested anywhere inside l.
func (l *Loop) ContainsLoop(inner *Loop) bool {
	for x := inner; x != nil; x = x.Parent {
		if x == l {
			return true
		}
	}
	return false
}

func (l *Loop) String() string {
	return fmt.Sprintf("loop@%s(depth %d)", l.Header.Name, l.Depth)
}

// LoopInfo holds the loop forest of a function.
type LoopInfo struct {
	Loops   []*Loop             // all loops, outermost first within each nest
	ByBlock map[*ir.Block]*Loop // innermost loop containing each block
}

// LoopOf returns the innermost loop containing b, or nil.
func (li *LoopInfo) LoopOf(b *ir.Block) *Loop { return li.ByBlock[b] }

// InnermostCommon returns the innermost loop containing both a and b,
// or nil if none does.
func (li *LoopInfo) InnermostCommon(a, b *ir.Block) *Loop {
	for la := li.LoopOf(a); la != nil; la = la.Parent {
		for lb := li.LoopOf(b); lb != nil; lb = lb.Parent {
			if la == lb {
				return la
			}
		}
	}
	return nil
}

// FindLoops computes the natural-loop forest of f using dominator
// analysis: an edge latch->header where header dominates latch defines
// a loop whose body is every block that can reach the latch without
// passing through the header.
func FindLoops(f *ir.Function) *LoopInfo {
	idom := ir.Dominators(f)
	byHeader := map[*ir.Block]*Loop{}

	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if _, reachable := idom[b]; !reachable {
				continue
			}
			if !ir.Dominates(idom, s, b) {
				continue
			}
			// Back edge b -> s.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b)
			// Collect body: reverse reachability from the latch.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range x.Preds() {
					if _, reachable := idom[p]; reachable {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	li := &LoopInfo{ByBlock: map[*ir.Block]*Loop{}}
	for _, l := range byHeader {
		li.Loops = append(li.Loops, l)
	}
	// Deterministic order: by header position in the function.
	pos := map[*ir.Block]int{}
	for i, b := range f.Blocks {
		pos[b] = i
	}
	sort.Slice(li.Loops, func(i, j int) bool {
		return pos[li.Loops[i].Header] < pos[li.Loops[j].Header]
	})

	// Nesting: parent is the smallest strictly-containing loop.
	for _, l := range li.Loops {
		var best *Loop
		for _, cand := range li.Loops {
			if cand == l || !cand.Blocks[l.Header] {
				continue
			}
			if len(cand.Blocks) <= len(l.Blocks) {
				continue
			}
			if best == nil || len(cand.Blocks) < len(best.Blocks) {
				best = cand
			}
		}
		l.Parent = best
		if best != nil {
			best.Children = append(best.Children, l)
		}
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block.
	for _, l := range li.Loops {
		for b := range l.Blocks {
			if cur := li.ByBlock[b]; cur == nil || l.Depth > cur.Depth {
				li.ByBlock[b] = l
			}
		}
	}
	for _, l := range li.Loops {
		findIndVar(l)
	}
	return li
}

// findIndVar recognises the canonical induction variable of a loop:
// a phi in the header of the form
//
//	iv = phi [outside: start, latch: iv+const]
//
// and, when the header terminator is cbr(cmp(iv, inv)), records the
// loop bound. This is the "canonical form" restriction of §4.2.
func findIndVar(l *Loop) {
	for _, phi := range l.Header.Phis() {
		// Canonical form requires exactly one entry edge and one back edge.
		if len(phi.Incoming) != 2 {
			continue
		}
		var start ir.Value
		var stepVal int64
		ok := true
		sawBack, sawEntry := false, false
		for i, pred := range phi.Incoming {
			v := phi.Args[i]
			if l.Blocks[pred] {
				// Back edge: must be iv + const (or iv - const).
				add, isInstr := v.(*ir.Instr)
				if !isInstr || !l.Blocks[add.Block()] {
					ok = false
					break
				}
				s, isStep := stepOf(add, phi)
				if !isStep {
					ok = false
					break
				}
				stepVal = s
				sawBack = true
			} else {
				start = v
				sawEntry = true
			}
		}
		if !ok || !sawBack || !sawEntry || stepVal == 0 {
			continue
		}
		l.IndVar = phi
		l.Step = stepVal
		l.Start = start
		findLimit(l)
		return
	}
}

// stepOf reports the constant step if in computes phi+c or phi-c.
func stepOf(in *ir.Instr, phi *ir.Instr) (int64, bool) {
	if in.Op != ir.OpAdd && in.Op != ir.OpSub {
		return 0, false
	}
	a, b := in.Args[0], in.Args[1]
	if in.Op == ir.OpAdd {
		if a == ir.Value(phi) {
			if c, isC := b.(*ir.Const); isC {
				return c.Val, true
			}
		}
		if b == ir.Value(phi) {
			if c, isC := a.(*ir.Const); isC {
				return c.Val, true
			}
		}
		return 0, false
	}
	// sub: phi - c only.
	if a == ir.Value(phi) {
		if c, isC := b.(*ir.Const); isC {
			return -c.Val, true
		}
	}
	return 0, false
}

// findLimit records the loop bound from a header of the form
// cbr(cmp(iv, limit), body, exit) with loop-invariant limit.
func findLimit(l *Loop) {
	term := l.Header.Term()
	if term == nil || term.Op != ir.OpCBr {
		return
	}
	cmp, isInstr := term.Args[0].(*ir.Instr)
	if !isInstr || cmp.Op != ir.OpCmp {
		return
	}
	var limit ir.Value
	pred := cmp.Pred
	switch {
	case cmp.Args[0] == ir.Value(l.IndVar):
		limit = cmp.Args[1]
	case cmp.Args[1] == ir.Value(l.IndVar):
		limit = cmp.Args[0]
		pred = swapPred(pred)
	default:
		return
	}
	if !IsLoopInvariant(limit, l) {
		return
	}
	l.Limit = limit
	l.LimitPred = pred
}

func swapPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredLT:
		return ir.PredGT
	case ir.PredLE:
		return ir.PredGE
	case ir.PredGT:
		return ir.PredLT
	case ir.PredGE:
		return ir.PredLE
	case ir.PredULT:
		return ir.PredUGT
	case ir.PredULE:
		return ir.PredUGE
	case ir.PredUGT:
		return ir.PredULT
	case ir.PredUGE:
		return ir.PredULE
	}
	return p
}

// IsLoopInvariant reports whether v is invariant with respect to loop l:
// constants, parameters, and instructions defined outside the loop.
func IsLoopInvariant(v ir.Value, l *Loop) bool {
	in, isInstr := v.(*ir.Instr)
	if !isInstr {
		return true
	}
	return !l.Blocks[in.Block()]
}

// SingleExit reports whether the loop has exactly one exit edge, i.e.
// one (block in loop) -> (block outside loop) transition. The fault-
// avoidance rules of §4.2 require a single loop-termination condition
// when array bounds are taken from the loop limit.
func (l *Loop) SingleExit() bool {
	n := 0
	for b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.Blocks[s] {
				n++
			}
		}
	}
	return n == 1
}
