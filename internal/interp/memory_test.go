package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestMemoryAllocPlacement(t *testing.T) {
	m := NewMemory()
	a, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a+100 {
		t.Errorf("allocations overlap or touch: %d after %d", b, a)
	}
	if b-a-100 < guardGap {
		t.Errorf("guard gap too small: %d", b-a-100)
	}
	if m.BytesAllocated != 200 {
		t.Errorf("BytesAllocated = %d", m.BytesAllocated)
	}
}

func TestMemoryNegativeAllocFaults(t *testing.T) {
	m := NewMemory()
	if _, err := m.Alloc(-1); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestMemoryZeroSizedAlloc(t *testing.T) {
	m := NewMemory()
	base, err := m.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Valid(base, 1) {
		t.Error("zero-sized allocation readable")
	}
}

func TestMemoryStraddlingAccessFaults(t *testing.T) {
	m := NewMemory()
	base, _ := m.Alloc(10)
	// An 8-byte load starting 4 bytes before the end straddles out.
	if _, err := m.Load(base+6, ir.I64); err == nil {
		t.Error("straddling load did not fault")
	}
	if _, err := m.Load(base+2, ir.I64); err != nil {
		t.Errorf("in-bounds load faulted: %v", err)
	}
}

func TestMemoryValidWidths(t *testing.T) {
	m := NewMemory()
	base, _ := m.Alloc(8)
	if !m.Valid(base, 8) {
		t.Error("exact-fit access invalid")
	}
	if m.Valid(base, 9) {
		t.Error("over-long access valid")
	}
	if m.Valid(base-1, 1) {
		t.Error("before-start access valid")
	}
}

// TestQuickMemoryMatchesMap: random stores followed by loads must
// behave like a map of addresses to values, across widths.
func TestQuickMemoryMatchesMap(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		const size = 4096
		base, err := m.Alloc(size)
		if err != nil {
			return false
		}
		ref := make([]byte, size)
		types := []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64}
		for step := 0; step < 200; step++ {
			typ := types[r.Intn(len(types))]
			w := typ.Size()
			off := int64(r.Intn(size - int(w) + 1))
			if r.Intn(2) == 0 {
				v := int64(r.Uint64())
				if err := m.Store(base+off, v, typ); err != nil {
					return false
				}
				for i := int64(0); i < w; i++ {
					ref[off+i] = byte(v >> (8 * i))
				}
			} else {
				got, err := m.Load(base+off, typ)
				if err != nil {
					return false
				}
				var u uint64
				for i := int64(0); i < w; i++ {
					u |= uint64(ref[off+i]) << (8 * i)
				}
				var want int64
				switch typ {
				case ir.I8:
					want = int64(int8(u))
				case ir.I16:
					want = int64(int16(u))
				case ir.I32:
					want = int64(int32(u))
				default:
					want = int64(u)
				}
				if got != want {
					t.Logf("seed %d: load %s at %d = %d, want %d", seed, typ, off, got, want)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestMemoryManyAllocationsSearchable(t *testing.T) {
	m := NewMemory()
	var bases []int64
	for i := 0; i < 200; i++ {
		b, err := m.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
		if err := m.Store(b, int64(i), ir.I64); err != nil {
			t.Fatal(err)
		}
	}
	// Random-order reads hit the right segments.
	for _, i := range []int{199, 0, 57, 123, 3} {
		v, err := m.Load(bases[i], ir.I64)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i) {
			t.Errorf("segment %d holds %d", i, v)
		}
	}
}

// TestSnapshotDetectsChanges: the address-space digest is stable for
// identical histories, changes when any byte changes, and
// distinguishes allocation layouts — the properties the differential
// oracle (internal/gen) relies on to compare final memory images.
func TestSnapshotDetectsChanges(t *testing.T) {
	build := func() *Memory {
		m := NewMemory()
		a, _ := m.Alloc(64)
		b, _ := m.Alloc(128)
		m.Store(a+8, 42, ir.I64)
		m.Store(b, -7, ir.I32)
		return m
	}
	m1, m2 := build(), build()
	if m1.Snapshot() != m2.Snapshot() {
		t.Error("identical histories produce different snapshots")
	}
	base := m1.Snapshot()

	if err := m2.Store(m2.segs[0].base+16, 1, ir.I8); err != nil {
		t.Fatal(err)
	}
	if m2.Snapshot() == base {
		t.Error("snapshot unchanged after a one-byte store")
	}

	// A different allocation layout with the same total bytes differs.
	m3 := NewMemory()
	m3.Alloc(128)
	m3.Alloc(64)
	if m3.Snapshot() == base {
		t.Error("snapshot ignores allocation layout")
	}

	// Peek must not perturb the image.
	before := m1.Snapshot()
	m1.Peek(m1.segs[0].base, 8)
	if m1.Snapshot() != before {
		t.Error("Peek changed the snapshot")
	}
}
