package interp

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

func run(t *testing.T, src, fn string, args ...int64) (int64, *Machine) {
	t.Helper()
	m := ir.MustParse(src)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	mach := New(m, sim.DefaultConfig())
	v, err := mach.Run(fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, mach
}

const arithSrc = `module m
func f(%x: i64, %y: i64) -> i64 {
entry:
  %a = add %x, %y
  %b = mul %a, 3
  %c = sub %b, %y
  %d = div %c, 2
  %e = rem %d, 100
  %f = shl %e, 1
  %g = shr %f, 1
  %h = and %g, 255
  %i = or %h, 256
  %j = xor %i, 5
  %k = min %j, 300
  %l = max %k, 10
  ret %l
}
`

func TestArith(t *testing.T) {
	x, y := int64(10), int64(4)
	a := x + y
	b := a * 3
	c := b - y
	d := c / 2
	e := d % 100
	f := e << 1
	g := f >> 1
	h := g & 255
	i := h | 256
	j := i ^ 5
	k := j
	if 300 < k {
		k = 300
	}
	l := k
	if l < 10 {
		l = 10
	}
	got, _ := run(t, arithSrc, "f", x, y)
	if got != l {
		t.Errorf("f(%d,%d) = %d, want %d", x, y, got, l)
	}
}

func TestQuickArithMatchesGo(t *testing.T) {
	mod := ir.MustParse(arithSrc)
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(x, y int64) bool {
		// Constrain to avoid div-by-zero path (y affects %c only).
		x &= 0xffff
		y = y&0xffff | 1
		mach := New(mod, sim.DefaultConfig())
		got, err := mach.Run("f", x, y)
		if err != nil {
			return false
		}
		a := x + y
		b := a * 3
		c := b - y
		d := c / 2
		e := d % 100
		f := e << 1
		g := f >> 1
		h := g & 255
		i := h | 256
		j := i ^ 5
		k := j
		if 300 < k {
			k = 300
		}
		if k < 10 {
			k = 10
		}
		return got == k
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

const sumSrc = `module m
func sum(%n: i64) -> i64 {
entry:
  %buf = alloc %n, 8
  br fill
fill:
  %i = phi i64 [entry: 0, fbody: %i2]
  %c = cmp lt %i, %n
  cbr %c, fbody, loop
fbody:
  %a = gep %buf, %i, 8
  %sq = mul %i, %i
  store i64, %a, %sq
  %i2 = add %i, 1
  br fill
loop:
  br header
header:
  %j = phi i64 [loop: 0, body: %j2]
  %s = phi i64 [loop: 0, body: %s2]
  %c2 = cmp lt %j, %n
  cbr %c2, body, exit
body:
  %a2 = gep %buf, %j, 8
  %v = load i64, %a2
  %s2 = add %s, %v
  %j2 = add %j, 1
  br header
exit:
  ret %s
}
`

func TestLoopAndMemory(t *testing.T) {
	n := int64(100)
	want := int64(0)
	for i := int64(0); i < n; i++ {
		want += i * i
	}
	got, mach := run(t, sumSrc, "sum", n)
	if got != want {
		t.Errorf("sum(%d) = %d, want %d", n, got, want)
	}
	st := mach.Stats()
	if st.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
	if st.Loads != uint64(n) {
		t.Errorf("loads = %d, want %d", st.Loads, n)
	}
	if st.Stores != uint64(n) {
		t.Errorf("stores = %d, want %d", st.Stores, n)
	}
}

func TestNarrowTypesSignExtend(t *testing.T) {
	src := `module m
func f() -> i64 {
entry:
  %buf = alloc 8, 1
  store i8, %buf, -1
  %v = load i8, %buf
  ret %v
}
`
	got, _ := run(t, src, "f")
	if got != -1 {
		t.Errorf("i8 round trip = %d, want -1", got)
	}
}

func TestI32RoundTrip(t *testing.T) {
	src := `module m
func f(%x: i64) -> i64 {
entry:
  %buf = alloc 4, 4
  %a = gep %buf, 2, 4
  store i32, %a, %x
  %v = load i32, %a
  ret %v
}
`
	m := ir.MustParse(src)
	for _, x := range []int64{0, 1, -1, 1 << 30, -(1 << 30), 2147483647, -2147483648} {
		mach := New(m, sim.DefaultConfig())
		got, err := mach.Run("f", x)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if got != x {
			t.Errorf("i32 round trip of %d = %d", x, got)
		}
	}
}

func TestOutOfBoundsLoadFaults(t *testing.T) {
	src := `module m
func f() -> i64 {
entry:
  %buf = alloc 4, 8
  %a = gep %buf, 100, 8
  %v = load i64, %a
  ret %v
}
`
	m := ir.MustParse(src)
	mach := New(m, sim.DefaultConfig())
	_, err := mach.Run("f")
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want Fault", err)
	}
	if fault.Op != ir.OpLoad {
		t.Errorf("fault op = %s", fault.Op)
	}
}

func TestGuardGapCatchesOverrun(t *testing.T) {
	// One element past the end must fault, not silently read the next
	// allocation.
	src := `module m
func f(%n: i64) -> i64 {
entry:
  %a = alloc %n, 8
  %b = alloc %n, 8
  %addr = gep %a, %n, 8
  %v = load i64, %addr
  ret %v
}
`
	m := ir.MustParse(src)
	mach := New(m, sim.DefaultConfig())
	if _, err := mach.Run("f", 16); err == nil {
		t.Fatal("one-past-end load did not fault")
	}
}

func TestPrefetchNeverFaults(t *testing.T) {
	src := `module m
func f() -> i64 {
entry:
  prefetch 999999999
  ret 7
}
`
	got, mach := run(t, src, "f")
	if got != 7 {
		t.Errorf("got %d", got)
	}
	if mach.Stats().Prefetches != 1 {
		t.Error("prefetch not counted")
	}
	if mach.Core.Hierarchy().SWPrefetches != 0 {
		t.Error("invalid prefetch reached the memory system")
	}
}

func TestDivByZeroFaults(t *testing.T) {
	src := `module m
func f(%x: i64) -> i64 {
entry:
  %v = div 10, %x
  ret %v
}
`
	m := ir.MustParse(src)
	mach := New(m, sim.DefaultConfig())
	if _, err := mach.Run("f", 0); err == nil {
		t.Fatal("division by zero did not fault")
	}
	mach2 := New(m, sim.DefaultConfig())
	if v, err := mach2.Run("f", 2); err != nil || v != 5 {
		t.Fatalf("10/2 = %d, %v", v, err)
	}
}

func TestCalls(t *testing.T) {
	src := `module m
func double(%x: i64) -> i64 {
entry:
  %v = mul %x, 2
  ret %v
}

func f(%x: i64) -> i64 {
entry:
  %a = call i64 @double(%x)
  %b = call i64 @double(%a)
  ret %b
}
`
	got, _ := run(t, src, "f", 5)
	if got != 20 {
		t.Errorf("f(5) = %d, want 20", got)
	}
}

func TestRecursionDepthLimited(t *testing.T) {
	src := `module m
func f(%x: i64) -> i64 {
entry:
  %v = call i64 @f(%x)
  ret %v
}
`
	m := ir.MustParse(src)
	mach := New(m, sim.DefaultConfig())
	_, err := mach.Run("f", 1)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("err = %v, want call depth error", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	src := `module m
func f() -> i64 {
entry:
  br loop
loop:
  br loop
}
`
	m := ir.MustParse(src)
	mach := New(m, sim.DefaultConfig())
	mach.MaxInstrs = 1000
	_, err := mach.Run("f")
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget error", err)
	}
}

func TestSelectAndCmp(t *testing.T) {
	src := `module m
func max3(%a: i64, %b: i64, %c: i64) -> i64 {
entry:
  %ab = cmp gt %a, %b
  %m1 = select %ab, %a, %b
  %mc = cmp gt %m1, %c
  %m2 = select %mc, %m1, %c
  ret %m2
}
`
	m := ir.MustParse(src)
	err := quick.Check(func(a, b, c int64) bool {
		mach := New(m, sim.DefaultConfig())
		got, err := mach.Run("max3", a, b, c)
		if err != nil {
			return false
		}
		want := a
		if b > want {
			want = b
		}
		if c > want {
			want = c
		}
		return got == want
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestPrefetchSemanticsPreserved is the key differential property: the
// prefetch pass must not change any program result. Random indirect
// kernels are run with and without the pass on random inputs.
func TestPrefetchSemanticsPreserved(t *testing.T) {
	const kernel = `module k
func k(%n: i64, %m: i64) -> i64 {
entry:
  %idx = alloc %n, 8
  %dat = alloc %m, 8
  br fill
fill:
  %i = phi i64 [entry: 0, fbody: %i2]
  %c = cmp lt %i, %n
  cbr %c, fbody, fill2
fbody:
  %h1 = mul %i, 2654435761
  %h2 = shr %h1, 5
  %h = rem %h2, %m
  %a = gep %idx, %i, 8
  store i64, %a, %h
  %i2 = add %i, 1
  br fill
fill2:
  br f2h
f2h:
  %j = phi i64 [fill2: 0, f2b: %j2]
  %c2 = cmp lt %j, %m
  cbr %c2, f2b, main
f2b:
  %sq = mul %j, %j
  %a2 = gep %dat, %j, 8
  store i64, %a2, %sq
  %j2 = add %j, 1
  br f2h
main:
  br header
header:
  %q = phi i64 [main: 0, body: %q2]
  %s = phi i64 [main: 0, body: %s2]
  %c3 = cmp lt %q, %n
  cbr %c3, body, exit
body:
  %ia = gep %idx, %q, 8
  %iv = load i64, %ia
  %da = gep %dat, %iv, 8
  %dv = load i64, %da
  %s2 = add %s, %dv
  %q2 = add %q, 1
  br header
exit:
  ret %s
}
`
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int64(r.Intn(200) + 1)
		sz := int64(r.Intn(100) + 1)

		plain := ir.MustParse(kernel)
		v1, err := New(plain, sim.DefaultConfig()).Run("k", n, sz)
		if err != nil {
			t.Logf("plain run: %v", err)
			return false
		}

		pfMod := ir.MustParse(kernel)
		res := prefetch.Run(pfMod, prefetch.Options{C: int64(r.Intn(100) + 1)})
		if len(res["k"].Emitted) == 0 {
			t.Log("pass emitted nothing for the indirect kernel")
			return false
		}
		if err := pfMod.Verify(); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		v2, err := New(pfMod, sim.DefaultConfig()).Run("k", n, sz)
		if err != nil {
			t.Logf("prefetched run faulted: %v", err)
			return false
		}
		return v1 == v2
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestPrefetchingActuallyHelps sanity-checks the whole stack: on an
// in-order core, the prefetched indirect kernel must be substantially
// faster than the plain one.
func TestPrefetchingActuallyHelps(t *testing.T) {
	src := `module k
func k(%n: i64, %m: i64) -> i64 {
entry:
  %idx = alloc %n, 8
  %dat = alloc %m, 8
  br fill
fill:
  %i = phi i64 [entry: 0, fbody: %i2]
  %c = cmp lt %i, %n
  cbr %c, fbody, main
fbody:
  %h1 = mul %i, 40503
  %h = rem %h1, %m
  %a = gep %idx, %i, 8
  store i64, %a, %h
  %i2 = add %i, 1
  br fill
main:
  br header
header:
  %q = phi i64 [main: 0, body: %q2]
  %s = phi i64 [main: 0, body: %s2]
  %c3 = cmp lt %q, %n
  cbr %c3, body, exit
body:
  %ia = gep %idx, %q, 8
  %iv = load i64, %ia
  %da = gep %dat, %iv, 8
  %dv = load i64, %da
  %s2 = add %s, %dv
  %q2 = add %q, 1
  br header
exit:
  ret %s
}
`
	cfg := sim.DefaultConfig()
	cfg.OutOfOrder = false
	cfg.IssueWidth = 2

	n, m := int64(20000), int64(1<<20)

	plain := ir.MustParse(src)
	m1 := New(plain, cfg)
	v1, err := m1.Run("k", n, m)
	if err != nil {
		t.Fatal(err)
	}
	base := m1.Stats().Cycles

	pfMod := ir.MustParse(src)
	prefetch.Run(pfMod, prefetch.DefaultOptions())
	m2 := New(pfMod, cfg)
	v2, err := m2.Run("k", n, m)
	if err != nil {
		t.Fatal(err)
	}
	pf := m2.Stats().Cycles

	if v1 != v2 {
		t.Fatalf("results differ: %d vs %d", v1, v2)
	}
	speedup := base / pf
	if speedup < 1.5 {
		t.Errorf("prefetching speedup on in-order core = %.2fx, want >= 1.5x", speedup)
	}
	t.Logf("in-order indirect-kernel speedup: %.2fx", speedup)
}

func TestStatsOpCounts(t *testing.T) {
	_, mach := run(t, sumSrc, "sum", 10)
	st := mach.Stats()
	if st.OpCounts[ir.OpLoad] != 10 {
		t.Errorf("load count = %d", st.OpCounts[ir.OpLoad])
	}
	if st.OpCounts[ir.OpPhi] == 0 {
		t.Error("phis not counted")
	}
	if st.Executed == 0 || st.Instructions == 0 {
		t.Error("empty stats")
	}
	if st.Executed <= st.Instructions {
		t.Error("Executed should exceed issued (phis are free)")
	}
}

func TestWriteReadSlice(t *testing.T) {
	mem := NewMemory()
	base, err := mem.Alloc(100 * 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{1, -2, 3, 1 << 20}
	if err := mem.WriteSlice(base, ir.I32, vals); err != nil {
		t.Fatal(err)
	}
	got, err := mem.ReadSlice(base, ir.I32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("slice[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

// TestPhiSwapSemantics: two phis that exchange values each iteration
// must be evaluated in parallel, not sequentially.
func TestPhiSwapSemantics(t *testing.T) {
	src := `module m
func f(%n: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %a = phi i64 [entry: 1, body: %b]
  %b = phi i64 [entry: 2, body: %a]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %i2 = add %i, 1
  br header
exit:
  %r = mul %a, 10
  %r2 = add %r, %b
  ret %r2
}
`
	m := ir.MustParse(src)
	// After an even number of iterations a=1,b=2 -> 12; odd -> 21.
	for n, want := range map[int64]int64{0: 12, 1: 21, 2: 12, 5: 21} {
		mach := New(m, sim.DefaultConfig())
		got, err := mach.Run("f", n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("f(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestTimingMonotonicity: adding prefetch instructions may never make
// the simulated result incorrect, and cycle counts must be positive
// and finite across all machine presets.
func TestTimingAcrossPresets(t *testing.T) {
	for _, cfg := range []*sim.Config{sim.DefaultConfig()} {
		mach := New(ir.MustParse(sumSrc), cfg)
		if _, err := mach.Run("sum", 500); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		st := mach.Stats()
		if st.Cycles <= 0 || st.Cycles != st.Cycles /* NaN check */ {
			t.Errorf("%s: bad cycle count %v", cfg.Name, st.Cycles)
		}
		if float64(st.Instructions) > st.Cycles*float64(cfg.IssueWidth)+1 {
			t.Errorf("%s: IPC exceeds issue width: %d instrs in %.0f cycles",
				cfg.Name, st.Instructions, st.Cycles)
		}
	}
}
