package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/sim"
)

// Pre-decoding lowers an ir.Function into a flat micro-op stream once
// per Machine, so the execution loop stops chasing *ir.Instr pointers,
// type-switching on the Value interface, and re-resolving operands on
// every dynamic instruction. The lowered form is semantically identical
// to direct interpretation: uops appear in block order, phi evaluation
// stays a parallel two-phase step, and per-op latencies are the same
// numbers the switch used to fetch from the core configuration.

// Operand kinds. A decoded operand either carries an immediate, or
// names a slot in the frame's parameter/value arrays.
const (
	opdConst uint8 = iota
	opdParam
	opdInstr
	opdMissing // phi operand with no edge from the observed predecessor
)

type operand struct {
	kind uint8
	idx  int32 // parameter index or instruction ID
	imm  int64 // constant value
}

// uop is one decoded instruction. The three fixed operand slots cover
// every opcode except calls, which keep their argument list in xargs.
type uop struct {
	op    ir.Op
	typ   ir.Type // result type; access type for loads/stores
	pred  ir.Pred
	nargs uint8
	id    int32 // destination slot (the instruction's SSA ID)
	tgt0  int32 // branch targets as block indices
	tgt1  int32
	lat   int64 // ALU latency, resolved at decode time

	a0, a1, a2 operand
	xargs      []operand // OpCall argument list (nil otherwise)

	callee   string
	calleeFn *ir.Function // memoized callee resolution; decode() re-checks staleness
}

// dblock is a decoded basic block: the phi section in parallel-copy
// form, then the remaining instructions as a flat uop slice.
type dblock struct {
	name     string
	phiIDs   []int32
	phiNames []string
	// phiArgs[p][k] is the operand flowing into phi k when control
	// arrives from block index p; a nil row means no phi has an edge
	// from that block.
	phiArgs [][]operand
	uops    []uop
}

// dfunc is a decoded function.
type dfunc struct {
	name    string
	numVals int
	blocks  []dblock
}

// decode returns the cached lowering of f, building it on first use.
// The cache is keyed by function identity; a changed instruction count
// (the cheap signature Renumber maintains) forces a re-decode.
func (m *Machine) decode(f *ir.Function) *dfunc {
	if df, ok := m.decoded[f]; ok && df.numVals == f.NumInstrs() {
		return df
	}
	df := decodeFunc(f, m.Core.Config())
	if m.decoded == nil {
		m.decoded = make(map[*ir.Function]*dfunc)
	}
	m.decoded[f] = df
	return df
}

// ClearDecodeCache drops all cached lowerings; call after mutating the
// module between runs on the same Machine.
func (m *Machine) ClearDecodeCache() { m.decoded = nil }

func decodeFunc(f *ir.Function, cfg *sim.Config) *dfunc {
	blkIdx := make(map[*ir.Block]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		blkIdx[b] = int32(i)
	}
	df := &dfunc{name: f.Name, numVals: f.NumInstrs()}
	df.blocks = make([]dblock, len(f.Blocks))
	for i, b := range f.Blocks {
		db := &df.blocks[i]
		db.name = b.Name
		phis := b.Phis()
		for _, phi := range phis {
			db.phiIDs = append(db.phiIDs, int32(phi.ID))
			db.phiNames = append(db.phiNames, phi.Name)
		}
		if len(phis) > 0 {
			db.phiArgs = make([][]operand, len(f.Blocks))
			for pi, pb := range f.Blocks {
				row := make([]operand, len(phis))
				any := false
				for k, phi := range phis {
					if inc := phi.PhiIncoming(pb); inc != nil {
						row[k] = decodeOperand(inc)
						any = true
					} else {
						row[k] = operand{kind: opdMissing}
					}
				}
				if any {
					db.phiArgs[pi] = row
				}
			}
		}
		db.uops = make([]uop, 0, len(b.Instrs)-len(phis))
		for _, in := range b.Instrs[len(phis):] {
			db.uops = append(db.uops, decodeInstr(in, blkIdx, cfg))
		}
	}
	return df
}

func decodeOperand(v ir.Value) operand {
	switch x := v.(type) {
	case *ir.Const:
		return operand{kind: opdConst, imm: x.Val}
	case *ir.Param:
		return operand{kind: opdParam, idx: int32(x.Idx)}
	case *ir.Instr:
		return operand{kind: opdInstr, idx: int32(x.ID)}
	}
	panic(fmt.Sprintf("interp: unknown value kind %T", v))
}

func decodeInstr(in *ir.Instr, blkIdx map[*ir.Block]int32, cfg *sim.Config) uop {
	u := uop{
		op:   in.Op,
		typ:  in.Typ,
		pred: in.Pred,
		id:   int32(in.ID),
		tgt0: -1,
		tgt1: -1,
		lat:  1,
	}
	switch in.Op {
	case ir.OpStore:
		u.typ = ir.StoreType(in)
	case ir.OpMul:
		u.lat = cfg.MulLatency
	case ir.OpDiv, ir.OpRem:
		u.lat = cfg.DivLatency
	case ir.OpCall:
		u.callee = in.Callee
	case ir.OpBr:
		u.tgt0 = blkIdx[in.Targets[0]]
	case ir.OpCBr:
		u.tgt0 = blkIdx[in.Targets[0]]
		u.tgt1 = blkIdx[in.Targets[1]]
	}
	if u.lat == 0 {
		u.lat = 1
	}
	if in.Op == ir.OpCall {
		u.xargs = make([]operand, len(in.Args))
		for i, a := range in.Args {
			u.xargs[i] = decodeOperand(a)
		}
		u.nargs = uint8(len(in.Args))
		return u
	}
	u.nargs = uint8(len(in.Args))
	if len(in.Args) > 0 {
		u.a0 = decodeOperand(in.Args[0])
	}
	if len(in.Args) > 1 {
		u.a1 = decodeOperand(in.Args[1])
	}
	if len(in.Args) > 2 {
		u.a2 = decodeOperand(in.Args[2])
	}
	if len(in.Args) > 3 {
		// No current opcode has more than three fixed operands, but keep
		// the full list rather than silently dropping operands.
		u.xargs = make([]operand, len(in.Args))
		for i, a := range in.Args {
			u.xargs[i] = decodeOperand(a)
		}
	}
	return u
}
