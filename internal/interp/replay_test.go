package interp

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// recordKernel runs the kernel once with recording attached (on cfg)
// and returns the sealed trace plus the direct run's stats.
func recordKernel(t *testing.T, src, fn string, cfg *sim.Config, n int64) (*trace.Trace, Stats) {
	t.Helper()
	mod := ir.MustParse(src)
	mach := New(mod, cfg)
	w := trace.NewWriter()
	mach.RecordTo(w)
	sum, err := mach.Run(fn, n)
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	st := mach.Stats()
	oc := make([]uint64, ir.NumOps)
	copy(oc, st.OpCounts[:])
	return w.Close(trace.Meta{Workload: fn}, trace.Summary{
		Executed: st.Executed, OpCounts: oc,
		Loads: st.Loads, Stores: st.Stores, Prefetches: st.Prefetches,
		Checksum: sum,
	}), st
}

// hierSnapshot flattens the timing-side counters replay must reproduce.
type hierSnapshot struct {
	Stats
	L1Hits, L1Misses, DRAM, SWPF, HWPF, Walks uint64
	StallCycles                               float64
}

func snapshot(st Stats, c sim.CoreModel) hierSnapshot {
	h := c.Hierarchy()
	l1 := h.Caches()[0]
	return hierSnapshot{
		Stats:  st,
		L1Hits: l1.Hits, L1Misses: l1.Misses,
		DRAM: h.DRAMAccesses, SWPF: h.SWPrefetches, HWPF: h.HWPrefetches,
		Walks: h.TLBStats().Walks, StallCycles: h.LoadStallCycles,
	}
}

// directRun interprets the kernel on cfg without recording.
func directRun(t *testing.T, src, fn string, cfg *sim.Config, n int64) hierSnapshot {
	t.Helper()
	mach := New(ir.MustParse(src), cfg)
	if _, err := mach.Run(fn, n); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	return snapshot(mach.Stats(), mach.Core)
}

// replayConfigs covers the behaviours replay must reproduce exactly:
// out-of-order and in-order cores (stall-on-use consumes the replayed
// dependency times), mul/div latency resolution, and a value-
// speculating hardware prefetcher (imp) exercising the memory replica.
func replayConfigs() []*sim.Config {
	ooo := sim.DefaultConfig()

	inorder := sim.DefaultConfig()
	inorder.Name = "generic-inorder"
	inorder.OutOfOrder = false
	inorder.IssueWidth = 2
	inorder.MulLatency = 5
	inorder.DivLatency = 31

	imp := sim.DefaultConfig()
	imp.Name = "generic-imp"
	imp.HWPrefetcher = "imp"

	return []*sim.Config{ooo, inorder, imp}
}

// TestReplayMatchesDirect is the core property of the record/replay
// split: a trace recorded once (on an arbitrary machine) replays on
// every configuration with statistics identical to a direct
// interpretation there — timing counters included, to the last bit.
func TestReplayMatchesDirect(t *testing.T) {
	const n = 1 << 10
	for _, src := range []struct{ name, src, fn string }{
		{"indirect", benchIndirectSrc, "kernel"},
		{"arith", benchArithSrc, "spin"},
	} {
		// Record on the first config; replay everywhere.
		tr, _ := recordKernel(t, src.src, src.fn, replayConfigs()[0], n)
		for _, cfg := range replayConfigs() {
			want := directRun(t, src.src, src.fn, cfg, n)
			c := sim.NewCore(cfg)
			st, err := Replay(tr, c)
			if err != nil {
				t.Fatalf("%s on %s: replay: %v", src.name, cfg.Name, err)
			}
			if got := snapshot(st, c); got != want {
				t.Errorf("%s on %s:\n got %+v\nwant %+v", src.name, cfg.Name, got, want)
			}
		}
	}
}

// TestRecordingDoesNotPerturbRun: attaching the recorder changes no
// statistic of the run it observes.
func TestRecordingDoesNotPerturbRun(t *testing.T) {
	cfg := replayConfigs()[2] // imp: peeks observe recorded memory
	want := directRun(t, benchIndirectSrc, "kernel", cfg, 1<<10)
	mod := ir.MustParse(benchIndirectSrc)
	mach := New(mod, cfg)
	mach.RecordTo(trace.NewWriter())
	if _, err := mach.Run("kernel", 1<<10); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := snapshot(mach.Stats(), mach.Core); got != want {
		t.Errorf("recording perturbed the run:\n got %+v\nwant %+v", got, want)
	}
}

// TestRecordMachineIndependence pins the trace's defining property:
// the recorded bytes do not depend on the machine that recorded them.
func TestRecordMachineIndependence(t *testing.T) {
	var traces []*trace.Trace
	for _, cfg := range replayConfigs() {
		tr, _ := recordKernel(t, benchIndirectSrc, "kernel", cfg, 1<<10)
		traces = append(traces, tr)
	}
	for i := 1; i < len(traces); i++ {
		if !trace.Equal(traces[0], traces[i]) {
			t.Errorf("trace recorded on %s differs from %s",
				replayConfigs()[i].Name, replayConfigs()[0].Name)
		}
	}
}

// TestReplaySerializedRoundTrip: replaying a decoded serialization
// matches replaying the in-memory trace.
func TestReplaySerializedRoundTrip(t *testing.T) {
	cfg := sim.DefaultConfig()
	tr, _ := recordKernel(t, benchIndirectSrc, "kernel", cfg, 1<<10)
	decoded, err := trace.Decode(tr.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c1, c2 := sim.NewCore(cfg), sim.NewCore(cfg)
	st1, err1 := Replay(tr, c1)
	st2, err2 := Replay(decoded, c2)
	if err1 != nil || err2 != nil {
		t.Fatalf("replay: %v / %v", err1, err2)
	}
	if snapshot(st1, c1) != snapshot(st2, c2) {
		t.Error("serialized replay differs from in-memory replay")
	}
}

// TestRunsCounter: the interp-invocation counter observes Run calls.
func TestRunsCounter(t *testing.T) {
	before := Runs()
	mach := New(ir.MustParse(benchArithSrc), sim.DefaultConfig())
	if _, err := mach.Run("spin", 8); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := Runs() - before; got != 1 {
		t.Errorf("Runs() advanced by %d, want 1", got)
	}
}
