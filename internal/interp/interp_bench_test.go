package interp

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

// benchIndirectSrc is an indirect-access kernel, buckets[keys[j]] +=
// data[j] with a checksum: the shape the prefetch pass targets, and a
// dense mix of loads, stores, geps, arithmetic, phis and branches for
// the interpreter loop. Numbers are tracked in BENCH_sim.json.
const benchIndirectSrc = `module bench
func kernel(%n: i64) -> i64 {
entry:
  %keys = alloc %n, 4
  %data = alloc %n, 4
  %buckets = alloc %n, 4
  br init
init:
  %i = phi i64 [entry: 0, init: %i2]
  %r = mul %i, 2654435761
  %r2 = and %r, 1048575
  %k = rem %r2, %n
  %kp = gep %keys, %i, 4
  store i32, %kp, %k
  %dp = gep %data, %i, 4
  store i32, %dp, %i
  %i2 = add %i, 1
  %c = cmp lt %i2, %n
  cbr %c, init, loop
loop:
  %j = phi i64 [init: 0, loop: %j2]
  %acc = phi i64 [init: 0, loop: %acc2]
  %jp = gep %keys, %j, 4
  %kj = load i32, %jp
  %bp = gep %buckets, %kj, 4
  %old = load i32, %bp
  %djp = gep %data, %j, 4
  %dv = load i32, %djp
  %new = add %old, %dv
  store i32, %bp, %new
  %acc2 = add %acc, %new
  %j2 = add %j, 1
  %c2 = cmp lt %j2, %n
  cbr %c2, loop, done
done:
  ret %acc2
}
`

// benchArithSrc is a tight dependent arithmetic loop: no memory system
// involvement beyond the initial block, isolating the uop dispatch loop.
const benchArithSrc = `module bench
func spin(%n: i64) -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [entry: 0, loop: %i2]
  %a = phi i64 [entry: 1, loop: %a4]
  %a2 = mul %a, 6364136223
  %a3 = add %a2, 1442695040
  %a4 = xor %a3, %i
  %i2 = add %i, 1
  %c = cmp lt %i2, %n
  cbr %c, loop, done
done:
  ret %a4
}
`

func benchKernel(b *testing.B, src, fn string, n int64) {
	b.Helper()
	mod := ir.MustParse(src)
	if err := mod.Verify(); err != nil {
		b.Fatalf("verify: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var executed uint64
	for i := 0; i < b.N; i++ {
		mach := New(mod, sim.DefaultConfig())
		if _, err := mach.Run(fn, n); err != nil {
			b.Fatalf("run: %v", err)
		}
		executed = mach.Stats().Executed
	}
	b.ReportMetric(float64(executed), "instrs/op")
}

func BenchmarkInterpIndirect(b *testing.B) {
	benchKernel(b, benchIndirectSrc, "kernel", 1<<12)
}

func BenchmarkInterpArith(b *testing.B) {
	benchKernel(b, benchArithSrc, "spin", 1<<14)
}

// BenchmarkInterpDecodeCache measures repeated Run calls on one
// machine, where the pre-decoded stream is reused wholesale.
func BenchmarkInterpDecodeCache(b *testing.B) {
	mod := ir.MustParse(benchArithSrc)
	mach := New(mod, sim.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mach.Run("spin", 64); err != nil {
			b.Fatalf("run: %v", err)
		}
	}
}
