// Package interp executes IR programs functionally over a simulated
// flat address space while driving a sim.Core timing model, so that a
// program's result and its cycle cost come from one run.
package interp

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Fault is a memory access violation: a load, store or division that
// the original program semantics define as erroneous. Software
// prefetches never raise Faults.
type Fault struct {
	Addr int64
	Op   ir.Op
	Msg  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("interp: fault: %s at address %#x: %s", f.Op, f.Addr, f.Msg)
}

// segment is one allocation in the flat address space.
type segment struct {
	base int64
	data []byte
}

// Memory is a flat 64-bit address space populated by Alloc. Allocations
// are page-aligned with guard gaps, so out-of-bounds accesses fault
// instead of silently hitting a neighbouring array.
type Memory struct {
	segs []segment // sorted by base
	next int64
	last int // index of the most recently hit segment

	// BytesAllocated is the total live allocation size.
	BytesAllocated int64

	// rec, when non-nil, receives an Alloc/Poke trace event for every
	// mutation. The hook lives on Memory rather than Machine because
	// workload executors also mutate memory directly from host Go code
	// (setup writes, inter-run stores) — those must reach the trace for
	// replay to rebuild an identical memory image.
	rec *trace.Writer
}

const (
	memBase  = 1 << 20 // first allocation address
	guardGap = 1 << 14 // space between allocations
)

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{next: memBase}
}

// Alloc reserves size bytes and returns the base address. The space is
// zero-initialised.
func (m *Memory) Alloc(size int64) (int64, error) {
	if size < 0 {
		return 0, &Fault{Op: ir.OpAlloc, Msg: fmt.Sprintf("negative allocation size %d", size)}
	}
	base := m.next
	m.segs = append(m.segs, segment{base: base, data: make([]byte, size)})
	m.next = base + size + guardGap
	// Round up to the next page for realism.
	m.next = (m.next + 4095) &^ 4095
	m.BytesAllocated += size
	if m.rec != nil {
		m.rec.Alloc(size)
	}
	return base, nil
}

// find returns the segment containing [addr, addr+width), or nil.
func (m *Memory) find(addr, width int64) *segment {
	if m.last < len(m.segs) {
		s := &m.segs[m.last]
		if addr >= s.base && addr+width <= s.base+int64(len(s.data)) {
			return s
		}
	}
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].base > addr })
	if i == 0 {
		return nil
	}
	s := &m.segs[i-1]
	if addr >= s.base && addr+width <= s.base+int64(len(s.data)) {
		m.last = i - 1
		return s
	}
	return nil
}

// Valid reports whether [addr, addr+width) lies inside an allocation.
func (m *Memory) Valid(addr, width int64) bool { return m.find(addr, width) != nil }

// Load reads a little-endian, sign-extended value of the given type.
func (m *Memory) Load(addr int64, t ir.Type) (int64, error) {
	w := t.Size()
	s := m.find(addr, w)
	if s == nil {
		return 0, &Fault{Addr: addr, Op: ir.OpLoad, Msg: "unmapped address"}
	}
	off := addr - s.base
	// Sign-extend narrower types, matching C's int semantics in the
	// benchmarks the paper uses.
	switch t {
	case ir.I8:
		return int64(int8(s.data[off])), nil
	case ir.I16:
		return int64(int16(binary.LittleEndian.Uint16(s.data[off:]))), nil
	case ir.I32:
		return int64(int32(binary.LittleEndian.Uint32(s.data[off:]))), nil
	case ir.I64, ir.Ptr:
		return int64(binary.LittleEndian.Uint64(s.data[off:])), nil
	}
	return 0, nil // zero-width access
}

// Peek reads a little-endian, sign-extended value of width bytes
// without faulting: ok is false for unmapped addresses or odd widths.
// It backs the hardware-prefetcher peek hook (hwpf.PeekFunc) — a
// value-speculating model like IMP inspecting data the hierarchy
// fetched — so it must never affect program semantics or timing.
func (m *Memory) Peek(addr, width int64) (int64, bool) {
	s := m.find(addr, width)
	if s == nil {
		return 0, false
	}
	off := addr - s.base
	switch width {
	case 1:
		return int64(int8(s.data[off])), true
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(s.data[off:]))), true
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(s.data[off:]))), true
	case 8:
		return int64(binary.LittleEndian.Uint64(s.data[off:])), true
	}
	return 0, false
}

// Store writes a little-endian value of the given type.
func (m *Memory) Store(addr int64, val int64, t ir.Type) error {
	w := t.Size()
	s := m.find(addr, w)
	if s == nil {
		return &Fault{Addr: addr, Op: ir.OpStore, Msg: "unmapped address"}
	}
	off := addr - s.base
	switch w {
	case 1:
		s.data[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(s.data[off:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(s.data[off:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(s.data[off:], uint64(val))
	}
	if m.rec != nil {
		m.rec.Poke(addr, int(w), val)
	}
	return nil
}

// WriteSlice bulk-initialises memory at base with 64-bit values scaled
// to the element type — the loader for workload data generators.
func (m *Memory) WriteSlice(base int64, t ir.Type, vals []int64) error {
	w := t.Size()
	for i, v := range vals {
		if err := m.Store(base+int64(i)*w, v, t); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a SHA-256 digest of the full address-space image:
// every segment's base, length and contents, in allocation order. Two
// runs that performed the same allocations and left behind the same
// bytes produce equal snapshots, which is how the differential oracle
// (internal/gen) asserts that the prefetch pass preserved the final
// memory image — prefetches must never change architectural state.
func (m *Memory) Snapshot() [sha256.Size]byte {
	h := sha256.New()
	var hdr [16]byte
	for i := range m.segs {
		s := &m.segs[i]
		binary.LittleEndian.PutUint64(hdr[0:], uint64(s.base))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(len(s.data)))
		h.Write(hdr[:])
		h.Write(s.data)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// ReadSlice reads n values of the element type starting at base.
func (m *Memory) ReadSlice(base int64, t ir.Type, n int64) ([]int64, error) {
	w := t.Size()
	out := make([]int64, n)
	for i := int64(0); i < n; i++ {
		v, err := m.Load(base+int64(i)*w, t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
