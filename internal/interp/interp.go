package interp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Stats aggregates the dynamic behaviour of one run.
type Stats struct {
	Cycles       float64
	Instructions uint64 // issued by the core (excludes phis)
	Executed     uint64 // interpreted instructions (includes phis)
	OpCounts     [ir.NumOps]uint64
	Loads        uint64
	Stores       uint64
	Prefetches   uint64
}

// Machine runs IR programs against a simulated core. Functions are
// lowered to a flat micro-op stream on first execution and the decoded
// form is cached on the machine (see predecode.go), so repeated runs
// and hot loops pay no per-instruction IR traversal cost.
type Machine struct {
	Mod  *ir.Module
	Core sim.CoreModel
	Mem  *Memory

	// MaxInstrs bounds the dynamic instruction count (0 = 2^40),
	// guarding against runaway loops in generated code.
	MaxInstrs uint64

	stats Stats

	// decoded caches the per-function lowering; phiV/phiR are scratch
	// buffers for the parallel phi copy (phi evaluation never nests, so
	// one machine-wide pair suffices even across calls).
	decoded map[*ir.Function]*dfunc
	phiV    []int64
	phiR    []float64

	// Recording mode (RecordTo). rec receives one event per core call;
	// phiS/depBuf are scratch for readiness-source propagation and
	// dependency-set gathering; retSrc threads the returned value's
	// source through OpCall like the (value, readiness) pair is
	// threaded through call's return values.
	rec    *trace.Writer
	phiS   []int64
	depBuf []int64
	retSrc int64
}

// runs counts Machine.Run invocations process-wide — the
// interp-invocation counter replay amortization tests assert against:
// a full-grid sweep in replay mode must interpret each (workload,
// variant) exactly once, however many machine × hwpf cells it retimes.
var runs atomic.Uint64

// Runs returns the process-wide count of Machine.Run invocations.
func Runs() uint64 { return runs.Load() }

// New builds a machine for the module on the given core configuration;
// the core timing model is whatever cfg.Core selects (empty = the
// legacy interval model).
func New(mod *ir.Module, cfg *sim.Config) *Machine {
	m := &Machine{
		Mod:  mod,
		Core: sim.NewCoreModel(cfg),
		Mem:  NewMemory(),
	}
	m.Core.Hierarchy().SetPeek(m.Mem.Peek)
	return m
}

// NewOnCore builds a machine over an existing simulator core, resetting
// the core to a cold state first. This is the storage-recycling entry
// point for worker pools (internal/sweep): the core's Reset paths keep
// their cache/TLB/MSHR table allocations, so a goroutine running many
// independent experiments reuses one set of tables per machine
// configuration instead of reallocating them every run. Behaviour is
// identical to New with a freshly built core.
func NewOnCore(mod *ir.Module, core sim.CoreModel) *Machine {
	core.Reset()
	m := &Machine{
		Mod:  mod,
		Core: core,
		Mem:  NewMemory(),
	}
	// Re-point the prefetcher peek hook at this machine's memory; the
	// recycled core last peeked into the previous run's address space.
	m.Core.Hierarchy().SetPeek(m.Mem.Peek)
	return m
}

// RecordTo attaches a trace writer: every subsequent core-visible
// event (ops, loads, stores, prefetches, branches, finish) and every
// simulated-memory mutation is mirrored into w, producing a trace that
// interp.Replay can retime on any machine configuration. Recording
// changes nothing about the run itself — the same core calls happen
// with the same arguments — it only tracks, per SSA slot, which trace
// event produced the slot's readiness time, so events can carry
// machine-independent dependency sets instead of timestamps. Pass nil
// to detach.
func (m *Machine) RecordTo(w *trace.Writer) {
	m.rec = w
	m.Mem.rec = w
}

// Stats returns the accumulated statistics.
func (m *Machine) Stats() Stats {
	m.stats.Cycles = m.Core.Cycles()
	m.stats.Instructions = m.Core.CoreStats().Instructions
	return m.stats
}

const maxCallDepth = 64

// Run executes the named function with the given arguments and returns
// its result. Timing accumulates across calls; use a fresh Machine (or
// Core.Reset) for independent measurements.
func (m *Machine) Run(name string, args ...int64) (int64, error) {
	f := m.Mod.Func(name)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s takes %d arguments, got %d", name, len(f.Params), len(args))
	}
	if m.MaxInstrs == 0 {
		m.MaxInstrs = 1 << 40
	}
	runs.Add(1)
	ready := make([]float64, len(args))
	var src []int64
	if m.rec != nil {
		src = make([]int64, len(args))
		for i := range src {
			src[i] = -1 // arguments are ready at time zero
		}
	}
	v, _, err := m.call(m.decode(f), args, ready, src, 0)
	if err != nil {
		return 0, err
	}
	m.Core.Finish()
	if m.rec != nil {
		m.rec.Finish()
	}
	return v, nil
}

// frame holds one activation: SSA value/readiness slots plus the
// incoming arguments. Operands are pre-resolved slot references (see
// predecode.go), so reading one is an array index, not an interface
// type switch.
type frame struct {
	vals      []int64
	ready     []float64
	args      []int64
	argsReady []float64

	// src/argsSrc mirror ready/argsReady with the trace value-index
	// that produced each readiness time (-1 = ready at time zero).
	// Allocated only while recording.
	src     []int64
	argsSrc []int64
}

// get returns the runtime value and readiness time of an operand.
func (fr *frame) get(o operand) (int64, float64) {
	switch o.kind {
	case opdConst:
		return o.imm, 0
	case opdParam:
		return fr.args[o.idx], fr.argsReady[o.idx]
	}
	return fr.vals[o.idx], fr.ready[o.idx]
}

// readyOf returns just the readiness time of an operand.
func (fr *frame) readyOf(o operand) float64 {
	switch o.kind {
	case opdConst:
		return 0
	case opdParam:
		return fr.argsReady[o.idx]
	}
	return fr.ready[o.idx]
}

// srcOf returns the trace value-index that produced the operand's
// readiness (-1 = ready at time zero). Recording mode only.
func (fr *frame) srcOf(o operand) int64 {
	switch o.kind {
	case opdConst:
		return -1
	case opdParam:
		return fr.argsSrc[o.idx]
	}
	return fr.src[o.idx]
}

// recDeps gathers the dependency set of a uop: the sources of its
// operands, in operand order, skipping time-zero ones — exactly the
// inputs of the opsReady max the timing calls receive. The returned
// slice is machine-owned scratch, consumed synchronously by the
// writer.
func (m *Machine) recDeps(fr *frame, u *uop) []int64 {
	deps := m.depBuf[:0]
	if u.xargs != nil {
		for _, o := range u.xargs {
			if s := fr.srcOf(o); s >= 0 {
				deps = append(deps, s)
			}
		}
	} else {
		if u.nargs > 0 {
			if s := fr.srcOf(u.a0); s >= 0 {
				deps = append(deps, s)
			}
		}
		if u.nargs > 1 {
			if s := fr.srcOf(u.a1); s >= 0 {
				deps = append(deps, s)
			}
		}
		if u.nargs > 2 {
			if s := fr.srcOf(u.a2); s >= 0 {
				deps = append(deps, s)
			}
		}
	}
	m.depBuf = deps
	return deps
}

// call executes one decoded function activation: the flat uop loop that
// replaces per-instruction IR traversal.
func (m *Machine) call(df *dfunc, args []int64, argsReady []float64, argsSrc []int64, depth int) (int64, float64, error) {
	if depth > maxCallDepth {
		return 0, 0, fmt.Errorf("interp: call depth exceeded in %s", df.name)
	}
	fr := frame{
		vals:      make([]int64, df.numVals),
		ready:     make([]float64, df.numVals),
		args:      args,
		argsReady: argsReady,
		argsSrc:   argsSrc,
	}
	if m.rec != nil {
		// Slots default to source 0, but SSA def-before-use (ir.Verify)
		// guarantees no slot is read before it is written, same as vals.
		fr.src = make([]int64, df.numVals)
	}

	bi, prev := int32(0), int32(-1)
blocks:
	for {
		b := &df.blocks[bi]

		// Phase 1: evaluate phis in parallel against the incoming edge.
		if n := len(b.phiIDs); n > 0 {
			var row []operand
			if prev >= 0 {
				row = b.phiArgs[prev]
			}
			if cap(m.phiV) < n {
				m.phiV = make([]int64, n)
				m.phiR = make([]float64, n)
				m.phiS = make([]int64, n)
			}
			tmpV, tmpR := m.phiV[:n], m.phiR[:n]
			for i := 0; i < n; i++ {
				if row == nil || row[i].kind == opdMissing {
					prevName := "<entry>"
					if prev >= 0 {
						prevName = df.blocks[prev].name
					}
					return 0, 0, fmt.Errorf("interp: phi %%%s has no edge from %s", b.phiNames[i], prevName)
				}
				tmpV[i], tmpR[i] = fr.get(row[i])
			}
			if m.rec != nil {
				// Phis are parallel copies with no core call: propagate
				// the readiness source alongside the readiness time.
				tmpS := m.phiS[:n]
				for i := 0; i < n; i++ {
					tmpS[i] = fr.srcOf(row[i])
				}
				for i := 0; i < n; i++ {
					fr.src[b.phiIDs[i]] = tmpS[i]
				}
			}
			for i := 0; i < n; i++ {
				fr.vals[b.phiIDs[i]] = tmpV[i]
				fr.ready[b.phiIDs[i]] = tmpR[i]
				m.stats.Executed++
				m.stats.OpCounts[ir.OpPhi]++
			}
		}

		for ui := range b.uops {
			u := &b.uops[ui]
			if m.stats.Executed >= m.MaxInstrs {
				return 0, 0, fmt.Errorf("interp: instruction budget (%d) exhausted in %s", m.MaxInstrs, df.name)
			}
			m.stats.Executed++
			m.stats.OpCounts[u.op]++

			// Latest readiness among the operands.
			var opsReady float64
			if u.xargs != nil {
				for _, o := range u.xargs {
					if r := fr.readyOf(o); r > opsReady {
						opsReady = r
					}
				}
			} else {
				if u.nargs > 0 {
					opsReady = fr.readyOf(u.a0)
				}
				if u.nargs > 1 {
					if r := fr.readyOf(u.a1); r > opsReady {
						opsReady = r
					}
				}
				if u.nargs > 2 {
					if r := fr.readyOf(u.a2); r > opsReady {
						opsReady = r
					}
				}
			}

			switch u.op {
			case ir.OpAlloc:
				elems, _ := fr.get(u.a0)
				esize, _ := fr.get(u.a1)
				base, aerr := m.Mem.Alloc(elems * esize)
				if aerr != nil {
					return 0, 0, aerr
				}
				fr.vals[u.id] = base
				fr.ready[u.id] = m.Core.Op(opsReady, 1)
				if m.rec != nil {
					fr.src[u.id] = m.rec.Op(trace.Lat1, m.recDeps(&fr, u))
				}

			case ir.OpLoad:
				addr, _ := fr.get(u.a0)
				v, lerr := m.Mem.Load(addr, u.typ)
				if lerr != nil {
					return 0, 0, lerr
				}
				m.stats.Loads++
				fr.vals[u.id] = v
				fr.ready[u.id] = m.Core.Load(int(u.id), addr, opsReady)
				if m.rec != nil {
					fr.src[u.id] = m.rec.Load(int(u.id), addr, m.recDeps(&fr, u))
				}

			case ir.OpStore:
				addr, _ := fr.get(u.a0)
				v, _ := fr.get(u.a1)
				if serr := m.Mem.Store(addr, v, u.typ); serr != nil {
					return 0, 0, serr
				}
				m.stats.Stores++
				m.Core.Store(int(u.id), addr, opsReady)
				if m.rec != nil {
					m.rec.Store(int(u.id), addr, m.recDeps(&fr, u))
				}

			case ir.OpPrefetch:
				addr, _ := fr.get(u.a0)
				m.stats.Prefetches++
				valid := m.Mem.Valid(addr, 1)
				m.Core.Prefetch(int(u.id), addr, opsReady, valid)
				if m.rec != nil {
					m.rec.Prefetch(int(u.id), addr, valid, m.recDeps(&fr, u))
				}

			case ir.OpGEP:
				base, _ := fr.get(u.a0)
				idx, _ := fr.get(u.a1)
				scale, _ := fr.get(u.a2)
				fr.vals[u.id] = base + idx*scale
				fr.ready[u.id] = m.Core.Op(opsReady, 1)
				if m.rec != nil {
					fr.src[u.id] = m.rec.Op(trace.Lat1, m.recDeps(&fr, u))
				}

			case ir.OpCmp:
				a, _ := fr.get(u.a0)
				bv, _ := fr.get(u.a1)
				if u.pred.Eval(a, bv) {
					fr.vals[u.id] = 1
				} else {
					fr.vals[u.id] = 0
				}
				fr.ready[u.id] = m.Core.Op(opsReady, 1)
				if m.rec != nil {
					fr.src[u.id] = m.rec.Op(trace.Lat1, m.recDeps(&fr, u))
				}

			case ir.OpSelect:
				c, _ := fr.get(u.a0)
				a, _ := fr.get(u.a1)
				bv, _ := fr.get(u.a2)
				if c != 0 {
					fr.vals[u.id] = a
				} else {
					fr.vals[u.id] = bv
				}
				fr.ready[u.id] = m.Core.Op(opsReady, 1)
				if m.rec != nil {
					fr.src[u.id] = m.rec.Op(trace.Lat1, m.recDeps(&fr, u))
				}

			case ir.OpCall:
				callee := u.calleeFn
				if callee == nil {
					if callee = m.Mod.Func(u.callee); callee == nil {
						return 0, 0, fmt.Errorf("interp: call to undefined @%s", u.callee)
					}
					u.calleeFn = callee
				}
				cdf := m.decode(callee)
				cargs := make([]int64, len(u.xargs))
				cready := make([]float64, len(u.xargs))
				var csrc []int64
				for i, o := range u.xargs {
					cargs[i], cready[i] = fr.get(o)
				}
				m.Core.Op(opsReady, 1) // call overhead
				if m.rec != nil {
					m.rec.Op(trace.Lat1, m.recDeps(&fr, u))
					csrc = make([]int64, len(u.xargs))
					for i, o := range u.xargs {
						csrc[i] = fr.srcOf(o)
					}
				}
				v, r, cerr := m.call(cdf, cargs, cready, csrc, depth+1)
				if cerr != nil {
					return 0, 0, cerr
				}
				fr.vals[u.id] = v
				fr.ready[u.id] = r
				if m.rec != nil {
					fr.src[u.id] = m.retSrc
				}

			case ir.OpBr:
				m.Core.Branch(opsReady, false)
				if m.rec != nil {
					m.rec.Branch(false, m.recDeps(&fr, u))
				}
				prev, bi = bi, u.tgt0
				continue blocks

			case ir.OpCBr:
				c, _ := fr.get(u.a0)
				m.Core.Branch(opsReady, true)
				if m.rec != nil {
					m.rec.Branch(true, m.recDeps(&fr, u))
				}
				if c != 0 {
					prev, bi = bi, u.tgt0
				} else {
					prev, bi = bi, u.tgt1
				}
				continue blocks

			case ir.OpRet:
				m.Core.Op(opsReady, 1)
				if m.rec != nil {
					m.rec.Op(trace.Lat1, m.recDeps(&fr, u))
					m.retSrc = -1
					if u.nargs == 1 {
						m.retSrc = fr.srcOf(u.a0)
					}
				}
				if u.nargs == 1 {
					v, r := fr.get(u.a0)
					return v, r, nil
				}
				return 0, 0, nil

			default:
				// Binary arithmetic; latency was resolved at decode time.
				a, _ := fr.get(u.a0)
				bv, _ := fr.get(u.a1)
				var v int64
				switch u.op {
				case ir.OpAdd:
					v = a + bv
				case ir.OpSub:
					v = a - bv
				case ir.OpMul:
					v = a * bv
				case ir.OpDiv:
					if bv == 0 {
						return 0, 0, &Fault{Op: ir.OpDiv, Msg: "division by zero"}
					}
					v = a / bv
				case ir.OpRem:
					if bv == 0 {
						return 0, 0, &Fault{Op: ir.OpRem, Msg: "division by zero"}
					}
					v = a % bv
				case ir.OpAnd:
					v = a & bv
				case ir.OpOr:
					v = a | bv
				case ir.OpXor:
					v = a ^ bv
				case ir.OpShl:
					v = a << (uint64(bv) & 63)
				case ir.OpShr:
					v = int64(uint64(a) >> (uint64(bv) & 63))
				case ir.OpMin:
					v = a
					if bv < a {
						v = bv
					}
				case ir.OpMax:
					v = a
					if bv > a {
						v = bv
					}
				default:
					return 0, 0, fmt.Errorf("interp: unimplemented opcode %s", u.op)
				}
				fr.vals[u.id] = v
				fr.ready[u.id] = m.Core.Op(opsReady, u.lat)
				if m.rec != nil {
					// Record the latency class, not u.lat: multiply and
					// divide latencies are machine configuration, which
					// must not leak into the (machine-independent) trace.
					class := trace.Lat1
					switch u.op {
					case ir.OpMul:
						class = trace.LatMul
					case ir.OpDiv, ir.OpRem:
						class = trace.LatDiv
					}
					fr.src[u.id] = m.rec.Op(class, m.recDeps(&fr, u))
				}
			}
		}
		return 0, 0, fmt.Errorf("interp: block %s fell through without terminator", b.name)
	}
}
