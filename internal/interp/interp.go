package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/sim"
)

// Stats aggregates the dynamic behaviour of one run.
type Stats struct {
	Cycles       float64
	Instructions uint64 // issued by the core (excludes phis)
	Executed     uint64 // interpreted instructions (includes phis)
	OpCounts     [ir.NumOps]uint64
	Loads        uint64
	Stores       uint64
	Prefetches   uint64
}

// Machine runs IR programs against a simulated core. Functions are
// lowered to a flat micro-op stream on first execution and the decoded
// form is cached on the machine (see predecode.go), so repeated runs
// and hot loops pay no per-instruction IR traversal cost.
type Machine struct {
	Mod  *ir.Module
	Core *sim.Core
	Mem  *Memory

	// MaxInstrs bounds the dynamic instruction count (0 = 2^40),
	// guarding against runaway loops in generated code.
	MaxInstrs uint64

	stats Stats

	// decoded caches the per-function lowering; phiV/phiR are scratch
	// buffers for the parallel phi copy (phi evaluation never nests, so
	// one machine-wide pair suffices even across calls).
	decoded map[*ir.Function]*dfunc
	phiV    []int64
	phiR    []float64
}

// New builds a machine for the module on the given core configuration.
func New(mod *ir.Module, cfg *sim.Config) *Machine {
	m := &Machine{
		Mod:  mod,
		Core: sim.NewCore(cfg),
		Mem:  NewMemory(),
	}
	m.Core.Hierarchy().SetPeek(m.Mem.Peek)
	return m
}

// NewOnCore builds a machine over an existing simulator core, resetting
// the core to a cold state first. This is the storage-recycling entry
// point for worker pools (internal/sweep): the core's Reset paths keep
// their cache/TLB/MSHR table allocations, so a goroutine running many
// independent experiments reuses one set of tables per machine
// configuration instead of reallocating them every run. Behaviour is
// identical to New with a freshly built core.
func NewOnCore(mod *ir.Module, core *sim.Core) *Machine {
	core.Reset()
	m := &Machine{
		Mod:  mod,
		Core: core,
		Mem:  NewMemory(),
	}
	// Re-point the prefetcher peek hook at this machine's memory; the
	// recycled core last peeked into the previous run's address space.
	m.Core.Hierarchy().SetPeek(m.Mem.Peek)
	return m
}

// Stats returns the accumulated statistics.
func (m *Machine) Stats() Stats {
	m.stats.Cycles = m.Core.Cycles()
	m.stats.Instructions = m.Core.Instructions
	return m.stats
}

const maxCallDepth = 64

// Run executes the named function with the given arguments and returns
// its result. Timing accumulates across calls; use a fresh Machine (or
// Core.Reset) for independent measurements.
func (m *Machine) Run(name string, args ...int64) (int64, error) {
	f := m.Mod.Func(name)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s takes %d arguments, got %d", name, len(f.Params), len(args))
	}
	if m.MaxInstrs == 0 {
		m.MaxInstrs = 1 << 40
	}
	ready := make([]float64, len(args))
	v, _, err := m.call(m.decode(f), args, ready, 0)
	if err != nil {
		return 0, err
	}
	m.Core.Finish()
	return v, nil
}

// frame holds one activation: SSA value/readiness slots plus the
// incoming arguments. Operands are pre-resolved slot references (see
// predecode.go), so reading one is an array index, not an interface
// type switch.
type frame struct {
	vals      []int64
	ready     []float64
	args      []int64
	argsReady []float64
}

// get returns the runtime value and readiness time of an operand.
func (fr *frame) get(o operand) (int64, float64) {
	switch o.kind {
	case opdConst:
		return o.imm, 0
	case opdParam:
		return fr.args[o.idx], fr.argsReady[o.idx]
	}
	return fr.vals[o.idx], fr.ready[o.idx]
}

// readyOf returns just the readiness time of an operand.
func (fr *frame) readyOf(o operand) float64 {
	switch o.kind {
	case opdConst:
		return 0
	case opdParam:
		return fr.argsReady[o.idx]
	}
	return fr.ready[o.idx]
}

// call executes one decoded function activation: the flat uop loop that
// replaces per-instruction IR traversal.
func (m *Machine) call(df *dfunc, args []int64, argsReady []float64, depth int) (int64, float64, error) {
	if depth > maxCallDepth {
		return 0, 0, fmt.Errorf("interp: call depth exceeded in %s", df.name)
	}
	fr := frame{
		vals:      make([]int64, df.numVals),
		ready:     make([]float64, df.numVals),
		args:      args,
		argsReady: argsReady,
	}

	bi, prev := int32(0), int32(-1)
blocks:
	for {
		b := &df.blocks[bi]

		// Phase 1: evaluate phis in parallel against the incoming edge.
		if n := len(b.phiIDs); n > 0 {
			var row []operand
			if prev >= 0 {
				row = b.phiArgs[prev]
			}
			if cap(m.phiV) < n {
				m.phiV = make([]int64, n)
				m.phiR = make([]float64, n)
			}
			tmpV, tmpR := m.phiV[:n], m.phiR[:n]
			for i := 0; i < n; i++ {
				if row == nil || row[i].kind == opdMissing {
					prevName := "<entry>"
					if prev >= 0 {
						prevName = df.blocks[prev].name
					}
					return 0, 0, fmt.Errorf("interp: phi %%%s has no edge from %s", b.phiNames[i], prevName)
				}
				tmpV[i], tmpR[i] = fr.get(row[i])
			}
			for i := 0; i < n; i++ {
				fr.vals[b.phiIDs[i]] = tmpV[i]
				fr.ready[b.phiIDs[i]] = tmpR[i]
				m.stats.Executed++
				m.stats.OpCounts[ir.OpPhi]++
			}
		}

		for ui := range b.uops {
			u := &b.uops[ui]
			if m.stats.Executed >= m.MaxInstrs {
				return 0, 0, fmt.Errorf("interp: instruction budget (%d) exhausted in %s", m.MaxInstrs, df.name)
			}
			m.stats.Executed++
			m.stats.OpCounts[u.op]++

			// Latest readiness among the operands.
			var opsReady float64
			if u.xargs != nil {
				for _, o := range u.xargs {
					if r := fr.readyOf(o); r > opsReady {
						opsReady = r
					}
				}
			} else {
				if u.nargs > 0 {
					opsReady = fr.readyOf(u.a0)
				}
				if u.nargs > 1 {
					if r := fr.readyOf(u.a1); r > opsReady {
						opsReady = r
					}
				}
				if u.nargs > 2 {
					if r := fr.readyOf(u.a2); r > opsReady {
						opsReady = r
					}
				}
			}

			switch u.op {
			case ir.OpAlloc:
				elems, _ := fr.get(u.a0)
				esize, _ := fr.get(u.a1)
				base, aerr := m.Mem.Alloc(elems * esize)
				if aerr != nil {
					return 0, 0, aerr
				}
				fr.vals[u.id] = base
				fr.ready[u.id] = m.Core.Op(opsReady, 1)

			case ir.OpLoad:
				addr, _ := fr.get(u.a0)
				v, lerr := m.Mem.Load(addr, u.typ)
				if lerr != nil {
					return 0, 0, lerr
				}
				m.stats.Loads++
				fr.vals[u.id] = v
				fr.ready[u.id] = m.Core.Load(int(u.id), addr, opsReady)

			case ir.OpStore:
				addr, _ := fr.get(u.a0)
				v, _ := fr.get(u.a1)
				if serr := m.Mem.Store(addr, v, u.typ); serr != nil {
					return 0, 0, serr
				}
				m.stats.Stores++
				m.Core.Store(int(u.id), addr, opsReady)

			case ir.OpPrefetch:
				addr, _ := fr.get(u.a0)
				m.stats.Prefetches++
				m.Core.Prefetch(int(u.id), addr, opsReady, m.Mem.Valid(addr, 1))

			case ir.OpGEP:
				base, _ := fr.get(u.a0)
				idx, _ := fr.get(u.a1)
				scale, _ := fr.get(u.a2)
				fr.vals[u.id] = base + idx*scale
				fr.ready[u.id] = m.Core.Op(opsReady, 1)

			case ir.OpCmp:
				a, _ := fr.get(u.a0)
				bv, _ := fr.get(u.a1)
				if u.pred.Eval(a, bv) {
					fr.vals[u.id] = 1
				} else {
					fr.vals[u.id] = 0
				}
				fr.ready[u.id] = m.Core.Op(opsReady, 1)

			case ir.OpSelect:
				c, _ := fr.get(u.a0)
				a, _ := fr.get(u.a1)
				bv, _ := fr.get(u.a2)
				if c != 0 {
					fr.vals[u.id] = a
				} else {
					fr.vals[u.id] = bv
				}
				fr.ready[u.id] = m.Core.Op(opsReady, 1)

			case ir.OpCall:
				callee := u.calleeFn
				if callee == nil {
					if callee = m.Mod.Func(u.callee); callee == nil {
						return 0, 0, fmt.Errorf("interp: call to undefined @%s", u.callee)
					}
					u.calleeFn = callee
				}
				cdf := m.decode(callee)
				cargs := make([]int64, len(u.xargs))
				cready := make([]float64, len(u.xargs))
				for i, o := range u.xargs {
					cargs[i], cready[i] = fr.get(o)
				}
				m.Core.Op(opsReady, 1) // call overhead
				v, r, cerr := m.call(cdf, cargs, cready, depth+1)
				if cerr != nil {
					return 0, 0, cerr
				}
				fr.vals[u.id] = v
				fr.ready[u.id] = r

			case ir.OpBr:
				m.Core.Branch(opsReady, false)
				prev, bi = bi, u.tgt0
				continue blocks

			case ir.OpCBr:
				c, _ := fr.get(u.a0)
				m.Core.Branch(opsReady, true)
				if c != 0 {
					prev, bi = bi, u.tgt0
				} else {
					prev, bi = bi, u.tgt1
				}
				continue blocks

			case ir.OpRet:
				m.Core.Op(opsReady, 1)
				if u.nargs == 1 {
					v, r := fr.get(u.a0)
					return v, r, nil
				}
				return 0, 0, nil

			default:
				// Binary arithmetic; latency was resolved at decode time.
				a, _ := fr.get(u.a0)
				bv, _ := fr.get(u.a1)
				var v int64
				switch u.op {
				case ir.OpAdd:
					v = a + bv
				case ir.OpSub:
					v = a - bv
				case ir.OpMul:
					v = a * bv
				case ir.OpDiv:
					if bv == 0 {
						return 0, 0, &Fault{Op: ir.OpDiv, Msg: "division by zero"}
					}
					v = a / bv
				case ir.OpRem:
					if bv == 0 {
						return 0, 0, &Fault{Op: ir.OpRem, Msg: "division by zero"}
					}
					v = a % bv
				case ir.OpAnd:
					v = a & bv
				case ir.OpOr:
					v = a | bv
				case ir.OpXor:
					v = a ^ bv
				case ir.OpShl:
					v = a << (uint64(bv) & 63)
				case ir.OpShr:
					v = int64(uint64(a) >> (uint64(bv) & 63))
				case ir.OpMin:
					v = a
					if bv < a {
						v = bv
					}
				case ir.OpMax:
					v = a
					if bv > a {
						v = bv
					}
				default:
					return 0, 0, fmt.Errorf("interp: unimplemented opcode %s", u.op)
				}
				fr.vals[u.id] = v
				fr.ready[u.id] = m.Core.Op(opsReady, u.lat)
			}
		}
		return 0, 0, fmt.Errorf("interp: block %s fell through without terminator", b.name)
	}
}
