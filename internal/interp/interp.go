package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/sim"
)

// Stats aggregates the dynamic behaviour of one run.
type Stats struct {
	Cycles       float64
	Instructions uint64 // issued by the core (excludes phis)
	Executed     uint64 // interpreted instructions (includes phis)
	OpCounts     [ir.NumOps]uint64
	Loads        uint64
	Stores       uint64
	Prefetches   uint64
}

// Machine runs IR programs against a simulated core.
type Machine struct {
	Mod  *ir.Module
	Core *sim.Core
	Mem  *Memory

	// MaxInstrs bounds the dynamic instruction count (0 = 2^40),
	// guarding against runaway loops in generated code.
	MaxInstrs uint64

	stats Stats
}

// New builds a machine for the module on the given core configuration.
func New(mod *ir.Module, cfg *sim.Config) *Machine {
	return &Machine{
		Mod:  mod,
		Core: sim.NewCore(cfg),
		Mem:  NewMemory(),
	}
}

// Stats returns the accumulated statistics.
func (m *Machine) Stats() Stats {
	m.stats.Cycles = m.Core.Cycles()
	m.stats.Instructions = m.Core.Instructions
	return m.stats
}

const maxCallDepth = 64

// Run executes the named function with the given arguments and returns
// its result. Timing accumulates across calls; use a fresh Machine (or
// Core.Reset) for independent measurements.
func (m *Machine) Run(name string, args ...int64) (int64, error) {
	f := m.Mod.Func(name)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s takes %d arguments, got %d", name, len(f.Params), len(args))
	}
	if m.MaxInstrs == 0 {
		m.MaxInstrs = 1 << 40
	}
	ready := make([]float64, len(args))
	v, _, err := m.call(f, args, ready, 0)
	if err != nil {
		return 0, err
	}
	m.Core.Finish()
	return v, nil
}

type frame struct {
	f         *ir.Function
	vals      []int64
	ready     []float64
	args      []int64
	argsReady []float64
}

func (m *Machine) call(f *ir.Function, args []int64, argsReady []float64, depth int) (int64, float64, error) {
	if depth > maxCallDepth {
		return 0, 0, fmt.Errorf("interp: call depth exceeded in %s", f.Name)
	}
	fr := &frame{
		f:         f,
		vals:      make([]int64, f.NumInstrs()),
		ready:     make([]float64, f.NumInstrs()),
		args:      args,
		argsReady: argsReady,
	}

	blk := f.Entry()
	var prev *ir.Block
	for {
		next, retVal, retReady, done, err := m.execBlock(fr, blk, prev, depth)
		if err != nil {
			return 0, 0, err
		}
		if done {
			return retVal, retReady, nil
		}
		prev, blk = blk, next
	}
}

// value returns the runtime value and readiness time of an operand.
func (fr *frame) value(v ir.Value) (int64, float64) {
	switch x := v.(type) {
	case *ir.Const:
		return x.Val, 0
	case *ir.Param:
		return fr.args[x.Idx], fr.argsReady[x.Idx]
	case *ir.Instr:
		return fr.vals[x.ID], fr.ready[x.ID]
	}
	panic(fmt.Sprintf("interp: unknown value kind %T", v))
}

// opsReady returns the latest readiness among an instruction's operands.
func (fr *frame) opsReady(in *ir.Instr) float64 {
	var r float64
	for _, a := range in.Args {
		if _, t := fr.value(a); t > r {
			r = t
		}
	}
	return r
}

// execBlock runs one basic block and returns the successor (or the
// return value when the function ends).
func (m *Machine) execBlock(fr *frame, b, prev *ir.Block, depth int) (next *ir.Block, ret int64, retReady float64, done bool, err error) {
	// Phase 1: evaluate phis in parallel against the incoming edge.
	phis := b.Phis()
	if len(phis) > 0 {
		tmpV := make([]int64, len(phis))
		tmpR := make([]float64, len(phis))
		for i, phi := range phis {
			inc := phi.PhiIncoming(prev)
			if inc == nil {
				return nil, 0, 0, false, fmt.Errorf("interp: phi %%%s has no edge from %s", phi.Name, prev.Name)
			}
			tmpV[i], tmpR[i] = fr.value(inc)
		}
		for i, phi := range phis {
			fr.vals[phi.ID] = tmpV[i]
			fr.ready[phi.ID] = tmpR[i]
			m.stats.Executed++
			m.stats.OpCounts[ir.OpPhi]++
		}
	}

	for _, in := range b.Instrs[len(phis):] {
		if m.stats.Executed >= m.MaxInstrs {
			return nil, 0, 0, false, fmt.Errorf("interp: instruction budget (%d) exhausted in %s", m.MaxInstrs, fr.f.Name)
		}
		m.stats.Executed++
		m.stats.OpCounts[in.Op]++
		opsReady := fr.opsReady(in)

		switch in.Op {
		case ir.OpAlloc:
			elems, _ := fr.value(in.Args[0])
			esize, _ := fr.value(in.Args[1])
			base, aerr := m.Mem.Alloc(elems * esize)
			if aerr != nil {
				return nil, 0, 0, false, aerr
			}
			fr.vals[in.ID] = base
			fr.ready[in.ID] = m.Core.Op(opsReady, 1)

		case ir.OpLoad:
			addr, _ := fr.value(in.Args[0])
			v, lerr := m.Mem.Load(addr, in.Typ)
			if lerr != nil {
				return nil, 0, 0, false, lerr
			}
			m.stats.Loads++
			fr.vals[in.ID] = v
			fr.ready[in.ID] = m.Core.Load(in.ID, addr, opsReady)

		case ir.OpStore:
			addr, _ := fr.value(in.Args[0])
			v, _ := fr.value(in.Args[1])
			if serr := m.Mem.Store(addr, v, ir.StoreType(in)); serr != nil {
				return nil, 0, 0, false, serr
			}
			m.stats.Stores++
			m.Core.Store(in.ID, addr, opsReady)

		case ir.OpPrefetch:
			addr, _ := fr.value(in.Args[0])
			m.stats.Prefetches++
			m.Core.Prefetch(in.ID, addr, opsReady, m.Mem.Valid(addr, 1))

		case ir.OpGEP:
			base, _ := fr.value(in.Args[0])
			idx, _ := fr.value(in.Args[1])
			scale, _ := fr.value(in.Args[2])
			fr.vals[in.ID] = base + idx*scale
			fr.ready[in.ID] = m.Core.Op(opsReady, 1)

		case ir.OpCmp:
			a, _ := fr.value(in.Args[0])
			bv, _ := fr.value(in.Args[1])
			if in.Pred.Eval(a, bv) {
				fr.vals[in.ID] = 1
			} else {
				fr.vals[in.ID] = 0
			}
			fr.ready[in.ID] = m.Core.Op(opsReady, 1)

		case ir.OpSelect:
			c, _ := fr.value(in.Args[0])
			a, _ := fr.value(in.Args[1])
			bv, _ := fr.value(in.Args[2])
			if c != 0 {
				fr.vals[in.ID] = a
			} else {
				fr.vals[in.ID] = bv
			}
			fr.ready[in.ID] = m.Core.Op(opsReady, 1)

		case ir.OpCall:
			callee := m.Mod.Func(in.Callee)
			if callee == nil {
				return nil, 0, 0, false, fmt.Errorf("interp: call to undefined @%s", in.Callee)
			}
			cargs := make([]int64, len(in.Args))
			cready := make([]float64, len(in.Args))
			for i, a := range in.Args {
				cargs[i], cready[i] = fr.value(a)
			}
			m.Core.Op(opsReady, 1) // call overhead
			v, r, cerr := m.call(callee, cargs, cready, depth+1)
			if cerr != nil {
				return nil, 0, 0, false, cerr
			}
			fr.vals[in.ID] = v
			fr.ready[in.ID] = r

		case ir.OpBr:
			m.Core.Branch(opsReady, false)
			return in.Targets[0], 0, 0, false, nil

		case ir.OpCBr:
			c, _ := fr.value(in.Args[0])
			m.Core.Branch(opsReady, true)
			if c != 0 {
				return in.Targets[0], 0, 0, false, nil
			}
			return in.Targets[1], 0, 0, false, nil

		case ir.OpRet:
			m.Core.Op(opsReady, 1)
			if len(in.Args) == 1 {
				v, r := fr.value(in.Args[0])
				return nil, v, r, true, nil
			}
			return nil, 0, 0, true, nil

		default:
			v, verr := m.arith(in, fr, opsReady)
			if verr != nil {
				return nil, 0, 0, false, verr
			}
			fr.vals[in.ID] = v
		}
	}
	return nil, 0, 0, false, fmt.Errorf("interp: block %s fell through without terminator", b.Name)
}

// arith evaluates the binary arithmetic opcodes and charges the core.
func (m *Machine) arith(in *ir.Instr, fr *frame, opsReady float64) (int64, error) {
	a, _ := fr.value(in.Args[0])
	b, _ := fr.value(in.Args[1])
	lat := int64(1)
	var v int64
	switch in.Op {
	case ir.OpAdd:
		v = a + b
	case ir.OpSub:
		v = a - b
	case ir.OpMul:
		v = a * b
		lat = m.Core.Config().MulLatency
	case ir.OpDiv:
		if b == 0 {
			return 0, &Fault{Op: ir.OpDiv, Msg: "division by zero"}
		}
		v = a / b
		lat = m.Core.Config().DivLatency
	case ir.OpRem:
		if b == 0 {
			return 0, &Fault{Op: ir.OpRem, Msg: "division by zero"}
		}
		v = a % b
		lat = m.Core.Config().DivLatency
	case ir.OpAnd:
		v = a & b
	case ir.OpOr:
		v = a | b
	case ir.OpXor:
		v = a ^ b
	case ir.OpShl:
		v = a << (uint64(b) & 63)
	case ir.OpShr:
		v = int64(uint64(a) >> (uint64(b) & 63))
	case ir.OpMin:
		v = a
		if b < a {
			v = b
		}
	case ir.OpMax:
		v = a
		if b > a {
			v = b
		}
	default:
		return 0, fmt.Errorf("interp: unimplemented opcode %s", in.Op)
	}
	if lat == 0 {
		lat = 1
	}
	fr.ready[in.ID] = m.Core.Op(opsReady, lat)
	return v, nil
}
