package interp

import (
	"fmt"

	"repro/internal/hwpf"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Image is a trace predecoded into flat parallel arrays, ready to be
// replayed against any number of machine configurations. Building the
// Image pays the varint/stream decoding cost exactly once; each Replay
// is then a tight loop over the arrays issuing sim.Core calls. The
// sweep runner builds one Image per (workload, variant) group and fans
// the machine × hwpf cells off it, so per-cell cost is the timing
// model plus array dispatch — no interpretation, no decoding.
type Image struct {
	t *trace.Trace

	kind []uint8 // trace.Kind per event
	aux  []uint8 // Op: LatClass; Prefetch: 1=valid; Branch: 1=conditional; Poke: width
	pc   []int32
	addr []int64 // Load/Store/Prefetch/Poke: address; Alloc: size

	// Poke values live out of line: only memory-replica rebuilds (IMP
	// configs) read them, and most events are not pokes.
	pokeVal []int64

	// Dependency sets, flattened: event i depends on the values produced
	// by deps[depOff[i]:depOff[i+1]].
	depOff []uint32
	deps   []uint32
}

// NewImage decodes a trace into its replayable form, validating the
// stream (any corruption surfaces here, not mid-replay).
func NewImage(t *trace.Trace) (*Image, error) {
	if n := len(t.Summary.OpCounts); n != 0 && n != ir.NumOps {
		return nil, fmt.Errorf("interp: replay: trace has %d op counts, want %d (recorded by a different IR revision?)",
			n, ir.NumOps)
	}
	n := int(t.NumEvents)
	im := &Image{
		t:      t,
		kind:   make([]uint8, 0, n),
		aux:    make([]uint8, 0, n),
		pc:     make([]int32, 0, n),
		addr:   make([]int64, 0, n),
		depOff: make([]uint32, 1, n+1),
	}
	r := t.Events()
	var ev trace.Event
	for r.Next(&ev) {
		var aux uint8
		var addr int64
		switch ev.Kind {
		case trace.KindOp:
			aux = uint8(ev.Lat)
		case trace.KindLoad, trace.KindStore:
			addr = ev.Addr
		case trace.KindPrefetch:
			addr = ev.Addr
			if ev.Valid {
				aux = 1
			}
		case trace.KindBranch:
			if ev.Conditional {
				aux = 1
			}
		case trace.KindAlloc:
			addr = ev.Size
		case trace.KindPoke:
			addr = ev.Addr
			aux = uint8(ev.Width)
			im.pokeVal = append(im.pokeVal, ev.Val)
		}
		im.kind = append(im.kind, uint8(ev.Kind))
		im.aux = append(im.aux, aux)
		im.pc = append(im.pc, int32(ev.PC))
		im.addr = append(im.addr, addr)
		for _, d := range ev.Deps {
			im.deps = append(im.deps, uint32(d))
		}
		im.depOff = append(im.depOff, uint32(len(im.deps)))
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return im, nil
}

// Trace returns the trace this image was decoded from.
func (im *Image) Trace() *trace.Trace { return im.t }

// Replay drives the core timing model from the predecoded trace instead
// of live interpretation: the machine-retiming half of the record/replay
// split. The core is reset to a cold state first (mirroring NewOnCore),
// then each trace event issues the same sim.Core call, with the same
// arguments, that the recording run issued — readiness times are
// recomputed as the max completion time of each event's dependency set,
// which is exactly the computation the interpreter performs over its
// SSA readiness slots. The resulting statistics are byte-for-byte
// identical to a direct run of the same kernel on the same
// configuration (pinned by cmd/golden's direct-vs-replay diff and the
// gen.Oracle replay stage).
//
// If the configuration's hardware prefetcher speculates on memory
// values (hwpf.PeekSetter — the IMP model), a shadow replica of
// simulated memory is rebuilt from the trace's Alloc/Poke events and
// installed as the peek hook; allocation addresses are deterministic,
// so the replica reproduces the recording run's address space exactly.
// Stream-only models skip the replica, and with it most of the
// replay-side memory cost.
//
// The functional statistics (executed instructions, op counts, loads,
// stores, prefetches) come from the trace footer; only timing-side
// numbers are recomputed.
func (im *Image) Replay(c sim.CoreModel) (Stats, error) {
	var st Stats
	t := im.t

	c.Reset()
	var replica *Memory
	if _, ok := c.Hierarchy().Prefetcher().(hwpf.PeekSetter); ok {
		replica = NewMemory()
		c.Hierarchy().SetPeek(replica.Peek)
	}

	cfg := c.Config()
	mulLat, divLat := cfg.MulLatency, cfg.DivLatency
	if mulLat == 0 {
		mulLat = 1 // the decoder's zero-means-one clamp
	}
	if divLat == 0 {
		divLat = 1
	}

	values := make([]float64, 0, t.NumValues)
	nextPoke := 0
	for i, kind := range im.kind {
		var opsReady float64
		for _, d := range im.deps[im.depOff[i]:im.depOff[i+1]] {
			if v := values[d]; v > opsReady {
				opsReady = v
			}
		}
		switch trace.Kind(kind) {
		case trace.KindOp:
			lat := int64(1)
			switch trace.LatClass(im.aux[i]) {
			case trace.LatMul:
				lat = mulLat
			case trace.LatDiv:
				lat = divLat
			}
			values = append(values, c.Op(opsReady, lat))
		case trace.KindLoad:
			values = append(values, c.Load(int(im.pc[i]), im.addr[i], opsReady))
		case trace.KindStore:
			c.Store(int(im.pc[i]), im.addr[i], opsReady)
		case trace.KindPrefetch:
			c.Prefetch(int(im.pc[i]), im.addr[i], opsReady, im.aux[i] != 0)
		case trace.KindBranch:
			c.Branch(opsReady, im.aux[i] != 0)
		case trace.KindFinish:
			c.Finish()
		case trace.KindAlloc:
			if replica != nil {
				if _, err := replica.Alloc(im.addr[i]); err != nil {
					return st, fmt.Errorf("interp: replay: %w", err)
				}
			}
		case trace.KindPoke:
			if replica != nil {
				if err := replica.Store(im.addr[i], im.pokeVal[nextPoke], pokeType(int(im.aux[i]))); err != nil {
					return st, fmt.Errorf("interp: replay: %w", err)
				}
			}
			nextPoke++
		}
	}

	st = Stats{
		Cycles:       c.Cycles(),
		Instructions: c.CoreStats().Instructions,
		Executed:     t.Summary.Executed,
		Loads:        t.Summary.Loads,
		Stores:       t.Summary.Stores,
		Prefetches:   t.Summary.Prefetches,
	}
	copy(st.OpCounts[:], t.Summary.OpCounts)
	return st, nil
}

// Replay is the one-shot form: decode the trace and retime it on c.
// Callers replaying one trace on many configurations should build the
// Image once with NewImage and call its Replay per configuration.
func Replay(t *trace.Trace, c sim.CoreModel) (Stats, error) {
	im, err := NewImage(t)
	if err != nil {
		return Stats{}, err
	}
	return im.Replay(c)
}

// pokeType maps a poke width back to the IR type Memory.Store expects.
func pokeType(width int) ir.Type {
	switch width {
	case 1:
		return ir.I8
	case 2:
		return ir.I16
	case 4:
		return ir.I32
	}
	return ir.I64
}
