package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSpecToGrid pins the shared grid spec: defaults, quality pools,
// the gen extension, and the one-place validation contract every
// surface (swpfbench -sweep, swpfd, swpfctl) relies on.
func TestSpecToGrid(t *testing.T) {
	grid, err := Spec{Quality: "tiny"}.ToGrid()
	if err != nil {
		t.Fatalf("empty selectors: %v", err)
	}
	if len(grid.Workloads) == 0 || len(grid.Systems) != 4 {
		t.Errorf("defaults: %d workloads, %d systems", len(grid.Workloads), len(grid.Systems))
	}
	if len(grid.Variants) != 2 || grid.Variants[0] != core.VariantPlain {
		t.Errorf("default variants = %v", grid.Variants)
	}

	grid, err = Spec{
		Workloads: "IS,RA", Systems: "A53", Variants: "plain,auto",
		C: 16, Depth: 2, Hoist: true, Quality: "tiny",
	}.ToGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Workloads) != 2 || len(grid.Systems) != 1 {
		t.Errorf("selection: %d workloads, %d systems", len(grid.Workloads), len(grid.Systems))
	}
	if grid.Options != (core.Options{C: 16, Depth: 2, Hoist: true}) {
		t.Errorf("options = %+v", grid.Options)
	}

	// Gen kernels join the pool, selectable by prefix, seeded by GenSeed.
	grid, err = Spec{Workloads: "GEN", Quality: "tiny", Gen: 3, GenSeed: 7}.ToGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Workloads) != 3 || grid.Workloads[0].Name != "GEN-00" {
		t.Errorf("gen pool = %v", grid.Workloads)
	}

	// Validation errors keep the daemon's wire shapes: the quality error
	// has no package prefix, axis errors come from the shared parser.
	for spec, want := range map[Spec]string{
		{Quality: "huge"}:                    `unknown quality "huge" (have full, quick, tiny, gen)`,
		{Quality: "tiny", Variants: "jit"}:   "sweep: unknown variant",
		{Quality: "tiny", Workloads: "nope"}: "sweep: unknown workload",
		{Quality: "tiny", Systems: "M4"}:     "sweep: unknown system",
		{Quality: "tiny", HWPF: "warp"}:      "sweep: unknown hardware prefetcher",
		{Quality: "tiny", Exec: "jit"}:       "unknown exec mode",
	} {
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Validate(%+v) = %v, want %q", spec, err, want)
		}
	}
}

// TestSpecQualityName pins the explicit-default form fleet cell specs
// travel with.
func TestSpecQualityName(t *testing.T) {
	if got := (Spec{}).QualityName(); got != "full" {
		t.Errorf(`QualityName("") = %q`, got)
	}
	if got := (Spec{Quality: "gen"}).QualityName(); got != "gen" {
		t.Errorf(`QualityName("gen") = %q`, got)
	}
}

// TestSpecJSON pins the wire form: unset fields are omitted (clients
// build sparse bodies), and legacy field names decode.
func TestSpecJSON(t *testing.T) {
	body, err := json.Marshal(Spec{Workloads: "IS", C: 16, Quality: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(body), `{"workloads":"IS","c":16,"quality":"tiny"}`; got != want {
		t.Errorf("marshal = %s, want %s", got, want)
	}
	var sp Spec
	if err := json.Unmarshal([]byte(`{"workloads":"IS,CG","hwpf":"imp","gen_seed":9}`), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Workloads != "IS,CG" || sp.HWPF != "imp" || sp.GenSeed != 9 {
		t.Errorf("unmarshal = %+v", sp)
	}
}
