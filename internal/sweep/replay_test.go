package sweep

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// replayGrid is a small but fully crossed matrix: multi-run drivers
// (G500 via Tiny), pass variants, both hardware-prefetcher flavours.
func replayGrid(execs ...core.ExecMode) Grid {
	ws := workloads.Tiny()
	return Grid{
		Workloads:     []*workloads.Workload{ws[0], ws[5]}, // IS, G500
		Systems:       uarch.All()[:2],                     // Haswell, XeonPhi
		HWPrefetchers: []string{"default", "none"},
		Variants:      []core.Variant{core.VariantPlain, core.VariantAuto},
		Options:       core.Options{Hoist: true},
		Execs:         execs,
	}
}

// TestReplaySweepMatchesDirect: cell for cell, a replay sweep produces
// exactly the Results of a direct sweep.
func TestReplaySweepMatchesDirect(t *testing.T) {
	direct, err := replayGrid(core.ExecDirect).Run(4)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	replay, err := replayGrid(core.ExecReplay).Run(4)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(direct.Outcomes) != len(replay.Outcomes) {
		t.Fatalf("cell counts differ: %d vs %d", len(direct.Outcomes), len(replay.Outcomes))
	}
	for i := range direct.Outcomes {
		d, r := direct.Outcomes[i].Result, replay.Outcomes[i].Result
		d.Pass = nil // replay results carry no pass report
		if *d != *r {
			t.Errorf("cell %d (%s/%s/%s):\ndirect %+v\nreplay %+v",
				i, d.Workload, d.System, d.Variant, d, r)
		}
	}
}

// TestReplaySweepDeterministicAcrossJobs: the satellite determinism
// requirement — jobs 1, 2 and 8 emit byte-identical result sets.
func TestReplaySweepDeterministicAcrossJobs(t *testing.T) {
	var dumps [][]byte
	for _, jobs := range []int{1, 2, 8} {
		set, err := replayGrid(core.ExecReplay).Run(jobs)
		if err != nil {
			t.Fatalf("jobs %d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := set.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, buf.Bytes())
	}
	if !bytes.Equal(dumps[0], dumps[1]) || !bytes.Equal(dumps[0], dumps[2]) {
		t.Fatal("replay sweep differs across jobs 1/2/8")
	}
	if !strings.Contains(string(dumps[0]), ",replay,") {
		t.Error("CSV dump missing the exec column value")
	}
}

// TestReplaySweepInterpretsOncePerGroup pins the amortization contract:
// a full-grid replay sweep performs exactly one interpretation per
// (workload, variant) group, regardless of how many machine × hwpf
// cells each group fans into. IS drives one Machine.Run per execution,
// so interp.Runs counts interpretations directly.
func TestReplaySweepInterpretsOncePerGroup(t *testing.T) {
	g := Grid{
		Workloads:     []*workloads.Workload{workloads.IS(1<<8, 1<<8)},
		Systems:       uarch.All(), // 4 machines
		HWPrefetchers: []string{"default", "none"},
		Variants:      []core.Variant{core.VariantPlain, core.VariantAuto},
		Execs:         []core.ExecMode{core.ExecReplay},
	}
	reqs := g.Expand()
	if len(reqs) != 16 {
		t.Fatalf("grid has %d cells, want 16", len(reqs))
	}
	for _, jobs := range []int{1, 8} {
		before := interp.Runs()
		set, err := Execute(reqs, jobs)
		if err != nil {
			t.Fatalf("jobs %d: %v", jobs, err)
		}
		if got := interp.Runs() - before; got != 2 { // one per variant group
			t.Errorf("jobs %d: %d interpretations for 16 cells, want 2", jobs, got)
		}
		for i := range set.Outcomes {
			if set.Outcomes[i].Result == nil {
				t.Fatalf("jobs %d: cell %d missing result", jobs, i)
			}
		}
	}
}

// memTraceCache is an in-memory Cache + TraceCache for exercising the
// runner's trace fetch/persist paths without disk.
type memTraceCache struct {
	mu                       sync.Mutex
	results                  map[string]*core.Result
	traces                   map[string]*trace.Trace
	gets, puts, tgets, tputs int
	serveResults             bool
}

func newMemTraceCache() *memTraceCache {
	return &memTraceCache{results: map[string]*core.Result{}, traces: map[string]*trace.Trace{}}
}

func (c *memTraceCache) rkey(r Request) string {
	return r.Workload.Name + "|" + r.Workload.Params + "|" + r.System.Name + "|" + r.System.HWPrefetcherName() + "|" + string(r.Variant)
}

func (c *memTraceCache) tkey(r Request) string {
	return r.Workload.Name + "|" + r.Workload.Params + "|" + string(r.Variant)
}

func (c *memTraceCache) Get(r Request) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	if !c.serveResults {
		return nil, false
	}
	res, ok := c.results[c.rkey(r)]
	return res, ok
}

func (c *memTraceCache) Put(r Request, res *core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.results[c.rkey(r)] = res
	return nil
}

func (c *memTraceCache) GetTrace(r Request) (*trace.Trace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tgets++
	t, ok := c.traces[c.tkey(r)]
	return t, ok
}

func (c *memTraceCache) PutTrace(r Request, t *trace.Trace) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tputs++
	c.traces[c.tkey(r)] = t
	return nil
}

// TestReplaySweepTraceCache: a cold replay sweep records once per group
// and persists the trace; a second sweep with the result cache
// disabled (simulating a fresh store after a StatsVersion bump) fetches
// the traces instead of re-interpreting, and still reproduces the
// direct results.
func TestReplaySweepTraceCache(t *testing.T) {
	cache := newMemTraceCache()
	g := Grid{
		Workloads: []*workloads.Workload{workloads.IS(1<<8, 1<<8)},
		Systems:   uarch.All()[:2],
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
		Execs:     []core.ExecMode{core.ExecReplay},
	}
	cold, err := g.RunWith(Runner{Jobs: 2, Cache: cache})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cache.tputs != 2 {
		t.Errorf("cold sweep persisted %d traces, want 2 (one per variant group)", cache.tputs)
	}

	// Warm traces, cold results: replays serve every cell with zero
	// interpretation.
	before := interp.Runs()
	warm, err := g.RunWith(Runner{Jobs: 2, Cache: cache})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if got := interp.Runs() - before; got != 0 {
		t.Errorf("trace-warm sweep interpreted %d times, want 0", got)
	}
	for i := range cold.Outcomes {
		c, w := cold.Outcomes[i].Result, warm.Outcomes[i].Result
		if *c != *w {
			t.Errorf("cell %d differs between cold and trace-warm sweeps", i)
		}
	}

	// Warm results short-circuit everything, replay mode included.
	cache.serveResults = true
	before = interp.Runs()
	if _, err := g.RunWith(Runner{Jobs: 2, Cache: cache}); err != nil {
		t.Fatalf("result-warm: %v", err)
	}
	if got := interp.Runs() - before; got != 0 {
		t.Errorf("result-warm sweep interpreted %d times, want 0", got)
	}
}

// TestReplaySweepGroupErrorFansToCells: a group whose recording fails
// (unknown variant) fails every cell of the group, deterministically,
// while other groups still complete.
func TestReplaySweepGroupErrorFansToCells(t *testing.T) {
	w := workloads.Tiny()[0]
	reqs := []Request{
		{Workload: w, System: uarch.Haswell(), Variant: core.VariantPlain, Exec: core.ExecReplay},
		{Workload: w, System: uarch.Haswell(), Variant: core.Variant("bogus"), Exec: core.ExecReplay},
		{Workload: w, System: uarch.A53(), Variant: core.Variant("bogus"), Exec: core.ExecReplay},
		{Workload: w, System: uarch.A53(), Variant: core.VariantPlain, Exec: core.ExecReplay},
	}
	set, err := Execute(reqs, 4)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want the bogus-variant failure", err)
	}
	for i, wantErr := range []bool{false, true, true, false} {
		o := set.Outcomes[i]
		if (o.Err != nil) != wantErr {
			t.Errorf("cell %d: err = %v, want error=%t", i, o.Err, wantErr)
		}
		if !wantErr && o.Result == nil {
			t.Errorf("cell %d: missing result", i)
		}
	}
}

// TestGridExpandExecAxis: Execs is the innermost axis and empty means
// direct.
func TestGridExpandExecAxis(t *testing.T) {
	g := Grid{
		Workloads: workloads.Tiny()[:1],
		Systems:   uarch.All()[:1],
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
		Execs:     []core.ExecMode{core.ExecDirect, core.ExecReplay},
	}
	reqs := g.Expand()
	if len(reqs) != 4 {
		t.Fatalf("%d requests, want 4", len(reqs))
	}
	want := []core.ExecMode{core.ExecDirect, core.ExecReplay, core.ExecDirect, core.ExecReplay}
	for i, r := range reqs {
		if r.Exec != want[i] {
			t.Errorf("request %d: exec %q, want %q", i, r.Exec, want[i])
		}
	}
	if reqs[0].Variant != reqs[1].Variant || reqs[0].Variant == reqs[2].Variant {
		t.Error("exec is not the innermost axis")
	}

	g.Execs = nil
	for _, r := range g.Expand() {
		if r.ExecMode() != core.ExecDirect {
			t.Errorf("empty Execs axis produced %q", r.ExecMode())
		}
	}
}

// TestParseExecModes covers the axis parser.
func TestParseExecModes(t *testing.T) {
	got, err := ParseExecModes("")
	if err != nil || len(got) != 1 || got[0] != core.ExecDirect {
		t.Errorf("ParseExecModes(\"\") = %v, %v", got, err)
	}
	got, err = ParseExecModes("direct, replay")
	if err != nil || len(got) != 2 || got[0] != core.ExecDirect || got[1] != core.ExecReplay {
		t.Errorf("ParseExecModes(\"direct, replay\") = %v, %v", got, err)
	}
	if _, err := ParseExecModes("jit"); err == nil {
		t.Error("ParseExecModes accepted jit")
	}
}
