package sweep

import (
	"strings"
	"testing"

	"repro/internal/hwpf"
)

// TestParseHWPrefetchersErrorPaths pins the failure mode for every
// malformed hardware-prefetcher selector, matching the contract the
// ParseVariants error-path tests establish: the error names the
// offending token and lists every accepted model, and no partial
// result leaks out.
func TestParseHWPrefetchersErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		in, wantTok string
	}{
		{"bogus", `"bogus"`},                 // unknown name
		{"stride,bogus,imp", `"bogus"`},      // unknown amid valid names
		{"stride,,imp", `""`},                // empty element
		{"Stride", `"Stride"`},               // case-sensitive
		{"stride imp", `"stride imp"`},       // wrong separator
		{"default,next-line", `"next-line"`}, // near-miss spelling
	} {
		hws, err := ParseHWPrefetchers(tc.in)
		if err == nil {
			t.Errorf("ParseHWPrefetchers(%q) accepted: %v", tc.in, hws)
			continue
		}
		if hws != nil {
			t.Errorf("ParseHWPrefetchers(%q) returned partial result %v with error", tc.in, hws)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown hardware prefetcher") || !strings.Contains(msg, tc.wantTok) {
			t.Errorf("ParseHWPrefetchers(%q) error %q does not name token %s", tc.in, msg, tc.wantTok)
		}
		for _, model := range HWPrefetchers() {
			if !strings.Contains(msg, model) {
				t.Errorf("ParseHWPrefetchers(%q) error %q does not list model %q", tc.in, msg, model)
			}
		}
	}

	// Whitespace-only input is the documented default, not an error.
	if hws, err := ParseHWPrefetchers("  \t "); err != nil || len(hws) != 1 || hws[0] != HWPrefetcherDefault {
		t.Errorf("whitespace input = %v, %v, want the default axis", hws, err)
	}

	// Every registered model (and "default") parses back, alone and in
	// one combined list, preserving order and duplicates.
	all := strings.Join(HWPrefetchers(), ",")
	hws, err := ParseHWPrefetchers(all + "," + hwpf.NameStride)
	if err != nil {
		t.Fatalf("full axis list rejected: %v", err)
	}
	if len(hws) != len(HWPrefetchers())+1 || hws[len(hws)-1] != hwpf.NameStride {
		t.Errorf("full axis list mangled: %v", hws)
	}
}
