package sweep

import (
	"fmt"
	"slices"
	"strings"
)

// Axis is the one selector grammar every grid axis shares: a
// comma-separated list of names, whitespace-tolerant, parsed against a
// closed set of accepted values. ParseVariants, ParseHWPrefetchers,
// ParseExecModes and ParseSystems are thin instantiations, and
// internal/tune builds its strategy and search-ladder axes the same
// way, so there is exactly one error contract to learn:
//
//   - an empty (or whitespace-only) selector denotes Default;
//   - any unknown token fails the whole parse — the error quotes the
//     offending token and lists every accepted name, and no partial
//     result is returned;
//   - duplicates and order are preserved (an axis is a selection, not
//     a set).
type Axis[T comparable] struct {
	// Noun names the axis in error messages ("variant", "system", ...).
	Noun string
	// Prefix labels errors with the owning package; "" means "sweep".
	// internal/tune sets it so its axes report as tune errors.
	Prefix string
	// Values enumerates every accepted value in presentation order.
	Values []T
	// Name renders a value's wire spelling.
	Name func(T) string
	// Default is the selection an empty selector denotes.
	Default []T
	// Unknown, when non-nil, renders the unknown-token error instead of
	// the standard message — a wire-compatibility shim: the daemon's
	// error bodies predate this parser and are pinned byte-for-byte by
	// its error-contract tests, so the legacy axes keep their historical
	// spellings. Returning nil declines, selecting the standard message.
	// New axes should leave this unset.
	Unknown func(token string) error
}

// Names returns the wire spelling of every accepted value, in
// presentation order — the list the error message cites, and the list
// discovery surfaces (swpfbench -list, GET /meta) print.
func (a Axis[T]) Names() []string {
	out := make([]string, len(a.Values))
	for i, v := range a.Values {
		out[i] = a.Name(v)
	}
	return out
}

// Parse parses a comma-separated selector against the axis.
func (a Axis[T]) Parse(s string) ([]T, error) {
	if strings.TrimSpace(s) == "" {
		return slices.Clone(a.Default), nil
	}
	var out []T
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		found := false
		for _, v := range a.Values {
			if a.Name(v) == tok {
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			if a.Unknown != nil {
				if err := a.Unknown(tok); err != nil {
					return nil, err
				}
			}
			pkg := a.Prefix
			if pkg == "" {
				pkg = "sweep"
			}
			return nil, fmt.Errorf("%s: unknown %s %q (have %s)",
				pkg, a.Noun, tok, strings.Join(a.Names(), ", "))
		}
	}
	return out, nil
}
