package sweep

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestSyntheticWorkloadsSweep runs a grid of generated kernels
// (workloads.Synthetic) through the engine across every variant and
// requires byte-identical CSV output on 1 and 8 workers — generated
// scenarios are first-class sweep citizens with the same determinism
// contract as the paper's benchmarks.
func TestSyntheticWorkloadsSweep(t *testing.T) {
	grid := Grid{
		Workloads: workloads.Synthetic(1, 4),
		Systems:   []*sim.Config{uarch.A53()},
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto, core.VariantIndirectOnly},
		Options:   core.Options{C: 16},
	}
	serial, err := grid.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := grid.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("synthetic sweep differs across jobs 1/8:\n%s\nvs\n%s", a.String(), b.String())
	}
	if n := len(serial.Outcomes); n != 4*3 {
		t.Errorf("expected 12 cells, got %d", n)
	}

	// SelectWorkloads treats the generated pool like any other: prefix
	// selection works, unknown names fail with the pool listed.
	pool := workloads.Synthetic(1, 4)
	sel, err := SelectWorkloads(pool, "GEN")
	if err != nil || len(sel) != 4 {
		t.Errorf("prefix selection over synthetic pool: %v, %v", sel, err)
	}
	if _, err := SelectWorkloads(pool, "GEN-99"); err == nil {
		t.Error("unknown synthetic workload accepted")
	}
}
