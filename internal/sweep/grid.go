package sweep

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// Grid is a declarative experiment grid: the cross product of
// workloads, machine configurations and variants, all sharing one
// option set. Expand enumerates it workload-major (workload, then
// system, then variant), the paper's presentation order.
type Grid struct {
	Workloads []*workloads.Workload
	Systems   []*sim.Config
	Variants  []core.Variant
	Options   core.Options
}

// Expand enumerates the grid's cells as requests.
func (g Grid) Expand() []Request {
	reqs := make([]Request, 0, len(g.Workloads)*len(g.Systems)*len(g.Variants))
	for _, w := range g.Workloads {
		for _, cfg := range g.Systems {
			for _, v := range g.Variants {
				reqs = append(reqs, Request{Workload: w, System: cfg, Variant: v, Options: g.Options})
			}
		}
	}
	return reqs
}

// Run expands the grid and executes it on jobs workers.
func (g Grid) Run(jobs int) (*ResultSet, error) {
	return Execute(g.Expand(), jobs)
}

// RunWith expands the grid and executes it with the given runner, so
// callers can attach a result cache or a progress callback.
func (g Grid) RunWith(r Runner) (*ResultSet, error) {
	return r.Execute(g.Expand())
}

// Variants lists every variant the engine accepts, in presentation
// order.
func Variants() []core.Variant {
	return []core.Variant{
		core.VariantPlain,
		core.VariantAuto,
		core.VariantManual,
		core.VariantICC,
		core.VariantIndirectOnly,
	}
}

// ParseVariants parses a comma-separated variant list ("" selects
// plain,auto — the baseline pair of every speedup).
func ParseVariants(s string) ([]core.Variant, error) {
	if strings.TrimSpace(s) == "" {
		return []core.Variant{core.VariantPlain, core.VariantAuto}, nil
	}
	var out []core.Variant
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, v := range Variants() {
			if string(v) == name {
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: unknown variant %q (have %v)", name, Variants())
		}
	}
	return out, nil
}

// ParseSystems parses a comma-separated machine list ("" selects all
// four Table 1 systems).
func ParseSystems(s string) ([]*sim.Config, error) {
	if strings.TrimSpace(s) == "" {
		return uarch.All(), nil
	}
	var out []*sim.Config
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		cfg := uarch.ByName(name)
		if cfg == nil {
			var have []string
			for _, c := range uarch.All() {
				have = append(have, c.Name)
			}
			return nil, fmt.Errorf("sweep: unknown system %q (have %s)", name, strings.Join(have, ", "))
		}
		out = append(out, cfg)
	}
	return out, nil
}

// SelectWorkloads picks named workloads out of the available set (""
// selects all of them). Names match exactly or by prefix, so "G500"
// selects both Graph500 scales while "HJ-2" selects one hash join.
func SelectWorkloads(avail []*workloads.Workload, s string) ([]*workloads.Workload, error) {
	if strings.TrimSpace(s) == "" {
		return avail, nil
	}
	var out []*workloads.Workload
	chosen := make(map[*workloads.Workload]bool)
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		matched := false
		for _, w := range avail {
			if w.Name == name || strings.HasPrefix(w.Name, name) {
				matched = true
				if !chosen[w] {
					chosen[w] = true
					out = append(out, w)
				}
			}
		}
		if !matched {
			var have []string
			for _, w := range avail {
				have = append(have, w.Name)
			}
			return nil, fmt.Errorf("sweep: unknown workload %q (have %s)", name, strings.Join(have, ", "))
		}
	}
	return out, nil
}
