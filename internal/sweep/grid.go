package sweep

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hwpf"
	"repro/internal/sim"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// HWPrefetcherDefault is the hardware-prefetcher axis value that keeps
// each system's own default model (the per-machine uarch presets).
const HWPrefetcherDefault = "default"

// CoreDefault is the core axis value that keeps each system's own core
// timing model (sim.Config.CoreName — the interval model unless a
// preset pins one explicitly).
const CoreDefault = "default"

// Grid is a declarative experiment grid: the cross product of
// workloads, machine configurations, hardware-prefetcher models and
// variants, all sharing one option set. Expand enumerates it
// workload-major (workload, then system, then hardware prefetcher,
// then variant), the paper's presentation order.
//
// An empty axis yields zero requests: a grid with no workloads, no
// systems or no variants expands to nothing and Run returns an empty
// result set without error (pinned by TestGridExpandEmptyAxis).
// HWPrefetchers and Cores are the exception: they contribute no
// configurations of their own (they only modulate Systems), so empty
// means {"default"} — one pass with each system's own model, which is
// what every grid written before the axes existed gets.
type Grid struct {
	Workloads     []*workloads.Workload
	Systems       []*sim.Config
	HWPrefetchers []string

	// Cores is the CPU-core-model axis: "default" keeps each system's
	// own core timing model; "interval", "ooo" and "inorder" pin one
	// (see internal/sim coremodel.go).
	Cores []string

	Variants []core.Variant
	Options  core.Options

	// Execs is the execution-mode axis (innermost). Like HWPrefetchers
	// it only modulates how cells run, so empty means {direct} — the
	// behaviour of every grid written before the axis existed.
	Execs []core.ExecMode
}

// Expand enumerates the grid's cells as requests. The hardware and
// core axes materialise as derived machine configurations (one shared
// copy per system × hwpf × core, so sweep workers still recycle one
// simulator per configuration), which is also how the models reach the
// internal/store key: the full sim.Config is hashed, HWPrefetcher and
// Core fields included.
func (g Grid) Expand() []Request {
	hws := g.HWPrefetchers
	if len(hws) == 0 {
		hws = []string{HWPrefetcherDefault}
	}
	cores := g.Cores
	if len(cores) == 0 {
		cores = []string{CoreDefault}
	}
	derived := make(map[*sim.Config]map[string]*sim.Config)
	system := func(cfg *sim.Config, hw, cm string) *sim.Config {
		if hw == HWPrefetcherDefault && cm == CoreDefault {
			return cfg
		}
		key := hw + "/" + cm
		byAxis := derived[cfg]
		if byAxis == nil {
			byAxis = make(map[string]*sim.Config)
			derived[cfg] = byAxis
		}
		if c, ok := byAxis[key]; ok {
			return c
		}
		c := cfg
		if hw != HWPrefetcherDefault {
			c = uarch.WithHWPrefetcher(c, hw)
		}
		if cm != CoreDefault {
			c = uarch.WithCoreModel(c, cm)
		}
		byAxis[key] = c
		return c
	}
	execs := g.Execs
	if len(execs) == 0 {
		execs = []core.ExecMode{core.ExecDirect}
	}
	reqs := make([]Request, 0, len(g.Workloads)*len(g.Systems)*len(hws)*len(cores)*len(g.Variants)*len(execs))
	for _, w := range g.Workloads {
		for _, cfg := range g.Systems {
			for _, hw := range hws {
				for _, cm := range cores {
					sys := system(cfg, hw, cm)
					for _, v := range g.Variants {
						for _, e := range execs {
							reqs = append(reqs, Request{Workload: w, System: sys, Variant: v, Options: g.Options, Exec: e})
						}
					}
				}
			}
		}
	}
	return reqs
}

// Run expands the grid and executes it on jobs workers.
func (g Grid) Run(jobs int) (*ResultSet, error) {
	return Execute(g.Expand(), jobs)
}

// RunWith expands the grid and executes it with the given runner, so
// callers can attach a result cache or a progress callback.
func (g Grid) RunWith(r Runner) (*ResultSet, error) {
	return r.Execute(g.Expand())
}

// Variants lists every variant the engine accepts, in presentation
// order.
func Variants() []core.Variant {
	return []core.Variant{
		core.VariantPlain,
		core.VariantAuto,
		core.VariantManual,
		core.VariantICC,
		core.VariantIndirectOnly,
	}
}

// VariantAxis is the variant selector ("" selects plain,auto — the
// baseline pair of every speedup).
func VariantAxis() Axis[core.Variant] {
	return Axis[core.Variant]{
		Noun:    "variant",
		Values:  Variants(),
		Name:    func(v core.Variant) string { return string(v) },
		Default: []core.Variant{core.VariantPlain, core.VariantAuto},
		Unknown: func(tok string) error {
			return fmt.Errorf("sweep: unknown variant %q (have %v)", tok, Variants())
		},
	}
}

// ParseVariants parses a comma-separated variant list ("" selects
// plain,auto — the baseline pair of every speedup).
func ParseVariants(s string) ([]core.Variant, error) { return VariantAxis().Parse(s) }

// HWPrefetchers lists every value the hardware-prefetcher axis
// accepts: "default" (keep each machine's own model) followed by the
// hwpf registry in presentation order.
func HWPrefetchers() []string {
	return append([]string{HWPrefetcherDefault}, hwpf.Names()...)
}

// HWPrefetcherAxis is the hardware-prefetcher selector ("" selects
// default — each system's own model).
func HWPrefetcherAxis() Axis[string] {
	return Axis[string]{
		Noun:    "hardware prefetcher",
		Values:  HWPrefetchers(),
		Name:    func(s string) string { return s },
		Default: []string{HWPrefetcherDefault},
	}
}

// ParseHWPrefetchers parses a comma-separated hardware-prefetcher
// axis ("" selects default — each system's own model).
func ParseHWPrefetchers(s string) ([]string, error) { return HWPrefetcherAxis().Parse(s) }

// Cores lists every value the core axis accepts: "default" (keep each
// machine's own core timing model) followed by the sim core-model
// registry in presentation order.
func Cores() []string {
	return append([]string{CoreDefault}, sim.CoreModels()...)
}

// CoreAxis is the CPU-core-model selector ("" selects default — each
// system's own timing model).
func CoreAxis() Axis[string] {
	return Axis[string]{
		Noun:    "core model",
		Values:  Cores(),
		Name:    func(s string) string { return s },
		Default: []string{CoreDefault},
	}
}

// ParseCores parses a comma-separated core-model axis ("" selects
// default — each system's own timing model).
func ParseCores(s string) ([]string, error) { return CoreAxis().Parse(s) }

// ExecModes lists every value the execution-mode axis accepts, in
// presentation order.
func ExecModes() []core.ExecMode { return core.ExecModes() }

// ExecModeAxis is the execution-mode selector ("" selects direct).
func ExecModeAxis() Axis[core.ExecMode] {
	return Axis[core.ExecMode]{
		Noun:    "exec mode",
		Values:  ExecModes(),
		Name:    func(e core.ExecMode) string { return string(e) },
		Default: []core.ExecMode{core.ExecDirect},
		Unknown: func(tok string) error {
			if _, err := core.ParseExecMode(tok); err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
			return nil // "" (core-normalized to direct): standard message
		},
	}
}

// ParseExecModes parses a comma-separated execution-mode axis (""
// selects direct).
func ParseExecModes(s string) ([]core.ExecMode, error) { return ExecModeAxis().Parse(s) }

// SystemAxis is the machine selector ("" selects all four Table 1
// systems).
func SystemAxis() Axis[*sim.Config] {
	return Axis[*sim.Config]{
		Noun:    "system",
		Values:  uarch.All(),
		Name:    func(cfg *sim.Config) string { return cfg.Name },
		Default: uarch.All(),
	}
}

// ParseSystems parses a comma-separated machine list ("" selects all
// four Table 1 systems).
func ParseSystems(s string) ([]*sim.Config, error) { return SystemAxis().Parse(s) }

// SelectWorkloads picks named workloads out of the available set (""
// selects all of them). Names match exactly or by prefix, so "G500"
// selects both Graph500 scales while "HJ-2" selects one hash join.
func SelectWorkloads(avail []*workloads.Workload, s string) ([]*workloads.Workload, error) {
	if strings.TrimSpace(s) == "" {
		return avail, nil
	}
	var out []*workloads.Workload
	chosen := make(map[*workloads.Workload]bool)
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		matched := false
		for _, w := range avail {
			if w.Name == name || strings.HasPrefix(w.Name, name) {
				matched = true
				if !chosen[w] {
					chosen[w] = true
					out = append(out, w)
				}
			}
		}
		if !matched {
			var have []string
			for _, w := range avail {
				have = append(have, w.Name)
			}
			return nil, fmt.Errorf("sweep: unknown workload %q (have %s)", name, strings.Join(have, ", "))
		}
	}
	return out, nil
}
