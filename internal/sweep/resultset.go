package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// ResultSet holds the outcomes of an executed request list, in request
// order — the same order for any worker count.
type ResultSet struct {
	Outcomes []Outcome
}

// Err returns the first error in request order, or nil.
func (s *ResultSet) Err() error {
	for i := range s.Outcomes {
		if o := &s.Outcomes[i]; o.Err != nil {
			return fmt.Errorf("sweep: %s/%s/%s: %w",
				o.Workload.Name, o.System.Name, o.Variant, o.Err)
		}
	}
	return nil
}

// Results returns the per-request results, positionally matching the
// executed request list. Failed cells are nil.
func (s *ResultSet) Results() []*core.Result {
	out := make([]*core.Result, len(s.Outcomes))
	for i := range s.Outcomes {
		out[i] = s.Outcomes[i].Result
	}
	return out
}

// Get returns the first successful result for the cell, or nil.
func (s *ResultSet) Get(workload, system string, v core.Variant) *core.Result {
	for i := range s.Outcomes {
		o := &s.Outcomes[i]
		if o.Workload.Name == workload && o.System.Name == system && o.Variant == v && o.Result != nil {
			return o.Result
		}
	}
	return nil
}

// Speedup returns base-variant cycles over v cycles for the cell
// (>1 means v is faster), or 0 if either run is missing.
func (s *ResultSet) Speedup(workload, system string, base, v core.Variant) float64 {
	b, x := s.Get(workload, system, base), s.Get(workload, system, v)
	if b == nil || x == nil {
		return 0
	}
	return core.Speedup(b, x)
}

// Speedups returns the per-workload speedups of v over base on one
// system, in request order — the inputs to a figure-4-style geomean.
func (s *ResultSet) Speedups(system string, base, v core.Variant) []float64 {
	var out []float64
	seen := map[string]bool{}
	for i := range s.Outcomes {
		o := &s.Outcomes[i]
		if o.System.Name != system || seen[o.Workload.Name] {
			continue
		}
		seen[o.Workload.Name] = true
		if sp := s.Speedup(o.Workload.Name, system, base, v); sp > 0 {
			out = append(out, sp)
		}
	}
	return out
}

// Geomean returns the geometric mean of the positive entries, or 0 if
// there are none.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Record is one outcome flattened for emission: the cell coordinates,
// the options that shaped the run, and the headline statistics.
type Record struct {
	Workload string
	System   string
	Variant  string
	// HWPF is the effective hardware-prefetcher model of the cell's
	// machine configuration (sim.Config.HWPrefetcherName) — the
	// hardware axis is otherwise invisible in the System name.
	HWPF string
	// Core is the effective CPU core timing model of the cell's machine
	// configuration (sim.Config.CoreName) — like HWPF, the core axis is
	// invisible in the System name.
	Core string
	// Exec is the cell's requested execution mode ("direct" or
	// "replay"; the request's zero value is normalized to "direct").
	// The statistics are identical either way, so the column records
	// what was asked for — a cache-served cell keeps its requested
	// label even when the stored result came from the other mode.
	Exec string

	C          int64
	Depth      int
	Hoist      bool
	FlatOffset bool

	Checksum     int64
	Cycles       float64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	SWPrefetches uint64

	L1Hits             uint64
	L1Misses           uint64
	DRAMAccesses       uint64
	HWPrefetches       uint64
	HWPrefetchDropped  uint64
	TLBWalks           uint64
	LoadStallCycles    float64
	PrefetchLateCycles float64
	PrefetchedUnusedL1 uint64

	Err string `json:",omitempty"`
}

// Records flattens the outcomes in request order.
func (s *ResultSet) Records() []Record {
	out := make([]Record, len(s.Outcomes))
	for i := range s.Outcomes {
		o := &s.Outcomes[i]
		r := Record{
			Workload:   o.Workload.Name,
			System:     o.System.Name,
			Variant:    string(o.Variant),
			HWPF:       o.System.HWPrefetcherName(),
			Core:       o.System.CoreName(),
			Exec:       string(o.ExecMode()),
			C:          o.Options.C,
			Depth:      o.Options.Depth,
			Hoist:      o.Options.Hoist,
			FlatOffset: o.Options.FlatOffset,
		}
		if o.Err != nil {
			r.Err = o.Err.Error()
		}
		if res := o.Result; res != nil {
			r.Checksum = res.Checksum
			r.Cycles = res.Cycles
			r.Instructions = res.Stats.Instructions
			r.Loads = res.Stats.Loads
			r.Stores = res.Stats.Stores
			r.SWPrefetches = res.Stats.Prefetches
			r.L1Hits = res.L1Hits
			r.L1Misses = res.L1Misses
			r.DRAMAccesses = res.DRAMAccesses
			r.HWPrefetches = res.HWPrefetches
			r.HWPrefetchDropped = res.HWPrefetchDropped
			r.TLBWalks = res.TLBWalks
			r.LoadStallCycles = res.LoadStallCycles
			r.PrefetchLateCycles = res.PrefetchLateCycles
			r.PrefetchedUnusedL1 = res.PrefetchedUnusedL1
		}
		out[i] = r
	}
	return out
}

// WriteJSON emits the records as indented JSON, deterministically.
func (s *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Records())
}

// csvColumns is the fixed CSV header, matching Record field order.
var csvColumns = []string{
	"workload", "system", "variant", "hwpf", "core", "exec", "c", "depth", "hoist", "flat_offset",
	"checksum", "cycles", "instructions", "loads", "stores", "sw_prefetches",
	"l1_hits", "l1_misses", "dram_accesses", "hw_prefetches",
	"hw_prefetch_dropped", "tlb_walks",
	"load_stall_cycles", "prefetch_late_cycles", "prefetched_unused_l1", "err",
}

// WriteCSV emits the records as comma-separated values, header first.
func (s *ResultSet) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(csvColumns, ","))
	sb.WriteByte('\n')
	for _, r := range s.Records() {
		err := r.Err
		if strings.ContainsAny(err, ",\"\n") {
			err = `"` + strings.ReplaceAll(err, `"`, `""`) + `"`
		}
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%s,%d,%d,%t,%t,%d,%v,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%v,%v,%d,%s\n",
			r.Workload, r.System, r.Variant, r.HWPF, r.Core, r.Exec, r.C, r.Depth, r.Hoist, r.FlatOffset,
			r.Checksum, r.Cycles, r.Instructions, r.Loads, r.Stores, r.SWPrefetches,
			r.L1Hits, r.L1Misses, r.DRAMAccesses, r.HWPrefetches, r.HWPrefetchDropped,
			r.TLBWalks, r.LoadStallCycles, r.PrefetchLateCycles, r.PrefetchedUnusedL1, err)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
