package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestGridExpandOrder(t *testing.T) {
	ws := workloads.Tiny()[:2]
	g := Grid{
		Workloads: ws,
		Systems:   uarch.All()[:2],
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	reqs := g.Expand()
	if len(reqs) != 8 {
		t.Fatalf("expanded %d requests, want 8", len(reqs))
	}
	// Workload-major, then system, then variant.
	if reqs[0].Workload != ws[0] || reqs[0].Variant != core.VariantPlain {
		t.Errorf("first request out of order: %+v", reqs[0])
	}
	if reqs[1].Variant != core.VariantAuto {
		t.Errorf("variant must be the innermost axis")
	}
	if reqs[2].System.Name != uarch.All()[1].Name {
		t.Errorf("system must be the middle axis")
	}
	if reqs[4].Workload != ws[1] {
		t.Errorf("workload must be the outermost axis")
	}
}

func TestJobsClamp(t *testing.T) {
	if got := Jobs(0, 100); got < 1 {
		t.Errorf("Jobs(0, 100) = %d, want >= 1", got)
	}
	if got := Jobs(8, 3); got != 3 {
		t.Errorf("Jobs(8, 3) = %d, want 3", got)
	}
	if got := Jobs(-1, 0); got != 1 {
		t.Errorf("Jobs(-1, 0) = %d, want 1", got)
	}
	if got := Jobs(5, 100); got != 5 {
		t.Errorf("Jobs(5, 100) = %d, want 5", got)
	}
}

func TestParseVariants(t *testing.T) {
	vs, err := ParseVariants("")
	if err != nil || len(vs) != 2 || vs[0] != core.VariantPlain || vs[1] != core.VariantAuto {
		t.Errorf("default variants = %v, %v", vs, err)
	}
	vs, err = ParseVariants("plain, manual,icc")
	if err != nil || len(vs) != 3 || vs[2] != core.VariantICC {
		t.Errorf("ParseVariants = %v, %v", vs, err)
	}
	if _, err := ParseVariants("bogus"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestParseSystems(t *testing.T) {
	cs, err := ParseSystems("")
	if err != nil || len(cs) != 4 {
		t.Errorf("default systems = %v, %v", cs, err)
	}
	cs, err = ParseSystems("A53, Haswell")
	if err != nil || len(cs) != 2 || cs[0].Name != "A53" {
		t.Errorf("ParseSystems = %v, %v", cs, err)
	}
	if _, err := ParseSystems("M4"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestSelectWorkloads(t *testing.T) {
	avail := workloads.Tiny()
	ws, err := SelectWorkloads(avail, "")
	if err != nil || len(ws) != len(avail) {
		t.Errorf("default selection = %d workloads, %v", len(ws), err)
	}
	ws, err = SelectWorkloads(avail, "IS,HJ")
	if err != nil || len(ws) != 3 { // IS plus both hash joins
		t.Errorf("selection = %v, %v", names(ws), err)
	}
	// Overlapping tokens must not duplicate a workload.
	ws, err = SelectWorkloads(avail, "HJ,HJ-8")
	if err != nil || len(ws) != 2 {
		t.Errorf("overlapping selection = %v, %v, want deduplicated [HJ-2 HJ-8]", names(ws), err)
	}
	if _, err := SelectWorkloads(avail, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func names(ws []*workloads.Workload) []string {
	var out []string
	for _, w := range ws {
		out = append(out, w.Name)
	}
	return out
}

// TestDeterministicAcrossJobs is the engine's core guarantee: the
// emitted result set is byte-identical for every worker count.
func TestDeterministicAcrossJobs(t *testing.T) {
	ws := workloads.Tiny()
	grid := Grid{
		Workloads: []*workloads.Workload{ws[0], ws[1], ws[3]}, // IS, CG, HJ-2
		Systems:   uarch.All()[:2],                            // Haswell, XeonPhi
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto, core.VariantManual},
	}
	var ref []byte
	for _, jobs := range []int{1, 2, 3, 8} {
		set, err := grid.Run(jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatalf("jobs=%d: WriteJSON: %v", jobs, err)
		}
		if ref == nil {
			ref = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("jobs=%d result set differs from jobs=1", jobs)
		}
	}
}

// TestWorkerStateIsolation checks that the context-recycled parallel
// path bleeds no state between runs: every cell must match a run on a
// fresh, never-reused simulator.
func TestWorkerStateIsolation(t *testing.T) {
	ws := workloads.Tiny()
	g := Grid{
		Workloads: []*workloads.Workload{ws[0], ws[4]}, // IS, HJ-8
		Systems:   uarch.All()[2:],                     // A57, A53
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	set, err := g.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range set.Outcomes {
		fresh, err := core.Run(o.Workload, o.System, o.Variant, o.Options)
		if err != nil {
			t.Fatalf("%s/%s/%s fresh: %v", o.Workload.Name, o.System.Name, o.Variant, err)
		}
		if o.Result.Cycles != fresh.Cycles || o.Result.Stats != fresh.Stats ||
			o.Result.Checksum != fresh.Checksum ||
			o.Result.L1Hits != fresh.L1Hits || o.Result.L1Misses != fresh.L1Misses ||
			o.Result.DRAMAccesses != fresh.DRAMAccesses ||
			o.Result.TLBWalks != fresh.TLBWalks {
			t.Errorf("%s/%s/%s: pooled run differs from fresh simulator",
				o.Workload.Name, o.System.Name, o.Variant)
		}
	}
}

// TestExecuteErrorDeterministic: a failing cell surfaces as the first
// error in request order, and the other cells still complete.
func TestExecuteErrorDeterministic(t *testing.T) {
	ws := workloads.Tiny()
	hw := uarch.Haswell()
	reqs := []Request{
		{Workload: ws[0], System: hw, Variant: core.VariantPlain},
		{Workload: ws[0], System: hw, Variant: core.Variant("bogus")},
		{Workload: ws[1], System: hw, Variant: core.Variant("worse")},
	}
	set, err := Execute(reqs, 3)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want the first bad variant", err)
	}
	if set.Outcomes[0].Err != nil || set.Outcomes[0].Result == nil {
		t.Error("healthy cell should have completed")
	}
	recs := set.Records()
	if recs[1].Err == "" || recs[2].Err == "" {
		t.Error("failed cells should carry their errors in the records")
	}
}

func TestResultSetHelpers(t *testing.T) {
	ws := workloads.Tiny()
	g := Grid{
		Workloads: []*workloads.Workload{ws[0]},
		Systems:   uarch.All()[:1],
		Variants:  []core.Variant{core.VariantPlain, core.VariantManual},
	}
	set, err := g.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if set.Get("IS", "Haswell", core.VariantPlain) == nil {
		t.Fatal("Get missed a completed cell")
	}
	sp := set.Speedup("IS", "Haswell", core.VariantPlain, core.VariantManual)
	if sp <= 0 {
		t.Errorf("speedup = %v, want positive", sp)
	}
	sps := set.Speedups("Haswell", core.VariantPlain, core.VariantManual)
	if len(sps) != 1 || sps[0] != sp {
		t.Errorf("Speedups = %v, want [%v]", sps, sp)
	}
	if g := Geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}

	var csv bytes.Buffer
	if err := set.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,system,variant") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "IS,Haswell,plain") {
		t.Errorf("CSV row wrong: %s", lines[1])
	}
}

// TestSerialParallelGoldenEquivalence diffs the golden-sized matrix —
// every workload, machine and variant at cmd/golden's reduced input
// sizes — between a serial and a parallel execution. This is the
// acceptance check for the engine; -short relies on the tiny-matrix
// determinism test above instead.
func TestSerialParallelGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-sized equivalence sweep")
	}
	g := Grid{
		Workloads: []*workloads.Workload{
			workloads.IS(1<<13, 1<<17),
			workloads.CG(1024, 48),
			workloads.RA(17, 1<<11),
			workloads.HJ(1<<12, 2),
			workloads.HJ(1<<12, 8),
			workloads.G500(10, 8),
		},
		Systems:  uarch.All(),
		Variants: Variants(),
		Options:  core.Options{Hoist: true},
	}
	serial, err := g.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := g.Run(0) // GOMAXPROCS workers
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serial and parallel golden dumps differ")
	}
}
