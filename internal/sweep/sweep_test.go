package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestGridExpandOrder(t *testing.T) {
	ws := workloads.Tiny()[:2]
	g := Grid{
		Workloads: ws,
		Systems:   uarch.All()[:2],
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	reqs := g.Expand()
	if len(reqs) != 8 {
		t.Fatalf("expanded %d requests, want 8", len(reqs))
	}
	// Workload-major, then system, then variant.
	if reqs[0].Workload != ws[0] || reqs[0].Variant != core.VariantPlain {
		t.Errorf("first request out of order: %+v", reqs[0])
	}
	if reqs[1].Variant != core.VariantAuto {
		t.Errorf("variant must be the innermost axis")
	}
	if reqs[2].System.Name != uarch.All()[1].Name {
		t.Errorf("system must be the middle axis")
	}
	if reqs[4].Workload != ws[1] {
		t.Errorf("workload must be the outermost axis")
	}
}

// TestGridExpandEmptyAxis pins the documented behaviour: an empty
// workload/system/variant axis yields zero requests, and running the
// empty grid succeeds with an empty result set — except the hardware
// axis, where empty means "default" and expansion proceeds.
func TestGridExpandEmptyAxis(t *testing.T) {
	ws := workloads.Tiny()[:1]
	full := Grid{
		Workloads: ws,
		Systems:   uarch.All()[:1],
		Variants:  []core.Variant{core.VariantPlain},
	}
	for name, g := range map[string]Grid{
		"no workloads": {Systems: full.Systems, Variants: full.Variants},
		"no systems":   {Workloads: ws, Variants: full.Variants},
		"no variants":  {Workloads: ws, Systems: full.Systems},
	} {
		if reqs := g.Expand(); len(reqs) != 0 {
			t.Errorf("%s: expanded %d requests, want 0", name, len(reqs))
		}
		set, err := g.Run(2)
		if err != nil {
			t.Errorf("%s: empty grid failed: %v", name, err)
		}
		if set == nil || len(set.Outcomes) != 0 {
			t.Errorf("%s: empty grid produced outcomes: %+v", name, set)
		}
	}
	// Empty hardware axis = one pass with the systems' own models.
	if reqs := full.Expand(); len(reqs) != 1 || reqs[0].System != full.Systems[0] {
		t.Errorf("empty hardware axis should reuse the system config verbatim: %+v", reqs)
	}
}

// TestGridExpandHWPrefetcherAxis: the hardware axis derives one shared
// config per system × model (so worker contexts recycle simulators),
// slots between system and variant in enumeration order, and surfaces
// in the emitted records.
func TestGridExpandHWPrefetcherAxis(t *testing.T) {
	ws := workloads.Tiny()[:1]
	g := Grid{
		Workloads:     ws,
		Systems:       uarch.All()[:1], // Haswell
		HWPrefetchers: []string{HWPrefetcherDefault, "none", "imp"},
		Variants:      []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	reqs := g.Expand()
	if len(reqs) != 6 {
		t.Fatalf("expanded %d requests, want 6", len(reqs))
	}
	// default keeps the original pointer; named models derive copies.
	if reqs[0].System != g.Systems[0] || reqs[1].System != g.Systems[0] {
		t.Error("default axis value must not copy the config")
	}
	if reqs[2].System == g.Systems[0] || reqs[2].System.HWPrefetcher != "none" {
		t.Errorf("hwpf=none config wrong: %+v", reqs[2].System.HWPrefetcher)
	}
	if reqs[2].System != reqs[3].System {
		t.Error("variants of one system×model cell must share a derived config")
	}
	if reqs[4].System.HWPrefetcherName() != "imp" {
		t.Errorf("hwpf axis out of order: got %q", reqs[4].System.HWPrefetcherName())
	}
	if reqs[2].System.Name != g.Systems[0].Name {
		t.Error("derived configs must keep the machine name")
	}

	set, err := g.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	recs := set.Records()
	wantHW := []string{"stride", "stride", "none", "none", "imp", "imp"}
	for i, r := range recs {
		if r.HWPF != wantHW[i] {
			t.Errorf("record %d hwpf = %q, want %q", i, r.HWPF, wantHW[i])
		}
	}
	// hwpf=none must actually disable hardware prefetching.
	if recs[2].HWPrefetches != 0 {
		t.Errorf("hwpf=none issued %d hardware prefetches", recs[2].HWPrefetches)
	}
	if recs[0].HWPrefetches == 0 {
		t.Error("default (stride) issued no hardware prefetches")
	}
}

// TestGridExpandCoreAxis: the core axis mirrors the hardware one — a
// shared derived config per system × model, slotted inside the
// hardware axis in enumeration order, surfaced in the records.
func TestGridExpandCoreAxis(t *testing.T) {
	ws := workloads.Tiny()[:1]
	g := Grid{
		Workloads: ws,
		Systems:   uarch.All()[:1], // Haswell
		Cores:     []string{CoreDefault, "ooo", "inorder"},
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	reqs := g.Expand()
	if len(reqs) != 6 {
		t.Fatalf("expanded %d requests, want 6", len(reqs))
	}
	// default keeps the original pointer; named models derive copies.
	if reqs[0].System != g.Systems[0] || reqs[1].System != g.Systems[0] {
		t.Error("default axis value must not copy the config")
	}
	if reqs[2].System == g.Systems[0] || reqs[2].System.Core != "ooo" {
		t.Errorf("core=ooo config wrong: %+v", reqs[2].System.Core)
	}
	if reqs[2].System != reqs[3].System {
		t.Error("variants of one system×core cell must share a derived config")
	}
	if reqs[4].System.CoreName() != "inorder" {
		t.Errorf("core axis out of order: got %q", reqs[4].System.CoreName())
	}
	if reqs[2].System.Name != g.Systems[0].Name {
		t.Error("derived configs must keep the machine name")
	}

	set, err := g.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	recs := set.Records()
	// Haswell's empty Core field resolves to the interval model.
	wantCore := []string{"interval", "interval", "ooo", "ooo", "inorder", "inorder"}
	for i, r := range recs {
		if r.Core != wantCore[i] {
			t.Errorf("record %d core = %q, want %q", i, r.Core, wantCore[i])
		}
	}
	// The models must actually time differently: an in-order Haswell
	// cannot hide its misses, so the plain cells cannot all agree.
	if recs[0].Cycles == recs[4].Cycles {
		t.Error("interval and inorder timed the plain cell identically")
	}
}

// TestSweepReportsPrefetchLateCycles: the late-prefetch statistic the
// hierarchy fix revived must reach the sweep records — at least one
// software-prefetching cell of the tiny grid has a demand hit that
// waits on its own in-flight prefetch fill.
func TestSweepReportsPrefetchLateCycles(t *testing.T) {
	g := Grid{
		Workloads: workloads.Tiny(),
		Systems:   uarch.All()[:1], // Haswell
		Variants:  []core.Variant{core.VariantAuto},
	}
	set, err := g.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	var late float64
	for _, r := range set.Records() {
		if r.Err != "" {
			t.Fatalf("%s/%s failed: %s", r.Workload, r.Variant, r.Err)
		}
		late += r.PrefetchLateCycles
	}
	if late <= 0 {
		t.Error("no cell of the tiny auto grid reports PrefetchLateCycles > 0")
	}
}

func TestJobsClamp(t *testing.T) {
	if got := Jobs(0, 100); got < 1 {
		t.Errorf("Jobs(0, 100) = %d, want >= 1", got)
	}
	if got := Jobs(8, 3); got != 3 {
		t.Errorf("Jobs(8, 3) = %d, want 3", got)
	}
	if got := Jobs(-1, 0); got != 1 {
		t.Errorf("Jobs(-1, 0) = %d, want 1", got)
	}
	if got := Jobs(5, 100); got != 5 {
		t.Errorf("Jobs(5, 100) = %d, want 5", got)
	}
}

func TestParseVariants(t *testing.T) {
	vs, err := ParseVariants("")
	if err != nil || len(vs) != 2 || vs[0] != core.VariantPlain || vs[1] != core.VariantAuto {
		t.Errorf("default variants = %v, %v", vs, err)
	}
	vs, err = ParseVariants("plain, manual,icc")
	if err != nil || len(vs) != 3 || vs[2] != core.VariantICC {
		t.Errorf("ParseVariants = %v, %v", vs, err)
	}
	if _, err := ParseVariants("bogus"); err == nil {
		t.Error("unknown variant accepted")
	}
}

// TestParseVariantsErrorPaths pins the failure mode for every
// malformed selector: the error names the offending token and lists
// the accepted variants, and no partial result leaks out.
func TestParseVariantsErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		in, wantTok string
	}{
		{"bogus", `"bogus"`},                 // unknown name
		{"plain,bogus,auto", `"bogus"`},      // unknown amid valid names
		{"plain,,auto", `""`},                // empty element
		{"plain, ICC", `"ICC"`},              // case-sensitive
		{"plain auto", `"plain auto"`},       // wrong separator
		{"indirect-only,manuel", `"manuel"`}, // near-miss spelling
	} {
		vs, err := ParseVariants(tc.in)
		if err == nil {
			t.Errorf("ParseVariants(%q) accepted: %v", tc.in, vs)
			continue
		}
		if vs != nil {
			t.Errorf("ParseVariants(%q) returned partial result %v with error", tc.in, vs)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown variant") || !strings.Contains(msg, tc.wantTok) {
			t.Errorf("ParseVariants(%q) error %q does not name token %s", tc.in, msg, tc.wantTok)
		}
		if !strings.Contains(msg, string(core.VariantIndirectOnly)) {
			t.Errorf("ParseVariants(%q) error %q does not list the accepted variants", tc.in, msg)
		}
	}
	// Whitespace-only input is the documented default, not an error.
	if vs, err := ParseVariants("  \t "); err != nil || len(vs) != 2 {
		t.Errorf("whitespace input = %v, %v, want the plain,auto default", vs, err)
	}
}

func TestParseHWPrefetchers(t *testing.T) {
	hws, err := ParseHWPrefetchers("")
	if err != nil || len(hws) != 1 || hws[0] != HWPrefetcherDefault {
		t.Errorf("default axis = %v, %v", hws, err)
	}
	hws, err = ParseHWPrefetchers("default, none,stride,imp")
	if err != nil || len(hws) != 4 || hws[3] != "imp" {
		t.Errorf("ParseHWPrefetchers = %v, %v", hws, err)
	}
	for _, bad := range []string{"bogus", "stride,,imp", "Stride"} {
		if hws, err := ParseHWPrefetchers(bad); err == nil {
			t.Errorf("ParseHWPrefetchers(%q) accepted: %v", bad, hws)
		} else if !strings.Contains(err.Error(), "unknown hardware prefetcher") {
			t.Errorf("ParseHWPrefetchers(%q) error lacks context: %v", bad, err)
		}
	}
}

func TestParseSystems(t *testing.T) {
	cs, err := ParseSystems("")
	if err != nil || len(cs) != 4 {
		t.Errorf("default systems = %v, %v", cs, err)
	}
	cs, err = ParseSystems("A53, Haswell")
	if err != nil || len(cs) != 2 || cs[0].Name != "A53" {
		t.Errorf("ParseSystems = %v, %v", cs, err)
	}
	if _, err := ParseSystems("M4"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestSelectWorkloads(t *testing.T) {
	avail := workloads.Tiny()
	ws, err := SelectWorkloads(avail, "")
	if err != nil || len(ws) != len(avail) {
		t.Errorf("default selection = %d workloads, %v", len(ws), err)
	}
	ws, err = SelectWorkloads(avail, "IS,HJ")
	if err != nil || len(ws) != 3 { // IS plus both hash joins
		t.Errorf("selection = %v, %v", names(ws), err)
	}
	// Overlapping tokens must not duplicate a workload.
	ws, err = SelectWorkloads(avail, "HJ,HJ-8")
	if err != nil || len(ws) != 2 {
		t.Errorf("overlapping selection = %v, %v, want deduplicated [HJ-2 HJ-8]", names(ws), err)
	}
	if _, err := SelectWorkloads(avail, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func names(ws []*workloads.Workload) []string {
	var out []string
	for _, w := range ws {
		out = append(out, w.Name)
	}
	return out
}

// TestDeterministicAcrossJobs is the engine's core guarantee: the
// emitted result set is byte-identical for every worker count.
func TestDeterministicAcrossJobs(t *testing.T) {
	ws := workloads.Tiny()
	grid := Grid{
		Workloads: []*workloads.Workload{ws[0], ws[1], ws[3]}, // IS, CG, HJ-2
		Systems:   uarch.All()[:2],                            // Haswell, XeonPhi
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto, core.VariantManual},
	}
	var ref []byte
	for _, jobs := range []int{1, 2, 3, 8} {
		set, err := grid.Run(jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatalf("jobs=%d: WriteJSON: %v", jobs, err)
		}
		if ref == nil {
			ref = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("jobs=%d result set differs from jobs=1", jobs)
		}
	}
}

// TestWorkerStateIsolation checks that the context-recycled parallel
// path bleeds no state between runs: every cell must match a run on a
// fresh, never-reused simulator.
func TestWorkerStateIsolation(t *testing.T) {
	ws := workloads.Tiny()
	g := Grid{
		Workloads: []*workloads.Workload{ws[0], ws[4]}, // IS, HJ-8
		Systems:   uarch.All()[2:],                     // A57, A53
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	set, err := g.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range set.Outcomes {
		fresh, err := core.Run(o.Workload, o.System, o.Variant, o.Options)
		if err != nil {
			t.Fatalf("%s/%s/%s fresh: %v", o.Workload.Name, o.System.Name, o.Variant, err)
		}
		if o.Result.Cycles != fresh.Cycles || o.Result.Stats != fresh.Stats ||
			o.Result.Checksum != fresh.Checksum ||
			o.Result.L1Hits != fresh.L1Hits || o.Result.L1Misses != fresh.L1Misses ||
			o.Result.DRAMAccesses != fresh.DRAMAccesses ||
			o.Result.TLBWalks != fresh.TLBWalks {
			t.Errorf("%s/%s/%s: pooled run differs from fresh simulator",
				o.Workload.Name, o.System.Name, o.Variant)
		}
	}
}

// TestExecuteErrorDeterministic: a failing cell surfaces as the first
// error in request order, and the other cells still complete.
func TestExecuteErrorDeterministic(t *testing.T) {
	ws := workloads.Tiny()
	hw := uarch.Haswell()
	reqs := []Request{
		{Workload: ws[0], System: hw, Variant: core.VariantPlain},
		{Workload: ws[0], System: hw, Variant: core.Variant("bogus")},
		{Workload: ws[1], System: hw, Variant: core.Variant("worse")},
	}
	set, err := Execute(reqs, 3)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want the first bad variant", err)
	}
	if set.Outcomes[0].Err != nil || set.Outcomes[0].Result == nil {
		t.Error("healthy cell should have completed")
	}
	recs := set.Records()
	if recs[1].Err == "" || recs[2].Err == "" {
		t.Error("failed cells should carry their errors in the records")
	}
}

func TestResultSetHelpers(t *testing.T) {
	ws := workloads.Tiny()
	g := Grid{
		Workloads: []*workloads.Workload{ws[0]},
		Systems:   uarch.All()[:1],
		Variants:  []core.Variant{core.VariantPlain, core.VariantManual},
	}
	set, err := g.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if set.Get("IS", "Haswell", core.VariantPlain) == nil {
		t.Fatal("Get missed a completed cell")
	}
	sp := set.Speedup("IS", "Haswell", core.VariantPlain, core.VariantManual)
	if sp <= 0 {
		t.Errorf("speedup = %v, want positive", sp)
	}
	sps := set.Speedups("Haswell", core.VariantPlain, core.VariantManual)
	if len(sps) != 1 || sps[0] != sp {
		t.Errorf("Speedups = %v, want [%v]", sps, sp)
	}
	if g := Geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}

	var csv bytes.Buffer
	if err := set.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,system,variant") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "IS,Haswell,plain") {
		t.Errorf("CSV row wrong: %s", lines[1])
	}
}

// TestSerialParallelGoldenEquivalence diffs the golden-sized matrix —
// every workload, machine and variant at cmd/golden's reduced input
// sizes — between a serial and a parallel execution. This is the
// acceptance check for the engine; -short relies on the tiny-matrix
// determinism test above instead.
func TestSerialParallelGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-sized equivalence sweep")
	}
	g := Grid{
		Workloads: []*workloads.Workload{
			workloads.IS(1<<13, 1<<17),
			workloads.CG(1024, 48),
			workloads.RA(17, 1<<11),
			workloads.HJ(1<<12, 2),
			workloads.HJ(1<<12, 8),
			workloads.G500(10, 8),
		},
		Systems:  uarch.All(),
		Variants: Variants(),
		Options:  core.Options{Hoist: true},
	}
	serial, err := g.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := g.Run(0) // GOMAXPROCS workers
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serial and parallel golden dumps differ")
	}
}
