package sweep

import (
	"repro/internal/core"
	"repro/internal/workloads"
)

// Spec is the one grid description every surface shares: swpfbench's
// -sweep flags, swpfd's POST /sweep and /tune bodies, and swpfctl's
// submit flags all build (or decode) this struct, and ToGrid is the
// single place a spec is validated and resolved against the axis
// registries. Empty selector strings mean each axis's default; Quality
// picks the workload pool — "full" (default), "quick", "tiny" (test
// sizes), or "gen" (randomly generated kernels, see internal/gen).
type Spec struct {
	Workloads string `json:"workloads,omitempty"`
	Systems   string `json:"systems,omitempty"`
	Variants  string `json:"variants,omitempty"`
	// HWPF is the hardware-prefetcher axis: comma-separated models
	// among default,none,stride,nextline,ghb,imp ("" = default, each
	// system's own model).
	HWPF string `json:"hwpf,omitempty"`
	// Core is the CPU-core-model axis: comma-separated models among
	// default,interval,ooo,inorder ("" = default, each system's own
	// timing model).
	Core string `json:"core,omitempty"`
	// Exec is the execution-mode axis: comma-separated among
	// direct,replay ("" = direct). Replay records each (workload,
	// variant) once and retimes it per machine x hwpf cell; with a
	// store attached, recorded traces persist and later jobs replay
	// without re-interpreting. Statistics are identical either way.
	Exec    string `json:"exec,omitempty"`
	C       int64  `json:"c,omitempty"`
	Depth   int    `json:"depth,omitempty"`
	Hoist   bool   `json:"hoist,omitempty"`
	Quality string `json:"quality,omitempty"`
	// Priority orders the fleet queue: higher leases first, FIFO within
	// a priority; a cell shared with other submissions keeps the
	// highest priority it has been asked for at.
	Priority int `json:"priority,omitempty"`
	// Gen adds N generated kernels (internal/gen, seeded by GenSeed) to
	// the selectable pool as GEN-00.. — local surfaces only: the
	// daemon rejects it because fleet workers resolve workloads by
	// (quality, name), which cannot reconstruct an ad-hoc generated
	// family (use quality "gen" for the default family fleet-wide).
	Gen     int    `json:"gen,omitempty"`
	GenSeed uint64 `json:"gen_seed,omitempty"`
}

// QualityName returns the spec's workload pool name with the default
// made explicit — the form that travels in fleet cell specs.
func (sp Spec) QualityName() string {
	if sp.Quality == "" {
		return "full"
	}
	return sp.Quality
}

// Pool resolves the spec's selectable workload pool: the quality pool,
// plus the Gen generated kernels when requested.
func (sp Spec) Pool() ([]*workloads.Workload, error) {
	pool, err := workloads.PoolByQuality(sp.Quality)
	if err != nil {
		return nil, err
	}
	if sp.Gen > 0 {
		// Generated kernels join the pool as first-class scenarios:
		// selectable by name or prefix ("GEN"), cached under their
		// canonical parameter vectors like any other workload.
		seed := sp.GenSeed
		if seed == 0 {
			seed = workloads.SyntheticDefaultSeed
		}
		pool = append(append([]*workloads.Workload{}, pool...), workloads.Synthetic(seed, sp.Gen)...)
	}
	return pool, nil
}

// ToGrid resolves the spec against the workload and axis registries,
// failing on any unknown name — submission-time validation, so a bad
// spec is a client error, never a failed job.
func (sp Spec) ToGrid() (Grid, error) {
	pool, err := sp.Pool()
	if err != nil {
		return Grid{}, err
	}
	ws, err := SelectWorkloads(pool, sp.Workloads)
	if err != nil {
		return Grid{}, err
	}
	cfgs, err := ParseSystems(sp.Systems)
	if err != nil {
		return Grid{}, err
	}
	vs, err := ParseVariants(sp.Variants)
	if err != nil {
		return Grid{}, err
	}
	hws, err := ParseHWPrefetchers(sp.HWPF)
	if err != nil {
		return Grid{}, err
	}
	cms, err := ParseCores(sp.Core)
	if err != nil {
		return Grid{}, err
	}
	es, err := ParseExecModes(sp.Exec)
	if err != nil {
		return Grid{}, err
	}
	return Grid{
		Workloads:     ws,
		Systems:       cfgs,
		HWPrefetchers: hws,
		Cores:         cms,
		Variants:      vs,
		Options:       core.Options{C: sp.C, Depth: sp.Depth, Hoist: sp.Hoist},
		Execs:         es,
	}, nil
}

// Validate checks the spec without materializing workload data beyond
// the quality pool; it reports exactly the error ToGrid would.
func (sp Spec) Validate() error {
	_, err := sp.ToGrid()
	return err
}
