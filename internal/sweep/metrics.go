package sweep

import "repro/internal/obs"

// Metrics holds the engine's instruments: how each cell was served
// (store hit, direct simulation, a replay group's recording run, or a
// trace replay) and per-phase execution-latency histograms — the
// interp-vs-sim split of the record/replay architecture, measured per
// cell. One Metrics registers once on a registry and may be shared by
// any number of Runners (all instruments are atomic).
//
// Observations wrap the simulator calls from outside — they read the
// clock and bump atomics, never touching simulator state — so result
// sets stay byte-identical with metrics on (pinned by a test).
type Metrics struct {
	CellsCache    *obs.Counter // served by the result cache up front
	CellsDirect   *obs.Counter // full direct simulations
	CellsRecorded *obs.Counter // served by a group's recording run
	CellsReplayed *obs.Counter // retimed from a trace image

	DirectSeconds *obs.Histogram // full simulation (interp + timing)
	RecordSeconds *obs.Histogram // recording interpretation of a group
	ReplaySeconds *obs.Histogram // timing-only replay of one cell
}

// NewMetrics registers the engine's instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	cells := func(source string) *obs.Counter {
		return reg.Counter("swpf_sweep_cells_total",
			"Cells completed by the sweep engine, by how they were served.",
			obs.L("source", source))
	}
	seconds := func(phase string) *obs.Histogram {
		return reg.Histogram("swpf_sweep_cell_seconds",
			"Per-cell execution latency in seconds, by engine phase.",
			nil, obs.L("phase", phase))
	}
	return &Metrics{
		CellsCache:    cells("cache"),
		CellsDirect:   cells("direct"),
		CellsRecorded: cells("recorded"),
		CellsReplayed: cells("replayed"),
		DirectSeconds: seconds("direct"),
		RecordSeconds: seconds("record"),
		ReplaySeconds: seconds("replay"),
	}
}

// nopMetrics backs Runners with no Metrics set: real instruments on a
// private registry nothing scrapes, so Execute stays branch-free.
var nopMetrics = NewMetrics(obs.NewRegistry())

// metrics returns the Runner's instruments, never nil.
func (r Runner) metrics() *Metrics {
	if r.Metrics != nil {
		return r.Metrics
	}
	return nopMetrics
}
