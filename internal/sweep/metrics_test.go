package sweep

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestMetricsDoNotPerturbResults is the instrumentation safety gate:
// the same grid run with and without Metrics attached must emit
// byte-identical JSON and CSV — observations wrap the simulator calls
// from outside and cannot change what they compute.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	g := Grid{
		Workloads: workloads.Tiny()[:2],
		Systems:   uarch.All()[:2],
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
	}
	reqs := g.Expand()

	bare, err := Runner{Jobs: 2}.Execute(reqs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	instrumented, err := Runner{Jobs: 2, Metrics: NewMetrics(reg)}.Execute(reqs)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := bare.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := instrumented.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON output differs with metrics attached")
	}
	a.Reset()
	b.Reset()
	if err := bare.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := instrumented.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("CSV output differs with metrics attached")
	}
}

// TestMetricsAccounting checks the source counters across the cache,
// direct, record and replay paths, and that the phase histograms saw
// exactly the cells their phases ran.
func TestMetricsAccounting(t *testing.T) {
	g := Grid{
		Workloads: workloads.Tiny()[:2],
		Systems:   uarch.All()[:2],
		Variants:  []core.Variant{core.VariantAuto},
		Execs:     []core.ExecMode{core.ExecReplay},
	}
	reqs := g.Expand() // 2 workloads × 2 systems = 4 cells, 2 replay groups

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	cache := newMemTraceCache()
	cache.serveResults = true
	r := Runner{Jobs: 2, Cache: cache, Metrics: m}
	if _, err := r.Execute(reqs); err != nil {
		t.Fatal(err)
	}
	// Cold: each group records once (serving its first cell) and
	// replays the rest.
	if got := m.CellsRecorded.Value(); got != 2 {
		t.Errorf("recorded = %d, want 2", got)
	}
	if got := m.CellsReplayed.Value(); got != 2 {
		t.Errorf("replayed = %d, want 2", got)
	}
	if got := m.CellsCache.Value(); got != 0 {
		t.Errorf("cache-served = %d, want 0 on the cold pass", got)
	}
	if got := m.RecordSeconds.Count(); got != 2 {
		t.Errorf("record observations = %d, want 2", got)
	}
	if got := m.ReplaySeconds.Count(); got != 2 {
		t.Errorf("replay observations = %d, want 2", got)
	}

	// Warm: every cell answers from the cache.
	if _, err := r.Execute(reqs); err != nil {
		t.Fatal(err)
	}
	if got := m.CellsCache.Value(); got != 4 {
		t.Errorf("cache-served = %d after the warm pass, want 4", got)
	}
	if got := m.CellsRecorded.Value() + m.CellsReplayed.Value(); got != 4 {
		t.Errorf("simulated total moved on the warm pass: %d", got)
	}

	// Direct cells land in the direct counter and histogram.
	direct := Grid{
		Workloads: workloads.Tiny()[:1],
		Systems:   uarch.All()[:1],
		Variants:  []core.Variant{core.VariantPlain},
	}.Expand()
	if _, err := (Runner{Jobs: 1, Metrics: m}).Execute(direct); err != nil {
		t.Fatal(err)
	}
	if got := m.CellsDirect.Value(); got != 1 {
		t.Errorf("direct = %d, want 1", got)
	}
	if got := m.DirectSeconds.Count(); got != 1 {
		t.Errorf("direct observations = %d, want 1", got)
	}
}
