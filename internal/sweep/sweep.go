// Package sweep is the parallel experiment engine: it takes a list (or
// declarative grid) of simulation requests — workload × machine ×
// variant × options — fans them out across a pool of worker goroutines,
// and collects the outcomes into a deterministic, order-independent
// result set with JSON/CSV emitters and speedup helpers.
//
// Every run is an independent, deterministic simulation, so the result
// set is bit-identical for any worker count; tests diff serial against
// parallel executions to enforce this. Each worker owns a core.Context,
// which keeps one reset-in-place simulator per machine configuration,
// so workers recycle their cache/TLB/MSHR table storage across runs
// instead of reallocating it.
//
// The figure harness (internal/bench), the golden stat dumper
// (cmd/golden) and swpfbench's -sweep mode are all built on this
// package.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Request describes one cell of an experiment grid.
type Request struct {
	Workload *workloads.Workload
	System   *sim.Config
	Variant  core.Variant
	Options  core.Options
}

// Outcome pairs a request with what happened when it ran.
type Outcome struct {
	Request
	Result *core.Result
	Err    error
}

// Jobs normalizes a worker count: non-positive means GOMAXPROCS, and
// the pool never exceeds the number of requests.
func Jobs(jobs, requests int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > requests {
		jobs = requests
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// Execute runs every request on a pool of jobs worker goroutines
// (jobs <= 0 selects GOMAXPROCS) and returns the outcomes in request
// order, regardless of completion order. The returned error is the
// first failure in request order — deterministic even though workers
// race — and the result set still holds every other outcome.
func Execute(reqs []Request, jobs int) (*ResultSet, error) {
	out := make([]Outcome, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := Jobs(jobs, len(reqs)); k > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One context per worker: simulator tables are recycled
			// across this worker's runs and never shared between
			// goroutines.
			cx := core.NewContext()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				r := reqs[i]
				res, err := cx.Run(r.Workload, r.System, r.Variant, r.Options)
				out[i] = Outcome{Request: r, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	set := &ResultSet{Outcomes: out}
	return set, set.Err()
}
