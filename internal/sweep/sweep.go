// Package sweep is the parallel experiment engine: it takes a list (or
// declarative grid) of simulation requests — workload × machine ×
// variant × options — fans them out across a pool of worker goroutines,
// and collects the outcomes into a deterministic, order-independent
// result set with JSON/CSV emitters and speedup helpers.
//
// Every run is an independent, deterministic simulation, so the result
// set is bit-identical for any worker count; tests diff serial against
// parallel executions to enforce this. Each worker owns a core.Context,
// which keeps one reset-in-place simulator per machine configuration,
// so workers recycle their cache/TLB/MSHR table storage across runs
// instead of reallocating it.
//
// The figure harness (internal/bench), the golden stat dumper
// (cmd/golden) and swpfbench's -sweep mode are all built on this
// package.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Request describes one cell of an experiment grid.
type Request struct {
	Workload *workloads.Workload
	System   *sim.Config
	Variant  core.Variant
	Options  core.Options
}

// Outcome pairs a request with what happened when it ran.
type Outcome struct {
	Request
	Result *core.Result
	Err    error
}

// Jobs normalizes a worker count: non-positive means GOMAXPROCS, and
// the pool never exceeds the number of requests.
func Jobs(jobs, requests int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > requests {
		jobs = requests
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// Cache is a pluggable persistent result cache consulted by Runner.
// Get returns the stored result for a request (a miss is (nil, false));
// Put persists a freshly computed one. A simulation request is fully
// deterministic, so a cache entry is exactly as good as re-running the
// cell — internal/store provides the content-addressed on-disk
// implementation. Implementations must be safe for concurrent use:
// worker goroutines Put results as they complete.
type Cache interface {
	Get(Request) (*core.Result, bool)
	Put(Request, *core.Result) error
}

// Runner executes request lists. The zero value runs serially enough:
// Jobs <= 0 selects GOMAXPROCS workers, no cache, no progress
// reporting.
type Runner struct {
	// Jobs is the worker-pool size; <= 0 selects GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, answers cells without simulating and
	// persists computed results as each cell completes — an
	// interrupted grid resumes from the cells already stored.
	Cache Cache
	// OnProgress, when non-nil, is invoked after every completed cell
	// (cache hit or simulated) with the running completion count and
	// the request total. It is called concurrently from worker
	// goroutines and must be safe for that.
	OnProgress func(done, total int)
	// OnPutError, when non-nil, receives cache-persistence failures.
	// Persistence is best-effort: a failed Put never fails the sweep
	// (the cell just recomputes next time), so with a nil callback
	// failures are silently ignored. Called concurrently from worker
	// goroutines.
	OnPutError func(Request, error)
}

// Execute runs every request and returns the outcomes in request
// order, regardless of completion order. The returned error is the
// first failure in request order — deterministic even though workers
// race — and the result set still holds every other outcome. Cache
// hits are served before the worker pool starts, so only misses cost
// simulation time; failed cells are never cached.
func (r Runner) Execute(reqs []Request) (*ResultSet, error) {
	out := make([]Outcome, len(reqs))
	var done atomic.Int64
	progress := func() {
		n := int(done.Add(1))
		if r.OnProgress != nil {
			r.OnProgress(n, len(reqs))
		}
	}

	// Serve cache hits up front; only the misses go to the pool.
	var misses []int
	for i, req := range reqs {
		if r.Cache != nil {
			if res, ok := r.Cache.Get(req); ok {
				out[i] = Outcome{Request: req, Result: res}
				progress()
				continue
			}
		}
		misses = append(misses, i)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for k := Jobs(r.Jobs, len(misses)); k > 0 && len(misses) > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One context per worker: simulator tables are recycled
			// across this worker's runs and never shared between
			// goroutines.
			cx := core.NewContext()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(misses) {
					return
				}
				i := misses[n]
				req := reqs[i]
				res, err := cx.Run(req.Workload, req.System, req.Variant, req.Options)
				out[i] = Outcome{Request: req, Result: res, Err: err}
				if err == nil && r.Cache != nil {
					if perr := r.Cache.Put(req, res); perr != nil && r.OnPutError != nil {
						r.OnPutError(req, perr)
					}
				}
				progress()
			}
		}()
	}
	wg.Wait()
	set := &ResultSet{Outcomes: out}
	return set, set.Err()
}

// Execute runs every request on a pool of jobs worker goroutines
// (jobs <= 0 selects GOMAXPROCS); see Runner.Execute.
func Execute(reqs []Request, jobs int) (*ResultSet, error) {
	return Runner{Jobs: jobs}.Execute(reqs)
}
