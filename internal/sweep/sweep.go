// Package sweep is the parallel experiment engine: it takes a list (or
// declarative grid) of simulation requests — workload × machine ×
// variant × options — fans them out across a pool of worker goroutines,
// and collects the outcomes into a deterministic, order-independent
// result set with JSON/CSV emitters and speedup helpers.
//
// Every run is an independent, deterministic simulation, so the result
// set is bit-identical for any worker count; tests diff serial against
// parallel executions to enforce this. Each worker owns a core.Context,
// which keeps one reset-in-place simulator per machine configuration,
// so workers recycle their cache/TLB/MSHR table storage across runs
// instead of reallocating it.
//
// Cells requested with Exec = core.ExecReplay run through the
// record/replay split (internal/trace): the engine factors them by
// (workload, variant, options) — the functional coordinates — records
// (or fetches from a TraceCache) one trace per group, and retimes every
// machine × hwpf cell of the group by replaying that trace. Replayed
// statistics are byte-for-byte identical to direct runs, so the two
// modes are interchangeable cell by cell; replay just amortizes the
// interpreter across the timing axes.
//
// The figure harness (internal/bench), the golden stat dumper
// (cmd/golden) and swpfbench's -sweep mode are all built on this
// package.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Request describes one cell of an experiment grid. Exec selects the
// execution mode; the zero value ("") means core.ExecDirect, so request
// lists written before the axis existed behave unchanged.
type Request struct {
	Workload *workloads.Workload
	System   *sim.Config
	Variant  core.Variant
	Options  core.Options
	Exec     core.ExecMode
}

// ExecMode returns the request's execution mode with the zero value
// normalized to direct.
func (r Request) ExecMode() core.ExecMode {
	if r.Exec == "" {
		return core.ExecDirect
	}
	return r.Exec
}

// Outcome pairs a request with what happened when it ran.
type Outcome struct {
	Request
	Result *core.Result
	Err    error
}

// Jobs normalizes a worker count: non-positive means GOMAXPROCS, and
// the pool never exceeds the number of requests.
func Jobs(jobs, requests int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > requests {
		jobs = requests
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// Cache is a pluggable persistent result cache consulted by Runner.
// Get returns the stored result for a request (a miss is (nil, false));
// Put persists a freshly computed one. A simulation request is fully
// deterministic, so a cache entry is exactly as good as re-running the
// cell — internal/store provides the content-addressed on-disk
// implementation. Implementations must be safe for concurrent use:
// worker goroutines Put results as they complete.
//
// Result keys ignore the execution mode — direct and replay results
// are byte-identical, so either mode's entries serve both.
type Cache interface {
	Get(Request) (*core.Result, bool)
	Put(Request, *core.Result) error
}

// TraceCache is the optional trace-object extension of Cache: a cache
// that also persists recorded traces lets a replay sweep skip the
// recording interpretation entirely when any earlier sweep (or
// process) has recorded the same (workload, variant, options) group.
// internal/store implements it; a Runner probes for it with a type
// assertion, so plain result caches keep working untouched.
type TraceCache interface {
	GetTrace(Request) (*trace.Trace, bool)
	PutTrace(Request, *trace.Trace) error
}

// Runner executes request lists. The zero value runs serially enough:
// Jobs <= 0 selects GOMAXPROCS workers, no cache, no progress
// reporting.
type Runner struct {
	// Jobs is the worker-pool size; <= 0 selects GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, answers cells without simulating and
	// persists computed results as each cell completes — an
	// interrupted grid resumes from the cells already stored. If it
	// also implements TraceCache, replay-mode groups fetch and persist
	// their traces through it.
	Cache Cache
	// OnProgress, when non-nil, is invoked after every completed cell
	// (cache hit or simulated) with the running completion count and
	// the request total. It is called concurrently from worker
	// goroutines and must be safe for that.
	OnProgress func(done, total int)
	// OnPutError, when non-nil, receives cache-persistence failures
	// (results and traces alike). Persistence is best-effort: a failed
	// Put never fails the sweep (the cell just recomputes next time),
	// so with a nil callback failures are silently ignored. Called
	// concurrently from worker goroutines.
	OnPutError func(Request, error)
	// Metrics, when non-nil, receives per-cell accounting: how each
	// cell was served and per-phase latency histograms (see
	// NewMetrics). Observations wrap the simulator calls from outside,
	// so result sets are byte-identical with or without it.
	Metrics *Metrics
}

// groupKey identifies a replay group: the functional coordinates of a
// recording. Machine and hwpf are absent — that is the amortization.
type groupKey struct {
	name, params string
	variant      core.Variant
	options      core.Options
}

// group is one replay group: the request indices (in request order)
// sharing a functional key.
type group struct {
	idxs     []int
	image    *interp.Image
	err      error
	recorded bool // idxs[0] was served by the recording run itself
}

// Execute runs every request and returns the outcomes in request
// order, regardless of completion order. The returned error is the
// first failure in request order — deterministic even though workers
// race — and the result set still holds every other outcome. Cache
// hits are served before the worker pool starts, so only misses cost
// simulation time; failed cells are never cached.
//
// Replay-mode misses run in two pooled phases after the direct pool:
// one trace per group (recorded, or fetched from a TraceCache), then
// every remaining cell of every group as a replay. A group whose
// trace cannot be obtained fails all its cells with the recording
// error. The result set is bit-identical for any worker count in both
// modes — and across modes, which cmd/golden enforces byte-for-byte.
func (r Runner) Execute(reqs []Request) (*ResultSet, error) {
	out := make([]Outcome, len(reqs))
	m := r.metrics()
	var done atomic.Int64
	progress := func() {
		n := int(done.Add(1))
		if r.OnProgress != nil {
			r.OnProgress(n, len(reqs))
		}
	}

	// Serve cache hits up front; only the misses go to the pools.
	// Result keys ignore Exec, so a warm direct store answers replay
	// cells (and vice versa) — the modes produce identical results.
	var direct []int
	var groups []*group
	byKey := make(map[groupKey]*group)
	for i, req := range reqs {
		if r.Cache != nil {
			if res, ok := r.Cache.Get(req); ok {
				out[i] = Outcome{Request: req, Result: res}
				m.CellsCache.Inc()
				progress()
				continue
			}
		}
		if req.ExecMode() != core.ExecReplay {
			direct = append(direct, i)
			continue
		}
		k := groupKey{req.Workload.Name, req.Workload.Params, req.Variant, req.Options}
		g := byKey[k]
		if g == nil {
			g = &group{}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
	}

	// Direct misses: one cell per work item, as always.
	r.pool(len(direct), func(cx *core.Context, n int) {
		i := direct[n]
		req := reqs[i]
		start := time.Now()
		res, err := cx.Run(req.Workload, req.System, req.Variant, req.Options)
		m.DirectSeconds.Observe(time.Since(start).Seconds())
		m.CellsDirect.Inc()
		out[i] = Outcome{Request: req, Result: res, Err: err}
		r.put(req, res, err)
		progress()
	})

	// Replay phase 1: one trace per group. Recording is itself a full
	// direct run, so its Result serves the group's first cell for free
	// (with Pass nil, like every replay- or store-served result).
	tc, _ := r.Cache.(TraceCache)
	r.pool(len(groups), func(cx *core.Context, n int) {
		g := groups[n]
		req := reqs[g.idxs[0]]
		if tc != nil {
			if t, ok := tc.GetTrace(req); ok {
				if im, err := interp.NewImage(t); err == nil {
					g.image = im
					return
				}
				// Undecodable under this build (e.g. recorded by a
				// different IR revision): fall through and re-record.
			}
		}
		start := time.Now()
		t, res, err := cx.Record(req.Workload, req.System, req.Variant, req.Options)
		if err == nil {
			g.image, err = interp.NewImage(t)
		}
		m.RecordSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			g.err = err
			return
		}
		res.Pass = nil
		out[g.idxs[0]] = Outcome{Request: req, Result: res}
		g.recorded = true
		m.CellsRecorded.Inc()
		r.put(req, res, nil)
		if tc != nil {
			if perr := tc.PutTrace(req, t); perr != nil && r.OnPutError != nil {
				r.OnPutError(req, perr)
			}
		}
		progress()
	})

	// Replay phase 2: every remaining cell, retimed from its group's
	// predecoded image (shared read-only across workers).
	var cells, cellGroup []int
	for gi, g := range groups {
		if g.err != nil {
			for _, i := range g.idxs {
				out[i] = Outcome{Request: reqs[i], Err: g.err}
				progress()
			}
			continue
		}
		idxs := g.idxs
		if g.recorded {
			idxs = idxs[1:]
		}
		for _, i := range idxs {
			cells = append(cells, i)
			cellGroup = append(cellGroup, gi)
		}
	}
	r.pool(len(cells), func(cx *core.Context, n int) {
		i := cells[n]
		req := reqs[i]
		start := time.Now()
		res, err := cx.ReplayImage(groups[cellGroup[n]].image, req.System)
		m.ReplaySeconds.Observe(time.Since(start).Seconds())
		m.CellsReplayed.Inc()
		out[i] = Outcome{Request: req, Result: res, Err: err}
		r.put(req, res, err)
		progress()
	})

	set := &ResultSet{Outcomes: out}
	return set, set.Err()
}

// pool runs n work items on a worker pool. Each worker owns one
// core.Context, so simulator tables are recycled across that worker's
// items and never shared between goroutines.
func (r Runner) pool(n int, f func(cx *core.Context, n int)) {
	if n == 0 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := Jobs(r.Jobs, n); k > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cx := core.NewContext()
			for {
				j := int(next.Add(1)) - 1
				if j >= n {
					return
				}
				f(cx, j)
			}
		}()
	}
	wg.Wait()
}

// put persists a successful result, reporting failures to OnPutError.
func (r Runner) put(req Request, res *core.Result, err error) {
	if err != nil || r.Cache == nil {
		return
	}
	if perr := r.Cache.Put(req, res); perr != nil && r.OnPutError != nil {
		r.OnPutError(req, perr)
	}
}

// Execute runs every request on a pool of jobs worker goroutines
// (jobs <= 0 selects GOMAXPROCS); see Runner.Execute.
func Execute(reqs []Request, jobs int) (*ResultSet, error) {
	return Runner{Jobs: jobs}.Execute(reqs)
}
