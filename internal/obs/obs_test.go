package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("swpf_test_total", "test counter")
	g := reg.Gauge("swpf_test_depth", "test gauge")
	c.Inc()
	c.Add(41)
	g.Set(7)
	g.Add(-3)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("swpf_test_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, cum, sum := h.Snapshot()
	if !reflect.DeepEqual(bounds, []float64{0.1, 1, 10}) {
		t.Fatalf("bounds = %v", bounds)
	}
	if want := []int64{1, 3, 4, 5}; !reflect.DeepEqual(cum, want) {
		t.Fatalf("cumulative = %v, want %v", cum, want)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(sum-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", sum)
	}
}

func TestRegisterPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("swpf_dup_total", "x", L("a", "1"))
	mustPanic(t, "duplicate series", func() { reg.Counter("swpf_dup_total", "x", L("a", "1")) })
	mustPanic(t, "kind clash", func() { reg.Gauge("swpf_dup_total", "x") })
	mustPanic(t, "empty name", func() { reg.Counter("", "x") })
	mustPanic(t, "descending buckets", func() {
		reg.Histogram("swpf_bad_seconds", "x", []float64{1, 0.5})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// TestExpositionRoundTrip is the exposition-format test: the text
// output must be parseable by the package's own minimal Prometheus
// parser with names, labels, and values intact — including histogram
// expansion and label escaping.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("swpf_rt_total", "a counter", L("route", "GET /fleet")).Add(3)
	reg.Gauge("swpf_rt_depth", "a gauge").Set(-2)
	h := reg.Histogram("swpf_rt_seconds", "a histogram", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5)
	reg.Counter("swpf_rt_weird_total", "escapes", L("k", "a\"b\\c\nd")).Inc()
	reg.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "swpf_rt_collected", Kind: KindGauge, Value: 9, Labels: []Label{L("src", "collector")}})
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, buf.String())
	}

	if s := Find(samples, "swpf_rt_total", L("route", "GET /fleet")); s == nil || s.Value != 3 || s.Kind != KindCounter {
		t.Fatalf("swpf_rt_total: %+v", s)
	}
	if s := Find(samples, "swpf_rt_depth"); s == nil || s.Value != -2 || s.Kind != KindGauge {
		t.Fatalf("swpf_rt_depth: %+v", s)
	}
	if s := Find(samples, "swpf_rt_weird_total", L("k", "a\"b\\c\nd")); s == nil || s.Value != 1 {
		t.Fatalf("escaped label did not round-trip: %+v", s)
	}
	if s := Find(samples, "swpf_rt_collected", L("src", "collector")); s == nil || s.Value != 9 {
		t.Fatalf("collector sample: %+v", s)
	}
	// Histogram expansion: buckets cumulative, +Inf == _count.
	if s := Find(samples, "swpf_rt_seconds_bucket", L("le", "0.01")); s == nil || s.Value != 1 {
		t.Fatalf("le=0.01 bucket: %+v", s)
	}
	if s := Find(samples, "swpf_rt_seconds_bucket", L("le", "+Inf")); s == nil || s.Value != 2 {
		t.Fatalf("le=+Inf bucket: %+v", s)
	}
	cnt := Find(samples, "swpf_rt_seconds_count")
	if cnt == nil || cnt.Value != 2 || cnt.Kind != KindHistogram {
		t.Fatalf("_count: %+v", cnt)
	}
	if s := Find(samples, "swpf_rt_seconds_sum"); s == nil || math.Abs(s.Value-0.505) > 1e-9 {
		t.Fatalf("_sum: %+v", s)
	}
	// Families must be sorted by name for scrape stability.
	names := Names(samples)
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("swpf_js_total", "c", L("x", "1")).Add(5)
	reg.Histogram("swpf_js_seconds", "h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type   string `json:"type"`
		Series []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Count   *int64            `json:"count"`
			Buckets map[string]int64  `json:"buckets"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	c := out["swpf_js_total"]
	if c.Type != "counter" || len(c.Series) != 1 || c.Series[0].Value == nil || *c.Series[0].Value != 5 {
		t.Fatalf("counter family: %+v", c)
	}
	if c.Series[0].Labels["x"] != "1" {
		t.Fatalf("labels: %+v", c.Series[0].Labels)
	}
	h := out["swpf_js_seconds"]
	if h.Type != "histogram" || len(h.Series) != 1 || h.Series[0].Count == nil || *h.Series[0].Count != 1 {
		t.Fatalf("histogram family: %+v", h)
	}
	if h.Series[0].Buckets["+Inf"] != 1 {
		t.Fatalf("histogram buckets: %+v", h.Series[0].Buckets)
	}
}

// TestMiddleware pins status capture, route labels from mux patterns,
// byte counting, latency observation, and request-ID behavior.
func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hello")
	})
	mux.HandleFunc("GET /fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	mux.HandleFunc("GET /rid", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, RequestID(r.Context()))
	})
	m := NewHTTPMetrics(reg, []string{"GET /ok", "GET /fail", "GET /rid"})
	var logBuf bytes.Buffer
	h := m.Middleware(mux, slog.New(slog.NewTextHandler(&logBuf, nil)))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get(RequestIDHeader)
	if len(rid) != 16 {
		t.Fatalf("response request ID = %q, want 16 hex chars", rid)
	}
	if _, err := http.Get(srv.URL + "/fail"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/nosuch"); err != nil {
		t.Fatal(err)
	}

	// A caller-supplied request ID must be honored and reach the handler.
	req, _ := http.NewRequest("GET", srv.URL+"/rid", nil)
	req.Header.Set(RequestIDHeader, "cafe0123cafe0123")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if body.String() != "cafe0123cafe0123" {
		t.Fatalf("handler saw rid %q, want cafe0123cafe0123", body.String())
	}
	if got := resp.Header.Get(RequestIDHeader); got != "cafe0123cafe0123" {
		t.Fatalf("echoed rid = %q", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := Find(samples, "swpf_http_requests_total", L("route", "GET /ok"), L("class", "2xx")); s == nil || s.Value != 1 {
		t.Fatalf("ok 2xx: %+v", s)
	}
	if s := Find(samples, "swpf_http_requests_total", L("route", "GET /fail"), L("class", "5xx")); s == nil || s.Value != 1 {
		t.Fatalf("fail 5xx: %+v", s)
	}
	if s := Find(samples, "swpf_http_requests_total", L("route", "other"), L("class", "4xx")); s == nil || s.Value != 1 {
		t.Fatalf("unmatched route must land in other/4xx: %+v", s)
	}
	if s := Find(samples, "swpf_http_response_bytes_total", L("route", "GET /ok")); s == nil || s.Value != float64(len("hello")) {
		t.Fatalf("bytes: %+v", s)
	}
	if s := Find(samples, "swpf_http_request_duration_seconds_count", L("route", "GET /ok")); s == nil || s.Value != 1 {
		t.Fatalf("duration count: %+v", s)
	}
	if s := Find(samples, "swpf_http_inflight_requests"); s == nil || s.Value != 0 {
		t.Fatalf("inflight after drain: %+v", s)
	}
	// Access log carries the correlatables.
	logs := logBuf.String()
	for _, want := range []string{"rid=", "route=\"GET /ok\"", "status=500", "method=GET"} {
		if !strings.Contains(logs, want) {
			t.Fatalf("access log missing %q:\n%s", want, logs)
		}
	}
}

// TestMiddlewareFlusher verifies the capturing ResponseWriter still
// exposes Flush, which the SSE endpoint depends on.
func TestMiddlewareFlusher(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	flushed := false
	mux.HandleFunc("GET /sse", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("ResponseWriter lost http.Flusher")
			return
		}
		fmt.Fprint(w, "data: x\n\n")
		f.Flush()
		flushed = true
	})
	h := NewHTTPMetrics(reg, []string{"GET /sse"}).Middleware(mux, Discard())
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/sse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !flushed {
		t.Fatal("handler did not flush")
	}
}

// TestRegistryRace hammers instruments and scrapes concurrently; its
// value is under -race (CI runs the short suite with -race on).
func TestRegistryRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("swpf_race_total", "")
	g := reg.Gauge("swpf_race_depth", "")
	h := reg.Histogram("swpf_race_seconds", "", nil)
	reg.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "swpf_race_collected", Kind: KindGauge, Value: float64(c.Value())})
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) * 1e-4)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if err := reg.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 || h.Count() != 4000 {
		t.Fatalf("lost updates: counter=%d histogram=%d", c.Value(), h.Count())
	}
}

func TestHandlerContentTypes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("swpf_ct_total", "").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type = %q", ct)
	}
	resp2, err := http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	var body bytes.Buffer
	body.ReadFrom(resp2.Body)
	if !json.Valid(body.Bytes()) {
		t.Fatalf("invalid JSON: %s", body.String())
	}
}

func TestLogFlags(t *testing.T) {
	for _, tc := range []struct {
		level, format string
		wantErr       bool
	}{
		{"info", "text", false},
		{"debug", "json", false},
		{"warn", "text", false},
		{"error", "json", false},
		{"nope", "text", true},
		{"info", "yaml", true},
	} {
		lf := &LogFlags{Level: tc.level, Format: tc.format}
		_, err := lf.Logger(&bytes.Buffer{})
		if (err != nil) != tc.wantErr {
			t.Errorf("Logger(%s,%s) err = %v, wantErr %v", tc.level, tc.format, err, tc.wantErr)
		}
	}
	var buf bytes.Buffer
	lf := &LogFlags{Level: "warn", Format: "json"}
	log, err := lf.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Fatalf("record = %v", rec)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("collision: %q", a)
	}
}
