package obs

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// statusClasses are the per-route status-class counter labels. Every
// class is pre-registered so the request path never mints a series.
var statusClasses = []string{"1xx", "2xx", "3xx", "4xx", "5xx"}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// routeMetrics holds the pre-registered instruments for one route.
type routeMetrics struct {
	byClass  map[string]*Counter
	duration *Histogram
	bytes    *Counter
}

// HTTPMetrics instruments an http.ServeMux: per-route request counts
// by status class, a per-route latency histogram, response bytes, and
// an in-flight gauge. Routes are the mux's registered patterns, fixed
// at construction, so label cardinality is bounded; requests that
// match no pattern are accounted under "other".
type HTTPMetrics struct {
	routes   map[string]*routeMetrics
	other    *routeMetrics
	inflight *Gauge
}

// NewHTTPMetrics pre-registers instruments for each route pattern.
func NewHTTPMetrics(reg *Registry, routes []string) *HTTPMetrics {
	m := &HTTPMetrics{routes: make(map[string]*routeMetrics, len(routes)+1)}
	build := func(route string) *routeMetrics {
		rm := &routeMetrics{byClass: make(map[string]*Counter, len(statusClasses))}
		for _, class := range statusClasses {
			rm.byClass[class] = reg.Counter("swpf_http_requests_total",
				"HTTP requests served, by route and status class.",
				L("route", route), L("class", class))
		}
		rm.duration = reg.Histogram("swpf_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, L("route", route))
		rm.bytes = reg.Counter("swpf_http_response_bytes_total",
			"HTTP response body bytes written, by route.", L("route", route))
		return rm
	}
	for _, route := range routes {
		m.routes[route] = build(route)
	}
	m.other = build("other")
	m.routes["other"] = m.other
	m.inflight = reg.Gauge("swpf_http_inflight_requests",
		"HTTP requests currently being served.")
	return m
}

// forRoute returns the instruments for a matched pattern.
func (m *HTTPMetrics) forRoute(pattern string) *routeMetrics {
	if rm := m.routes[pattern]; rm != nil {
		return rm
	}
	return m.other
}

// ctxKey is the context key type for request IDs.
type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the request ID the middleware attached to ctx, or
// "" outside an instrumented request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// responseWriter captures status and bytes while passing Flush
// through, so SSE endpoints (GET /jobs/{id}/events) keep streaming.
type responseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *responseWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *responseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *responseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps mux with request-ID assignment, per-route metrics,
// and a slog access log. The route label is the mux pattern that
// matched (method + path as registered), never the raw URL, so
// cardinality stays bounded. Pass Discard() to silence the access log.
func (m *HTTPMetrics) Middleware(mux *http.ServeMux, log *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))

		_, pattern := mux.Handler(r)
		rm := m.forRoute(pattern)
		if pattern == "" {
			pattern = "other"
		}

		m.inflight.Add(1)
		start := time.Now()
		rw := &responseWriter{ResponseWriter: w}
		mux.ServeHTTP(rw, r)
		elapsed := time.Since(start)
		m.inflight.Add(-1)

		if rw.status == 0 {
			rw.status = http.StatusOK
		}
		rm.byClass[statusClass(rw.status)].Inc()
		rm.duration.Observe(elapsed.Seconds())
		rm.bytes.Add(rw.bytes)

		log.Info("http",
			"rid", rid,
			"method", r.Method,
			"route", pattern,
			"path", r.URL.Path,
			"status", rw.status,
			"bytes", rw.bytes,
			"dur", elapsed.Round(time.Microsecond).String(),
			"remote", r.RemoteAddr)
	})
}
