// Package obs is the observability layer of the sweep fabric: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms), Prometheus text and JSON
// exposition, structured-logging helpers on log/slog, and the HTTP
// instrumentation middleware cmd/swpfd mounts in front of its mux.
//
// The design constraints, inherited from the engine's bit-identity
// discipline (see docs/observability.md):
//
//   - The instrument hot path — Counter.Add, Gauge.Set,
//     Histogram.Observe — performs zero heap allocations and takes no
//     locks (atomics only), so instrumenting the simulation and queue
//     paths cannot perturb results or timings. A benchmark in this
//     package pins 0 allocs/op.
//   - Scrapes are consistent where it matters: a Collector produces
//     all of a subsystem's series from one snapshot (internal/fleet
//     takes its queue snapshot under the queue lock), so /metrics and
//     GET /fleet render the same numbers from the same source.
//   - Metric names are stable, catalogued in docs/observability.md,
//     and label cardinality is bounded by construction: every series
//     is registered up front, never minted per request.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one constant name=value pair attached to a series at
// registration time. Labels identify a series within its family;
// values must come from a bounded set (routes, status classes, phase
// names — never user input), which keeps every scrape's size fixed.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{key, value} }

// labelString renders a label set canonically ({} order preserved as
// registered; registration order is part of the series identity).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; n must be non-negative (not checked on
// the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets is the default histogram ladder for durations in
// seconds: 10µs to 10s in decades, which brackets everything from a
// cache-hit HTTP request to a full-grid cell batch.
var DefLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram is a fixed-bucket histogram. Bucket bounds are set at
// registration and never change; Observe is lock-free and
// allocation-free (one atomic add plus a CAS loop for the sum).
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns cumulative bucket counts aligned with Bounds plus
// the +Inf bucket as the last element. The buckets are read one atomic
// at a time, so a snapshot taken during concurrent Observes can be
// momentarily non-monotonic against Count(); exposition recomputes the
// total from the buckets to stay internally consistent.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64, sum float64) {
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return h.bounds, cumulative, h.Sum()
}

// series is one registered instrument with its label identity.
type series struct {
	labels string // rendered label set, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series registered under one name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
}

// Sample is one exposed series value: what a Collector emits at scrape
// time, and what ParseText returns. Histograms are never emitted by
// collectors (register a real Histogram instead), so Value is always a
// plain number.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64
}

// Collector produces samples at scrape time. Use a collector when a
// subsystem already owns consistent state under its own lock (the
// fleet queue, the store's counters): the collector snapshots once and
// emits every series from that snapshot, so one scrape's numbers are
// mutually consistent.
type Collector func(emit func(Sample))

// Registry holds metric families and collectors. Registration happens
// at construction time (panicking on duplicates, like expvar); the
// instrument hot paths never touch the registry afterwards.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	names      []string // registration order; sorted at exposition
	collectors []Collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a series, enforcing name/kind/label uniqueness.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	ls := labelString(labels)
	for _, s := range f.series {
		if s.labels == ls {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, ls))
		}
	}
	s := &series{labels: ls}
	f.series = append(f.series, s)
	return s
}

// Counter registers and returns a counter series. By convention the
// name ends in _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, KindCounter, labels)
	s.c = &Counter{}
	return s.c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, KindGauge, labels)
	s.g = &Gauge{}
	return s.g
}

// Histogram registers and returns a histogram series. buckets are the
// ascending upper bounds (+Inf is implicit); nil selects
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	s := r.register(name, help, KindHistogram, labels)
	s.h = &Histogram{bounds: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
	return s.h
}

// Collect registers a scrape-time collector.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// gather snapshots every family (instruments and collectors) sorted by
// name, with series in stable label order. Collector samples are
// grouped into synthetic families by name.
func (r *Registry) gather() []*gatheredFamily {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make(map[string]*family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	byName := make(map[string]*gatheredFamily)
	var out []*gatheredFamily
	add := func(name, help string, kind Kind) *gatheredFamily {
		gf := byName[name]
		if gf == nil {
			gf = &gatheredFamily{name: name, help: help, kind: kind}
			byName[name] = gf
			out = append(out, gf)
		}
		return gf
	}
	for _, name := range names {
		f := fams[name]
		gf := add(f.name, f.help, f.kind)
		for _, s := range f.series {
			gv := gatheredSeries{labels: s.labels}
			switch {
			case s.c != nil:
				gv.value = float64(s.c.Value())
			case s.g != nil:
				gv.value = float64(s.g.Value())
			case s.h != nil:
				gv.bounds, gv.cumulative, gv.sum = s.h.Snapshot()
			}
			gf.series = append(gf.series, gv)
		}
	}
	for _, c := range collectors {
		c(func(s Sample) {
			gf := add(s.Name, s.Help, s.Kind)
			gf.series = append(gf.series, gatheredSeries{labels: labelString(s.Labels), value: s.Value})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, gf := range out {
		sort.SliceStable(gf.series, func(i, j int) bool { return gf.series[i].labels < gf.series[j].labels })
	}
	return out
}

// gatheredFamily is a scrape-time snapshot of one family.
type gatheredFamily struct {
	name   string
	help   string
	kind   Kind
	series []gatheredSeries
}

type gatheredSeries struct {
	labels string
	value  float64 // counter/gauge
	// histogram snapshot
	bounds     []float64
	cumulative []int64
	sum        float64
}

// formatFloat renders a value the way the Prometheus text format
// expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
