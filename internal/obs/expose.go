package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): a # HELP/# TYPE header per
// family, families sorted by name, series sorted by label set, and
// histograms expanded into _bucket{le=...}/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.gather() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind == KindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatFloat(s.value))
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into buckets/sum/count.
// The le label is appended to any registered labels; the _count line
// is the +Inf cumulative count so buckets and count always agree
// within one exposition even under concurrent Observes.
func writeHistogram(w io.Writer, name string, s gatheredSeries) {
	for i, c := range s.cumulative {
		le := "+Inf"
		if i < len(s.bounds) {
			le = formatFloat(s.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(s.labels, "le", le), c)
	}
	total := int64(0)
	if n := len(s.cumulative); n > 0 {
		total = s.cumulative[n-1]
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(s.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, total)
}

// mergeLabels appends key="value" to an already-rendered label set.
func mergeLabels(rendered, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// varsSeries is one series in the /debug/vars JSON snapshot.
type varsSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	// Histogram fields.
	Count   *int64           `json:"count,omitempty"`
	Sum     *float64         `json:"sum,omitempty"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

type varsFamily struct {
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []varsSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON snapshot: a map from family
// name to {type, help, series}. This is the GET /debug/vars body.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]varsFamily)
	for _, f := range r.gather() {
		vf := varsFamily{Type: f.kind.String(), Help: f.help}
		for _, s := range f.series {
			vs := varsSeries{Labels: parseLabelString(s.labels)}
			if f.kind == KindHistogram {
				total := int64(0)
				if n := len(s.cumulative); n > 0 {
					total = s.cumulative[n-1]
				}
				sum := s.sum
				vs.Count, vs.Sum = &total, &sum
				vs.Buckets = make(map[string]int64, len(s.cumulative))
				for i, c := range s.cumulative {
					le := "+Inf"
					if i < len(s.bounds) {
						le = formatFloat(s.bounds[i])
					}
					vs.Buckets[le] = c
				}
			} else {
				v := s.value
				vs.Value = &v
			}
			vf.Series = append(vf.Series, vs)
		}
		out[f.name] = vf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry: Prometheus text by default, the JSON
// snapshot when the request asks for JSON (Accept or ?format=json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ParseText is a minimal Prometheus text-format parser covering what
// WritePrometheus emits: HELP/TYPE comments, counter/gauge/histogram
// samples, escaped label values. It exists so tests and swpfctl top
// consume the wire format itself rather than a parallel code path.
// Histogram _bucket/_sum/_count lines come back as individual samples
// named as written (with Kind inherited from the family's TYPE line).
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	kinds := make(map[string]Kind)
	helps := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "HELP" {
				helps[fields[2]] = fields[3]
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter":
					kinds[fields[2]] = KindCounter
				case "gauge":
					kinds[fields[2]] = KindGauge
				case "histogram":
					kinds[fields[2]] = KindHistogram
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", n, err)
		}
		base := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if k, ok := kinds[strings.TrimSuffix(s.Name, suf)]; ok && k == KindHistogram {
				base = strings.TrimSuffix(s.Name, suf)
				break
			}
		}
		s.Kind = kinds[base]
		s.Help = helps[base]
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses `name{k="v",...} value`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := labelEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	val := strings.TrimSpace(rest)
	// Drop an optional timestamp (we never emit one, but tolerate it).
	if i := strings.IndexByte(val, ' '); i >= 0 {
		val = val[:i]
	}
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", val, line)
	}
	s.Value = v
	return s, nil
}

// labelEnd finds the index of the closing brace of a label set,
// respecting quoted values with escapes.
func labelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseLabels parses the inside of a rendered label set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, Label{Key: key, Value: b.String()})
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// parseLabelString re-parses a rendered label set into a map (used by
// the JSON exposition, which stores labels structurally).
func parseLabelString(rendered string) map[string]string {
	if rendered == "" {
		return nil
	}
	labels, err := parseLabels(rendered[1 : len(rendered)-1])
	if err != nil {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Find returns the first parsed sample matching name and every given
// label, or nil. A convenience for tests and swpfctl top.
func Find(samples []Sample, name string, labels ...Label) *Sample {
	for i := range samples {
		s := &samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, have := range s.Labels {
				if have == want {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// Names returns the sorted distinct sample names, for stable-name
// assertions.
func Names(samples []Sample) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
