package obs

import "testing"

// The instrumentation hot path must be allocation-free: these
// benchmarks back the BENCH_sim.json "obs" entry, and CI's bench
// smoke runs them. ReportAllocs makes a regression visible in the
// numbers; TestHotPathZeroAlloc hard-fails on any allocation.

func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("swpf_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	reg := NewRegistry()
	g := reg.Gauge("swpf_bench_depth", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("swpf_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&0xff) * 1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("swpf_bench_par_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(2.5e-3)
		}
	})
}

func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("swpf_alloc_total", "")
	g := reg.Gauge("swpf_alloc_depth", "")
	h := reg.Histogram("swpf_alloc_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1.5e-3) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}
