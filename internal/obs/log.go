package obs

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// RequestIDHeader carries a request's correlation ID. The coordinator
// stamps it on every response (honoring a caller-supplied value), so a
// worker that leases a cell learns the coordinator-side ID of the
// lease request, logs its execution under it, and sends it back on
// complete — one grep over coordinator and worker logs reconstructs a
// cell's whole lifecycle.
const RequestIDHeader = "X-Swpf-Request-Id"

// NewRequestID returns a fresh 16-hex-char request ID. IDs are for
// correlation only and carry no ordering or meaning.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read never fails on supported platforms; a zero ID
		// still correlates within one process if it somehow does.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// LogFlags holds the shared -log-level / -log-format flag values.
// Every binary in cmd/ binds the same pair so operators configure
// coordinator, workers, and tools identically.
type LogFlags struct {
	Level  string
	Format string
}

// BindLogFlags registers -log-level and -log-format on fs.
func BindLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&lf.Format, "log-format", "text", "log format: text or json")
	return lf
}

// Logger builds a slog.Logger writing to w per the flag values.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(lf.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(lf.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", lf.Format)
	}
}

// ParseLevel maps a flag string to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error)", s)
	}
	return l, nil
}

// Discard is a logger that drops everything: the default for library
// code and tests so instrumented paths stay silent unless a real
// logger is wired in.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
