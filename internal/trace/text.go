package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText imports an externally captured address trace in a minimal
// text format, one access per line:
//
//	pc addr size kind
//
// where pc is a non-negative decimal instruction identifier, addr a
// decimal or 0x-prefixed hexadecimal byte address, size the access
// width in bytes (recorded but not consumed by the timing model, which
// works at cache-line granularity), and kind one of L (load), S
// (store) or P (software prefetch). Blank lines and lines starting
// with '#' are skipped; fields split on any whitespace.
//
// The imported trace carries no dependency information — external
// capture tools rarely preserve register dataflow — so every access
// replays with an empty dependency set: an in-order core still
// serialises on issue width and outstanding-miss limits, but
// stall-on-use never triggers. It also carries no memory contents, so
// value-speculating hardware prefetchers (IMP) observe an empty
// replica and degrade to their no-peek behaviour. Both limits are
// documented in docs/trace.md; name is recorded as the workload label.
func ParseText(r io.Reader, name string) (*Trace, error) {
	w := NewWriter()
	var s Summary
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields \"pc addr size kind\", got %d", lineno, len(fields))
		}
		pc, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad pc %q: %v", lineno, fields[0], err)
		}
		addr, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr %q: %v", lineno, fields[1], err)
		}
		if _, err := strconv.ParseUint(fields[2], 0, 32); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size %q: %v", lineno, fields[2], err)
		}
		switch strings.ToUpper(fields[3]) {
		case "L":
			w.Load(int(pc), addr, nil)
			s.Loads++
		case "S":
			w.Store(int(pc), addr, nil)
			s.Stores++
		case "P":
			// Imported prefetches are taken at face value: there is no
			// address-space map to probe, so they are always "valid".
			w.Prefetch(int(pc), addr, true, nil)
			s.Prefetches++
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q (want L, S or P)", lineno, fields[3])
		}
		s.Executed++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
	}
	if s.Executed == 0 {
		return nil, fmt.Errorf("trace: no accesses in input")
	}
	w.Finish()
	return w.Close(Meta{Workload: name, Variant: "imported"}, s), nil
}
