// Package trace defines a compact, versioned record of the dynamic
// op/memory-access stream one kernel execution feeds the timing model —
// the functional half of the record/replay split.
//
// The interpreter's work divides cleanly in two: a *functional* phase
// (values, addresses, control flow, memory contents) that depends only
// on the kernel and its inputs, and a *timing* phase (the sim.Core and
// sim.Hierarchy calls) that also depends on the machine configuration.
// A Trace captures the functional phase once, so the machine × hardware-
// prefetcher axes of an experiment grid can be retimed by replaying the
// event stream through the timing model without re-interpreting the
// kernel (internal/interp.Replay).
//
// Machine independence is the load-bearing property: a trace recorded
// under any sim.Config is byte-for-byte identical to one recorded under
// any other. Two design points follow from it:
//
//   - Events carry *dependency sets* (indices of the value-producing
//     events their operands came from), never readiness timestamps —
//     timestamps are machine artifacts. Replay recomputes readiness as
//     the max completion time of the dependencies, exactly the
//     computation the interpreter performs over its SSA slots.
//   - ALU events carry a latency *class* (single-cycle, multiply,
//     divide), not a resolved cycle count: multiply/divide latencies
//     are per-machine Config fields, resolved at replay time with the
//     same zero-means-one clamp the interpreter's decoder applies.
//
// The stream also interleaves untimed Alloc/Poke events mirroring every
// simulated-memory mutation (kernel stores and host-side setup writes
// alike). Replay rebuilds a shadow copy of simulated memory from them —
// but only when the machine's hardware prefetcher speculates on memory
// values (hwpf.PeekSetter, the IMP model); stream-only models skip the
// replica entirely.
//
// See docs/trace.md for the byte-level format specification, the
// importer grammar (ParseText) and the amortization arithmetic.
package trace

import "fmt"

// FormatVersion identifies the trace encoding AND the recorded event
// semantics. Any change that alters the bytes a recording produces for
// some kernel — a new event kind, a different dependency rule, a
// prefetch-pass change that reorders the emitted stream — MUST bump
// this constant. It is the version salt of trace artifacts in
// internal/store (see store.TraceSalt), so bumping it cleanly
// invalidates every persisted trace while leaving result objects (keyed
// by sim.StatsVersion) untouched.
const FormatVersion = 1

// Kind classifies a decoded event.
type Kind uint8

// Event kinds. Op and Load are the value-producing kinds: each occupies
// the next slot in the dense value-index space that dependency sets
// reference. Alloc and Poke are untimed memory-replica events; all
// others map one-to-one onto sim.Core calls.
const (
	KindOp Kind = iota
	KindLoad
	KindStore
	KindPrefetch
	KindBranch
	KindFinish
	KindAlloc
	KindPoke
)

func (k Kind) String() string {
	switch k {
	case KindOp:
		return "op"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindPrefetch:
		return "prefetch"
	case KindBranch:
		return "branch"
	case KindFinish:
		return "finish"
	case KindAlloc:
		return "alloc"
	case KindPoke:
		return "poke"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// LatClass is the machine-independent latency class of an Op event;
// replay resolves it against the target Config exactly like the
// interpreter's decoder does (zero configured cycles clamp to one).
type LatClass uint8

// Latency classes.
const (
	Lat1   LatClass = iota // fixed single-cycle ALU op
	LatMul                 // Config.MulLatency
	LatDiv                 // Config.DivLatency (divide and remainder)
)

// Event is one decoded trace event. Which fields are meaningful depends
// on Kind:
//
//	Op        Lat, Deps
//	Load      PC, Addr, Deps
//	Store     PC, Addr, Deps
//	Prefetch  PC, Addr, Valid, Deps
//	Branch    Conditional, Deps
//	Finish    —
//	Alloc     Size
//	Poke      Addr, Width, Val
type Event struct {
	Kind        Kind
	PC          int
	Addr        int64
	Size        int64 // Alloc: allocation bytes
	Val         int64 // Poke: value written
	Width       int   // Poke: write width in bytes (1, 2, 4 or 8)
	Lat         LatClass
	Valid       bool // Prefetch: target inside an allocation
	Conditional bool // Branch: conditional (mispredict-eligible)

	// Deps holds the value indices this event's operands came from, in
	// operand order. The slice is owned by the Reader and overwritten by
	// the next Next call.
	Deps []uint64
}

// Meta describes what was recorded — informational coordinates carried
// in the trace header. Replay does not interpret them beyond copying
// them into the Result.
type Meta struct {
	Workload string `json:"workload,omitempty"`
	Params   string `json:"params,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Options  string `json:"options,omitempty"`
}

// Summary is the functional outcome of the recorded run, stored in the
// trace footer: the statistics a direct run computes in the interpreter
// and the validated workload checksum. Replay copies these into its
// Stats verbatim — they are machine-independent — and recomputes only
// the timing-side numbers from the core.
type Summary struct {
	Executed   uint64   // interpreted instructions (includes phis)
	OpCounts   []uint64 // per-opcode execution counts (ir.NumOps entries); empty for imported traces
	Loads      uint64
	Stores     uint64
	Prefetches uint64
	Checksum   int64 // workload checksum, validated against the reference at record time
}

// Trace is a fully recorded event stream plus its header and footer.
// The event payload stays in encoded form — replay decodes it on the
// fly via Events(), so holding a Trace costs its encoded size, not a
// per-event structure.
type Trace struct {
	Meta    Meta
	Summary Summary

	// NumEvents and NumValues are the footer's event counts: total
	// events, and value-producing (Op/Load) events. Readers verify the
	// stream against them.
	NumEvents uint64
	NumValues uint64

	events []byte
}

// EncodedEventBytes returns the size of the encoded event payload — the
// dominant component of a trace's footprint on disk and in memory.
func (t *Trace) EncodedEventBytes() int { return len(t.events) }
