package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Event tag bytes of the encoded stream. Flags and latency classes are
// folded into the tag so the common events cost one byte plus their
// varint fields.
const (
	tagEnd             = 0 // terminates the event stream; the footer follows
	tagOp1             = 1
	tagOpMul           = 2
	tagOpDiv           = 3
	tagLoad            = 4
	tagStore           = 5
	tagPrefetchValid   = 6
	tagPrefetchInvalid = 7
	tagBr              = 8
	tagCBr             = 9
	tagFinish          = 10
	tagAlloc           = 11
	tagPoke1           = 12
	tagPoke2           = 13
	tagPoke4           = 14
	tagPoke8           = 15
)

// magic opens every serialized trace.
var magic = [8]byte{'S', 'W', 'P', 'F', 'T', 'R', 'C', '\n'}

// Writer records an event stream. The interpreter's recording mode
// (interp.Machine.RecordTo) calls one method per core-visible event and
// per simulated-memory mutation; Close seals the stream into a Trace.
//
// Op and Load return the dense value index assigned to the event, which
// later events reference in their dependency sets. Dependency slices
// are consumed synchronously — callers may reuse their backing array.
type Writer struct {
	buf    []byte
	events uint64
	values uint64
}

// NewWriter returns an empty trace writer.
func NewWriter() *Writer { return &Writer{} }

func (w *Writer) uv(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }
func (w *Writer) sv(x int64)  { w.buf = binary.AppendVarint(w.buf, x) }

// deps encodes a dependency set as deltas back from the current value
// count: small, and independent of absolute stream position.
func (w *Writer) deps(deps []int64) {
	w.uv(uint64(len(deps)))
	for _, d := range deps {
		w.uv(w.values - uint64(d))
	}
}

// value finishes a value-producing event and returns its index.
func (w *Writer) value() int64 {
	w.events++
	idx := int64(w.values)
	w.values++
	return idx
}

// Op records an ALU operation of the given latency class.
func (w *Writer) Op(class LatClass, deps []int64) int64 {
	w.buf = append(w.buf, tagOp1+byte(class))
	w.deps(deps)
	return w.value()
}

// Load records a demand load.
func (w *Writer) Load(pc int, addr int64, deps []int64) int64 {
	w.buf = append(w.buf, tagLoad)
	w.uv(uint64(pc))
	w.sv(addr)
	w.deps(deps)
	return w.value()
}

// Store records a store.
func (w *Writer) Store(pc int, addr int64, deps []int64) {
	w.buf = append(w.buf, tagStore)
	w.uv(uint64(pc))
	w.sv(addr)
	w.deps(deps)
	w.events++
}

// Prefetch records a software prefetch. valid mirrors the non-faulting
// validity probe the interpreter passes to the core.
func (w *Writer) Prefetch(pc int, addr int64, valid bool, deps []int64) {
	tag := byte(tagPrefetchInvalid)
	if valid {
		tag = tagPrefetchValid
	}
	w.buf = append(w.buf, tag)
	w.uv(uint64(pc))
	w.sv(addr)
	w.deps(deps)
	w.events++
}

// Branch records a branch; conditional ones are mispredict-eligible.
func (w *Writer) Branch(conditional bool, deps []int64) {
	tag := byte(tagBr)
	if conditional {
		tag = tagCBr
	}
	w.buf = append(w.buf, tag)
	w.deps(deps)
	w.events++
}

// Finish records the end-of-run drain (sim.Core.Finish).
func (w *Writer) Finish() {
	w.buf = append(w.buf, tagFinish)
	w.events++
}

// Alloc records a simulated-memory allocation. Allocation addresses are
// deterministic, so replay reconstructs the identical address space by
// re-allocating in order.
func (w *Writer) Alloc(size int64) {
	w.buf = append(w.buf, tagAlloc)
	w.uv(uint64(size))
	w.events++
}

// Poke records a simulated-memory write of width bytes (1, 2, 4 or 8) —
// kernel stores and untimed host-side setup writes alike. Widths
// outside the set are ignored (no IR type produces them).
func (w *Writer) Poke(addr int64, width int, val int64) {
	var tag byte
	switch width {
	case 1:
		tag = tagPoke1
	case 2:
		tag = tagPoke2
	case 4:
		tag = tagPoke4
	case 8:
		tag = tagPoke8
	default:
		return
	}
	w.buf = append(w.buf, tag)
	w.sv(addr)
	w.sv(val)
	w.events++
}

// Close seals the stream into a Trace with the given header coordinates
// and functional summary. The Writer must not be used afterwards.
func (w *Writer) Close(meta Meta, s Summary) *Trace {
	return &Trace{
		Meta:      meta,
		Summary:   s,
		NumEvents: w.events,
		NumValues: w.values,
		events:    w.buf,
	}
}

// Encode serializes the trace:
//
//	magic (8 bytes)
//	uvarint FormatVersion
//	uvarint len(meta JSON), meta JSON
//	uvarint len(event payload), event payload
//	tagEnd
//	footer: uvarint events, values, executed,
//	        len(opcounts) + opcounts, loads, stores, prefetches;
//	        varint checksum
//	CRC-32 (IEEE) of everything above, little-endian
//
// Encoding is deterministic: equal traces produce equal bytes.
func (t *Trace) Encode() []byte {
	metaJSON, err := json.Marshal(t.Meta)
	if err != nil {
		// Meta is four plain strings; Marshal cannot fail.
		panic(fmt.Sprintf("trace: marshal meta: %v", err))
	}
	out := make([]byte, 0, len(magic)+len(metaJSON)+len(t.events)+64+8*len(t.Summary.OpCounts))
	out = append(out, magic[:]...)
	out = binary.AppendUvarint(out, FormatVersion)
	out = binary.AppendUvarint(out, uint64(len(metaJSON)))
	out = append(out, metaJSON...)
	out = binary.AppendUvarint(out, uint64(len(t.events)))
	out = append(out, t.events...)
	out = append(out, tagEnd)
	out = binary.AppendUvarint(out, t.NumEvents)
	out = binary.AppendUvarint(out, t.NumValues)
	out = binary.AppendUvarint(out, t.Summary.Executed)
	out = binary.AppendUvarint(out, uint64(len(t.Summary.OpCounts)))
	for _, c := range t.Summary.OpCounts {
		out = binary.AppendUvarint(out, c)
	}
	out = binary.AppendUvarint(out, t.Summary.Loads)
	out = binary.AppendUvarint(out, t.Summary.Stores)
	out = binary.AppendUvarint(out, t.Summary.Prefetches)
	out = binary.AppendVarint(out, t.Summary.Checksum)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// WriteTo serializes the trace to w (io.WriterTo).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(t.Encode())
	return int64(n), err
}

// Equal reports whether two traces serialize identically — the
// byte-for-byte identity the machine-independence tests assert.
func Equal(a, b *Trace) bool { return bytes.Equal(a.Encode(), b.Encode()) }
