package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// sample builds a small but representative trace: every event kind,
// dependency sets, both prefetch validities, both branch flavours.
func sample() *Trace {
	w := NewWriter()
	w.Alloc(4096)
	w.Poke(1<<20, 4, -7)
	w.Poke(1<<20+4, 8, 1234567890123)
	a := w.Op(Lat1, nil)
	b := w.Load(3, 1<<20, []int64{a})
	c := w.Op(LatMul, []int64{a, b})
	w.Store(4, 1<<20+8, []int64{b, c})
	w.Prefetch(5, 1<<20+64, true, []int64{c})
	w.Prefetch(6, -12345, false, nil)
	d := w.Op(LatDiv, []int64{c})
	w.Branch(true, []int64{d})
	w.Branch(false, nil)
	w.Finish()
	return w.Close(
		Meta{Workload: "T", Params: "n=4", Variant: "plain", Options: "c=64"},
		Summary{Executed: 12, OpCounts: []uint64{3, 1, 0, 2}, Loads: 1, Stores: 1, Prefetches: 2, Checksum: -42},
	)
}

// TestRoundTrip pins the satellite requirement: write → read → write is
// byte-identical, and every decoded field survives.
func TestRoundTrip(t *testing.T) {
	tr := sample()
	enc := tr.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Meta != tr.Meta {
		t.Errorf("meta: got %+v, want %+v", got.Meta, tr.Meta)
	}
	if got.NumEvents != tr.NumEvents || got.NumValues != tr.NumValues {
		t.Errorf("counts: got %d/%d, want %d/%d", got.NumEvents, got.NumValues, tr.NumEvents, tr.NumValues)
	}
	if got.Summary.Checksum != -42 || got.Summary.Executed != 12 || got.Summary.Loads != 1 ||
		got.Summary.Stores != 1 || got.Summary.Prefetches != 2 || len(got.Summary.OpCounts) != 4 {
		t.Errorf("summary: got %+v", got.Summary)
	}
	reenc := got.Encode()
	if !bytes.Equal(enc, reenc) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(enc), len(reenc))
	}
	if !Equal(tr, got) {
		t.Fatal("Equal() disagrees with byte comparison")
	}

	// WriteTo/Read round-trip too.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got2, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !Equal(tr, got2) {
		t.Fatal("Read round-trip differs")
	}
}

// TestEventStream decodes the sample stream and checks the event
// sequence, dependency resolution and per-kind fields.
func TestEventStream(t *testing.T) {
	tr, err := Decode(sample().Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	type want struct {
		kind Kind
		deps []uint64
	}
	wants := []want{
		{KindAlloc, nil},
		{KindPoke, nil},
		{KindPoke, nil},
		{KindOp, nil},
		{KindLoad, []uint64{0}},
		{KindOp, []uint64{0, 1}},
		{KindStore, []uint64{1, 2}},
		{KindPrefetch, []uint64{2}},
		{KindPrefetch, nil},
		{KindOp, []uint64{2}},
		{KindBranch, []uint64{3}},
		{KindBranch, nil},
		{KindFinish, nil},
	}
	r := tr.Events()
	var ev Event
	for i, w := range wants {
		if !r.Next(&ev) {
			t.Fatalf("event %d: stream ended early: %v", i, r.Err())
		}
		if ev.Kind != w.kind {
			t.Fatalf("event %d: kind %s, want %s", i, ev.Kind, w.kind)
		}
		if len(ev.Deps) != len(w.deps) {
			t.Fatalf("event %d: %d deps, want %d", i, len(ev.Deps), len(w.deps))
		}
		for j := range w.deps {
			if ev.Deps[j] != w.deps[j] {
				t.Fatalf("event %d dep %d: %d, want %d", i, j, ev.Deps[j], w.deps[j])
			}
		}
	}
	if r.Next(&ev) {
		t.Fatal("stream has extra events")
	}
	if r.Err() != nil {
		t.Fatalf("clean end reported error: %v", r.Err())
	}

	// Spot-check decoded fields.
	r = tr.Events()
	var evs []Event
	for {
		var e Event
		if !r.Next(&e) {
			break
		}
		e.Deps = append([]uint64(nil), e.Deps...)
		evs = append(evs, e)
	}
	if evs[0].Size != 4096 {
		t.Errorf("alloc size %d", evs[0].Size)
	}
	if evs[1].Addr != 1<<20 || evs[1].Width != 4 || evs[1].Val != -7 {
		t.Errorf("poke: %+v", evs[1])
	}
	if evs[2].Width != 8 || evs[2].Val != 1234567890123 {
		t.Errorf("poke8: %+v", evs[2])
	}
	if evs[4].PC != 3 || evs[4].Addr != 1<<20 {
		t.Errorf("load: %+v", evs[4])
	}
	if evs[5].Lat != LatMul || evs[9].Lat != LatDiv || evs[3].Lat != Lat1 {
		t.Errorf("lat classes: %v %v %v", evs[3].Lat, evs[5].Lat, evs[9].Lat)
	}
	if !evs[7].Valid || evs[8].Valid || evs[8].Addr != -12345 {
		t.Errorf("prefetch flags: %+v %+v", evs[7], evs[8])
	}
	if !evs[10].Conditional || evs[11].Conditional {
		t.Errorf("branch flags: %+v %+v", evs[10], evs[11])
	}
}

// TestTruncationAndCorruption pins the degradation contract: any
// truncation or bit flip yields a clean ErrCorrupt from Decode (the
// CRC guards the whole envelope), never partial statistics.
func TestTruncationAndCorruption(t *testing.T) {
	enc := sample().Encode()

	for _, n := range []int{0, 1, 4, len(magic), len(magic) + 1, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	for _, pos := range []int{0, len(magic), len(magic) + 1, len(enc) / 2, len(enc) - 5, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flipped byte %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Error("trailing garbage not detected")
	}
}

// TestVersionMismatch: a future-format trace is rejected cleanly.
func TestVersionMismatch(t *testing.T) {
	enc := sample().Encode()
	// The version uvarint sits right after the magic; FormatVersion is
	// small, so it is one byte. Patch it and re-seal the CRC.
	bad := append([]byte(nil), enc...)
	bad[len(magic)] = FormatVersion + 1
	body := bad[:len(bad)-4]
	patched := binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
	_, err := Decode(patched)
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("err = %v, want format-version ErrCorrupt", err)
	}
}

// TestBadDependency: a dependency pointing past the values produced so
// far is corruption, caught during iteration.
func TestBadDependency(t *testing.T) {
	w := NewWriter()
	w.Op(Lat1, nil)
	tr := w.Close(Meta{}, Summary{})
	// Hand-craft a branch depending on value 5 of a 1-value stream.
	tr.events = append(tr.events, tagCBr, 1, 6) // delta 6 > 1 value
	tr.NumEvents += 1
	r := tr.Events()
	var ev Event
	for r.Next(&ev) {
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestParseText covers the importer grammar and its error cases.
func TestParseText(t *testing.T) {
	const src = `# comment, then a blank line

17 0x1000 4 L
17 4100 4 S
3 0x2000 8 P
`
	tr, err := ParseText(strings.NewReader(src), "ext")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tr.Meta.Workload != "ext" || tr.Meta.Variant != "imported" {
		t.Errorf("meta: %+v", tr.Meta)
	}
	s := tr.Summary
	if s.Loads != 1 || s.Stores != 1 || s.Prefetches != 1 || s.Executed != 3 || len(s.OpCounts) != 0 {
		t.Errorf("summary: %+v", s)
	}
	var evs []Event
	r := tr.Events()
	for {
		var e Event
		if !r.Next(&e) {
			break
		}
		evs = append(evs, e)
	}
	if r.Err() != nil {
		t.Fatalf("iterate: %v", r.Err())
	}
	if len(evs) != 4 { // 3 accesses + finish
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Kind != KindLoad || evs[0].PC != 17 || evs[0].Addr != 0x1000 || len(evs[0].Deps) != 0 {
		t.Errorf("load: %+v", evs[0])
	}
	if evs[1].Kind != KindStore || evs[1].Addr != 4100 {
		t.Errorf("store: %+v", evs[1])
	}
	if evs[2].Kind != KindPrefetch || !evs[2].Valid {
		t.Errorf("prefetch: %+v", evs[2])
	}
	if evs[3].Kind != KindFinish {
		t.Errorf("tail: %+v", evs[3])
	}

	// Imported traces round-trip like recorded ones.
	if got, err := Decode(tr.Encode()); err != nil || !Equal(tr, got) {
		t.Fatalf("round-trip: %v", err)
	}

	for _, bad := range []string{
		"",              // empty
		"1 2 3",         // too few fields
		"1 2 3 4 5",     // too many
		"x 0x1000 4 L",  // bad pc
		"1 zzz 4 L",     // bad addr
		"1 0x1000 q L",  // bad size
		"1 0x1000 4 X",  // bad kind
		"-1 0x1000 4 L", // negative pc
	} {
		if _, err := ParseText(strings.NewReader(bad), "bad"); err == nil {
			t.Errorf("ParseText(%q) accepted", bad)
		}
	}
}
