// Benchmarks for the record/replay pipeline. They live in an external
// test package so they can drive the interpreter (internal/interp
// imports internal/trace; the reverse import would be a cycle).
//
// The headline number is the replay-vs-interpretation speedup on the
// indirect kernel: replay skips SSA dispatch, operand evaluation and
// simulated-memory traffic, touching only the timing model. CI pins it
// in BENCH_sim.json (trace_replay vs trace_record / the interp
// baseline).
package trace_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchSrc mirrors internal/interp's benchIndirectSrc (n=1<<12):
// buckets[keys[j]] += data[j], the indirect-access shape the paper's
// prefetch pass targets.
const benchSrc = `module bench
func kernel(%n: i64) -> i64 {
entry:
  %keys = alloc %n, 4
  %data = alloc %n, 4
  %buckets = alloc %n, 4
  br init
init:
  %i = phi i64 [entry: 0, init: %i2]
  %r = mul %i, 2654435761
  %r2 = and %r, 1048575
  %k = rem %r2, %n
  %kp = gep %keys, %i, 4
  store i32, %kp, %k
  %dp = gep %data, %i, 4
  store i32, %dp, %i
  %i2 = add %i, 1
  %c = cmp lt %i2, %n
  cbr %c, init, loop
loop:
  %j = phi i64 [init: 0, loop: %j2]
  %acc = phi i64 [init: 0, loop: %acc2]
  %jp = gep %keys, %j, 4
  %kj = load i32, %jp
  %bp = gep %buckets, %kj, 4
  %old = load i32, %bp
  %djp = gep %data, %j, 4
  %dv = load i32, %djp
  %new = add %old, %dv
  store i32, %bp, %new
  %acc2 = add %acc, %new
  %j2 = add %j, 1
  %c2 = cmp lt %j2, %n
  cbr %c2, loop, done
done:
  ret %acc2
}
`

const benchN = 1 << 12

func record(b *testing.B) *trace.Trace {
	b.Helper()
	mod := ir.MustParse(benchSrc)
	mach := interp.New(mod, sim.DefaultConfig())
	w := trace.NewWriter()
	mach.RecordTo(w)
	sum, err := mach.Run("kernel", benchN)
	if err != nil {
		b.Fatalf("run: %v", err)
	}
	st := mach.Stats()
	oc := make([]uint64, len(st.OpCounts))
	copy(oc, st.OpCounts[:])
	return w.Close(trace.Meta{Workload: "bench"}, trace.Summary{
		Executed: st.Executed, OpCounts: oc,
		Loads: st.Loads, Stores: st.Stores, Prefetches: st.Prefetches,
		Checksum: sum,
	})
}

// BenchmarkTraceRecord: one interpreted run with the recorder attached
// plus sealing the trace — the amortized, once-per-(workload, variant)
// cost. Compare against BenchmarkInterpIndirect (same kernel, same n,
// no recorder) for the recording overhead.
func BenchmarkTraceRecord(b *testing.B) {
	b.ReportAllocs()
	var bytes int
	for i := 0; i < b.N; i++ {
		bytes = record(b).EncodedEventBytes()
	}
	b.ReportMetric(float64(bytes), "trace-bytes/op")
}

// BenchmarkTraceReplay: retiming one predecoded trace on a fresh core —
// the per-(machine, hwpf) marginal cost of a grid cell under -exec
// replay. The image is built once (the sweep runner amortizes it across
// every cell of a group), so what remains is the timing model plus
// array dispatch. Compare against BenchmarkInterpIndirect: the delta is
// the interpretation work replay eliminates; the floor both share is
// the sim core/hierarchy itself.
func BenchmarkTraceReplay(b *testing.B) {
	im, err := interp.NewImage(record(b))
	if err != nil {
		b.Fatalf("image: %v", err)
	}
	cfg := sim.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := sim.NewCore(cfg)
		if _, err := im.Replay(c); err != nil {
			b.Fatalf("replay: %v", err)
		}
	}
}

// BenchmarkTraceImage: decoding a trace into its replayable form — the
// once-per-group cost of a store-warm replay sweep.
func BenchmarkTraceImage(b *testing.B) {
	tr := record(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.NewImage(tr); err != nil {
			b.Fatalf("image: %v", err)
		}
	}
}

// BenchmarkTraceDecode: Decode on an encoded trace — the store-hit
// path's deserialization cost.
func BenchmarkTraceDecode(b *testing.B) {
	enc := record(b).Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Decode(enc); err != nil {
			b.Fatalf("decode: %v", err)
		}
	}
}
