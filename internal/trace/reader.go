package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt wraps every decoding failure: truncation, a CRC mismatch,
// a malformed varint, an out-of-range dependency. Callers that treat a
// damaged trace artifact as a cache miss test for it with errors.Is.
var ErrCorrupt = errors.New("corrupt trace")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("trace: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Read deserializes a trace from r (the inverse of Trace.WriteTo).
func Read(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return Decode(data)
}

// Decode deserializes a trace from its Encode form. The whole envelope
// is validated up front — magic, version, CRC, section lengths and the
// footer counts — so a truncated or bit-flipped file fails here with a
// clean ErrCorrupt instead of yielding partial statistics. Event-level
// validation (tags, dependency ranges) happens during iteration.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(magic)+4 || !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, corrupt("missing magic header")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, corrupt("CRC mismatch (truncated or damaged file)")
	}
	d := &decoder{data: body, pos: len(magic)}

	version := d.uv("format version")
	if version != FormatVersion {
		return nil, corrupt("format version %d, want %d", version, FormatVersion)
	}
	t := &Trace{}
	metaJSON := d.bytes("meta", d.uv("meta length"))
	if d.err == nil {
		if err := json.Unmarshal(metaJSON, &t.Meta); err != nil {
			return nil, corrupt("meta: %v", err)
		}
	}
	t.events = d.bytes("event payload", d.uv("event payload length"))
	if tag := d.bytes("end tag", 1); d.err == nil && tag[0] != tagEnd {
		return nil, corrupt("event payload not terminated by end tag")
	}
	t.NumEvents = d.uv("event count")
	t.NumValues = d.uv("value count")
	t.Summary.Executed = d.uv("executed count")
	if n := d.uv("opcount length"); d.err == nil {
		if n > uint64(len(body)) {
			return nil, corrupt("opcount length %d exceeds file size", n)
		}
		t.Summary.OpCounts = make([]uint64, n)
		for i := range t.Summary.OpCounts {
			t.Summary.OpCounts[i] = d.uv("opcount")
		}
	}
	t.Summary.Loads = d.uv("loads")
	t.Summary.Stores = d.uv("stores")
	t.Summary.Prefetches = d.uv("prefetches")
	t.Summary.Checksum = d.sv("checksum")
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(body) {
		return nil, corrupt("%d trailing bytes after footer", len(body)-d.pos)
	}
	return t, nil
}

// decoder cursors over the serialized envelope.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) uv(what string) uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = corrupt("truncated %s", what)
		return 0
	}
	d.pos += n
	return x
}

func (d *decoder) sv(what string) int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.err = corrupt("truncated %s", what)
		return 0
	}
	d.pos += n
	return x
}

func (d *decoder) bytes(what string, n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)-d.pos) {
		d.err = corrupt("truncated %s (%d bytes, %d left)", what, n, len(d.data)-d.pos)
		return nil
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b
}

// Reader iterates the event stream of a decoded (or freshly recorded)
// trace. It is the replay hot path: events decode on the fly from the
// compact payload, one at a time, into a caller-provided Event whose
// Deps slice the Reader owns and reuses.
type Reader struct {
	data   []byte
	pos    int
	events uint64 // events decoded so far
	values uint64 // value-producing events decoded so far
	t      *Trace
	deps   []uint64
	err    error
}

// Events returns an iterator over the trace's event stream.
func (t *Trace) Events() *Reader {
	return &Reader{data: t.events, t: t}
}

func (r *Reader) fail(format string, args ...any) bool {
	r.err = corrupt("event %d: %s", r.events, fmt.Sprintf(format, args...))
	return false
}

func (r *Reader) uv() (uint64, bool) {
	x, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, false
	}
	r.pos += n
	return x, true
}

func (r *Reader) sv() (int64, bool) {
	x, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, false
	}
	r.pos += n
	return x, true
}

// readDeps decodes a dependency set into ev.Deps as absolute value
// indices, validating each against the values produced so far.
func (r *Reader) readDeps(ev *Event) bool {
	n, ok := r.uv()
	if !ok {
		return r.fail("truncated dependency count")
	}
	if n > uint64(len(r.data)) {
		return r.fail("dependency count %d exceeds stream size", n)
	}
	deps := r.deps[:0]
	for i := uint64(0); i < n; i++ {
		delta, ok := r.uv()
		if !ok {
			return r.fail("truncated dependency")
		}
		if delta == 0 || delta > r.values {
			return r.fail("dependency delta %d out of range (have %d values)", delta, r.values)
		}
		deps = append(deps, r.values-delta)
	}
	r.deps = deps
	ev.Deps = deps
	return true
}

// Next decodes the next event into ev and reports whether one was
// decoded. After it returns false, Err distinguishes a clean end of
// stream from corruption. ev.Deps is only valid until the next call.
func (r *Reader) Next(ev *Event) bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.data) {
		if r.events != r.t.NumEvents || r.values != r.t.NumValues {
			return r.fail("stream ended with %d events / %d values, footer says %d / %d",
				r.events, r.values, r.t.NumEvents, r.t.NumValues)
		}
		return false
	}
	tag := r.data[r.pos]
	r.pos++
	ok := true
	switch tag {
	case tagOp1, tagOpMul, tagOpDiv:
		ev.Kind = KindOp
		ev.Lat = LatClass(tag - tagOp1)
		if !r.readDeps(ev) {
			return false
		}
		r.values++
	case tagLoad:
		ev.Kind = KindLoad
		var pc uint64
		if pc, ok = r.uv(); ok {
			ev.PC = int(pc)
			ev.Addr, ok = r.sv()
		}
		if !ok {
			return r.fail("truncated load")
		}
		if !r.readDeps(ev) {
			return false
		}
		r.values++
	case tagStore:
		ev.Kind = KindStore
		var pc uint64
		if pc, ok = r.uv(); ok {
			ev.PC = int(pc)
			ev.Addr, ok = r.sv()
		}
		if !ok {
			return r.fail("truncated store")
		}
		if !r.readDeps(ev) {
			return false
		}
	case tagPrefetchValid, tagPrefetchInvalid:
		ev.Kind = KindPrefetch
		ev.Valid = tag == tagPrefetchValid
		var pc uint64
		if pc, ok = r.uv(); ok {
			ev.PC = int(pc)
			ev.Addr, ok = r.sv()
		}
		if !ok {
			return r.fail("truncated prefetch")
		}
		if !r.readDeps(ev) {
			return false
		}
	case tagBr, tagCBr:
		ev.Kind = KindBranch
		ev.Conditional = tag == tagCBr
		if !r.readDeps(ev) {
			return false
		}
	case tagFinish:
		ev.Kind = KindFinish
		ev.Deps = nil
	case tagAlloc:
		ev.Kind = KindAlloc
		ev.Deps = nil
		var size uint64
		if size, ok = r.uv(); !ok {
			return r.fail("truncated alloc")
		}
		ev.Size = int64(size)
	case tagPoke1, tagPoke2, tagPoke4, tagPoke8:
		ev.Kind = KindPoke
		ev.Deps = nil
		ev.Width = 1 << (tag - tagPoke1)
		if ev.Addr, ok = r.sv(); ok {
			ev.Val, ok = r.sv()
		}
		if !ok {
			return r.fail("truncated poke")
		}
	default:
		return r.fail("unknown tag %d", tag)
	}
	r.events++
	if r.events > r.t.NumEvents {
		return r.fail("more events than the footer's %d", r.t.NumEvents)
	}
	return true
}

// Err returns the corruption error that stopped iteration, or nil.
func (r *Reader) Err() error { return r.err }
