package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds the parser mangled variants of valid IR:
// every outcome must be a module or an error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	base := sumSrc
	mutate := func(r *rand.Rand, s string) string {
		b := []byte(s)
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			if len(b) == 0 {
				break
			}
			pos := r.Intn(len(b))
			switch r.Intn(4) {
			case 0: // flip to random printable
				b[pos] = byte(32 + r.Intn(95))
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			case 2: // duplicate a chunk
				end := pos + r.Intn(20)
				if end > len(b) {
					end = len(b)
				}
				b = append(b[:end], append([]byte(string(b[pos:end])), b[end:]...)...)
			case 3: // insert a special character
				specials := "%@[](){},:;=\n\t"
				b = append(b[:pos], append([]byte{specials[r.Intn(len(specials))]}, b[pos:]...)...)
			}
		}
		return string(b)
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := mutate(r, base)
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on seed %d: %v\ninput:\n%s", seed, p, src)
			}
		}()
		m, err := Parse(src)
		if err == nil && m != nil {
			// Whatever parsed must at least print without panicking.
			_ = m.String()
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// TestParserHandlesTruncation: every prefix of a valid module either
// parses or errors cleanly.
func TestParserHandlesTruncation(t *testing.T) {
	for i := 0; i <= len(sumSrc); i += 7 {
		src := sumSrc[:i]
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on prefix of length %d: %v", i, p)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestVerifierNeverPanicsOnParsed: any successfully parsed module must
// survive verification without panicking (errors are fine).
func TestVerifierNeverPanicsOnParsed(t *testing.T) {
	// Structurally odd but parseable inputs.
	cases := []string{
		"module m\nfunc f() -> void {\nentry:\n  ret\n}\n",
		"module m\nfunc f() -> void {\nentry:\n  br entry\n}\n", // self loop entry
		"module m\nfunc f() -> void {\na:\n  br b\nb:\n  br a\n}\n",
		"module m\nfunc f(%x: i64) -> i64 {\ne:\n  %p = phi i64 [e: %p]\n  ret %p\n}\n",
	}
	for _, src := range cases {
		m, err := Parse(src)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("verifier panicked on:\n%s\n%v", src, p)
				}
			}()
			_ = m.Verify()
		}()
	}
}

func TestLongNamesAndDeepNesting(t *testing.T) {
	// A pathological but valid module with long identifiers.
	long := strings.Repeat("x", 500)
	src := "module m\nfunc f(%" + long + ": i64) -> i64 {\nentry:\n  %a = add %" + long + ", 1\n  ret %a\n}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("long names rejected: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
