package ir

import "testing"

// FuzzParse is the native-fuzzing companion of TestParserNeverPanics:
// arbitrary input must parse to a module or an error, never panic, and
// anything that parses must survive a print -> reparse -> print round
// trip (the stability the generated-kernel corpus files rely on; see
// docs/testing.md).
func FuzzParse(f *testing.F) {
	f.Add(sumSrc)
	f.Add("module m\n\nfunc f(%x: i64) -> i64 {\nentry:\n  ret %x\n}\n")
	f.Add("module broken\nfunc (")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		printed := m.String()
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, printed)
		}
		if again := m2.String(); again != printed {
			t.Fatalf("print -> reparse -> print unstable:\n%s\nvs\n%s", printed, again)
		}
	})
}
