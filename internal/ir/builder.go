package ir

import "fmt"

// Builder provides a convenient way to construct IR, maintaining an
// insertion point and generating fresh SSA names. It is the API the
// workload kernels and the prefetch pass use to emit code.
type Builder struct {
	fn  *Function
	blk *Block
}

// NewBuilder returns a builder positioned at the end of the function's
// entry block (creating one called "entry" if the function is empty).
func NewBuilder(f *Function) *Builder {
	if len(f.Blocks) == 0 {
		f.NewBlock("entry")
	}
	return &Builder{fn: f, blk: f.Entry()}
}

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.fn }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.blk }

// SetBlock moves the insertion point to the end of blk.
func (b *Builder) SetBlock(blk *Block) {
	if blk.fn != b.fn {
		panic("ir: SetBlock: block belongs to a different function")
	}
	b.blk = blk
}

// NewBlock creates a new block in the function without moving the
// insertion point.
func (b *Builder) NewBlock(name string) *Block { return b.fn.NewBlock(name) }

func (b *Builder) emit(in *Instr) *Instr {
	if b.blk == nil {
		panic("ir: builder has no insertion block")
	}
	if t := b.blk.Term(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s into terminated block %s", in.Op, b.blk.Name))
	}
	if in.Op.HasResult() && in.Typ != Void && in.Name == "" {
		in.Name = b.fn.FreshName("v")
	}
	b.blk.Append(in)
	return in
}

// Named sets the SSA name of the next value-producing instruction.
// Usage: b.Named("sum").Add(x, y).
func (b *Builder) Named(name string) *namedBuilder {
	return &namedBuilder{b: b, name: name}
}

type namedBuilder struct {
	b    *Builder
	name string
}

func (nb *namedBuilder) apply(in *Instr) *Instr {
	in.Name = nb.name
	return in
}

// Add emits a named add.
func (nb *namedBuilder) Add(x, y Value) *Instr { return nb.apply(nb.b.Add(x, y)) }

// Phi emits a named phi.
func (nb *namedBuilder) Phi(t Type) *Instr { return nb.apply(nb.b.Phi(t)) }

// Load emits a named load.
func (nb *namedBuilder) Load(t Type, addr Value) *Instr { return nb.apply(nb.b.Load(t, addr)) }

// Alloc emits: reserve elems*elemSize bytes, yielding the base pointer.
func (b *Builder) Alloc(elems Value, elemSize int64) *Instr {
	return b.emit(&Instr{Op: OpAlloc, Typ: Ptr, Args: []Value{elems, ConstInt(elemSize)}})
}

// Load emits a load of width t.Size() from addr.
func (b *Builder) Load(t Type, addr Value) *Instr {
	return b.emit(&Instr{Op: OpLoad, Typ: t, Args: []Value{addr}})
}

// Store emits a store of val (width t.Size()) to addr.
func (b *Builder) Store(t Type, addr, val Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Typ: Void, Args: []Value{addr, val}, Pred: Pred(t)})
}

// StoreType recovers the access type of a store instruction.
func StoreType(in *Instr) Type {
	if in.Op != OpStore {
		panic("ir: StoreType on non-store")
	}
	return Type(in.Pred)
}

// GEP emits base + index*scale as a pointer value.
func (b *Builder) GEP(base, index Value, scale int64) *Instr {
	return b.emit(&Instr{Op: OpGEP, Typ: Ptr, Args: []Value{base, index, ConstInt(scale)}})
}

// Prefetch emits a non-binding prefetch of addr.
func (b *Builder) Prefetch(addr Value) *Instr {
	return b.emit(&Instr{Op: OpPrefetch, Typ: Void, Args: []Value{addr}})
}

func (b *Builder) binop(op Op, x, y Value) *Instr {
	t := I64
	if x.Type() == Ptr || y.Type() == Ptr {
		t = Ptr
	}
	return b.emit(&Instr{Op: op, Typ: t, Args: []Value{x, y}})
}

// Add emits x + y.
func (b *Builder) Add(x, y Value) *Instr { return b.binop(OpAdd, x, y) }

// Sub emits x - y.
func (b *Builder) Sub(x, y Value) *Instr { return b.binop(OpSub, x, y) }

// Mul emits x * y.
func (b *Builder) Mul(x, y Value) *Instr { return b.binop(OpMul, x, y) }

// Div emits x / y (signed; division by zero faults at runtime).
func (b *Builder) Div(x, y Value) *Instr { return b.binop(OpDiv, x, y) }

// Rem emits x % y (signed; division by zero faults at runtime).
func (b *Builder) Rem(x, y Value) *Instr { return b.binop(OpRem, x, y) }

// And emits x & y.
func (b *Builder) And(x, y Value) *Instr { return b.binop(OpAnd, x, y) }

// Or emits x | y.
func (b *Builder) Or(x, y Value) *Instr { return b.binop(OpOr, x, y) }

// Xor emits x ^ y.
func (b *Builder) Xor(x, y Value) *Instr { return b.binop(OpXor, x, y) }

// Shl emits x << y.
func (b *Builder) Shl(x, y Value) *Instr { return b.binop(OpShl, x, y) }

// Shr emits a logical shift right x >> y.
func (b *Builder) Shr(x, y Value) *Instr { return b.binop(OpShr, x, y) }

// Min emits min(x, y) (signed).
func (b *Builder) Min(x, y Value) *Instr { return b.binop(OpMin, x, y) }

// Max emits max(x, y) (signed).
func (b *Builder) Max(x, y Value) *Instr { return b.binop(OpMax, x, y) }

// Cmp emits (x pred y) as 0/1.
func (b *Builder) Cmp(p Pred, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpCmp, Typ: I64, Pred: p, Args: []Value{x, y}})
}

// Select emits cond != 0 ? x : y.
func (b *Builder) Select(cond, x, y Value) *Instr {
	t := x.Type()
	if t == Void {
		t = y.Type()
	}
	return b.emit(&Instr{Op: OpSelect, Typ: t, Args: []Value{cond, x, y}})
}

// Phi emits an empty phi of type t; fill in edges with AddIncoming.
// Phis must be emitted before any non-phi instruction in their block.
func (b *Builder) Phi(t Type) *Instr {
	for _, in := range b.blk.Instrs {
		if in.Op != OpPhi {
			panic("ir: phi emitted after non-phi instruction")
		}
	}
	return b.emit(&Instr{Op: OpPhi, Typ: t})
}

// AddIncoming adds an edge [pred: v] to a phi instruction.
func AddIncoming(phi *Instr, pred *Block, v Value) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
	phi.Incoming = append(phi.Incoming, pred)
}

// Call emits a call to the named function. Side-effect freedom is a
// property of the callee recorded in analysis, not of the call site.
func (b *Builder) Call(ret Type, callee string, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Typ: ret, Callee: callee, Args: args})
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Typ: Void, Targets: []*Block{target}})
}

// CBr emits a conditional branch: then if cond != 0, otherwise els.
func (b *Builder) CBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpCBr, Typ: Void, Args: []Value{cond}, Targets: []*Block{then, els}})
}

// Ret emits a return; v may be nil for void functions.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// CountedLoop emits the skeleton of a canonical counted loop
//
//	for (i = start; i < limit; i += step) { body }
//
// and returns the loop structure. The builder is left positioned in the
// body block; callers emit the body and then call Close to wire the
// back edge. The induction variable phi is in canonical form (constant
// start, constant step), which is what the prefetch pass recognises.
type CountedLoop struct {
	IndVar *Instr // the induction-variable phi
	Header *Block
	Body   *Block
	Latch  *Block
	Exit   *Block

	b    *Builder
	step Value
}

// CountedLoop builds the loop skeleton. name prefixes the block names.
func (b *Builder) CountedLoop(name string, start, limit Value, step int64) *CountedLoop {
	pre := b.blk
	header := b.NewBlock(name + ".header")
	body := b.NewBlock(name + ".body")
	latch := b.NewBlock(name + ".latch")
	exit := b.NewBlock(name + ".exit")

	b.Br(header)

	b.SetBlock(header)
	iv := b.Named(name + ".i").Phi(I64)
	AddIncoming(iv, pre, start)
	cond := b.Cmp(PredLT, iv, limit)
	b.CBr(cond, body, exit)

	b.SetBlock(latch)
	next := b.Add(iv, ConstInt(step))
	b.Br(header)
	AddIncoming(iv, latch, next)

	b.SetBlock(body)
	return &CountedLoop{
		IndVar: iv, Header: header, Body: body, Latch: latch, Exit: exit,
		b: b, step: ConstInt(step),
	}
}

// Close terminates the current insertion block with a branch to the loop
// latch and repositions the builder at the loop exit.
func (l *CountedLoop) Close() {
	l.b.Br(l.Latch)
	l.b.SetBlock(l.Exit)
}
