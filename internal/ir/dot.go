package ir

import (
	"fmt"
	"strings"
)

// DotCFG renders the function's control-flow graph in Graphviz dot
// format, one record node per basic block. cmd/swpfc emits this under
// -dot for inspecting the pass's output.
func DotCFG(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("  node [shape=record, fontname=monospace];\n")
	for _, b := range f.Blocks {
		var lines []string
		lines = append(lines, b.Name+":")
		for _, in := range b.Instrs {
			lines = append(lines, escapeDot(in.Format()))
		}
		fmt.Fprintf(&sb, "  %q [label=\"%s\"];\n", b.Name, strings.Join(lines, "\\l")+"\\l")
		for i, s := range b.Succs() {
			attr := ""
			if t := b.Term(); t != nil && t.Op == OpCBr {
				if i == 0 {
					attr = " [label=\"T\"]"
				} else {
					attr = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&sb, "  %q -> %q%s;\n", b.Name, s.Name, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DotDDG renders the data-dependence graph of one function: an edge
// from each definition to each use. Loads and prefetches are
// highlighted, making the address-generation chains the prefetch pass
// duplicates visible at a glance.
func DotDDG(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name+"-ddg")
	sb.WriteString("  node [fontname=monospace];\n")
	name := func(in *Instr) string { return fmt.Sprintf("i%d", in.ID) }
	f.Renumber()
	f.Instrs(func(in *Instr) {
		label := escapeDot(in.Format())
		attrs := ""
		switch in.Op {
		case OpLoad:
			attrs = ", style=filled, fillcolor=lightblue"
		case OpPrefetch:
			attrs = ", style=filled, fillcolor=palegreen"
		case OpPhi:
			attrs = ", shape=diamond"
		}
		fmt.Fprintf(&sb, "  %s [label=\"%s\"%s];\n", name(in), label, attrs)
		for _, a := range in.Args {
			if def, ok := a.(*Instr); ok {
				fmt.Fprintf(&sb, "  %s -> %s;\n", name(def), name(in))
			}
		}
	})
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "<", "\\<")
	s = strings.ReplaceAll(s, ">", "\\>")
	s = strings.ReplaceAll(s, "{", "\\{")
	s = strings.ReplaceAll(s, "}", "\\}")
	s = strings.ReplaceAll(s, "|", "\\|")
	return s
}
