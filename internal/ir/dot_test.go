package ir

import (
	"strings"
	"testing"
)

func TestDotCFG(t *testing.T) {
	_, f := buildSum()
	dot := DotCFG(f)
	for _, want := range []string{
		"digraph \"sum\"",
		`"entry" -> "header"`,
		`"header" -> "body" [label="T"]`,
		`"header" -> "exit" [label="F"]`,
		`"body" -> "header"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DotCFG missing %q:\n%s", want, dot)
		}
	}
	if strings.Count(dot, "shape=record") != 1 {
		t.Error("record style missing")
	}
}

func TestDotDDG(t *testing.T) {
	_, f := buildSum()
	dot := DotDDG(f)
	if !strings.Contains(dot, "lightblue") {
		t.Error("load highlight missing")
	}
	if !strings.Contains(dot, "shape=diamond") {
		t.Error("phi highlight missing")
	}
	// Every def-use edge present: gep -> load.
	body := f.Block("body")
	gep, load := body.Instrs[0], body.Instrs[1]
	edge := "i" + itoa(gep.ID) + " -> i" + itoa(load.ID)
	if !strings.Contains(dot, edge) {
		t.Errorf("missing def-use edge %q:\n%s", edge, dot)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestEscapeDot(t *testing.T) {
	in := `a"b|c{d}e<f>g\h`
	want := `a\"b\|c\{d\}e\<f\>g\\h`
	if got := escapeDot(in); got != want {
		t.Errorf("escapeDot(%q) = %q, want %q", in, got, want)
	}
}
