package ir

import (
	"fmt"
	"strings"
)

// VerifyError aggregates the structural problems found in a function.
type VerifyError struct {
	Func     string
	Problems []string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("ir: verify %s: %s", e.Func, strings.Join(e.Problems, "; "))
}

// Verify checks module-level structural invariants: every function
// verifies, and every call targets a function in the module.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
		var probs []string
		f.Instrs(func(in *Instr) {
			if in.Op == OpCall && m.Func(in.Callee) == nil {
				probs = append(probs, fmt.Sprintf("call to undefined function @%s", in.Callee))
			}
		})
		if len(probs) > 0 {
			return &VerifyError{Func: f.Name, Problems: probs}
		}
	}
	return nil
}

// Verify checks the SSA invariants of a function:
//
//   - every block is non-empty and ends in exactly one terminator;
//   - phis appear only at block heads and have one edge per predecessor;
//   - every instruction operand is defined, and non-phi uses are
//     dominated by their definitions;
//   - operand arities match opcodes;
//   - value names are unique.
func (f *Function) Verify() error {
	var probs []string
	addf := func(format string, args ...interface{}) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	if len(f.Blocks) == 0 {
		addf("function has no blocks")
		return &VerifyError{Func: f.Name, Problems: probs}
	}

	names := map[string]bool{}
	for _, p := range f.Params {
		if names[p.Name] {
			addf("duplicate name %%%s", p.Name)
		}
		names[p.Name] = true
	}
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}

	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			addf("block %s lacks a terminator", b.Name)
		}
		seenNonPhi := false
		for i, in := range b.Instrs {
			if in.blk != b {
				addf("block %s: instruction %d has wrong block link", b.Name, i)
			}
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				addf("block %s: terminator %s not at block end", b.Name, in.Op)
			}
			if in.Op == OpPhi {
				if seenNonPhi {
					addf("block %s: phi %%%s after non-phi instruction", b.Name, in.Name)
				}
			} else {
				seenNonPhi = true
			}
			if in.Op.HasResult() && in.Typ != Void {
				if in.Name == "" {
					addf("block %s: unnamed %s result", b.Name, in.Op)
				} else if names[in.Name] {
					addf("duplicate name %%%s", in.Name)
				}
				names[in.Name] = true
				defined[in] = true
			}
			if msg := checkArity(in); msg != "" {
				addf("block %s: %s", b.Name, msg)
			}
		}
	}

	// Phi edge / predecessor agreement.
	for _, b := range f.Blocks {
		preds := b.Preds()
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(phi.Incoming) {
				addf("phi %%%s: %d values for %d edges", phi.Name, len(phi.Args), len(phi.Incoming))
				continue
			}
			if len(phi.Incoming) != len(preds) {
				addf("phi %%%s in %s: %d edges for %d predecessors", phi.Name, b.Name, len(phi.Incoming), len(preds))
			}
			for _, pb := range preds {
				if phi.PhiIncoming(pb) == nil {
					addf("phi %%%s: missing edge for predecessor %s", phi.Name, pb.Name)
				}
			}
		}
	}

	// All operands defined somewhere in the function.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				switch v := a.(type) {
				case nil:
					addf("block %s: %s has nil operand %d", b.Name, in.Op, ai)
				case *Const:
				case *Param:
					if !defined[v] {
						addf("block %s: operand %%%s is not a parameter of this function", b.Name, v.Name)
					}
				case *Instr:
					if !defined[v] {
						addf("block %s: operand %%%s not defined in this function", b.Name, v.Name)
					}
				default:
					addf("block %s: unknown operand kind %T", b.Name, a)
				}
			}
		}
	}

	// Dominance: definitions must dominate non-phi uses; phi operands
	// must dominate the end of their incoming edge's block.
	if len(probs) == 0 {
		dom := dominators(f)
		probs = append(probs, checkDominance(f, dom)...)
	}

	if len(probs) > 0 {
		return &VerifyError{Func: f.Name, Problems: probs}
	}
	return nil
}

func checkArity(in *Instr) string {
	want := -1
	switch in.Op {
	case OpAlloc, OpCmp:
		want = 2
	case OpLoad, OpPrefetch:
		want = 1
	case OpBr:
		want = 0
	case OpStore:
		want = 2
	case OpGEP, OpSelect:
		want = 3
	case OpCBr:
		want = 1
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMin, OpMax:
		want = 2
	}
	if want >= 0 && len(in.Args) != want {
		return fmt.Sprintf("%s has %d operands, want %d", in.Op, len(in.Args), want)
	}
	switch in.Op {
	case OpBr:
		if len(in.Targets) != 1 {
			return "br must have exactly 1 target"
		}
	case OpCBr:
		if len(in.Targets) != 2 {
			return "cbr must have exactly 2 targets"
		}
	case OpRet:
		if len(in.Args) > 1 {
			return "ret takes at most one operand"
		}
	case OpGEP:
		if _, ok := in.Args[2].(*Const); !ok {
			return "gep scale must be a constant"
		}
	case OpAlloc:
		if _, ok := in.Args[1].(*Const); !ok {
			return "alloc element size must be a constant"
		}
	}
	return ""
}

// dominators computes the immediate-dominator relation with the simple
// iterative algorithm (Cooper, Harvey & Kennedy). Returns idom indexed
// by block; entry maps to itself.
func dominators(f *Function) map[*Block]*Block {
	// Reverse postorder over reachable blocks.
	var order []*Block
	index := map[*Block]int{}
	seen := map[*Block]bool{}
	var dfs func(*Block)
	var post []*Block
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	entry := f.Entry()
	dfs(entry)
	for i := len(post) - 1; i >= 0; i-- {
		index[post[i]] = len(order)
		order = append(order, post[i])
	}

	idom := map[*Block]*Block{entry: entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var newIdom *Block
			for _, p := range b.Preds() {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominators exposes the immediate-dominator map for analyses.
func Dominators(f *Function) map[*Block]*Block { return dominators(f) }

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return a == b
		}
		b = next
	}
}

func checkDominance(f *Function, idom map[*Block]*Block) []string {
	var probs []string
	pos := map[*Instr]int{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	for _, b := range f.Blocks {
		if _, reachable := idom[b]; !reachable && b != f.Entry() {
			continue // unreachable blocks are not subject to dominance
		}
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				def, ok := a.(*Instr)
				if !ok {
					continue
				}
				if in.Op == OpPhi {
					pred := in.Incoming[ai]
					if _, reach := idom[pred]; !reach {
						continue
					}
					if !Dominates(idom, def.blk, pred) {
						probs = append(probs, fmt.Sprintf(
							"phi %%%s: %%%s does not dominate incoming edge from %s",
							in.Name, def.Name, pred.Name))
					}
					continue
				}
				if def.blk == b {
					if pos[def] >= pos[in] {
						probs = append(probs, fmt.Sprintf(
							"%%%s used before definition in block %s", def.Name, b.Name))
					}
				} else if !Dominates(idom, def.blk, b) {
					probs = append(probs, fmt.Sprintf(
						"%%%s (defined in %s) does not dominate use in %s", def.Name, def.blk.Name, b.Name))
				}
			}
		}
	}
	return probs
}
