package ir

import (
	"fmt"
	"strings"
)

// String renders the module in the textual IR format accepted by Parse.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, f := range m.Funcs {
		sb.WriteByte('\n')
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function in textual IR format.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%%%s: %s", p.Name, p.Typ)
	}
	fmt.Fprintf(&sb, ") -> %s {\n", f.Ret)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.Format())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Format renders a single instruction (without indentation).
func (in *Instr) Format() string {
	var sb strings.Builder
	if in.Op.HasResult() && in.Typ != Void {
		fmt.Fprintf(&sb, "%%%s = ", in.Name)
	}
	switch in.Op {
	case OpAlloc:
		fmt.Fprintf(&sb, "alloc %s, %s", in.Args[0], in.Args[1])
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Typ, in.Args[0])
	case OpStore:
		fmt.Fprintf(&sb, "store %s, %s, %s", StoreType(in), in.Args[0], in.Args[1])
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s, %s", in.Args[0], in.Args[1], in.Args[2])
	case OpPrefetch:
		fmt.Fprintf(&sb, "prefetch %s", in.Args[0])
	case OpCmp:
		fmt.Fprintf(&sb, "cmp %s %s, %s", in.Pred, in.Args[0], in.Args[1])
	case OpSelect:
		fmt.Fprintf(&sb, "select %s, %s, %s", in.Args[0], in.Args[1], in.Args[2])
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s [", in.Typ)
		for i, v := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s: %s", in.Incoming[i].Name, v)
		}
		sb.WriteString("]")
	case OpCall:
		if in.Typ == Void {
			fmt.Fprintf(&sb, "call void @%s(", in.Callee)
		} else {
			fmt.Fprintf(&sb, "call %s @%s(", in.Typ, in.Callee)
		}
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString(")")
	case OpBr:
		fmt.Fprintf(&sb, "br %s", in.Targets[0].Name)
	case OpCBr:
		fmt.Fprintf(&sb, "cbr %s, %s, %s", in.Args[0], in.Targets[0].Name, in.Targets[1].Name)
	case OpRet:
		sb.WriteString("ret")
		if len(in.Args) == 1 {
			fmt.Fprintf(&sb, " %s", in.Args[0])
		}
	default:
		// Binary arithmetic ops share one shape.
		fmt.Fprintf(&sb, "%s %s, %s", in.Op, in.Args[0], in.Args[1])
	}
	if in.Hint != "" {
		fmt.Fprintf(&sb, "  ; %s", in.Hint)
	}
	return sb.String()
}
