package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax or semantic error in textual IR.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("ir: line %d: %s", e.Line, e.Msg) }

// Parse reads a module in the textual format produced by Module.String.
// The format is line-oriented; ';' starts a comment. Forward references
// to blocks are allowed; forward references to values are allowed only
// in phi instructions (as in any SSA text format, since only phis can
// use values defined later in block order that still dominate the use).
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	return p.parse()
}

// MustParse is Parse, panicking on error. Intended for tests and
// embedded kernel sources.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type pendingRef struct {
	instr *Instr
	arg   int
	name  string
	line  int
}

type parser struct {
	lines []string
	ln    int // current line number (1-based)

	mod        *Module
	fn         *Function
	blk        *Block
	vals       map[string]Value
	pend       []pendingRef // phi operands awaiting definition
	labelOrder []string     // block labels in source order
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.ln, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parse() (*Module, error) {
	for i, raw := range p.lines {
		p.ln = i + 1
		line := raw
		if j := strings.Index(line, ";"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.parseLine(line); err != nil {
			return nil, err
		}
	}
	if p.fn != nil {
		return nil, p.errf("unterminated function %q", p.fn.Name)
	}
	if p.mod == nil {
		return nil, p.errf("no module declaration")
	}
	return p.mod, nil
}

func (p *parser) parseLine(line string) error {
	switch {
	case strings.HasPrefix(line, "module "):
		if p.mod != nil {
			return p.errf("duplicate module declaration")
		}
		p.mod = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
		return nil
	case strings.HasPrefix(line, "func "):
		if p.mod == nil {
			return p.errf("func before module declaration")
		}
		if p.fn != nil {
			return p.errf("nested func")
		}
		return p.parseFuncHeader(line)
	case line == "}":
		if p.fn == nil {
			return p.errf("unexpected '}'")
		}
		if err := p.resolvePending(); err != nil {
			return err
		}
		if err := p.finishBlocks(); err != nil {
			return err
		}
		p.fn.Renumber()
		p.fn, p.blk, p.vals, p.labelOrder = nil, nil, nil, nil
		return nil
	case strings.HasSuffix(line, ":"):
		if p.fn == nil {
			return p.errf("label outside function")
		}
		name := strings.TrimSuffix(line, ":")
		for _, l := range p.labelOrder {
			if l == name {
				return p.errf("duplicate label %q", name)
			}
		}
		p.labelOrder = append(p.labelOrder, name)
		p.blk = p.getBlock(name)
		return nil
	default:
		if p.blk == nil {
			return p.errf("instruction outside block")
		}
		return p.parseInstr(line)
	}
}

func (p *parser) parseFuncHeader(line string) error {
	rest := strings.TrimPrefix(line, "func ")
	open := strings.Index(rest, "(")
	close := strings.LastIndex(rest, ")")
	if open < 0 || close < open {
		return p.errf("malformed func header")
	}
	name := strings.TrimSpace(rest[:open])
	paramsSrc := rest[open+1 : close]
	tail := strings.TrimSpace(rest[close+1:])
	if !strings.HasPrefix(tail, "->") || !strings.HasSuffix(tail, "{") {
		return p.errf("func header must end with '-> <type> {'")
	}
	retName := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(tail, "->"), "{"))
	ret, ok := TypeFromString(retName)
	if !ok {
		return p.errf("bad return type %q", retName)
	}
	var params []*Param
	if strings.TrimSpace(paramsSrc) != "" {
		for _, ps := range strings.Split(paramsSrc, ",") {
			parts := strings.SplitN(ps, ":", 2)
			if len(parts) != 2 {
				return p.errf("bad parameter %q", ps)
			}
			pname := strings.TrimSpace(parts[0])
			if !strings.HasPrefix(pname, "%") {
				return p.errf("parameter name must start with %%: %q", pname)
			}
			ptype, ok := TypeFromString(strings.TrimSpace(parts[1]))
			if !ok {
				return p.errf("bad parameter type in %q", ps)
			}
			params = append(params, &Param{Name: pname[1:], Typ: ptype})
		}
	}
	p.fn = p.mod.NewFunc(name, ret, params...)
	p.vals = map[string]Value{}
	for _, pr := range params {
		p.vals[pr.Name] = pr
	}
	p.blk = nil
	return nil
}

func (p *parser) getBlock(name string) *Block {
	if b := p.fn.Block(name); b != nil {
		return b
	}
	return p.fn.NewBlock(name)
}

// value resolves an operand token: an integer literal or %name.
func (p *parser) value(tok string) (Value, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return nil, p.errf("empty operand")
	}
	if strings.HasPrefix(tok, "%") {
		v, ok := p.vals[tok[1:]]
		if !ok {
			return nil, p.errf("use of undefined value %s", tok)
		}
		return v, nil
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, p.errf("bad operand %q", tok)
	}
	return ConstInt(n), nil
}

func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func (p *parser) parseInstr(line string) error {
	name := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return p.errf("expected '=' after result name")
		}
		name = strings.TrimSpace(line[1:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	sp := strings.IndexByte(line, ' ')
	mnemonic := line
	rest := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	op, ok := OpFromString(mnemonic)
	if !ok {
		return p.errf("unknown opcode %q", mnemonic)
	}
	in, err := p.buildInstr(op, name, rest)
	if err != nil {
		return err
	}
	if in.Op.HasResult() && in.Typ != Void {
		if in.Name == "" {
			return p.errf("%s requires a result name", op)
		}
		if _, dup := p.vals[in.Name]; dup {
			return p.errf("redefinition of %%%s", in.Name)
		}
		p.vals[in.Name] = in
	}
	p.blk.Append(in)
	return nil
}

func (p *parser) buildInstr(op Op, name, rest string) (*Instr, error) {
	in := &Instr{Op: op, Name: name, Typ: Void}
	args := splitArgs(rest)
	need := func(n int) error {
		if len(args) != n {
			return p.errf("%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	setArgs := func(toks ...string) error {
		for _, t := range toks {
			v, err := p.value(t)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, v)
		}
		return nil
	}
	switch op {
	case OpAlloc:
		in.Typ = Ptr
		if err := need(2); err != nil {
			return nil, err
		}
		return in, setArgs(args...)
	case OpLoad:
		if err := need(2); err != nil {
			return nil, err
		}
		t, ok := TypeFromString(args[0])
		if !ok {
			return nil, p.errf("bad load type %q", args[0])
		}
		in.Typ = t
		return in, setArgs(args[1])
	case OpStore:
		if err := need(3); err != nil {
			return nil, err
		}
		t, ok := TypeFromString(args[0])
		if !ok {
			return nil, p.errf("bad store type %q", args[0])
		}
		in.Pred = Pred(t)
		return in, setArgs(args[1], args[2])
	case OpGEP:
		in.Typ = Ptr
		if err := need(3); err != nil {
			return nil, err
		}
		return in, setArgs(args...)
	case OpPrefetch:
		if err := need(1); err != nil {
			return nil, err
		}
		return in, setArgs(args[0])
	case OpCmp:
		in.Typ = I64
		if err := need(2); err != nil {
			return nil, err
		}
		// First arg is "pred %x".
		parts := strings.Fields(args[0])
		if len(parts) != 2 {
			return nil, p.errf("cmp expects 'cmp <pred> <a>, <b>'")
		}
		pred, ok := PredFromString(parts[0])
		if !ok {
			return nil, p.errf("bad predicate %q", parts[0])
		}
		in.Pred = pred
		return in, setArgs(parts[1], args[1])
	case OpSelect:
		if err := need(3); err != nil {
			return nil, err
		}
		if err := setArgs(args...); err != nil {
			return nil, err
		}
		in.Typ = in.Args[1].Type()
		return in, nil
	case OpPhi:
		return p.buildPhi(in, rest)
	case OpCall:
		return p.buildCall(in, rest)
	case OpBr:
		if err := need(1); err != nil {
			return nil, err
		}
		in.Targets = []*Block{p.getBlock(args[0])}
		return in, nil
	case OpCBr:
		if err := need(3); err != nil {
			return nil, err
		}
		if err := setArgs(args[0]); err != nil {
			return nil, err
		}
		in.Targets = []*Block{p.getBlock(args[1]), p.getBlock(args[2])}
		return in, nil
	case OpRet:
		if len(args) > 1 {
			return nil, p.errf("ret takes at most one operand")
		}
		if len(args) == 1 {
			return in, setArgs(args[0])
		}
		return in, nil
	default:
		// Binary arithmetic.
		if err := need(2); err != nil {
			return nil, err
		}
		if err := setArgs(args...); err != nil {
			return nil, err
		}
		in.Typ = I64
		if in.Args[0].Type() == Ptr || in.Args[1].Type() == Ptr {
			in.Typ = Ptr
		}
		return in, nil
	}
}

// buildPhi parses "phi <type> [pred: val, pred: val, ...]".
func (p *parser) buildPhi(in *Instr, rest string) (*Instr, error) {
	open := strings.Index(rest, "[")
	close := strings.LastIndex(rest, "]")
	if open < 0 || close < open {
		return nil, p.errf("phi expects '[pred: val, ...]'")
	}
	t, ok := TypeFromString(strings.TrimSpace(rest[:open]))
	if !ok {
		return nil, p.errf("bad phi type %q", strings.TrimSpace(rest[:open]))
	}
	in.Typ = t
	for _, edge := range splitArgs(rest[open+1 : close]) {
		parts := strings.SplitN(edge, ":", 2)
		if len(parts) != 2 {
			return nil, p.errf("bad phi edge %q", edge)
		}
		pred := p.getBlock(strings.TrimSpace(parts[0]))
		tok := strings.TrimSpace(parts[1])
		in.Incoming = append(in.Incoming, pred)
		// Phi operands may be forward references; defer resolution.
		if strings.HasPrefix(tok, "%") {
			if v, ok := p.vals[tok[1:]]; ok {
				in.Args = append(in.Args, v)
			} else {
				in.Args = append(in.Args, nil)
				p.pend = append(p.pend, pendingRef{in, len(in.Args) - 1, tok[1:], p.ln})
			}
			continue
		}
		v, err := p.value(tok)
		if err != nil {
			return nil, err
		}
		in.Args = append(in.Args, v)
	}
	return in, nil
}

// buildCall parses "call <type> @name(args...)".
func (p *parser) buildCall(in *Instr, rest string) (*Instr, error) {
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, p.errf("call expects 'call <type> @fn(...)'")
	}
	t, ok := TypeFromString(rest[:sp])
	if !ok {
		return nil, p.errf("bad call type %q", rest[:sp])
	}
	in.Typ = t
	rest = strings.TrimSpace(rest[sp+1:])
	if !strings.HasPrefix(rest, "@") {
		return nil, p.errf("call target must start with '@'")
	}
	open := strings.Index(rest, "(")
	close := strings.LastIndex(rest, ")")
	if open < 0 || close < open {
		return nil, p.errf("malformed call arguments")
	}
	in.Callee = rest[1:open]
	for _, a := range splitArgs(rest[open+1 : close]) {
		v, err := p.value(a)
		if err != nil {
			return nil, err
		}
		in.Args = append(in.Args, v)
	}
	return in, nil
}

// finishBlocks restores source label order: branch targets referenced
// before their label exist in f.Blocks in reference order, which would
// make print->parse->print unstable otherwise.
func (p *parser) finishBlocks() error {
	if len(p.labelOrder) != len(p.fn.Blocks) {
		for _, b := range p.fn.Blocks {
			found := false
			for _, l := range p.labelOrder {
				if l == b.Name {
					found = true
					break
				}
			}
			if !found {
				return p.errf("block %q referenced but never defined", b.Name)
			}
		}
		return p.errf("block bookkeeping mismatch")
	}
	ordered := make([]*Block, 0, len(p.labelOrder))
	for _, l := range p.labelOrder {
		ordered = append(ordered, p.fn.Block(l))
	}
	p.fn.Blocks = ordered
	return nil
}

func (p *parser) resolvePending() error {
	for _, pr := range p.pend {
		v, ok := p.vals[pr.name]
		if !ok {
			return &ParseError{Line: pr.line, Msg: fmt.Sprintf("use of undefined value %%%s", pr.name)}
		}
		pr.instr.Args[pr.arg] = v
	}
	p.pend = p.pend[:0]
	return nil
}
