package ir

import (
	"strings"
	"testing"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    Type
		size int64
	}{
		{Void, 0}, {I8, 1}, {I16, 2}, {I32, 4}, {I64, 8}, {Ptr, 8},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{Void, I8, I16, I32, I64, Ptr} {
		got, ok := TypeFromString(typ.String())
		if !ok || got != typ {
			t.Errorf("TypeFromString(%q) = %v, %v", typ.String(), got, ok)
		}
	}
	if _, ok := TypeFromString("i128"); ok {
		t.Error("TypeFromString accepted i128")
	}
}

func TestOpStringRoundTrip(t *testing.T) {
	for i := 1; i < NumOps; i++ {
		op := Op(i)
		got, ok := OpFromString(op.String())
		if !ok || got != op {
			t.Errorf("OpFromString(%q) = %v, %v; want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpFromString("frobnicate"); ok {
		t.Error("OpFromString accepted nonsense")
	}
}

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		a, b int64
		want bool
	}{
		{PredEQ, 3, 3, true}, {PredEQ, 3, 4, false},
		{PredNE, 3, 4, true}, {PredNE, 4, 4, false},
		{PredLT, -1, 0, true}, {PredLT, 0, 0, false},
		{PredLE, 0, 0, true}, {PredLE, 1, 0, false},
		{PredGT, 1, 0, true}, {PredGT, 0, 1, false},
		{PredGE, 1, 1, true}, {PredGE, 0, 1, false},
		{PredULT, -1, 0, false}, // -1 is max uint64
		{PredULT, 0, -1, true},
		{PredULE, -1, -1, true},
		{PredUGT, -1, 0, true},
		{PredUGE, 0, -1, false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.a, c.b); got != c.want {
			t.Errorf("%s.Eval(%d, %d) = %v, want %v", c.p, c.a, c.b, got, c.want)
		}
	}
}

func TestPredStringRoundTrip(t *testing.T) {
	for p := PredEQ; p <= PredUGE; p++ {
		got, ok := PredFromString(p.String())
		if !ok || got != p {
			t.Errorf("PredFromString(%q) = %v, %v", p.String(), got, ok)
		}
	}
}

// buildSum builds a canonical reduction loop with the accumulator phi in
// the loop header, used across several tests.
func buildSum() (*Module, *Function) {
	m := NewModule("test")
	f := m.NewFunc("sum", I64, &Param{Name: "a", Typ: Ptr}, &Param{Name: "n", Typ: I64})
	b := NewBuilder(f)

	entry := b.Block()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.Br(header)
	b.SetBlock(header)
	i := b.Named("i").Phi(I64)
	s := b.Named("s").Phi(I64)
	cond := b.Cmp(PredLT, i, f.Param("n"))
	b.CBr(cond, body, exit)

	b.SetBlock(body)
	addr := b.GEP(f.Param("a"), i, 8)
	v := b.Load(I64, addr)
	s2 := b.Add(s, v)
	i2 := b.Add(i, ConstInt(1))
	b.Br(header)

	AddIncoming(i, entry, ConstInt(0))
	AddIncoming(i, body, i2)
	AddIncoming(s, entry, ConstInt(0))
	AddIncoming(s, body, s2)

	b.SetBlock(exit)
	b.Ret(s)
	f.Renumber()
	return m, f
}

func TestBuilderProducesVerifiableIR(t *testing.T) {
	m, f := buildSum()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if f.Entry().Name != "entry" {
		t.Errorf("entry block name = %q", f.Entry().Name)
	}
	if n := f.NumInstrs(); n != 11 {
		t.Errorf("NumInstrs = %d, want 11", n)
	}
}

func TestCountedLoopSkeleton(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("f", Void, &Param{Name: "n", Typ: I64})
	b := NewBuilder(f)
	loop := b.CountedLoop("L", ConstInt(0), f.Param("n"), 2)
	loop.Close()
	b.Ret(nil)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if loop.IndVar.Op != OpPhi {
		t.Errorf("IndVar is %s, want phi", loop.IndVar.Op)
	}
	if len(loop.IndVar.Incoming) != 2 {
		t.Errorf("IndVar has %d incoming edges, want 2", len(loop.IndVar.Incoming))
	}
	// The header must branch to body and exit.
	succs := loop.Header.Succs()
	if len(succs) != 2 || succs[0] != loop.Body || succs[1] != loop.Exit {
		t.Errorf("header successors wrong: %v", succs)
	}
}

func TestBlockPredsSuccs(t *testing.T) {
	_, f := buildSum()
	header := f.Block("header")
	body := f.Block("body")
	entry := f.Block("entry")
	preds := header.Preds()
	if len(preds) != 2 || preds[0] != entry || preds[1] != body {
		t.Errorf("header preds = %v", preds)
	}
	if got := body.Succs(); len(got) != 1 || got[0] != header {
		t.Errorf("body succs = %v", got)
	}
}

func TestPhiIncoming(t *testing.T) {
	_, f := buildSum()
	header := f.Block("header")
	phis := header.Phis()
	if len(phis) != 2 {
		t.Fatalf("got %d phis, want 2", len(phis))
	}
	i := phis[0]
	if v := i.PhiIncoming(f.Block("entry")); v == nil || v.String() != "0" {
		t.Errorf("entry incoming = %v, want 0", v)
	}
	if v := i.PhiIncoming(f.Block("exit")); v != nil {
		t.Errorf("exit is not a predecessor, got %v", v)
	}
}

func TestInsertBefore(t *testing.T) {
	_, f := buildSum()
	body := f.Block("body")
	load := body.Instrs[1]
	if load.Op != OpLoad {
		t.Fatalf("expected load at body[1], got %s", load.Op)
	}
	pf := &Instr{Op: OpPrefetch, Typ: Void, Args: []Value{load.Args[0]}}
	body.InsertBefore(load, pf)
	if body.Instrs[1] != pf || body.Instrs[2] != load {
		t.Error("InsertBefore did not place instruction correctly")
	}
	if pf.Block() != body {
		t.Error("inserted instruction has wrong block link")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify after insert: %v", err)
	}
}

func TestUses(t *testing.T) {
	_, f := buildSum()
	header := f.Block("header")
	i := header.Phis()[0]
	uses := f.Uses(i)
	// i is used by: cmp, gep, add (increment).
	if len(uses) != 3 {
		t.Fatalf("Uses(i) = %d instrs, want 3", len(uses))
	}
}

func TestReplaceArg(t *testing.T) {
	_, f := buildSum()
	body := f.Block("body")
	gep := body.Instrs[0]
	i := gep.Args[1]
	n := gep.ReplaceArg(i, ConstInt(7))
	if n != 1 {
		t.Fatalf("ReplaceArg replaced %d, want 1", n)
	}
	if gep.Args[1].String() != "7" {
		t.Errorf("operand = %s, want 7", gep.Args[1])
	}
}

func TestRenumber(t *testing.T) {
	_, f := buildSum()
	f.Renumber()
	want := 0
	f.Instrs(func(in *Instr) {
		if in.ID != want {
			t.Errorf("instruction %s has ID %d, want %d", in.Format(), in.ID, want)
		}
		want++
	})
}

func TestFreshNameAvoidsCollisions(t *testing.T) {
	_, f := buildSum()
	name := f.FreshName("i")
	if name == "i" {
		t.Error("FreshName returned an existing name")
	}
	if f.lookupValue(name) != nil {
		t.Errorf("FreshName %q collides", name)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void)
	f.NewBlock("entry")
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("Verify = %v, want terminator error", err)
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	// Create add that uses a value defined after it.
	later := &Instr{Op: OpAdd, Typ: I64, Name: "later", Args: []Value{ConstInt(1), ConstInt(2)}}
	use := &Instr{Op: OpAdd, Typ: I64, Name: "use", Args: []Value{later, ConstInt(0)}}
	b.Block().Append(use)
	b.Block().Append(later)
	b.Ret(nil)
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "before definition") {
		t.Errorf("Verify = %v, want use-before-def error", err)
	}
}

func TestVerifyCatchesPhiEdgeMismatch(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	next := b.NewBlock("next")
	b.Br(next)
	b.SetBlock(next)
	phi := b.Phi(I64)
	phi.Name = "p"
	// No incoming edges for 1 predecessor.
	b.Ret(nil)
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "predecessors") {
		t.Errorf("Verify = %v, want phi edge mismatch", err)
	}
}

func TestVerifyCatchesCrossBlockDominanceViolation(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", I64, &Param{Name: "c", Typ: I64})
	b := NewBuilder(f)
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	join := b.NewBlock("join")
	b.CBr(f.Param("c"), then, els)
	b.SetBlock(then)
	v := b.Named("v").Add(ConstInt(1), ConstInt(2))
	b.Br(join)
	b.SetBlock(els)
	b.Br(join)
	b.SetBlock(join)
	// v does not dominate join (else path skips it).
	b.Ret(v)
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "dominate") {
		t.Errorf("Verify = %v, want dominance error", err)
	}
}

func TestVerifyCatchesUndefinedCallTarget(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	b.Call(Void, "nowhere")
	b.Ret(nil)
	err := m.Verify()
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("Verify = %v, want undefined call target error", err)
	}
}

func TestDominators(t *testing.T) {
	_, f := buildSum()
	idom := Dominators(f)
	entry := f.Block("entry")
	header := f.Block("header")
	body := f.Block("body")
	exit := f.Block("exit")
	if idom[header] != entry {
		t.Errorf("idom(header) = %v, want entry", idom[header].Name)
	}
	if idom[body] != header || idom[exit] != header {
		t.Errorf("idom(body)=%s idom(exit)=%s, want header for both", idom[body].Name, idom[exit].Name)
	}
	if !Dominates(idom, entry, exit) {
		t.Error("entry should dominate exit")
	}
	if Dominates(idom, body, exit) {
		t.Error("body should not dominate exit")
	}
}

func TestStoreTypeRecovery(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("f", Void, &Param{Name: "p", Typ: Ptr})
	b := NewBuilder(f)
	st := b.Store(I32, f.Param("p"), ConstInt(1))
	b.Ret(nil)
	if got := StoreType(st); got != I32 {
		t.Errorf("StoreType = %s, want i32", got)
	}
}

func TestBuilderPanicsOnTerminatedBlock(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	b.Ret(nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic emitting into terminated block")
		}
	}()
	b.Add(ConstInt(1), ConstInt(2))
}

func TestBuilderPanicsOnLatePhi(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	b.Add(ConstInt(1), ConstInt(2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic emitting phi after non-phi")
		}
	}()
	b.Phi(I64)
}
