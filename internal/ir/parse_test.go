package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sumSrc = `module test

func sum(%a: ptr, %n: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %s = phi i64 [entry: 0, body: %s2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %addr = gep %a, %i, 8
  %v = load i64, %addr
  %s2 = add %s, %v
  %i2 = add %i, 1
  br header
exit:
  ret %s
}
`

func TestParseSum(t *testing.T) {
	m, err := Parse(sumSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	f := m.Func("sum")
	if f == nil {
		t.Fatal("function sum not found")
	}
	if len(f.Params) != 2 || f.Ret != I64 {
		t.Errorf("signature wrong: %d params, ret %s", len(f.Params), f.Ret)
	}
	if len(f.Blocks) != 4 {
		t.Errorf("got %d blocks, want 4", len(f.Blocks))
	}
	phi := f.Block("header").Phis()[0]
	if phi.Name != "i" || len(phi.Incoming) != 2 {
		t.Errorf("phi parsed wrong: %s", phi.Format())
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m1 := MustParse(sumSrc)
	text1 := m1.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	text2 := m2.String()
	if text1 != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestBuiltIRRoundTrip(t *testing.T) {
	m, _ := buildSum()
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of printed IR failed: %v\n%s", err, text)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("verify of reparsed IR failed: %v", err)
	}
	if m2.String() != text {
		t.Error("printed form unstable across parse")
	}
}

func TestParseAllInstructionForms(t *testing.T) {
	src := `module all

func helper(%x: i64) -> i64 {
entry:
  ret %x
}

func f(%p: ptr, %n: i64) -> i64 {
entry:
  %buf = alloc %n, 4
  %a = add %n, 1
  %b = sub %a, 2
  %c = mul %b, 3
  %d = div %c, 2
  %e = rem %d, 5
  %f = and %e, 255
  %g = or %f, 1
  %h = xor %g, 7
  %i = shl %h, 2
  %j = shr %i, 1
  %k = min %j, %n
  %l = max %k, 0
  %m = cmp ule %l, %n
  %sel = select %m, %k, %l
  %addr = gep %buf, %sel, 4
  %v = load i32, %addr
  store i32, %addr, %v
  prefetch %addr
  %r = call i64 @helper(%v)
  cbr %m, then, else
then:
  br join
else:
  br join
join:
  %ph = phi i64 [then: %r, else: 0]
  ret %ph
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Round trip.
	m2, err := Parse(m.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m2.String() != m.String() {
		t.Error("round trip unstable")
	}
	// Spot-check ops survived.
	f := m2.Func("f")
	ops := map[Op]bool{}
	f.Instrs(func(in *Instr) { ops[in.Op] = true })
	for _, op := range []Op{OpAlloc, OpMin, OpMax, OpSelect, OpPrefetch, OpCall, OpPhi, OpCmp, OpShl} {
		if !ops[op] {
			t.Errorf("op %s lost in round trip", op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no module", "func f() -> void {\nentry:\n  ret\n}\n", "module"},
		{"bad opcode", "module m\nfunc f() -> void {\nentry:\n  bogus 1, 2\n}\n", "unknown opcode"},
		{"undefined value", "module m\nfunc f() -> void {\nentry:\n  %a = add %nope, 1\n  ret\n}\n", "undefined value"},
		{"unterminated func", "module m\nfunc f() -> void {\nentry:\n  ret\n", "unterminated"},
		{"bad type", "module m\nfunc f(%x: i99) -> void {\nentry:\n  ret\n}\n", "bad parameter type"},
		{"redefinition", "module m\nfunc f() -> void {\nentry:\n  %a = add 1, 2\n  %a = add 3, 4\n  ret\n}\n", "redefinition"},
		{"phi forward ref to nothing", "module m\nfunc f() -> void {\nentry:\n  br b\nb:\n  %p = phi i64 [entry: %ghost]\n  ret\n}\n", "undefined value"},
		{"bad arity", "module m\nfunc f() -> void {\nentry:\n  %a = add 1\n  ret\n}\n", "expects 2 operands"},
		{"instr outside block", "module m\nfunc f() -> void {\n  %a = add 1, 2\n}\n", "outside block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// randomModule builds a random but well-formed straight-line function:
// a chain of arithmetic over the parameters plus loads from an alloc.
func randomModule(r *rand.Rand) *Module {
	m := NewModule("rand")
	f := m.NewFunc("f", I64, &Param{Name: "n", Typ: I64})
	b := NewBuilder(f)
	buf := b.Alloc(ConstInt(64), 8)
	vals := []Value{f.Param("n"), ConstInt(int64(r.Intn(100)))}
	ops := []func(x, y Value) *Instr{b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor, b.Min, b.Max}
	n := 1 + r.Intn(30)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			idx := b.And(vals[r.Intn(len(vals))], ConstInt(63))
			addr := b.GEP(buf, idx, 8)
			vals = append(vals, b.Load(I64, addr))
		case 1:
			c := b.Cmp(Pred(r.Intn(10)), vals[r.Intn(len(vals))], vals[r.Intn(len(vals))])
			vals = append(vals, b.Select(c, vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]))
		default:
			op := ops[r.Intn(len(ops))]
			vals = append(vals, op(vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]))
		}
	}
	b.Ret(vals[len(vals)-1])
	f.Renumber()
	return m
}

func TestQuickRandomIRRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModule(r)
		if err := m.Verify(); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		text := m.String()
		m2, err := Parse(text)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		return m2.String() == text
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not ir at all")
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "module m ; trailing comment\n\n; full-line comment\nfunc f() -> void {\nentry: ; label comment\n  ret ; done\n}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Func("f") == nil {
		t.Error("function missing")
	}
}

func TestHintPrinting(t *testing.T) {
	m, f := buildSum()
	f.Block("body").Instrs[1].Hint = "prefetched"
	if !strings.Contains(m.String(), "; prefetched") {
		t.Error("hint not printed")
	}
	// Hints must not break reparsing.
	if _, err := Parse(m.String()); err != nil {
		t.Errorf("reparse with hint: %v", err)
	}
}
