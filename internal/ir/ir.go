// Package ir implements a small typed SSA intermediate representation,
// modelled on the subset of LLVM IR used by the prefetch-generation
// algorithm of Ainsworth & Jones, "Software Prefetching for Indirect
// Memory Accesses" (CGO 2017).
//
// A Module holds Functions; a Function holds Blocks; a Block holds
// Instrs ending in exactly one terminator (br, cbr or ret). Values are
// constants, function parameters, or instruction results. The IR is in
// SSA form: every Instr defines at most one value, and phi instructions
// merge values at control-flow joins.
//
// The representation is deliberately explicit about the two features the
// prefetching pass cares about: memory is reached only through alloc /
// gep / load / store / prefetch instructions, and loop induction
// variables appear as phi nodes in loop header blocks.
package ir

import "fmt"

// Type is the type of an IR value. The IR is word-oriented: all integer
// arithmetic is performed on 64-bit values; the narrower integer types
// exist to give loads and stores an access width, exactly like LLVM's
// i8/i16/i32/i64 with implicit extension.
type Type uint8

// The available value types.
const (
	Void Type = iota // no value (stores, branches, prefetches)
	I8               // 1-byte integer
	I16              // 2-byte integer
	I32              // 4-byte integer
	I64              // 8-byte integer
	Ptr              // 64-bit address
)

// Size returns the access width of the type in bytes.
func (t Type) Size() int64 {
	switch t {
	case I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64:
		return 8
	case Ptr:
		return 8
	}
	return 0
}

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I8:
		return "i8"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case Ptr:
		return "ptr"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// TypeFromString parses a type name as produced by Type.String.
func TypeFromString(s string) (Type, bool) {
	switch s {
	case "void":
		return Void, true
	case "i8":
		return I8, true
	case "i16":
		return I16, true
	case "i32":
		return I32, true
	case "i64":
		return I64, true
	case "ptr":
		return Ptr, true
	}
	return Void, false
}

// Value is an SSA value: a *Const, *Param or *Instr.
type Value interface {
	// Type reports the type of the value.
	Type() Type
	// String returns the value as an operand reference, e.g. "%x" or "42".
	String() string
}

// Const is an integer constant value.
type Const struct {
	Val int64
	Typ Type
}

// ConstInt returns an i64 constant.
func ConstInt(v int64) *Const { return &Const{Val: v, Typ: I64} }

// Type implements Value.
func (c *Const) Type() Type { return c.Typ }

func (c *Const) String() string { return fmt.Sprintf("%d", c.Val) }

// Param is a function parameter.
type Param struct {
	Name string
	Typ  Type
	Idx  int // position in the function signature
}

// Type implements Value.
func (p *Param) Type() Type { return p.Typ }

func (p *Param) String() string { return "%" + p.Name }

// Op enumerates instruction opcodes.
type Op uint8

// Instruction opcodes.
const (
	OpInvalid Op = iota

	// Memory.
	OpAlloc    // alloc <elems>, <elemsize>  -> ptr; reserves elems*elemsize bytes
	OpLoad     // load <ptr>                 -> value of the instr type
	OpStore    // store <ptr>, <val>
	OpGEP      // gep <base>, <index>, <scale const> -> base + index*scale
	OpPrefetch // prefetch <ptr>; non-binding, non-faulting cache hint

	// Arithmetic / logic (all on i64 words).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMin // min of two values; emitted by the prefetch pass for clamping
	OpMax

	// Comparison: result 0 or 1. Predicate in Instr.Pred.
	OpCmp

	// select <cond>, <a>, <b> -> a if cond != 0 else b
	OpSelect

	// phi [pred: val, ...]
	OpPhi

	// call <fn>(args...); callee in Instr.Callee
	OpCall

	// Terminators.
	OpBr   // br <block>
	OpCBr  // cbr <cond>, <then>, <else>
	OpRet  // ret [val]
	opLast // sentinel for iteration in tests
)

// NumOps is the number of defined opcodes (exported for table-driven tests).
const NumOps = int(opLast)

var opNames = [...]string{
	OpInvalid:  "invalid",
	OpAlloc:    "alloc",
	OpLoad:     "load",
	OpStore:    "store",
	OpGEP:      "gep",
	OpPrefetch: "prefetch",
	OpAdd:      "add",
	OpSub:      "sub",
	OpMul:      "mul",
	OpDiv:      "div",
	OpRem:      "rem",
	OpAnd:      "and",
	OpOr:       "or",
	OpXor:      "xor",
	OpShl:      "shl",
	OpShr:      "shr",
	OpMin:      "min",
	OpMax:      "max",
	OpCmp:      "cmp",
	OpSelect:   "select",
	OpPhi:      "phi",
	OpCall:     "call",
	OpBr:       "br",
	OpCBr:      "cbr",
	OpRet:      "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromString parses an opcode mnemonic.
func OpFromString(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s && Op(i) != OpInvalid {
			return Op(i), true
		}
	}
	return OpInvalid, false
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCBr || o == OpRet }

// HasResult reports whether instructions with this opcode define a value.
func (o Op) HasResult() bool {
	switch o {
	case OpStore, OpPrefetch, OpBr, OpCBr, OpRet, OpInvalid:
		return false
	case OpCall:
		// Calls may or may not produce a value; the instruction's type
		// distinguishes. Reported true here; void calls set Type==Void.
		return true
	}
	return true
}

// Pred is a comparison predicate for OpCmp.
type Pred uint8

// Comparison predicates (signed unless suffixed U).
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredULT
	PredULE
	PredUGT
	PredUGE
)

var predNames = [...]string{
	PredEQ: "eq", PredNE: "ne", PredLT: "lt", PredLE: "le",
	PredGT: "gt", PredGE: "ge",
	PredULT: "ult", PredULE: "ule", PredUGT: "ugt", PredUGE: "uge",
}

func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// PredFromString parses a predicate mnemonic.
func PredFromString(s string) (Pred, bool) {
	for i, n := range predNames {
		if n == s {
			return Pred(i), true
		}
	}
	return 0, false
}

// Eval applies the predicate to two signed 64-bit values.
func (p Pred) Eval(a, b int64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	case PredGE:
		return a >= b
	case PredULT:
		return uint64(a) < uint64(b)
	case PredULE:
		return uint64(a) <= uint64(b)
	case PredUGT:
		return uint64(a) > uint64(b)
	case PredUGE:
		return uint64(a) >= uint64(b)
	}
	return false
}

// Instr is a single SSA instruction.
type Instr struct {
	Op   Op
	Typ  Type    // result type; Void when the op produces no value
	Name string  // SSA name without the leading '%'
	Args []Value // operands, opcode-specific arity

	// Opcode-specific fields.
	Pred     Pred     // OpCmp predicate
	Callee   string   // OpCall target
	Incoming []*Block // OpPhi: Incoming[i] is the predecessor for Args[i]
	Targets  []*Block // OpBr: 1 target; OpCBr: then, else

	// Annotations used by analyses and the pass.
	ID     int    // unique within the function once Function.Renumber runs
	blk    *Block // containing block
	Hint   string // freeform annotation, printed as a comment ("; hint")
	NoHWPF bool   // load is marked as bypassing the HW stride prefetcher
}

// Type implements Value.
func (in *Instr) Type() Type { return in.Typ }

func (in *Instr) String() string { return "%" + in.Name }

// Block returns the containing basic block.
func (in *Instr) Block() *Block { return in.blk }

// IsTerminator reports whether the instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// PhiIncoming returns the value flowing into the phi from predecessor b,
// or nil if b is not an incoming edge.
func (in *Instr) PhiIncoming(b *Block) Value {
	for i, p := range in.Incoming {
		if p == b {
			return in.Args[i]
		}
	}
	return nil
}

// ReplaceArg replaces every occurrence of old with new in the operand
// list and returns the number of replacements.
func (in *Instr) ReplaceArg(old, new Value) int {
	n := 0
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
			n++
		}
	}
	return n
}

// Block is a basic block: a straight-line sequence of instructions ending
// in a terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	fn     *Function
}

// Func returns the containing function.
func (b *Block) Func() *Function { return b.fn }

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks in terminator order.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Preds returns the predecessor blocks, in function block order.
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, ob := range b.fn.Blocks {
		for _, s := range ob.Succs() {
			if s == b {
				preds = append(preds, ob)
				break
			}
		}
	}
	return preds
}

// Phis returns the phi instructions at the head of the block.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}

// Index returns the position of in within the block, or -1.
func (b *Block) Index(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// InsertBefore inserts insts immediately before pos, which must be in b.
func (b *Block) InsertBefore(pos *Instr, insts ...*Instr) {
	i := b.Index(pos)
	if i < 0 {
		panic("ir: InsertBefore: position instruction not in block")
	}
	for _, in := range insts {
		in.blk = b
	}
	b.Instrs = append(b.Instrs[:i], append(append([]*Instr{}, insts...), b.Instrs[i:]...)...)
}

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) {
	in.blk = b
	b.Instrs = append(b.Instrs, in)
}

// Remove deletes the instruction from the block. It does not update uses.
func (b *Block) Remove(in *Instr) {
	i := b.Index(in)
	if i < 0 {
		return
	}
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
	in.blk = nil
}

// Function is a single function: a parameter list and a list of blocks,
// the first of which is the entry block.
type Function struct {
	Name   string
	Params []*Param
	Ret    Type
	Blocks []*Block
	Mod    *Module

	nextName int // counter for fresh value names
}

// Entry returns the entry block, or nil for an empty function.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new empty block with the given name.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Block returns the block with the given name, or nil.
func (f *Function) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Param returns the parameter with the given name, or nil.
func (f *Function) Param(name string) *Param {
	for _, p := range f.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// FreshName returns a value name that is unused in the function.
func (f *Function) FreshName(prefix string) string {
	for {
		f.nextName++
		name := fmt.Sprintf("%s%d", prefix, f.nextName)
		if f.lookupValue(name) == nil {
			return name
		}
	}
}

func (f *Function) lookupValue(name string) Value {
	for _, p := range f.Params {
		if p.Name == name {
			return p
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Name == name && in.Op.HasResult() {
				return in
			}
		}
	}
	return nil
}

// Instrs calls fn for every instruction in the function, in block order.
func (f *Function) Instrs(visit func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}

// NumInstrs returns the static instruction count.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Renumber assigns sequential IDs to all instructions in block order.
// Analyses and the interpreter rely on stable IDs; call after mutation.
func (f *Function) Renumber() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
}

// Uses returns all instructions in the function that use v as an operand.
func (f *Function) Uses(v Value) []*Instr {
	var uses []*Instr
	f.Instrs(func(in *Instr) {
		for _, a := range in.Args {
			if a == v {
				uses = append(uses, in)
				break
			}
		}
	})
	return uses
}

// Module is a collection of functions.
type Module struct {
	Name  string
	Funcs []*Function
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// NewFunc appends a new function with the given signature.
func (m *Module) NewFunc(name string, ret Type, params ...*Param) *Function {
	f := &Function{Name: name, Ret: ret, Params: params, Mod: m}
	for i, p := range params {
		p.Idx = i
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
