package gen

import (
	"testing"

	"repro/internal/hwpf"
	"repro/internal/sim"
	"repro/internal/uarch"
)

// fuzzOracle is a slimmed-down oracle for the fuzzing loop: one
// look-ahead, hoisting on and off, one machine, two hardware models —
// cheap enough for thousands of executions per second while still
// covering the transform/no-transform differential and the core sim
// invariants. Campaign-grade coverage is cmd/swpffuzz's job.
func fuzzOracle() *Oracle {
	return &Oracle{
		Cs:        []int64{64},
		Depths:    []int{0},
		Hoists:    []bool{false, true},
		Systems:   []*sim.Config{uarch.A53()},
		HWPFs:     []string{hwpf.NameStride, hwpf.NameIMP},
		Jobs:      2,
		MaxInstrs: 1 << 24,
	}
}

// FuzzDifferential is the native fuzzing entry point: the fuzzer
// mutates a (seed, raw parameter bytes) pair, ParamsFromRaw clamps it
// into a valid kernel, and the differential oracle must hold. The
// checked-in corpus under testdata/fuzz/FuzzDifferential seeds one
// kernel per shape plus the hash/store/narrow-type corners; promote
// minimized swpffuzz reproductions there (see docs/testing.md).
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), []byte{0, 8, 4, 1, 1, 0, 0, 0, 3, 1})  // flat A[B[i]]
	f.Add(uint64(2), []byte{1, 6, 6, 2, 1, 1, 2, 1, 0, 0})  // nested, hashed, store, i8
	f.Add(uint64(3), []byte{2, 10, 4, 2, 1, 1, 0, 0, 3, 1}) // chase
	o := fuzzOracle()
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		p := ParamsFromRaw(seed, raw)
		if fail := o.Check(Generate(p)); fail != nil {
			t.Fatalf("differential failure: %v", fail)
		}
	})
}

// FuzzMinimizeConverges: Minimize must terminate and return a passing
// verdict for arbitrary healthy parameter vectors (it only shrinks
// vectors that fail, and none of these do).
func FuzzMinimizeConverges(f *testing.F) {
	f.Add(uint64(4), []byte{0, 16, 8, 1, 1, 0, 0, 1, 2, 0})
	o := fuzzOracle()
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		p := ParamsFromRaw(seed, raw)
		min, fail := o.Minimize(p)
		if fail != nil {
			t.Fatalf("healthy kernel failed: %v", fail)
		}
		if min.Canonical() != p.Normalize().Canonical() {
			t.Fatalf("Minimize mutated a passing vector: %s", min.Canonical())
		}
	})
}
