// Package gen is a seeded, deterministic random-program generator for
// the project's IR dialect, plus the differential oracle that proves
// the whole pipeline correct on what it generates.
//
// The paper's claim rests on the prefetch pass (internal/prefetch)
// being semantics-preserving across every kernel shape it targets —
// strided, indirect A[B[i]], doubly indirect A[B[C[i]]], nested, and
// hash-based — yet the hand-written workloads cover only five points
// of that space. Generate manufactures an unbounded family of new
// scenarios from a parameter vector (Params): each kernel comes with
// deterministic input data and a pure-Go reference model, so any
// execution path — interpreter, pass-transformed interpreter, or the
// full simulator — can be checked against ground truth.
//
// The Oracle (oracle.go) runs each kernel with and without the
// automatic pass at every look-ahead/depth/hoist variant and demands
// bit-identical architectural results and final memory images, then
// sweeps the simulator across machines × hardware-prefetcher models
// checking statistics invariants and scheduling determinism. Minimize
// (minimize.go) shrinks a failing parameter vector before reporting.
//
// Entry points: native fuzzing (go test -fuzz in this package), the
// cmd/swpffuzz campaign binary, and workloads.Synthetic, which wraps
// generated kernels as first-class sweep/store/figure scenarios.
package gen

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Shape selects the control-flow skeleton of a generated kernel.
type Shape int

// Kernel shapes.
const (
	// ShapeFlat is a single counted loop over an indirection chain:
	// acc += data[idx1[idx0[i]]] and friends.
	ShapeFlat Shape = iota
	// ShapeNested is a counted loop nest: the inner loop walks the
	// indirection chain (indexed by the inner induction variable, so
	// the pass can clamp it), the outer loop supplies the flat store
	// index and carries the accumulator across rows.
	ShapeNested
	// ShapeChase is the hash-table walk of the paper's HJ workloads:
	// an outer counted loop hashes a key, loads a bucket head, and an
	// inner while-loop follows the chain — the §4.6 hoisting shape.
	ShapeChase
	numShapes
)

func (s Shape) String() string {
	switch s {
	case ShapeFlat:
		return "flat"
	case ShapeNested:
		return "nested"
	case ShapeChase:
		return "chase"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Body selects what the innermost loop does with the loaded value.
type Body int

// Loop bodies.
const (
	// BodyReduce folds the value into an accumulator returned by the
	// kernel.
	BodyReduce Body = iota
	// BodyStore writes the value to an output array; the checksum is
	// computed from the final memory image.
	BodyStore
	numBodies
)

func (b Body) String() string {
	switch b {
	case BodyReduce:
		return "reduce"
	case BodyStore:
		return "store"
	}
	return fmt.Sprintf("body(%d)", int(b))
}

// Params is the complete, deterministic description of one generated
// kernel: Generate(p) always returns the same module, inputs and
// reference checksum for equal p.
type Params struct {
	// Seed drives the input-data and array-size generators.
	Seed uint64
	// Shape is the control-flow skeleton.
	Shape Shape
	// Rows is the outermost trip count (the only loop's trip for
	// ShapeFlat, the key count for ShapeChase).
	Rows int64
	// Cols is the inner trip count (ShapeNested only).
	Cols int64
	// Indir is the number of index loads before the data access
	// (0 = pure stride) for flat/nested shapes, and the maximum bucket
	// chain length for ShapeChase.
	Indir int
	// Stride is the innermost loop step.
	Stride int64
	// Hash applies a multiplicative hash + power-of-two mask to each
	// loaded index value, the pattern of the paper's HJ/RA kernels.
	Hash bool
	// Extra inserts 0-2 additional arithmetic instructions into each
	// hash computation (only meaningful with Hash, where the final
	// mask keeps any intermediate value in bounds).
	Extra int
	// Body is the loop body kind (ShapeChase always reduces).
	Body Body
	// Elem is the data-array element type (i8..i64).
	Elem ir.Type
	// Idx is the index-array element type (i32 or i64).
	Idx ir.Type
}

// hashMul is the multiplicative hash constant generated kernels embed;
// positive and odd, so it diffuses bits and parses back cleanly.
const hashMul = 0x1B873593

// Normalize clamps every field into its valid range, returning a
// canonical parameter vector. Generate, Random and ParamsFromRaw all
// normalize, so any raw vector (e.g. from the fuzzer) names a valid
// kernel.
func (p Params) Normalize() Params {
	if p.Shape < 0 || p.Shape >= numShapes {
		p.Shape = ShapeFlat
	}
	p.Rows = clamp64(p.Rows, 4, 512)
	p.Stride = clamp64(p.Stride, 1, 4)
	switch p.Shape {
	case ShapeNested:
		p.Cols = clamp64(p.Cols, 2, 64)
	default:
		p.Cols = 0
	}
	if p.Shape == ShapeChase {
		p.Indir = int(clamp64(int64(p.Indir), 1, 4))
		p.Stride = 1
		p.Body = BodyReduce
		p.Elem, p.Idx = ir.I64, ir.I64
	} else {
		p.Indir = int(clamp64(int64(p.Indir), 0, 3))
	}
	if p.Indir == 0 {
		p.Hash = false
	}
	if !p.Hash {
		p.Extra = 0
	}
	p.Extra = int(clamp64(int64(p.Extra), 0, 2))
	if p.Body < 0 || p.Body >= numBodies {
		p.Body = BodyReduce
	}
	switch p.Elem {
	case ir.I8, ir.I16, ir.I32, ir.I64:
	default:
		p.Elem = ir.I64
	}
	switch p.Idx {
	case ir.I32, ir.I64:
	default:
		p.Idx = ir.I64
	}
	return p
}

// Canonical renders the normalized parameter vector in the
// internal/store Params style: two kernels with equal canonical
// strings are the same scenario (module, inputs and checksum).
func (p Params) Canonical() string {
	p = p.Normalize()
	return fmt.Sprintf(
		"shape=%s,seed=%d,rows=%d,cols=%d,indir=%d,stride=%d,hash=%t,extra=%d,body=%s,elem=%s,idx=%s",
		p.Shape, p.Seed, p.Rows, p.Cols, p.Indir, p.Stride, p.Hash, p.Extra, p.Body, p.Elem, p.Idx)
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Rand is a small deterministic generator (SplitMix64), used instead
// of math/rand so parameter draws are stable across Go versions.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with the given value.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int64) int64 {
	if n <= 0 {
		panic("gen: Intn of non-positive bound")
	}
	return int64(r.Next() % uint64(n))
}

// Random draws a normalized parameter vector from the generator. The
// draw is biased toward the shapes the pass transforms (indirection
// depth >= 1, unit stride) while still covering every reject path.
func Random(r *Rand) Params {
	p := Params{
		Seed:  r.Next(),
		Shape: Shape(r.Intn(int64(numShapes))),
		Rows:  []int64{8, 12, 16, 24, 32, 48, 64, 96}[r.Intn(8)],
		Cols:  []int64{4, 6, 8, 12, 16}[r.Intn(5)],
		// Bias: indirection 1-2 dominates; 0 (stride-only) and 3 are
		// rarer but present.
		Indir: []int{0, 1, 1, 1, 2, 2, 3}[r.Intn(7)],
		// Bias: unit stride dominates (the only clampable form when no
		// allocation size is visible, §4.2 Strategy B).
		Stride: []int64{1, 1, 1, 1, 2, 3}[r.Intn(6)],
		Hash:   r.Intn(3) == 0,
		Extra:  int(r.Intn(3)),
		Body:   Body(r.Intn(int64(numBodies))),
		Elem:   []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64}[r.Intn(4)],
		Idx:    []ir.Type{ir.I32, ir.I64}[r.Intn(2)],
	}
	return p.Normalize()
}

// ParamsFromRaw decodes a parameter vector from a seed and an opaque
// byte string, the fuzzing entry format: missing bytes default to
// zero and every field is normalized, so any input names a valid
// kernel.
func ParamsFromRaw(seed uint64, raw []byte) Params {
	at := func(i int) int64 {
		if i < len(raw) {
			return int64(raw[i])
		}
		return 0
	}
	p := Params{
		Seed:   seed,
		Shape:  Shape(at(0) % int64(numShapes)),
		Rows:   4 + at(1)*2,
		Cols:   2 + at(2)%32,
		Indir:  int(at(3) % 4),
		Stride: 1 + at(4)%4,
		Hash:   at(5)%2 == 1,
		Extra:  int(at(6) % 3),
		Body:   Body(at(7) % int64(numBodies)),
		Elem:   []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64}[at(8)%4],
		Idx:    []ir.Type{ir.I32, ir.I64}[at(9)%2],
	}
	return p.Normalize()
}

// Kernel is one generated scenario: a rebuildable module, its
// deterministic input data, and the reference checksum computed by a
// pure-Go model of the same program.
type Kernel struct {
	// P is the normalized parameter vector.
	P Params
	// Name is a short stable identifier derived from the parameters.
	Name string
	// Want is the reference checksum.
	Want int64

	lay layout
}

// layout holds the concrete array contents drawn from the seed. Index
// values are pre-bounded to the next level's length unless the kernel
// hashes (where the power-of-two mask bounds any value).
type layout struct {
	idx  [][]int64 // idx[0] indexed by the induction variable
	data []int64
	outN int64 // output array length (BodyStore)
	n    int64 // innermost trip count argument

	// hash constants (embedded in the IR and mirrored by the
	// reference model).
	hashXor, hashAdd int64

	// chase-only arrays.
	keys, heads, next, vals []int64
	nb                      int64 // bucket count (power of two)
}

// Generate builds the kernel named by p (normalized first). The same
// parameters always produce the same module, inputs and checksum.
func Generate(p Params) *Kernel {
	p = p.Normalize()
	k := &Kernel{P: p}
	k.Name = fmt.Sprintf("gen-%08x", fnv32(p.Canonical()))
	k.lay = buildLayout(p)
	k.Want = k.reference()
	return k
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// signExt truncates v to the width of t and sign-extends it back,
// mirroring what a store+load round trip through interp.Memory does.
func signExt(v int64, t ir.Type) int64 {
	switch t {
	case ir.I8:
		return int64(int8(v))
	case ir.I16:
		return int64(int16(v))
	case ir.I32:
		return int64(int32(v))
	}
	return v
}

// pow2Sizes are the array lengths used when a power-of-two mask must
// bound the index domain.
var pow2Sizes = []int64{64, 128, 256, 512}

func buildLayout(p Params) layout {
	r := NewRand(p.Seed ^ 0xda7a)
	var lay layout
	lay.hashXor = r.Intn(1 << 30)
	lay.hashAdd = r.Intn(1 << 30)

	if p.Shape == ShapeChase {
		buildChaseLayout(p, r, &lay)
		return lay
	}

	// Iteration domain: the length of idx[0] (or of data when there is
	// no indirection).
	domain := p.Rows
	if p.Shape == ShapeNested {
		domain = p.Cols
	}
	lay.n = domain

	// Draw the length of each indirection target: length[lvl] is the
	// length of the array the values of idx[lvl] index (idx[lvl+1], or
	// data for the last level). Hashing masks the index into the next
	// level, so hashed targets must be powers of two; unhashed targets
	// are arbitrary and the values stored in the previous level are
	// pre-bounded instead.
	dataLen := domain // Indir == 0: data is indexed by the IV directly
	if p.Indir > 0 {
		length := make([]int64, p.Indir)
		for i := range length {
			if p.Hash {
				length[i] = pow2Sizes[r.Intn(int64(len(pow2Sizes)))]
			} else {
				length[i] = 48 + r.Intn(400)
			}
		}
		lay.idx = make([][]int64, p.Indir)
		prevLen := domain
		for lvl := 0; lvl < p.Indir; lvl++ {
			vals := make([]int64, prevLen)
			for i := range vals {
				if p.Hash {
					vals[i] = r.Intn(1 << 20)
				} else {
					vals[i] = r.Intn(length[lvl])
				}
				vals[i] = signExt(vals[i], p.Idx)
			}
			lay.idx[lvl] = vals
			prevLen = length[lvl]
		}
		dataLen = length[p.Indir-1]
	}
	lay.data = make([]int64, dataLen)
	for i := range lay.data {
		lay.data[i] = signExt(int64(r.Next()), p.Elem)
	}

	if p.Body == BodyStore {
		lay.outN = domain
		if p.Shape == ShapeNested {
			lay.outN = p.Rows * p.Cols
		}
	}
	return lay
}

func buildChaseLayout(p Params, r *Rand, lay *layout) {
	lay.n = p.Rows
	lay.nb = pow2Sizes[r.Intn(int64(len(pow2Sizes)))]

	// Build acyclic bucket chains: node 0 is the null sentinel, nodes
	// are handed out sequentially, and each chain links strictly
	// forward to earlier-allocated nodes, so walks always terminate.
	lay.heads = make([]int64, lay.nb)
	lay.next = []int64{0}
	lay.vals = []int64{0}
	for b := int64(0); b < lay.nb; b++ {
		chain := r.Intn(int64(p.Indir) + 1)
		prev := int64(0)
		for c := int64(0); c < chain; c++ {
			id := int64(len(lay.next))
			lay.next = append(lay.next, prev)
			lay.vals = append(lay.vals, int64(r.Next()))
			prev = id
		}
		lay.heads[b] = prev
	}

	lay.keys = make([]int64, p.Rows)
	for i := range lay.keys {
		if p.Hash {
			lay.keys[i] = r.Intn(1 << 20)
		} else {
			lay.keys[i] = r.Intn(lay.nb)
		}
	}
}

// hashValue mirrors the hash instruction sequence the builder emits:
// v*hashMul, optional xor/add decorations, then the power-of-two mask.
func (k *Kernel) hashValue(v, modLen int64) int64 {
	v = v * hashMul
	if k.P.Extra >= 1 {
		v ^= k.lay.hashXor
	}
	if k.P.Extra >= 2 {
		v += k.lay.hashAdd
	}
	return v & (modLen - 1)
}

// Mix is the order-sensitive checksum accumulator shared by the
// reference models, Kernel.Exec and the workload generators
// (workloads.Checksum delegates here, so there is exactly one
// definition of the project's checksum mix).
func Mix(acc, v int64) int64 {
	return acc*1099511628211 + v ^ (acc >> 32)
}

// reference executes the pure-Go model of the kernel and returns the
// checksum Exec must reproduce.
func (k *Kernel) reference() int64 {
	p, lay := k.P, &k.lay
	if p.Shape == ShapeChase {
		acc := int64(0)
		for i := int64(0); i < p.Rows; i++ {
			h := lay.keys[i]
			if p.Hash {
				h = k.hashValue(h, lay.nb)
			}
			for n := lay.heads[h]; n != 0; n = lay.next[n] {
				acc += lay.vals[n]
			}
		}
		return Mix(0, acc)
	}

	var out []int64
	if p.Body == BodyStore {
		out = make([]int64, lay.outN)
	}
	acc := int64(0)
	inner := func(iv, flat int64) {
		cur := iv
		for lvl := 0; lvl < p.Indir; lvl++ {
			v := lay.idx[lvl][cur]
			if p.Hash {
				nextLen := int64(len(lay.data))
				if lvl+1 < p.Indir {
					nextLen = int64(len(lay.idx[lvl+1]))
				}
				v = k.hashValue(v, nextLen)
			}
			cur = v
		}
		dv := lay.data[cur]
		if p.Body == BodyReduce {
			acc += dv ^ iv
		} else {
			out[flat] = signExt(dv, p.Elem)
		}
	}
	if p.Shape == ShapeFlat {
		for i := int64(0); i < lay.n; i += p.Stride {
			inner(i, i)
		}
	} else {
		for i := int64(0); i < p.Rows; i++ {
			for j := int64(0); j < p.Cols; j += p.Stride {
				inner(j, i*p.Cols+j)
			}
		}
	}
	ret := acc
	if p.Body == BodyStore {
		ret = 0
	}
	c := Mix(0, ret)
	for _, v := range out {
		c = Mix(c, v)
	}
	return c
}

// Build constructs a fresh module for the kernel. Every call returns
// an independent copy, so callers (the pass mutates modules in place)
// can transform one build without affecting the next.
func (k *Kernel) Build() *ir.Module {
	if k.P.Shape == ShapeChase {
		return ir.MustParse(k.chaseSource())
	}
	return k.buildLoopKernel()
}

// emitHash appends the hash instruction sequence for a loaded value.
func (k *Kernel) emitHash(b *ir.Builder, v ir.Value, modLen int64) ir.Value {
	h := ir.Value(b.Mul(v, ir.ConstInt(hashMul)))
	if k.P.Extra >= 1 {
		h = b.Xor(h, ir.ConstInt(k.lay.hashXor))
	}
	if k.P.Extra >= 2 {
		h = b.Add(h, ir.ConstInt(k.lay.hashAdd))
	}
	return b.And(h, ir.ConstInt(modLen-1))
}

// emitChain emits the index-load chain for one iteration value and
// returns the loaded data value.
func (k *Kernel) emitChain(b *ir.Builder, f *ir.Function, iv ir.Value) ir.Value {
	p, lay := k.P, &k.lay
	cur := iv
	for lvl := 0; lvl < p.Indir; lvl++ {
		arr := f.Param(fmt.Sprintf("idx%d", lvl))
		v := ir.Value(b.Load(p.Idx, b.GEP(arr, cur, p.Idx.Size())))
		if p.Hash {
			nextLen := int64(len(lay.data))
			if lvl+1 < p.Indir {
				nextLen = int64(len(lay.idx[lvl+1]))
			}
			v = k.emitHash(b, v, nextLen)
		}
		cur = v
	}
	return b.Load(p.Elem, b.GEP(f.Param("data"), cur, p.Elem.Size()))
}

// insertPhi places a new phi at the head of the loop header (the
// builder API only appends, and the header already holds the
// induction variable phi and its compare).
func insertPhi(f *ir.Function, header *ir.Block, name string) *ir.Instr {
	phi := &ir.Instr{Op: ir.OpPhi, Typ: ir.I64, Name: f.FreshName(name)}
	header.InsertBefore(header.Instrs[0], phi)
	return phi
}

// buildLoopKernel emits the flat and nested shapes with the builder.
func (k *Kernel) buildLoopKernel() *ir.Module {
	p, lay := k.P, &k.lay
	m := ir.NewModule("gen")
	var params []*ir.Param
	for lvl := 0; lvl < p.Indir; lvl++ {
		params = append(params, &ir.Param{Name: fmt.Sprintf("idx%d", lvl), Typ: ir.Ptr})
	}
	params = append(params, &ir.Param{Name: "data", Typ: ir.Ptr})
	if p.Body == BodyStore {
		params = append(params, &ir.Param{Name: "out", Typ: ir.Ptr})
	}
	params = append(params, &ir.Param{Name: "n", Typ: ir.I64})
	f := m.NewFunc("kernel", ir.I64, params...)
	b := ir.NewBuilder(f)
	n := f.Param("n")

	if p.Shape == ShapeFlat {
		pre := b.Block()
		loop := b.CountedLoop("L", ir.ConstInt(0), n, p.Stride)
		var acc *ir.Instr
		if p.Body == BodyReduce {
			acc = insertPhi(f, loop.Header, "acc")
			ir.AddIncoming(acc, pre, ir.ConstInt(0))
		}
		dv := k.emitChain(b, f, loop.IndVar)
		if p.Body == BodyReduce {
			t := b.Xor(dv, loop.IndVar)
			next := b.Add(acc, t)
			ir.AddIncoming(acc, loop.Latch, next)
		} else {
			b.Store(p.Elem, b.GEP(f.Param("out"), loop.IndVar, p.Elem.Size()), dv)
		}
		loop.Close()
		if p.Body == BodyReduce {
			b.Ret(acc)
		} else {
			b.Ret(ir.ConstInt(0))
		}
		f.Renumber()
		return m
	}

	// Nested: outer rows x inner cols. The chain is indexed by the
	// inner induction variable (clampable); the outer loop carries the
	// accumulator and supplies the flat store index.
	pre := b.Block()
	outer := b.CountedLoop("R", ir.ConstInt(0), ir.ConstInt(p.Rows), 1)
	var oacc *ir.Instr
	if p.Body == BodyReduce {
		oacc = insertPhi(f, outer.Header, "oacc")
		ir.AddIncoming(oacc, pre, ir.ConstInt(0))
	}
	obody := b.Block()
	inner := b.CountedLoop("C", ir.ConstInt(0), ir.ConstInt(lay.n), p.Stride)
	var iacc *ir.Instr
	if p.Body == BodyReduce {
		iacc = insertPhi(f, inner.Header, "iacc")
		ir.AddIncoming(iacc, obody, oacc)
	}
	dv := k.emitChain(b, f, inner.IndVar)
	if p.Body == BodyReduce {
		t := b.Xor(dv, inner.IndVar)
		next := b.Add(iacc, t)
		ir.AddIncoming(iacc, inner.Latch, next)
	} else {
		flat := b.Add(b.Mul(outer.IndVar, ir.ConstInt(p.Cols)), inner.IndVar)
		b.Store(p.Elem, b.GEP(f.Param("out"), flat, p.Elem.Size()), dv)
	}
	inner.Close()
	if p.Body == BodyReduce {
		ir.AddIncoming(oacc, outer.Latch, iacc)
	}
	outer.Close()
	if p.Body == BodyReduce {
		b.Ret(oacc)
	} else {
		b.Ret(ir.ConstInt(0))
	}
	f.Renumber()
	return m
}

// chaseSource renders the hash-bucket walk as IR text (exercising the
// parser on every build) in the shape of the paper's hash join: outer
// counted loop over keys, inner while-loop over the bucket chain.
func (k *Kernel) chaseSource() string {
	hash := "  %h = add %k, 0\n"
	if k.P.Hash {
		hash = fmt.Sprintf("  %%h1 = mul %%k, %d\n", int64(hashMul))
		last := "%h1"
		if k.P.Extra >= 1 {
			hash += fmt.Sprintf("  %%h2 = xor %s, %d\n", last, k.lay.hashXor)
			last = "%h2"
		}
		if k.P.Extra >= 2 {
			hash += fmt.Sprintf("  %%h3 = add %s, %d\n", last, k.lay.hashAdd)
			last = "%h3"
		}
		hash += fmt.Sprintf("  %%h = and %s, %d\n", last, k.lay.nb-1)
	}
	return fmt.Sprintf(`module gen

func kernel(%%keys: ptr, %%heads: ptr, %%next: ptr, %%vals: ptr, %%n: i64) -> i64 {
entry:
  br oh
oh:
  %%i = phi i64 [entry: 0, olatch: %%i2]
  %%acc = phi i64 [entry: 0, olatch: %%acc2]
  %%oc = cmp lt %%i, %%n
  cbr %%oc, obody, oexit
obody:
  %%ka = gep %%keys, %%i, 8
  %%k = load i64, %%ka
%s  %%ha = gep %%heads, %%h, 8
  %%p0 = load i64, %%ha
  br wh
wh:
  %%p = phi i64 [obody: %%p0, wbody: %%pn]
  %%acc2 = phi i64 [obody: %%acc, wbody: %%acc4]
  %%wc = cmp ne %%p, 0
  cbr %%wc, wbody, olatch
wbody:
  %%va = gep %%vals, %%p, 8
  %%v = load i64, %%va
  %%acc4 = add %%acc2, %%v
  %%na = gep %%next, %%p, 8
  %%pn = load i64, %%na
  br wh
olatch:
  %%i2 = add %%i, 1
  br oh
oexit:
  ret %%acc
}
`, hash)
}

// Exec allocates and fills the kernel's arrays in the machine's
// memory, runs the module's "kernel" function and returns the
// checksum (Kernel.Want is the reference value). The machine must
// have been built over a module from Build.
func (k *Kernel) Exec(m *interp.Machine) (int64, error) {
	p, lay := k.P, &k.lay

	alloc := func(vals []int64, t ir.Type) (int64, error) {
		base, err := m.Mem.Alloc(int64(len(vals)) * t.Size())
		if err != nil {
			return 0, err
		}
		if err := m.Mem.WriteSlice(base, t, vals); err != nil {
			return 0, err
		}
		return base, nil
	}

	if p.Shape == ShapeChase {
		var bases [4]int64
		for i, arr := range [][]int64{lay.keys, lay.heads, lay.next, lay.vals} {
			b, err := alloc(arr, ir.I64)
			if err != nil {
				return 0, err
			}
			bases[i] = b
		}
		ret, err := m.Run("kernel", bases[0], bases[1], bases[2], bases[3], lay.n)
		if err != nil {
			return 0, err
		}
		return Mix(0, ret), nil
	}

	var args []int64
	for lvl := 0; lvl < p.Indir; lvl++ {
		b, err := alloc(lay.idx[lvl], p.Idx)
		if err != nil {
			return 0, err
		}
		args = append(args, b)
	}
	dataBase, err := alloc(lay.data, p.Elem)
	if err != nil {
		return 0, err
	}
	args = append(args, dataBase)
	var outBase int64
	if p.Body == BodyStore {
		outBase, err = m.Mem.Alloc(lay.outN * p.Elem.Size())
		if err != nil {
			return 0, err
		}
		args = append(args, outBase)
	}
	args = append(args, lay.n)

	ret, err := m.Run("kernel", args...)
	if err != nil {
		return 0, err
	}
	c := Mix(0, ret)
	if p.Body == BodyStore {
		out, err := m.Mem.ReadSlice(outBase, p.Elem, lay.outN)
		if err != nil {
			return 0, err
		}
		for _, v := range out {
			c = Mix(c, v)
		}
	}
	return c, nil
}

// Family draws up to maxDraws random parameter vectors from the seed
// and returns the first n distinct kernels (distinct canonical
// parameter strings). It panics if the space is too small for n,
// which cannot happen for the sizes tests use.
func Family(seed uint64, n int) []*Kernel {
	r := NewRand(seed)
	seen := make(map[string]bool, n)
	out := make([]*Kernel, 0, n)
	for draws := 0; len(out) < n; draws++ {
		if draws > 50*n {
			panic(fmt.Sprintf("gen: could not draw %d distinct kernels", n))
		}
		p := Random(r)
		c := p.Canonical()
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, Generate(p))
	}
	return out
}
