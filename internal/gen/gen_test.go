package gen

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/prefetch"
	"repro/internal/uarch"
)

// familySize is the acceptance bar: the generator must produce at
// least this many distinct verifier-accepted kernels from one seed.
const familySize = 200

// TestFamilyDistinctAndVerified: a fixed seed yields familySize
// kernels with distinct canonical parameters, every one of which the
// verifier accepts, and the family covers real structural diversity
// (many distinct IR texts, every shape, both bodies).
func TestFamilyDistinctAndVerified(t *testing.T) {
	kernels := Family(1, familySize)
	if len(kernels) != familySize {
		t.Fatalf("Family(1, %d) returned %d kernels", familySize, len(kernels))
	}
	canon := map[string]bool{}
	texts := map[string]bool{}
	shapes := map[Shape]int{}
	bodies := map[Body]int{}
	for _, k := range kernels {
		c := k.P.Canonical()
		if canon[c] {
			t.Fatalf("duplicate canonical params: %s", c)
		}
		canon[c] = true
		mod := k.Build()
		if err := mod.Verify(); err != nil {
			t.Fatalf("kernel %s does not verify: %v", c, err)
		}
		texts[mod.String()] = true
		shapes[k.P.Shape]++
		bodies[k.P.Body]++
	}
	if len(texts) < familySize/4 {
		t.Errorf("only %d distinct IR texts across %d kernels", len(texts), familySize)
	}
	for s := ShapeFlat; s < numShapes; s++ {
		if shapes[s] == 0 {
			t.Errorf("family never drew shape %s", s)
		}
	}
	for b := BodyReduce; b < numBodies; b++ {
		if bodies[b] == 0 {
			t.Errorf("family never drew body %s", b)
		}
	}
}

// TestGenerateDeterministic: equal parameters produce identical
// modules, inputs and checksums, and the family draw is stable.
func TestGenerateDeterministic(t *testing.T) {
	p := Params{Seed: 42, Shape: ShapeFlat, Rows: 32, Indir: 2, Stride: 1, Hash: true, Extra: 1}
	a, b := Generate(p), Generate(p)
	if a.Want != b.Want {
		t.Errorf("checksums differ: %d vs %d", a.Want, b.Want)
	}
	if a.Build().String() != b.Build().String() {
		t.Error("modules differ for equal params")
	}
	f1, f2 := Family(7, 20), Family(7, 20)
	for i := range f1 {
		if f1[i].P.Canonical() != f2[i].P.Canonical() {
			t.Fatalf("family draw %d unstable: %s vs %s", i, f1[i].P.Canonical(), f2[i].P.Canonical())
		}
	}
}

// TestPlainRunMatchesReference: the interpreter reproduces the pure-Go
// model's checksum on untransformed kernels of every shape.
func TestPlainRunMatchesReference(t *testing.T) {
	for _, k := range Family(3, 24) {
		mach := interp.New(k.Build(), uarch.A53())
		mach.MaxInstrs = 1 << 24
		got, err := k.Exec(mach)
		if err != nil {
			t.Fatalf("%s: %v", k.P.Canonical(), err)
		}
		if got != k.Want {
			t.Errorf("%s: checksum %d, reference %d", k.P.Canonical(), got, k.Want)
		}
	}
}

// TestFamilyExercisesThePass guards generator drift: a healthy family
// must contain kernels the pass transforms (emitted prefetches),
// kernels it hoists (§4.6, via the chase shape), and kernels it
// rejects — otherwise the differential oracle is vacuous.
func TestFamilyExercisesThePass(t *testing.T) {
	var emitted, hoisted, rejected int
	for _, k := range Family(1, familySize) {
		mod := k.Build()
		res := prefetch.Run(mod, prefetch.Options{C: 64, Hoist: true})
		for _, r := range res {
			if len(r.Emitted) > 0 {
				emitted++
			}
			if len(r.Rejections) > 0 {
				rejected++
			}
			for _, e := range r.Emitted {
				if e.Hoisted {
					hoisted++
					break
				}
			}
		}
	}
	if emitted < familySize/3 {
		t.Errorf("pass emitted prefetches for only %d/%d kernels", emitted, familySize)
	}
	if hoisted == 0 {
		t.Error("no generated kernel exercised §4.6 hoisting")
	}
	if rejected == 0 {
		t.Error("no generated kernel exercised a rejection path")
	}
}

// TestParamsFromRawAlwaysValid: any raw byte vector names a kernel the
// verifier accepts — the contract the fuzz entry point relies on.
func TestParamsFromRawAlwaysValid(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 64; i++ {
		raw := make([]byte, r.Intn(16))
		for j := range raw {
			raw[j] = byte(r.Next())
		}
		p := ParamsFromRaw(r.Next(), raw)
		if err := Generate(p).Build().Verify(); err != nil {
			t.Fatalf("raw %v: %v", raw, err)
		}
	}
}

// TestOracleFamily is the acceptance check: the differential oracle
// passes on every kernel of the fixed-seed family — interpreter
// bit-identity with and without the pass at every variant, simulator
// invariants across machines x hardware models x jobs 1/8.
func TestOracleFamily(t *testing.T) {
	n := familySize
	if testing.Short() {
		n = 24
	}
	o := DefaultOracle()
	for _, k := range Family(1, n) {
		if f := o.Check(k); f != nil {
			t.Fatalf("oracle failure: %v", f)
		}
	}
}

// TestOracleCatchesPlantedClampBug proves the oracle is not vacuous:
// an off-by-one widening of the §4.2 clamp (injected through
// prefetch.Options.TestClampSlack) must be caught — the duplicated
// intermediate load reads one element past its array — and Minimize
// must shrink the reproduction to a near-minimal kernel.
func TestOracleCatchesPlantedClampBug(t *testing.T) {
	o := DefaultOracle()
	o.PassTweak = func(opts *prefetch.Options) { opts.TestClampSlack = 1 }

	// A mid-sized indirect kernel: the bug fires on any unit-stride
	// kernel with at least one index load.
	p := Params{Seed: 5, Shape: ShapeNested, Rows: 32, Cols: 16, Indir: 2, Stride: 1,
		Hash: true, Extra: 2, Body: BodyStore, Elem: 2, Idx: 2}.Normalize()
	fail := o.Check(Generate(p))
	if fail == nil {
		t.Fatal("planted clamp bug not caught")
	}
	if fail.Stage != "interp-diff" && fail.Stage != "sim-invariant" {
		t.Errorf("unexpected failure stage %q: %v", fail.Stage, fail)
	}
	if !strings.Contains(fail.Detail, "fault") {
		t.Errorf("failure should be an out-of-bounds fault, got: %v", fail)
	}

	min, minFail := o.Minimize(p)
	if minFail == nil {
		t.Fatal("minimized kernel no longer fails")
	}
	if min.Shape != ShapeFlat || min.Rows != 4 || min.Indir != 1 ||
		min.Hash || min.Body != BodyReduce || min.Seed != 1 {
		t.Errorf("minimization left a non-minimal kernel: %s", min.Canonical())
	}

	// The same kernel passes once the injection is removed — the
	// failure is the planted bug, not the kernel.
	clean := DefaultOracle()
	if f := clean.Check(Generate(min)); f != nil {
		t.Errorf("minimized kernel fails without the planted bug: %v", f)
	}
}

// TestMinimizeOnPassingParams: Minimize on a healthy kernel reports no
// failure and returns the input unchanged.
func TestMinimizeOnPassingParams(t *testing.T) {
	o := DefaultOracle()
	p := Params{Seed: 11, Shape: ShapeFlat, Rows: 16, Indir: 1, Stride: 1}.Normalize()
	min, fail := o.Minimize(p)
	if fail != nil {
		t.Fatalf("healthy kernel reported failing: %v", fail)
	}
	if min.Canonical() != p.Canonical() {
		t.Errorf("Minimize mutated a passing vector: %s -> %s", p.Canonical(), min.Canonical())
	}
}
