package gen

import (
	"crypto/sha256"
	"fmt"
	"sync/atomic"

	"repro/internal/hwpf"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Failure describes one differential-oracle violation: the kernel's
// parameters, the checking stage that tripped, the grid cell inside
// the stage, and what went wrong.
type Failure struct {
	// Params identifies the failing kernel.
	Params Params
	// Stage is the oracle phase: "verify", "reference", "pass-verify",
	// "interp-diff", "sim-invariant", "record" or "replay-diff".
	Stage string
	// Cell names the failing grid cell within the stage, e.g.
	// "c=8,depth=1,hoist=true" or "Haswell/imp".
	Cell string
	// Detail is the human-readable mismatch description.
	Detail string
}

// Error implements error.
func (f *Failure) Error() string {
	return fmt.Sprintf("gen: %s[%s]: %s (kernel %s)", f.Stage, f.Cell, f.Detail, f.Params.Canonical())
}

// Oracle checks generated kernels differentially. The zero value is
// not useful; start from DefaultOracle and override fields.
//
// Check runs three phases per kernel:
//
//  1. verify: ir.Verify accepts the generated module;
//  2. interp-diff: the interpreter result and final memory image of
//     the pass-transformed kernel are bit-identical to the plain
//     kernel — and to the pure-Go reference — at every configured
//     look-ahead x stagger-depth x hoist variant, plus the restricted
//     (icc), indirect-only and flat-offset pass modes;
//  3. sim-invariant: the full simulator, across every configured
//     machine x hardware-prefetcher model, reproduces the reference
//     checksum, satisfies the statistics invariants (prefetched-
//     unused <= prefetches issued, no hardware prefetches from the
//     "none" model, no TLB drops from same-page models), and is
//     bit-identical when the same grid is re-run on Jobs parallel
//     workers;
//  4. replay-diff: the auto-prefetched kernel is recorded once
//     (internal/trace) and the trace replayed on every sim cell — each
//     replayed record must be bit-identical to the cell's direct run,
//     which pins the record/replay split against generated kernels,
//     not just the curated workloads.
type Oracle struct {
	// Cs are the look-ahead constants of the interp-diff grid.
	Cs []int64
	// Depths are the MaxStaggerDepth values of the interp-diff grid.
	Depths []int
	// Hoists are the §4.6 settings of the interp-diff grid.
	Hoists []bool
	// Systems are the machine configurations of the sim phase.
	Systems []*sim.Config
	// HWPFs are the hardware-prefetcher models of the sim phase.
	HWPFs []string
	// Jobs is the worker count for the parallel sim re-run.
	Jobs int
	// MaxInstrs bounds each run, so a generator or pass bug that
	// produces a runaway loop surfaces as a failure, not a hang.
	MaxInstrs uint64
	// PassTweak, when non-nil, adjusts the pass options of every
	// transformed run — the fault-injection hook (e.g. setting
	// prefetch.Options.TestClampSlack) that lets tests prove the
	// oracle catches an unsafe pass.
	PassTweak func(*prefetch.Options)

	// Counts accumulates the per-phase check tallies across every
	// Check call, so a campaign can report how much work each oracle
	// phase actually did. Check mutates it without locking: campaigns
	// check kernels sequentially (the parallelism lives inside a
	// single kernel's sim phase).
	Counts Counts
}

// Counts tallies individual checks by oracle phase: verifier
// acceptances, interpreter differential runs, direct simulator cells,
// and trace-replay cells.
type Counts struct {
	Verify int
	Interp int
	Sim    int
	Replay int
}

// Total returns the number of individual checks across all phases.
func (c Counts) Total() int { return c.Verify + c.Interp + c.Sim + c.Replay }

// String renders the breakdown, e.g. "verify=12 interp=88 sim=120 replay=120".
func (c Counts) String() string {
	return fmt.Sprintf("verify=%d interp=%d sim=%d replay=%d", c.Verify, c.Interp, c.Sim, c.Replay)
}

// DefaultOracle returns the configuration the test suite and
// cmd/swpffuzz use: two look-aheads, stagger depths 0/1, hoisting
// off/on, one in-order and one out-of-order machine, every hardware
// model, and an 8-worker parallel re-run.
func DefaultOracle() *Oracle {
	return &Oracle{
		Cs:        []int64{8, 64},
		Depths:    []int{0, 1},
		Hoists:    []bool{false, true},
		Systems:   []*sim.Config{uarch.A53(), uarch.Haswell()},
		HWPFs:     hwpf.Names(),
		Jobs:      8,
		MaxInstrs: 1 << 24,
	}
}

// interpConfig is the machine used for the architectural (interp-diff)
// phase; results are timing-independent, so one small config keeps the
// phase cheap.
func interpConfig() *sim.Config { return uarch.A53() }

func (o *Oracle) fail(k *Kernel, stage, cell, format string, args ...any) *Failure {
	return &Failure{Params: k.P, Stage: stage, Cell: cell, Detail: fmt.Sprintf(format, args...)}
}

// runInterp builds a machine over mod, executes the kernel and returns
// the checksum plus the final memory image.
func (o *Oracle) runInterp(k *Kernel, mod *ir.Module, cfg *sim.Config) (int64, [sha256.Size]byte, error) {
	mach := interp.New(mod, cfg)
	mach.MaxInstrs = o.MaxInstrs
	sum, err := k.Exec(mach)
	if err != nil {
		return 0, [sha256.Size]byte{}, err
	}
	return sum, mach.Mem.Snapshot(), nil
}

// passVariant is one cell of the interp-diff grid.
type passVariant struct {
	name string
	opts prefetch.Options
}

// passVariants enumerates the transformed configurations the oracle
// diffs against the plain run.
func (o *Oracle) passVariants() []passVariant {
	var out []passVariant
	for _, c := range o.Cs {
		for _, d := range o.Depths {
			for _, h := range o.Hoists {
				out = append(out, passVariant{
					name: fmt.Sprintf("c=%d,depth=%d,hoist=%t", c, d, h),
					opts: prefetch.Options{C: c, MaxStaggerDepth: d, Hoist: h},
				})
			}
		}
	}
	out = append(out,
		passVariant{name: "icc", opts: prefetch.Options{C: 64, Mode: prefetch.ModeSimpleStrideIndirect}},
		passVariant{name: "indirect-only", opts: prefetch.Options{C: 64, NoStrideCompanion: true}},
		passVariant{name: "flat-offset", opts: prefetch.Options{C: 64, FlatOffset: true}},
	)
	return out
}

// Check runs every oracle phase on the kernel and returns the first
// violation, or nil.
func (o *Oracle) Check(k *Kernel) *Failure {
	// Phase 1: the generator's output must verify.
	plain := k.Build()
	if err := plain.Verify(); err != nil {
		return o.fail(k, "verify", "plain", "%v", err)
	}
	o.Counts.Verify++

	// Baseline: the untransformed kernel against the pure-Go model.
	cfg := interpConfig()
	plainSum, plainSnap, err := o.runInterp(k, plain, cfg)
	if err != nil {
		return o.fail(k, "reference", "plain", "plain run failed: %v", err)
	}
	o.Counts.Interp++
	if plainSum != k.Want {
		return o.fail(k, "reference", "plain", "plain checksum %d, reference model %d", plainSum, k.Want)
	}

	// Phase 2: interp bit-identity with the pass applied.
	for _, v := range o.passVariants() {
		opts := v.opts
		if o.PassTweak != nil {
			o.PassTweak(&opts)
		}
		mod := k.Build()
		prefetch.Run(mod, opts)
		if err := mod.Verify(); err != nil {
			return o.fail(k, "pass-verify", v.name, "pass produced invalid IR: %v", err)
		}
		o.Counts.Verify++
		sum, snap, err := o.runInterp(k, mod, cfg)
		if err != nil {
			return o.fail(k, "interp-diff", v.name, "transformed run failed: %v", err)
		}
		o.Counts.Interp++
		if sum != plainSum {
			return o.fail(k, "interp-diff", v.name, "checksum %d, plain %d", sum, plainSum)
		}
		if snap != plainSnap {
			return o.fail(k, "interp-diff", v.name, "final memory image differs from plain run")
		}
	}

	// Phase 3: simulator invariants across machines x hardware models,
	// serial, then re-run on Jobs workers — the two passes must be
	// bit-identical (which also pins run-to-run determinism).
	cells := o.simCells()
	serial := make([]simRecord, len(cells))
	for i, c := range cells {
		serial[i] = o.runSim(k, c)
	}
	o.Counts.Sim += len(cells)
	for i, c := range cells {
		if f := o.checkSimInvariants(k, c, serial[i]); f != nil {
			return f
		}
	}
	parallel := make([]simRecord, len(cells))
	var next atomic.Int64
	done := make(chan struct{})
	workers := o.Jobs
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				parallel[i] = o.runSim(k, cells[i])
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	o.Counts.Sim += len(cells)
	for i, c := range cells {
		if serial[i] != parallel[i] {
			return o.fail(k, "sim-invariant", c.name,
				"jobs=1 vs jobs=%d diverge: %+v vs %+v", workers, serial[i], parallel[i])
		}
	}

	// Phase 4: replay equivalence. Record the auto-prefetched kernel
	// once, then retime the trace on every cell — each replayed record
	// must be bit-identical to the cell's direct serial run.
	im, rf := o.recordImage(k)
	if rf != nil {
		return rf
	}
	o.Counts.Interp++ // the recording run
	for i, c := range cells {
		if rec := o.replaySim(im, c); rec != serial[i] {
			return o.fail(k, "replay-diff", c.name,
				"replay diverges from direct run: %+v vs %+v", rec, serial[i])
		}
	}
	o.Counts.Replay += len(cells)
	return nil
}

// recordImage executes the auto-prefetched kernel once with the trace
// recorder attached (the recording configuration is irrelevant —
// traces are machine-independent) and predecodes the trace for
// replay.
func (o *Oracle) recordImage(k *Kernel) (*interp.Image, *Failure) {
	opts := prefetch.Options{C: 64}
	if o.PassTweak != nil {
		o.PassTweak(&opts)
	}
	mod := k.Build()
	prefetch.Run(mod, opts)
	if err := mod.Verify(); err != nil {
		return nil, o.fail(k, "record", "auto", "pass broke module: %v", err)
	}
	mach := interp.New(mod, interpConfig())
	mach.MaxInstrs = o.MaxInstrs
	tw := trace.NewWriter()
	mach.RecordTo(tw)
	sum, err := k.Exec(mach)
	if err != nil {
		return nil, o.fail(k, "record", "auto", "recording run failed: %v", err)
	}
	st := mach.Stats()
	oc := make([]uint64, len(st.OpCounts))
	copy(oc, st.OpCounts[:])
	t := tw.Close(
		trace.Meta{Workload: k.Name, Variant: "auto"},
		trace.Summary{
			Executed: st.Executed, OpCounts: oc,
			Loads: st.Loads, Stores: st.Stores, Prefetches: st.Prefetches,
			Checksum: sum,
		},
	)
	im, err := interp.NewImage(t)
	if err != nil {
		return nil, o.fail(k, "record", "auto", "trace does not decode: %v", err)
	}
	return im, nil
}

// replaySim retimes the recorded image on the cell's machine and
// snapshots the same statistics runSim does, so the two records are
// directly comparable.
func (o *Oracle) replaySim(im *interp.Image, c simCell) simRecord {
	machCore := sim.NewCore(c.cfg)
	st, err := im.Replay(machCore)
	if err != nil {
		return simRecord{Err: err.Error()}
	}
	hier := machCore.Hierarchy()
	l1 := hier.Caches()[0]
	return simRecord{
		Sum:          im.Trace().Summary.Checksum,
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		L1Hits:       l1.Hits,
		L1Misses:     l1.Misses,
		SWPrefetches: hier.SWPrefetches,
		HWPrefetches: hier.HWPrefetches,
		HWDropped:    hier.HWPrefetchDropped,
		UnusedL1:     l1.PrefetchedUnused,
		TLBWalks:     hier.TLBStats().Walks,
		OpPrefetches: st.Prefetches,
	}
}

// simCell is one machine x hardware-model configuration.
type simCell struct {
	name  string
	cfg   *sim.Config
	model string
}

func (o *Oracle) simCells() []simCell {
	var out []simCell
	for _, cfg := range o.Systems {
		for _, model := range o.HWPFs {
			out = append(out, simCell{
				name:  cfg.Name + "/" + model,
				cfg:   uarch.WithHWPrefetcher(cfg, model),
				model: model,
			})
		}
	}
	return out
}

// simRecord is the comparable outcome of one simulated cell. It must
// stay a plain comparable struct: the jobs-determinism check compares
// records with ==.
type simRecord struct {
	Sum          int64
	Err          string
	Cycles       float64
	Instructions uint64
	L1Hits       uint64
	L1Misses     uint64
	SWPrefetches uint64
	HWPrefetches uint64
	HWDropped    uint64
	UnusedL1     uint64
	TLBWalks     uint64
	OpPrefetches uint64
}

// runSim executes the auto-prefetched kernel (the paper's default
// options) on the cell's machine and snapshots every statistic the
// invariants inspect.
func (o *Oracle) runSim(k *Kernel, c simCell) simRecord {
	opts := prefetch.Options{C: 64}
	if o.PassTweak != nil {
		o.PassTweak(&opts)
	}
	mod := k.Build()
	prefetch.Run(mod, opts)
	if err := mod.Verify(); err != nil {
		return simRecord{Err: fmt.Sprintf("pass broke module: %v", err)}
	}
	mach := interp.New(mod, c.cfg)
	mach.MaxInstrs = o.MaxInstrs
	sum, err := k.Exec(mach)
	if err != nil {
		return simRecord{Err: err.Error()}
	}
	st := mach.Stats()
	hier := mach.Core.Hierarchy()
	l1 := hier.Caches()[0]
	return simRecord{
		Sum:          sum,
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		L1Hits:       l1.Hits,
		L1Misses:     l1.Misses,
		SWPrefetches: hier.SWPrefetches,
		HWPrefetches: hier.HWPrefetches,
		HWDropped:    hier.HWPrefetchDropped,
		UnusedL1:     l1.PrefetchedUnused,
		TLBWalks:     hier.TLBStats().Walks,
		OpPrefetches: st.Prefetches,
	}
}

// samePageModels are the hardware designs that never cross a 4KiB
// boundary, so the drop-on-TLB-miss rule must never fire for them.
// GHB and IMP are deliberately absent: both are page-crossing designs
// (GHB correlates per line across pages; IMP's indirect targets are
// arbitrary data-dependent addresses), and drops are their documented
// counterweight (docs/hwpf.md).
var samePageModels = map[string]bool{
	hwpf.NameNone:     true,
	hwpf.NameStride:   true,
	hwpf.NameNextLine: true,
}

func (o *Oracle) checkSimInvariants(k *Kernel, c simCell, r simRecord) *Failure {
	if r.Err != "" {
		return o.fail(k, "sim-invariant", c.name, "run failed: %s", r.Err)
	}
	if r.Sum != k.Want {
		return o.fail(k, "sim-invariant", c.name, "checksum %d, reference %d", r.Sum, k.Want)
	}
	if r.Cycles <= 0 || r.Instructions == 0 {
		return o.fail(k, "sim-invariant", c.name, "degenerate timing: %+v", r)
	}
	if c.model == hwpf.NameNone && r.HWPrefetches != 0 {
		return o.fail(k, "sim-invariant", c.name, "%d hardware prefetches from the none model", r.HWPrefetches)
	}
	if samePageModels[c.model] && r.HWDropped != 0 {
		return o.fail(k, "sim-invariant", c.name,
			"%d TLB-dropped prefetches from same-page model %s", r.HWDropped, c.model)
	}
	if r.SWPrefetches != r.OpPrefetches {
		return o.fail(k, "sim-invariant", c.name,
			"hierarchy saw %d software prefetches, interpreter executed %d", r.SWPrefetches, r.OpPrefetches)
	}
	if r.UnusedL1 > r.SWPrefetches+r.HWPrefetches {
		return o.fail(k, "sim-invariant", c.name,
			"%d unused prefetched lines exceed %d prefetches issued",
			r.UnusedL1, r.SWPrefetches+r.HWPrefetches)
	}
	return nil
}
