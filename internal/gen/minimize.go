package gen

import "repro/internal/ir"

// Minimize shrinks a failing parameter vector: starting from p, it
// repeatedly applies the first single-step reduction (simpler shape,
// one less indirection level, half the trip count, ...) under which
// o.Check still reports a failure, until no step keeps failing. It
// returns the minimized parameters and the failure observed on them,
// or (p, nil) when p does not fail in the first place.
//
// The failure on the shrunk kernel need not be the same failure as on
// the original — classic fuzz-minimization semantics: any surviving
// violation is a smaller reproduction of a real bug.
func (o *Oracle) Minimize(p Params) (Params, *Failure) {
	p = p.Normalize()
	fail := o.Check(Generate(p))
	if fail == nil {
		return p, nil
	}
	for {
		shrunk := false
		for _, cand := range shrinkSteps(p) {
			if cand.Canonical() == p.Canonical() {
				continue // the step was a no-op for this vector
			}
			if f := o.Check(Generate(cand)); f != nil {
				p, fail = cand, f
				shrunk = true
				break // restart the step list from the smaller vector
			}
		}
		if !shrunk {
			return p, fail
		}
	}
}

// shrinkSteps returns candidate single-step reductions of p in
// preference order: structural simplifications first (they delete the
// most IR), then size halvings, then flag clearing. Every step is
// monotone — it never grows any field — so Minimize terminates.
func shrinkSteps(p Params) []Params {
	step := func(mut func(*Params)) Params {
		q := p
		mut(&q)
		return q.Normalize()
	}
	return []Params{
		step(func(q *Params) { q.Shape = ShapeFlat }),
		step(func(q *Params) { q.Indir-- }),
		step(func(q *Params) { q.Rows /= 2 }),
		step(func(q *Params) { q.Cols /= 2 }),
		step(func(q *Params) { q.Stride = 1 }),
		step(func(q *Params) { q.Extra-- }),
		step(func(q *Params) { q.Hash = false }),
		step(func(q *Params) { q.Body = BodyReduce }),
		step(func(q *Params) { q.Elem = ir.I64 }),
		step(func(q *Params) { q.Idx = ir.I64 }),
		step(func(q *Params) { q.Seed = 1 }),
	}
}
