// Package fleet is the shared job queue behind the distributed sweep
// fabric: it decomposes submitted request lists into *cells* — the
// content-addressed unit of simulation work — dedupes them fleet-wide,
// and hands them out to workers under expiring leases.
//
// The queue is the coordinator's data structure; cmd/swpfd wraps it in
// HTTP (POST /fleet/lease, /fleet/complete, /fleet/heartbeat) for
// remote worker processes and runs in-process worker loops against it
// directly. The properties the fabric rests on:
//
//   - Idempotent dedupe. A cell's identity is a canonical hash of
//     (workload name+params, full machine config, variant, options) —
//     the same coordinates internal/store keys results by, and like
//     store keys it excludes the execution mode (direct and replay
//     results are byte-identical). Overlapping grids from concurrent
//     clients attach to the same live cell, so every distinct cell is
//     simulated exactly once fleet-wide; each submission still gets its
//     own outcome slot, labelled with its own requested exec mode.
//   - Leases, not assignments. Workers pull batches of cells under a
//     lease with a TTL; a worker that dies simply stops heartbeating
//     and its cells return to the queue when the lease expires — no
//     cell is ever lost. Duplicate completions (a slow worker racing a
//     re-lease) are dropped idempotently, so no cell's result is ever
//     accepted, or persisted, twice.
//   - Bounded backpressure. Live cells (pending + leased) are capped;
//     a submission that would exceed the cap is rejected atomically
//     with ErrQueueFull before anything is enqueued — cmd/swpfd maps
//     this to 429 + Retry-After.
//   - Priorities. Cells inherit their submission's priority; higher
//     priorities lease first, FIFO within a priority. A cell shared by
//     several submissions keeps the highest priority it has been asked
//     for at.
//   - Replay grouping. Cells requested with exec=replay lease as whole
//     (workload, variant, options) groups, so the worker that records
//     the group's trace replays every machine × hwpf cell of it —
//     preserving the one-interpretation-per-group amortization of
//     internal/trace across the fleet.
//
// Expiry is lazy: expired leases are reaped on the next Submit, Lease,
// Complete, Heartbeat or Stats call rather than by a background timer,
// which keeps the queue deterministic under test clocks.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// KeyOf returns the canonical cell identity of a request: a SHA-256
// hex digest over workload name+params, the full machine
// configuration, the variant and the options. The execution mode is
// deliberately excluded — direct and replay produce byte-identical
// results, so they are the same cell.
func KeyOf(r sweep.Request) string {
	doc := struct {
		Workload string
		Params   string
		System   *sim.Config
		Variant  string
		Options  core.Options
	}{r.Workload.Name, r.Workload.Params, r.System, string(r.Variant), r.Options}
	b, err := json.Marshal(doc)
	if err != nil {
		// Every field is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("fleet: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CellSpec is the wire form of one cell, self-contained enough for a
// worker process to reconstruct the request: the workload is named (a
// worker rebuilds it from its own pools, cross-checked against
// Params), the machine configuration travels in full.
type CellSpec struct {
	Quality  string          `json:"quality"`
	Workload string          `json:"workload"`
	Params   string          `json:"params"`
	System   json.RawMessage `json:"system"`
	Variant  string          `json:"variant"`
	Options  core.Options    `json:"options"`
	Exec     string          `json:"exec,omitempty"`
}

// SpecFor builds the wire form of a request. quality names the
// workload pool the submitting spec drew from, so workers resolve the
// same workload by name.
func SpecFor(quality string, r sweep.Request) (CellSpec, error) {
	sys, err := json.Marshal(r.System)
	if err != nil {
		return CellSpec{}, fmt.Errorf("fleet: marshal system: %w", err)
	}
	return CellSpec{
		Quality:  quality,
		Workload: r.Workload.Name,
		Params:   r.Workload.Params,
		System:   sys,
		Variant:  string(r.Variant),
		Options:  r.Options,
		Exec:     string(r.Exec),
	}, nil
}

// WorkloadResolver resolves a named workload out of a quality pool; a
// worker process supplies one backed by its own memoized pools.
type WorkloadResolver func(quality, name string) (*sweep.Request, error)

// Request reconstructs the executable request from the wire form. The
// resolver returns a request template whose Workload is resolved; the
// spec fills in system, variant, options and exec. The resolved
// workload's Params must match the spec's — a mismatch means the two
// processes disagree about what the name denotes, and running it would
// silently compute the wrong cell.
func (c CellSpec) Request(resolve WorkloadResolver) (sweep.Request, error) {
	tmpl, err := resolve(c.Quality, c.Workload)
	if err != nil {
		return sweep.Request{}, err
	}
	if tmpl.Workload.Params != c.Params {
		return sweep.Request{}, fmt.Errorf("fleet: workload %s/%s params mismatch: coordinator %q, worker %q",
			c.Quality, c.Workload, c.Params, tmpl.Workload.Params)
	}
	var cfg sim.Config
	if err := json.Unmarshal(c.System, &cfg); err != nil {
		return sweep.Request{}, fmt.Errorf("fleet: unmarshal system: %w", err)
	}
	return sweep.Request{
		Workload: tmpl.Workload,
		System:   &cfg,
		Variant:  core.Variant(c.Variant),
		Options:  c.Options,
		Exec:     core.ExecMode(c.Exec),
	}, nil
}

// ResultData is the serializable snapshot of a core.Result carried in
// completion reports (the Pass report is omitted, like in
// internal/store: it holds pointers into live IR and no emitter reads
// it).
type ResultData struct {
	Checksum int64
	Cycles   float64
	Stats    interp.Stats

	L1Hits, L1Misses   uint64
	DRAMAccesses       uint64
	SWPrefetches       uint64
	HWPrefetches       uint64
	HWPrefetchDropped  uint64
	TLBWalks           uint64
	LoadStallCycles    float64
	PrefetchLateCycles float64
	PrefetchedUnusedL1 uint64
}

// ResultDataOf snapshots a result for the wire.
func ResultDataOf(res *core.Result) ResultData {
	return ResultData{
		Checksum: res.Checksum,
		Cycles:   res.Cycles,
		Stats:    res.Stats,

		L1Hits:             res.L1Hits,
		L1Misses:           res.L1Misses,
		DRAMAccesses:       res.DRAMAccesses,
		SWPrefetches:       res.SWPrefetches,
		HWPrefetches:       res.HWPrefetches,
		HWPrefetchDropped:  res.HWPrefetchDropped,
		TLBWalks:           res.TLBWalks,
		LoadStallCycles:    res.LoadStallCycles,
		PrefetchLateCycles: res.PrefetchLateCycles,
		PrefetchedUnusedL1: res.PrefetchedUnusedL1,
	}
}

// Result rebuilds a core.Result for the given request's coordinates.
func (d ResultData) Result(r sweep.Request) *core.Result {
	return &core.Result{
		Workload: r.Workload.Name,
		System:   r.System.Name,
		Variant:  r.Variant,
		Checksum: d.Checksum,
		Cycles:   d.Cycles,
		Stats:    d.Stats,

		L1Hits:             d.L1Hits,
		L1Misses:           d.L1Misses,
		DRAMAccesses:       d.DRAMAccesses,
		SWPrefetches:       d.SWPrefetches,
		HWPrefetches:       d.HWPrefetches,
		HWPrefetchDropped:  d.HWPrefetchDropped,
		TLBWalks:           d.TLBWalks,
		LoadStallCycles:    d.LoadStallCycles,
		PrefetchLateCycles: d.PrefetchLateCycles,
		PrefetchedUnusedL1: d.PrefetchedUnusedL1,
	}
}

// LeaseCell is one cell inside a lease: the key the worker must echo
// back, plus the wire spec.
type LeaseCell struct {
	Key  string   `json:"key"`
	Spec CellSpec `json:"spec"`
}

// Lease is a batch of cells handed to one worker. The worker must
// Complete (or keep Heartbeating) before TTL elapses, or the cells
// return to the queue.
type Lease struct {
	ID    string      `json:"id"`
	TTLMS int64       `json:"ttl_ms"`
	Cells []LeaseCell `json:"cells"`

	// reqs holds the live requests for in-process workers, indexed
	// like Cells; remote workers reconstruct them from the specs.
	reqs []sweep.Request
}

// Requests returns the lease's cells as live requests — the in-process
// fast path that skips the wire round trip.
func (l *Lease) Requests() []sweep.Request { return l.reqs }

// TTL returns the lease's time-to-live.
func (l *Lease) TTL() time.Duration { return time.Duration(l.TTLMS) * time.Millisecond }

// CellResult is one cell's outcome in a completion report.
type CellResult struct {
	Key    string      `json:"key"`
	Err    string      `json:"err,omitempty"`
	Result *ResultData `json:"result,omitempty"`
}

// ErrQueueFull is returned by Submit when admitting the submission's
// new cells would exceed the live-cell bound. Nothing was enqueued —
// admission is all-or-nothing — so the client can simply retry after
// RetryAfter.
type ErrQueueFull struct {
	Live, New, Limit int
	RetryAfter       time.Duration
}

func (e ErrQueueFull) Error() string {
	return fmt.Sprintf("queue full: %d cells live, %d new would exceed the %d-cell limit (retry after %s)",
		e.Live, e.New, e.Limit, e.RetryAfter)
}

// Progress is one progress notification on a ticket subscription.
type Progress struct {
	Done, Total int
	Finished    bool
}

// Ticket tracks one submission through the queue: per-request outcome
// slots, a progress counter, and subscriber channels for streaming.
type Ticket struct {
	q     *Queue
	total int

	mu       sync.Mutex
	outs     []sweep.Outcome
	done     int
	finished bool
	subs     map[chan Progress]bool

	doneCh chan struct{}
}

// Total returns the submission's cell count.
func (t *Ticket) Total() int { return t.total }

// Progress returns completed and total counts.
func (t *Ticket) Progress() (done, total int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.total
}

// Done is closed when every cell of the submission has an outcome.
func (t *Ticket) Done() <-chan struct{} { return t.doneCh }

// ResultSet returns the outcomes once the ticket is finished; ok is
// false while cells are still outstanding.
func (t *Ticket) ResultSet() (*sweep.ResultSet, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		return nil, false
	}
	return &sweep.ResultSet{Outcomes: t.outs}, true
}

// Subscribe registers a progress listener. The channel is buffered and
// intermediate events may be coalesced (counts are monotonic), but the
// final Finished event is always delivered. The returned cancel
// function unsubscribes and closes the channel; it is idempotent.
func (t *Ticket) Subscribe() (<-chan Progress, func()) {
	ch := make(chan Progress, 16)
	t.mu.Lock()
	if t.subs == nil {
		t.subs = make(map[chan Progress]bool)
	}
	t.subs[ch] = true
	// Seed with the current state so late subscribers see something
	// immediately — including the terminal event of a finished ticket.
	t.pushLocked(ch, Progress{Done: t.done, Total: t.total, Finished: t.finished})
	t.mu.Unlock()
	return ch, func() {
		t.mu.Lock()
		if t.subs[ch] {
			delete(t.subs, ch)
			close(ch)
		}
		t.mu.Unlock()
	}
}

// pushLocked delivers without blocking: if the buffer is full the
// oldest event is dropped — later events carry newer counts.
func (t *Ticket) pushLocked(ch chan Progress, p Progress) {
	for {
		select {
		case ch <- p:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}

// deliver fills one outcome slot and advances progress.
func (t *Ticket) deliver(idx int, res *core.Result, err error) {
	t.mu.Lock()
	t.outs[idx].Result = res
	t.outs[idx].Err = err
	t.done++
	p := Progress{Done: t.done, Total: t.total, Finished: t.done == t.total}
	for ch := range t.subs {
		t.pushLocked(ch, p)
	}
	fin := p.Finished && !t.finished
	if fin {
		t.finished = true
	}
	t.mu.Unlock()
	if fin {
		close(t.doneCh)
	}
}

// cellState tracks where a live cell is.
type cellState int

const (
	cellPending cellState = iota
	cellLeased
)

// replayGroup identifies the functional coordinates a replay trace is
// shared across — machine and hwpf absent, exactly like the sweep
// engine's grouping.
type replayGroup struct {
	name, params string
	variant      core.Variant
	options      core.Options
}

// waiter is one submission slot waiting on a cell.
type waiter struct {
	t   *Ticket
	idx int
}

// cell is one live unit of simulation work.
type cell struct {
	key      string
	req      sweep.Request
	spec     CellSpec
	prio     int
	seq      int64
	group    *replayGroup // non-nil when leased as a replay group
	state    cellState
	leaseID  string
	leasedAt time.Time // last time the cell was handed to a worker
	waiters  []waiter
}

type lease struct {
	id       string
	worker   string
	cells    []*cell
	deadline time.Time
}

// Options configures a Queue.
type Options struct {
	// Cache, when non-nil, answers cells at submission time and
	// persists accepted completions — exactly once per distinct cell.
	Cache sweep.Cache
	// MaxPending bounds live cells (pending + leased); 0 selects
	// DefaultMaxPending.
	MaxPending int
	// LeaseTTL is how long a lease lives between heartbeats; 0 selects
	// DefaultLeaseTTL.
	LeaseTTL time.Duration
	// OnPutError receives cache-persistence failures (best-effort,
	// like sweep.Runner's).
	OnPutError func(sweep.Request, error)
	// Now is the clock; nil selects time.Now. Tests inject one to make
	// lease expiry deterministic.
	Now func() time.Time
	// Registry receives the queue's metrics: every Stats field as a
	// collector (one Stats() call per scrape, so all queue series come
	// from a single acquisition of the queue lock and are mutually
	// consistent — and identical to what GET /fleet reports), plus the
	// cell execution-latency histogram. Nil keeps the instruments on a
	// private, unscraped registry so the queue code stays branch-free.
	Registry *obs.Registry
}

// Defaults.
const (
	DefaultMaxPending = 65536
	DefaultLeaseTTL   = 2 * time.Minute
)

// Stats is a snapshot of queue state and lifetime counters.
type Stats struct {
	// Live state.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Leases  int `json:"leases"`
	// Lifetime counters.
	Submissions int64 `json:"submissions"`
	CellsSeen   int64 `json:"cells_seen"`   // outcome slots ever submitted
	CacheHits   int64 `json:"cache_hits"`   // slots answered by the cache at submit
	DedupHits   int64 `json:"dedup_hits"`   // slots attached to an already-live cell
	Completed   int64 `json:"completed"`    // distinct cells accepted from workers
	Failed      int64 `json:"failed"`       // distinct cells completed with an error
	Requeued    int64 `json:"requeued"`     // cells returned by expired leases
	DupDropped  int64 `json:"dup_dropped"`  // duplicate/late completions dropped
	MaxPending  int   `json:"max_pending"`  // the live-cell bound
	LeaseTTLMS  int64 `json:"lease_ttl_ms"` // current lease TTL
	// Workers ever seen, most recent contact first.
	Workers []WorkerInfo `json:"workers,omitempty"`
}

// WorkerInfo is one worker's liveness entry.
type WorkerInfo struct {
	Name     string    `json:"name"`
	LastSeen time.Time `json:"last_seen"`
}

// Queue is the shared cell queue. All methods are safe for concurrent
// use.
type Queue struct {
	cache      sweep.Cache
	maxPending int
	ttl        time.Duration
	onPutError func(sweep.Request, error)
	now        func() time.Time

	mu       sync.Mutex
	cells    map[string]*cell
	pending  []*cell // sorted: priority desc, then seq asc
	leases   map[string]*lease
	seq      int64
	leaseSeq int64
	workers  map[string]time.Time
	wake     chan struct{}

	submissions, cellsSeen, cacheHits, dedupHits int64
	completed, failed, requeued, dupDropped      int64

	// cellSeconds observes lease→accepted-completion latency per cell.
	// Always non-nil (a private registry backs it when Options.Registry
	// is nil), so the accounting sites stay branch-free.
	cellSeconds *obs.Histogram
}

// New builds a queue.
func New(opt Options) *Queue {
	if opt.MaxPending <= 0 {
		opt.MaxPending = DefaultMaxPending
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = DefaultLeaseTTL
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	q := &Queue{
		cache:      opt.Cache,
		maxPending: opt.MaxPending,
		ttl:        opt.LeaseTTL,
		onPutError: opt.OnPutError,
		now:        opt.Now,
		cells:      make(map[string]*cell),
		leases:     make(map[string]*lease),
		workers:    make(map[string]time.Time),
		wake:       make(chan struct{}),
	}
	q.cellSeconds = opt.Registry.Histogram("swpf_fleet_cell_seconds",
		"Cell execution latency from lease to accepted completion, in seconds.", nil)
	opt.Registry.Collect(q.collect)
	return q
}

// collect emits every Stats field as metric samples. The single
// Stats() call snapshots under one acquisition of the queue lock, so
// all queue series within a scrape are mutually consistent — and
// byte-for-byte the numbers GET /fleet serves, which renders from the
// same snapshot function.
func (q *Queue) collect(emit func(obs.Sample)) {
	s := q.Stats()
	gauge := func(name, help string, v int) {
		emit(obs.Sample{Name: name, Help: help, Kind: obs.KindGauge, Value: float64(v)})
	}
	counter := func(name, help string, v int64) {
		emit(obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Value: float64(v)})
	}
	gauge("swpf_queue_pending", "Cells waiting to be leased.", s.Pending)
	gauge("swpf_queue_leased", "Cells currently out under a lease.", s.Leased)
	gauge("swpf_queue_leases", "Live leases.", s.Leases)
	gauge("swpf_queue_workers", "Workers ever seen by the coordinator.", len(s.Workers))
	gauge("swpf_queue_max_pending", "The live-cell admission bound.", s.MaxPending)
	counter("swpf_queue_submissions_total", "Submissions accepted.", s.Submissions)
	counter("swpf_queue_cells_total", "Outcome slots ever submitted.", s.CellsSeen)
	counter("swpf_queue_cache_hits_total", "Slots answered by the result store at submit.", s.CacheHits)
	counter("swpf_queue_dedup_hits_total", "Slots attached to an already-live cell.", s.DedupHits)
	counter("swpf_queue_completed_total", "Distinct cells accepted from workers.", s.Completed)
	counter("swpf_queue_failed_total", "Distinct cells completed with an error.", s.Failed)
	counter("swpf_queue_requeued_total", "Cells returned to the queue by expired leases.", s.Requeued)
	counter("swpf_queue_dup_dropped_total", "Duplicate or late completions dropped.", s.DupDropped)
}

// LeaseTTL returns the queue's lease time-to-live.
func (q *Queue) LeaseTTL() time.Duration { return q.ttl }

// Submit enqueues a request list at the given priority. specs must
// parallel reqs (SpecFor per request). Cache hits are answered
// immediately, duplicates of live cells attach as waiters, and only
// genuinely new cells enter the queue — atomically: if they would
// exceed the live-cell bound, ErrQueueFull is returned and nothing is
// enqueued.
func (q *Queue) Submit(reqs []sweep.Request, specs []CellSpec, prio int) (*Ticket, error) {
	if len(specs) != len(reqs) {
		return nil, fmt.Errorf("fleet: %d specs for %d requests", len(specs), len(reqs))
	}
	t := &Ticket{q: q, total: len(reqs), outs: make([]sweep.Outcome, len(reqs)), doneCh: make(chan struct{})}
	for i, r := range reqs {
		t.outs[i].Request = r
	}

	// Probe the cache outside the queue lock — it is disk I/O.
	hits := make([]*core.Result, len(reqs))
	nHits := 0
	if q.cache != nil {
		for i, r := range reqs {
			if res, ok := q.cache.Get(r); ok {
				hits[i] = res
				nHits++
			}
		}
	}

	q.mu.Lock()
	q.expireLocked()
	q.submissions++
	q.cellsSeen += int64(len(reqs))
	q.cacheHits += int64(nHits)

	// Admission control: count the genuinely new cells first.
	newKeys := make(map[string]bool)
	keys := make([]string, len(reqs))
	for i, r := range reqs {
		if hits[i] != nil {
			continue
		}
		keys[i] = KeyOf(r)
		if q.cells[keys[i]] == nil {
			newKeys[keys[i]] = true
		}
	}
	if live := len(q.cells); live+len(newKeys) > q.maxPending {
		q.mu.Unlock()
		return nil, ErrQueueFull{Live: live, New: len(newKeys), Limit: q.maxPending, RetryAfter: time.Second}
	}

	enqueued := false
	for i, r := range reqs {
		if hits[i] != nil {
			continue
		}
		c := q.cells[keys[i]]
		if c != nil {
			q.dedupHits++
			if prio > c.prio && c.state == cellPending {
				q.removePendingLocked(c)
				c.prio = prio
				q.insertPendingLocked(c)
			} else if prio > c.prio {
				c.prio = prio
			}
		} else {
			// Re-probe the cache under the lock: the cell may have
			// completed — and persisted, since Complete holds this lock
			// across its Puts — after the unlocked probe above, and
			// re-enqueuing it would simulate and persist the same cell a
			// second time.
			if q.cache != nil {
				if res, ok := q.cache.Get(r); ok {
					hits[i] = res
					q.cacheHits++
					continue
				}
			}
			q.seq++
			c = &cell{key: keys[i], req: r, spec: specs[i], prio: prio, seq: q.seq}
			if r.ExecMode() == core.ExecReplay {
				c.group = &replayGroup{r.Workload.Name, r.Workload.Params, r.Variant, r.Options}
			}
			q.cells[c.key] = c
			q.insertPendingLocked(c)
			enqueued = true
		}
		c.waiters = append(c.waiters, waiter{t, i})
	}
	if enqueued {
		q.notifyLocked()
	}
	q.mu.Unlock()

	// Deliver cache hits after releasing the queue lock; deliver takes
	// only the ticket lock.
	for i, res := range hits {
		if res != nil {
			t.deliver(i, res, nil)
		}
	}
	// An all-hit (or empty) submission finishes here without ever
	// waking a worker.
	if len(reqs) == 0 {
		t.mu.Lock()
		t.finished = true
		t.mu.Unlock()
		close(t.doneCh)
	}
	return t, nil
}

// insertPendingLocked inserts keeping the (priority desc, seq asc)
// order.
func (q *Queue) insertPendingLocked(c *cell) {
	i := sort.Search(len(q.pending), func(i int) bool {
		p := q.pending[i]
		return p.prio < c.prio || (p.prio == c.prio && p.seq > c.seq)
	})
	q.pending = append(q.pending, nil)
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = c
	c.state = cellPending
}

func (q *Queue) removePendingLocked(c *cell) {
	for i, p := range q.pending {
		if p == c {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}

// notifyLocked wakes every WaitWork sleeper.
func (q *Queue) notifyLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// WaitWork blocks until new work may be available or the timeout
// elapses — the idle loop of an in-process worker.
func (q *Queue) WaitWork(timeout time.Duration) {
	q.mu.Lock()
	if len(q.pending) > 0 {
		q.mu.Unlock()
		return
	}
	ch := q.wake
	q.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
	case <-timer.C:
	}
}

// Lease hands the worker a batch of up to max pending cells (highest
// priority first), or nil when nothing is pending. A replay cell pulls
// its entire pending group into the lease — possibly exceeding max —
// so one worker records the group's trace and replays every cell of
// it.
func (q *Queue) Lease(worker string, max int) *Lease {
	if max <= 0 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	q.workers[worker] = q.now()
	if len(q.pending) == 0 {
		return nil
	}
	q.leaseSeq++
	now := q.now()
	l := &lease{id: "lease-" + strconv.FormatInt(q.leaseSeq, 10), worker: worker, deadline: now.Add(q.ttl)}
	take := func(c *cell) {
		c.state = cellLeased
		c.leaseID = l.id
		c.leasedAt = now
		l.cells = append(l.cells, c)
	}
	groups := make(map[replayGroup]bool)
	for _, c := range q.pending {
		if len(l.cells) >= max && (c.group == nil || !groups[*c.group]) {
			break
		}
		if c.group != nil {
			if !groups[*c.group] && len(l.cells) > 0 {
				// A fresh replay group starts its own lease; mixing it
				// into a half-full direct batch would split groups
				// across leases on the next call.
				break
			}
			groups[*c.group] = true
		}
		take(c)
	}
	// Pull the rest of any started replay group, wherever it sits in
	// the pending order.
	if len(groups) > 0 {
		for _, c := range q.pending {
			if c.state != cellLeased && c.group != nil && groups[*c.group] {
				take(c)
			}
		}
	}
	// Remove the taken cells from pending.
	kept := q.pending[:0]
	for _, c := range q.pending {
		if c.state == cellPending {
			kept = append(kept, c)
		}
	}
	q.pending = kept
	q.leases[l.id] = l

	out := &Lease{ID: l.id, TTLMS: q.ttl.Milliseconds()}
	for _, c := range l.cells {
		out.Cells = append(out.Cells, LeaseCell{Key: c.key, Spec: c.spec})
		out.reqs = append(out.reqs, c.req)
	}
	return out
}

// Heartbeat extends a lease's deadline; false means the lease is gone
// (expired and reaped, or already completed) and the worker's results
// may be dropped as duplicates.
func (q *Queue) Heartbeat(id, worker string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	q.workers[worker] = q.now()
	l, ok := q.leases[id]
	if ok {
		l.deadline = q.now().Add(q.ttl)
	}
	return ok
}

// Complete accepts a worker's results for a lease. Results are matched
// to live cells by key, idempotently: keys that are unknown or no
// longer owned by any lease (already completed elsewhere) are dropped,
// never double-counted and never re-persisted. Cells of the lease
// missing from the report are requeued. Returns accepted and dropped
// counts.
func (q *Queue) Complete(id, worker string, results []CellResult) (accepted, dropped int) {
	type delivery struct {
		c   *cell
		res *core.Result
		err error
	}
	var deliveries []delivery

	q.mu.Lock()
	q.expireLocked()
	q.workers[worker] = q.now()
	l := q.leases[id]
	delete(q.leases, id)
	for _, r := range results {
		c := q.cells[r.Key]
		if c == nil || (c.state == cellLeased && c.leaseID != id) {
			// Unknown (already completed) or re-leased to a live worker
			// after this lease expired: the other completion wins.
			q.dupDropped++
			dropped++
			continue
		}
		if c.state == cellPending {
			// Expired and requeued, but not yet re-leased: this late
			// result is still perfectly good — accept it.
			q.removePendingLocked(c)
		}
		delete(q.cells, c.key)
		d := delivery{c: c}
		if r.Err != "" {
			d.err = fmt.Errorf("%s", r.Err)
			q.failed++
		} else if r.Result == nil {
			d.err = fmt.Errorf("fleet: worker %s reported cell %s with neither result nor error", worker, r.Key[:12])
			q.failed++
		} else {
			d.res = r.Result.Result(c.req)
		}
		q.completed++
		accepted++
		if !c.leasedAt.IsZero() {
			q.cellSeconds.Observe(q.now().Sub(c.leasedAt).Seconds())
		}
		deliveries = append(deliveries, d)
	}
	// Anything the lease held but the report omitted goes back in the
	// queue.
	if l != nil {
		requeued := false
		for _, c := range l.cells {
			if c.state == cellLeased && c.leaseID == id && q.cells[c.key] == c {
				c.leaseID = ""
				q.insertPendingLocked(c)
				q.requeued++
				requeued = true
			}
		}
		if requeued {
			q.notifyLocked()
		}
	}
	// Persist while still holding the lock: a completed cell must never
	// be simultaneously gone from the live table and absent from the
	// cache, or a straggling Submit (whose unlocked probe missed) would
	// re-enqueue it and the fleet would simulate — and persist — the
	// cell twice. Submit's under-lock re-probe plus this ordering make
	// "store Puts == distinct cells" hold unconditionally.
	for _, d := range deliveries {
		if d.err == nil && q.cache != nil {
			if perr := q.cache.Put(d.c.req, d.res); perr != nil && q.onPutError != nil {
				q.onPutError(d.c.req, perr)
			}
		}
	}
	q.mu.Unlock()

	// Fan out after dropping the queue lock: deliver takes ticket locks.
	for _, d := range deliveries {
		for _, w := range d.c.waiters {
			w.t.deliver(w.idx, d.res, d.err)
		}
	}
	return accepted, dropped
}

// expireLocked reaps leases past their deadline, requeuing their
// cells.
func (q *Queue) expireLocked() {
	now := q.now()
	requeued := false
	for id, l := range q.leases {
		if !l.deadline.Before(now) {
			continue
		}
		delete(q.leases, id)
		for _, c := range l.cells {
			if c.state == cellLeased && c.leaseID == id && q.cells[c.key] == c {
				c.leaseID = ""
				q.insertPendingLocked(c)
				q.requeued++
				requeued = true
			}
		}
	}
	if requeued {
		q.notifyLocked()
	}
}

// Stats snapshots the queue.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	s := Stats{
		Pending:     len(q.pending),
		Leased:      len(q.cells) - len(q.pending),
		Leases:      len(q.leases),
		Submissions: q.submissions,
		CellsSeen:   q.cellsSeen,
		CacheHits:   q.cacheHits,
		DedupHits:   q.dedupHits,
		Completed:   q.completed,
		Failed:      q.failed,
		Requeued:    q.requeued,
		DupDropped:  q.dupDropped,
		MaxPending:  q.maxPending,
		LeaseTTLMS:  q.ttl.Milliseconds(),
	}
	for name, seen := range q.workers {
		s.Workers = append(s.Workers, WorkerInfo{Name: name, LastSeen: seen})
	}
	sort.Slice(s.Workers, func(i, j int) bool {
		if !s.Workers[i].LastSeen.Equal(s.Workers[j].LastSeen) {
			return s.Workers[i].LastSeen.After(s.Workers[j].LastSeen)
		}
		return s.Workers[i].Name < s.Workers[j].Name
	})
	return s
}
