package fleet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestQueueMetrics: the queue's registry collector must expose exactly
// the numbers Stats() reports — both come from the same snapshot
// function, so /metrics and GET /fleet can never disagree — and the
// cell-latency histogram must observe each accepted completion with
// the injected clock's lease→complete delta.
func TestQueueMetrics(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	reg := obs.NewRegistry()
	q := New(Options{Registry: reg, Now: clock})
	reqs, specs := tinyReqs(t, 2, core.ExecDirect)

	if _, err := q.Submit(reqs, specs, 0); err != nil {
		t.Fatal(err)
	}
	l := q.Lease("w1", 64)
	if l == nil {
		t.Fatal("no lease")
	}
	now = now.Add(250 * time.Millisecond)
	var res []CellResult
	for i, c := range l.Cells {
		res = append(res, CellResult{Key: c.Key, Result: fakeResult(i)})
	}
	if acc, _ := q.Complete(l.ID, "w1", res); acc != len(res) {
		t.Fatalf("accepted %d, want %d", acc, len(res))
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	for name, want := range map[string]float64{
		"swpf_queue_pending":           float64(st.Pending),
		"swpf_queue_leased":            float64(st.Leased),
		"swpf_queue_leases":            float64(st.Leases),
		"swpf_queue_workers":           1,
		"swpf_queue_max_pending":       float64(st.MaxPending),
		"swpf_queue_submissions_total": float64(st.Submissions),
		"swpf_queue_cells_total":       float64(st.CellsSeen),
		"swpf_queue_cache_hits_total":  float64(st.CacheHits),
		"swpf_queue_dedup_hits_total":  float64(st.DedupHits),
		"swpf_queue_completed_total":   float64(st.Completed),
		"swpf_queue_failed_total":      float64(st.Failed),
		"swpf_queue_requeued_total":    float64(st.Requeued),
		"swpf_queue_dup_dropped_total": float64(st.DupDropped),
	} {
		s := obs.Find(samples, name)
		if s == nil {
			t.Errorf("metric %s missing", name)
			continue
		}
		if s.Value != want {
			t.Errorf("%s = %v, want %v", name, s.Value, want)
		}
	}
	if st.Completed != int64(len(reqs)) {
		t.Fatalf("completed = %d, want %d", st.Completed, len(reqs))
	}

	// Histogram: one observation per accepted cell, each 0.25s, so
	// every observation lands at or below the 1s bound.
	if s := obs.Find(samples, "swpf_fleet_cell_seconds_count"); s == nil || s.Value != float64(len(reqs)) {
		t.Fatalf("cell_seconds count: %+v", s)
	}
	if s := obs.Find(samples, "swpf_fleet_cell_seconds_sum"); s == nil || s.Value != 0.25*float64(len(reqs)) {
		t.Fatalf("cell_seconds sum: %+v", s)
	}
	if s := obs.Find(samples, "swpf_fleet_cell_seconds_bucket", obs.L("le", "1")); s == nil || s.Value != float64(len(reqs)) {
		t.Fatalf("cell_seconds le=1 bucket: %+v", s)
	}
	if s := obs.Find(samples, "swpf_fleet_cell_seconds_bucket", obs.L("le", "0.1")); s == nil || s.Value != 0 {
		t.Fatalf("cell_seconds le=0.1 bucket: %+v", s)
	}
}
