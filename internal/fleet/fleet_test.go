package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// tinyReqs builds a small request list over the tiny workload pool:
// nWorkloads × {A53} × {plain, auto}.
func tinyReqs(t *testing.T, nWorkloads int, exec core.ExecMode) ([]sweep.Request, []CellSpec) {
	t.Helper()
	pool := tinyPool()
	if nWorkloads > len(pool) {
		t.Fatalf("want %d workloads, tiny pool has %d", nWorkloads, len(pool))
	}
	g := sweep.Grid{
		Workloads: pool[:nWorkloads],
		Systems:   []*sim.Config{uarch.A53()},
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
		Options:   core.Options{C: 8},
		Execs:     []core.ExecMode{exec},
	}
	reqs := g.Expand()
	specs := make([]CellSpec, len(reqs))
	for i, r := range reqs {
		sp, err := SpecFor("tiny", r)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = sp
	}
	return reqs, specs
}

// The tiny pool is constructed once — building workloads generates
// input data.
var tinyPool = sync.OnceValue(workloads.Tiny)

// fakeResult fabricates a distinct result payload for a cell.
func fakeResult(i int) *ResultData {
	return &ResultData{Checksum: int64(1000 + i), Cycles: float64(i) + 0.5}
}

// completeAll leases everything with one worker and completes each
// lease with fabricated results; returns distinct cells completed.
func completeAll(t *testing.T, q *Queue, worker string) int {
	t.Helper()
	n := 0
	for {
		l := q.Lease(worker, 64)
		if l == nil {
			return n
		}
		var res []CellResult
		for i, c := range l.Cells {
			res = append(res, CellResult{Key: c.Key, Result: fakeResult(n + i)})
		}
		acc, dropped := q.Complete(l.ID, worker, res)
		if acc != len(res) || dropped != 0 {
			t.Fatalf("Complete accepted %d dropped %d, want %d/0", acc, dropped, len(res))
		}
		n += acc
	}
}

// TestSubmitDedupe: overlapping submissions share cells; each ticket
// still gets every outcome, and the queue completes each distinct cell
// once.
func TestSubmitDedupe(t *testing.T) {
	q := New(Options{})
	reqs, specs := tinyReqs(t, 2, core.ExecDirect)

	t1, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Pending != len(reqs) || st.DedupHits != int64(len(reqs)) {
		t.Fatalf("after overlap: pending %d dedup %d, want %d/%d", st.Pending, st.DedupHits, len(reqs), len(reqs))
	}

	if n := completeAll(t, q, "w1"); n != len(reqs) {
		t.Fatalf("completed %d distinct cells, want %d", n, len(reqs))
	}
	for _, tk := range []*Ticket{t1, t2} {
		select {
		case <-tk.Done():
		default:
			t.Fatal("ticket not finished after completing every cell")
		}
		set, ok := tk.ResultSet()
		if !ok || len(set.Outcomes) != len(reqs) {
			t.Fatalf("result set not available: ok=%v", ok)
		}
		if err := set.Err(); err != nil {
			t.Fatal(err)
		}
	}
	s1, _ := t1.ResultSet()
	s2, _ := t2.ResultSet()
	for i := range s1.Outcomes {
		if s1.Outcomes[i].Result != s2.Outcomes[i].Result {
			t.Fatalf("outcome %d: tickets did not share the single computed result", i)
		}
	}
}

// TestPriorities: higher-priority submissions lease first; FIFO within
// a priority; a shared cell is promoted to the highest priority asked.
func TestPriorities(t *testing.T) {
	q := New(Options{})
	reqs, specs := tinyReqs(t, 3, core.ExecDirect)

	lo := reqs[:2]
	hi := reqs[2:4]
	promoted := reqs[:1] // resubmitted at high priority below

	if _, err := q.Submit(lo, specs[:2], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(hi, specs[2:4], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(promoted, specs[:1], 9); err != nil {
		t.Fatal(err)
	}

	want := []string{KeyOf(promoted[0]), KeyOf(hi[0]), KeyOf(hi[1]), KeyOf(lo[1])}
	var got []string
	for {
		l := q.Lease("w", 1)
		if l == nil {
			break
		}
		for _, c := range l.Cells {
			got = append(got, c.Key)
		}
		var res []CellResult
		for _, c := range l.Cells {
			res = append(res, CellResult{Key: c.Key, Result: fakeResult(0)})
		}
		q.Complete(l.ID, "w", res)
	}
	if len(got) != len(want) {
		t.Fatalf("leased %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lease order[%d] = %s, want %s", i, got[i][:12], want[i][:12])
		}
	}
}

// TestQueueFull: admission is atomic — a submission over the bound
// enqueues nothing, and the error names the numbers.
func TestQueueFull(t *testing.T) {
	q := New(Options{MaxPending: 2})
	reqs, specs := tinyReqs(t, 2, core.ExecDirect) // 4 cells
	_, err := q.Submit(reqs, specs, 0)
	var full ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("Submit over bound = %v, want ErrQueueFull", err)
	}
	if full.Limit != 2 || full.New != 4 || full.Live != 0 {
		t.Fatalf("ErrQueueFull fields wrong: %+v", full)
	}
	if st := q.Stats(); st.Pending != 0 {
		t.Fatalf("failed submission enqueued %d cells", st.Pending)
	}

	// Under the bound it admits; a duplicate submission adds no load
	// and is admitted even at the bound.
	if _, err := q.Submit(reqs[:2], specs[:2], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(reqs[:2], specs[:2], 0); err != nil {
		t.Fatalf("duplicate submission rejected at the bound: %v", err)
	}
	if _, err := q.Submit(reqs[2:3], specs[2:3], 0); err == nil {
		t.Fatal("submission adding a cell past the bound accepted")
	}
}

// TestLeaseExpiryRequeues: a dead worker's cells return to the queue
// after TTL; its late completion is dropped, the re-lease's accepted —
// each cell delivered exactly once.
func TestLeaseExpiryRequeues(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	q := New(Options{LeaseTTL: time.Second, Now: clock})
	reqs, specs := tinyReqs(t, 1, core.ExecDirect)

	tk, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := q.Lease("dead", 64)
	if dead == nil || len(dead.Cells) != len(reqs) {
		t.Fatalf("first lease missing cells: %+v", dead)
	}
	if q.Lease("live", 64) != nil {
		t.Fatal("second worker leased cells that are already out")
	}

	now = now.Add(1500 * time.Millisecond) // past TTL
	release := q.Lease("live", 64)
	if release == nil || len(release.Cells) != len(reqs) {
		t.Fatalf("expired cells not re-leased: %+v", release)
	}
	if st := q.Stats(); st.Requeued != int64(len(reqs)) {
		t.Fatalf("requeued = %d, want %d", st.Requeued, len(reqs))
	}

	// The dead worker wakes up and reports anyway: all dropped.
	var late []CellResult
	for i, c := range dead.Cells {
		late = append(late, CellResult{Key: c.Key, Result: fakeResult(i)})
	}
	if acc, dropped := q.Complete(dead.ID, "dead", late); acc != 0 || dropped != len(reqs) {
		t.Fatalf("late completion accepted %d dropped %d, want 0/%d", acc, dropped, len(reqs))
	}

	var res []CellResult
	for i, c := range release.Cells {
		res = append(res, CellResult{Key: c.Key, Result: fakeResult(100 + i)})
	}
	if acc, dropped := q.Complete(release.ID, "live", res); acc != len(reqs) || dropped != 0 {
		t.Fatalf("re-lease completion accepted %d dropped %d", acc, dropped)
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("ticket unfinished after re-lease completion")
	}
	set, _ := tk.ResultSet()
	for i := range set.Outcomes {
		if set.Outcomes[i].Result == nil || set.Outcomes[i].Result.Checksum < 1100 {
			t.Fatalf("outcome %d did not come from the live worker: %+v", i, set.Outcomes[i].Result)
		}
	}
}

// TestHeartbeatKeepsLease: heartbeats extend the deadline, and an
// expired lease answers false.
func TestHeartbeatKeepsLease(t *testing.T) {
	now := time.Unix(0, 0)
	q := New(Options{LeaseTTL: time.Second, Now: func() time.Time { return now }})
	reqs, specs := tinyReqs(t, 1, core.ExecDirect)
	if _, err := q.Submit(reqs, specs, 0); err != nil {
		t.Fatal(err)
	}
	l := q.Lease("w", 64)
	for i := 0; i < 5; i++ {
		now = now.Add(700 * time.Millisecond)
		if !q.Heartbeat(l.ID, "w") {
			t.Fatalf("heartbeat %d lost a live lease", i)
		}
	}
	if st := q.Stats(); st.Requeued != 0 {
		t.Fatalf("heartbeated lease requeued %d cells", st.Requeued)
	}
	now = now.Add(2 * time.Second)
	if q.Heartbeat(l.ID, "w") {
		t.Fatal("heartbeat revived an expired lease")
	}
}

// TestReplayGroupLeasing: replay cells lease as whole (workload,
// variant, options) groups even when max is smaller, so one worker
// records each trace.
func TestReplayGroupLeasing(t *testing.T) {
	q := New(Options{})
	pool := tinyPool()
	g := sweep.Grid{
		Workloads: pool[:1],
		Systems:   uarch.All(), // 4 systems → group size 4 per variant
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
		Options:   core.Options{C: 8},
		Execs:     []core.ExecMode{core.ExecReplay},
	}
	reqs := g.Expand()
	specs := make([]CellSpec, len(reqs))
	for i, r := range reqs {
		sp, err := SpecFor("tiny", r)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = sp
	}
	if _, err := q.Submit(reqs, specs, 0); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		l := q.Lease("w", 1)
		if l == nil {
			t.Fatalf("round %d: no lease", round)
		}
		if len(l.Cells) != 4 {
			t.Fatalf("round %d: replay lease has %d cells, want the whole 4-cell group", round, len(l.Cells))
		}
		variant := l.Cells[0].Spec.Variant
		for _, c := range l.Cells {
			if c.Spec.Variant != variant || c.Spec.Workload != l.Cells[0].Spec.Workload {
				t.Fatalf("round %d: lease mixes replay groups: %+v", round, l.Cells)
			}
		}
		var res []CellResult
		for i, c := range l.Cells {
			res = append(res, CellResult{Key: c.Key, Result: fakeResult(i)})
		}
		q.Complete(l.ID, "w", res)
	}
	if l := q.Lease("w", 1); l != nil {
		t.Fatalf("queue not drained after two group leases: %+v", l)
	}
}

// countingCache records Get/Put traffic.
type countingCache struct {
	mu      sync.Mutex
	objects map[string]*core.Result
	puts    int
}

func (c *countingCache) Get(r sweep.Request) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.objects[KeyOf(r)]
	return res, ok
}

func (c *countingCache) Put(r sweep.Request, res *core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.objects == nil {
		c.objects = make(map[string]*core.Result)
	}
	c.objects[KeyOf(r)] = res
	c.puts++
	return nil
}

// TestCachePutOnce: completions persist each distinct cell exactly
// once, and a warm submission is answered entirely at submit time.
func TestCachePutOnce(t *testing.T) {
	cache := &countingCache{}
	q := New(Options{Cache: cache})
	reqs, specs := tinyReqs(t, 2, core.ExecDirect)

	// Two overlapping submissions, then drain.
	if _, err := q.Submit(reqs, specs, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(reqs, specs, 0); err != nil {
		t.Fatal(err)
	}
	completeAll(t, q, "w")
	if cache.puts != len(reqs) {
		t.Fatalf("cache saw %d puts for %d distinct cells", cache.puts, len(reqs))
	}

	// Warm: the ticket finishes inside Submit, no cells enqueued.
	tk, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("warm submission not finished at submit")
	}
	if st := q.Stats(); st.Pending != 0 || st.CacheHits != int64(len(reqs)) {
		t.Fatalf("warm submission: pending %d cacheHits %d", st.Pending, st.CacheHits)
	}
}

// TestPartialReportRequeues: cells a completion omits go back to the
// queue instead of being lost.
func TestPartialReportRequeues(t *testing.T) {
	q := New(Options{})
	reqs, specs := tinyReqs(t, 1, core.ExecDirect) // 2 cells
	tk, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := q.Lease("w", 64)
	if len(l.Cells) != 2 {
		t.Fatalf("leased %d cells, want 2", len(l.Cells))
	}
	q.Complete(l.ID, "w", []CellResult{{Key: l.Cells[0].Key, Result: fakeResult(0)}})
	if st := q.Stats(); st.Pending != 1 || st.Requeued != 1 {
		t.Fatalf("omitted cell not requeued: %+v", st)
	}
	completeAll(t, q, "w")
	select {
	case <-tk.Done():
	default:
		t.Fatal("ticket unfinished after requeue drain")
	}
}

// TestErrorCellsFailWaiters: a cell completed with an error reaches
// every waiting ticket as that cell's error.
func TestErrorCellsFailWaiters(t *testing.T) {
	q := New(Options{})
	reqs, specs := tinyReqs(t, 1, core.ExecDirect)
	tk, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := q.Lease("w", 64)
	var res []CellResult
	for _, c := range l.Cells {
		res = append(res, CellResult{Key: c.Key, Err: "simulated crash"})
	}
	q.Complete(l.ID, "w", res)
	<-tk.Done()
	set, _ := tk.ResultSet()
	if err := set.Err(); err == nil || !strings.Contains(err.Error(), "simulated crash") {
		t.Fatalf("ticket error = %v, want the worker's message", err)
	}
	if st := q.Stats(); st.Failed != int64(len(reqs)) {
		t.Fatalf("failed counter = %d, want %d", st.Failed, len(reqs))
	}
}

// TestCellSpecRoundTrip: a spec reconstructs a request with the same
// cell key on the worker side.
func TestCellSpecRoundTrip(t *testing.T) {
	reqs, specs := tinyReqs(t, 1, core.ExecReplay)
	resolve := func(quality, name string) (*sweep.Request, error) {
		if quality != "tiny" {
			t.Fatalf("resolver asked for quality %q", quality)
		}
		ws, err := sweep.SelectWorkloads(tinyPool(), name)
		if err != nil {
			return nil, err
		}
		return &sweep.Request{Workload: ws[0]}, nil
	}
	for i, sp := range specs {
		got, err := sp.Request(resolve)
		if err != nil {
			t.Fatal(err)
		}
		if KeyOf(got) != KeyOf(reqs[i]) {
			t.Fatalf("spec %d round-trips to a different cell key", i)
		}
		if got.Exec != core.ExecReplay {
			t.Fatalf("spec %d lost the exec mode: %q", i, got.Exec)
		}
	}
}

// TestSubscribeStreamsProgress: subscribers see monotonic counts ending
// in a Finished event; late subscribers see the terminal state.
func TestSubscribeStreamsProgress(t *testing.T) {
	q := New(Options{})
	reqs, specs := tinyReqs(t, 1, core.ExecDirect)
	tk, err := q.Submit(reqs, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := tk.Subscribe()
	defer cancel()
	completeAll(t, q, "w")

	deadline := time.After(5 * time.Second)
	last := Progress{}
	for !last.Finished {
		select {
		case p := <-ch:
			if p.Done < last.Done {
				t.Fatalf("progress went backwards: %+v after %+v", p, last)
			}
			last = p
		case <-deadline:
			t.Fatal("no Finished event")
		}
	}
	if last.Done != len(reqs) || last.Total != len(reqs) {
		t.Fatalf("terminal progress %+v, want %d/%d", last, len(reqs), len(reqs))
	}

	late, cancelLate := tk.Subscribe()
	defer cancelLate()
	select {
	case p := <-late:
		if !p.Finished {
			t.Fatalf("late subscriber saw %+v, want Finished", p)
		}
	default:
		t.Fatal("late subscriber saw nothing")
	}
}
