package bench

import (
	"fmt"
	"strings"

	"repro/internal/tune"
)

// LookaheadWorkloads is the default workload selection of the
// look-ahead sensitivity figure — the four benchmarks figure 6 plots.
const LookaheadWorkloads = "IS,CG,RA,HJ-2"

// FigLookahead is the tuner's look-ahead sensitivity figure: for each
// selected workload × system pair, speedup of the auto variant over
// the no-prefetch baseline at every look-ahead of the default search
// ladder, plus the tuned optimum. It is figure 6 rebuilt by the
// optimizer (internal/tune): one exhaustive search produces both the
// curve and the best column, and every cell flows through the sweep
// engine, so a result store memoizes the figure like any other.
//
// Empty selections mean the figure-6 workloads on all four systems;
// both accept the sweep axis grammar ("IS,RA" / "A53,Haswell").
func (s Suite) FigLookahead(benchNames, systemNames string) (*Table, error) {
	if strings.TrimSpace(benchNames) == "" {
		benchNames = LookaheadWorkloads
	}
	sp := tune.Spec{}
	sp.Quality = s.Q.PoolName()
	sp.Workloads = benchNames
	sp.Systems = systemNames
	rep, err := tune.Tuner{Runner: s.runner()}.Run(sp)
	if err != nil {
		return nil, err
	}

	cols := []string{"benchmark", "system"}
	for _, c := range tune.DefaultCs {
		cols = append(cols, fmt.Sprintf("c=%d", c))
	}
	cols = append(cols, "best c", "best")
	t := &Table{
		Title:   "Look-ahead sensitivity: tuned speedup vs c (auto)",
		Columns: cols,
		Note:    "paper §5.2: the optimum is interior — too small arrives late, too big pollutes/evicts; c=64 is near-best on most systems",
	}
	for _, res := range rep.Results {
		row := []string{res.Workload, res.System}
		for _, pt := range res.Curve {
			row = append(row, f2(pt.Speedup))
		}
		row = append(row, fmt.Sprintf("%d", res.Best.C), f2(res.Speedup))
		t.AddRow(row...)
	}
	return t, nil
}

// FigLookahead runs the look-ahead sensitivity figure with default
// parallelism (the historical free-function API).
func FigLookahead(q Quality) (*Table, error) { return Suite{Q: q}.FigLookahead("", "") }
