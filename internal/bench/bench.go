// Package bench regenerates every figure of the evaluation section
// (§6) of Ainsworth & Jones (CGO 2017) on the simulated machines. Each
// FigN function returns a Table whose rows correspond to the bars or
// series of the paper's figure; cmd/swpfbench prints them and
// bench_test.go exposes each as a testing.B benchmark.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// Quality selects input sizes: Full is the scaled-paper configuration
// used for EXPERIMENTS.md; Quick shrinks inputs for smoke tests.
type Quality int

// Qualities.
const (
	Full Quality = iota
	Quick
)

// PoolName maps the quality to the shared workload-pool name
// (workloads.PoolByQuality) grid and tune specs carry.
func (q Quality) PoolName() string {
	if q == Quick {
		return "quick"
	}
	return "full"
}

// workloadSet returns the benchmark suite at the chosen quality. The
// sizes live in internal/workloads (Quick/All) so the daemon's pools,
// the tuner and the figures all draw from one registry.
func workloadSet(q Quality) []*workloads.Workload {
	if q == Quick {
		return workloads.Quick()
	}
	return workloads.All()
}

// WorkloadSet exposes the benchmark suite at the chosen quality — the
// workload pool cmd/swpfbench's -sweep mode selects from.
func WorkloadSet(q Quality) []*workloads.Workload { return workloadSet(q) }

// workloadByName builds one suite workload at the chosen quality.
func workloadByName(q Quality, name string) *workloads.Workload {
	for _, w := range workloadSet(q) {
		if w.Name == name || strings.HasPrefix(w.Name, name) {
			return w
		}
	}
	return nil
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// geomean of a slice, ignoring non-positive entries.
func geomean(xs []float64) float64 { return sweep.Geomean(xs) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// systems returns the four Table 1 machines.
func systems() []*sim.Config { return uarch.All() }

// CSV renders the table as comma-separated values (header first), for
// feeding plots; swpfbench emits this under -csv.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	write(t.Columns)
	for _, r := range t.Rows {
		write(r)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table, for
// pasting into EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var sb strings.Builder
	row := func(cells []string) {
		sb.WriteString("| ")
		sb.WriteString(strings.Join(cells, " | "))
		sb.WriteString(" |\n")
	}
	row(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}
