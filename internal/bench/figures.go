package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/uarch"
)

// Fig2 reproduces figure 2: software-prefetching schemes for the
// integer-sort kernel on Haswell. "Intuitive" inserts only the indirect
// prefetch (listing 1 line 4); "optimal" adds the staggered stride
// prefetch (line 6); the offset variants use the optimal scheme with a
// too-small / too-big look-ahead.
func Fig2(q Quality) (*Table, error) {
	w := workloadByName(q, "IS")
	hw := uarch.Haswell()
	t := &Table{
		Title:   "Figure 2: prefetching technique vs speedup, IS on Haswell",
		Columns: []string{"technique", "speedup"},
		Note:    "paper: intuitive 1.08x, optimal 1.30x; too small/too big below optimal",
	}
	cases := []struct {
		name    string
		variant core.Variant
		c       int64
	}{
		{"Intuitive", core.VariantIndirectOnly, 64},
		{"Offset too small", core.VariantAuto, 4},
		{"Offset too big", core.VariantAuto, 1024},
		{"Optimal", core.VariantAuto, 64},
	}
	for _, cse := range cases {
		sp, _, _, err := runPair(w, hw, cse.variant, core.Options{C: cse.c})
		if err != nil {
			return nil, err
		}
		t.AddRow(cse.name, f2(sp))
	}
	return t, nil
}

// Fig4 reproduces figure 4: auto-generated and manual prefetch speedups
// for every benchmark on one system; on the Xeon Phi the ICC-like
// restricted pass is included as a third series.
func Fig4(q Quality, system string) (*Table, error) {
	cfg := uarch.ByName(system)
	if cfg == nil {
		return nil, fmt.Errorf("bench: unknown system %q", system)
	}
	withICC := system == "XeonPhi"
	cols := []string{"benchmark", "auto", "manual"}
	if withICC {
		cols = []string{"benchmark", "icc", "auto", "manual"}
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 4: speedup on %s (c=64)", system),
		Columns: cols,
		Note:    "paper geomeans: Haswell 1.3x, A57 1.1x, A53 2.1x, Xeon Phi 2.7x",
	}
	var autos, manuals, iccs []float64
	for _, w := range workloadSet(q) {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{w.Name}
		if withICC {
			icc, err := core.Run(w, cfg, core.VariantICC, core.Options{})
			if err != nil {
				return nil, err
			}
			s := core.Speedup(base, icc)
			iccs = append(iccs, s)
			row = append(row, f2(s))
		}
		auto, err := core.Run(w, cfg, core.VariantAuto, core.Options{})
		if err != nil {
			return nil, err
		}
		man, err := bestManual(w, cfg, core.Options{})
		if err != nil {
			return nil, err
		}
		sa, sm := core.Speedup(base, auto), core.Speedup(base, man)
		autos = append(autos, sa)
		manuals = append(manuals, sm)
		row = append(row, f2(sa), f2(sm))
		t.AddRow(row...)
	}
	grow := []string{"Geomean"}
	if withICC {
		grow = append(grow, f2(geomean(iccs)))
	}
	grow = append(grow, f2(geomean(autos)), f2(geomean(manuals)))
	t.AddRow(grow...)
	return t, nil
}

// Fig4All runs figure 4 for all four systems.
func Fig4All(q Quality) ([]*Table, error) {
	var out []*Table
	for _, cfg := range systems() {
		t, err := Fig4(q, cfg.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 reproduces figure 5: on Haswell, the indirect prefetch alone
// versus indirect plus staggered stride prefetch, both auto-generated.
func Fig5(q Quality) (*Table, error) {
	hw := uarch.Haswell()
	t := &Table{
		Title:   "Figure 5: indirect-only vs indirect+stride prefetch, Haswell (auto)",
		Columns: []string{"benchmark", "indirect only", "indirect+stride"},
		Note:    "paper: stride companions help across the board despite the HW prefetcher",
	}
	var only, both []float64
	for _, w := range workloadSet(q) {
		base, err := core.Run(w, hw, core.VariantPlain, core.Options{})
		if err != nil {
			return nil, err
		}
		io_, err := core.Run(w, hw, core.VariantIndirectOnly, core.Options{})
		if err != nil {
			return nil, err
		}
		full, err := core.Run(w, hw, core.VariantAuto, core.Options{})
		if err != nil {
			return nil, err
		}
		s1, s2 := core.Speedup(base, io_), core.Speedup(base, full)
		only = append(only, s1)
		both = append(both, s2)
		t.AddRow(w.Name, f2(s1), f2(s2))
	}
	t.AddRow("Geomean", f2(geomean(only)), f2(geomean(both)))
	return t, nil
}

// Fig6Distances is the look-ahead sweep of figure 6.
var Fig6Distances = []int64{4, 8, 16, 32, 64, 128, 256}

// Fig6 reproduces figure 6: speedup vs look-ahead distance c for one of
// IS, CG, RA, HJ-2 across all four systems, using manual prefetches as
// the paper does ("based on manual insertion, to show the limits of
// performance achievable across systems regardless of algorithm").
func Fig6(q Quality, benchName string) (*Table, error) {
	w := workloadByName(q, benchName)
	if w == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: speedup vs look-ahead distance, %s", w.Name),
		Columns: append([]string{"system"}, formatDistances()...),
		Note:    "paper: optimum is flat and c=64 is close to best everywhere",
	}
	for _, cfg := range systems() {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{cfg.Name}
		for _, c := range Fig6Distances {
			x, err := core.Run(w, cfg, core.VariantManual, core.Options{C: c})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(core.Speedup(base, x)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func formatDistances() []string {
	out := make([]string, len(Fig6Distances))
	for i, c := range Fig6Distances {
		out[i] = fmt.Sprintf("c=%d", c)
	}
	return out
}

// Fig6All runs the sweep for the four benchmarks the paper plots.
func Fig6All(q Quality) ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"IS", "CG", "RA", "HJ-2"} {
		t, err := Fig6(q, name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig7 reproduces figure 7: prefetching progressively more dependent
// loads of HJ-8's four-deep chain, on every system.
func Fig7(q Quality) (*Table, error) {
	w := workloadByName(q, "HJ-8")
	t := &Table{
		Title:   "Figure 7: HJ-8 speedup vs prefetch stagger depth (manual)",
		Columns: []string{"system", "depth 1", "depth 2", "depth 3", "depth 4"},
		Note:    "paper: depth 3 is optimal on every architecture",
	}
	for _, cfg := range systems() {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{cfg.Name}
		for d := 1; d <= 4; d++ {
			x, err := core.Run(w, cfg, core.VariantManual, core.Options{C: 64, Depth: d})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(core.Speedup(base, x)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8 reproduces figure 8: the percentage increase in dynamic
// instruction count on Haswell from adding software prefetches (best
// scheme per benchmark, i.e. the manual variant).
func Fig8(q Quality) (*Table, error) {
	hw := uarch.Haswell()
	t := &Table{
		Title:   "Figure 8: % extra dynamic instructions from prefetching, Haswell",
		Columns: []string{"benchmark", "% extra instructions"},
		Note:    "paper: ~70% for IS/RA, ~80% for CG, small for G500 (outer-loop prefetches only)",
	}
	for _, w := range workloadSet(q) {
		base, err := core.Run(w, hw, core.VariantPlain, core.Options{})
		if err != nil {
			return nil, err
		}
		man, err := bestManual(w, hw, core.Options{})
		if err != nil {
			return nil, err
		}
		extra := 100 * (float64(man.Stats.Instructions) - float64(base.Stats.Instructions)) /
			float64(base.Stats.Instructions)
		t.AddRow(w.Name, fmt.Sprintf("%.1f", extra))
	}
	return t, nil
}

// Fig9 reproduces figure 9: normalized throughput of IS on Haswell with
// 1, 2 and 4 cores contending for DRAM, with and without prefetching.
// Throughput is (tasks/time) normalized to one task on one core without
// prefetching: N * T(1, no-pf) / T(N, variant).
func Fig9(q Quality) (*Table, error) {
	w := workloadByName(q, "IS")
	t := &Table{
		Title:   "Figure 9: IS normalized throughput vs core count, Haswell",
		Columns: []string{"cores", "no prefetching", "prefetching"},
		Note:    "paper: throughput <1 at 4 cores without prefetching; prefetching still wins",
	}
	solo, err := core.Run(w, uarch.Haswell(), core.VariantPlain, core.Options{})
	if err != nil {
		return nil, err
	}
	for _, n := range []int{1, 2, 4} {
		cfg := uarch.WithCores(uarch.Haswell(), n)
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			return nil, err
		}
		pf, err := core.Run(w, cfg, core.VariantManual, core.Options{})
		if err != nil {
			return nil, err
		}
		// One task per core: N tasks complete in one core's contended
		// time T(N), versus N*T(1,no-pf) run back to back on one core —
		// so normalized throughput is T(1,no-pf)/T(N).
		tpBase := solo.Cycles / base.Cycles
		tpPF := solo.Cycles / pf.Cycles
		t.AddRow(fmt.Sprintf("%d", n), f2(tpBase), f2(tpPF))
	}
	return t, nil
}

// Fig10 reproduces figure 10: prefetching speedup with transparent huge
// pages enabled and disabled on Haswell, for the TLB-sensitive
// benchmarks IS, RA and HJ-2. Each speedup is normalized to no
// prefetching under the same page policy.
func Fig10(q Quality) (*Table, error) {
	t := &Table{
		Title:   "Figure 10: prefetch speedup with small vs huge pages, Haswell",
		Columns: []string{"benchmark", "small pages", "huge pages"},
		Note:    "paper: huge pages shift gains but trends are consistent",
	}
	for _, name := range []string{"IS", "RA", "HJ-2"} {
		w := workloadByName(q, name)
		row := []string{w.Name}
		for _, cfg := range []*sim.Config{
			uarch.SmallPages(uarch.Haswell()),
			uarch.HugePages(uarch.Haswell()),
		} {
			sp, _, _, err := runPair(w, cfg, core.VariantManual, core.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(sp))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// RunAll regenerates every figure at the given quality and writes the
// tables to w.
func RunAll(q Quality, out io.Writer) error {
	var tables []*Table
	add := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	if err := add(Fig2(q)); err != nil {
		return err
	}
	f4, err := Fig4All(q)
	if err != nil {
		return err
	}
	tables = append(tables, f4...)
	if err := add(Fig5(q)); err != nil {
		return err
	}
	f6, err := Fig6All(q)
	if err != nil {
		return err
	}
	tables = append(tables, f6...)
	if err := add(Fig7(q)); err != nil {
		return err
	}
	if err := add(Fig8(q)); err != nil {
		return err
	}
	if err := add(Fig9(q)); err != nil {
		return err
	}
	if err := add(Fig10(q)); err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(out, t.String())
	}
	return nil
}
