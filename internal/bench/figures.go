package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// Suite regenerates the evaluation figures at one quality setting,
// fanning the independent simulation runs of each figure across Jobs
// worker goroutines via the sweep engine. Per-run statistics are
// bit-identical for any worker count, so tables never depend on Jobs.
type Suite struct {
	Q Quality
	// Jobs is the sweep worker count; <= 0 selects GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, is a persistent result store (see
	// internal/store): figure cells already cached are served from
	// disk, and fresh cells are persisted as they complete.
	Cache sweep.Cache
	// OnPutError receives cache-persistence failures (see
	// sweep.Runner.OnPutError); nil ignores them.
	OnPutError func(sweep.Request, error)
}

// runner is the sweep configuration every figure executes under.
func (s Suite) runner() sweep.Runner {
	return sweep.Runner{Jobs: s.Jobs, Cache: s.Cache, OnPutError: s.OnPutError}
}

// batch accumulates the independent runs one figure needs. Figures
// record request indices while building the batch and read results
// positionally after running it, which keeps each figure's assembly
// logic identical to the old serial loops.
type batch struct {
	reqs []sweep.Request
}

func (b *batch) add(w *workloads.Workload, cfg *sim.Config, v core.Variant, o core.Options) int {
	b.reqs = append(b.reqs, sweep.Request{Workload: w, System: cfg, Variant: v, Options: o})
	return len(b.reqs) - 1
}

func (b *batch) run(r sweep.Runner) ([]*core.Result, error) {
	set, err := r.Execute(b.reqs)
	if err != nil {
		return nil, err
	}
	return set.Results(), nil
}

// manualDepths lists the stagger depths figure 4's best-manual
// selection tries: every supported level, or just the default when the
// workload ignores depth.
func manualDepths(w *workloads.Workload) []int {
	if w.ManualDepths == 0 {
		return []int{0}
	}
	ds := make([]int, w.ManualDepths)
	for i := range ds {
		ds[i] = i + 1
	}
	return ds
}

// bestOf returns the lowest-cycle result among the indexed runs,
// keeping the earliest on ties (matching the serial selection order).
func bestOf(res []*core.Result, idxs []int) *core.Result {
	var best *core.Result
	for _, i := range idxs {
		if best == nil || res[i].Cycles < best.Cycles {
			best = res[i]
		}
	}
	return best
}

// Fig2 reproduces figure 2: software-prefetching schemes for the
// integer-sort kernel on Haswell. "Intuitive" inserts only the indirect
// prefetch (listing 1 line 4); "optimal" adds the staggered stride
// prefetch (line 6); the offset variants use the optimal scheme with a
// too-small / too-big look-ahead.
func (s Suite) Fig2() (*Table, error) {
	w := workloadByName(s.Q, "IS")
	hw := uarch.Haswell()
	t := &Table{
		Title:   "Figure 2: prefetching technique vs speedup, IS on Haswell",
		Columns: []string{"technique", "speedup"},
		Note:    "paper: intuitive 1.08x, optimal 1.30x; too small/too big below optimal",
	}
	cases := []struct {
		name    string
		variant core.Variant
		c       int64
	}{
		{"Intuitive", core.VariantIndirectOnly, 64},
		{"Offset too small", core.VariantAuto, 4},
		{"Offset too big", core.VariantAuto, 1024},
		{"Optimal", core.VariantAuto, 64},
	}
	b := &batch{}
	type pair struct{ plain, x int }
	idx := make([]pair, len(cases))
	for i, cse := range cases {
		o := core.Options{C: cse.c}
		idx[i] = pair{b.add(w, hw, core.VariantPlain, o), b.add(w, hw, cse.variant, o)}
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	for i, cse := range cases {
		t.AddRow(cse.name, f2(core.Speedup(res[idx[i].plain], res[idx[i].x])))
	}
	return t, nil
}

// Fig4 reproduces figure 4: auto-generated and manual prefetch speedups
// for every benchmark on one system; on the Xeon Phi the ICC-like
// restricted pass is included as a third series.
func (s Suite) Fig4(system string) (*Table, error) {
	cfg := uarch.ByName(system)
	if cfg == nil {
		return nil, fmt.Errorf("bench: unknown system %q", system)
	}
	withICC := system == "XeonPhi"
	cols := []string{"benchmark", "auto", "manual"}
	if withICC {
		cols = []string{"benchmark", "icc", "auto", "manual"}
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 4: speedup on %s (c=64)", system),
		Columns: cols,
		Note:    "paper geomeans: Haswell 1.3x, A57 1.1x, A53 2.1x, Xeon Phi 2.7x",
	}
	ws := workloadSet(s.Q)
	b := &batch{}
	type row struct {
		plain, icc, auto int
		manual           []int
	}
	rows := make([]row, len(ws))
	for i, w := range ws {
		r := row{plain: b.add(w, cfg, core.VariantPlain, core.Options{}), icc: -1}
		if withICC {
			r.icc = b.add(w, cfg, core.VariantICC, core.Options{})
		}
		r.auto = b.add(w, cfg, core.VariantAuto, core.Options{})
		for _, d := range manualDepths(w) {
			r.manual = append(r.manual, b.add(w, cfg, core.VariantManual, core.Options{Depth: d}))
		}
		rows[i] = r
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	var autos, manuals, iccs []float64
	for i, w := range ws {
		base := res[rows[i].plain]
		row := []string{w.Name}
		if withICC {
			sICC := core.Speedup(base, res[rows[i].icc])
			iccs = append(iccs, sICC)
			row = append(row, f2(sICC))
		}
		sa := core.Speedup(base, res[rows[i].auto])
		sm := core.Speedup(base, bestOf(res, rows[i].manual))
		autos = append(autos, sa)
		manuals = append(manuals, sm)
		row = append(row, f2(sa), f2(sm))
		t.AddRow(row...)
	}
	grow := []string{"Geomean"}
	if withICC {
		grow = append(grow, f2(geomean(iccs)))
	}
	grow = append(grow, f2(geomean(autos)), f2(geomean(manuals)))
	t.AddRow(grow...)
	return t, nil
}

// Fig4All runs figure 4 for all four systems.
func (s Suite) Fig4All() ([]*Table, error) {
	var out []*Table
	for _, cfg := range systems() {
		t, err := s.Fig4(cfg.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 reproduces figure 5: on Haswell, the indirect prefetch alone
// versus indirect plus staggered stride prefetch, both auto-generated.
func (s Suite) Fig5() (*Table, error) {
	hw := uarch.Haswell()
	t := &Table{
		Title:   "Figure 5: indirect-only vs indirect+stride prefetch, Haswell (auto)",
		Columns: []string{"benchmark", "indirect only", "indirect+stride"},
		Note:    "paper: stride companions help across the board despite the HW prefetcher",
	}
	ws := workloadSet(s.Q)
	b := &batch{}
	type row struct{ plain, onlyI, full int }
	rows := make([]row, len(ws))
	for i, w := range ws {
		rows[i] = row{
			plain: b.add(w, hw, core.VariantPlain, core.Options{}),
			onlyI: b.add(w, hw, core.VariantIndirectOnly, core.Options{}),
			full:  b.add(w, hw, core.VariantAuto, core.Options{}),
		}
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	var only, both []float64
	for i, w := range ws {
		base := res[rows[i].plain]
		s1 := core.Speedup(base, res[rows[i].onlyI])
		s2 := core.Speedup(base, res[rows[i].full])
		only = append(only, s1)
		both = append(both, s2)
		t.AddRow(w.Name, f2(s1), f2(s2))
	}
	t.AddRow("Geomean", f2(geomean(only)), f2(geomean(both)))
	return t, nil
}

// Fig6Distances is the look-ahead sweep of figure 6.
var Fig6Distances = []int64{4, 8, 16, 32, 64, 128, 256}

// Fig6 reproduces figure 6: speedup vs look-ahead distance c for one of
// IS, CG, RA, HJ-2 across all four systems, using manual prefetches as
// the paper does ("based on manual insertion, to show the limits of
// performance achievable across systems regardless of algorithm").
func (s Suite) Fig6(benchName string) (*Table, error) {
	w := workloadByName(s.Q, benchName)
	if w == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: speedup vs look-ahead distance, %s", w.Name),
		Columns: append([]string{"system"}, formatDistances()...),
		Note:    "paper: optimum is flat and c=64 is close to best everywhere",
	}
	sys := systems()
	b := &batch{}
	type row struct {
		plain int
		byC   []int
	}
	rows := make([]row, len(sys))
	for i, cfg := range sys {
		r := row{plain: b.add(w, cfg, core.VariantPlain, core.Options{})}
		for _, c := range Fig6Distances {
			r.byC = append(r.byC, b.add(w, cfg, core.VariantManual, core.Options{C: c}))
		}
		rows[i] = r
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	for i, cfg := range sys {
		base := res[rows[i].plain]
		row := []string{cfg.Name}
		for _, j := range rows[i].byC {
			row = append(row, f2(core.Speedup(base, res[j])))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func formatDistances() []string {
	out := make([]string, len(Fig6Distances))
	for i, c := range Fig6Distances {
		out[i] = fmt.Sprintf("c=%d", c)
	}
	return out
}

// Fig6All runs the sweep for the four benchmarks the paper plots.
func (s Suite) Fig6All() ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"IS", "CG", "RA", "HJ-2"} {
		t, err := s.Fig6(name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig7 reproduces figure 7: prefetching progressively more dependent
// loads of HJ-8's four-deep chain, on every system.
func (s Suite) Fig7() (*Table, error) {
	w := workloadByName(s.Q, "HJ-8")
	t := &Table{
		Title:   "Figure 7: HJ-8 speedup vs prefetch stagger depth (manual)",
		Columns: []string{"system", "depth 1", "depth 2", "depth 3", "depth 4"},
		Note:    "paper: depth 3 is optimal on every architecture",
	}
	sys := systems()
	b := &batch{}
	type row struct {
		plain   int
		byDepth []int
	}
	rows := make([]row, len(sys))
	for i, cfg := range sys {
		r := row{plain: b.add(w, cfg, core.VariantPlain, core.Options{})}
		for d := 1; d <= 4; d++ {
			r.byDepth = append(r.byDepth, b.add(w, cfg, core.VariantManual, core.Options{C: 64, Depth: d}))
		}
		rows[i] = r
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	for i, cfg := range sys {
		base := res[rows[i].plain]
		row := []string{cfg.Name}
		for _, j := range rows[i].byDepth {
			row = append(row, f2(core.Speedup(base, res[j])))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8 reproduces figure 8: the percentage increase in dynamic
// instruction count on Haswell from adding software prefetches (best
// scheme per benchmark, i.e. the manual variant).
func (s Suite) Fig8() (*Table, error) {
	hw := uarch.Haswell()
	t := &Table{
		Title:   "Figure 8: % extra dynamic instructions from prefetching, Haswell",
		Columns: []string{"benchmark", "% extra instructions"},
		Note:    "paper: ~70% for IS/RA, ~80% for CG, small for G500 (outer-loop prefetches only)",
	}
	ws := workloadSet(s.Q)
	b := &batch{}
	type row struct {
		plain  int
		manual []int
	}
	rows := make([]row, len(ws))
	for i, w := range ws {
		r := row{plain: b.add(w, hw, core.VariantPlain, core.Options{})}
		for _, d := range manualDepths(w) {
			r.manual = append(r.manual, b.add(w, hw, core.VariantManual, core.Options{Depth: d}))
		}
		rows[i] = r
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		base := res[rows[i].plain]
		man := bestOf(res, rows[i].manual)
		extra := 100 * (float64(man.Stats.Instructions) - float64(base.Stats.Instructions)) /
			float64(base.Stats.Instructions)
		t.AddRow(w.Name, fmt.Sprintf("%.1f", extra))
	}
	return t, nil
}

// Fig9 reproduces figure 9: normalized throughput of IS on Haswell with
// 1, 2 and 4 cores contending for DRAM, with and without prefetching.
// Throughput is (tasks/time) normalized to one task on one core without
// prefetching: N * T(1, no-pf) / T(N, variant).
func (s Suite) Fig9() (*Table, error) {
	w := workloadByName(s.Q, "IS")
	t := &Table{
		Title:   "Figure 9: IS normalized throughput vs core count, Haswell",
		Columns: []string{"cores", "no prefetching", "prefetching"},
		Note:    "paper: throughput <1 at 4 cores without prefetching; prefetching still wins",
	}
	counts := []int{1, 2, 4}
	b := &batch{}
	solo := b.add(w, uarch.Haswell(), core.VariantPlain, core.Options{})
	type row struct{ plain, pf int }
	rows := make([]row, len(counts))
	for i, n := range counts {
		cfg := uarch.WithCores(uarch.Haswell(), n)
		rows[i] = row{
			plain: b.add(w, cfg, core.VariantPlain, core.Options{}),
			pf:    b.add(w, cfg, core.VariantManual, core.Options{}),
		}
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		// One task per core: N tasks complete in one core's contended
		// time T(N), versus N*T(1,no-pf) run back to back on one core —
		// so normalized throughput is T(1,no-pf)/T(N).
		tpBase := res[solo].Cycles / res[rows[i].plain].Cycles
		tpPF := res[solo].Cycles / res[rows[i].pf].Cycles
		t.AddRow(fmt.Sprintf("%d", n), f2(tpBase), f2(tpPF))
	}
	return t, nil
}

// Fig10 reproduces figure 10: prefetching speedup with transparent huge
// pages enabled and disabled on Haswell, for the TLB-sensitive
// benchmarks IS, RA and HJ-2. Each speedup is normalized to no
// prefetching under the same page policy.
func (s Suite) Fig10() (*Table, error) {
	t := &Table{
		Title:   "Figure 10: prefetch speedup with small vs huge pages, Haswell",
		Columns: []string{"benchmark", "small pages", "huge pages"},
		Note:    "paper: huge pages shift gains but trends are consistent",
	}
	names := []string{"IS", "RA", "HJ-2"}
	cfgs := []*sim.Config{
		uarch.SmallPages(uarch.Haswell()),
		uarch.HugePages(uarch.Haswell()),
	}
	b := &batch{}
	type pair struct{ plain, pf int }
	rows := make([][]pair, len(names))
	ws := make([]*workloads.Workload, len(names))
	for i, name := range names {
		w := workloadByName(s.Q, name)
		ws[i] = w
		for _, cfg := range cfgs {
			rows[i] = append(rows[i], pair{
				plain: b.add(w, cfg, core.VariantPlain, core.Options{}),
				pf:    b.add(w, cfg, core.VariantManual, core.Options{}),
			})
		}
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	for i := range names {
		row := []string{ws[i].Name}
		for _, p := range rows[i] {
			row = append(row, f2(core.Speedup(res[p.plain], res[p.pf])))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// swhwModels is the hardware side of the software-vs-hardware
// comparison: the legacy streamer, the Markov correlator, and the
// indirect memory prefetcher (the paper's §7 hardware competitor).
var swhwModels = []string{"stride", "ghb", "imp"}

// FigSWHW is the software-vs-hardware prefetching comparison on one
// machine — the table the paper argues from but never prints: every
// benchmark under {no software prefetch, auto software prefetch} ×
// {no hardware prefetcher, stride, GHB, IMP}, as speedup over the
// fully-prefetch-free baseline (plain code, hwpf=none). The "sw only"
// column isolates the compiler pass; the per-model pairs show what
// hardware achieves alone and whether it still composes with the
// software pass on top.
func (s Suite) FigSWHW(system string) (*Table, error) {
	cfg := uarch.ByName(system)
	if cfg == nil {
		return nil, fmt.Errorf("bench: unknown system %q", system)
	}
	cols := []string{"benchmark", "sw only"}
	for _, m := range swhwModels {
		cols = append(cols, m, m+"+sw")
	}
	t := &Table{
		Title:   fmt.Sprintf("SW vs HW prefetching: speedup over no-prefetch baseline, %s (c=64)", system),
		Columns: cols,
		Note:    "paper §7: software prefetch beats hardware (incl. IMP) for indirect accesses; IMP beats stride where A[B[i]] dominates",
	}
	none := uarch.WithHWPrefetcher(cfg, "none")
	hwCfgs := make([]*sim.Config, len(swhwModels))
	for i, m := range swhwModels {
		hwCfgs[i] = uarch.WithHWPrefetcher(cfg, m)
	}

	ws := workloadSet(s.Q)
	b := &batch{}
	type row struct {
		base, sw int   // plain/auto on hwpf=none
		hw, both []int // plain/auto per hardware model
	}
	rows := make([]row, len(ws))
	for i, w := range ws {
		r := row{
			base: b.add(w, none, core.VariantPlain, core.Options{}),
			sw:   b.add(w, none, core.VariantAuto, core.Options{}),
		}
		for _, hc := range hwCfgs {
			r.hw = append(r.hw, b.add(w, hc, core.VariantPlain, core.Options{}))
			r.both = append(r.both, b.add(w, hc, core.VariantAuto, core.Options{}))
		}
		rows[i] = r
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	geo := make([][]float64, len(cols)-1)
	for i, w := range ws {
		base := res[rows[i].base]
		speeds := []float64{core.Speedup(base, res[rows[i].sw])}
		for j := range swhwModels {
			speeds = append(speeds,
				core.Speedup(base, res[rows[i].hw[j]]),
				core.Speedup(base, res[rows[i].both[j]]))
		}
		cells := []string{w.Name}
		for j, sp := range speeds {
			geo[j] = append(geo[j], sp)
			cells = append(cells, f2(sp))
		}
		t.AddRow(cells...)
	}
	grow := []string{"Geomean"}
	for _, g := range geo {
		grow = append(grow, f2(geomean(g)))
	}
	t.AddRow(grow...)
	return t, nil
}

// FigSWHWAll runs the software-vs-hardware comparison on all four
// machines.
func (s Suite) FigSWHWAll() ([]*Table, error) {
	var out []*Table
	for _, cfg := range systems() {
		t, err := s.FigSWHW(cfg.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// FigCores is the core-model sensitivity study: every benchmark's
// automatic software-prefetch speedup on Haswell's memory system under
// each CPU core timing model. The spread is the paper's central
// observation (§6) replayed along one axis: an in-order core, unable
// to overlap misses itself, gains enormously from software prefetch,
// while an out-of-order window already extracts memory-level
// parallelism and gains far less from the same code — so the in-order
// column must dominate the out-of-order ones.
func (s Suite) FigCores() (*Table, error) {
	cfg := uarch.Haswell()
	cols := []string{"benchmark"}
	cols = append(cols, sim.CoreModels()...)
	t := &Table{
		Title:   "Core models: auto-prefetch speedup by CPU timing model, Haswell memory system (c=64)",
		Columns: cols,
		Note:    "paper §6: in-order cores gain most from software prefetch; out-of-order windows already extract MLP",
	}
	coreCfgs := make([]*sim.Config, len(sim.CoreModels()))
	for i, m := range sim.CoreModels() {
		coreCfgs[i] = uarch.WithCoreModel(cfg, m)
	}

	ws := workloadSet(s.Q)
	b := &batch{}
	type pair struct{ plain, auto int }
	rows := make([][]pair, len(ws))
	for i, w := range ws {
		for _, cc := range coreCfgs {
			rows[i] = append(rows[i], pair{
				plain: b.add(w, cc, core.VariantPlain, core.Options{}),
				auto:  b.add(w, cc, core.VariantAuto, core.Options{}),
			})
		}
	}
	res, err := b.run(s.runner())
	if err != nil {
		return nil, err
	}
	geo := make([][]float64, len(coreCfgs))
	for i, w := range ws {
		cells := []string{w.Name}
		for j := range coreCfgs {
			sp := core.Speedup(res[rows[i][j].plain], res[rows[i][j].auto])
			geo[j] = append(geo[j], sp)
			cells = append(cells, f2(sp))
		}
		t.AddRow(cells...)
	}
	grow := []string{"Geomean"}
	for _, g := range geo {
		grow = append(grow, f2(geomean(g)))
	}
	t.AddRow(grow...)
	return t, nil
}

// RunAll regenerates every figure and writes the tables to out.
func (s Suite) RunAll(out io.Writer) error {
	var tables []*Table
	add := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	if err := add(s.Fig2()); err != nil {
		return err
	}
	f4, err := s.Fig4All()
	if err != nil {
		return err
	}
	tables = append(tables, f4...)
	if err := add(s.Fig5()); err != nil {
		return err
	}
	f6, err := s.Fig6All()
	if err != nil {
		return err
	}
	tables = append(tables, f6...)
	if err := add(s.Fig7()); err != nil {
		return err
	}
	if err := add(s.Fig8()); err != nil {
		return err
	}
	if err := add(s.Fig9()); err != nil {
		return err
	}
	if err := add(s.Fig10()); err != nil {
		return err
	}
	fhw, err := s.FigSWHWAll()
	if err != nil {
		return err
	}
	tables = append(tables, fhw...)
	if err := add(s.FigCores()); err != nil {
		return err
	}
	if err := add(s.FigLookahead("", "")); err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(out, t.String())
	}
	return nil
}

// The free functions below are the historical API: each runs the figure
// at the given quality with the default (GOMAXPROCS) worker pool.

// Fig2 runs figure 2 with default parallelism.
func Fig2(q Quality) (*Table, error) { return Suite{Q: q}.Fig2() }

// Fig4 runs figure 4 for one system with default parallelism.
func Fig4(q Quality, system string) (*Table, error) { return Suite{Q: q}.Fig4(system) }

// Fig4All runs figure 4 for all four systems with default parallelism.
func Fig4All(q Quality) ([]*Table, error) { return Suite{Q: q}.Fig4All() }

// Fig5 runs figure 5 with default parallelism.
func Fig5(q Quality) (*Table, error) { return Suite{Q: q}.Fig5() }

// Fig6 runs one figure 6 sweep with default parallelism.
func Fig6(q Quality, benchName string) (*Table, error) { return Suite{Q: q}.Fig6(benchName) }

// Fig6All runs figure 6 for the paper's four benchmarks with default
// parallelism.
func Fig6All(q Quality) ([]*Table, error) { return Suite{Q: q}.Fig6All() }

// Fig7 runs figure 7 with default parallelism.
func Fig7(q Quality) (*Table, error) { return Suite{Q: q}.Fig7() }

// Fig8 runs figure 8 with default parallelism.
func Fig8(q Quality) (*Table, error) { return Suite{Q: q}.Fig8() }

// Fig9 runs figure 9 with default parallelism.
func Fig9(q Quality) (*Table, error) { return Suite{Q: q}.Fig9() }

// Fig10 runs figure 10 with default parallelism.
func Fig10(q Quality) (*Table, error) { return Suite{Q: q}.Fig10() }

// FigCores runs the core-model sensitivity study with default
// parallelism.
func FigCores(q Quality) (*Table, error) { return Suite{Q: q}.FigCores() }

// RunAll regenerates every figure at the given quality with default
// parallelism and writes the tables to out.
func RunAll(q Quality, out io.Writer) error { return Suite{Q: q}.RunAll(out) }
