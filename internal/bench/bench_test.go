package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// rowByName finds a table row whose first cell matches (or prefixes).
func rowByName(t *testing.T, tbl *Table, name string) []string {
	t.Helper()
	for _, r := range tbl.Rows {
		if r[0] == name || strings.HasPrefix(r[0], name) {
			return r
		}
	}
	t.Fatalf("no row %q in %s", name, tbl.Title)
	return nil
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Note:    "a note",
	}
	tbl.AddRow("x", "1.00")
	s := tbl.String()
	for _, want := range []string{"demo", "long-column", "x", "1.00", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Stringifying twice must not corrupt the header.
	if tbl.String() != s {
		t.Error("Table.String is not idempotent")
	}
}

func TestFig2Shape(t *testing.T) {
	tbl, err := Fig2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	intuitive := parseCell(t, rowByName(t, tbl, "Intuitive")[1])
	optimal := parseCell(t, rowByName(t, tbl, "Optimal")[1])
	tooBig := parseCell(t, rowByName(t, tbl, "Offset too big")[1])
	if optimal <= 1.0 {
		t.Errorf("optimal speedup %.2f, want > 1", optimal)
	}
	if optimal < intuitive {
		t.Errorf("optimal (%.2f) must be at least intuitive (%.2f)", optimal, intuitive)
	}
	if tooBig > optimal {
		t.Errorf("too-big offset (%.2f) should not beat optimal (%.2f)", tooBig, optimal)
	}
}

// skipInShort gates the figure-regeneration tests, which each run the
// quick workload suite across several machine configurations.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure regeneration")
	}
}

func TestFig4HaswellShape(t *testing.T) {
	skipInShort(t)
	tbl, err := Fig4(Quick, "Haswell")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	g := rowByName(t, tbl, "Geomean")
	auto := parseCell(t, g[1])
	manual := parseCell(t, g[2])
	if auto <= 1.0 {
		t.Errorf("Haswell auto geomean %.2f, want > 1 (paper: 1.3)", auto)
	}
	if manual < auto*0.9 {
		t.Errorf("manual (%.2f) should be >= auto (%.2f)", manual, auto)
	}
}

func TestFig4PhiICCColumn(t *testing.T) {
	skipInShort(t)
	tbl, err := Fig4(Quick, "XeonPhi")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	if len(tbl.Columns) != 4 {
		t.Fatalf("Phi table needs the ICC column: %v", tbl.Columns)
	}
	// ICC must miss RA (hash pattern): its speedup stays ~1, below auto.
	ra := rowByName(t, tbl, "RA")
	icc := parseCell(t, ra[1])
	auto := parseCell(t, ra[2])
	if icc > auto {
		t.Errorf("ICC (%.2f) should not beat the full pass (%.2f) on RA", icc, auto)
	}
	if icc > 1.1 {
		t.Errorf("ICC speedup on RA = %.2f; the restricted pass must miss the hash pattern", icc)
	}
}

func TestFig4UnknownSystem(t *testing.T) {
	if _, err := Fig4(Quick, "M4"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	one := rowByName(t, tbl, "1")
	four := rowByName(t, tbl, "4")
	base1 := parseCell(t, one[1])
	pf1 := parseCell(t, one[2])
	base4 := parseCell(t, four[1])
	pf4 := parseCell(t, four[2])
	if base1 < 0.99 || base1 > 1.01 {
		t.Errorf("1-core baseline should normalize to 1.0, got %.2f", base1)
	}
	if pf1 <= base1 {
		t.Errorf("prefetching should win at 1 core: %.2f vs %.2f", pf1, base1)
	}
	if base4 >= base1 {
		t.Errorf("bus contention should reduce throughput: %.2f at 4 cores vs %.2f", base4, base1)
	}
	if pf4 <= base4 {
		t.Errorf("prefetching should still win at 4 cores: %.2f vs %.2f", pf4, base4)
	}
}

func TestFig10Shape(t *testing.T) {
	tbl, err := Fig10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		small := parseCell(t, r[1])
		huge := parseCell(t, r[2])
		if small <= 0 || huge <= 0 {
			t.Errorf("%s: non-positive speedups %v", r[0], r[1:])
		}
	}
}

func TestFig6QuickSingle(t *testing.T) {
	skipInShort(t)
	tbl, err := Fig6(Quick, "IS")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 systems, got %d rows", len(tbl.Rows))
	}
	if len(tbl.Rows[0]) != len(Fig6Distances)+1 {
		t.Fatalf("row width %d, want %d", len(tbl.Rows[0]), len(Fig6Distances)+1)
	}
}

func TestFig7QuickShape(t *testing.T) {
	skipInShort(t)
	tbl, err := Fig7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	// On the in-order systems deeper staggering must help beyond depth 1.
	for _, sys := range []string{"A53", "XeonPhi"} {
		r := rowByName(t, tbl, sys)
		d1 := parseCell(t, r[1])
		d3 := parseCell(t, r[3])
		if d3 < d1 {
			t.Errorf("%s: depth 3 (%.2f) should beat depth 1 (%.2f)", sys, d3, d1)
		}
	}
}

func TestFig8QuickShape(t *testing.T) {
	skipInShort(t)
	tbl, err := Fig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	is := parseCell(t, rowByName(t, tbl, "IS")[1])
	g500 := parseCell(t, rowByName(t, tbl, "G500")[1])
	if is <= 0 {
		t.Errorf("IS extra instructions = %.1f%%, want positive", is)
	}
	if g500 >= is {
		t.Errorf("G500 (%.1f%%) should add fewer instructions than IS (%.1f%%): prefetches are per-vertex, not per-edge", g500, is)
	}
}

func TestFig5QuickShape(t *testing.T) {
	skipInShort(t)
	tbl, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	g := rowByName(t, tbl, "Geomean")
	only := parseCell(t, g[1])
	both := parseCell(t, g[2])
	if both < only*0.95 {
		t.Errorf("indirect+stride (%.2f) should not lose to indirect-only (%.2f)", both, only)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	var buf bytes.Buffer
	if err := RunAll(Quick, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "SW vs HW", "Core models"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

// TestFigSWHWShape pins the software-vs-hardware comparison to the
// paper's headline relations on the in-order machines, and requires
// the figure to be deterministic across worker counts.
func TestFigSWHWShape(t *testing.T) {
	skipInShort(t)
	// Geomean-row column indices (after the benchmark name).
	const (
		colSW     = 1 // auto software prefetch, no hardware
		colStride = 2
		colGHB    = 4
		colIMP    = 6
		colIMPSW  = 7
	)
	tbl, err := Suite{Q: Quick, Jobs: 1}.FigSWHW("A53")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	for _, jobs := range []int{2, 8} {
		again, err := Suite{Q: Quick, Jobs: jobs}.FigSWHW("A53")
		if err != nil {
			t.Fatal(err)
		}
		if again.String() != tbl.String() {
			t.Fatalf("swhw figure differs between jobs=1 and jobs=%d", jobs)
		}
	}

	g := rowByName(t, tbl, "Geomean")
	sw := parseCell(t, g[colSW])
	for _, hw := range []struct {
		name string
		col  int
	}{{"stride", colStride}, {"ghb", colGHB}, {"imp", colIMP}} {
		if got := parseCell(t, g[hw.col]); got >= sw {
			t.Errorf("A53: hardware %s alone (%.2f) should not beat auto software prefetch (%.2f) on an in-order core",
				hw.name, got, sw)
		}
	}
	if best := parseCell(t, g[colIMPSW]); best < sw {
		t.Errorf("A53: IMP+software (%.2f) should compose at least as well as software alone (%.2f)", best, sw)
	}

	// IMP must beat the stride streamer on an indirect workload — the
	// A[B[i]] pattern it exists to cover (CG's a[col[j]]).
	cg := rowByName(t, tbl, "CG")
	if imp, stride := parseCell(t, cg[colIMP]), parseCell(t, cg[colStride]); imp <= stride {
		t.Errorf("CG: IMP (%.2f) should beat the stride streamer (%.2f)", imp, stride)
	}
}

// TestFigCoresShape pins the core-model sensitivity study to the
// paper's central observation: an in-order core, unable to overlap
// misses itself, gains far more from software prefetch than an
// out-of-order window that already extracts memory-level parallelism.
// The figure must also be deterministic across worker counts.
func TestFigCoresShape(t *testing.T) {
	skipInShort(t)
	// Column indices follow sim.CoreModels() order after the name.
	const (
		colInterval = 1
		colOoO      = 2
		colInOrder  = 3
	)
	tbl, err := Suite{Q: Quick, Jobs: 1}.FigCores()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	for _, jobs := range []int{2, 8} {
		again, err := Suite{Q: Quick, Jobs: jobs}.FigCores()
		if err != nil {
			t.Fatal(err)
		}
		if again.String() != tbl.String() {
			t.Fatalf("cores figure differs between jobs=1 and jobs=%d", jobs)
		}
	}

	g := rowByName(t, tbl, "Geomean")
	interval := parseCell(t, g[colInterval])
	ooo := parseCell(t, g[colOoO])
	inorder := parseCell(t, g[colInOrder])
	if inorder <= ooo*1.2 {
		t.Errorf("in-order geomean speedup (%.2f) should dominate out-of-order (%.2f)", inorder, ooo)
	}
	if inorder <= interval {
		t.Errorf("in-order geomean speedup (%.2f) should exceed the interval model's (%.2f)", inorder, interval)
	}
	// The stride benchmark is where the gap is starkest: the OoO window
	// overlaps its independent misses with no help at all.
	is := rowByName(t, tbl, "IS")
	if in, oo := parseCell(t, is[colInOrder]), parseCell(t, is[colOoO]); in <= oo*2 {
		t.Errorf("IS: in-order speedup (%.2f) should be a multiple of out-of-order (%.2f)", in, oo)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{-1, 0}); g != 0 {
		t.Errorf("geomean of non-positives = %v", g)
	}
}

func TestWorkloadByName(t *testing.T) {
	if workloadByName(Quick, "HJ-8") == nil {
		t.Error("HJ-8 not found")
	}
	if workloadByName(Quick, "nope") != nil {
		t.Error("bogus name resolved")
	}
}

func TestTableCSVAndMarkdown(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow("x,y", "1.00")
	tbl.AddRow("plain", "2.00")
	csv := tbl.CSV()
	if !strings.Contains(csv, "\"x,y\",1.00") {
		t.Errorf("CSV escaping wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown format wrong:\n%s", md)
	}
}

// TestLookaheadSensitivityShape pins the tuner-built look-ahead figure
// to the paper's qualitative shape on the indirect-heavy workloads:
// the tuned optimum c* strictly beats both the smallest and the
// largest look-ahead (too small arrives late, too big evicts early),
// on both an in-order (A53) and an out-of-order (Haswell) machine.
// The figure must also be byte-identical for any worker count.
func TestLookaheadSensitivityShape(t *testing.T) {
	skipInShort(t)
	tbl, err := Suite{Q: Quick, Jobs: 1}.FigLookahead("IS,RA", "A53,Haswell")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	for _, jobs := range []int{2, 8} {
		again, err := Suite{Q: Quick, Jobs: jobs}.FigLookahead("IS,RA", "A53,Haswell")
		if err != nil {
			t.Fatal(err)
		}
		if again.String() != tbl.String() {
			t.Fatalf("lookahead figure differs between jobs=1 and jobs=%d", jobs)
		}
	}

	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 workload x system rows, got %d", len(tbl.Rows))
	}
	last := len(tbl.Columns) - 1 // "best" speedup; last-1 is "best c"
	for _, r := range tbl.Rows {
		name := r[0] + "/" + r[1]
		smallest := parseCell(t, r[2])
		largest := parseCell(t, r[last-2])
		best := parseCell(t, r[last])
		if !(best > smallest && best > largest) {
			t.Errorf("%s: optimum %.2f not strictly above endpoints %.2f / %.2f",
				name, best, smallest, largest)
		}
		bestC := parseCell(t, r[last-1])
		if bestC <= 1 || bestC >= 1024 {
			t.Errorf("%s: best c = %v is not interior to the ladder", name, bestC)
		}
	}
}
