package hwpf

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// cfg64 is the test configuration: 64-byte lines, degree 4, conf 2 —
// the Haswell-style streamer settings.
var cfg64 = Config{LineShift: 6, Degree: 4, Conf: 2, Streams: 16}

func TestRegistry(t *testing.T) {
	if got := Names(); len(got) != 5 || got[0] != NameNone {
		t.Fatalf("Names() = %v", got)
	}
	for _, name := range Names() {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
		if Describe(name) == "" {
			t.Errorf("Describe(%q) empty", name)
		}
		p, err := New(name, cfg64)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
		if name == NameNone {
			if p != nil {
				t.Error("New(none) should return a nil prefetcher")
			}
			continue
		}
		if p == nil || p.Name() != name {
			t.Errorf("New(%q) = %v", name, p)
		}
	}
	if Known("bogus") {
		t.Error("Known(bogus) = true")
	}
	if _, err := New("bogus", cfg64); err == nil {
		t.Error("New(bogus) accepted")
	}
}

// observe runs one access through a model and returns the candidates.
func observe(p Prefetcher, pc int, addr int64, miss bool) []int64 {
	return p.Observe(pc, addr, miss, nil)
}

func TestStrideSequentialStream(t *testing.T) {
	p := NewStride(cfg64)
	base := int64(1 << 20)
	var got []int64
	for i := int64(0); i < 4; i++ {
		got = observe(p, 1, base+i*64, true)
	}
	// After conf reaches 2 the streamer runs degree lines ahead.
	want := []int64{base + 4*64, base + 5*64, base + 6*64, base + 7*64}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("candidates = %#x, want %#x", got, want)
	}
	// Same-line re-access carries no information.
	if got := observe(p, 1, base+3*64+8, true); len(got) != 0 {
		t.Errorf("same-line access emitted %#x", got)
	}
}

func TestStridePageBoundary(t *testing.T) {
	p := NewStride(cfg64)
	// Train right below a 4KiB boundary: candidates must stop at it.
	base := int64(4096 - 4*64)
	var got []int64
	for i := int64(0); i < 3; i++ {
		got = observe(p, 1, base+i*64, true)
	}
	want := []int64{4096 - 64} // one line left in the page
	if !reflect.DeepEqual(got, want) {
		t.Errorf("candidates = %#x, want %#x", got, want)
	}
	// The last line of the page emits nothing at all.
	if got := observe(p, 1, 4096-64, true); len(got) != 0 {
		t.Errorf("page-boundary access emitted %#x", got)
	}
}

func TestStrideTrackerEviction(t *testing.T) {
	cfg := cfg64
	cfg.Streams = 2
	p := NewStride(cfg)
	// Two regions train; touching a third evicts the LRU one, so its
	// region must retrain from scratch.
	for i := int64(0); i < 4; i++ {
		observe(p, 1, 0<<12|i*64, true)
		observe(p, 1, 8<<12|i*64+i*64, true) // different region
	}
	observe(p, 1, 16<<12, true) // allocates, evicting region 0
	if got := observe(p, 1, 4*64, true); len(got) != 0 {
		t.Errorf("evicted region kept its stride state: %#x", got)
	}
}

// TestStrideResetBitIdentical drives a mixed stream, resets, and
// replays: the candidate sequences must match a fresh model exactly,
// and the tracker array must be reused, not reallocated.
func TestStrideResetBitIdentical(t *testing.T) {
	drive := func(p *Stride) [][]int64 {
		var out [][]int64
		r := uint64(7)
		for i := 0; i < 4000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			addr := int64(r % (1 << 24))
			out = append(out, append([]int64(nil), p.Observe(3, addr, true, nil)...))
			out = append(out, append([]int64(nil), p.Observe(4, int64(i)*64, false, nil)...))
		}
		return out
	}
	p := NewStride(cfg64)
	first := drive(p)
	arr := &p.entries[0]
	p.Reset()
	if &p.entries[0] != arr {
		t.Fatal("Reset reallocated the tracker array")
	}
	second := drive(p)
	fresh := drive(NewStride(cfg64))
	if !reflect.DeepEqual(first, second) {
		t.Error("reset model diverged from its own first run")
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Error("reset model diverged from a fresh model")
	}
}

func TestNextLine(t *testing.T) {
	p := NewNextLine(Config{LineShift: 6, Degree: 2})
	if got := observe(p, 1, 1<<20, false); len(got) != 0 {
		t.Errorf("hit emitted %#x", got)
	}
	want := []int64{1<<20 + 64, 1<<20 + 128}
	if got := observe(p, 1, 1<<20, true); !reflect.DeepEqual(got, want) {
		t.Errorf("miss candidates = %#x, want %#x", got, want)
	}
	// Last line of a page: nothing to fetch.
	if got := observe(p, 1, 4096-64, true); len(got) != 0 {
		t.Errorf("page-boundary miss emitted %#x", got)
	}
}

func TestGHBReplaysHistory(t *testing.T) {
	p := NewGHB(cfg64)
	seq := []int64{0x10000, 0x40000, 0x20000, 0x80000}
	for _, a := range seq {
		if got := observe(p, 1, a, true); len(got) != 0 {
			t.Errorf("first pass emitted %#x", got)
		}
	}
	// Revisiting the first miss replays its recorded successors.
	got := observe(p, 1, seq[0], true)
	want := []int64{seq[1], seq[2], seq[3]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay = %#x, want %#x", got, want)
	}
	// Hits train nothing.
	if got := observe(p, 1, seq[1], false); len(got) != 0 {
		t.Errorf("hit emitted %#x", got)
	}
	p.Reset()
	if got := observe(p, 1, seq[0], true); len(got) != 0 {
		t.Errorf("reset model still correlates: %#x", got)
	}
}

// TestGHBIndexBounded: the line→position index must evict with the
// history, not grow with the footprint — a sweep worker keeps one
// model alive across many full-size runs.
func TestGHBIndexBounded(t *testing.T) {
	p := NewGHB(cfg64)
	for i := int64(0); i < 100*ghbHistory; i++ {
		p.Observe(1, i*64, true, nil) // every miss a new line
	}
	if len(p.index) > ghbHistory {
		t.Fatalf("index holds %d entries, want <= %d", len(p.index), ghbHistory)
	}
	// Eviction must not break live correlations: a fresh repeating
	// pair still replays.
	p.Observe(1, 1<<30, true, nil)
	p.Observe(1, 1<<31, true, nil)
	if got := p.Observe(1, 1<<30, true, nil); len(got) == 0 || got[0] != 1<<31 {
		t.Errorf("replay after heavy eviction = %#x, want [%#x]", got, int64(1<<31))
	}
}

// impMemory is a fake address space for IMP tests: a little-endian
// index array B of 4-byte elements at idxBase.
type impMemory struct {
	idxBase int64
	b       []byte
}

func newIMPMemory(idxBase int64, vals []int64) *impMemory {
	m := &impMemory{idxBase: idxBase, b: make([]byte, 4*len(vals))}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(m.b[4*i:], uint32(v))
	}
	return m
}

func (m *impMemory) peek(addr, width int64) (int64, bool) {
	off := addr - m.idxBase
	if off < 0 || off+width > int64(len(m.b)) || width != 4 {
		return 0, false
	}
	return int64(int32(binary.LittleEndian.Uint32(m.b[off:]))), true
}

// TestIMPDetectsIndirection drives the A[B[i]] shape the model exists
// for: a 4-byte index stream at one site and data-dependent misses at
// another, with addr = arrBase + 8*B[i]. After pairing and
// verification IMP must prefetch the target of the index value
// impDistance elements ahead.
func TestIMPDetectsIndirection(t *testing.T) {
	const (
		idxBase = int64(1 << 20)
		arrBase = int64(1 << 28)
		coeff   = int64(8)
		n       = 64
	)
	vals := make([]int64, n)
	r := uint64(99)
	for i := range vals {
		r = r*6364136223846793005 + 1442695040888963407
		vals[i] = int64(r % 4096)
	}
	mem := newIMPMemory(idxBase, vals)
	p := NewIMP(cfg64)
	p.SetPeek(mem.peek)

	sawTarget := false
	for i := 0; i < n-impDistance; i++ {
		idxAddr := idxBase + 4*int64(i)
		cands := observe(p, 1, idxAddr, false)
		target := arrBase + coeff*vals[i+impDistance]
		for _, c := range cands {
			if c == target {
				sawTarget = true
			}
		}
		observe(p, 2, arrBase+coeff*vals[i], true)
	}
	if !sawTarget {
		t.Fatal("IMP never prefetched the verified indirect target")
	}

	// Reset restores the cold state (no verified pattern) but keeps
	// the peek hook wired.
	p.Reset()
	cands := observe(p, 1, idxBase, false)
	if len(cands) != 0 {
		t.Errorf("cold model emitted %#x", cands)
	}
	if p.peek == nil {
		t.Error("Reset dropped the peek hook")
	}
}

// TestIMPIgnoresNonAffineMisses: misses unrelated to any index value
// (a hash-join-style pattern) must never verify.
func TestIMPIgnoresNonAffineMisses(t *testing.T) {
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	mem := newIMPMemory(1<<20, vals)
	p := NewIMP(cfg64)
	p.SetPeek(mem.peek)
	r := uint64(5)
	for i := 0; i < 60; i++ {
		observe(p, 1, 1<<20+4*int64(i), false)
		r = r*6364136223846793005 + 1442695040888963407
		observe(p, 2, int64(1<<28)+int64(r%(1<<20))*64, true) // uncorrelated
	}
	for i := range p.assocs {
		if p.assocs[i].live && p.assocs[i].ok {
			t.Fatal("IMP verified a non-affine pattern")
		}
	}
}

// TestIMPWithoutPeekFallsBackToStride: no peek hook means the indirect
// engine stays dormant but the embedded stream engine still covers
// sequential traffic.
func TestIMPWithoutPeekFallsBackToStride(t *testing.T) {
	p := NewIMP(cfg64)
	base := int64(1 << 20)
	var got []int64
	for i := int64(0); i < 4; i++ {
		got = observe(p, 1, base+i*64, true)
	}
	want := []int64{base + 4*64, base + 5*64, base + 6*64, base + 7*64}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stride fallback = %#x, want %#x", got, want)
	}
}

// TestObserveDoesNotRetainBuffer: models must append to the caller's
// buffer, never keep it — the hierarchy truncates and rewrites one
// buffer per demand load, so a model that stashes the slice would see
// its view corrupted. The test poisons the returned backing array
// after every call and requires the candidate stream to match a twin
// model fed fresh buffers.
func TestObserveDoesNotRetainBuffer(t *testing.T) {
	for _, name := range []string{NameStride, NameNextLine, NameGHB, NameIMP} {
		p, _ := New(name, cfg64)
		twin, _ := New(name, cfg64)
		buf := make([]int64, 0, 8)
		r := uint64(13)
		for i := int64(0); i < 4000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			addr := (1 << 20) + int64(r%(1<<22))
			if i%3 == 0 {
				addr = (1 << 20) + i*64 // interleave a clean stream
			}
			got := p.Observe(1, addr, true, buf[:0])
			want := twin.Observe(1, addr, true, nil)
			if len(got) != len(want) {
				t.Fatalf("%s step %d: %d candidates with reused buffer, %d with fresh", name, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s step %d: candidate %d = %#x, want %#x", name, i, j, got[j], want[j])
				}
				if got[j] < 0 {
					t.Errorf("%s emitted negative address %#x", name, got[j])
				}
			}
			// Poison the shared backing array: a model that retained
			// the slice now reads garbage and diverges from its twin.
			buf = got[:0]
			for j := range got {
				got[j] = -0x5bd1e995
			}
		}
	}
}
