package hwpf

import (
	"testing"
)

// benchDrive feeds a model a deterministic mix of one sequential
// stream and random misses — the traffic shape of the irregular
// workloads — reusing one candidate buffer like the hierarchy does.
func benchDrive(b *testing.B, p Prefetcher) {
	b.ReportAllocs()
	var buf []int64
	r := uint64(1)
	for i := 0; i < b.N; i++ {
		buf = p.Observe(1, int64(i%4096)*64, false, buf[:0])
		r = r*6364136223846793005 + 1442695040888963407
		buf = p.Observe(2, int64(r%(1<<26)), true, buf[:0])
	}
	_ = buf
}

// BenchmarkStrideObserve measures the ported region streamer — the
// model on the hot path of every default machine configuration.
func BenchmarkStrideObserve(b *testing.B) { benchDrive(b, NewStride(cfg64)) }

// BenchmarkNextLineObserve measures the stateless next-line fetcher.
func BenchmarkNextLineObserve(b *testing.B) { benchDrive(b, NewNextLine(cfg64)) }

// BenchmarkGHBObserve measures the Markov correlator's history upkeep.
func BenchmarkGHBObserve(b *testing.B) { benchDrive(b, NewGHB(cfg64)) }

// BenchmarkIMPObserve measures the indirect prefetcher with a live
// peek hook, including the pattern-detector path on every miss.
func BenchmarkIMPObserve(b *testing.B) {
	p := NewIMP(cfg64)
	p.SetPeek(func(addr, width int64) (int64, bool) { return addr ^ 0x5bd1e995, true })
	benchDrive(b, p)
}
