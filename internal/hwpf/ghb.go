package hwpf

// GHB is a global-history-buffer prefetcher in the address-correlating
// (Markov) style of Nesbit & Smith: misses are appended to a circular
// global history, entries for the same miss line are chained, and a
// recurring miss prefetches the lines that followed it in earlier
// visits. It captures repeated pointer chases and short repeated
// traversals, and — unlike the stride streamer — can follow patterns
// across page boundaries, because the correlation is learned per line,
// not per region. On the first pass over a large irregular dataset it
// has nothing to replay, which is why the paper's §7 dismisses
// history-based hardware for the workloads software prefetching
// targets.
type GHB struct {
	cfg    Config
	degree int

	// buf is the circular history; positions are absolute (monotonic),
	// so a chain link is stale exactly when it has fallen out of the
	// window. index maps a miss line to the absolute position of its
	// most recent occurrence.
	buf   []ghbEntry
	index map[int64]int
	n     int // absolute position of the next append
}

type ghbEntry struct {
	line int64
	prev int // absolute position of the previous occurrence; -1 = none
}

// ghbHistory is the history depth: how many misses the buffer retains.
// 256 matches the small SRAM budgets of the hardware proposals this
// models.
const ghbHistory = 256

// ghbWidth is how many prior occurrences of a miss line are replayed.
const ghbWidth = 2

// NewGHB builds the prefetcher; Degree (clamped to at least 1) bounds
// the candidates emitted per miss.
func NewGHB(cfg Config) *GHB {
	return &GHB{
		cfg:    cfg,
		degree: cfg.degreeAtLeast1(),
		buf:    make([]ghbEntry, ghbHistory),
		index:  make(map[int64]int, ghbHistory),
	}
}

// Name implements Prefetcher.
func (p *GHB) Name() string { return NameGHB }

// valid reports whether an absolute position is still in the window.
func (p *GHB) valid(pos int) bool { return pos >= 0 && pos >= p.n-ghbHistory && pos < p.n }

// Observe appends each miss to the history and emits the successors of
// the line's most recent prior occurrences, nearest-first.
func (p *GHB) Observe(pc int, addr int64, miss bool, out []int64) []int64 {
	_ = pc
	if !miss {
		return out
	}
	line := addr >> p.cfg.LineShift

	prev := -1
	if pos, ok := p.index[line]; ok && p.valid(pos) && p.buf[pos%ghbHistory].line == line {
		prev = pos
	}

	// Replay: walk the chain of prior occurrences, emitting the misses
	// that followed each one, until degree candidates are gathered.
	pos := prev
	for w := 0; w < ghbWidth && p.valid(pos) && len(out) < p.degree; w++ {
		for s := pos + 1; s < p.n && s <= pos+p.degree && len(out) < p.degree; s++ {
			if !p.valid(s) {
				break
			}
			succ := p.buf[s%ghbHistory].line
			if succ != line {
				out = append(out, succ<<p.cfg.LineShift)
			}
		}
		next := p.buf[pos%ghbHistory].prev
		if !p.valid(next) || p.buf[next%ghbHistory].line != line {
			break
		}
		pos = next
	}

	// Evict the index entry of the occurrence this append overwrites,
	// keeping the map bounded at the history depth. Behaviourally a
	// no-op: an entry pointing at an aged-out position already failed
	// the valid() check.
	slot := p.n % ghbHistory
	if p.n >= ghbHistory {
		old := p.buf[slot]
		if pos, ok := p.index[old.line]; ok && pos == p.n-ghbHistory {
			delete(p.index, old.line)
		}
	}
	p.buf[slot] = ghbEntry{line: line, prev: prev}
	p.index[line] = p.n
	p.n++
	return out
}

// Reset restores the cold state, keeping the history buffer and the
// index's bucket storage.
func (p *GHB) Reset() {
	clear(p.index)
	p.n = 0
}
