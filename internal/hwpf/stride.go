package hwpf

// Stride is the region-based stride streamer that used to be
// hard-wired into sim.Hierarchy: a limited set of per-4KiB-region
// stream trackers, LRU-replaced. Random access patterns allocate and
// evict trackers constantly, starving concurrent sequential streams of
// coverage — the behaviour of real region-based streamers that makes
// software stride prefetches profitable next to indirect accesses
// (paper §3, figures 2 and 5).
//
// The port is a pure refactor: for any observation stream the
// candidate stream is bit-identical to the old trainStride code, which
// cmd/golden dumps pin (see docs/hwpf.md).
type Stride struct {
	cfg     Config
	entries []strideEntry
	live    int
	stamp   uint64
}

type strideEntry struct {
	region   int64
	lastLine int64
	stride   int64
	conf     int
	used     uint64 // LRU stamp
	live     bool
}

// NewStride builds the streamer with Streams trackers (default 16).
func NewStride(cfg Config) *Stride {
	return &Stride{cfg: cfg, entries: make([]strideEntry, cfg.streams())}
}

// Name implements Prefetcher.
func (p *Stride) Name() string { return NameStride }

// Observe trains the tracker for the access's 4KiB region and, once
// the stride is confident, emits Degree lines ahead. Like real stream
// prefetchers it never crosses a 4KiB boundary, so a sequential stream
// still pays page-crossing misses — the headroom software stride
// prefetches exploit (figure 5). pc and miss are ignored: the streamer
// trains on every demand access, keyed by region alone.
func (p *Stride) Observe(pc int, addr int64, miss bool, out []int64) []int64 {
	_, _ = pc, miss
	line := addr >> p.cfg.LineShift
	region := addr >> 12
	p.stamp++
	var e *strideEntry
	for i := range p.entries {
		if p.entries[i].live && p.entries[i].region == region {
			e = &p.entries[i]
			break
		}
	}
	if e == nil {
		slot := -1
		if p.live >= len(p.entries) {
			// Evict the LRU tracker (stamps are unique, so the victim is
			// exactly the least recently touched region).
			slot = 0
			for i := 1; i < len(p.entries); i++ {
				if p.entries[i].used < p.entries[slot].used {
					slot = i
				}
			}
		} else {
			for i := range p.entries {
				if !p.entries[i].live {
					slot = i
					break
				}
			}
			p.live++
		}
		p.entries[slot] = strideEntry{region: region, lastLine: line, used: p.stamp, live: true}
		return out
	}
	e.used = p.stamp
	d := line - e.lastLine
	if d == 0 {
		return out // same line; no information
	}
	if d == e.stride {
		if e.conf < 16 {
			e.conf++
		}
	} else {
		e.stride = d
		e.conf = 1
	}
	e.lastLine = line
	if e.conf >= p.cfg.Conf && e.stride != 0 {
		for k := 1; k <= p.cfg.Degree; k++ {
			next := (line + int64(k)*e.stride) << p.cfg.LineShift
			if next < 0 {
				break
			}
			// Real stream prefetchers do not cross 4KiB boundaries.
			if next>>12 != addr>>12 {
				break
			}
			out = append(out, next)
		}
	}
	return out
}

// Reset restores the cold state, keeping the tracker array.
func (p *Stride) Reset() {
	clear(p.entries)
	p.live = 0
	p.stamp = 0
}
