package hwpf

// NextLine is the simplest hardware design: on a demand miss, fetch
// the next Degree lines of the same page. It needs no training state,
// so it reacts instantly — and pollutes instantly on irregular
// traffic, which is exactly the trade-off the stride streamer's
// confidence counters exist to avoid. It is the conventional baseline
// of the paper's related-work comparison (§7).
type NextLine struct {
	cfg    Config
	degree int
}

// NewNextLine builds the fetcher; Degree is clamped to at least 1.
func NewNextLine(cfg Config) *NextLine {
	return &NextLine{cfg: cfg, degree: cfg.degreeAtLeast1()}
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return NameNextLine }

// Observe emits the next Degree lines on a miss, stopping at the 4KiB
// boundary like every physically-addressed hardware fetcher here.
func (p *NextLine) Observe(pc int, addr int64, miss bool, out []int64) []int64 {
	_ = pc
	if !miss {
		return out
	}
	line := addr >> p.cfg.LineShift
	for k := 1; k <= p.degree; k++ {
		next := (line + int64(k)) << p.cfg.LineShift
		if next < 0 || next>>12 != addr>>12 {
			break
		}
		out = append(out, next)
	}
	return out
}

// Reset implements Prefetcher; the fetcher is stateless.
func (p *NextLine) Reset() {}
