package hwpf

// IMP models an Indirect Memory Prefetcher in the style of Yu et al.
// (MICRO 2015), the hardware design the source paper's §7 names as its
// closest competitor. Real IMP sits on top of a stream prefetcher: a
// per-PC stride table finds "index streams" (sequential loads of
// B[i]), an Indirect Pattern Detector correlates recent index *values*
// with the miss addresses of another load site to solve
//
//	addr = base + coeff * B[i]
//
// for small power-of-two coefficients, and a verified pattern then
// prefetches A[B[i+Δ]] by reading B[i+Δ] out of index cache lines the
// stream engine fetched ahead.
//
// This model reproduces that pipeline against the simulator's
// observation stream. Reading index values uses the PeekFunc installed
// by the interpreter — the stand-in for hardware's ability to inspect
// lines it has already fetched (see docs/hwpf.md for the idealisations
// involved). Without a peek hook the indirect engine stays dormant and
// only the embedded stride component runs.
type IMP struct {
	cfg    Config
	degree int
	conf   int
	peek   PeekFunc

	// Per-PC stride trackers: the stream table. Confident entries with
	// an element-sized stride are index-stream candidates.
	streams []impStream
	live    int
	stamp   uint64

	// Indirect-pattern table, keyed by the indirect load site.
	assocs []impAssoc

	// Ring of the most recent confident index-stream observations,
	// the pairing window of the pattern detector.
	ring    [impRing]impIdxEvent
	ringPos int
}

type impStream struct {
	pc       int
	lastAddr int64
	stride   int64
	conf     int
	used     uint64
	live     bool
}

type impAssoc struct {
	pc    int // indirect load site
	idxPC int // paired index-stream site
	coeff int64
	base  int64
	hits  int
	ok    bool // verified

	// Pending first (index value, address) pair while unverified.
	havePair bool
	v0, a0   int64

	// tries cycles the ring when pairing fails, so the detector
	// eventually tests every candidate index stream deterministically.
	tries int

	used uint64
	live bool
}

type impIdxEvent struct {
	pc   int
	val  int64
	live bool
}

const (
	// impRing is the pattern detector's pairing window.
	impRing = 4
	// impAssocs bounds the indirect-pattern table.
	impAssocs = 8
	// impDistance is the lookahead in index elements: how far ahead of
	// the demand stream verified patterns prefetch. Fixed in hardware
	// (Yu et al. use a small counter per stream); well below the
	// software pass's c=64 look-ahead.
	impDistance = 16
	// impCoeffs are the plausible bytes-per-index-unit shifts the
	// detector solves for — scalar element sizes.
	impCoeffs = "\x01\x02\x04\x08"
)

// NewIMP builds the prefetcher. Degree (clamped to at least 1) sizes
// the embedded stride engine; Conf gates both stride confidence and
// indirect-pattern verification; Streams bounds the stream table.
func NewIMP(cfg Config) *IMP {
	c := cfg.Conf
	if c < 1 {
		c = 1
	}
	return &IMP{
		cfg:     cfg,
		degree:  cfg.degreeAtLeast1(),
		conf:    c,
		streams: make([]impStream, cfg.streams()),
		assocs:  make([]impAssoc, impAssocs),
	}
}

// Name implements Prefetcher.
func (p *IMP) Name() string { return NameIMP }

// SetPeek installs the simulated-memory reader (PeekSetter).
func (p *IMP) SetPeek(f PeekFunc) { p.peek = f }

// elemWidth reports whether stride is a plausible element size and
// returns it.
func elemWidth(stride int64) (int64, bool) {
	w := stride
	if w < 0 {
		w = -w
	}
	switch w {
	case 1, 2, 4, 8:
		return w, true
	}
	return 0, false
}

// Observe drives all three engines: stream tracking, indirect-pattern
// detection (on misses), and candidate generation.
func (p *IMP) Observe(pc int, addr int64, miss bool, out []int64) []int64 {
	e := p.stream(pc, addr)
	confident := false
	if e.used != p.stamp { // existing entry, not just allocated
		d := addr - e.lastAddr
		if d != 0 {
			if d == e.stride {
				if e.conf < 16 {
					e.conf++
				}
			} else {
				e.stride = d
				e.conf = 1
			}
			e.lastAddr = addr
		}
		confident = e.conf >= p.conf && e.stride != 0
	}
	e.used = p.stamp

	if confident {
		if w, ok := elemWidth(e.stride); ok && p.peek != nil {
			// An index-stream observation: record the value for the
			// pattern detector and generate for verified patterns.
			if v, ok := p.peek(addr, w); ok {
				p.ringPos = (p.ringPos + 1) % impRing
				p.ring[p.ringPos] = impIdxEvent{pc: pc, val: v, live: true}
			}
			out = p.generate(pc, addr, e.stride, w, out)
		}
		out = p.strideCandidates(addr, e.stride, out)
		return out
	}

	if miss {
		out = p.detect(pc, addr, out)
	}
	return out
}

// stream returns the tracker for pc, allocating (LRU) if needed. A
// freshly allocated entry records the allocating address as lastAddr
// (so the next observation trains on the true delta) and has
// used == p.stamp, which Observe uses to skip training on the
// allocation itself.
func (p *IMP) stream(pc int, addr int64) *impStream {
	p.stamp++
	for i := range p.streams {
		if p.streams[i].live && p.streams[i].pc == pc {
			return &p.streams[i]
		}
	}
	slot := -1
	if p.live >= len(p.streams) {
		slot = 0
		for i := 1; i < len(p.streams); i++ {
			if p.streams[i].used < p.streams[slot].used {
				slot = i
			}
		}
	} else {
		for i := range p.streams {
			if !p.streams[i].live {
				slot = i
				break
			}
		}
		p.live++
	}
	p.streams[slot] = impStream{pc: pc, lastAddr: addr, used: p.stamp, live: true}
	return &p.streams[slot]
}

// strideCandidates is the embedded stream engine: like the region
// streamer it advances whole lines and stops at 4KiB boundaries.
func (p *IMP) strideCandidates(addr, stride int64, out []int64) []int64 {
	line := addr >> p.cfg.LineShift
	lineStep := stride >> p.cfg.LineShift
	if lineStep == 0 {
		if stride > 0 {
			lineStep = 1
		} else {
			lineStep = -1
		}
	}
	for k := 1; k <= p.degree; k++ {
		next := (line + int64(k)*lineStep) << p.cfg.LineShift
		if next < 0 || next>>12 != addr>>12 {
			break
		}
		out = append(out, next)
	}
	return out
}

// generate emits prefetches for every verified pattern fed by this
// index stream: the indirect target of the index value Δ elements
// ahead, plus the index line that far ahead (hardware fetches it to
// read the value from; here it warms the stream for later iterations).
func (p *IMP) generate(pc int, addr, stride, width int64, out []int64) []int64 {
	ahead := addr + impDistance*stride
	for i := range p.assocs {
		a := &p.assocs[i]
		if !a.live || !a.ok || a.idxPC != pc {
			continue
		}
		if v, ok := p.peek(ahead, width); ok {
			if target := a.base + a.coeff*v; target >= 0 {
				out = append(out, target)
			}
		}
	}
	if ahead >= 0 && ahead>>12 == addr>>12 {
		out = append(out, (ahead>>p.cfg.LineShift)<<p.cfg.LineShift)
	}
	return out
}

// detect is the Indirect Pattern Detector: it pairs a missing load
// site with recent index values and solves addr = base + coeff*value
// across two pairs, verifying on the following misses.
func (p *IMP) detect(pc int, addr int64, out []int64) []int64 {
	if p.peek == nil {
		return out
	}
	a := p.assoc(pc)

	if a.ok {
		// Verified: check the prediction still holds for this miss's
		// index value; a mismatch sends the pattern back to pairing.
		if ev, ok := p.ringFind(a.idxPC); ok {
			if addr != a.base+a.coeff*ev.val {
				if a.hits > 0 {
					a.hits--
				} else {
					a.ok = false
					a.havePair = false
				}
			} else if a.hits < 16 {
				a.hits++
			}
		}
		return out
	}

	if a.havePair {
		if ev, ok := p.ringFind(a.idxPC); ok {
			for i := 0; i < len(impCoeffs); i++ {
				coeff := int64(impCoeffs[i])
				if ev.val != a.v0 && addr-coeff*ev.val == a.a0-coeff*a.v0 {
					a.coeff = coeff
					a.base = a.a0 - coeff*a.v0
					a.hits++
					if a.hits >= p.conf {
						a.ok = true
					} else {
						a.v0, a.a0 = ev.val, addr
					}
					return out
				}
			}
		}
		// No coefficient works against this index stream; fall through
		// and re-pair with the next ring candidate.
		a.havePair = false
		a.hits = 0
	}

	// Start (or restart) pairing: cycle deterministically through the
	// ring so every candidate index stream eventually gets tested.
	for try := 0; try < impRing; try++ {
		ev := p.ring[(p.ringPos+impRing-(a.tries%impRing))%impRing]
		a.tries++
		if ev.live && ev.pc != pc {
			a.idxPC = ev.pc
			a.v0, a.a0 = ev.val, addr
			a.havePair = true
			break
		}
	}
	return out
}

// ringFind returns the most recent index event for the given site.
func (p *IMP) ringFind(pc int) (impIdxEvent, bool) {
	for i := 0; i < impRing; i++ {
		ev := p.ring[(p.ringPos+impRing-i)%impRing]
		if ev.live && ev.pc == pc {
			return ev, true
		}
	}
	return impIdxEvent{}, false
}

// assoc returns the pattern entry for an indirect site, allocating
// (LRU by recency of touch) if needed.
func (p *IMP) assoc(pc int) *impAssoc {
	for i := range p.assocs {
		if p.assocs[i].live && p.assocs[i].pc == pc {
			p.assocs[i].used = p.stamp
			return &p.assocs[i]
		}
	}
	slot := 0
	for i := range p.assocs {
		if !p.assocs[i].live {
			slot = i
			break
		}
		if p.assocs[i].used < p.assocs[slot].used {
			slot = i
		}
	}
	p.assocs[slot] = impAssoc{pc: pc, used: p.stamp, live: true}
	return &p.assocs[slot]
}

// Reset restores the cold state, keeping every table's storage. The
// peek hook survives: it is per-machine wiring, not run state.
func (p *IMP) Reset() {
	clear(p.streams)
	p.live = 0
	p.stamp = 0
	clear(p.assocs[:])
	p.ring = [impRing]impIdxEvent{}
	p.ringPos = 0
}
