// Package hwpf provides pluggable hardware-prefetcher models for the
// memory hierarchy of internal/sim. A model watches the demand-access
// stream (program counter, address, hit/miss) and proposes candidate
// addresses to fetch; the hierarchy owns everything microarchitectural
// about acting on a candidate — the cache-presence filter, the fill
// level, TLB translation, MSHR and bus arbitration.
//
// The split exists because the source paper's central claim is
// comparative: software prefetching for indirect memory accesses beats
// what hardware prefetchers achieve on real machines (Ainsworth &
// Jones, CGO 2017, §2 and §7). Making the hardware side a pluggable
// axis lets the experiment grid cross software-prefetch variants with
// hardware designs — the region-based stride streamer the simulator
// always had, a next-line fetcher, a GHB/Markov correlator, and an
// indirect-memory-prefetcher (IMP) model in the style of Yu et al.
// (MICRO 2015), the paper's strongest hardware comparison point.
//
// Models are deterministic, single-threaded, and reset in place so a
// sweep worker recycles their storage across runs (the PR-1 contract
// every sim table follows). See docs/hwpf.md for the model
// descriptions and the exact interface contract.
package hwpf

import "fmt"

// Prefetcher is one hardware-prefetcher model. Implementations must be
// deterministic: candidate addresses may depend only on the observation
// stream (and, for peeking models, on simulated memory contents).
type Prefetcher interface {
	// Name returns the registry name of the model.
	Name() string

	// Observe presents one demand access: the load site pc, the
	// accessed address, and whether the access missed the first cache
	// level. Candidate prefetch addresses are appended to out (a
	// reusable buffer) and returned; the caller drops candidates whose
	// line is already cached and issues the rest in order, so models
	// emit nearest-first. Observe must not retain out.
	Observe(pc int, addr int64, miss bool, out []int64) []int64

	// Reset restores the cold state while preserving storage, so a
	// reset model is indistinguishable from a fresh one (bit-identical
	// candidate streams) without reallocating its tables.
	Reset()
}

// PeekFunc reads a little-endian, sign-extended value of the given
// byte width from simulated memory without faulting or affecting
// timing. It models a prefetcher's ability to inspect data the
// hierarchy already fetched: real indirect prefetchers read index
// values out of arriving cache lines (Yu et al., §3.2). ok is false
// when the address is unmapped.
type PeekFunc func(addr, width int64) (int64, bool)

// PeekSetter is implemented by models that speculate on memory values
// (IMP). The interpreter installs its memory reader through the
// hierarchy after construction; models without the method ignore it.
type PeekSetter interface {
	SetPeek(PeekFunc)
}

// Config carries the machine parameters a model needs. The Degree,
// Conf and Streams knobs are shared across models (they come from the
// sim.Config Stride* fields, which predate the pluggable subsystem);
// each model documents how it interprets them.
type Config struct {
	// LineShift is log2 of the cache-line size.
	LineShift uint
	// Degree is how many candidates a trained pattern emits per
	// observation. The stride model uses it exactly as the old
	// hard-wired streamer did (0 emits nothing); other models clamp it
	// to at least 1.
	Degree int
	// Conf is the number of confirming observations required before a
	// pattern starts issuing.
	Conf int
	// Streams bounds concurrent pattern trackers (stride regions, IMP
	// per-PC streams); 0 selects 16, the old streamer's default.
	Streams int
}

// streams returns the tracker capacity with the historical default.
func (c Config) streams() int {
	if c.Streams <= 0 {
		return 16
	}
	return c.Streams
}

// degreeAtLeast1 is the clamp used by every model except stride (whose
// raw-Degree semantics are pinned by the bit-identity contract).
func (c Config) degreeAtLeast1() int {
	if c.Degree < 1 {
		return 1
	}
	return c.Degree
}

// Model names, in presentation order.
const (
	NameNone     = "none"
	NameStride   = "stride"
	NameNextLine = "nextline"
	NameGHB      = "ghb"
	NameIMP      = "imp"
)

// Names returns every model name the registry accepts, in presentation
// order ("none" first).
func Names() []string {
	return []string{NameNone, NameStride, NameNextLine, NameGHB, NameIMP}
}

// Known reports whether name is a registered model.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Describe returns a one-line description of a model, for CLI/API
// discovery surfaces (swpfbench -list, swpfd GET /meta).
func Describe(name string) string {
	switch name {
	case NameNone:
		return "no hardware prefetching"
	case NameStride:
		return "region-based stride streamer (per-4KiB trackers, LRU-replaced; the legacy hard-wired design)"
	case NameNextLine:
		return "next-line fetcher: on a miss, fetch the following lines within the page"
	case NameGHB:
		return "global history buffer (Markov): replay the miss lines that followed this miss before"
	case NameIMP:
		return "indirect memory prefetcher (Yu et al. style): detects A[B[i]] and prefetches targets of future index values"
	}
	return ""
}

// New builds the named model. "none" returns (nil, nil): the hierarchy
// treats a nil prefetcher as hardware prefetching disabled.
func New(name string, cfg Config) (Prefetcher, error) {
	switch name {
	case NameNone:
		return nil, nil
	case NameStride:
		return NewStride(cfg), nil
	case NameNextLine:
		return NewNextLine(cfg), nil
	case NameGHB:
		return NewGHB(cfg), nil
	case NameIMP:
		return NewIMP(cfg), nil
	}
	return nil, fmt.Errorf("hwpf: unknown prefetcher %q (have %v)", name, Names())
}
