package store

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
)

// fastPeerOpts keeps retry/backoff latency out of the test suite.
func fastPeerOpts() PeerOptions {
	return PeerOptions{
		Timeout:       time.Second,
		Retries:       2,
		Backoff:       time.Millisecond,
		FailThreshold: 2,
		Cooldown:      50 * time.Millisecond,
	}
}

// runGrid runs the grid through a Runner backed by cache.
func runGrid(t *testing.T, grid sweep.Grid, cache sweep.Cache) *sweep.ResultSet {
	t.Helper()
	runner := sweep.Runner{Jobs: 2, Cache: cache, OnPutError: func(_ sweep.Request, err error) {
		t.Errorf("put: %v", err)
	}}
	set, err := runner.Execute(grid.Expand())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestPeerReadThrough: a store with an empty local dir but a warm peer
// serves every cell from the peer, materializes the objects locally,
// and emits bytes identical to the run that populated the peer.
func TestPeerReadThrough(t *testing.T) {
	grid := tinyGrid()
	cells := len(grid.Expand())

	upstream, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := emit(t, runGrid(t, grid, upstream))
	srv := httptest.NewServer(NewHandler(upstream))
	defer srv.Close()

	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := local.SetPeer(srv.URL, fastPeerOpts()); err != nil {
		t.Fatal(err)
	}
	got := emit(t, runGrid(t, grid, local))
	if string(got) != string(want) {
		t.Fatalf("peer-served run differs from direct run:\n%s\nvs\n%s", got, want)
	}

	st := local.Stats()
	if st.Hits != int64(cells) || st.Misses != 0 {
		t.Fatalf("local stats = %+v, want %d hits / 0 misses", st, cells)
	}
	ps, ok := local.PeerStats()
	if !ok || ps.Hits != int64(cells) {
		t.Fatalf("peer stats = %+v (ok=%v), want %d fetches", ps, ok, cells)
	}

	// Read-through materialized the objects: a second run is purely
	// local (the peer sees no more GETs).
	_ = emit(t, runGrid(t, grid, local))
	ps2, _ := local.PeerStats()
	if ps2.Hits != ps.Hits {
		t.Fatalf("second run hit the peer: %d -> %d fetches", ps.Hits, ps2.Hits)
	}
}

// TestPeerWriteBehind: Puts against a peered store replicate to the
// upstream, which can then serve a third, fresh store.
func TestPeerWriteBehind(t *testing.T) {
	grid := tinyGrid()
	cells := len(grid.Expand())

	upstream, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(upstream))
	defer srv.Close()

	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := local.SetPeer(srv.URL, fastPeerOpts()); err != nil {
		t.Fatal(err)
	}
	want := emit(t, runGrid(t, grid, local))
	local.Flush()

	if got := upstream.Stats().Puts; got != int64(cells) {
		t.Fatalf("upstream has %d objects, want %d", got, cells)
	}
	ps, _ := local.PeerStats()
	if ps.Puts != int64(cells) || ps.Dropped != 0 {
		t.Fatalf("peer stats = %+v, want %d puts / 0 dropped", ps, cells)
	}

	// The replicated objects round-trip: a different store reading the
	// upstream directly is byte-identical.
	if got := emit(t, runGrid(t, grid, upstream)); string(got) != string(want) {
		t.Fatalf("replicated results differ from original run")
	}
}

// TestPeerDownDegradesToLocal: a dead peer never fails a sweep — the
// circuit opens after FailThreshold errors and the store runs
// local-only, without hammering the peer once the breaker trips.
func TestPeerDownDegradesToLocal(t *testing.T) {
	grid := tinyGrid()

	var requests atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer dead.Close()

	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := fastPeerOpts()
	opt.Cooldown = time.Hour // breaker stays open for the whole test
	if err := local.SetPeer(dead.URL, opt); err != nil {
		t.Fatal(err)
	}

	got := emit(t, runGrid(t, grid, local))
	local.Flush()

	plain, err := grid.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := emit(t, plain); string(got) != string(want) {
		t.Fatalf("degraded run differs from uncached run")
	}

	// After FailThreshold consecutive errors the breaker opens; with a
	// long cooldown, no further requests get through, so total peer
	// traffic is bounded by the threshold — not cells × retries.
	if n := requests.Load(); n > int64(opt.FailThreshold) {
		t.Fatalf("dead peer saw %d requests, want <= %d (circuit should open)", n, opt.FailThreshold)
	}
	ps, _ := local.PeerStats()
	if ps.Up {
		t.Fatal("peer reported up after repeated failures")
	}
	if ps.Dropped == 0 {
		t.Fatal("expected write-behind objects dropped while peer is down")
	}
}

// TestPeerRecoveryAfterCooldown: once the cooldown elapses, a single
// probe request reopens the circuit against a recovered peer.
func TestPeerRecoveryAfterCooldown(t *testing.T) {
	upstream, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var failing atomic.Bool
	failing.Store(true)
	h := NewHandler(upstream)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	grid := tinyGrid()
	reqs := grid.Expand()
	want := emit(t, runGrid(t, grid, upstream))

	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := local.SetPeer(srv.URL, fastPeerOpts()); err != nil {
		t.Fatal(err)
	}

	// Trip the breaker.
	for i := 0; i < 3; i++ {
		local.Get(reqs[0])
	}
	if ps, _ := local.PeerStats(); ps.Up {
		t.Fatal("breaker did not open")
	}

	// Peer recovers; after the cooldown the probe succeeds and
	// read-through works again.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	got := emit(t, runGrid(t, grid, local))
	if string(got) != string(want) {
		t.Fatalf("post-recovery run differs from upstream run")
	}
	if ps, _ := local.PeerStats(); !ps.Up || ps.Hits == 0 {
		t.Fatalf("peer stats after recovery = %+v, want up with fetches", ps)
	}
}

// TestPeerRejectsCorruptObjects: a peer serving garbage (or an object
// under the wrong key) cannot poison the local store — every corrupt
// response is a miss and nothing is materialized.
func TestPeerRejectsCorruptObjects(t *testing.T) {
	grid := tinyGrid()
	reqs := grid.Expand()

	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "00"): // unreachable marker; keep handler total
			http.NotFound(w, r)
		default:
			// Well-formed JSON, wrong key.
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"Key":"deadbeef","Result":{"Checksum":42}}`))
		}
	}))
	defer evil.Close()

	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := local.SetPeer(evil.URL, fastPeerOpts()); err != nil {
		t.Fatal(err)
	}
	if res, ok := local.Get(reqs[0]); ok {
		t.Fatalf("corrupt peer object served as hit: %+v", res)
	}
	if got := local.Stats().Puts; got != 0 {
		t.Fatalf("corrupt object materialized locally (%d puts)", got)
	}

	// And the server side has the same guard: a PUT whose body does not
	// match the key is rejected.
	upstream, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(upstream))
	defer srv.Close()
	key := upstream.Key(reqs[0])
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/objects/"+key,
		strings.NewReader(`{"Key":"deadbeef"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched PUT: got %d, want 400", resp.StatusCode)
	}
	if got := upstream.Stats().Puts; got != 0 {
		t.Fatalf("mismatched PUT stored an object (%d puts)", got)
	}
}

// TestPeerHandlerErrors pins the server-side error contract.
func TestPeerHandlerErrors(t *testing.T) {
	upstream, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(upstream))
	defer srv.Close()

	check := func(method, path string, want int) {
		t.Helper()
		req, _ := http.NewRequest(method, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s %s: got %d, want %d", method, path, resp.StatusCode, want)
		}
	}
	missing := strings.Repeat("ab", 32)
	check(http.MethodGet, "/objects/"+missing, http.StatusNotFound)
	check(http.MethodGet, "/objects/not-a-key", http.StatusBadRequest)
	check(http.MethodGet, "/objects/", http.StatusBadRequest)
	check(http.MethodDelete, "/objects/"+missing, http.StatusMethodNotAllowed)
}
