package store

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestStatsVersionBumpInvalidatesWarmV1 is the invalidation rule
// docs/service.md promises, exercised against the real v1→v2 bump (the
// hwpf subsystem): an entry persisted under the v1 salt must miss
// cleanly under the current default salt — no error, no stale result —
// while the object itself survives for stores still opened at v1.
func TestStatsVersionBumpInvalidatesWarmV1(t *testing.T) {
	if sim.StatsVersion < 2 {
		t.Fatalf("sim.StatsVersion = %d; the hwpf subsystem requires the v2 bump", sim.StatsVersion)
	}
	const v1Salt = "sim-stats-v1"
	if DefaultSalt() == v1Salt {
		t.Fatalf("DefaultSalt() = %q still the v1 salt", DefaultSalt())
	}

	dir := t.TempDir()
	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   uarch.A53(),
		Variant:  core.VariantPlain,
	}
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := OpenSalted(dir, v1Salt)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put(req, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := v1.Get(req); !ok {
		t.Fatal("v1 store does not hit its own entry")
	}

	// The same directory at the current version: the warm v1 entry is
	// invisible, so the cell recomputes instead of replaying stale
	// statistics.
	cur, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(req); ok {
		t.Fatalf("v1 entry still hits under %s after the StatsVersion bump", DefaultSalt())
	}

	// The old objects are not destroyed — keys moved, data stayed.
	back, err := OpenSalted(dir, v1Salt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Get(req); !ok {
		t.Fatal("v1 entry lost after opening the store at the current version")
	}
}

// TestStatsVersionBumpInvalidatesWarmV2 is the same invalidation rule
// exercised against the v2→v3 bump (the core-model axis plus the
// PrefetchLateCycles and mid-walk TLB timing fixes): a v2 entry must
// miss cleanly under the current salt, while traces — keyed by
// trace.FormatVersion, not StatsVersion — survive the bump, so a warm
// trace store still spares the re-interpretation even though every
// cell retimes.
func TestStatsVersionBumpInvalidatesWarmV2(t *testing.T) {
	if sim.StatsVersion < 3 {
		t.Fatalf("sim.StatsVersion = %d; the core axis and timing fixes require the v3 bump", sim.StatsVersion)
	}
	const v2Salt = "sim-stats-v2"
	if DefaultSalt() == v2Salt {
		t.Fatalf("DefaultSalt() = %q still the v2 salt", DefaultSalt())
	}

	dir := t.TempDir()
	req := traceReq()
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	tr := recordReq(t, req)

	v2, err := OpenSalted(dir, v2Salt)
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.Put(req, res); err != nil {
		t.Fatal(err)
	}
	if err := v2.PutTrace(req, tr); err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(req); !ok {
		t.Fatal("v2 store does not hit its own entry")
	}

	// The same directory at the current version: the warm v2 result is
	// invisible (the cell recomputes under the fixed timing model), but
	// the recorded trace — whose bytes carry no timing — still hits.
	cur, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(req); ok {
		t.Fatalf("v2 entry still hits under %s after the StatsVersion bump", DefaultSalt())
	}
	if _, ok := cur.GetTrace(req); !ok {
		t.Error("trace entry lost across the StatsVersion bump; trace keys must not carry the stats salt")
	}

	// The old objects are not destroyed — keys moved, data stayed.
	back, err := OpenSalted(dir, v2Salt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Get(req); !ok {
		t.Fatal("v2 entry lost after opening the store at the current version")
	}
}

// TestKeySensitivityCoreModel: the core-model axis is part of the
// machine configuration, so it must be part of the key — distinct from
// the empty legacy resolution and from every other model.
func TestKeySensitivityCoreModel(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   uarch.Haswell(),
		Variant:  core.VariantPlain,
	}
	seen := map[string]string{s.Key(base): "default"}
	for _, name := range sim.CoreModels() {
		req := base
		req.System = uarch.WithCoreModel(base.System, name)
		key := s.Key(req)
		if prev, dup := seen[key]; dup {
			t.Errorf("core=%s collides with %s", name, prev)
		}
		seen[key] = name
	}
	if len(seen) != 1+len(sim.CoreModels()) {
		t.Errorf("expected %d distinct keys, got %d", 1+len(sim.CoreModels()), len(seen))
	}
}

// TestKeySensitivityHWPrefetcher: the hardware-prefetcher axis is part
// of the machine configuration, so it must be part of the key — both
// as the explicit field and via the legacy StridePrefetch resolution.
func TestKeySensitivityHWPrefetcher(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   uarch.Haswell(),
		Variant:  core.VariantPlain,
	}
	seen := map[string]string{s.Key(base): "default"}
	for _, name := range []string{"none", "stride", "nextline", "ghb", "imp"} {
		req := base
		req.System = uarch.WithHWPrefetcher(base.System, name)
		key := s.Key(req)
		if prev, dup := seen[key]; dup {
			t.Errorf("hwpf=%s collides with %s", name, prev)
		}
		seen[key] = name
	}
	if len(seen) != 6 {
		t.Errorf("expected 6 distinct keys, got %d", len(seen))
	}
}
