package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// tinyGrid is a small but multi-cell experiment grid: two workloads,
// two systems, two variants, non-default options.
func tinyGrid() sweep.Grid {
	tiny := workloads.Tiny()
	return sweep.Grid{
		Workloads: []*workloads.Workload{tiny[0], tiny[1]},
		Systems:   []*sim.Config{sim.DefaultConfig(), inOrderConfig()},
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
		Options:   core.Options{C: 16, Hoist: true},
	}
}

// inOrderConfig is a second machine that differs from DefaultConfig in
// several stat-affecting fields.
func inOrderConfig() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Name = "generic-inorder"
	cfg.OutOfOrder = false
	cfg.IssueWidth = 2
	return cfg
}

// emit serializes a result set the way every consumer does.
func emit(t *testing.T, set *sweep.ResultSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmSweepBitIdentical is the cache-correctness contract: a sweep
// served entirely from a warm store emits bytes identical to the cold
// run that populated it, and to an uncached run.
func TestWarmSweepBitIdentical(t *testing.T) {
	dir := t.TempDir()
	grid := tinyGrid()
	cells := len(grid.Expand())

	plain, err := grid.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	want := emit(t, plain)

	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	set, err := grid.RunWith(sweep.Runner{Jobs: 2, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if got := emit(t, set); !bytes.Equal(got, want) {
		t.Fatalf("cold cached run differs from uncached run:\n%s\nvs\n%s", got, want)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != int64(cells) || st.Puts != int64(cells) {
		t.Fatalf("cold stats = %+v, want 0 hits / %d misses / %d puts", st, cells, cells)
	}

	// Reopen: every cell must come from disk, bit-identically.
	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	set, err = grid.RunWith(sweep.Runner{Jobs: 2, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if got := emit(t, set); !bytes.Equal(got, want) {
		t.Fatalf("warm run differs from cold run:\n%s\nvs\n%s", got, want)
	}
	if st := warm.Stats(); st.Hits != int64(cells) || st.Misses != 0 || st.Puts != 0 {
		t.Fatalf("warm stats = %+v, want %d hits / 0 misses / 0 puts", st, cells)
	}
}

// TestKeySensitivity proves every component of a request changes the
// key: workload identity and parameters, any machine-configuration
// field, the variant, every option, and the version salt.
func TestKeySensitivity(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiny := workloads.Tiny()
	base := sweep.Request{
		Workload: tiny[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantAuto,
		Options:  core.Options{C: 16},
	}
	baseKey := s.Key(base)

	mutate := func(name string, f func(r *sweep.Request)) {
		r := base
		f(&r)
		if k := s.Key(r); k == baseKey {
			t.Errorf("%s: key unchanged (%s)", name, k)
		}
	}
	mutate("workload", func(r *sweep.Request) { r.Workload = tiny[1] })
	mutate("workload params", func(r *sweep.Request) {
		w := *tiny[0]
		w.Params = "nkeys=1,nbuckets=1"
		r.Workload = &w
	})
	mutate("variant", func(r *sweep.Request) { r.Variant = core.VariantPlain })
	mutate("option C", func(r *sweep.Request) { r.Options.C = 32 })
	mutate("option Depth", func(r *sweep.Request) { r.Options.Depth = 2 })
	mutate("option Hoist", func(r *sweep.Request) { r.Options.Hoist = true })
	mutate("option FlatOffset", func(r *sweep.Request) { r.Options.FlatOffset = true })
	mutate("option MaxInstrs", func(r *sweep.Request) { r.Options.MaxInstrs = 1 << 20 })
	mutate("system cache size", func(r *sweep.Request) {
		cfg := sim.DefaultConfig()
		cfg.Caches = append([]sim.CacheConfig(nil), cfg.Caches...)
		cfg.Caches[0].Size *= 2
		r.System = cfg
	})
	mutate("system MSHRs", func(r *sweep.Request) {
		cfg := sim.DefaultConfig()
		cfg.MSHRs++
		r.System = cfg
	})
	mutate("system page size", func(r *sweep.Request) {
		cfg := sim.DefaultConfig()
		cfg.PageSize *= 2
		r.System = cfg
	})

	// Same content, different pointer: the key must NOT change — it is
	// content-addressed, not identity-addressed.
	r := base
	r.System = sim.DefaultConfig()
	if k := s.Key(r); k != baseKey {
		t.Errorf("fresh but identical config changed key: %s vs %s", k, baseKey)
	}

	// Salt: a different simulator version makes every key miss.
	salted, err := OpenSalted(s.Dir(), "sim-stats-v999")
	if err != nil {
		t.Fatal(err)
	}
	if k := salted.Key(base); k == baseKey {
		t.Error("version salt did not change key")
	}
}

// TestSaltInvalidation: entries written under one simulator version
// are invisible under another, and reappear under the original.
func TestSaltInvalidation(t *testing.T) {
	dir := t.TempDir()
	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantPlain,
	}
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := OpenSalted(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put(req, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := v1.Get(req); !ok {
		t.Fatal("v1 store misses its own entry")
	}

	v2, err := OpenSalted(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(req); ok {
		t.Fatal("bumped salt still hits stale entry")
	}

	back, err := OpenSalted(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Get(req); !ok {
		t.Fatal("original salt lost its entry")
	}
}

// TestCachedResultFields: a round-tripped result reproduces every
// emitted statistic of the original, field by field.
func TestCachedResultFields(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantAuto,
		Options:  core.Options{C: 16},
	}
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(req, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(req)
	if !ok {
		t.Fatal("put entry misses")
	}
	// Pass is documented as uncached; everything else must match.
	want := *res
	want.Pass = nil
	if *got != want {
		t.Errorf("cached result differs:\ngot  %+v\nwant %+v", *got, want)
	}
}

// TestCorruptObjectIsMiss: an unreadable object degrades to a miss and
// is repaired by the next Put.
func TestCorruptObjectIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantPlain,
	}
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(req, res); err != nil {
		t.Fatal(err)
	}

	key := s.Key(req)
	path := filepath.Join(s.Dir(), "objects", key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(req); ok {
		t.Fatal("corrupt object served as a hit")
	}
	if err := s.Put(req, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(req); !ok {
		t.Fatal("re-put did not repair corrupt object")
	}
}

// TestIndexCatalogue: puts land in index.json and survive reopening.
func TestIndexCatalogue(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantPlain,
	}
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(req, res); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.jsonl")); err != nil {
		t.Fatalf("index.jsonl missing: %v", err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx := reopened.Index()
	e, ok := idx[s.Key(req)]
	if !ok {
		t.Fatalf("reopened index lacks entry; have %d entries", len(idx))
	}
	if e.Workload != req.Workload.Name || e.Params != req.Workload.Params ||
		e.System != req.System.Name || e.Variant != string(req.Variant) {
		t.Errorf("index entry mismatch: %+v", e)
	}
}

// TestResumedSweep: interrupting a grid mid-way (simulated by caching
// only a prefix of the cells) still yields a full, bit-identical
// result set on the next run, computing only the missing cells.
func TestResumedSweep(t *testing.T) {
	dir := t.TempDir()
	grid := tinyGrid()
	reqs := grid.Expand()

	plain, err := grid.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	want := emit(t, plain)

	// "Interrupt" after half the cells: persist only that prefix.
	half, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(reqs)/2; i++ {
		if err := half.Put(reqs[i], plain.Outcomes[i].Result); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	set, err := grid.RunWith(sweep.Runner{Jobs: 2, Cache: resumed})
	if err != nil {
		t.Fatal(err)
	}
	if got := emit(t, set); !bytes.Equal(got, want) {
		t.Fatal("resumed sweep differs from uninterrupted run")
	}
	st := resumed.Stats()
	if st.Hits != int64(len(reqs)/2) || st.Puts != int64(len(reqs)-len(reqs)/2) {
		t.Errorf("resume stats = %+v, want %d hits and %d puts", st, len(reqs)/2, len(reqs)-len(reqs)/2)
	}
}
