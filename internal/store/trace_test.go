package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func traceReq() sweep.Request {
	return sweep.Request{
		Workload: workloads.IS(1<<8, 1<<8),
		System:   uarch.Haswell(),
		Variant:  core.VariantAuto,
		Options:  core.Options{Hoist: true},
		Exec:     core.ExecReplay,
	}
}

func recordReq(t *testing.T, req sweep.Request) *trace.Trace {
	t.Helper()
	tr, _, err := core.Record(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceRoundTrip: PutTrace then GetTrace yields byte-identical
// trace content, and the trace hit/miss/put counters track it.
func TestTraceRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := traceReq()

	if _, ok := s.GetTrace(req); ok {
		t.Fatal("empty store hit a trace")
	}
	tr := recordReq(t, req)
	if err := s.PutTrace(req, tr); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetTrace(req)
	if !ok {
		t.Fatal("trace missing after PutTrace")
	}
	if !trace.Equal(tr, got) {
		t.Fatal("round-tripped trace is not byte-identical")
	}

	st := s.Stats()
	if st.TraceHits != 1 || st.TraceMisses != 1 || st.TracePuts != 1 {
		t.Errorf("trace counters = %d/%d/%d hits/misses/puts, want 1/1/1",
			st.TraceHits, st.TraceMisses, st.TracePuts)
	}
}

// TestTraceKeyIgnoresSystemAndExec: the trace key is the functional
// coordinate — identical across machines, prefetcher models and
// execution modes, distinct across workload/params/variant/options.
func TestTraceKeyIgnoresSystemAndExec(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := traceReq()
	key := s.TraceKey(base)

	for _, cfg := range uarch.All() {
		req := base
		req.System = cfg
		if s.TraceKey(req) != key {
			t.Errorf("trace key varies with system %s", cfg.Name)
		}
	}
	imp := base
	imp.System = uarch.WithHWPrefetcher(base.System, "imp")
	if s.TraceKey(imp) != key {
		t.Error("trace key varies with the hardware prefetcher")
	}
	direct := base
	direct.Exec = core.ExecDirect
	if s.TraceKey(direct) != key {
		t.Error("trace key varies with the execution mode")
	}

	for name, mut := range map[string]func(*sweep.Request){
		"workload": func(r *sweep.Request) { r.Workload = workloads.IS(1<<9, 1<<8) },
		"variant":  func(r *sweep.Request) { r.Variant = core.VariantPlain },
		"options":  func(r *sweep.Request) { r.Options.Hoist = false },
	} {
		req := base
		mut(&req)
		if s.TraceKey(req) == key {
			t.Errorf("trace key insensitive to %s", name)
		}
	}

	// And the trace key space never collides with the result key space.
	if s.TraceKey(base) == s.Key(base) {
		t.Error("trace key collides with the result key for the same request")
	}
}

// TestTraceFormatVersionBumpInvalidates mirrors
// TestStatsVersionBumpInvalidatesWarmV1 for the trace salt: a trace
// persisted under an older trace.FormatVersion salt must miss cleanly
// under the current one, without disturbing result entries or the old
// objects, and independently of the result salt.
func TestTraceFormatVersionBumpInvalidates(t *testing.T) {
	const v0Salt = "trace-v0"
	if DefaultTraceSalt() == v0Salt {
		t.Fatalf("DefaultTraceSalt() = %q; bump trace.FormatVersion past 0", v0Salt)
	}

	dir := t.TempDir()
	req := traceReq()
	tr := recordReq(t, req)
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		t.Fatal(err)
	}

	old, err := OpenTraceSalted(dir, DefaultSalt(), v0Salt)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.PutTrace(req, tr); err != nil {
		t.Fatal(err)
	}
	if err := old.Put(req, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := old.GetTrace(req); !ok {
		t.Fatal("old-salt store does not hit its own trace")
	}

	// Same directory at the current trace format: the old trace is
	// invisible (the group re-records), but the result entries — salted
	// independently by sim.StatsVersion — still hit.
	cur, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur.TraceSalt() != DefaultTraceSalt() {
		t.Fatalf("Open trace salt = %q, want %q", cur.TraceSalt(), DefaultTraceSalt())
	}
	if _, ok := cur.GetTrace(req); ok {
		t.Fatalf("trace-v0 object still hits under %s", DefaultTraceSalt())
	}
	if _, ok := cur.Get(req); !ok {
		t.Error("result entry lost across a trace-format bump")
	}

	// Keys moved, objects stayed: reopening at the old salt still hits.
	back, err := OpenTraceSalted(dir, DefaultSalt(), v0Salt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.GetTrace(req); !ok {
		t.Fatal("trace-v0 object lost after opening at the current format")
	}
}

// TestCorruptTraceIsAMiss: damage anywhere in a persisted trace object
// (trace envelope CRC catches it) degrades to a clean miss.
func TestCorruptTraceIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := traceReq()
	tr := recordReq(t, req)
	if err := s.PutTrace(req, tr); err != nil {
		t.Fatal(err)
	}

	path := s.tracePath(s.TraceKey(req))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(req); ok {
		t.Fatal("corrupt trace object served as a hit")
	}

	// Truncation, likewise.
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(req); ok {
		t.Fatal("truncated trace object served as a hit")
	}
}

// TestStoreBackedReplaySweep wires the real store into a replay sweep:
// a cold sweep persists one trace per group; wiping the result objects
// but keeping the traces lets the next sweep replay everything without
// re-recording.
func TestStoreBackedReplaySweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := sweep.Grid{
		Workloads: []*workloads.Workload{workloads.IS(1<<8, 1<<8)},
		Systems:   uarch.All()[:2],
		Variants:  []core.Variant{core.VariantPlain, core.VariantAuto},
		Execs:     []core.ExecMode{core.ExecReplay},
	}
	cold, err := g.RunWith(sweep.Runner{Jobs: 2, Cache: s})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TracePuts != 2 {
		t.Errorf("cold sweep persisted %d traces, want 2", st.TracePuts)
	}

	// A fresh store over the same directory with the results gone: every
	// cell recomputes as a replay of the persisted traces.
	if err := os.RemoveAll(filepath.Join(dir, "objects")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := g.RunWith(sweep.Runner{Jobs: 2, Cache: s2})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.TraceHits != 2 || st.TracePuts != 0 {
		t.Errorf("trace-warm sweep: %d hits / %d puts, want 2 / 0", st.TraceHits, st.TracePuts)
	}
	for i := range cold.Outcomes {
		c, w := cold.Outcomes[i].Result, warm.Outcomes[i].Result
		if *c != *w {
			t.Errorf("cell %d differs between cold and trace-warm store sweeps", i)
		}
	}
}
