// Store-peer protocol, client side. A store can front another store
// reachable over HTTP (see server.go for the handler): local misses
// read through to the peer (GET /objects/{key}) and local Puts
// replicate to it asynchronously (PUT /objects/{key}, write-behind).
//
// The peer is strictly an accelerator — correctness never depends on
// it:
//
//   - Every fetched object is validated against the key it was asked
//     for before it is used or materialized, so a corrupt, truncated
//     or mislabelled response is simply a miss. Content addressing
//     makes this cheap: the object carries its own key.
//   - A peer that times out or errors repeatedly is marked down and
//     the store degrades to local-only; after a cooldown a single
//     probe request decides whether it is back (a half-open circuit
//     breaker). Cells computed while the peer is down stay local.
//   - Write-behind replication retries each object a bounded number of
//     times with backoff, then drops it (counted, never fatal) — a
//     full disk or dead peer cannot fail a sweep, exactly like local
//     Put failures.
package store

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PeerEnvVar names the environment variable holding a default
// store-peer URL, consulted by the commands' -peer flag handling.
const PeerEnvVar = "SWPF_PEER"

// PeerOptions tunes the peer client; zero values select the defaults.
type PeerOptions struct {
	// Timeout bounds each HTTP request (default 2s).
	Timeout time.Duration
	// Retries is the write-behind attempt count per object (default 3).
	Retries int
	// Backoff is the base delay between write-behind attempts; attempt
	// n waits n×Backoff (default 100ms).
	Backoff time.Duration
	// FailThreshold is the consecutive-failure count that marks the
	// peer down (default 3).
	FailThreshold int
	// Cooldown is how long a down peer is left alone before one probe
	// request is allowed through (default 5s).
	Cooldown time.Duration
	// QueueLen bounds the write-behind queue; when full, objects are
	// dropped and counted (default 256).
	QueueLen int
}

func (o PeerOptions) withDefaults() PeerOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	return o
}

// PeerStats snapshots peer traffic and health.
type PeerStats struct {
	Base        string `json:"base"`
	Up          bool   `json:"up"`
	Hits        int64  `json:"hits"`        // read-through fetches served by the peer
	Misses      int64  `json:"misses"`      // peer answered 404
	Errors      int64  `json:"errors"`      // transport/HTTP failures (both directions)
	Puts        int64  `json:"puts"`        // objects replicated
	Dropped     int64  `json:"dropped"`     // write-behind objects given up on
	Transitions int64  `json:"transitions"` // circuit-breaker open transitions
	QueueDepth  int    `json:"queue_depth"` // write-behind objects waiting
}

type putItem struct {
	key  string
	data []byte
}

// peer is the client state for one upstream store.
type peer struct {
	base   string
	opt    PeerOptions
	client *http.Client

	queue chan putItem
	wg    sync.WaitGroup

	mu        sync.Mutex
	fails     int
	downUntil time.Time
	probing   bool

	hits, misses, errors, puts, dropped atomic.Int64
	transitions                         atomic.Int64 // closed→open breaker trips
}

// SetPeer attaches an HTTP store-peer to the store. Call once, before
// the store is used concurrently. The base URL is the peer's root —
// the handler mounted by NewHandler (or a swpfd daemon, which serves
// the same protocol under /objects/).
func (s *Store) SetPeer(base string, opt PeerOptions) error {
	if s.peer != nil {
		return fmt.Errorf("store: peer already set")
	}
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		return fmt.Errorf("store: peer %q is not an absolute URL", base)
	}
	opt = opt.withDefaults()
	p := &peer{
		base:   base,
		opt:    opt,
		client: &http.Client{Timeout: opt.Timeout},
		queue:  make(chan putItem, opt.QueueLen),
	}
	go p.writer()
	s.peer = p
	return nil
}

// Peer reports the attached peer's base URL ("" when none).
func (s *Store) Peer() string {
	if s.peer == nil {
		return ""
	}
	return s.peer.base
}

// PeerStats snapshots the peer client; ok is false when no peer is
// attached.
func (s *Store) PeerStats() (PeerStats, bool) {
	p := s.peer
	if p == nil {
		return PeerStats{}, false
	}
	p.mu.Lock()
	up := time.Now().After(p.downUntil) && p.fails < p.opt.FailThreshold
	p.mu.Unlock()
	return PeerStats{
		Base:        p.base,
		Up:          up,
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Errors:      p.errors.Load(),
		Puts:        p.puts.Load(),
		Dropped:     p.dropped.Load(),
		Transitions: p.transitions.Load(),
		QueueDepth:  len(p.queue),
	}, true
}

// Flush blocks until the write-behind queue has drained — every
// queued object replicated, retried out, or dropped. Tests and
// daemon shutdown use it; steady-state operation never waits.
func (s *Store) Flush() {
	if s.peer != nil {
		s.peer.wg.Wait()
	}
}

// admit reports whether a request may go to the peer now. While the
// peer is down, everything is refused until the cooldown elapses; then
// exactly one caller becomes the probe (probe=true) and its outcome
// decides the circuit.
func (p *peer) admit() (ok, probe bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fails < p.opt.FailThreshold {
		return true, false
	}
	if time.Now().Before(p.downUntil) || p.probing {
		return false, false
	}
	p.probing = true
	return true, true
}

// outcome records a request result and updates the circuit.
func (p *peer) outcome(err error, probe bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if probe {
		p.probing = false
	}
	if err == nil {
		p.fails = 0
		return
	}
	p.errors.Add(1)
	p.fails++
	if p.fails >= p.opt.FailThreshold {
		if p.fails == p.opt.FailThreshold {
			// The closed→open edge, exactly once per trip; probe
			// failures past the threshold just extend the cooldown.
			p.transitions.Add(1)
		}
		p.downUntil = time.Now().Add(p.opt.Cooldown)
	}
}

// fetch reads one object from the peer; found is false on miss, error
// or an open circuit. The caller validates the bytes.
func (p *peer) fetch(key string) (data []byte, found bool) {
	ok, probe := p.admit()
	if !ok {
		return nil, false
	}
	resp, err := p.client.Get(p.base + "/objects/" + key)
	if err != nil {
		p.outcome(err, probe)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			p.outcome(err, probe)
			return nil, false
		}
		p.outcome(nil, probe)
		p.hits.Add(1)
		return data, true
	case http.StatusNotFound:
		// A miss is a healthy answer, not a failure.
		p.outcome(nil, probe)
		p.misses.Add(1)
		return nil, false
	default:
		p.outcome(fmt.Errorf("peer: GET %s: %s", key[:12], resp.Status), probe)
		return nil, false
	}
}

// enqueue queues an object for write-behind replication; a full queue
// drops (counted).
func (p *peer) enqueue(key string, data []byte) {
	p.wg.Add(1)
	select {
	case p.queue <- putItem{key, data}:
	default:
		p.dropped.Add(1)
		p.wg.Done()
	}
}

// writer drains the write-behind queue, one object at a time, with
// bounded retries and linear backoff. While the circuit is open,
// objects are dropped immediately — local-only degradation — instead
// of burning a timeout per object.
func (p *peer) writer() {
	for item := range p.queue {
		p.replicate(item)
		p.wg.Done()
	}
}

func (p *peer) replicate(item putItem) {
	for attempt := 1; attempt <= p.opt.Retries; attempt++ {
		ok, probe := p.admit()
		if !ok {
			p.dropped.Add(1)
			return
		}
		err := p.putOnce(item)
		p.outcome(err, probe)
		if err == nil {
			p.puts.Add(1)
			return
		}
		if attempt < p.opt.Retries {
			time.Sleep(time.Duration(attempt) * p.opt.Backoff)
		}
	}
	p.dropped.Add(1)
}

func (p *peer) putOnce(item putItem) error {
	req, err := http.NewRequest(http.MethodPut, p.base+"/objects/"+item.key, bytes.NewReader(item.data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("peer: PUT %s: %s", item.key[:12], resp.Status)
	}
	return nil
}
