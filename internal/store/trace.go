package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Trace objects: recorded (workload, variant) event streams, cached so
// a replay sweep only ever interprets a kernel that no store has seen.
//
// Traces live in their own namespace (traces/ next to objects/) with
// their own key document and their own version salt, and the two key
// spaces treat the request coordinates differently:
//
//   - Result keys EXCLUDE the execution mode. Direct and replay runs of
//     a cell are byte-for-byte identical (the golden harness diffs
//     them), so a result computed under either mode must serve both —
//     a warm direct store answering a replay sweep is a feature, and
//     splitting the keys would silently halve every cache.
//   - Trace keys EXCLUDE the machine configuration. A trace is
//     machine-independent by construction (recording under any
//     sim.Config yields identical bytes); keying it by System would
//     store one copy per machine and destroy exactly the amortization
//     the trace exists to provide. The execution mode is not a field
//     here either — a trace object only exists in service of replay,
//     and the document's Kind already separates the namespaces.
//   - Trace keys are salted by trace.FormatVersion, not
//     sim.StatsVersion: an encoding or event-semantics change
//     invalidates every persisted trace without touching results, and
//     a stats-definition change invalidates results without discarding
//     traces (which carry no timing).
type traceKeyDoc struct {
	Format   int
	Kind     string // "trace": keeps the document distinct from keyDoc
	Salt     string
	Workload string
	Params   string
	Variant  string
	Options  core.Options
}

// DefaultTraceSalt is the trace-version salt new stores use: bumping
// trace.FormatVersion after an encoding or recording-semantics change
// makes every existing trace object miss.
func DefaultTraceSalt() string { return fmt.Sprintf("trace-v%d", trace.FormatVersion) }

// TraceSalt returns the trace-version salt trace keys are computed
// under.
func (s *Store) TraceSalt() string { return s.traceSalt }

// TraceKey returns the content address of the request's trace under
// the store's trace salt. The System and Exec coordinates are
// deliberately absent; see traceKeyDoc.
func (s *Store) TraceKey(r sweep.Request) string {
	doc := traceKeyDoc{
		Format:   FormatVersion,
		Kind:     "trace",
		Salt:     s.traceSalt,
		Workload: r.Workload.Name,
		Params:   r.Workload.Params,
		Variant:  string(r.Variant),
		Options:  r.Options,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic(fmt.Sprintf("store: marshal trace key: %v", err)) // plain data; unreachable
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// tracePath shards trace objects like result objects.
func (s *Store) tracePath(key string) string {
	return filepath.Join(s.dir, "traces", key[:2], key+".trace")
}

// GetTrace returns the cached trace for the request's (workload,
// variant, options), or (nil, false). Unreadable, truncated or
// corrupt objects are a miss, never an error — the trace's own CRC
// envelope rejects damage and the caller re-records over it.
func (s *Store) GetTrace(r sweep.Request) (*trace.Trace, bool) {
	data, err := os.ReadFile(s.tracePath(s.TraceKey(r)))
	if err != nil {
		s.traceMisses.Add(1)
		return nil, false
	}
	t, err := trace.Decode(data)
	if err != nil {
		s.traceMisses.Add(1)
		return nil, false
	}
	s.traceHits.Add(1)
	return t, true
}

// PutTrace persists the trace under the request's trace key. Atomic
// like result Puts; not catalogued in index.jsonl, which is a result
// index (traces are derived artifacts, re-recordable from the request
// alone).
func (s *Store) PutTrace(r sweep.Request, t *trace.Trace) error {
	path := s.tracePath(s.TraceKey(r))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(path, t.Encode()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.tracePuts.Add(1)
	return nil
}
