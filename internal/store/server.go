// Store-peer protocol, server side: an http.Handler exposing a store's
// objects for read-through GETs and write-behind PUTs from peers (see
// peer.go). swpfd mounts it under /objects/ so workers and sibling
// daemons can share one result store.
package store

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
)

// maxObjectBytes bounds a PUT body; real objects (result + optional
// trace JSON) are far smaller, so anything bigger is garbage.
const maxObjectBytes = 64 << 20

// NewHandler serves the store-peer protocol for s:
//
//	GET  /objects/{key}  -> object JSON, or 404 when absent
//	PUT  /objects/{key}  -> 204 after validating and storing the object
//
// PUT bodies are validated the same way read-through fetches are: the
// object must decode and carry Key == {key}, otherwise 400 — a peer
// can never corrupt the store.
func NewHandler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/objects/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/objects/")
		if key == "" || strings.Contains(key, "/") || !validKey(key) {
			peerError(w, http.StatusBadRequest, "bad object key")
			return
		}
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			o, ok := s.loadObject(key)
			if !ok {
				peerError(w, http.StatusNotFound, "object not found")
				return
			}
			data, err := json.Marshal(o)
			if err != nil {
				peerError(w, http.StatusInternalServerError, "encode object")
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
			if err != nil {
				peerError(w, http.StatusBadRequest, "read body")
				return
			}
			if len(data) > maxObjectBytes {
				peerError(w, http.StatusRequestEntityTooLarge, "object too large")
				return
			}
			if _, ok := decodeObject(data, key); !ok {
				peerError(w, http.StatusBadRequest, "object does not match key")
				return
			}
			s.writeObject(key, data)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT")
			peerError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	})
	return mux
}

// validKey reports whether key looks like a store key: lowercase hex,
// 64 chars (SHA-256).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func peerError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
