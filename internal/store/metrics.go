package store

import "repro/internal/obs"

// Register exposes the store's counters on an obs.Registry as a
// scrape-time collector: every sample within one scrape comes from a
// single Stats()/PeerStats() snapshot, so result, trace, and peer
// series are mutually consistent and identical to what GET /fleet
// reports. The store's own hot paths keep their plain atomics — the
// collector adds no per-Get/Put cost.
func (s *Store) Register(reg *obs.Registry) {
	reg.Collect(func(emit func(obs.Sample)) {
		counter := func(name, help string, v int64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Value: float64(v), Labels: labels})
		}
		gauge := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Kind: obs.KindGauge, Value: v, Labels: labels})
		}
		st := s.Stats()
		counter("swpf_store_hits_total", "Result-cache hits.", st.Hits)
		counter("swpf_store_misses_total", "Result-cache misses.", st.Misses)
		counter("swpf_store_puts_total", "Result objects persisted.", st.Puts)
		counter("swpf_store_trace_hits_total", "Trace-cache hits.", st.TraceHits)
		counter("swpf_store_trace_misses_total", "Trace-cache misses.", st.TraceMisses)
		counter("swpf_store_trace_puts_total", "Trace objects persisted.", st.TracePuts)
		ps, ok := s.PeerStats()
		if !ok {
			return
		}
		peer := obs.L("peer", ps.Base)
		up := 0.0
		if ps.Up {
			up = 1
		}
		gauge("swpf_store_peer_up", "1 while the peer circuit is closed, 0 while open.", up, peer)
		counter("swpf_store_peer_hits_total", "Read-through fetches served by the peer.", ps.Hits, peer)
		counter("swpf_store_peer_misses_total", "Peer 404 answers.", ps.Misses, peer)
		counter("swpf_store_peer_errors_total", "Peer transport/HTTP failures, both directions.", ps.Errors, peer)
		counter("swpf_store_peer_puts_total", "Objects replicated to the peer.", ps.Puts, peer)
		counter("swpf_store_peer_dropped_total", "Write-behind objects given up on.", ps.Dropped, peer)
		counter("swpf_store_peer_breaker_transitions_total", "Circuit-breaker closed-to-open transitions.", ps.Transitions, peer)
		gauge("swpf_store_peer_queue_depth", "Write-behind objects waiting to replicate.", float64(ps.QueueDepth), peer)
	})
}
