package store

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// scrape renders and re-parses the registry.
func scrape(t *testing.T, reg *obs.Registry) []obs.Sample {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestStoreMetrics: the collector mirrors Stats() — a miss, a put and
// a hit all surface under the swpf_store_* names.
func TestStoreMetrics(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Register(reg)

	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantAuto,
		Options:  core.Options{C: 16},
	}
	if _, ok := s.Get(req); ok {
		t.Fatal("unexpected hit on an empty store")
	}
	if err := s.Put(req, &core.Result{Checksum: 1, Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(req); !ok {
		t.Fatal("miss after Put")
	}

	samples := scrape(t, reg)
	for name, want := range map[string]float64{
		"swpf_store_hits_total":   1,
		"swpf_store_misses_total": 1,
		"swpf_store_puts_total":   1,
	} {
		if got := obs.Find(samples, name); got == nil || got.Value != want {
			t.Errorf("%s: %+v, want %v", name, got, want)
		}
	}
	// No peer attached: no peer series at all.
	if got := obs.Find(samples, "swpf_store_peer_up"); got != nil {
		t.Errorf("peer series exposed without a peer: %+v", got)
	}
}

// TestPeerMetrics: peer traffic, breaker transitions, and the up gauge
// surface per peer base URL; a dead peer trips the breaker exactly
// once per consecutive-failure run.
func TestPeerMetrics(t *testing.T) {
	upstream, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(upstream))
	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := local.SetPeer(srv.URL, fastPeerOpts()); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	local.Register(reg)
	peerLabel := obs.L("peer", srv.URL)

	req := sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantAuto,
	}
	if _, ok := local.Get(req); ok {
		t.Fatal("unexpected hit")
	}
	samples := scrape(t, reg)
	if s := obs.Find(samples, "swpf_store_peer_up", peerLabel); s == nil || s.Value != 1 {
		t.Fatalf("peer up: %+v", s)
	}
	if s := obs.Find(samples, "swpf_store_peer_misses_total", peerLabel); s == nil || s.Value != 1 {
		t.Fatalf("peer misses: %+v", s)
	}
	if s := obs.Find(samples, "swpf_store_peer_breaker_transitions_total", peerLabel); s == nil || s.Value != 0 {
		t.Fatalf("transitions before failures: %+v", s)
	}

	// Kill the peer: FailThreshold consecutive errors open the breaker
	// once (not once per failure).
	srv.Close()
	for i := 0; i < fastPeerOpts().FailThreshold+2; i++ {
		local.Get(req)
	}
	samples = scrape(t, reg)
	if s := obs.Find(samples, "swpf_store_peer_up", peerLabel); s == nil || s.Value != 0 {
		t.Fatalf("peer up after death: %+v", s)
	}
	if s := obs.Find(samples, "swpf_store_peer_breaker_transitions_total", peerLabel); s == nil || s.Value != 1 {
		t.Fatalf("transitions after death: %+v", s)
	}
	if s := obs.Find(samples, "swpf_store_peer_errors_total", peerLabel); s == nil || s.Value < float64(fastPeerOpts().FailThreshold) {
		t.Fatalf("peer errors: %+v", s)
	}
	ps, ok := local.PeerStats()
	if !ok || ps.Transitions != 1 {
		t.Fatalf("PeerStats transitions = %+v", ps)
	}
}

// TestPeerQueueDepthMetric: the write-behind queue depth gauge tracks
// len(queue) — nonzero while a slow peer holds replication back.
func TestPeerQueueDepthMetric(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()
	defer close(release)

	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := fastPeerOpts()
	opt.QueueLen = 8
	if err := local.SetPeer(slow.URL, opt); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	local.Register(reg)

	tiny := workloads.Tiny()
	for i := 0; i < 3; i++ {
		req := sweep.Request{
			Workload: tiny[i%len(tiny)],
			System:   sim.DefaultConfig(),
			Variant:  core.VariantAuto,
			Options:  core.Options{C: int64(8 << i)},
		}
		if err := local.Put(req, &core.Result{Checksum: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := obs.Find(scrape(t, reg), "swpf_store_peer_queue_depth", obs.L("peer", slow.URL))
	if s == nil {
		t.Fatal("queue depth gauge missing")
	}
	// The writer goroutine has consumed at most one item (and is
	// blocked in it); at least one of the three must still be queued.
	if s.Value < 1 {
		t.Fatalf("queue depth = %v, want >= 1", s.Value)
	}
}
