// Package store is a content-addressed, on-disk cache of simulation
// results. A (workload, machine configuration, variant, options)
// request is fully deterministic — the property the paper's
// figure-by-figure evaluation relies on — so its result can be keyed
// by a canonical hash of the request and reused forever, or until the
// timing model itself changes.
//
// Layout under the store directory:
//
//	objects/<k1k2>/<key>.json   one result per request, named by key
//	index.jsonl                 append-only catalogue of the objects
//
// The object files are the source of truth: Get never consults the
// index, so a crash between an object write and an index append loses
// nothing but a catalogue line. Object writes are atomic
// (temp file + rename), which makes concurrent writers and interrupted
// sweeps safe — a partially written entry is never visible under its
// final name. The index is one JSON line per Put (O(1) per cell,
// duplicates last-wins, torn tail lines skipped on load), so large
// sweeps never rewrite a growing file.
//
// Keys are SHA-256 over a canonical JSON document containing the store
// format version, a simulator-version salt (sim.StatsVersion), the
// workload name and constructor parameters, the full machine
// configuration, the variant, and every option. Changing any of these
// — a cache size, the look-ahead constant, a workload input size —
// therefore misses cleanly, and bumping sim.StatsVersion after a
// stat-affecting engine change invalidates every stale entry at once.
// See docs/service.md for the full invalidation rules.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// FormatVersion is the on-disk schema version, folded into every key
// so a schema change cannot misread old objects.
const FormatVersion = 1

// DefaultSalt is the simulator-version salt new stores use: bump
// sim.StatsVersion after a stat-affecting change and every existing
// entry misses.
func DefaultSalt() string { return fmt.Sprintf("sim-stats-v%d", sim.StatsVersion) }

// Store is a content-addressed result cache rooted at one directory.
// It implements sweep.Cache and is safe for concurrent use.
type Store struct {
	dir string

	// salt is the simulator-version component of every result key;
	// tests override it via OpenSalted to prove invalidation.
	salt string

	// traceSalt is the trace-format component of every trace key —
	// independent of salt, so trace and result invalidation decouple
	// (see trace.go); tests override it via OpenTraceSalted.
	traceSalt string

	// mu serialises appends to index.jsonl (and Index loads against
	// them).
	mu sync.Mutex

	// peer, when non-nil, is the HTTP store-peer this store reads
	// through and replicates to (see peer.go). Set once via SetPeer
	// before concurrent use.
	peer *peer

	hits, misses, puts                atomic.Int64
	traceHits, traceMisses, tracePuts atomic.Int64
}

// Open opens (creating if needed) the store rooted at dir, with the
// default simulator-version salt.
func Open(dir string) (*Store, error) { return OpenSalted(dir, DefaultSalt()) }

// EnvVar names the environment variable holding a default store
// directory, consulted by the commands' -store flag handling.
const EnvVar = "SWPF_STORE"

// FromFlags resolves the conventional -store / -no-store flag pair
// shared by cmd/golden, cmd/swpfbench and cmd/swpfd: an explicit
// directory wins, an empty one falls back to $SWPF_STORE, and noStore
// disables caching regardless. A nil *Store (with nil error) means
// caching is off — callers must not wrap it in a sweep.Cache without
// checking.
func FromFlags(dir string, noStore bool) (*Store, error) {
	if noStore {
		return nil, nil
	}
	if dir == "" {
		dir = os.Getenv(EnvVar)
	}
	if dir == "" {
		return nil, nil
	}
	return Open(dir)
}

// BindFlags registers the conventional -store / -no-store pair on a
// FlagSet and returns a resolver to call after parsing; the resolver
// has FromFlags semantics (nil Store = caching off).
func BindFlags(fs *flag.FlagSet) func() (*Store, error) {
	dir := fs.String("store", "", "persistent result store directory (default $"+EnvVar+"; -no-store disables)")
	noStore := fs.Bool("no-store", false, "disable the result store even when -store or $"+EnvVar+" is set")
	return func() (*Store, error) { return FromFlags(*dir, *noStore) }
}

// PutWarner returns a sweep.Runner OnPutError callback that reports
// the first persistence failure to w and swallows the rest — a full
// disk would otherwise warn once per cell. Persistence is
// best-effort, so the sweep itself continues either way.
func PutWarner(w io.Writer) func(sweep.Request, error) {
	var once sync.Once
	return func(_ sweep.Request, err error) {
		once.Do(func() {
			fmt.Fprintf(w, "warning: result store: %v (persistence is best-effort; continuing)\n", err)
		})
	}
}

// OpenSalted opens the store with an explicit version salt. Entries
// written under one salt are invisible under any other, which is how
// simulator-behaviour changes invalidate: results persist, keys move.
func OpenSalted(dir, salt string) (*Store, error) {
	return OpenTraceSalted(dir, salt, DefaultTraceSalt())
}

// OpenTraceSalted additionally pins the trace-version salt; tests use
// it to prove that a trace.FormatVersion bump invalidates trace
// objects without moving result keys.
func OpenTraceSalted(dir, salt, traceSalt string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, salt: salt, traceSalt: traceSalt}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Salt returns the simulator-version salt keys are computed under.
func (s *Store) Salt() string { return s.salt }

// keyDoc is the canonical pre-image of a cache key. Field order is
// fixed by the struct, values are plain data, and encoding/json is
// deterministic for both — so equal requests hash equally across
// processes and platforms.
//
// The request's execution mode (sweep.Request.Exec) is deliberately
// NOT a field: direct and replay produce byte-identical results, so a
// result computed under either mode must answer requests in both —
// splitting the keys would halve every warm cache for no information.
// Trace objects, where the distinction does matter, live in their own
// key space (see trace.go).
type keyDoc struct {
	Format   int
	Salt     string
	Workload string
	Params   string
	System   *sim.Config
	Variant  string
	Options  core.Options
}

// Key returns the content address of a request under the store's salt.
func (s *Store) Key(r sweep.Request) string {
	doc := keyDoc{
		Format:   FormatVersion,
		Salt:     s.salt,
		Workload: r.Workload.Name,
		Params:   r.Workload.Params,
		System:   r.System,
		Variant:  string(r.Variant),
		Options:  r.Options,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		// Every field is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("store: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// resultData is the serializable snapshot of a core.Result. The Pass
// report is deliberately absent: it holds pointers into live IR, and
// no result-set consumer (records, CSV/JSON emitters, golden dumps)
// reads it — cached results carry Pass == nil.
type resultData struct {
	Checksum int64
	Cycles   float64
	Stats    interp.Stats

	L1Hits, L1Misses   uint64
	DRAMAccesses       uint64
	SWPrefetches       uint64
	HWPrefetches       uint64
	HWPrefetchDropped  uint64
	TLBWalks           uint64
	LoadStallCycles    float64
	PrefetchLateCycles float64
	PrefetchedUnusedL1 uint64
}

// object is the on-disk entry schema: the key coordinates repeated in
// clear text (so an object file is self-describing) plus the result.
type object struct {
	Key      string
	Salt     string
	Workload string
	Params   string
	System   string
	Variant  string
	Options  core.Options
	Result   resultData
}

// IndexEntry is the payload of one catalogue line of index.jsonl.
type IndexEntry struct {
	Workload string
	Params   string
	System   string
	Variant  string
	Options  core.Options
	Salt     string
}

// indexLine is the index.jsonl per-line schema.
type indexLine struct {
	Key   string
	Entry IndexEntry
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.jsonl") }

// objectPath shards objects by the first key byte, keeping directory
// sizes sane for large sweeps.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// Get returns the cached result for the request, or (nil, false). An
// unreadable or mismatched object is treated as a miss, never an
// error: the caller will recompute and Put over it. When a peer is
// attached (SetPeer), a local miss falls through to the peer:
// read-through fetches are validated, materialized locally and served
// like local hits; a down peer degrades to local-only.
func (s *Store) Get(r sweep.Request) (*core.Result, bool) {
	key := s.Key(r)
	o, ok := s.loadObject(key)
	if !ok && s.peer != nil {
		if data, found := s.peer.fetch(key); found {
			if po, valid := decodeObject(data, key); valid {
				// Materialize locally (best-effort) so the next lookup
				// does not pay the network again.
				s.writeObject(key, data)
				o, ok = po, true
			}
		}
	}
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	d := o.Result
	return &core.Result{
		Workload: r.Workload.Name,
		System:   r.System.Name,
		Variant:  r.Variant,
		Checksum: d.Checksum,
		Cycles:   d.Cycles,
		Stats:    d.Stats,

		L1Hits:             d.L1Hits,
		L1Misses:           d.L1Misses,
		DRAMAccesses:       d.DRAMAccesses,
		SWPrefetches:       d.SWPrefetches,
		HWPrefetches:       d.HWPrefetches,
		HWPrefetchDropped:  d.HWPrefetchDropped,
		TLBWalks:           d.TLBWalks,
		LoadStallCycles:    d.LoadStallCycles,
		PrefetchLateCycles: d.PrefetchLateCycles,
		PrefetchedUnusedL1: d.PrefetchedUnusedL1,
	}, true
}

// loadObject reads and validates one local object by key.
func (s *Store) loadObject(key string) (*object, bool) {
	data, err := os.ReadFile(s.objectPath(key))
	if err != nil {
		return nil, false
	}
	return decodeObject(data, key)
}

// decodeObject validates raw object bytes against the key they claim
// to live under — the guard that keeps a corrupt or mislabelled peer
// response from ever entering the store.
func decodeObject(data []byte, key string) (*object, bool) {
	var o object
	if json.Unmarshal(data, &o) != nil || o.Key != key {
		return nil, false
	}
	return &o, true
}

// writeObject atomically writes pre-validated object bytes and indexes
// them; failures are swallowed (persistence is best-effort).
func (s *Store) writeObject(key string, data []byte) {
	o, ok := decodeObject(data, key)
	if !ok {
		return
	}
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	if err := atomicWrite(path, data); err != nil {
		return
	}
	s.puts.Add(1)
	line := indexLine{Key: key, Entry: IndexEntry{
		Workload: o.Workload,
		Params:   o.Params,
		System:   o.System,
		Variant:  o.Variant,
		Options:  o.Options,
		Salt:     o.Salt,
	}}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendIndexLocked(line)
}

// Put persists the result under the request's key and records it in
// the index. The object write is atomic, so concurrent Puts of the
// same cell (identical content) and interrupted sweeps are both safe.
// With a peer attached, the object is also queued for write-behind
// replication (see peer.go); replication failures never fail the Put.
func (s *Store) Put(r sweep.Request, res *core.Result) error {
	key := s.Key(r)
	o := object{
		Key:      key,
		Salt:     s.salt,
		Workload: r.Workload.Name,
		Params:   r.Workload.Params,
		System:   r.System.Name,
		Variant:  string(r.Variant),
		Options:  r.Options,
		Result: resultData{
			Checksum: res.Checksum,
			Cycles:   res.Cycles,
			Stats:    res.Stats,

			L1Hits:             res.L1Hits,
			L1Misses:           res.L1Misses,
			DRAMAccesses:       res.DRAMAccesses,
			SWPrefetches:       res.SWPrefetches,
			HWPrefetches:       res.HWPrefetches,
			HWPrefetchDropped:  res.HWPrefetchDropped,
			TLBWalks:           res.TLBWalks,
			LoadStallCycles:    res.LoadStallCycles,
			PrefetchLateCycles: res.PrefetchLateCycles,
			PrefetchedUnusedL1: res.PrefetchedUnusedL1,
		},
	}
	data, err := json.MarshalIndent(&o, "", " ")
	if err != nil {
		return fmt.Errorf("store: marshal object: %w", err)
	}
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.puts.Add(1)

	line := indexLine{Key: key, Entry: IndexEntry{
		Workload: o.Workload,
		Params:   o.Params,
		System:   o.System,
		Variant:  o.Variant,
		Options:  o.Options,
		Salt:     o.Salt,
	}}
	s.mu.Lock()
	ierr := s.appendIndexLocked(line)
	s.mu.Unlock()
	if s.peer != nil {
		s.peer.enqueue(key, data)
	}
	return ierr
}

// Index loads the catalogue from disk: key -> coordinates. The index
// is purely advisory and production paths never read it, so it is
// parsed on demand rather than at Open. One JSON document per line; a
// torn or corrupt line (crash mid-append) is skipped, duplicates are
// last-wins — the objects stay authoritative either way.
func (s *Store) Index() map[string]IndexEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]IndexEntry)
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return out
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		var l indexLine
		if json.Unmarshal(line, &l) == nil && l.Key != "" {
			out[l.Key] = l.Entry
		}
	}
	return out
}

// appendIndexLocked appends one catalogue line; the caller holds mu.
// O(1) per Put regardless of store size. Duplicate keys (re-puts,
// cross-process writers) are harmless: loads are last-wins, and the
// objects — the source of truth — never race.
func (s *Store) appendIndexLocked(l indexLine) error {
	data, err := json.Marshal(&l)
	if err != nil {
		return fmt.Errorf("store: marshal index line: %w", err)
	}
	f, err := os.OpenFile(s.indexPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: %w", werr)
	}
	return nil
}

// atomicWrite writes data to path via a temp file in the same
// directory plus rename, so readers only ever see complete files.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Stats is a snapshot of cache traffic since Open. The Trace counters
// track the trace-object namespace (replay sweeps); result traffic and
// trace traffic never share keys, so the two triples are independent.
type Stats struct {
	Hits, Misses, Puts                int64
	TraceHits, TraceMisses, TracePuts int64
}

// Stats reports cache traffic since the store was opened.
func (s *Store) Stats() Stats {
	return Stats{
		Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load(),
		TraceHits: s.traceHits.Load(), TraceMisses: s.traceMisses.Load(), TracePuts: s.tracePuts.Load(),
	}
}

// Interface conformance.
var _ sweep.Cache = (*Store)(nil)
