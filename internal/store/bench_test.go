package store

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// benchRequest is the cell the store benchmarks exercise: the tiny
// integer-sort workload on the generic machine, auto-prefetched.
func benchRequest() sweep.Request {
	return sweep.Request{
		Workload: workloads.Tiny()[0],
		System:   sim.DefaultConfig(),
		Variant:  core.VariantAuto,
		Options:  core.Options{C: 16},
	}
}

// BenchmarkKey measures the canonical-hash cost per request.
func BenchmarkKey(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	req := benchRequest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key(req)
	}
}

// BenchmarkGetHit measures a warm cache lookup: hash, read, decode,
// rebuild the result. Compare against BenchmarkFreshSimulation — the
// ratio is what a warm sweep saves per cell.
func BenchmarkGetHit(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	req := benchRequest()
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Put(req, res); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(req); !ok {
			b.Fatal("benchmark entry missing")
		}
	}
}

// BenchmarkPut measures persisting one result (object write + index
// flush).
func BenchmarkPut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	req := benchRequest()
	res, err := core.Run(req.Workload, req.System, req.Variant, req.Options)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(req, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreshSimulation is the cost a cache hit avoids: actually
// simulating the benchmark cell (with a storage-recycling context,
// i.e. the sweep engine's fast path).
func BenchmarkFreshSimulation(b *testing.B) {
	req := benchRequest()
	cx := core.NewContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cx.Run(req.Workload, req.System, req.Variant, req.Options); err != nil {
			b.Fatal(err)
		}
	}
}
