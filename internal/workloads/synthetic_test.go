package workloads

import (
	"strings"
	"testing"
)

// TestSyntheticDistinctAndStable: the generated pool is deterministic
// and every workload carries a distinct store-key parameter string.
func TestSyntheticDistinctAndStable(t *testing.T) {
	a, b := Synthetic(1, 8), Synthetic(1, 8)
	if len(a) != 8 {
		t.Fatalf("Synthetic(1, 8) returned %d workloads", len(a))
	}
	params := map[string]bool{}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Params != b[i].Params || a[i].want != b[i].want {
			t.Errorf("pool draw unstable at %d: %s vs %s", i, a[i].Params, b[i].Params)
		}
		if params[a[i].Params] {
			t.Errorf("duplicate params (store-key collision): %s", a[i].Params)
		}
		params[a[i].Params] = true
		if !strings.Contains(a[i].Params, "seed=") || !strings.Contains(a[i].Params, "shape=") {
			t.Errorf("params %q missing the canonical fields", a[i].Params)
		}
	}
}

// TestSyntheticInstancesRun: plain and manual instances of every
// generated workload execute and reproduce the reference checksum
// (manual is documented to fall back to plain).
func TestSyntheticInstancesRun(t *testing.T) {
	for _, w := range Synthetic(1, 6) {
		runInstance(t, w.Plain())
		runInstance(t, w.Manual(64, 0))
	}
}
