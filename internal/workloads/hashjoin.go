package workloads

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Hash-join geometry. Buckets are cache-line sized (64B): two inline
// key/value slots plus a pointer to a chain of nodes with the same
// layout, following the bucket-chaining design of Teubner et al. that
// §5.1 references. With 2 elements per bucket no chain is ever walked
// (HJ-2); with 8, the probe walks exactly three chained nodes (HJ-8).
const (
	HJDefaultKeys    = 1 << 16
	hjSlotK1         = 0
	hjSlotV1         = 1
	hjSlotK2         = 2
	hjSlotV2         = 3
	hjSlotNext       = 4
	hjWordsPerBucket = 8 // 64 bytes
)

// HJ builds the hash-join probe kernel (§5.1). The build side is
// constructed by the generator; the kernel probes every key of the
// outer relation, sums matching payloads, and returns the sum:
//
//	for (i = 0; i < n; i++) {
//	  b = &table[hash(keys[i]) & mask];
//	  acc += match(b, keys[i]);           // two inline slots
//	  for (p = b->next; p; p = p->next)   // HJ-8 only
//	    acc += match(p, keys[i]);
//	}
//
// elemsPerBucket must be 2 (HJ-2) or 8 (HJ-8). The manual variant
// staggers prefetches through the chain — e.g. bucket at offset c,
// chain nodes at 3c/4, c/2 and c/4, as §5.1 describes with c=16 —
// exploiting the fixed chain length that only the input (not the
// compiler) can reveal. Its depth parameter (1-4) reproduces figure 7.
func HJ(nkeys, elemsPerBucket int64) *Workload {
	if elemsPerBucket != 2 && elemsPerBucket != 8 {
		panic("workloads: HJ supports 2 or 8 elements per bucket")
	}
	name := "HJ-2"
	chainNodes := int64(0)
	if elemsPerBucket == 8 {
		name = "HJ-8"
		chainNodes = 3 // 2 inline + 3 nodes * 2 = 8 elements
	}

	// Number of buckets: one bucket per elemsPerBucket keys.
	nbuckets := nkeys / elemsPerBucket
	mask := nbuckets - 1
	if nbuckets&mask != 0 {
		panic("workloads: HJ key count must make a power-of-two bucket count")
	}

	// Build side: bucket b, slot t holds the key whose hash lands in b.
	// hash(k) = (k * hashMul) & mask; keys are constructed through the
	// modular inverse so every bucket receives exactly elemsPerBucket
	// keys.
	keyFor := func(bucket, slot int64) int64 {
		x := uint64(bucket) + uint64(slot)*uint64(nbuckets)*0x10001
		return int64(x * hashMulInv &^ (1 << 63))
	}
	payFor := func(bucket, slot int64) int64 { return bucket*31 + slot + 1 }

	// Probe side: every stored key once, shuffled.
	r := newRNG(0x47)
	probe := make([]int64, 0, nkeys)
	for bkt := int64(0); bkt < nbuckets; bkt++ {
		for s := int64(0); s < elemsPerBucket; s++ {
			probe = append(probe, keyFor(bkt, s))
		}
	}
	for i := len(probe) - 1; i > 0; i-- {
		j := r.intn(int64(i + 1))
		probe[i], probe[j] = probe[j], probe[i]
	}

	// Reference result: every probe key matches exactly once.
	want := int64(0)
	for bkt := int64(0); bkt < nbuckets; bkt++ {
		for s := int64(0); s < elemsPerBucket; s++ {
			want += payFor(bkt, s)
		}
	}

	w := &Workload{
		Name:         name,
		Params:       fmt.Sprintf("nkeys=%d,elemsperbucket=%d", nkeys, elemsPerBucket),
		ManualDepths: 1 + int(chainNodes),
	}
	w.want = want
	w.build = func(v Variant, c int64, depth int) *ir.Module {
		return buildHJ(v, c, depth, int(chainNodes))
	}
	w.exec = func(m *interp.Machine) (int64, error) {
		probeBase, err := m.Mem.Alloc(nkeys * 8)
		if err != nil {
			return 0, err
		}
		if err := m.Mem.WriteSlice(probeBase, ir.I64, probe); err != nil {
			return 0, err
		}
		tblBase, err := m.Mem.Alloc(nbuckets * hjWordsPerBucket * 8)
		if err != nil {
			return 0, err
		}
		arenaBase := int64(0)
		if chainNodes > 0 {
			arenaBase, err = m.Mem.Alloc(nbuckets * chainNodes * hjWordsPerBucket * 8)
			if err != nil {
				return 0, err
			}
		}
		// Lay out buckets and chains. Node slots are a shuffled
		// permutation of the arena, so chain walking has no exploitable
		// stride.
		var nodeAddr func(bucket, node int64) int64
		if chainNodes > 0 {
			perm := make([]int64, nbuckets*chainNodes)
			for i := range perm {
				perm[i] = int64(i)
			}
			pr := newRNG(0x4A11)
			for i := len(perm) - 1; i > 0; i-- {
				j := pr.intn(int64(i + 1))
				perm[i], perm[j] = perm[j], perm[i]
			}
			nodeAddr = func(bucket, node int64) int64 {
				return arenaBase + perm[bucket*chainNodes+node]*hjWordsPerBucket*8
			}
		}
		writeWord := func(addr, val int64) error { return m.Mem.Store(addr, val, ir.I64) }
		for bkt := int64(0); bkt < nbuckets; bkt++ {
			base := tblBase + bkt*hjWordsPerBucket*8
			if err := writeWord(base+hjSlotK1*8, keyFor(bkt, 0)); err != nil {
				return 0, err
			}
			if err := writeWord(base+hjSlotV1*8, payFor(bkt, 0)); err != nil {
				return 0, err
			}
			if err := writeWord(base+hjSlotK2*8, keyFor(bkt, 1)); err != nil {
				return 0, err
			}
			if err := writeWord(base+hjSlotV2*8, payFor(bkt, 1)); err != nil {
				return 0, err
			}
			prevNextField := base + hjSlotNext*8
			for nd := int64(0); nd < chainNodes; nd++ {
				na := nodeAddr(bkt, nd)
				if err := writeWord(prevNextField, na); err != nil {
					return 0, err
				}
				s := 2 + nd*2
				if err := writeWord(na+hjSlotK1*8, keyFor(bkt, s)); err != nil {
					return 0, err
				}
				if err := writeWord(na+hjSlotV1*8, payFor(bkt, s)); err != nil {
					return 0, err
				}
				if err := writeWord(na+hjSlotK2*8, keyFor(bkt, s+1)); err != nil {
					return 0, err
				}
				if err := writeWord(na+hjSlotV2*8, payFor(bkt, s+1)); err != nil {
					return 0, err
				}
				prevNextField = na + hjSlotNext*8
			}
			if err := writeWord(prevNextField, 0); err != nil {
				return 0, err
			}
		}
		return m.Run("hj", probeBase, tblBase, nkeys, mask)
	}
	return w
}

// HJ2Default returns HJ-2 at the default scale.
func HJ2Default() *Workload { return HJ(HJDefaultKeys, 2) }

// HJ8Default returns HJ-8 at the default scale.
func HJ8Default() *Workload { return HJ(HJDefaultKeys, 8) }

// buildHJ emits the probe kernel. chainNodes is the fixed chain length
// the input guarantees (0 for HJ-2, 3 for HJ-8); the kernel itself
// walks the chain with a data-dependent loop, so the compiler pass sees
// a non-induction phi and cannot prefetch the chain (§6.1) — only the
// manual variant uses the fixed length.
func buildHJ(v Variant, c int64, depth, chainNodes int) *ir.Module {
	m := ir.NewModule("hj")
	f := m.NewFunc("hj", ir.I64,
		&ir.Param{Name: "keys", Typ: ir.Ptr},
		&ir.Param{Name: "table", Typ: ir.Ptr},
		&ir.Param{Name: "n", Typ: ir.I64},
		&ir.Param{Name: "mask", Typ: ir.I64},
	)
	b := ir.NewBuilder(f)
	keys, table, n, mask := f.Param("keys"), f.Param("table"), f.Param("n"), f.Param("mask")

	var nm1 *ir.Instr
	if v == Manual {
		nm1 = b.Sub(n, ir.ConstInt(1))
	}

	entry := b.Block()
	oh := b.NewBlock("oh")
	obody := b.NewBlock("obody")
	wh := b.NewBlock("wh")
	wbody := b.NewBlock("wbody")
	olatch := b.NewBlock("olatch")
	oexit := b.NewBlock("oexit")

	b.Br(oh)

	b.SetBlock(oh)
	i := b.Named("i").Phi(ir.I64)
	acc := b.Named("acc").Phi(ir.I64)
	oc := b.Cmp(ir.PredLT, i, n)
	b.CBr(oc, obody, oexit)

	b.SetBlock(obody)
	if v == Manual {
		levels := depth
		if levels <= 0 || levels > 1+chainNodes {
			levels = 1 + chainNodes
		}
		total := int64(levels + 1)
		// Stride prefetch of the probe keys at full distance.
		pk := emitClampedIndex(b, i, c, nm1)
		b.Prefetch(b.GEP(keys, pk, 8))
		// Staggered chain prefetches: level j in [1, levels] at offset
		// c*(total-j)/total — for c=16, depth 4: 16, 12, 8, 4 wouldn't
		// quite match §5.1's example, which uses t=4; with the key
		// stride included (t=5) the shape is identical.
		for j := 1; j <= levels; j++ {
			off := c * (total - int64(j)) / total
			if off < 1 {
				off = 1
			}
			idx := emitClampedIndex(b, i, off, nm1)
			kj := b.Load(ir.I64, b.GEP(keys, idx, 8))
			h := b.Mul(kj, ir.ConstInt(hashMul))
			hm := b.And(h, mask)
			addr := ir.Value(b.GEP(table, hm, hjWordsPerBucket*8))
			// Walk j-1 real next pointers, then prefetch.
			for step := 1; step < j; step++ {
				nx := b.GEP(addr, ir.ConstInt(hjSlotNext), 8)
				addr = b.Load(ir.I64, nx)
			}
			b.Prefetch(addr)
		}
	}
	ka := b.GEP(keys, i, 8)
	k := b.Load(ir.I64, ka)
	h := b.Mul(k, ir.ConstInt(hashMul))
	hm := b.And(h, mask)
	bkt := b.GEP(table, hm, hjWordsPerBucket*8)
	k1 := b.Load(ir.I64, b.GEP(bkt, ir.ConstInt(hjSlotK1), 8))
	v1 := b.Load(ir.I64, b.GEP(bkt, ir.ConstInt(hjSlotV1), 8))
	k2 := b.Load(ir.I64, b.GEP(bkt, ir.ConstInt(hjSlotK2), 8))
	v2 := b.Load(ir.I64, b.GEP(bkt, ir.ConstInt(hjSlotV2), 8))
	m1 := b.Select(b.Cmp(ir.PredEQ, k1, k), v1, ir.ConstInt(0))
	m2 := b.Select(b.Cmp(ir.PredEQ, k2, k), v2, ir.ConstInt(0))
	acc1 := b.Add(acc, b.Add(m1, m2))
	p0 := b.Load(ir.I64, b.GEP(bkt, ir.ConstInt(hjSlotNext), 8))
	b.Br(wh)

	b.SetBlock(wh)
	p := b.Named("p").Phi(ir.Ptr)
	acc2 := b.Named("acc2").Phi(ir.I64)
	wc := b.Cmp(ir.PredNE, p, ir.ConstInt(0))
	b.CBr(wc, wbody, olatch)

	b.SetBlock(wbody)
	nk1 := b.Load(ir.I64, b.GEP(p, ir.ConstInt(hjSlotK1), 8))
	nv1 := b.Load(ir.I64, b.GEP(p, ir.ConstInt(hjSlotV1), 8))
	nk2 := b.Load(ir.I64, b.GEP(p, ir.ConstInt(hjSlotK2), 8))
	nv2 := b.Load(ir.I64, b.GEP(p, ir.ConstInt(hjSlotV2), 8))
	nm1v := b.Select(b.Cmp(ir.PredEQ, nk1, k), nv1, ir.ConstInt(0))
	nm2v := b.Select(b.Cmp(ir.PredEQ, nk2, k), nv2, ir.ConstInt(0))
	acc3 := b.Add(acc2, b.Add(nm1v, nm2v))
	pn := b.Load(ir.I64, b.GEP(p, ir.ConstInt(hjSlotNext), 8))
	b.Br(wh)

	b.SetBlock(olatch)
	i2 := b.Add(i, ir.ConstInt(1))
	b.Br(oh)

	ir.AddIncoming(i, entry, ir.ConstInt(0))
	ir.AddIncoming(i, olatch, i2)
	ir.AddIncoming(acc, entry, ir.ConstInt(0))
	ir.AddIncoming(acc, olatch, acc2)
	ir.AddIncoming(p, obody, p0)
	ir.AddIncoming(p, wbody, pn)
	ir.AddIncoming(acc2, obody, acc1)
	ir.AddIncoming(acc2, wbody, acc3)

	b.SetBlock(oexit)
	b.Ret(acc)
	f.Renumber()
	return m
}
