package workloads

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// ISDefaultKeys and ISDefaultBuckets scale NAS size B (2^25 keys into
// 2^21 buckets) down by the same factor as the simulated caches: the
// bucket array still exceeds every simulated last-level cache, so the
// indirect increment misses just as it does on the real machines.
const (
	ISDefaultKeys    = 1 << 18
	ISDefaultBuckets = 1 << 19
)

// IS builds the NAS Integer Sort bucket-counting benchmark (§5.1):
//
//	for (i = 0; i < n; i++) buckets[keys[i]]++
//
// The manual variant inserts the two prefetches of code listing 1: the
// indirect prefetch of buckets[keys[i+c/2]] and the staggered stride
// prefetch of keys[i+c].
func IS(nkeys, nbuckets int64) *Workload {
	r := newRNG(0x15)
	keys := make([]int64, nkeys)
	counts := make([]int64, nbuckets)
	for i := range keys {
		keys[i] = r.intn(nbuckets)
		counts[keys[i]]++
	}
	want := int64(0)
	for b, c := range counts {
		if c != 0 {
			want = Checksum(want, int64(b)^c)
		}
	}

	w := &Workload{Name: "IS", Params: fmt.Sprintf("nkeys=%d,nbuckets=%d", nkeys, nbuckets), want: want}
	w.build = func(v Variant, c int64, _ int) *ir.Module {
		return buildIS(v, c)
	}
	w.exec = func(m *interp.Machine) (int64, error) {
		keysBase, err := m.Mem.Alloc(nkeys * 4)
		if err != nil {
			return 0, err
		}
		bucketsBase, err := m.Mem.Alloc(nbuckets * 4)
		if err != nil {
			return 0, err
		}
		if err := m.Mem.WriteSlice(keysBase, ir.I32, keys); err != nil {
			return 0, err
		}
		if _, err := m.Run("is", keysBase, bucketsBase, nkeys); err != nil {
			return 0, err
		}
		final, err := m.Mem.ReadSlice(bucketsBase, ir.I32, nbuckets)
		if err != nil {
			return 0, err
		}
		sum := int64(0)
		for b, c := range final {
			if c != 0 {
				sum = Checksum(sum, int64(b)^c)
			}
		}
		return sum, nil
	}
	return w
}

// ISDefault returns IS at the scaled NAS size B.
func ISDefault() *Workload { return IS(ISDefaultKeys, ISDefaultBuckets) }

func buildIS(v Variant, c int64) *ir.Module {
	m := ir.NewModule("is")
	f := m.NewFunc("is", ir.Void,
		&ir.Param{Name: "keys", Typ: ir.Ptr},
		&ir.Param{Name: "buckets", Typ: ir.Ptr},
		&ir.Param{Name: "n", Typ: ir.I64},
	)
	b := ir.NewBuilder(f)
	keys, buckets, n := f.Param("keys"), f.Param("buckets"), f.Param("n")

	var nm1 *ir.Instr
	if v == Manual {
		nm1 = b.Sub(n, ir.ConstInt(1))
	}

	loop := b.CountedLoop("loop", ir.ConstInt(0), n, 1)
	i := loop.IndVar

	if v == Manual {
		// SWPF(key_buff2[i + offset*2]) — the stride prefetch that the
		// intuitive scheme misses but optimal performance requires
		// (code listing 1, line 6).
		pidx := emitClampedIndex(b, i, c, nm1)
		b.Prefetch(b.GEP(keys, pidx, 4))
		// SWPF(key_buff1[key_buff2[i + offset]]) — the indirect
		// prefetch (line 4), at half the stride distance per eq. (1).
		qidx := emitClampedIndex(b, i, c/2, nm1)
		qk := b.Load(ir.I32, b.GEP(keys, qidx, 4))
		b.Prefetch(b.GEP(buckets, qk, 4))
	}

	ka := b.GEP(keys, i, 4)
	k := b.Load(ir.I32, ka)
	ba := b.GEP(buckets, k, 4)
	bv := b.Load(ir.I32, ba)
	bv2 := b.Add(bv, ir.ConstInt(1))
	b.Store(ir.I32, ba, bv2)
	loop.Close()

	b.Ret(nil)
	f.Renumber()
	return m
}
