package workloads

import (
	"fmt"
	"sync"
)

// Quick returns the benchmark suite at reduced sizes for smoke runs:
// the irregular footprints stay larger than the simulated last-level
// caches (the property the paper's speedups rely on) while iteration
// counts shrink for fast turnaround.
func Quick() []*Workload {
	return []*Workload{
		IS(1<<14, 1<<19),
		CG(2048, 96),
		RA(19, 1<<12),
		HJ(1<<13, 2),
		HJ(1<<14, 8),
		G500(11, 8),
		G500(12, 8),
	}
}

// Qualities lists every named workload pool, in presentation order.
func Qualities() []string { return []string{"full", "quick", "tiny", "gen"} }

// Pools are memoized per quality: constructing one runs the input-data
// generators and reference checksums, which is far too heavy to redo
// inside every request handler. Workloads are read-only after
// construction, so sharing them across callers is safe (the sweep
// engine already shares them across workers).
var (
	fullPool  = sync.OnceValue(All)
	quickPool = sync.OnceValue(Quick)
	tinyPool  = sync.OnceValue(Tiny)
	// genPool is the generated-kernel family (internal/gen): synthetic
	// scenarios that sweep and cache like the paper's benchmarks, keyed
	// in the store by their canonical parameter vectors.
	genPool = sync.OnceValue(SyntheticDefault)
)

// PoolByQuality resolves a quality name to its memoized workload pool;
// "" means full. Shared by grid-spec validation (sweep.Spec), the
// daemon's cell resolver and the tuner, so every consumer agrees on
// what a (quality, name) pair denotes.
func PoolByQuality(quality string) ([]*Workload, error) {
	switch quality {
	case "", "full":
		return fullPool(), nil
	case "quick":
		return quickPool(), nil
	case "tiny":
		return tinyPool(), nil
	case "gen":
		return genPool(), nil
	default:
		return nil, fmt.Errorf("unknown quality %q (have full, quick, tiny, gen)", quality)
	}
}
