package workloads

// All returns the seven benchmark configurations of figure 4, at the
// default (scaled) sizes, in the paper's presentation order.
func All() []*Workload {
	return []*Workload{
		ISDefault(),
		CGDefault(),
		RADefault(),
		HJ2Default(),
		HJ8Default(),
		G500Small(),
		G500Large(),
	}
}

// Tiny returns reduced-size instances of every workload for tests: the
// same kernels and generators at sizes that execute in milliseconds.
func Tiny() []*Workload {
	return []*Workload{
		IS(1<<12, 1<<12),
		CG(256, 16),
		RA(14, 1<<12),
		HJ(1<<10, 2),
		HJ(1<<10, 8),
		G500(9, 8),
	}
}

// ByName builds the named default workload, or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
