package workloads

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// RA default geometry: a 2^21-entry (16MiB) table exceeds every
// simulated cache, and updates arrive in blocks of 128 as in HPCC
// RandomAccess — the structure §6.1 blames for the automatic pass
// trailing manual prefetches on the A53: the compiler clamps its
// look-ahead at each 128-iteration block boundary, so the first
// elements of every block miss.
const (
	RADefaultTableBits = 21
	RADefaultUpdates   = 1 << 16
	RABlock            = 128
)

// RA builds the HPCC RandomAccess benchmark (§5.1): a stream of
// pseudo-random values is read from an array; each is hashed and the
// hashed location in a large table is updated:
//
//	for (b = 0; b < nblocks; b++)
//	  for (i = b*128; i < min((b+1)*128, n); i++)
//	    table[hash(rnd[i]) & mask] ^= rnd[i]
//
// The manual variant prefetches rnd[i+c] and table[hash(rnd[i+c/2])],
// clamped against the global update count rather than the block end.
func RA(tableBits int64, updates int64) *Workload {
	r := newRNG(0x5A)
	tableSize := int64(1) << uint(tableBits)
	mask := tableSize - 1
	rnd := make([]int64, updates)
	for i := range rnd {
		rnd[i] = int64(r.next() >> 1)
	}

	// Reference.
	table := make([]int64, tableSize)
	for _, v := range rnd {
		table[(v*hashMul)&mask] ^= v
	}
	want := int64(0)
	for i, v := range table {
		if v != 0 {
			want = Checksum(want, int64(i)^v)
		}
	}

	w := &Workload{Name: "RA", Params: fmt.Sprintf("tablebits=%d,updates=%d", tableBits, updates), want: want}
	w.build = func(v Variant, c int64, _ int) *ir.Module {
		return buildRA(v, c)
	}
	w.exec = func(m *interp.Machine) (int64, error) {
		rndBase, err := m.Mem.Alloc(updates * 8)
		if err != nil {
			return 0, err
		}
		if err := m.Mem.WriteSlice(rndBase, ir.I64, rnd); err != nil {
			return 0, err
		}
		tblBase, err := m.Mem.Alloc(tableSize * 8)
		if err != nil {
			return 0, err
		}
		nblocks := (updates + RABlock - 1) / RABlock
		if _, err := m.Run("ra", rndBase, tblBase, nblocks, updates, mask); err != nil {
			return 0, err
		}
		final, err := m.Mem.ReadSlice(tblBase, ir.I64, tableSize)
		if err != nil {
			return 0, err
		}
		sum := int64(0)
		for i, v := range final {
			if v != 0 {
				sum = Checksum(sum, int64(i)^v)
			}
		}
		return sum, nil
	}
	return w
}

// RADefault returns RA at the scaled HPCC size.
func RADefault() *Workload { return RA(RADefaultTableBits, RADefaultUpdates) }

func buildRA(v Variant, c int64) *ir.Module {
	m := ir.NewModule("ra")
	f := m.NewFunc("ra", ir.Void,
		&ir.Param{Name: "rnd", Typ: ir.Ptr},
		&ir.Param{Name: "table", Typ: ir.Ptr},
		&ir.Param{Name: "nblocks", Typ: ir.I64},
		&ir.Param{Name: "n", Typ: ir.I64},
		&ir.Param{Name: "mask", Typ: ir.I64},
	)
	b := ir.NewBuilder(f)
	rnd, table := f.Param("rnd"), f.Param("table")
	nblocks, n, mask := f.Param("nblocks"), f.Param("n"), f.Param("mask")

	var nm1 *ir.Instr
	if v == Manual {
		nm1 = b.Sub(n, ir.ConstInt(1))
	}

	entry := b.Block()
	oh := b.NewBlock("oh")
	obody := b.NewBlock("obody")
	ih := b.NewBlock("ih")
	ibody := b.NewBlock("ibody")
	olatch := b.NewBlock("olatch")
	oexit := b.NewBlock("oexit")

	b.Br(oh)

	b.SetBlock(oh)
	blk := b.Named("blk").Phi(ir.I64)
	oc := b.Cmp(ir.PredLT, blk, nblocks)
	b.CBr(oc, obody, oexit)

	b.SetBlock(obody)
	istart := b.Mul(blk, ir.ConstInt(RABlock))
	iend0 := b.Add(istart, ir.ConstInt(RABlock))
	iend := b.Min(iend0, n)
	b.Br(ih)

	b.SetBlock(ih)
	i := b.Named("i").Phi(ir.I64)
	ic := b.Cmp(ir.PredLT, i, iend)
	b.CBr(ic, ibody, olatch)

	b.SetBlock(ibody)
	if v == Manual {
		// Global-range clamp: the look-ahead runs across block
		// boundaries, which the compiler cannot prove safe from the
		// inner loop's bound alone (§6.1, A53 discussion).
		pi := emitClampedIndex(b, i, c, nm1)
		b.Prefetch(b.GEP(rnd, pi, 8))
		qi := emitClampedIndex(b, i, c/2, nm1)
		qv := b.Load(ir.I64, b.GEP(rnd, qi, 8))
		qh := b.Mul(qv, ir.ConstInt(hashMul))
		qidx := b.And(qh, mask)
		b.Prefetch(b.GEP(table, qidx, 8))
	}
	val := b.Load(ir.I64, b.GEP(rnd, i, 8))
	h := b.Mul(val, ir.ConstInt(hashMul))
	idx := b.And(h, mask)
	ta := b.GEP(table, idx, 8)
	tv := b.Load(ir.I64, ta)
	tv2 := b.Xor(tv, val)
	b.Store(ir.I64, ta, tv2)
	i2 := b.Add(i, ir.ConstInt(1))
	b.Br(ih)

	b.SetBlock(olatch)
	blk2 := b.Add(blk, ir.ConstInt(1))
	b.Br(oh)

	ir.AddIncoming(blk, entry, ir.ConstInt(0))
	ir.AddIncoming(blk, olatch, blk2)
	ir.AddIncoming(i, obody, istart)
	ir.AddIncoming(i, ibody, i2)

	b.SetBlock(oexit)
	b.Ret(nil)
	f.Renumber()
	return m
}
