package workloads

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TestQuickISRandomGeometry: the IS kernel must match its Go reference
// for arbitrary key/bucket counts, with and without the pass, at
// arbitrary look-ahead constants.
func TestQuickISRandomGeometry(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nkeys := int64(r.Intn(2000) + 1)
		nbuckets := int64(r.Intn(1000) + 1)
		w := IS(nkeys, nbuckets)

		plain := w.Plain()
		if err := plain.Run(interp.New(plain.Mod, sim.DefaultConfig())); err != nil {
			t.Logf("seed %d plain: %v", seed, err)
			return false
		}
		auto := w.Plain()
		prefetch.Run(auto.Mod, prefetch.Options{C: int64(r.Intn(200) + 1)})
		if err := auto.Run(interp.New(auto.Mod, sim.DefaultConfig())); err != nil {
			t.Logf("seed %d auto: %v", seed, err)
			return false
		}
		man := w.Manual(int64(r.Intn(200)+2), 0)
		if err := man.Run(interp.New(man.Mod, sim.DefaultConfig())); err != nil {
			t.Logf("seed %d manual: %v", seed, err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickCGRandomGeometry: random sparse matrices, same contract.
func TestQuickCGRandomGeometry(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := int64(r.Intn(300) + 2)
		nnzPerRow := int64(r.Intn(30) + 2)
		w := CG(rows, nnzPerRow)
		for _, inst := range []*Instance{w.Plain(), w.Manual(int64(r.Intn(100)+2), 0)} {
			if err := inst.Run(interp.New(inst.Mod, sim.DefaultConfig())); err != nil {
				t.Logf("seed %d %s: %v", seed, inst.Variant, err)
				return false
			}
		}
		auto := w.Plain()
		prefetch.Run(auto.Mod, prefetch.DefaultOptions())
		if err := auto.Run(interp.New(auto.Mod, sim.DefaultConfig())); err != nil {
			t.Logf("seed %d auto: %v", seed, err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickG500RandomGraphs: BFS parents must match the reference for
// random Kronecker scales and edge factors, across variants.
func TestQuickG500RandomGraphs(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		scale := int64(r.Intn(4) + 6)
		ef := int64(r.Intn(6) + 2)
		w := G500(scale, ef)
		for _, depth := range []int{1, 2} {
			inst := w.Manual(int64(r.Intn(60)+4), depth)
			if err := inst.Run(interp.New(inst.Mod, sim.DefaultConfig())); err != nil {
				t.Logf("seed %d depth %d: %v", seed, depth, err)
				return false
			}
		}
		auto := w.Plain()
		prefetch.Run(auto.Mod, prefetch.Options{C: int64(r.Intn(60) + 4), Hoist: r.Intn(2) == 0})
		if err := auto.Run(interp.New(auto.Mod, sim.DefaultConfig())); err != nil {
			t.Logf("seed %d auto: %v", seed, err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickHJRandomKeys: both bucket layouts, arbitrary key counts
// (rounded to keep power-of-two bucket counts), across variants and
// stagger depths.
func TestQuickHJRandomKeys(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pow := uint(r.Intn(5) + 6) // 64..1024 buckets
		for _, elems := range []int64{2, 8} {
			nkeys := int64(1<<pow) * elems
			w := HJ(nkeys, elems)
			depth := r.Intn(w.ManualDepths) + 1
			for _, inst := range []*Instance{w.Plain(), w.Manual(int64(r.Intn(50)+2), depth)} {
				if err := inst.Run(interp.New(inst.Mod, sim.DefaultConfig())); err != nil {
					t.Logf("seed %d elems %d: %v", seed, elems, err)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickRARandomSizes: table bits and update counts vary; block
// boundaries (128) interact with the look-ahead clamps.
func TestQuickRARandomSizes(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := int64(r.Intn(8) + 6)
		updates := int64(r.Intn(2000) + 1) // deliberately not a multiple of 128
		w := RA(bits, updates)
		for _, inst := range []*Instance{w.Plain(), w.Manual(int64(r.Intn(300)+2), 0)} {
			if err := inst.Run(interp.New(inst.Mod, sim.DefaultConfig())); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		auto := w.Plain()
		prefetch.Run(auto.Mod, prefetch.DefaultOptions())
		if err := auto.Run(interp.New(auto.Mod, sim.DefaultConfig())); err != nil {
			t.Logf("seed %d auto: %v", seed, err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
