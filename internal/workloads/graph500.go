package workloads

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Graph500 default scales: the paper runs -s 16 -e 10 (10MiB) and
// -s 21 -e 10 (700MiB); scaled to the simulator we shrink each by the
// workload scale factor while keeping the small/large contrast that
// figure 4 exploits (different probabilities of data being cached).
const (
	G500SmallScale = 14
	G500LargeScale = 17
	G500EdgeFactor = 10
)

// G500 builds the Graph500 seq-csr breadth-first search (§5.1): a
// Kronecker (R-MAT) graph of 2^scale vertices with edgeFactor edges
// per vertex is laid out in compressed sparse row format, and the
// kernel expands one BFS frontier per invocation:
//
//	for (idx = 0; idx < wlcnt; idx++) {
//	  v = wl[idx];
//	  for (e = xoff[v]; e < xoff[v+1]; e++) {
//	    u = xadj[e];
//	    if (parent[u] == -1) { parent[u] = v; next[cnt++] = u; }
//	  }
//	}
//
// Prefetch opportunities (§5.1): the work list (stride), the vertex
// offsets via the work list (indirect), the edge list via the vertex
// offsets (doubly indirect — beyond the automatic pass, which rejects
// the inner loop's non-induction phi), and the parent array via the
// edge list inside the inner loop (stride-indirect on the edge index).
// The manual variant emits all four.
func G500(scale, edgeFactor int64) *Workload {
	nverts := int64(1) << uint(scale)
	nedges := nverts * edgeFactor

	// Kronecker/R-MAT edge generation (A=0.57, B=0.19, C=0.19).
	r := newRNG(uint64(0x6500 + scale))
	type edge struct{ u, v int64 }
	edges := make([]edge, 0, nedges*2)
	for i := int64(0); i < nedges; i++ {
		var u, v int64
		for bit := uint(0); bit < uint(scale); bit++ {
			p := r.intn(100)
			switch {
			case p < 57: // A: (0,0)
			case p < 76: // B: (0,1)
				v |= 1 << bit
			case p < 95: // C: (1,0)
				u |= 1 << bit
			default: // D: (1,1)
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, edge{u, v}, edge{v, u}) // undirected
	}
	// The (u, v) order is total up to identical duplicate edges, so the
	// sorted array is unique whatever the algorithm. Vertices fit in 31
	// bits at any realistic scale, so each edge packs into one int64 and
	// a comparator-free slices.Sort gives the same lexicographic order
	// that sort.Slice produced, minus the per-comparison closure calls.
	if scale < 32 {
		keys := make([]int64, len(edges))
		for i, e := range edges {
			keys[i] = e.u<<32 | e.v
		}
		slices.Sort(keys)
		for i, k := range keys {
			edges[i] = edge{u: k >> 32, v: k & 0xffffffff}
		}
	} else {
		slices.SortFunc(edges, func(a, b edge) int {
			if a.u != b.u {
				return cmp.Compare(a.u, b.u)
			}
			return cmp.Compare(a.v, b.v)
		})
	}

	// CSR arrays.
	xoff := make([]int64, nverts+1)
	xadj := make([]int64, 0, len(edges))
	{
		prev := edge{-1, -1}
		for _, e := range edges {
			if e == prev {
				continue // dedup
			}
			prev = e
			xadj = append(xadj, e.v)
			xoff[e.u+1]++
		}
		for i := int64(0); i < nverts; i++ {
			xoff[i+1] += xoff[i]
		}
	}

	// Root: the highest-degree vertex, so the search reaches the giant
	// component.
	root := int64(0)
	for v := int64(1); v < nverts; v++ {
		if xoff[v+1]-xoff[v] > xoff[root+1]-xoff[root] {
			root = v
		}
	}

	// Reference BFS with identical visit order.
	parentRef := make([]int64, nverts)
	for i := range parentRef {
		parentRef[i] = -1
	}
	parentRef[root] = root
	frontier := []int64{root}
	for len(frontier) > 0 {
		var next []int64
		for _, v := range frontier {
			for e := xoff[v]; e < xoff[v+1]; e++ {
				u := xadj[e]
				if parentRef[u] == -1 {
					parentRef[u] = v
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	want := int64(0)
	for v, p := range parentRef {
		if p != -1 {
			want = Checksum(want, int64(v)^p)
		}
	}

	// Manual depth 1 inserts only the outer-loop (work-list chain)
	// prefetches; depth 2 adds the inner-loop parent prefetch. The paper
	// reports inner-loop prefetches are suboptimal on Haswell (§6.1),
	// so figure 4's best-manual selection tries both.
	w := &Workload{
		Name:         fmt.Sprintf("G500-s%d", scale),
		Params:       fmt.Sprintf("scale=%d,edgefactor=%d", scale, edgeFactor),
		want:         want,
		ManualDepths: 2,
	}
	w.build = func(v Variant, c int64, depth int) *ir.Module {
		return buildG500(v, c, depth)
	}
	w.exec = func(m *interp.Machine) (int64, error) {
		alloc := func(vals []int64) (int64, error) {
			base, err := m.Mem.Alloc(int64(len(vals)) * 8)
			if err != nil {
				return 0, err
			}
			return base, m.Mem.WriteSlice(base, ir.I64, vals)
		}
		xoffBase, err := alloc(xoff)
		if err != nil {
			return 0, err
		}
		xadjBase, err := alloc(xadj)
		if err != nil {
			return 0, err
		}
		parent := make([]int64, nverts)
		for i := range parent {
			parent[i] = -1
		}
		parent[root] = root
		parentBase, err := alloc(parent)
		if err != nil {
			return 0, err
		}
		wlA, err := m.Mem.Alloc(nverts * 8)
		if err != nil {
			return 0, err
		}
		wlB, err := m.Mem.Alloc(nverts * 8)
		if err != nil {
			return 0, err
		}
		if err := m.Mem.Store(wlA, root, ir.I64); err != nil {
			return 0, err
		}
		// Level-synchronous BFS: one kernel invocation per level, with
		// the two work lists swapped — timing accumulates across calls.
		cur, nxt := wlA, wlB
		cnt := int64(1)
		for cnt > 0 {
			cnt2, err := m.Run("bfs_level", cur, cnt, nxt, xoffBase, xadjBase, parentBase)
			if err != nil {
				return 0, err
			}
			cur, nxt = nxt, cur
			cnt = cnt2
		}
		final, err := m.Mem.ReadSlice(parentBase, ir.I64, nverts)
		if err != nil {
			return 0, err
		}
		sum := int64(0)
		for v, p := range final {
			if p != -1 {
				sum = Checksum(sum, int64(v)^p)
			}
		}
		return sum, nil
	}
	return w
}

// G500Small returns the scaled -s 16 -e 10 configuration.
func G500Small() *Workload { return G500(G500SmallScale, G500EdgeFactor) }

// G500Large returns the scaled -s 21 -e 10 configuration.
func G500Large() *Workload { return G500(G500LargeScale, G500EdgeFactor) }

func buildG500(v Variant, c int64, depth int) *ir.Module {
	m := ir.NewModule("g500")
	f := m.NewFunc("bfs_level", ir.I64,
		&ir.Param{Name: "wl", Typ: ir.Ptr},
		&ir.Param{Name: "wlcnt", Typ: ir.I64},
		&ir.Param{Name: "next", Typ: ir.Ptr},
		&ir.Param{Name: "xoff", Typ: ir.Ptr},
		&ir.Param{Name: "xadj", Typ: ir.Ptr},
		&ir.Param{Name: "parent", Typ: ir.Ptr},
	)
	b := ir.NewBuilder(f)
	wl, wlcnt, next := f.Param("wl"), f.Param("wlcnt"), f.Param("next")
	xoff, xadj, parent := f.Param("xoff"), f.Param("xadj"), f.Param("parent")

	var wlm1 *ir.Instr
	if v == Manual {
		wlm1 = b.Sub(wlcnt, ir.ConstInt(1))
	}

	entry := b.Block()
	oh := b.NewBlock("oh")
	obody := b.NewBlock("obody")
	ih := b.NewBlock("ih")
	ibody := b.NewBlock("ibody")
	push := b.NewBlock("push")
	ilatch := b.NewBlock("ilatch")
	olatch := b.NewBlock("olatch")
	oexit := b.NewBlock("oexit")

	b.Br(oh)

	b.SetBlock(oh)
	idx := b.Named("idx").Phi(ir.I64)
	cnt := b.Named("cnt").Phi(ir.I64)
	oc := b.Cmp(ir.PredLT, idx, wlcnt)
	b.CBr(oc, obody, oexit)

	b.SetBlock(obody)
	if v == Manual {
		// Staggered work-list chain (§5.1): wl at c, xoff[wl] at 3c/4,
		// xadj[xoff[wl]] at c/2 — the edge-list prefetch the automatic
		// pass cannot prove safe.
		p1 := emitClampedIndex(b, idx, c, wlm1)
		b.Prefetch(b.GEP(wl, p1, 8))
		p2 := emitClampedIndex(b, idx, 3*c/4, wlm1)
		v2 := b.Load(ir.I64, b.GEP(wl, p2, 8))
		b.Prefetch(b.GEP(xoff, v2, 8))
		p3 := emitClampedIndex(b, idx, c/2, wlm1)
		v3 := b.Load(ir.I64, b.GEP(wl, p3, 8))
		e3 := b.Load(ir.I64, b.GEP(xoff, v3, 8))
		b.Prefetch(b.GEP(xadj, e3, 8))
	}
	vtx := b.Load(ir.I64, b.GEP(wl, idx, 8))
	estart := b.Load(ir.I64, b.GEP(xoff, vtx, 8))
	v1 := b.Add(vtx, ir.ConstInt(1))
	eend := b.Load(ir.I64, b.GEP(xoff, v1, 8))
	var eendm1 *ir.Instr
	if v == Manual && depth != 1 {
		eendm1 = b.Sub(eend, ir.ConstInt(1))
	}
	b.Br(ih)

	b.SetBlock(ih)
	e := b.Named("e").Phi(ir.I64)
	cnt2 := b.Named("cnt2").Phi(ir.I64)
	icond := b.Cmp(ir.PredLT, e, eend)
	b.CBr(icond, ibody, olatch)

	b.SetBlock(ibody)
	if v == Manual && depth != 1 {
		// Parent prefetch from the edge list inside the inner loop,
		// clamped to this vertex's edges (§5.1: "provided the
		// look-ahead distance is small enough to be within the same
		// vertex's edges").
		pe := b.Min(b.Add(e, ir.ConstInt(maxi64(c/4, 1))), eendm1)
		pu := b.Load(ir.I64, b.GEP(xadj, pe, 8))
		b.Prefetch(b.GEP(parent, pu, 8))
	}
	u := b.Load(ir.I64, b.GEP(xadj, e, 8))
	pa := b.GEP(parent, u, 8)
	pv := b.Load(ir.I64, pa)
	pc := b.Cmp(ir.PredEQ, pv, ir.ConstInt(-1))
	b.CBr(pc, push, ilatch)

	b.SetBlock(push)
	b.Store(ir.I64, pa, vtx)
	b.Store(ir.I64, b.GEP(next, cnt2, 8), u)
	cnt2c := b.Add(cnt2, ir.ConstInt(1))
	b.Br(ilatch)

	b.SetBlock(ilatch)
	cnt2b := b.Named("cnt2b").Phi(ir.I64)
	e2 := b.Add(e, ir.ConstInt(1))
	b.Br(ih)

	b.SetBlock(olatch)
	idx2 := b.Add(idx, ir.ConstInt(1))
	b.Br(oh)

	ir.AddIncoming(idx, entry, ir.ConstInt(0))
	ir.AddIncoming(idx, olatch, idx2)
	ir.AddIncoming(cnt, entry, ir.ConstInt(0))
	ir.AddIncoming(cnt, olatch, cnt2)
	ir.AddIncoming(e, obody, estart)
	ir.AddIncoming(e, ilatch, e2)
	ir.AddIncoming(cnt2, obody, cnt)
	ir.AddIncoming(cnt2, ilatch, cnt2b)
	ir.AddIncoming(cnt2b, ibody, cnt2)
	ir.AddIncoming(cnt2b, push, cnt2c)

	b.SetBlock(oexit)
	b.Ret(cnt)
	f.Renumber()
	return m
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
