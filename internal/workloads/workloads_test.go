package workloads

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// runInstance executes an instance on a small default machine and
// validates the checksum against the Go reference.
func runInstance(t *testing.T, inst *Instance) *interp.Machine {
	t.Helper()
	if err := inst.Mod.Verify(); err != nil {
		t.Fatalf("%s/%s: module does not verify: %v", inst.Name, inst.Variant, err)
	}
	m := interp.New(inst.Mod, sim.DefaultConfig())
	if err := inst.Run(m); err != nil {
		t.Fatalf("%v", err)
	}
	return m
}

func TestAllPlainMatchReference(t *testing.T) {
	for _, w := range Tiny() {
		t.Run(w.Name, func(t *testing.T) {
			runInstance(t, w.Plain())
		})
	}
}

func TestAllManualMatchReference(t *testing.T) {
	for _, w := range Tiny() {
		t.Run(w.Name, func(t *testing.T) {
			runInstance(t, w.Manual(64, 0))
		})
	}
}

// TestAllAutoMatchReference applies the compiler pass to every plain
// kernel and checks both validity and semantic preservation.
func TestAllAutoMatchReference(t *testing.T) {
	for _, w := range Tiny() {
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Plain()
			prefetch.Run(inst.Mod, prefetch.DefaultOptions())
			inst.Variant = "auto"
			runInstance(t, inst)
		})
	}
}

// TestAutoPrefetchCounts pins down which prefetches the pass finds in
// each kernel, mirroring the paper's qualitative claims (§6.1).
func TestAutoPrefetchCounts(t *testing.T) {
	cases := []struct {
		w    *Workload
		fn   string
		want int // emitted prefetches
	}{
		// IS: stride + indirect (code listing 1).
		{IS(1<<10, 1<<10), "is", 2},
		// CG: stride on colidx + indirect on x.
		{CG(64, 8), "cg", 2},
		// RA: stride on rnd + hashed indirect on table.
		{RA(10, 1<<8), "ra", 2},
	}
	for _, c := range cases {
		t.Run(c.w.Name, func(t *testing.T) {
			inst := c.w.Plain()
			res := prefetch.Run(inst.Mod, prefetch.DefaultOptions())[c.fn]
			if len(res.Emitted) != c.want {
				for _, r := range res.Rejections {
					t.Logf("rejection: %%%s: %s", r.Load.Name, r.Reason)
				}
				t.Fatalf("emitted %d prefetches, want %d\n%s",
					len(res.Emitted), c.want, inst.Mod.String())
			}
		})
	}
}

// TestHJAutoMissesChain: the pass must pick up the stride-hash-indirect
// bucket accesses but reject the linked-list walk (non-induction phi),
// exactly the limitation §6.1 reports for HJ-8.
func TestHJAutoMissesChain(t *testing.T) {
	inst := HJ(1<<10, 8).Plain()
	res := prefetch.Run(inst.Mod, prefetch.Options{C: 64})["hj"]
	if len(res.Emitted) == 0 {
		t.Fatal("no prefetches emitted for the bucket accesses")
	}
	for _, e := range res.Emitted {
		if e.Hoisted {
			continue
		}
		// All prefetches must target the bucket structure (chain length
		// 2: keys -> bucket), never the list nodes.
		if e.ChainLen != 2 {
			t.Errorf("chain length %d at position %d: the list walk should be rejected", e.ChainLen, e.Position)
		}
	}
	sawPhiReject := false
	for _, r := range res.Rejections {
		if r.Reason == prefetch.RejectNonIVPhi {
			sawPhiReject = true
		}
	}
	if !sawPhiReject {
		t.Error("expected non-induction-phi rejections for the list walk")
	}
}

// TestG500AutoSkipsEdgeList: the pass picks up work-list and parent
// prefetches but cannot construct the doubly indirect edge-list
// prefetch (§6.1: "cannot pick up prefetches to the edge list").
func TestG500AutoSkipsEdgeList(t *testing.T) {
	inst := G500(8, 4).Plain()
	res := prefetch.Run(inst.Mod, prefetch.Options{C: 64})["bfs_level"]
	if len(res.Emitted) == 0 {
		t.Fatal("no prefetches emitted")
	}
	f := inst.Mod.Func("bfs_level")
	xadjParam := f.Param("xadj")
	for _, e := range res.Emitted {
		// No emitted prefetch may target the edge list (xadj) directly
		// from the work-list chain (that requires chain length 3).
		if e.ChainLen > 2 {
			t.Errorf("pass emitted a chain of length %d; paper says this is out of reach", e.ChainLen)
		}
		_ = xadjParam
	}
}

func TestManualDepthVariants(t *testing.T) {
	w := HJ(1<<10, 8)
	if w.ManualDepths != 4 {
		t.Fatalf("HJ-8 manual depths = %d, want 4", w.ManualDepths)
	}
	for d := 1; d <= w.ManualDepths; d++ {
		inst := w.Manual(16, d)
		if err := inst.Mod.Verify(); err != nil {
			t.Fatalf("depth %d does not verify: %v", d, err)
		}
		m := interp.New(inst.Mod, sim.DefaultConfig())
		if err := inst.Run(m); err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
	}
	// Deeper stagger must issue more prefetches.
	count := func(d int) uint64 {
		inst := w.Manual(16, d)
		m := interp.New(inst.Mod, sim.DefaultConfig())
		if err := inst.Run(m); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Prefetches
	}
	if !(count(1) < count(2) && count(2) < count(3) && count(3) < count(4)) {
		t.Errorf("prefetch counts not increasing with depth: %d %d %d %d",
			count(1), count(2), count(3), count(4))
	}
}

// TestManualBeatsPlainInOrder: on an in-order core, manually
// prefetched memory-bound workloads must run substantially faster than
// the plain kernels — the headline effect of the paper. The inputs
// here are big enough that the irregular target array exceeds the
// caches; the Tiny() sizes are deliberately cache-resident (there,
// prefetch overhead legitimately wins, which is figure 8's cost story).
func TestManualBeatsPlainInOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-bound sizes are slow")
	}
	cfg := sim.DefaultConfig()
	cfg.OutOfOrder = false
	cfg.IssueWidth = 2
	for _, w := range []*Workload{IS(1<<15, 1<<17), RA(18, 1<<13), HJ(1<<15, 8)} {
		t.Run(w.Name, func(t *testing.T) {
			plain := w.Plain()
			mp := interp.New(plain.Mod, cfg)
			if err := plain.Run(mp); err != nil {
				t.Fatal(err)
			}
			man := w.Manual(64, 0)
			mm := interp.New(man.Mod, cfg)
			if err := man.Run(mm); err != nil {
				t.Fatal(err)
			}
			speedup := mp.Stats().Cycles / mm.Stats().Cycles
			t.Logf("%s manual speedup (in-order): %.2fx", w.Name, speedup)
			if speedup < 1.2 {
				t.Errorf("manual prefetching gained only %.2fx on a memory-bound in-order run", speedup)
			}
		})
	}
}

// TestManualNeverCatastrophic: even on cache-resident inputs, manual
// prefetching must not blow the run up by more than the instruction
// overhead can explain.
func TestManualNeverCatastrophic(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.OutOfOrder = false
	cfg.IssueWidth = 2
	for _, w := range Tiny() {
		t.Run(w.Name, func(t *testing.T) {
			plain := w.Plain()
			mp := interp.New(plain.Mod, cfg)
			if err := plain.Run(mp); err != nil {
				t.Fatal(err)
			}
			man := w.Manual(64, 0)
			mm := interp.New(man.Mod, cfg)
			if err := man.Run(mm); err != nil {
				t.Fatal(err)
			}
			slowdown := mm.Stats().Cycles / mp.Stats().Cycles
			if slowdown > 2.5 {
				t.Errorf("manual prefetching %.2fx slower on cache-resident input", slowdown)
			}
		})
	}
}

func TestChecksumOrderSensitivity(t *testing.T) {
	a := Checksum(Checksum(0, 1), 2)
	b := Checksum(Checksum(0, 2), 1)
	if a == b {
		t.Error("checksum should be order-sensitive for array contents")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(8)
	if a.next() == c.next() {
		t.Error("different seeds should diverge")
	}
}

func TestMulInv(t *testing.T) {
	if hashMul*hashMulInv != 1 {
		t.Fatalf("hashMulInv wrong: %d * %d = %d", uint64(hashMul), hashMulInv, hashMul*hashMulInv)
	}
}

func TestHJKeyConstruction(t *testing.T) {
	// Every generated key must hash to its intended bucket.
	nbuckets := int64(1 << 8)
	mask := nbuckets - 1
	for bkt := int64(0); bkt < nbuckets; bkt += 17 {
		for s := int64(0); s < 8; s++ {
			x := uint64(bkt) + uint64(s)*uint64(nbuckets)*0x10001
			k := int64(x * hashMulInv &^ (1 << 63))
			if (k*hashMul)&mask != bkt {
				t.Fatalf("key for bucket %d slot %d hashes to %d", bkt, s, (k*hashMul)&mask)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every default-size workload, including the large G500 graph")
	}
	for _, name := range []string{"IS", "CG", "RA", "HJ-2", "HJ-8", "G500-s14", "G500-s17"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("LINPACK") != nil {
		t.Error("unknown workload resolved")
	}
}

func TestVariantString(t *testing.T) {
	if Plain.String() != "plain" || Manual.String() != "manual" {
		t.Error("variant names wrong")
	}
}

func TestKernelsReparse(t *testing.T) {
	// Every kernel must round-trip through the textual IR: this keeps
	// the printer/parser honest on real code, and documents that the
	// kernels can be dumped for inspection with cmd/swpfc.
	for _, w := range Tiny() {
		for _, inst := range []*Instance{w.Plain(), w.Manual(32, 0)} {
			text := inst.Mod.String()
			m2, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("%s/%s: reparse: %v", inst.Name, inst.Variant, err)
			}
			if m2.String() != text {
				t.Errorf("%s/%s: print/parse unstable", inst.Name, inst.Variant)
			}
		}
	}
}
