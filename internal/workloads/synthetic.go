package workloads

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Synthetic wraps n generated kernels (internal/gen, drawn from the
// given seed) as first-class workloads: they sweep, cache and plot
// exactly like the paper's benchmarks. Params carries the kernel's
// full canonical parameter vector — seed included — so internal/store
// cache keys distinguish every generated scenario, the same contract
// the hand-written constructors follow.
//
// Generated kernels have no hand-tuned prefetch placement, so the
// manual variant falls back to the plain kernel: speedup(manual) is
// exactly 1 by construction. The interesting variants are plain vs
// auto/icc/indirect-only, which is what the generator exists to
// exercise.
func Synthetic(seed uint64, n int) []*Workload {
	kernels := gen.Family(seed, n)
	out := make([]*Workload, len(kernels))
	for i, k := range kernels {
		out[i] = &Workload{
			Name:   fmt.Sprintf("GEN-%02d", i),
			Params: k.P.Canonical(),
			build:  func(Variant, int64, int) *ir.Module { return k.Build() },
			exec:   func(m *interp.Machine) (int64, error) { return k.Exec(m) },
			want:   k.Want,
		}
	}
	return out
}

// SyntheticDefaultSeed and SyntheticDefaultCount parameterize the
// generated pool the CLI surfaces expose (swpfbench -gen, swpfd
// quality=gen).
const (
	SyntheticDefaultSeed  = 1
	SyntheticDefaultCount = 16
)

// SyntheticDefault returns the default generated workload pool.
func SyntheticDefault() []*Workload {
	return Synthetic(SyntheticDefaultSeed, SyntheticDefaultCount)
}
