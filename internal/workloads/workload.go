// Package workloads rebuilds the benchmarks of §5.1 of Ainsworth &
// Jones (CGO 2017) as IR kernels with deterministic data generators:
//
//	IS     NAS Integer Sort bucket-counting loop
//	CG     NAS Conjugate Gradient sparse matrix-vector product
//	RA     HPCC RandomAccess table update
//	HJ     hash join probe (2 or 8 elements per bucket)
//	G500   Graph500 breadth-first search over a Kronecker graph in CSR
//
// Each workload provides a Plain kernel (what a compiler sees before
// the prefetch pass) and a Manual variant with the best hand-inserted
// prefetches the paper describes, including the input-dependent
// knowledge the automatic pass cannot have (HJ-8 chain length, RA's
// block-repeat structure, G500's edge-list prefetch).
//
// Inputs are scaled down relative to the paper (see DESIGN.md), in
// proportion to the uarch package's CacheScale.
package workloads

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Variant selects how prefetches got into the kernel.
type Variant int

// Variants. Auto is produced by the bench harness by running the pass
// over Plain, so this package only builds Plain and Manual.
const (
	Plain Variant = iota
	Manual
)

func (v Variant) String() string {
	switch v {
	case Plain:
		return "plain"
	case Manual:
		return "manual"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Instance is a runnable benchmark: a kernel module plus an executor
// that sets up memory, runs the kernel and returns a checksum.
type Instance struct {
	Name    string
	Variant string
	Mod     *ir.Module
	// Exec allocates and fills the input arrays (untimed), invokes the
	// kernel (timed) and returns the workload checksum.
	Exec func(m *interp.Machine) (int64, error)
	// Want is the reference checksum computed by a pure-Go
	// implementation of the same algorithm.
	Want int64
}

// Run executes the instance on the machine and validates the checksum.
func (inst *Instance) Run(m *interp.Machine) error {
	got, err := inst.Exec(m)
	if err != nil {
		return fmt.Errorf("%s/%s: %w", inst.Name, inst.Variant, err)
	}
	if got != inst.Want {
		return fmt.Errorf("%s/%s: checksum %d, want %d", inst.Name, inst.Variant, got, inst.Want)
	}
	return nil
}

// Workload builds instances of one benchmark.
type Workload struct {
	Name string
	// Params is the canonical rendering of the constructor arguments
	// (e.g. "nkeys=8192,nbuckets=131072"). Two workloads with equal
	// Name+Params generate identical kernels, inputs and checksums, so
	// the pair is the workload component of internal/store cache keys;
	// Name alone is ambiguous because sizes do not appear in it.
	Params string
	// ManualDepths reports how many staggered prefetch levels the
	// manual variant supports (fig. 7); 0 means the depth argument is
	// ignored.
	ManualDepths int

	build func(v Variant, c int64, depth int) *ir.Module
	exec  func(m *interp.Machine) (int64, error)
	want  int64
}

// Plain returns the kernel without prefetches.
func (w *Workload) Plain() *Instance {
	return &Instance{
		Name: w.Name, Variant: "plain",
		Mod:  w.build(Plain, 0, 0),
		Exec: w.exec, Want: w.want,
	}
}

// Manual returns the hand-prefetched kernel with look-ahead constant c.
// depth limits staggered prefetch levels where supported (0 = all).
func (w *Workload) Manual(c int64, depth int) *Instance {
	return &Instance{
		Name: w.Name, Variant: "manual",
		Mod:  w.build(Manual, c, depth),
		Exec: w.exec, Want: w.want,
	}
}

// Checksum is the accumulation step shared by the workload references:
// a simple order-independent mix. It delegates to gen.Mix so the
// project has exactly one definition of the checksum accumulator (the
// generated-kernel reference models use the same one).
func Checksum(acc, v int64) int64 {
	return gen.Mix(acc, v)
}

// rng adapts gen.Rand (SplitMix64, stable across Go versions) to the
// lowercase call sites the workload generators have always used; the
// bit stream is owned by gen so the two packages cannot drift apart.
type rng struct{ r *gen.Rand }

func newRNG(seed uint64) *rng { return &rng{r: gen.NewRand(seed)} }

func (r *rng) next() uint64 { return r.r.Next() }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 { return r.r.Intn(n) }

// hashMul is the multiplicative hash constant the kernels use; odd, so
// it is invertible modulo any power of two, letting the generators
// construct keys that land in chosen buckets.
const hashMul = 2654435761

// hashMulInv is hashMul^-1 mod 2^64.
var hashMulInv = mulInv(hashMul)

// mulInv computes the multiplicative inverse of odd a modulo 2^64 by
// Newton iteration.
func mulInv(a uint64) uint64 {
	x := a // correct to 3 bits
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return x
}

// emitClampedIndex is a helper for manual-prefetch builders: it emits
// min(iv+off, bound) where bound is inclusive.
func emitClampedIndex(b *ir.Builder, iv ir.Value, off int64, bound ir.Value) *ir.Instr {
	adv := b.Add(iv, ir.ConstInt(off))
	return b.Min(adv, bound)
}
