package workloads

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// CG default geometry: scaled from NAS size B (75k rows, ~13M
// non-zeros). The dense vector x is deliberately small relative to the
// other irregular footprints — §5.1 notes CG's irregular dataset is
// more likely to fit in the L2 cache and stress the TLB less.
const (
	// 16384 rows put the dense vector x at 128KiB — above the scaled
	// Haswell/Phi L2s and at the scaled ARM L2 capacities, matching the
	// paper's 600KB-vs-256KiB..1MiB relation ("more likely to fit in
	// the L2 cache" than the other irregular footprints, §5.1). Rows
	// average ~192 non-zeros like NAS size B's ~180, so the c=64
	// look-ahead fits within a row and the automatic pass's row-end
	// clamp costs little.
	CGDefaultRows      = 16384
	CGDefaultNNZPerRow = 192
)

// CG builds the sparse matrix-vector product at the heart of NAS
// Conjugate Gradient (§5.1):
//
//	for (r = 0; r < rows; r++)
//	  for (j = rowstart[r]; j < rowstart[r+1]; j++)
//	    y[r] += vals[j] * x[colidx[j]]
//
// The indirect access is x[colidx[j]]. The manual variant prefetches
// colidx[j+c] and x[colidx[j+c/2]], clamping against the global
// non-zero count so prefetches stream across row boundaries (the
// automatic pass must clamp at the row end).
func CG(rows, nnzPerRow int64) *Workload {
	r := newRNG(0xC6)
	nnz := rows * nnzPerRow
	rowstart := make([]int64, rows+1)
	colidx := make([]int64, 0, nnz)
	vals := make([]int64, 0, nnz)
	x := make([]int64, rows)
	for i := range x {
		x[i] = r.intn(1 << 20)
	}
	for row := int64(0); row < rows; row++ {
		rowstart[row] = int64(len(colidx))
		// Row lengths vary a little around the mean, like a real
		// unstructured matrix.
		rowLen := nnzPerRow/2 + r.intn(nnzPerRow)
		for k := int64(0); k < rowLen; k++ {
			colidx = append(colidx, r.intn(rows))
			vals = append(vals, r.intn(256))
		}
	}
	rowstart[rows] = int64(len(colidx))
	total := int64(len(colidx))

	// Reference.
	want := int64(0)
	for row := int64(0); row < rows; row++ {
		sum := int64(0)
		for j := rowstart[row]; j < rowstart[row+1]; j++ {
			sum += vals[j] * x[colidx[j]]
		}
		want = Checksum(want, sum)
	}

	w := &Workload{Name: "CG", Params: fmt.Sprintf("rows=%d,nnzperrow=%d", rows, nnzPerRow), want: want}
	w.build = func(v Variant, c int64, _ int) *ir.Module {
		return buildCG(v, c)
	}
	w.exec = func(m *interp.Machine) (int64, error) {
		alloc := func(vals []int64, t ir.Type) (int64, error) {
			base, err := m.Mem.Alloc(int64(len(vals)) * t.Size())
			if err != nil {
				return 0, err
			}
			return base, m.Mem.WriteSlice(base, t, vals)
		}
		rsBase, err := alloc(rowstart, ir.I64)
		if err != nil {
			return 0, err
		}
		ciBase, err := alloc(colidx, ir.I32)
		if err != nil {
			return 0, err
		}
		vBase, err := alloc(vals, ir.I64)
		if err != nil {
			return 0, err
		}
		xBase, err := alloc(x, ir.I64)
		if err != nil {
			return 0, err
		}
		yBase, err := m.Mem.Alloc(rows * 8)
		if err != nil {
			return 0, err
		}
		if _, err := m.Run("cg", rsBase, ciBase, vBase, xBase, yBase, rows, total); err != nil {
			return 0, err
		}
		y, err := m.Mem.ReadSlice(yBase, ir.I64, rows)
		if err != nil {
			return 0, err
		}
		sum := int64(0)
		for _, v := range y {
			sum = Checksum(sum, v)
		}
		return sum, nil
	}
	return w
}

// CGDefault returns CG at the scaled NAS size B.
func CGDefault() *Workload { return CG(CGDefaultRows, CGDefaultNNZPerRow) }

func buildCG(v Variant, c int64) *ir.Module {
	m := ir.NewModule("cg")
	f := m.NewFunc("cg", ir.Void,
		&ir.Param{Name: "rowstart", Typ: ir.Ptr},
		&ir.Param{Name: "colidx", Typ: ir.Ptr},
		&ir.Param{Name: "vals", Typ: ir.Ptr},
		&ir.Param{Name: "x", Typ: ir.Ptr},
		&ir.Param{Name: "y", Typ: ir.Ptr},
		&ir.Param{Name: "rows", Typ: ir.I64},
		&ir.Param{Name: "nnz", Typ: ir.I64},
	)
	b := ir.NewBuilder(f)
	rowstart, colidx, vals := f.Param("rowstart"), f.Param("colidx"), f.Param("vals")
	x, y, rows, nnz := f.Param("x"), f.Param("y"), f.Param("rows"), f.Param("nnz")

	var nnzm1 *ir.Instr
	if v == Manual {
		nnzm1 = b.Sub(nnz, ir.ConstInt(1))
	}

	entry := b.Block()
	oh := b.NewBlock("oh")
	obody := b.NewBlock("obody")
	ih := b.NewBlock("ih")
	ibody := b.NewBlock("ibody")
	iexit := b.NewBlock("iexit")
	oexit := b.NewBlock("oexit")

	b.Br(oh)

	b.SetBlock(oh)
	rIdx := b.Named("r").Phi(ir.I64)
	oc := b.Cmp(ir.PredLT, rIdx, rows)
	b.CBr(oc, obody, oexit)

	b.SetBlock(obody)
	jstart := b.Load(ir.I64, b.GEP(rowstart, rIdx, 8))
	r1 := b.Add(rIdx, ir.ConstInt(1))
	jend := b.Load(ir.I64, b.GEP(rowstart, r1, 8))
	b.Br(ih)

	b.SetBlock(ih)
	j := b.Named("j").Phi(ir.I64)
	sum := b.Named("sum").Phi(ir.I64)
	ic := b.Cmp(ir.PredLT, j, jend)
	b.CBr(ic, ibody, iexit)

	b.SetBlock(ibody)
	if v == Manual {
		// Prefetch across row boundaries: clamp against the whole
		// non-zero range, which the compiler pass cannot prove safe.
		pj := emitClampedIndex(b, j, c, nnzm1)
		b.Prefetch(b.GEP(colidx, pj, 4))
		qj := emitClampedIndex(b, j, c/2, nnzm1)
		qcol := b.Load(ir.I32, b.GEP(colidx, qj, 4))
		b.Prefetch(b.GEP(x, qcol, 8))
		// The vals stream is a plain stride; hardware covers it, as the
		// paper leaves pure strides to the hardware prefetcher (§4.3).
	}
	col := b.Load(ir.I32, b.GEP(colidx, j, 4))
	xv := b.Load(ir.I64, b.GEP(x, col, 8))
	vv := b.Load(ir.I64, b.GEP(vals, j, 8))
	prod := b.Mul(vv, xv)
	sum2 := b.Add(sum, prod)
	j2 := b.Add(j, ir.ConstInt(1))
	b.Br(ih)

	b.SetBlock(iexit)
	b.Store(ir.I64, b.GEP(y, rIdx, 8), sum)
	r2 := b.Add(rIdx, ir.ConstInt(1))
	b.Br(oh)

	ir.AddIncoming(rIdx, entry, ir.ConstInt(0))
	ir.AddIncoming(rIdx, iexit, r2)
	ir.AddIncoming(j, obody, jstart)
	ir.AddIncoming(j, ibody, j2)
	ir.AddIncoming(sum, obody, ir.ConstInt(0))
	ir.AddIncoming(sum, ibody, sum2)

	b.SetBlock(oexit)
	b.Ret(nil)
	f.Renumber()
	return m
}
