package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// ExecMode selects how a cell's statistics are produced: by
// interpreting the kernel directly, or by replaying a recorded trace
// through the timing model. The two are byte-for-byte identical (the
// golden harness diffs them); replay amortizes interpretation across
// the machine × hwpf axes of a grid.
type ExecMode string

// Execution modes.
const (
	ExecDirect ExecMode = "direct"
	ExecReplay ExecMode = "replay"
)

// ExecModes lists the accepted execution modes in presentation order.
func ExecModes() []ExecMode { return []ExecMode{ExecDirect, ExecReplay} }

// ParseExecMode parses an -exec flag value ("" selects direct).
func ParseExecMode(s string) (ExecMode, error) {
	switch strings.TrimSpace(s) {
	case "", string(ExecDirect):
		return ExecDirect, nil
	case string(ExecReplay):
		return ExecReplay, nil
	}
	return "", fmt.Errorf("core: unknown exec mode %q (have direct, replay)", s)
}

// optionsMeta canonically encodes the option set for the trace header.
// Informational: store keys hash the Options struct itself.
func optionsMeta(o Options) string {
	b, err := json.Marshal(o)
	if err != nil {
		panic(fmt.Sprintf("core: marshal options: %v", err)) // plain data; unreachable
	}
	return string(b)
}

// Record executes the requested variant of the workload on cfg with
// the trace recorder attached, returning the sealed trace alongside
// the run's own Result. The Result is exactly what Run would have
// produced (recording does not perturb the simulation), so a caller
// recording for a grid gets the recording configuration's cell for
// free. The trace itself is machine-independent: recording under any
// configuration yields identical bytes, which is why one trace serves
// every machine × hwpf cell of a (workload, variant) group.
func (cx *Context) Record(w *workloads.Workload, cfg *sim.Config, v Variant, o Options) (*trace.Trace, *Result, error) {
	inst, passRes, err := instance(w, v, o)
	if err != nil {
		return nil, nil, err
	}

	mach := interp.NewOnCore(inst.Mod, cx.core(cfg))
	mach.MaxInstrs = o.MaxInstrs
	tw := trace.NewWriter()
	mach.RecordTo(tw)
	sum, err := inst.Exec(mach)
	if err != nil {
		return nil, nil, fmt.Errorf("core: record %s/%s on %s: %w", w.Name, v, cfg.Name, err)
	}
	if sum != inst.Want {
		return nil, nil, fmt.Errorf("core: record %s/%s on %s: checksum %d, want %d",
			w.Name, v, cfg.Name, sum, inst.Want)
	}

	st := mach.Stats()
	oc := make([]uint64, len(st.OpCounts))
	copy(oc, st.OpCounts[:])
	t := tw.Close(
		trace.Meta{Workload: w.Name, Params: w.Params, Variant: string(v), Options: optionsMeta(o)},
		trace.Summary{
			Executed: st.Executed, OpCounts: oc,
			Loads: st.Loads, Stores: st.Stores, Prefetches: st.Prefetches,
			Checksum: sum,
		},
	)
	return t, assemble(w.Name, cfg.Name, v, sum, st, mach.Core.Hierarchy(), passRes), nil
}

// Record is the package-level one-shot form of Context.Record.
func Record(w *workloads.Workload, cfg *sim.Config, v Variant, o Options) (*trace.Trace, *Result, error) {
	return NewContext().Record(w, cfg, v, o)
}

// ReplayImage retimes a predecoded trace on cfg, reusing the context's
// simulator for that configuration. The Result is byte-for-byte
// identical to Run of the same (workload, variant, options) on cfg —
// Pass excepted, which replay cannot reconstruct (it carries nil, like
// every store-served result). The Image may be shared across contexts
// and goroutines: replay only reads it.
func (cx *Context) ReplayImage(im *interp.Image, cfg *sim.Config) (*Result, error) {
	t := im.Trace()
	st, err := im.Replay(cx.core(cfg))
	if err != nil {
		return nil, fmt.Errorf("core: replay %s/%s on %s: %w", t.Meta.Workload, t.Meta.Variant, cfg.Name, err)
	}
	return assemble(t.Meta.Workload, cfg.Name, Variant(t.Meta.Variant), t.Summary.Checksum,
		st, cx.core(cfg).Hierarchy(), nil), nil
}

// ReplayTrace is the one-shot form: decode and retime in one call.
// Callers replaying one trace on several configurations should build
// the interp.Image once and use ReplayImage.
func (cx *Context) ReplayTrace(t *trace.Trace, cfg *sim.Config) (*Result, error) {
	im, err := interp.NewImage(t)
	if err != nil {
		return nil, fmt.Errorf("core: replay %s/%s: %w", t.Meta.Workload, t.Meta.Variant, err)
	}
	return cx.ReplayImage(im, cfg)
}

// ReplayTrace is the package-level one-shot form of Context.ReplayTrace.
func ReplayTrace(t *trace.Trace, cfg *sim.Config) (*Result, error) {
	return NewContext().ReplayTrace(t, cfg)
}
