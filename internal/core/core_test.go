package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func TestRunAllVariants(t *testing.T) {
	w := workloads.IS(1<<12, 1<<14)
	cfg := uarch.Haswell()
	for _, v := range []Variant{VariantPlain, VariantAuto, VariantManual, VariantICC, VariantIndirectOnly} {
		res, err := Run(w, cfg, v, Options{})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.Cycles <= 0 {
			t.Errorf("%s: no cycles", v)
		}
		if res.Workload != "IS" || res.System != "Haswell" || res.Variant != v {
			t.Errorf("%s: metadata wrong: %+v", v, res)
		}
		switch v {
		case VariantPlain, VariantManual:
			if res.Pass != nil {
				t.Errorf("%s: unexpected pass report", v)
			}
		default:
			if res.Pass == nil {
				t.Errorf("%s: missing pass report", v)
			}
		}
	}
}

func TestRunChecksumsAgree(t *testing.T) {
	w := workloads.RA(12, 1<<10)
	cfg := uarch.A53()
	var sums []int64
	for _, v := range []Variant{VariantPlain, VariantAuto, VariantManual} {
		res, err := Run(w, cfg, v, Options{C: 16})
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Checksum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("checksums diverge: %v", sums)
	}
}

// TestContextReuseBitIdentical is the regression test for the reusable
// execution context: interleaved runs on one Context — same cell twice
// with different cells and machines in between — must reproduce a fresh
// simulator's statistics exactly.
func TestContextReuseBitIdentical(t *testing.T) {
	is := workloads.IS(1<<12, 1<<14)
	ra := workloads.RA(12, 1<<10)
	// The context keys simulators by configuration pointer (derived
	// configs can share a name), so hold the two configs across runs.
	hw, a53 := uarch.Haswell(), uarch.A53()
	cx := NewContext()
	first, err := cx.Run(is, hw, VariantAuto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the context's simulators with other cells.
	if _, err := cx.Run(ra, a53, VariantManual, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cx.Run(is, hw, VariantPlain, Options{}); err != nil {
		t.Fatal(err)
	}
	again, err := cx.Run(is, hw, VariantAuto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(is, hw, VariantAuto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []*Result{again, fresh} {
		if got.Cycles != first.Cycles || got.Stats != first.Stats ||
			got.Checksum != first.Checksum ||
			got.L1Hits != first.L1Hits || got.L1Misses != first.L1Misses ||
			got.DRAMAccesses != first.DRAMAccesses || got.TLBWalks != first.TLBWalks {
			t.Fatalf("context reuse not bit-identical: %+v vs %+v", got, first)
		}
	}
	if len(cx.cores) != 2 {
		t.Errorf("context holds %d cores, want one per configuration (2)", len(cx.cores))
	}
}

func TestRunUnknownVariant(t *testing.T) {
	w := workloads.IS(1<<8, 1<<8)
	if _, err := Run(w, uarch.A53(), Variant("jit"), Options{}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestSpeedup(t *testing.T) {
	a := &Result{Cycles: 100}
	b := &Result{Cycles: 50}
	if s := Speedup(a, b); s != 2 {
		t.Errorf("Speedup = %v, want 2", s)
	}
	if s := Speedup(a, &Result{}); s != 0 {
		t.Errorf("Speedup against zero cycles = %v, want 0", s)
	}
}

func TestOptionsDefaults(t *testing.T) {
	if (Options{}).c() != 64 {
		t.Error("default c must be 64 (the paper's setting)")
	}
	if (Options{C: 16}).c() != 16 {
		t.Error("explicit c ignored")
	}
}

func TestTransform(t *testing.T) {
	mod := ir.MustParse(`module m
func f(%a: ptr, %b: ptr, %n: i64) -> void {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 4
  %t2 = load i32, %t1
  %t3 = gep %b, %t2, 4
  %t4 = load i32, %t3
  %i2 = add %i, 1
  br header
exit:
  ret
}
`)
	res, err := Transform(mod, Options{C: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res["f"].Emitted) != 2 {
		t.Errorf("emitted %d prefetches, want 2", len(res["f"].Emitted))
	}
	if !strings.Contains(mod.String(), "prefetch") {
		t.Error("transformed module contains no prefetch instruction")
	}
}

func TestExecute(t *testing.T) {
	mod := ir.MustParse(`module m
func add(%a: i64, %b: i64) -> i64 {
entry:
  %s = add %a, %b
  ret %s
}
`)
	v, st, err := Execute(mod, uarch.Haswell(), "add", 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("result = %d", v)
	}
	if st.Instructions == 0 {
		t.Error("no instructions recorded")
	}
	if _, _, err := Execute(mod, uarch.Haswell(), "missing"); err == nil {
		t.Error("missing function accepted")
	}
}

// TestVariantEffectOrdering: on an in-order machine with a memory-bound
// input, the canonical ordering must hold: manual >= auto > plain, and
// the restricted ICC mode must not beat the full pass.
func TestVariantEffectOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-bound sizes")
	}
	w := workloads.IS(1<<14, 1<<18)
	cfg := uarch.A53()
	cycles := map[Variant]float64{}
	for _, v := range []Variant{VariantPlain, VariantAuto, VariantManual, VariantICC} {
		res, err := Run(w, cfg, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cycles[v] = res.Cycles
	}
	if !(cycles[VariantAuto] < cycles[VariantPlain]) {
		t.Errorf("auto (%.0f) must beat plain (%.0f)", cycles[VariantAuto], cycles[VariantPlain])
	}
	if cycles[VariantManual] > cycles[VariantAuto]*1.1 {
		t.Errorf("manual (%.0f) should not lose badly to auto (%.0f)", cycles[VariantManual], cycles[VariantAuto])
	}
	if cycles[VariantICC] < cycles[VariantAuto]*0.9 {
		t.Errorf("restricted mode (%.0f) should not clearly beat the full pass (%.0f)",
			cycles[VariantICC], cycles[VariantAuto])
	}
}
