package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// Example measures the automatic pass on the integer-sort benchmark
// for an in-order core, the paper's headline configuration.
func Example() {
	w := workloads.IS(1<<12, 1<<14)
	cfg := uarch.A53()
	base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	auto, err := core.Run(w, cfg, core.VariantAuto, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetches emitted: %d\n", len(auto.Pass.Emitted))
	fmt.Printf("faster: %v\n", auto.Cycles < base.Cycles)
	// Output:
	// prefetches emitted: 2
	// faster: true
}
