// Package core is the top-level pipeline tying the reproduction
// together: it takes a workload (or any IR module), optionally applies
// the automatic software-prefetch pass of Ainsworth & Jones (CGO 2017),
// executes the result on a simulated microarchitecture, and reports
// cycles plus memory-system statistics.
//
// This is the API the examples and the benchmark harness consume:
//
//	w := workloads.ISDefault()
//	base, _ := core.Run(w, uarch.Haswell(), core.VariantPlain, core.Options{})
//	auto, _ := core.Run(w, uarch.Haswell(), core.VariantAuto, core.Options{})
//	fmt.Printf("speedup: %.2fx\n", core.Speedup(base, auto))
package core

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Variant selects how prefetches get into the kernel before execution.
type Variant string

// Variants.
const (
	// VariantPlain runs the kernel untouched.
	VariantPlain Variant = "plain"
	// VariantAuto applies the paper's compiler pass (§4).
	VariantAuto Variant = "auto"
	// VariantManual uses the workload's best hand-inserted prefetches.
	VariantManual Variant = "manual"
	// VariantICC applies the restricted stride-indirect-only pass that
	// models the Intel compiler's prefetcher (figure 4d).
	VariantICC Variant = "icc"
	// VariantIndirectOnly applies the pass without stride companions
	// (figure 5's "Indirect Only").
	VariantIndirectOnly Variant = "indirect-only"
)

// Options tunes the run.
type Options struct {
	// C is the look-ahead constant (default 64, the paper's setting).
	C int64
	// Depth limits staggered prefetch levels for VariantManual and the
	// pass's MaxStaggerDepth (figure 7). 0 = unlimited.
	Depth int
	// FlatOffset disables eq. (1) scheduling (ablation).
	FlatOffset bool
	// Hoist enables §4.6 loop hoisting in the automatic pass.
	Hoist bool
	// MaxInstrs bounds simulated dynamic instructions (0 = default).
	MaxInstrs uint64
}

func (o Options) c() int64 {
	if o.C == 0 {
		return 64
	}
	return o.C
}

// Result is the outcome of one simulated run.
type Result struct {
	Workload string
	System   string
	Variant  Variant
	Checksum int64

	Cycles float64
	Stats  interp.Stats

	// Pass holds the prefetch pass report for auto/icc/indirect-only
	// variants; nil otherwise.
	Pass *prefetch.Result

	// Memory-system statistics snapshot.
	L1Hits, L1Misses   uint64
	DRAMAccesses       uint64
	SWPrefetches       uint64
	HWPrefetches       uint64
	HWPrefetchDropped  uint64 // hardware prefetches dropped on a TLB miss
	TLBWalks           uint64
	LoadStallCycles    float64
	PrefetchLateCycles float64
	PrefetchedUnusedL1 uint64
}

// Speedup returns base cycles over x cycles: >1 means x is faster.
func Speedup(base, x *Result) float64 {
	if x.Cycles == 0 {
		return 0
	}
	return base.Cycles / x.Cycles
}

// passOptions maps a variant to pass options; ok=false means no pass.
func passOptions(v Variant, o Options) (prefetch.Options, bool) {
	base := prefetch.Options{
		C:               o.c(),
		MaxStaggerDepth: o.Depth,
		Hoist:           o.Hoist,
		FlatOffset:      o.FlatOffset,
	}
	switch v {
	case VariantAuto:
		return base, true
	case VariantICC:
		base.Mode = prefetch.ModeSimpleStrideIndirect
		return base, true
	case VariantIndirectOnly:
		base.NoStrideCompanion = true
		return base, true
	}
	return prefetch.Options{}, false
}

// Context is a reusable execution context for repeated Runs. It keeps
// one simulator core per machine configuration and resets it in place
// between runs — the sim package's Reset paths preserve their table
// storage, so a worker goroutine that executes many experiment-grid
// cells recycles its cache/TLB/MSHR/stride bookkeeping instead of
// reallocating it per run (see internal/sweep).
//
// Results are bit-identical to Run with a fresh simulator: Reset
// restores a cold core, and regression tests enforce the equivalence.
// A Context is not safe for concurrent use; give each goroutine its
// own.
type Context struct {
	cores map[*sim.Config]sim.CoreModel
}

// NewContext returns an empty context; cores are built lazily per
// configuration on first use.
func NewContext() *Context {
	return &Context{cores: make(map[*sim.Config]sim.CoreModel)}
}

// core returns the context's core for cfg, building it on first use;
// the core timing model is whatever cfg.Core selects (empty = the
// legacy interval model).
func (cx *Context) core(cfg *sim.Config) sim.CoreModel {
	if c, ok := cx.cores[cfg]; ok {
		return c
	}
	c := sim.NewCoreModel(cfg)
	cx.cores[cfg] = c
	return c
}

// Run builds the requested variant of the workload and executes it on
// the given machine configuration, using a fresh simulator. For tight
// loops over many runs, prefer Context.Run, which recycles simulator
// storage.
func Run(w *workloads.Workload, cfg *sim.Config, v Variant, o Options) (*Result, error) {
	return NewContext().Run(w, cfg, v, o)
}

// instance builds the requested variant of the workload: the kernel
// module (transformed for the pass variants) plus its execution driver.
// Shared by the direct path (Run) and the recording path (Record).
func instance(w *workloads.Workload, v Variant, o Options) (*workloads.Instance, *prefetch.Result, error) {
	var inst *workloads.Instance
	var passRes *prefetch.Result
	switch v {
	case VariantPlain:
		inst = w.Plain()
	case VariantManual:
		inst = w.Manual(o.c(), o.Depth)
	case VariantAuto, VariantICC, VariantIndirectOnly:
		inst = w.Plain()
		opts, _ := passOptions(v, o)
		results := prefetch.Run(inst.Mod, opts)
		for _, r := range results {
			if passRes == nil || len(r.Emitted) > len(passRes.Emitted) {
				passRes = r
			}
		}
		if err := inst.Mod.Verify(); err != nil {
			return nil, nil, fmt.Errorf("core: pass broke %s: %w", w.Name, err)
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown variant %q", v)
	}
	return inst, passRes, nil
}

// assemble snapshots the post-run simulator state into a Result — the
// one place the statistics a Result carries are defined, so the direct
// and replay paths cannot drift apart.
func assemble(workload, system string, v Variant, sum int64, st interp.Stats, hier *sim.Hierarchy, passRes *prefetch.Result) *Result {
	l1 := hier.Caches()[0]
	return &Result{
		Workload: workload,
		System:   system,
		Variant:  v,
		Checksum: sum,
		Cycles:   st.Cycles,
		Stats:    st,
		Pass:     passRes,

		L1Hits:             l1.Hits,
		L1Misses:           l1.Misses,
		DRAMAccesses:       hier.DRAMAccesses,
		SWPrefetches:       hier.SWPrefetches,
		HWPrefetches:       hier.HWPrefetches,
		HWPrefetchDropped:  hier.HWPrefetchDropped,
		TLBWalks:           hier.TLBStats().Walks,
		LoadStallCycles:    hier.LoadStallCycles,
		PrefetchLateCycles: hier.PrefetchLateCycles,
		PrefetchedUnusedL1: l1.PrefetchedUnused,
	}
}

// Run is the context-reusing counterpart of the package-level Run: the
// simulator core for cfg is reset in place rather than rebuilt.
func (cx *Context) Run(w *workloads.Workload, cfg *sim.Config, v Variant, o Options) (*Result, error) {
	inst, passRes, err := instance(w, v, o)
	if err != nil {
		return nil, err
	}

	mach := interp.NewOnCore(inst.Mod, cx.core(cfg))
	mach.MaxInstrs = o.MaxInstrs
	sum, err := inst.Exec(mach)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s on %s: %w", w.Name, v, cfg.Name, err)
	}
	if sum != inst.Want {
		return nil, fmt.Errorf("core: %s/%s on %s: checksum %d, want %d",
			w.Name, v, cfg.Name, sum, inst.Want)
	}
	return assemble(w.Name, cfg.Name, v, sum, mach.Stats(), mach.Core.Hierarchy(), passRes), nil
}

// Transform applies the automatic pass to an arbitrary IR module — the
// entry point for user-supplied kernels (see examples/customkernel and
// cmd/swpfc).
func Transform(mod *ir.Module, o Options) (map[string]*prefetch.Result, error) {
	opts, _ := passOptions(VariantAuto, o)
	res := prefetch.Run(mod, opts)
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("core: pass produced invalid IR: %w", err)
	}
	return res, nil
}

// Execute runs a function from an arbitrary module on a machine and
// returns the result value plus statistics — the generic counterpart
// of Run for custom kernels.
func Execute(mod *ir.Module, cfg *sim.Config, fn string, args ...int64) (int64, interp.Stats, error) {
	mach := interp.New(mod, cfg)
	v, err := mach.Run(fn, args...)
	if err != nil {
		return 0, interp.Stats{}, err
	}
	return v, mach.Stats(), nil
}
