package core

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// TestRecordReplayMatchesRun is the end-to-end bit-identity contract:
// for real workloads (including G500, whose driver interleaves
// host-side memory writes between kernel invocations, and pass-
// transformed variants with prefetches), a trace recorded once replays
// on every machine with a Result identical to a direct Run there —
// Pass excepted, which replay does not reconstruct.
func TestRecordReplayMatchesRun(t *testing.T) {
	ws := []*workloads.Workload{
		workloads.IS(1<<10, 1<<12),
		workloads.G500(8, 8),
		workloads.HJ(1<<9, 2),
	}
	cfgs := append(uarch.All(), uarch.WithHWPrefetcher(uarch.Haswell(), "imp"))
	o := Options{}
	for _, w := range ws {
		for _, v := range []Variant{VariantPlain, VariantAuto} {
			tr, recRes, err := Record(w, cfgs[0], v, o)
			if err != nil {
				t.Fatalf("record %s/%s: %v", w.Name, v, err)
			}
			im, err := interp.NewImage(tr)
			if err != nil {
				t.Fatalf("image %s/%s: %v", w.Name, v, err)
			}
			cx := NewContext()
			for i, cfg := range cfgs {
				want, err := cx.Run(w, cfg, v, o)
				if err != nil {
					t.Fatalf("run %s/%s on %s: %v", w.Name, v, cfg.Name, err)
				}
				want.Pass = nil // replay carries nil, like store-served results
				got, err := cx.ReplayImage(im, cfg)
				if err != nil {
					t.Fatalf("replay %s/%s on %s: %v", w.Name, v, cfg.Name, err)
				}
				if *got != *want {
					t.Errorf("%s/%s on %s:\nreplay %+v\ndirect %+v", w.Name, v, cfg.Name, got, want)
				}
				if i == 0 {
					// The recording run's own Result is the direct result
					// for the recording configuration.
					recRes.Pass = nil
					if *recRes != *want {
						t.Errorf("%s/%s: Record result differs from Run on %s", w.Name, v, cfg.Name)
					}
				}
			}
		}
	}
}

// TestRecordMachineIndependentAcrossUarch: recording the same cell on
// different Table 1 machines yields byte-identical traces.
func TestRecordMachineIndependentAcrossUarch(t *testing.T) {
	w := workloads.IS(1<<10, 1<<12)
	var traces []*trace.Trace
	for _, cfg := range uarch.All() {
		tr, _, err := Record(w, cfg, VariantAuto, Options{})
		if err != nil {
			t.Fatalf("record on %s: %v", cfg.Name, err)
		}
		traces = append(traces, tr)
	}
	for i := 1; i < len(traces); i++ {
		if !trace.Equal(traces[0], traces[i]) {
			t.Errorf("trace recorded on %s differs from %s",
				uarch.All()[i].Name, uarch.All()[0].Name)
		}
	}
}

// TestReplayTraceRoundTripsSerialization: the store path (encode →
// decode → replay) produces the same Result as replaying the freshly
// recorded trace.
func TestReplayTraceRoundTripsSerialization(t *testing.T) {
	w := workloads.IS(1<<9, 1<<10)
	cfg := uarch.A53()
	tr, _, err := Record(w, cfg, VariantAuto, Options{})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	decoded, err := trace.Decode(tr.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a, err := ReplayTrace(tr, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	b, err := ReplayTrace(decoded, cfg)
	if err != nil {
		t.Fatalf("replay decoded: %v", err)
	}
	if *a != *b {
		t.Errorf("serialized replay differs:\n%+v\n%+v", a, b)
	}
}

// TestParseExecMode covers the -exec axis parser.
func TestParseExecMode(t *testing.T) {
	for s, want := range map[string]ExecMode{
		"": ExecDirect, "direct": ExecDirect, "replay": ExecReplay, " replay ": ExecReplay,
	} {
		got, err := ParseExecMode(s)
		if err != nil || got != want {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseExecMode("jit"); err == nil {
		t.Error("ParseExecMode accepted jit")
	}
}
