package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve checks every relative link in the repository's
// markdown documentation points at a file or directory that exists.
// CI's docs job runs this, so a renamed file can't silently orphan the
// docs. External (scheme-prefixed) links and pure anchors are skipped.
func TestDocLinksResolve(t *testing.T) {
	pages := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, docs...)
	if len(pages) < 4 {
		t.Fatalf("expected README plus at least three docs pages, found %v", pages)
	}

	for _, page := range pages {
		data, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an anchor suffix; the file part must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(page), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", page, m[1], err)
			}
		}
	}
}

// TestDocsCoverCommands keeps the docs honest about the CLI surface:
// every command directory must be mentioned somewhere in the docs
// suite, so a new tool can't ship undocumented.
func TestDocsCoverCommands(t *testing.T) {
	cmds, err := filepath.Glob("cmd/*")
	if err != nil {
		t.Fatal(err)
	}
	var corpus strings.Builder
	for _, page := range []string{"README.md", "docs/architecture.md", "docs/ir.md", "docs/experiments.md", "docs/service.md", "docs/fleet.md", "docs/hwpf.md", "docs/cores.md", "docs/observability.md", "docs/testing.md", "docs/trace.md", "docs/tune.md"} {
		data, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("%s: %v (docs suite incomplete?)", page, err)
		}
		corpus.Write(data)
	}
	for _, dir := range cmds {
		name := filepath.Base(dir)
		if !strings.Contains(corpus.String(), name) {
			t.Errorf("command %s is not mentioned in README or docs/", name)
		}
	}
}
