package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndRun keeps the examples honest: each one must
// compile and run to completion, and print something. Examples are the
// first code a new user executes, so a refactor that breaks one is a
// release blocker even though nothing in cmd/ or internal/ imports
// them.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example builds skipped in -short mode")
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 4 {
		t.Fatalf("expected at least four examples, found %v", dirs)
	}
	for _, dir := range dirs {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building example %s: %v\n%s", name, err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("running example %s: %v\n%s", name, err, out)
			}
			if len(bytes.TrimSpace(out)) == 0 {
				t.Errorf("example %s printed nothing", name)
			}
		})
	}
}
