// Quickstart: build an indirect-access kernel with the IR builder, let
// the automatic pass insert software prefetches, and compare simulated
// cycles on an out-of-order and an in-order core.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/uarch"
)

// buildKernel emits the paper's running example: buckets[keys[i]]++.
func buildKernel() *ir.Module {
	m := ir.NewModule("quickstart")
	f := m.NewFunc("histogram", ir.Void,
		&ir.Param{Name: "keys", Typ: ir.Ptr},
		&ir.Param{Name: "buckets", Typ: ir.Ptr},
		&ir.Param{Name: "n", Typ: ir.I64},
	)
	b := ir.NewBuilder(f)
	loop := b.CountedLoop("loop", ir.ConstInt(0), f.Param("n"), 1)
	k := b.Load(ir.I32, b.GEP(f.Param("keys"), loop.IndVar, 4))
	slot := b.GEP(f.Param("buckets"), k, 4)
	v := b.Load(ir.I32, slot)
	b.Store(ir.I32, slot, b.Add(v, ir.ConstInt(1)))
	loop.Close()
	b.Ret(nil)
	f.Renumber()
	return m
}

// run executes the kernel over fresh random data and returns cycles.
func run(mod *ir.Module, cfg *sim.Config) float64 {
	const (
		nKeys    = 1 << 16
		nBuckets = 1 << 19
	)
	mach := interp.New(mod, cfg)
	keys, err := mach.Mem.Alloc(nKeys * 4)
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]int64, nKeys)
	seed := int64(42)
	for i := range vals {
		seed = seed*6364136223846793005 + 1442695040888963407
		vals[i] = (seed >> 33) & (nBuckets - 1)
	}
	if err := mach.Mem.WriteSlice(keys, ir.I32, vals); err != nil {
		log.Fatal(err)
	}
	buckets, err := mach.Mem.Alloc(nBuckets * 4)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mach.Run("histogram", keys, buckets, nKeys); err != nil {
		log.Fatal(err)
	}
	return mach.Stats().Cycles
}

func main() {
	plain := buildKernel()

	// Apply the paper's pass (c = 64) to a second copy.
	prefetched := buildKernel()
	results, err := core.Transform(prefetched, core.Options{C: 64})
	if err != nil {
		log.Fatal(err)
	}
	r := results["histogram"]
	fmt.Printf("pass emitted %d prefetches (+%d instructions):\n", len(r.Emitted), r.NewInstrs)
	for _, e := range r.Emitted {
		fmt.Printf("  position %d/%d at offset %d iterations (%s)\n",
			e.Position, e.ChainLen, e.Offset, describe(e))
	}
	fmt.Println()
	fmt.Println("transformed kernel:")
	fmt.Println(prefetched.String())

	for _, cfg := range []*sim.Config{uarch.Haswell(), uarch.A53()} {
		base := run(plain, cfg)
		pf := run(prefetched, cfg)
		fmt.Printf("%-8s  plain %10.0f cycles   prefetched %10.0f cycles   speedup %.2fx\n",
			cfg.Name, base, pf, base/pf)
	}
	fmt.Println("\nexpected shape (paper fig. 4): modest gain on the out-of-order")
	fmt.Println("Haswell, a large gain on the in-order A53.")
}

func describe(e prefetch.Emitted) string {
	if e.Position == 0 {
		return "stride companion on the index array"
	}
	return "indirect prefetch through a clamped look-ahead load"
}
