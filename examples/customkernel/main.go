// Custom-kernel example: write a kernel in the textual IR, transform it
// with the pass, inspect the generated prefetch code, and measure it —
// the workflow cmd/swpfc and cmd/swpfsim provide as separate tools,
// shown here through the library API.
//
// The kernel is a two-level indirection, c[b[a[i]]], which produces a
// three-deep staggered prefetch chain (offsets c, 2c/3, c/3 by eq. 1).
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/uarch"
)

const kernelSrc = `module custom

func gather2(%a: ptr, %b: ptr, %c: ptr, %n: i64, %m: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %s = phi i64 [entry: 0, body: %s2]
  %cc = cmp lt %i, %n
  cbr %cc, body, exit
body:
  %t1 = gep %a, %i, 8
  %t2 = load i64, %t1
  %t3 = gep %b, %t2, 8
  %t4 = load i64, %t3
  %t5 = gep %c, %t4, 8
  %t6 = load i64, %t5
  %s2 = add %s, %t6
  %i2 = add %i, 1
  br header
exit:
  ret %s
}
`

func main() {
	mod := ir.MustParse(kernelSrc)
	results, err := core.Transform(mod, core.Options{C: 48})
	if err != nil {
		log.Fatal(err)
	}
	r := results["gather2"]
	fmt.Printf("pass emitted %d prefetches:\n", len(r.Emitted))
	for _, e := range r.Emitted {
		fmt.Printf("  chain position %d of %d, look-ahead %d iterations\n",
			e.Position, e.ChainLen, e.Offset)
	}
	fmt.Println("\ntransformed IR:")
	fmt.Println(mod.String())

	// Execute on the in-order A53, where the three dependent misses per
	// iteration serialise without prefetching.
	const n, m = 1 << 14, 1 << 18
	run := func(src *ir.Module) float64 {
		mach := interp.New(src, uarch.A53())
		a, _ := mach.Mem.Alloc(n * 8)
		bArr, _ := mach.Mem.Alloc(m * 8)
		cArr, _ := mach.Mem.Alloc(m * 8)
		seed := int64(7)
		next := func(bound int64) int64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return (seed >> 33) & (bound - 1)
		}
		fill := func(base, count, bound int64) {
			vals := make([]int64, count)
			for i := range vals {
				vals[i] = next(bound)
			}
			if err := mach.Mem.WriteSlice(base, ir.I64, vals); err != nil {
				log.Fatal(err)
			}
		}
		fill(a, n, m)
		fill(bArr, m, m)
		fill(cArr, m, 1<<30)
		if _, err := mach.Run("gather2", a, bArr, cArr, n, m); err != nil {
			log.Fatal(err)
		}
		return mach.Stats().Cycles
	}

	base := run(ir.MustParse(kernelSrc))
	pf := run(mod)
	fmt.Printf("A53: plain %.0f cycles, prefetched %.0f cycles — %.2fx\n",
		base, pf, base/pf)
}
