// Graph500 example: breadth-first search over a Kronecker graph in CSR
// format (§5.1), showing where automatic prefetching stops and manual
// knowledge takes over.
//
// The BFS inner loop has four prefetchable streams: the work list
// (stride), vertex offsets via the work list (indirect), the edge list
// via vertex offsets (doubly indirect), and the parent array via the
// edge list (stride-indirect in the inner loop). The automatic pass
// gets all but the edge list, whose address chain crosses the inner
// loop's non-induction phi (§6.1).
//
//	go run ./examples/graph500
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	w := workloads.G500(15, 10)
	fmt.Println("Graph500 BFS, 2^15 vertices, edge factor 10")
	fmt.Printf("%-8s  %12s  %12s  %12s  %7s  %7s\n",
		"system", "plain (cyc)", "auto (cyc)", "manual (cyc)", "auto", "manual")
	for _, cfg := range uarch.All() {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		auto, err := core.Run(w, cfg, core.VariantAuto, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// Best manual scheme per system: depth 1 is outer-loop
		// prefetches only (the paper's choice on Haswell), depth 2 adds
		// the inner-loop parent prefetch.
		man, err := core.Run(w, cfg, core.VariantManual, core.Options{Depth: 1})
		if err != nil {
			log.Fatal(err)
		}
		man2, err := core.Run(w, cfg, core.VariantManual, core.Options{Depth: 2})
		if err != nil {
			log.Fatal(err)
		}
		if man2.Cycles < man.Cycles {
			man = man2
		}
		fmt.Printf("%-8s  %12.0f  %12.0f  %12.0f  %6.2fx  %6.2fx\n",
			cfg.Name, base.Cycles, auto.Cycles, man.Cycles,
			core.Speedup(base, auto), core.Speedup(base, man))
	}

	auto, err := core.Run(w, uarch.A53(), core.VariantAuto, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npass report (bfs_level):")
	fmt.Printf("  %d prefetches emitted, %d loads rejected\n",
		len(auto.Pass.Emitted), len(auto.Pass.Rejections))
	for _, e := range auto.Pass.Emitted {
		fmt.Printf("  prefetch for %%%s (chain %d, offset %d)\n",
			e.Target.Name, e.ChainLen, e.Offset)
	}
	for _, rej := range auto.Pass.Rejections {
		fmt.Printf("  rejected %%%s: %s\n", rej.Load.Name, rej.Reason)
	}
	fmt.Println("\nthe paper's observation (§6.1): on in-order systems the")
	fmt.Println("edge-to-visited-list stride-indirect dominates, so the automatic")
	fmt.Println("pass lands much closer to manual than on out-of-order cores.")
}
