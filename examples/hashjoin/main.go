// Hash-join example: the database probe workload of §5.1, comparing
// plain, automatic, and manual prefetching across all four simulated
// systems, for both bucket layouts (HJ-2: no chains, HJ-8: three
// chained nodes per bucket).
//
// The interesting contrast (paper §6.1): the automatic pass picks up
// the stride-hash-indirect bucket access on both, but only the manual
// variant can stagger prefetches down HJ-8's linked chain, because the
// fixed chain length is a property of the input, not the code.
//
//	go run ./examples/hashjoin
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	for _, elems := range []int64{2, 8} {
		w := workloads.HJ(1<<15, elems)
		fmt.Printf("=== %s (%d elements per bucket) ===\n", w.Name, elems)
		fmt.Printf("%-8s  %8s  %8s  %8s\n", "system", "plain", "auto", "manual")
		for _, cfg := range uarch.All() {
			base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			auto, err := core.Run(w, cfg, core.VariantAuto, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			man, err := core.Run(w, cfg, core.VariantManual, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s  %8.0f  %8.0f  %8.0f   auto %.2fx, manual %.2fx\n",
				cfg.Name, base.Cycles, auto.Cycles, man.Cycles,
				core.Speedup(base, auto), core.Speedup(base, man))
		}
		fmt.Println()
	}

	// Show what the pass saw on HJ-8: accepted bucket chains, rejected
	// list walks.
	w := workloads.HJ(1<<12, 8)
	res, err := core.Run(w, uarch.Haswell(), core.VariantAuto, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pass report for HJ-8:")
	fmt.Printf("  emitted %d prefetches\n", len(res.Pass.Emitted))
	for _, rej := range res.Pass.Rejections {
		fmt.Printf("  rejected %%%s: %s\n", rej.Load.Name, rej.Reason)
	}
}
