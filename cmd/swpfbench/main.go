// Command swpfbench regenerates the figures of the evaluation section
// of Ainsworth & Jones (CGO 2017) on the simulated machines, and runs
// ad-hoc experiment grids. Independent simulations fan out across a
// worker pool (-jobs, default all CPUs) with bit-identical results to
// a serial run.
//
// Usage:
//
//	swpfbench -exp all                 # every figure (several minutes)
//	swpfbench -exp fig4 -system A53    # one figure
//	swpfbench -exp fig6 -bench RA      # one look-ahead sweep
//	swpfbench -exp swhw                # software-vs-hardware prefetch table
//	swpfbench -quick                   # reduced input sizes
//	swpfbench -jobs 1                  # serial execution
//	swpfbench -list                    # enumerate every grid axis
//
// Ad-hoc grids cross user-chosen workloads, systems, hardware
// prefetchers and variants and dump per-run statistics:
//
//	swpfbench -sweep -workloads IS,CG -systems Haswell,A53 -variants plain,auto
//	swpfbench -sweep -hwpf none,stride,imp -variants plain,auto
//	swpfbench -sweep -quick -variants plain,manual -c 16 -json
//	swpfbench -sweep -gen 8 -workloads GEN -variants plain,auto
//	swpfbench -sweep -exec replay -systems Haswell,A53  # record once, retime per machine
//
// -tune searches the prefetch configuration space (internal/tune)
// instead of running a fixed grid: it finds the (look-ahead, depth,
// hoist, hardware-prefetcher) configuration with the best speedup over
// the no-prefetch baseline for each selected workload × system pair
// and reports the best point plus the full look-ahead sensitivity
// curve (CSV, or JSON with -json):
//
//	swpfbench -tune -workloads IS,RA -systems A53,Haswell
//	swpfbench -tune -strategy hillclimb -hwpf default,none,imp
//	swpfbench -tune -cs 16,32,64,128 -depths 0,1,2 -hoists false,true -json
//	swpfbench -exp lookahead            # the tuner-built sensitivity figure
//
// -exec replay routes the grid through the record/replay split
// (internal/trace): each (workload, variant) is interpreted once and
// the trace retimed on every machine x hwpf cell, with statistics
// byte-identical to direct execution (the exec CSV column records the
// mode). -trace FILE skips simulation of the repo's own kernels
// entirely and retimes an externally captured address trace (one
// "pc addr size kind" line per access; docs/trace.md has the grammar)
// across the selected -systems and -hwpf axes.
//
// -gen N adds N randomly generated kernels (internal/gen, seeded by
// -gen-seed) to the selectable pool — the open-ended scenario family
// the differential-fuzzing harness checks (see docs/testing.md).
//
// -store DIR (default $SWPF_STORE) persists per-run results in the
// content-addressed cache of internal/store: re-running a figure or a
// grid re-simulates only cells the store has not seen, with output
// byte-identical to a fresh run. -no-store forces fresh simulation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hwpf"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/tune"
	"repro/internal/uarch"
	wkl "repro/internal/workloads"
)

// errParse marks a flag-parsing failure the FlagSet has already
// reported to stderr.
var errParse = errors.New("flag parse")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the problem
	default:
		fmt.Fprintln(os.Stderr, "swpfbench:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "all", "experiment: fig2, fig4, fig5, fig6, fig7, fig8, fig9, fig10, swhw, cores, lookahead, all")
		system = fs.String("system", "", "restrict fig4/swhw to one system, or lookahead to a system list (Haswell, XeonPhi, A57, A53)")
		wl     = fs.String("bench", "", "restrict fig6 to one benchmark, or lookahead to a benchmark list (IS, CG, RA, HJ-2)")
		quick  = fs.Bool("quick", false, "reduced input sizes")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jobs   = fs.Int("jobs", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
		list   = fs.Bool("list", false, "list workloads, systems, variants and hardware prefetchers, then exit")

		doSweep   = fs.Bool("sweep", false, "run an ad-hoc grid instead of a figure (see -workloads/-systems/-variants/-hwpf)")
		workloads = fs.String("workloads", "", "sweep: comma-separated workloads, exact or prefix (default: all)")
		systems   = fs.String("systems", "", "sweep: comma-separated systems (default: all)")
		variants  = fs.String("variants", "", "sweep: comma-separated variants among plain,auto,manual,icc,indirect-only (default: plain,auto)")
		hwpfAxis  = fs.String("hwpf", "", "sweep: comma-separated hardware prefetchers among default,none,stride,nextline,ghb,imp (default: default)")
		coreAxis  = fs.String("core", "", "sweep: comma-separated core models among default,interval,ooo,inorder (default: default)")
		genN      = fs.Int("gen", 0, "sweep: add N generated kernels (internal/gen) to the selectable workload pool as GEN-00..")
		genSeed   = fs.Uint64("gen-seed", wkl.SyntheticDefaultSeed, "sweep: generator seed for -gen kernels")
		execAxis  = fs.String("exec", "", "sweep: comma-separated execution modes among direct,replay (default: direct); replay interprets each workload/variant once and retimes it on every machine")
		traceFile = fs.String("trace", "", "replay an imported text trace (one \"pc addr size kind\" access per line; see docs/trace.md) across -systems x -hwpf, then exit")
		c         = fs.Int64("c", 0, "sweep: look-ahead constant (0 = the paper's 64)")
		depth     = fs.Int("depth", 0, "sweep: stagger depth limit (0 = unlimited)")
		hoist     = fs.Bool("hoist", false, "sweep: enable loop hoisting in the automatic pass")
		jsonOut   = fs.Bool("json", false, "sweep/tune: emit JSON instead of CSV")

		doTune   = fs.Bool("tune", false, "search (c, depth, hoist, hwpf) for the best speedup over the no-prefetch baseline (see -strategy and the ladder flags)")
		strategy = fs.String("strategy", "", "tune: search strategy among exhaustive,hillclimb (default: exhaustive)")
		csLadder = fs.String("cs", "", "tune: comma-separated look-ahead search ladder (default 1,2,4,...,1024)")
		depths   = fs.String("depths", "", "tune: comma-separated stagger-depth search ladder (default 0)")
		hoists   = fs.String("hoists", "", "tune: comma-separated hoist search ladder among false,true (default false)")

		verbose = fs.Bool("v", false, "log execution progress to stderr (structured, debug level)")
	)
	resolveStore := store.BindFlags(fs)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	log := obs.Discard()
	if *verbose {
		log = slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	q := bench.Full
	if *quick {
		q = bench.Quick
	}

	if *list {
		return writeAxes(stdout, q)
	}

	if *traceFile != "" {
		return replayImported(*traceFile, *systems, *hwpfAxis, *jsonOut, stdout)
	}

	var cache sweep.Cache
	var onPutError func(sweep.Request, error)
	if st, err := resolveStore(); err != nil {
		return err
	} else if st != nil {
		cache = st
		onPutError = store.PutWarner(stderr)
	}

	// The ad-hoc modes (-sweep and -tune) build the shared grid spec of
	// internal/sweep — the same struct swpfd decodes from POST bodies
	// and swpfctl builds from flags, so validation lives in one place.
	spec := sweep.Spec{
		Workloads: *workloads,
		Systems:   *systems,
		Variants:  *variants,
		HWPF:      *hwpfAxis,
		Core:      *coreAxis,
		Exec:      *execAxis,
		C:         *c,
		Depth:     *depth,
		Hoist:     *hoist,
		Quality:   q.PoolName(),
		Gen:       *genN,
		GenSeed:   *genSeed,
	}

	if *doTune {
		tsp := tune.Spec{Spec: spec, Strategy: *strategy, Cs: *csLadder, Depths: *depths, Hoists: *hoists}
		log.Debug("tune", "strategy", tsp.Strategy, "workloads", tsp.Workloads, "systems", tsp.Systems)
		start := time.Now()
		rep, err := tune.Tuner{
			Runner: sweep.Runner{Jobs: *jobs, Cache: cache, OnPutError: onPutError},
		}.Run(tsp)
		if err != nil {
			return err
		}
		log.Debug("tune done", "dur", time.Since(start).Round(time.Millisecond).String())
		if *jsonOut {
			return rep.WriteJSON(stdout)
		}
		return rep.WriteCSV(stdout)
	}

	if *doSweep {
		grid, err := spec.ToGrid()
		if err != nil {
			return err
		}
		log.Debug("sweep", "cells", len(grid.Expand()), "jobs", *jobs)
		start := time.Now()
		set, err := grid.RunWith(sweep.Runner{Jobs: *jobs, Cache: cache, OnPutError: onPutError})
		if err != nil {
			return err
		}
		log.Debug("sweep done", "dur", time.Since(start).Round(time.Millisecond).String())
		if *jsonOut {
			return set.WriteJSON(stdout)
		}
		return set.WriteCSV(stdout)
	}

	s := bench.Suite{Q: q, Jobs: *jobs, Cache: cache, OnPutError: onPutError}

	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprint(stdout, t.CSV())
			return nil
		}
		fmt.Fprintln(stdout, t.String())
		return nil
	}
	emitAll := func(ts []*bench.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			if *csv {
				fmt.Fprint(stdout, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
		return nil
	}

	log.Debug("experiment", "exp", *exp, "quick", *quick)
	switch *exp {
	case "all":
		return s.RunAll(stdout)
	case "fig2":
		return emit(s.Fig2())
	case "fig4":
		if *system != "" {
			return emit(s.Fig4(*system))
		}
		return emitAll(s.Fig4All())
	case "fig5":
		return emit(s.Fig5())
	case "fig6":
		if *wl != "" {
			return emit(s.Fig6(*wl))
		}
		return emitAll(s.Fig6All())
	case "fig7":
		return emit(s.Fig7())
	case "fig8":
		return emit(s.Fig8())
	case "fig9":
		return emit(s.Fig9())
	case "fig10":
		return emit(s.Fig10())
	case "swhw":
		if *system != "" {
			return emit(s.FigSWHW(*system))
		}
		return emitAll(s.FigSWHWAll())
	case "cores":
		return emit(s.FigCores())
	case "lookahead":
		return emit(s.FigLookahead(*wl, *system))
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

// writeAxes prints every grid axis the sweep and figure modes accept —
// the -list discovery surface, mirrored by swpfd's GET /meta.
func writeAxes(w io.Writer, q bench.Quality) error {
	fmt.Fprintln(w, "workloads (name: params):")
	for _, wl := range bench.WorkloadSet(q) {
		fmt.Fprintf(w, "  %-12s %s\n", wl.Name+":", wl.Params)
	}
	fmt.Fprintln(w, "systems:")
	for _, cfg := range uarch.All() {
		fmt.Fprintf(w, "  %-12s hwpf default: %s\n", cfg.Name+":", cfg.HWPrefetcherName())
	}
	fmt.Fprintln(w, "variants:")
	for _, v := range sweep.Variants() {
		fmt.Fprintf(w, "  %s\n", v)
	}
	fmt.Fprintln(w, "hardware prefetchers (-hwpf):")
	fmt.Fprintf(w, "  %-12s keep each system's own model\n", sweep.HWPrefetcherDefault+":")
	for _, name := range hwpf.Names() {
		fmt.Fprintf(w, "  %-12s %s\n", name+":", hwpf.Describe(name))
	}
	fmt.Fprintln(w, "core models (-core):")
	fmt.Fprintf(w, "  %-12s keep each system's own timing model\n", sweep.CoreDefault+":")
	for _, name := range sim.CoreModels() {
		fmt.Fprintf(w, "  %-12s %s\n", name+":", sim.DescribeCoreModel(name))
	}
	fmt.Fprintln(w, "execution modes (-exec):")
	fmt.Fprintf(w, "  %-12s interpret every cell\n", string(core.ExecDirect)+":")
	fmt.Fprintf(w, "  %-12s record each workload/variant once, retime everywhere (identical statistics)\n", string(core.ExecReplay)+":")
	fmt.Fprintln(w, "tune strategies (-strategy):")
	for _, st := range tune.Strategies() {
		fmt.Fprintf(w, "  %s\n", st)
	}
	fmt.Fprintf(w, "tune default ladders: cs %v, depths %v, hoists %v\n",
		tune.DefaultCs, tune.DefaultDepths, tune.DefaultHoists)
	return nil
}

// replayImported parses an external text trace (trace.ParseText) and
// retimes it on every selected system x hardware-prefetcher cell,
// emitting one record per cell. The trace decodes to one shared image,
// so the import is paid once regardless of the cell count.
func replayImported(path, systems, hwpfAxis string, jsonOut bool, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	t, err := trace.ParseText(f, name)
	if err != nil {
		return err
	}
	im, err := interp.NewImage(t)
	if err != nil {
		return err
	}
	cfgs, err := sweep.ParseSystems(systems)
	if err != nil {
		return err
	}
	hws, err := sweep.ParseHWPrefetchers(hwpfAxis)
	if err != nil {
		return err
	}

	type row struct {
		Workload        string
		System          string
		HWPF            string
		Cycles          float64
		Instructions    uint64
		Loads           uint64
		Stores          uint64
		SWPrefetches    uint64
		L1Hits          uint64
		L1Misses        uint64
		DRAMAccesses    uint64
		HWPrefetches    uint64
		TLBWalks        uint64
		LoadStallCycles float64
	}
	var rows []row
	cx := core.NewContext()
	for _, cfg := range cfgs {
		for _, hw := range hws {
			sys := cfg
			if hw != sweep.HWPrefetcherDefault {
				sys = uarch.WithHWPrefetcher(cfg, hw)
			}
			res, err := cx.ReplayImage(im, sys)
			if err != nil {
				return err
			}
			rows = append(rows, row{
				Workload:        res.Workload,
				System:          res.System,
				HWPF:            sys.HWPrefetcherName(),
				Cycles:          res.Cycles,
				Instructions:    res.Stats.Instructions,
				Loads:           res.Stats.Loads,
				Stores:          res.Stats.Stores,
				SWPrefetches:    res.Stats.Prefetches,
				L1Hits:          res.L1Hits,
				L1Misses:        res.L1Misses,
				DRAMAccesses:    res.DRAMAccesses,
				HWPrefetches:    res.HWPrefetches,
				TLBWalks:        res.TLBWalks,
				LoadStallCycles: res.LoadStallCycles,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		return enc.Encode(rows)
	}
	fmt.Fprintln(stdout, "workload,system,hwpf,cycles,instructions,loads,stores,sw_prefetches,l1_hits,l1_misses,dram_accesses,hw_prefetches,tlb_walks,load_stall_cycles")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%s,%s,%s,%v,%d,%d,%d,%d,%d,%d,%d,%d,%d,%v\n",
			r.Workload, r.System, r.HWPF, r.Cycles, r.Instructions, r.Loads, r.Stores,
			r.SWPrefetches, r.L1Hits, r.L1Misses, r.DRAMAccesses, r.HWPrefetches,
			r.TLBWalks, r.LoadStallCycles)
	}
	return nil
}
