// Command swpfbench regenerates the figures of the evaluation section
// of Ainsworth & Jones (CGO 2017) on the simulated machines.
//
// Usage:
//
//	swpfbench -exp all                 # every figure (several minutes)
//	swpfbench -exp fig4 -system A53    # one figure
//	swpfbench -exp fig6 -bench RA      # one look-ahead sweep
//	swpfbench -quick                   # reduced input sizes
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

// errParse marks a flag-parsing failure the FlagSet has already
// reported to stderr.
var errParse = errors.New("flag parse")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the problem
	default:
		fmt.Fprintln(os.Stderr, "swpfbench:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "all", "experiment: fig2, fig4, fig5, fig6, fig7, fig8, fig9, fig10, all")
		system = fs.String("system", "", "restrict fig4 to one system (Haswell, XeonPhi, A57, A53)")
		wl     = fs.String("bench", "", "restrict fig6 to one benchmark (IS, CG, RA, HJ-2)")
		quick  = fs.Bool("quick", false, "reduced input sizes")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	q := bench.Full
	if *quick {
		q = bench.Quick
	}

	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprint(stdout, t.CSV())
			return nil
		}
		fmt.Fprintln(stdout, t.String())
		return nil
	}
	emitAll := func(ts []*bench.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			if *csv {
				fmt.Fprint(stdout, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
		return nil
	}

	switch *exp {
	case "all":
		return bench.RunAll(q, stdout)
	case "fig2":
		return emit(bench.Fig2(q))
	case "fig4":
		if *system != "" {
			return emit(bench.Fig4(q, *system))
		}
		return emitAll(bench.Fig4All(q))
	case "fig5":
		return emit(bench.Fig5(q))
	case "fig6":
		if *wl != "" {
			return emit(bench.Fig6(q, *wl))
		}
		return emitAll(bench.Fig6All(q))
	case "fig7":
		return emit(bench.Fig7(q))
	case "fig8":
		return emit(bench.Fig8(q))
	case "fig9":
		return emit(bench.Fig9(q))
	case "fig10":
		return emit(bench.Fig10(q))
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
