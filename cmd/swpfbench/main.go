// Command swpfbench regenerates the figures of the evaluation section
// of Ainsworth & Jones (CGO 2017) on the simulated machines.
//
// Usage:
//
//	swpfbench -exp all                 # every figure (several minutes)
//	swpfbench -exp fig4 -system A53    # one figure
//	swpfbench -exp fig6 -bench RA      # one look-ahead sweep
//	swpfbench -quick                   # reduced input sizes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: fig2, fig4, fig5, fig6, fig7, fig8, fig9, fig10, all")
		system = flag.String("system", "", "restrict fig4 to one system (Haswell, XeonPhi, A57, A53)")
		wl     = flag.String("bench", "", "restrict fig6 to one benchmark (IS, CG, RA, HJ-2)")
		quick  = flag.Bool("quick", false, "reduced input sizes")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	q := bench.Full
	if *quick {
		q = bench.Quick
	}

	emit := func(t *bench.Table, err error) {
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Println(t.String())
	}
	emitAll := func(ts []*bench.Table, err error) {
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	switch *exp {
	case "all":
		if err := bench.RunAll(q, os.Stdout); err != nil {
			fatal(err)
		}
	case "fig2":
		emit(bench.Fig2(q))
	case "fig4":
		if *system != "" {
			emit(bench.Fig4(q, *system))
		} else {
			emitAll(bench.Fig4All(q))
		}
	case "fig5":
		emit(bench.Fig5(q))
	case "fig6":
		if *wl != "" {
			emit(bench.Fig6(q, *wl))
		} else {
			emitAll(bench.Fig6All(q))
		}
	case "fig7":
		emit(bench.Fig7(q))
	case "fig8":
		emit(bench.Fig8(q))
	case "fig9":
		emit(bench.Fig9(q))
	case "fig10":
		emit(bench.Fig10(q))
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swpfbench:", err)
	os.Exit(1)
}
